// Package pedal is the public API of PEDAL, a unified lossy and lossless
// compression library for (simulated) NVIDIA BlueField DPU architectures,
// reproducing "Accelerating Lossy and Lossless Compression on Emerging
// BlueField DPU Architectures" (IPDPS 2024).
//
// PEDAL unifies four compression algorithms — DEFLATE, zlib, LZ4
// (lossless) and SZ3 (error-bounded lossy) — behind one API and executes
// them on the best hardware the DPU offers: the ARM SoC cores or the
// dedicated compression accelerator ("C-Engine"), with transparent SoC
// fallback when a generation lacks a hardware path. Initialisation-time
// work (DOCA setup, buffer pools, memory mapping) is hoisted out of the
// per-message path, which is the library's headline optimisation.
//
// # Quick start
//
//	lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField2})
//	if err != nil { ... }
//	defer lib.Finalize()
//
//	msg, rep, err := lib.Compress(pedal.DesignCEngineDeflate, pedal.TypeBytes, data)
//	// msg = 3-byte PEDAL header + compressed payload
//	out, _, err := lib.Decompress(pedal.CEngine, pedal.TypeBytes, msg, len(data))
//
// The mpi subpackage (internal/mpi re-exported through examples and cmd
// binaries) co-designs PEDAL with an MPI-style runtime for on-the-fly
// message compression.
package pedal

import (
	"pedal/internal/core"
	"pedal/internal/dpu"
	"pedal/internal/hwmodel"
)

// Re-exported device model identifiers.
const (
	// BlueField2 selects the simulated BlueField-2 DPU (8× A72, DDR4,
	// C-Engine with DEFLATE compression + decompression).
	BlueField2 = hwmodel.BlueField2
	// BlueField3 selects the simulated BlueField-3 DPU (16× A78, DDR5,
	// C-Engine with DEFLATE/LZ4 decompression only).
	BlueField3 = hwmodel.BlueField3

	// SoC prefers the ARM cores; CEngine prefers the hardware accelerator
	// with transparent SoC fallback.
	SoC     = hwmodel.SoC
	CEngine = hwmodel.CEngine

	// TypeBytes marks opaque data (lossless designs); TypeFloat32 and
	// TypeFloat64 enable the lossy SZ3 design (the datatype parameter of
	// the paper's Listing 1).
	TypeBytes   = core.TypeBytes
	TypeFloat32 = core.TypeFloat32
	TypeFloat64 = core.TypeFloat64

	// Wire algorithm identifiers (the AlgoID byte of the PEDAL header).
	AlgoDeflate = core.AlgoDeflate
	AlgoZlib    = core.AlgoZlib
	AlgoLZ4     = core.AlgoLZ4
	AlgoSZ3     = core.AlgoSZ3
)

// Type aliases re-exporting the core types.
type (
	// Options configures Init; the zero value selects BlueField-2 in
	// Separated Host mode, zlib level 6, and the paper's 1e-4 SZ3 error
	// bound.
	Options = core.Options
	// Library is an initialised PEDAL context (PEDAL_init's result).
	Library = core.Library
	// Design names one of the eight compression designs of the paper's
	// Table III: an algorithm bound to a preferred engine.
	Design = core.Design
	// Report describes where an operation ran and what it cost.
	Report = core.Report
	// DataType is the Listing-1 datatype parameter.
	DataType = core.DataType
	// Generation identifies a BlueField generation.
	Generation = hwmodel.Generation
	// Engine identifies SoC or C-Engine execution.
	Engine = hwmodel.Engine
	// AlgoID is the wire algorithm identifier.
	AlgoID = core.AlgoID
)

// The eight designs of Table III, as convenient constants.
var (
	DesignSoCDeflate     = Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	DesignSoCZlib        = Design{Algo: core.AlgoZlib, Engine: hwmodel.SoC}
	DesignSoCLZ4         = Design{Algo: core.AlgoLZ4, Engine: hwmodel.SoC}
	DesignSoCSZ3         = Design{Algo: core.AlgoSZ3, Engine: hwmodel.SoC}
	DesignCEngineDeflate = Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}
	DesignCEngineZlib    = Design{Algo: core.AlgoZlib, Engine: hwmodel.CEngine}
	DesignCEngineLZ4     = Design{Algo: core.AlgoLZ4, Engine: hwmodel.CEngine}
	DesignCEngineSZ3     = Design{Algo: core.AlgoSZ3, Engine: hwmodel.CEngine}
)

// Init is PEDAL_init: it builds the device, DOCA environment and memory
// pools once, so per-message operations pay none of that overhead.
func Init(opts Options) (*Library, error) { return core.Init(opts) }

// Designs enumerates the eight Table III designs.
func Designs() []Design { return core.Designs() }

// LosslessDesigns enumerates the six lossless designs (Fig. 10's A–F).
func LosslessDesigns() []Design { return core.LosslessDesigns() }

// ParseHeader inspects a wire message for the 3-byte PEDAL header,
// returning the algorithm and compressed body, or core.ErrNoHeader for
// uncompressed payloads.
func ParseHeader(msg []byte) (AlgoID, []byte, error) { return core.ParseHeader(msg) }

// SeparatedHost and SmartNIC are the DPU operating modes (§II-A). PEDAL
// requires Separated Host.
const (
	SeparatedHost = dpu.SeparatedHost
	SmartNIC      = dpu.SmartNIC
)
