// Command pedalc is a standalone PEDAL compressor: it compresses or
// decompresses files with any of the eight Table III designs on a
// simulated BlueField DPU, reporting ratio and modelled hardware time.
//
//	pedalc -algo deflate -engine cengine -gen bf2 input.bin > out.pedal
//	pedalc -d out.pedal > input.bin
//	pedalc -algo sz3 -dtype float32 -eb 1e-4 field.f32 > field.pedal
//
// With -connect it runs against a pedald daemon instead of a local
// library, and maps the service's typed errors onto distinct exit
// codes so soak scripts can tell a shed from a failure:
//
//	pedalc -connect 127.0.0.1:7070 input.bin > out.pedal
//
//	exit 0  success
//	exit 1  generic error (I/O, bad message, ...)
//	exit 2  usage error
//	exit 3  server busy — request shed under overload (retryable)
//	exit 4  peer dead or unreachable (dial failure, keepalive verdict)
//	exit 5  remote application error (deterministic; do not retry)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pedal"
	"pedal/internal/service"
	"pedal/internal/trace"
)

// Exit codes for typed service errors (see package comment).
const (
	exitGeneric = 1
	exitUsage   = 2
	exitBusy    = 3
	exitPeer    = 4
	exitRemote  = 5
)

func main() {
	var (
		algo      = flag.String("algo", "deflate", "algorithm: deflate | zlib | lz4 | sz3")
		engine    = flag.String("engine", "cengine", "preferred engine: soc | cengine")
		gen       = flag.String("gen", "bf2", "DPU generation: bf2 | bf3")
		dtype     = flag.String("dtype", "bytes", "datatype: bytes | float32 | float64 (sz3 needs floats)")
		eb        = flag.Float64("eb", 1e-4, "SZ3 absolute error bound")
		decomp    = flag.Bool("d", false, "decompress instead of compress")
		maxOutput = flag.Int("max", 1<<30, "maximum decompressed size")
		showTrace = flag.Bool("trace", false, "dump the C-Engine job timeline to stderr")
		connect   = flag.String("connect", "", "pedald address (host:port); empty runs the library locally")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request deadline in remote mode")
		retries   = flag.Int("retries", service.DefaultRetryBudget, "busy-retry budget in remote mode (0 disables)")
	)
	flag.Parse()

	data, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var g pedal.Generation
	switch strings.ToLower(*gen) {
	case "bf2", "bluefield2", "bluefield-2":
		g = pedal.BlueField2
	case "bf3", "bluefield3", "bluefield-3":
		g = pedal.BlueField3
	default:
		usage(fmt.Errorf("unknown generation %q", *gen))
	}
	var e pedal.Engine
	switch strings.ToLower(*engine) {
	case "soc":
		e = pedal.SoC
	case "cengine", "c-engine", "ce":
		e = pedal.CEngine
	default:
		usage(fmt.Errorf("unknown engine %q", *engine))
	}
	var dt pedal.DataType
	switch strings.ToLower(*dtype) {
	case "bytes":
		dt = pedal.TypeBytes
	case "float32":
		dt = pedal.TypeFloat32
	case "float64":
		dt = pedal.TypeFloat64
	default:
		usage(fmt.Errorf("unknown datatype %q", *dtype))
	}
	var a pedal.AlgoID
	if !*decomp {
		switch strings.ToLower(*algo) {
		case "deflate":
			a = pedal.AlgoDeflate
		case "zlib":
			a = pedal.AlgoZlib
		case "lz4":
			a = pedal.AlgoLZ4
		case "sz3":
			a = pedal.AlgoSZ3
		default:
			usage(fmt.Errorf("unknown algorithm %q", *algo))
		}
	}

	if *connect != "" {
		runRemote(*connect, *timeout, *retries, a, e, dt, data, *decomp, *maxOutput)
		return
	}

	lib, err := pedal.Init(pedal.Options{Generation: g, ErrorBound: *eb})
	if err != nil {
		fatal(err)
	}
	defer lib.Finalize()
	var tr *trace.Tracer
	if *showTrace {
		tr = trace.New(0)
		lib.Device().CEngine().SetTracer(tr)
		defer func() { fmt.Fprint(os.Stderr, tr.String()) }()
	}

	if *decomp {
		out, rep, err := lib.Decompress(e, dt, data, *maxOutput)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Fprintf(os.Stderr, "pedalc: decompressed %d -> %d bytes on %v (modelled %v)\n",
			len(data), len(out), rep.Engine, rep.Virtual)
		return
	}

	msg, rep, err := lib.Compress(pedal.Design{Algo: a, Engine: e}, dt, data)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(msg)
	fb := ""
	if rep.Fallback {
		fb = " (fell back to SoC)"
	}
	fmt.Fprintf(os.Stderr, "pedalc: %d -> %d bytes, ratio %.3f, on %v%s (modelled %v)\n",
		rep.InBytes, rep.OutBytes, rep.Ratio(), rep.Engine, fb, rep.Virtual)
}

// runRemote executes one compress/decompress round against a pedald
// daemon and exits with the typed code for whatever went wrong.
func runRemote(addr string, timeout time.Duration, retries int, a pedal.AlgoID, e pedal.Engine, dt pedal.DataType, data []byte, decomp bool, maxOutput int) {
	cl, err := service.DialTimeout(addr, timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pedalc: dial %s: %v\n", addr, err)
		os.Exit(exitPeer)
	}
	defer cl.Close()
	cl.Timeout = timeout
	cl.Retry = &service.RetryPolicy{Budget: retries}

	if decomp {
		out, err := cl.Decompress(e, dt, data, maxOutput)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Fprintf(os.Stderr, "pedalc: decompressed %d -> %d bytes via %s\n", len(data), len(out), addr)
		return
	}
	msg, err := cl.Compress(pedal.Design{Algo: a, Engine: e}, dt, data)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(msg)
	fmt.Fprintf(os.Stderr, "pedalc: %d -> %d bytes via %s\n", len(data), len(msg), addr)
}

func readInput(path string) ([]byte, error) {
	if path == "" || path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pedalc: %v\n", err)
	os.Exit(exitCode(err))
}

func usage(err error) {
	fmt.Fprintf(os.Stderr, "pedalc: %v\n", err)
	os.Exit(exitUsage)
}

// exitCode maps the service's typed errors onto the documented exit
// codes; anything untyped is a generic failure.
func exitCode(err error) int {
	switch {
	case errors.Is(err, service.ErrBusy):
		return exitBusy
	case errors.Is(err, service.ErrPeerDead):
		return exitPeer
	case errors.Is(err, service.ErrRemote):
		return exitRemote
	}
	return exitGeneric
}
