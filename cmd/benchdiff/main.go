// Command benchdiff records and compares kernel benchmark results.
//
// It reads `go test -bench -benchmem` text output on stdin and maintains
// a JSON ledger with a frozen "baseline" section (the pre-optimisation
// numbers) and a "current" section updated on each -update run:
//
//	go test -run='^$' -bench=. -benchmem ./internal/lz77 | benchdiff -update BENCH_kernels.json
//	go test -run='^$' -bench=. -benchmem ./internal/lz77 | benchdiff -check BENCH_kernels.json
//
// -update rewrites "current" (creating "baseline" from the incoming run
// only when the file does not yet exist) and recomputes per-benchmark
// speedups. -check compares the incoming run against the committed
// "current" numbers and exits non-zero if any benchmark slowed down by
// more than -threshold percent — the CI guard against quietly losing
// the SWAR kernel wins.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

const schemaID = "pedal-kernel-bench/1"

// Result is one benchmark measurement.
type Result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  *int64   `json:"b_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

// Ledger is the on-disk benchmark file.
type Ledger struct {
	Schema   string             `json:"schema"`
	Baseline map[string]Result  `json:"baseline"`
	Current  map[string]Result  `json:"current"`
	Speedup  map[string]float64 `json:"speedup"`
}

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkMatchLen-8  3207020  218.9 ns/op  1178.45 MB/s  0 B/op  0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so results compare across
// machines with different core counts.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op` +
		`(?:\s+([0-9.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	for r.Scan() {
		m := benchLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		name := m[1][len("Benchmark"):]
		res := Result{}
		res.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			v, _ := strconv.ParseFloat(m[3], 64)
			res.MBPerS = &v
		}
		if m[4] != "" {
			v, _ := strconv.ParseInt(m[4], 10, 64)
			res.BytesPerOp = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			res.AllocsPerOp = &v
		}
		out[name] = res
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return out, nil
}

func load(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if l.Schema != schemaID {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, l.Schema, schemaID)
	}
	return &l, nil
}

func save(path string, l *Ledger) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortedNames(m map[string]Result) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func update(path string, fresh map[string]Result) error {
	l, err := load(path)
	if err != nil {
		return err
	}
	if l == nil {
		l = &Ledger{Schema: schemaID, Baseline: fresh}
	}
	if l.Baseline == nil {
		l.Baseline = fresh
	}
	l.Current = fresh
	l.Speedup = make(map[string]float64)
	for name, cur := range l.Current {
		if base, ok := l.Baseline[name]; ok && cur.NsPerOp > 0 {
			l.Speedup[name] = round2(base.NsPerOp / cur.NsPerOp)
		}
	}
	if err := save(path, l); err != nil {
		return err
	}
	for _, name := range sortedNames(l.Current) {
		if s, ok := l.Speedup[name]; ok {
			fmt.Printf("%-28s %12.1f ns/op  %5.2fx vs baseline\n",
				name, l.Current[name].NsPerOp, s)
		} else {
			fmt.Printf("%-28s %12.1f ns/op  (no baseline)\n",
				name, l.Current[name].NsPerOp)
		}
	}
	return nil
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

func check(path string, fresh map[string]Result, thresholdPct float64) error {
	l, err := load(path)
	if err != nil {
		return err
	}
	if l == nil {
		return fmt.Errorf("%s does not exist; run -update first", path)
	}
	regressions := 0
	for _, name := range sortedNames(fresh) {
		ref, ok := l.Current[name]
		if !ok || ref.NsPerOp <= 0 {
			fmt.Printf("%-28s new benchmark, no reference\n", name)
			continue
		}
		got := fresh[name]
		deltaPct := (got.NsPerOp - ref.NsPerOp) / ref.NsPerOp * 100
		status := "ok"
		if deltaPct > thresholdPct {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-28s %12.1f ns/op  %+7.1f%%  %s\n", name, got.NsPerOp, deltaPct, status)
		// Alloc-count gates are exact: the zero-allocation hot paths must
		// stay zero-allocation.
		if ref.AllocsPerOp != nil && *ref.AllocsPerOp == 0 &&
			got.AllocsPerOp != nil && *got.AllocsPerOp > 0 {
			fmt.Printf("%-28s allocs/op rose 0 -> %d  REGRESSION\n", name, *got.AllocsPerOp)
			regressions++
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", regressions, thresholdPct)
	}
	return nil
}

func main() {
	updateFlag := flag.Bool("update", false, "rewrite the ledger's current section from stdin")
	checkFlag := flag.Bool("check", false, "compare stdin against the ledger's current section")
	threshold := flag.Float64("threshold", 15, "allowed ns/op regression percentage for -check")
	flag.Parse()

	if *updateFlag == *checkFlag || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff (-update | -check) [-threshold pct] <ledger.json> < bench-output")
		os.Exit(2)
	}
	path := flag.Arg(0)
	fresh, err := parse(bufio.NewScanner(os.Stdin))
	if err == nil {
		if *updateFlag {
			err = update(path, fresh)
		} else {
			err = check(path, fresh, *threshold)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
