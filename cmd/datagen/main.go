// Command datagen writes the synthetic Table IV dataset equivalents to
// disk for external inspection or reuse.
//
//	datagen -list
//	datagen -name silesia/xml -out xml.bin
//	datagen -all -dir ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pedal/internal/datasets"
)

func main() {
	var (
		list = flag.Bool("list", false, "list datasets and exit")
		name = flag.String("name", "", "dataset to generate (see -list)")
		out  = flag.String("out", "", "output file (default: derived from name)")
		all  = flag.Bool("all", false, "generate every dataset")
		dir  = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-18s %-28s %10s  %s\n", "NAME", "DESCRIPTION", "SIZE (MB)", "GROUP")
		for _, d := range datasets.All() {
			group := "lossless"
			if d.Lossy {
				group = "lossy"
			}
			fmt.Printf("%-18s %-28s %10.2f  %s\n", d.Name, d.Description, float64(d.Size)/(1<<20), group)
		}
		return
	}
	if *all {
		for _, d := range datasets.All() {
			path := filepath.Join(*dir, strings.ReplaceAll(d.Name, "/", "_")+".bin")
			if err := os.WriteFile(path, d.Bytes(), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, d.Size)
		}
		return
	}
	if *name == "" {
		fatal(fmt.Errorf("need -name, -all or -list"))
	}
	d := datasets.ByName(*name)
	if d == nil {
		fatal(fmt.Errorf("unknown dataset %q (try -list)", *name))
	}
	path := *out
	if path == "" {
		path = strings.ReplaceAll(d.Name, "/", "_") + ".bin"
	}
	if err := os.WriteFile(path, d.Bytes(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, d.Size)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
