// Command pedalbench regenerates the paper's evaluation tables and
// figures (§V). With no flags it runs the whole suite; -exp selects one
// experiment; -quick caps dataset sizes for a fast smoke run.
//
//	pedalbench -list
//	pedalbench -exp fig8
//	pedalbench -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pedal/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (default: all)")
		quick = flag.Bool("quick", false, "cap dataset sizes for a fast run")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	opts := experiments.Options{Quick: *quick}
	runners := experiments.Runners()
	if *exp != "" {
		r := experiments.ByID(*exp)
		if r == nil {
			fmt.Fprintf(os.Stderr, "pedalbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		runners = []experiments.Runner{*r}
	}
	for _, r := range runners {
		start := time.Now()
		tab, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pedalbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
