// Command osu-latency is the OSU-style point-to-point latency benchmark
// (paper §V-D): a two-rank ping-pong over the simulated MPI runtime with
// a selectable PEDAL compression design.
//
//	osu-latency -design cengine_deflate -gen bf2
//	osu-latency -design soc_sz3 -gen bf3 -baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pedal/internal/core"
	"pedal/internal/datasets"
	"pedal/internal/hwmodel"
	"pedal/internal/mpi"
	"pedal/internal/osu"
)

func main() {
	var (
		design    = flag.String("design", "cengine_deflate", "design: {soc|cengine}_{deflate|zlib|lz4|sz3} or none")
		gen       = flag.String("gen", "bf2", "DPU generation: bf2 | bf3")
		baseline  = flag.Bool("baseline", false, "pay init+alloc per message (paper's baseline)")
		iters     = flag.Int("iters", 3, "iterations per size")
		tcp       = flag.Bool("tcp", false, "use the TCP transport provider")
		pipelined = flag.Bool("pipelined", false, "stream rendezvous messages as chunked frames (compression–communication overlap)")
		detect    = flag.Duration("detector", 0, "arm the heartbeat failure detector with this suspicion budget (0 = off); measures the fault domain's overhead on the latency path")
		deadline  = flag.Duration("deadline", 0, "per-operation deadline when the detector is armed (0 = none)")
	)
	flag.Parse()

	world := mpi.WorldOptions{Baseline: *baseline, TCP: *tcp}
	if *detect > 0 {
		// Armed worlds use revocation-aware polling waits instead of
		// bare blocking receives, so the benchmark exposes what the
		// process fault domain costs on the critical path.
		world.Detector = &mpi.DetectorConfig{SuspectAfter: *detect}
		world.OpDeadline = *deadline
	} else if *deadline > 0 {
		fatal(fmt.Errorf("-deadline requires -detector"))
	}
	switch strings.ToLower(*gen) {
	case "bf2":
		world.Generation = hwmodel.BlueField2
	case "bf3":
		world.Generation = hwmodel.BlueField3
	default:
		fatal(fmt.Errorf("unknown generation %q", *gen))
	}
	payload := osu.DefaultPayload
	if *design != "none" {
		d, dt, err := parseDesign(*design)
		if err != nil {
			fatal(err)
		}
		world.Compression = &mpi.CompressionConfig{Design: d, DataType: dt, Pipelined: *pipelined}
		if d.Algo == core.AlgoSZ3 {
			// The lossy design needs float payloads; slice the exaalt
			// stand-in the way the paper's Fig. 10f does.
			md := datasets.ExaaltDataset1().Bytes()
			payload = func(size int) []byte {
				size &^= 3
				out := make([]byte, size)
				for off := 0; off < size; off += len(md) {
					copy(out[off:], md)
				}
				return out
			}
		}
	}
	sizes := []int{256 << 10, 1 << 20, 4 << 20, 16 << 20, 48 << 20}
	res, err := osu.RunLatency(osu.P2PConfig{
		World:      world,
		Sizes:      sizes,
		Iterations: *iters,
		Payload:    payload,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# OSU-style MPI Latency — %s on %s (baseline=%v pipelined=%v detector=%v)\n", *design, *gen, *baseline, *pipelined, *detect)
	fmt.Printf("%-12s %-16s %-16s\n", "Size(B)", "Latency(model)", "Wall/iter")
	for _, r := range res {
		fmt.Printf("%-12d %-16v %-16v\n", r.Size, r.Latency, r.Wall)
	}
}

func parseDesign(s string) (core.Design, core.DataType, error) {
	parts := strings.SplitN(strings.ToLower(s), "_", 2)
	if len(parts) != 2 {
		return core.Design{}, 0, fmt.Errorf("bad design %q", s)
	}
	var e hwmodel.Engine
	switch parts[0] {
	case "soc":
		e = hwmodel.SoC
	case "cengine", "c-engine", "ce":
		e = hwmodel.CEngine
	default:
		return core.Design{}, 0, fmt.Errorf("bad engine %q", parts[0])
	}
	dt := core.TypeBytes
	var a core.AlgoID
	switch parts[1] {
	case "deflate":
		a = core.AlgoDeflate
	case "zlib":
		a = core.AlgoZlib
	case "lz4":
		a = core.AlgoLZ4
	case "sz3":
		a = core.AlgoSZ3
		dt = core.TypeFloat32
	default:
		return core.Design{}, 0, fmt.Errorf("bad algorithm %q", parts[1])
	}
	return core.Design{Algo: a, Engine: e}, dt, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "osu-latency: %v\n", err)
	os.Exit(1)
}
