// Command osu-bcast is the OSU-style MPI_Bcast benchmark (paper §V-E):
// a four-node binomial-tree broadcast over the simulated runtime with a
// selectable PEDAL compression design and the paper's three message
// sizes (5.1, 20.6, 48.8 MB).
//
//	osu-bcast -design cengine_deflate -gen bf2
//	osu-bcast -design soc_zlib -gen bf3 -nodes 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/mpi"
	"pedal/internal/osu"
)

func main() {
	var (
		design   = flag.String("design", "cengine_deflate", "design: {soc|cengine}_{deflate|zlib|lz4} or none")
		gen      = flag.String("gen", "bf2", "DPU generation: bf2 | bf3")
		baseline = flag.Bool("baseline", false, "pay init+alloc per message (paper's baseline)")
		nodes    = flag.Int("nodes", 4, "number of ranks")
		iters    = flag.Int("iters", 3, "iterations per size")
	)
	flag.Parse()

	world := mpi.WorldOptions{Baseline: *baseline}
	switch strings.ToLower(*gen) {
	case "bf2":
		world.Generation = hwmodel.BlueField2
	case "bf3":
		world.Generation = hwmodel.BlueField3
	default:
		fatal(fmt.Errorf("unknown generation %q", *gen))
	}
	if *design != "none" {
		d, err := parseDesign(*design)
		if err != nil {
			fatal(err)
		}
		world.Compression = &mpi.CompressionConfig{Design: d}
	}
	sizes := []int{51 * (1 << 20) / 10, 206 * (1 << 20) / 10, 488 * (1 << 20) / 10}
	res, err := osu.RunBcast(osu.BcastConfig{
		World:      world,
		Nodes:      *nodes,
		Sizes:      sizes,
		Iterations: *iters,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# OSU-style MPI_Bcast — %s on %s, %d nodes (baseline=%v)\n", *design, *gen, *nodes, *baseline)
	fmt.Printf("%-12s %-16s %-16s\n", "Size(B)", "Latency(model)", "Wall/iter")
	for _, r := range res {
		fmt.Printf("%-12d %-16v %-16v\n", r.Size, r.Latency, r.Wall)
	}
}

func parseDesign(s string) (core.Design, error) {
	parts := strings.SplitN(strings.ToLower(s), "_", 2)
	if len(parts) != 2 {
		return core.Design{}, fmt.Errorf("bad design %q", s)
	}
	var e hwmodel.Engine
	switch parts[0] {
	case "soc":
		e = hwmodel.SoC
	case "cengine", "c-engine", "ce":
		e = hwmodel.CEngine
	default:
		return core.Design{}, fmt.Errorf("bad engine %q", parts[0])
	}
	var a core.AlgoID
	switch parts[1] {
	case "deflate":
		a = core.AlgoDeflate
	case "zlib":
		a = core.AlgoZlib
	case "lz4":
		a = core.AlgoLZ4
	default:
		return core.Design{}, fmt.Errorf("bad algorithm %q", parts[1])
	}
	return core.Design{Algo: a, Engine: e}, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "osu-bcast: %v\n", err)
	os.Exit(1)
}
