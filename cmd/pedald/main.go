// Command pedald runs PEDAL as a network compression service: the
// deployment where the DPU hosts a daemon and applications on the host
// (or anywhere) compress through it (paper §VI: the standalone PEDAL
// library programmable by applications).
//
//	pedald -listen :7070 -gen bf2
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// lets in-flight requests finish (bounded by -drain), then exits. A
// second signal aborts immediately.
//
// Protocol: see internal/service. A matching Go client lives in
// pedal/internal/service (service.Dial).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pedal"
	"pedal/internal/core"
	"pedal/internal/dpu"
	"pedal/internal/service"
	"pedal/internal/stats"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7070", "listen address")
		gen        = flag.String("gen", "bf2", "DPU generation: bf2 | bf3")
		eb         = flag.Float64("eb", 1e-4, "SZ3 absolute error bound")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
		maxConc    = flag.Int("max-concurrent", 0, "concurrent request limit (0 = GOMAXPROCS, negative = unlimited)")
		queue      = flag.Int("queue-depth", 0, "admission queue depth before shedding (0 = default, negative = none)")
		watchdog   = flag.Bool("watchdog", true, "arm the C-Engine stall watchdog (hot-reset + SoC replay on engine loss)")
		retryAfter = flag.Duration("retry-after", 0, "Retry-After hint attached to busy rejections (0 = none)")
		memBudget  = flag.Int64("mem-budget", 0, "memory-pool budget in bytes; governed draws beyond it shed with a typed busy error (0 = unbounded)")
		deadline   = flag.Duration("default-deadline", 0, "per-request execution-deadline ceiling; hints looser than this are capped (0 = none)")
	)
	flag.Parse()

	var g pedal.Generation
	switch strings.ToLower(*gen) {
	case "bf2":
		g = pedal.BlueField2
	case "bf3":
		g = pedal.BlueField3
	default:
		fmt.Fprintf(os.Stderr, "pedald: unknown generation %q\n", *gen)
		os.Exit(2)
	}
	opts := pedal.Options{Generation: g, ErrorBound: *eb, MemBudget: *memBudget}
	if *watchdog {
		// A long-running daemon must survive engine loss: arm the stall
		// watchdog with defaults so a wedged C-Engine hot-resets and
		// in-flight jobs replay on the SoC instead of hanging clients.
		opts.Resilience = &core.ResilienceOptions{Watchdog: &dpu.WatchdogConfig{}}
	}
	lib, err := pedal.Init(opts)
	if err != nil {
		log.Fatalf("pedald: %v", err)
	}
	defer lib.Finalize()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("pedald: %v", err)
	}
	srv := service.NewServer(lib)
	srv.Logf = log.Printf
	srv.MaxConcurrent = *maxConc
	srv.QueueDepth = *queue
	srv.RetryAfterHint = *retryAfter
	srv.DefaultDeadline = *deadline

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("pedald: %v: draining (deadline %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		go func() {
			sig := <-sigs
			log.Printf("pedald: %v: aborting drain", sig)
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("pedald: drain incomplete: %v", err)
			srv.Close()
		}
		bd := srv.Stats()
		log.Printf("pedald: served %d requests (%d shed, %d drained, %d panics recovered)",
			bd.Count(stats.CounterRequests), bd.Count(stats.CounterSheds),
			bd.Count(stats.CounterDrained), bd.Count(stats.CounterPanics))
		snap := lib.PoolSnapshot()
		log.Printf("pedald: pool peak %d B of budget %d B (%d pressure rejects, %d deadline abandons, %d brownout steps)",
			snap.PeakBytes, snap.Budget, bd.Count(stats.CounterMemPressure),
			bd.Count(stats.CounterDeadlineAbandoned), bd.Count(stats.CounterBrownouts))
		log.Printf("pedald: health %s", srv.HealthBody())
	}()

	log.Printf("pedald: serving %v PEDAL on %s (health: %s)", g, ln.Addr(), srv.HealthBody())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatalf("pedald: %v", err)
	}
	log.Printf("pedald: shutdown complete")
}
