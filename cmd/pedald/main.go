// Command pedald runs PEDAL as a network compression service: the
// deployment where the DPU hosts a daemon and applications on the host
// (or anywhere) compress through it (paper §VI: the standalone PEDAL
// library programmable by applications).
//
//	pedald -listen :7070 -gen bf2
//
// Protocol: see internal/service. A matching Go client lives in
// pedal/internal/service (service.Dial).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pedal"
	"pedal/internal/service"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7070", "listen address")
		gen    = flag.String("gen", "bf2", "DPU generation: bf2 | bf3")
		eb     = flag.Float64("eb", 1e-4, "SZ3 absolute error bound")
	)
	flag.Parse()

	var g pedal.Generation
	switch strings.ToLower(*gen) {
	case "bf2":
		g = pedal.BlueField2
	case "bf3":
		g = pedal.BlueField3
	default:
		fmt.Fprintf(os.Stderr, "pedald: unknown generation %q\n", *gen)
		os.Exit(2)
	}
	lib, err := pedal.Init(pedal.Options{Generation: g, ErrorBound: *eb})
	if err != nil {
		log.Fatalf("pedald: %v", err)
	}
	defer lib.Finalize()
	log.Printf("pedald: serving %v PEDAL on %s", g, *listen)
	if err := service.ListenAndServe(*listen, lib); err != nil {
		log.Fatalf("pedald: %v", err)
	}
}
