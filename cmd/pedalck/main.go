// Command pedalck operates a crash-consistent compressed checkpoint
// store (internal/ckpt) on a local directory: the storage fault domain
// as an operational tool.
//
//	pedalck save -dir /ckpt -epoch 3 -replicas 2 rank0.bin rank1.bin
//	pedalck restore -dir /ckpt -out restored-rank
//	pedalck scrub -dir /ckpt
//	pedalck ls -dir /ckpt
//
// save commits the given per-rank files as one epoch under the store's
// two-phase protocol (staged, fsync'd, digest-verified, atomically
// renamed). restore loads the newest restorable epoch with full digest
// verification and read-repair, writing each rank to <out><rank>.
// scrub verifies every retained epoch, repairs what replicas allow and
// condemns what they don't. ls lists committed epochs.
//
// Typed storage errors map onto distinct exit codes so operational
// scripts can tell bit rot from a missing store:
//
//	exit 0  success
//	exit 1  generic error (I/O, ...)
//	exit 2  usage error
//	exit 3  torn manifest
//	exit 4  shard rot beyond repair
//	exit 5  no restorable checkpoint / epoch condemned
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"pedal/internal/ckpt"
	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

const (
	exitGeneric   = 1
	exitUsage     = 2
	exitTorn      = 3
	exitRot       = 4
	exitNoRestore = 5
)

func main() {
	if len(os.Args) < 2 {
		usage(errors.New("missing verb"))
	}
	verb := os.Args[1]
	fs := flag.NewFlagSet("pedalck "+verb, flag.ExitOnError)
	var (
		dir      = fs.String("dir", "", "checkpoint store directory (required)")
		algo     = fs.String("algo", "deflate", "shard codec: deflate | zlib | lz4 | none")
		gen      = fs.String("gen", "bf2", "DPU generation: bf2 | bf3")
		epoch    = fs.Uint64("epoch", 0, "epoch number (save: required; restore: 0 = newest)")
		replicas = fs.Int("replicas", 1, "shard copies per epoch (save)")
		retain   = fs.Int("retain", 2, "committed epochs to keep (save)")
		out      = fs.String("out", "rank", "restore output path prefix (one file per rank)")
		maxShard = fs.Int("max", 1<<30, "maximum decompressed shard size")
	)
	fs.Parse(os.Args[2:])
	if *dir == "" {
		usage(errors.New("-dir is required"))
	}

	g := hwmodel.BlueField2
	if *gen == "bf3" {
		g = hwmodel.BlueField3
	}
	comp, cleanup, err := buildCompressor(*algo, g)
	if err != nil {
		usage(err)
	}
	defer cleanup()

	dfs, err := ckpt.NewDirFS(*dir)
	if err != nil {
		fatal(err)
	}
	store, err := ckpt.Open(dfs, ckpt.Config{
		Compressor: comp, Replicas: *replicas, Retain: *retain, MaxShardBytes: *maxShard,
	})
	if err != nil {
		fatal(err)
	}

	switch verb {
	case "save":
		runSave(store, *epoch, fs.Args())
	case "restore":
		runRestore(store, *epoch, *out)
	case "scrub":
		runScrub(store)
	case "ls":
		runLs(store)
	default:
		usage(fmt.Errorf("unknown verb %q", verb))
	}
}

func buildCompressor(algo string, g hwmodel.Generation) (ckpt.Compressor, func(), error) {
	if algo == "none" {
		return ckpt.NopCompressor{}, func() {}, nil
	}
	var a core.AlgoID
	switch algo {
	case "deflate":
		a = core.AlgoDeflate
	case "zlib":
		a = core.AlgoZlib
	case "lz4":
		a = core.AlgoLZ4
	default:
		return nil, nil, fmt.Errorf("unknown codec %q", algo)
	}
	lib, err := core.Init(core.Options{Generation: g})
	if err != nil {
		return nil, nil, err
	}
	return &ckpt.LibraryCompressor{
		Lib:    lib,
		Design: core.Design{Algo: a, Engine: hwmodel.SoC},
		Type:   core.TypeBytes,
	}, func() { lib.Finalize() }, nil
}

func runSave(store *ckpt.Store, epoch uint64, files []string) {
	if epoch == 0 {
		usage(errors.New("save needs -epoch ≥ 1"))
	}
	if len(files) == 0 {
		usage(errors.New("save needs one file per rank"))
	}
	shards := make([][]byte, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		shards[i] = data
	}
	m, err := store.Commit(epoch, shards)
	if err != nil {
		fatal(err)
	}
	var stored uint64
	for _, sh := range m.Shards {
		stored += sh.Size
	}
	fmt.Printf("committed epoch %d: %d ranks, %d replica(s), %d compressed bytes\n",
		m.Epoch, len(m.Shards), m.Replicas, stored)
}

func runRestore(store *ckpt.Store, epoch uint64, out string) {
	var cp *ckpt.Checkpoint
	var err error
	if epoch == 0 {
		cp, err = store.Restore()
	} else {
		cp, err = store.RestoreEpoch(epoch)
	}
	if err != nil {
		fatal(err)
	}
	for rank, data := range cp.Shards {
		if werr := os.WriteFile(fmt.Sprintf("%s%d", out, rank), data, 0o644); werr != nil {
			fatal(werr)
		}
	}
	fmt.Printf("restored epoch %d: %d ranks", cp.Epoch, len(cp.Shards))
	if cp.RotDetected > 0 {
		fmt.Printf(" (%d rotten copies detected, %d repaired)", cp.RotDetected, cp.Repaired)
	}
	fmt.Println()
}

func runScrub(store *ckpt.Store) {
	rep, err := store.Scrub()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scrubbed %d epochs, %d shard copies: %d rotten, %d repaired, %d condemned\n",
		rep.Epochs, rep.ShardCopies, rep.RotDetected, rep.Repaired, len(rep.Condemned))
	for e, cerr := range rep.Condemned {
		fmt.Fprintf(os.Stderr, "condemned epoch %d: %v\n", e, cerr)
	}
	if len(rep.Condemned) > 0 {
		os.Exit(exitNoRestore)
	}
}

func runLs(store *ckpt.Store) {
	epochs, err := store.Epochs()
	if err != nil {
		fatal(err)
	}
	for _, e := range epochs {
		fmt.Println(e)
	}
}

func usage(err error) {
	fmt.Fprintf(os.Stderr, "pedalck: %v\nusage: pedalck save|restore|scrub|ls -dir DIR [flags] [files...]\n", err)
	os.Exit(exitUsage)
}

// fatal maps typed storage errors to distinct exit codes.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pedalck:", err)
	switch {
	case errors.Is(err, ckpt.ErrNoCheckpoint), errors.Is(err, ckpt.ErrEpochCondemned):
		os.Exit(exitNoRestore)
	case errors.Is(err, ckpt.ErrShardRot):
		os.Exit(exitRot)
	case errors.Is(err, ckpt.ErrTornManifest):
		os.Exit(exitTorn)
	}
	os.Exit(exitGeneric)
}
