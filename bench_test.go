// Package pedal's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation (§V). Each bench drives the same
// experiment runner that cmd/pedalbench uses (in Quick mode so that
// `go test -bench=.` completes in minutes); b.ReportMetric publishes the
// headline paper metrics (speedups, reductions) alongside wall time.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate a single figure at full dataset sizes:
//
//	go run ./cmd/pedalbench -exp fig8
package pedal_test

import (
	"bytes"
	"testing"
	"time"

	"pedal"
	"pedal/internal/experiments"
	"pedal/internal/flate"
	"pedal/internal/integrity"
)

var quick = experiments.Options{Quick: true}

// reportMetrics republishes an experiment's scalar metrics through the
// benchmark framework so `go test -bench` output carries the paper's
// headline numbers.
func reportMetrics(b *testing.B, tab experiments.Table) {
	b.Helper()
	for k, v := range tab.Metrics {
		b.ReportMetric(v, k)
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r := experiments.ByID(id)
	if r == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var tab experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = r.Run(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMetrics(b, tab)
}

// BenchmarkTable4DatasetInventory regenerates Table IV (dataset
// generation cost).
func BenchmarkTable4DatasetInventory(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig7aLosslessBreakdownBF2 regenerates Fig. 7a: the
// init/prep/compress/decompress time distribution on BlueField-2.
func BenchmarkFig7aLosslessBreakdownBF2(b *testing.B) { runExperiment(b, "fig7a") }

// BenchmarkFig7bLosslessBreakdownBF3 regenerates Fig. 7b (BlueField-3).
func BenchmarkFig7bLosslessBreakdownBF3(b *testing.B) { runExperiment(b, "fig7b") }

// BenchmarkFig8RawCompressDecompress regenerates Fig. 8: PEDAL
// per-operation times across generations, engines and datasets, with the
// paper's headline speedups as reported metrics.
func BenchmarkFig8RawCompressDecompress(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9LossyBreakdown regenerates Fig. 9: the SZ3 time
// distribution on BF2/BF3, SoC vs C-Engine.
func BenchmarkFig9LossyBreakdown(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkTable5aLosslessRatios regenerates Table V(a).
func BenchmarkTable5aLosslessRatios(b *testing.B) { runExperiment(b, "table5a") }

// BenchmarkTable5bLossyRatios regenerates Table V(b).
func BenchmarkTable5bLossyRatios(b *testing.B) { runExperiment(b, "table5b") }

// BenchmarkFig10PtToPtLatency regenerates Fig. 10a-e: OSU-style MPI
// point-to-point latency for the six lossless designs vs the baseline.
func BenchmarkFig10PtToPtLatency(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig10fLossyLatency regenerates Fig. 10f: the SZ3 design's
// point-to-point latency vs the baseline.
func BenchmarkFig10fLossyLatency(b *testing.B) { runExperiment(b, "fig10f") }

// BenchmarkFig11Broadcast regenerates Fig. 11: four-node MPI_Bcast
// across designs and generations.
func BenchmarkFig11Broadcast(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkExtDeploymentScenarios runs the §VI deployment comparison
// (host-side compression vs DPU offload with PCIe movement).
func BenchmarkExtDeploymentScenarios(b *testing.B) { runExperiment(b, "ext-deploy") }

// BenchmarkExtHybridDesign runs the §V-C.2 hybrid parallel
// SoC+C-Engine design against the pure designs.
func BenchmarkExtHybridDesign(b *testing.B) { runExperiment(b, "ext-hybrid") }

// BenchmarkExtAblation isolates PEDAL's optimisations (init hoisting,
// buffer pooling, RNDV threshold).
func BenchmarkExtAblation(b *testing.B) { runExperiment(b, "ext-ablation") }

// ---- public-API microbenchmarks ----

func benchPayload() []byte {
	return bytes.Repeat([]byte("<sample id=\"3\">compressible benchmark payload</sample>\n"), 20000)
}

func benchCompress(b *testing.B, d pedal.Design) {
	lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField2})
	if err != nil {
		b.Fatal(err)
	}
	defer lib.Finalize()
	data := benchPayload()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, _, err := lib.Compress(d, pedal.TypeBytes, data)
		if err != nil {
			b.Fatal(err)
		}
		lib.Release(msg)
	}
}

func BenchmarkCompressSoCDeflate(b *testing.B)     { benchCompress(b, pedal.DesignSoCDeflate) }
func BenchmarkCompressCEngineDeflate(b *testing.B) { benchCompress(b, pedal.DesignCEngineDeflate) }
func BenchmarkCompressSoCZlib(b *testing.B)        { benchCompress(b, pedal.DesignSoCZlib) }
func BenchmarkCompressCEngineZlib(b *testing.B)    { benchCompress(b, pedal.DesignCEngineZlib) }
func BenchmarkCompressSoCLZ4(b *testing.B)         { benchCompress(b, pedal.DesignSoCLZ4) }

// BenchmarkExtPipeline runs the chunked compression–communication
// overlap comparison (serial vs streamed chunk-frame rendezvous).
func BenchmarkExtPipeline(b *testing.B) { runExperiment(b, "ext-pipeline") }

// ---- pipelined hot-path microbenchmarks ----

// BenchmarkCompressChunk is the allocation regression gate for the
// per-chunk software path: steady-state AppendCompress of one 256 KiB
// chunk into a reused bound-sized buffer must report 0 allocs/op.
func BenchmarkCompressChunk(b *testing.B) {
	data := bytes.Repeat([]byte("<chunk seq=\"11\">pipelined per-chunk payload</chunk>\n"), 5120)[:256<<10]
	dst := make([]byte, 0, flate.CompressBound(len(data)))
	// Warm the pooled scratch before measuring.
	_ = flate.AppendCompress(dst, data, flate.DefaultLevel)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = flate.AppendCompress(dst, data, flate.DefaultLevel)
	}
}

// BenchmarkDecompressChunk: the receive-side counterpart — inflating a
// chunk into a fixed full-capacity slot of the reassembly buffer.
func BenchmarkDecompressChunk(b *testing.B) {
	data := bytes.Repeat([]byte("<chunk seq=\"12\">pipelined per-chunk payload</chunk>\n"), 5120)[:256<<10]
	comp := flate.Compress(data, flate.DefaultLevel)
	slot := make([]byte, 0, len(data))
	if _, err := flate.AppendDecompress(slot, comp, len(data)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flate.AppendDecompress(slot, comp, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineOverlap drives CompressPipelined end to end on
// BlueField-3 and reports the makespan speedup over the serial design as
// a benchmark metric.
func BenchmarkPipelineOverlap(b *testing.B) {
	lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField3})
	if err != nil {
		b.Fatal(err)
	}
	defer lib.Finalize()
	data := bytes.Repeat([]byte("<sample id=\"5\">pipeline overlap benchmark payload</sample>\n"), 4<<20/56)
	msg, serial, err := lib.Compress(pedal.DesignSoCDeflate, pedal.TypeBytes, data)
	if err != nil {
		b.Fatal(err)
	}
	lib.Release(msg)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var piped pedal.Report
	for i := 0; i < b.N; i++ {
		msg, piped, err = lib.CompressPipelined(pedal.DesignSoCDeflate, pedal.TypeBytes, data)
		if err != nil {
			b.Fatal(err)
		}
		lib.Release(msg)
	}
	b.ReportMetric(float64(serial.Virtual)/float64(piped.Virtual), "makespan_speedup")
}

// BenchmarkVerifiedCompress drives CompressPipelined with VerifySampled
// — the compute fault domain's steady-state screening mode, which
// decode-verifies one chunk in eight against the source before release
// — so BENCH_pipeline.json records what verification costs next to
// BenchmarkPipelineOverlap's unverified baseline. The verified-overhead
// metric is the wall-clock ratio against an Off-mode library on the
// same payload; the acceptance bar is < 1.10.
func BenchmarkVerifiedCompress(b *testing.B) {
	data := bytes.Repeat([]byte("<sample id=\"6\">verified pipeline benchmark payload</sample>\n"), 4<<20/60)
	run := func(lib *pedal.Library) {
		msg, _, err := lib.CompressPipelined(pedal.DesignSoCDeflate, pedal.TypeBytes, data)
		if err != nil {
			b.Fatal(err)
		}
		lib.Release(msg)
	}
	base, err := pedal.Init(pedal.Options{Generation: pedal.BlueField3})
	if err != nil {
		b.Fatal(err)
	}
	defer base.Finalize()
	lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField3, Verify: integrity.VerifySampled})
	if err != nil {
		b.Fatal(err)
	}
	defer lib.Finalize()
	// Warm both libraries' pools, then time an equal slice of baseline
	// work for the overhead ratio.
	run(base)
	run(lib)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(lib)
	}
	verified := b.Elapsed()
	b.StopTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		run(base)
	}
	baseline := time.Since(start)
	if baseline > 0 {
		b.ReportMetric(verified.Seconds()/baseline.Seconds(), "verified_overhead_ratio")
	}
}

func BenchmarkDecompressCEngineDeflate(b *testing.B) {
	lib, err := pedal.Init(pedal.Options{Generation: pedal.BlueField2})
	if err != nil {
		b.Fatal(err)
	}
	defer lib.Finalize()
	data := benchPayload()
	msg, _, err := lib.Compress(pedal.DesignCEngineDeflate, pedal.TypeBytes, data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := lib.Decompress(pedal.CEngine, pedal.TypeBytes, msg, len(data)+64)
		if err != nil {
			b.Fatal(err)
		}
		lib.Release(out)
	}
}
