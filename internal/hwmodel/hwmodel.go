// Package hwmodel is the calibrated cost model for BlueField-2 and
// BlueField-3 DPUs. It answers one question: how long would this
// compression-related operation take on the real hardware?
//
// Calibration sources (see DESIGN.md §1 and EXPERIMENTS.md):
//
//   - Paper Fig. 8: BF2 C-Engine 101.8× / 11.2× faster than BF2 SoC for
//     DEFLATE compression/decompression on silesia/xml (5.1 MB); zlib on
//     mozilla 84.6× / 20×; BF3 C-Engine 1.78× / 1.28× BF2 C-Engine for
//     DEFLATE decompression at 5.1 / 48.84 MB.
//   - Paper §V-C: DOCA init + buffer preparation ≈ 94% of an un-hoisted
//     C-Engine run on a 5.1 MB dataset.
//   - Paper Fig. 10: BF3 SoC designs reduce communication time by up to
//     40% vs BF2 SoC (ARM A78 vs A72).
//   - Paper Fig. 9: BF3 SoC lossy pipeline up to 1.58× faster than the
//     BF3 "C-Engine" design (which redirects to SoC DEFLATE).
//
// All durations are *virtual* (see internal/simclock); the real work is
// still executed by the real Go codecs so the bytes and ratios are honest.
package hwmodel

import (
	"fmt"
	"time"
)

// Generation identifies a BlueField DPU generation.
type Generation uint8

// Supported generations.
const (
	BlueField2 Generation = iota + 2
	BlueField3
)

func (g Generation) String() string {
	switch g {
	case BlueField2:
		return "BlueField-2"
	case BlueField3:
		return "BlueField-3"
	default:
		return fmt.Sprintf("Generation(%d)", uint8(g))
	}
}

// Engine identifies where an operation executes on the DPU.
type Engine uint8

// Engines. SoC is the ARM core complex; CEngine is the hardware
// compression accelerator reached through DOCA.
const (
	SoC Engine = iota + 1
	CEngine
)

func (e Engine) String() string {
	switch e {
	case SoC:
		return "SoC"
	case CEngine:
		return "C-Engine"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// Algo identifies a compression algorithm in the cost tables.
type Algo uint8

// Algorithms covered by the model. SZ3Core is the lossy pipeline without
// its lossless backend stage (predict+quantize+encode); the backend is
// charged separately as the chosen lossless algorithm.
const (
	Deflate Algo = iota + 1
	Zlib
	LZ4
	SZ3Core
	FastLZ
)

func (a Algo) String() string {
	switch a {
	case Deflate:
		return "DEFLATE"
	case Zlib:
		return "zlib"
	case LZ4:
		return "LZ4"
	case SZ3Core:
		return "SZ3-core"
	case FastLZ:
		return "fastlz"
	default:
		return fmt.Sprintf("Algo(%d)", uint8(a))
	}
}

// Op distinguishes compression from decompression.
type Op uint8

// Operations.
const (
	Compress Op = iota + 1
	Decompress
)

func (o Op) String() string {
	if o == Compress {
		return "compress"
	}
	return "decompress"
}

// perf is a fixed-latency-plus-throughput cost: t(n) = Fixed + n/Throughput.
type perf struct {
	fixed time.Duration
	// throughput in bytes per second.
	throughput float64
}

func (p perf) duration(n int) time.Duration {
	if p.throughput == 0 {
		return p.fixed
	}
	return p.fixed + time.Duration(float64(n)/p.throughput*float64(time.Second))
}

const mib = 1 << 20

// mbps converts MB/s (MiB, to match dataset sizing) to bytes/second.
func mbps(v float64) float64 { return v * mib }

type opKey struct {
	gen  Generation
	eng  Engine
	algo Algo
	op   Op
}

// costTable holds the calibrated per-operation costs. Entries absent from
// the table are unsupported hardware paths (e.g. LZ4 on BF2's C-Engine);
// callers must consult internal/dpu's capability matrix first.
var costTable = map[opKey]perf{
	// ---- BlueField-2 SoC (8× ARM Cortex-A72 @2.75 GHz) ----
	{BlueField2, SoC, Deflate, Compress}:   {0, mbps(16)},
	{BlueField2, SoC, Deflate, Decompress}: {0, mbps(120)},
	{BlueField2, SoC, Zlib, Compress}:      {0, mbps(15.8)}, // DEFLATE + Adler-32
	{BlueField2, SoC, Zlib, Decompress}:    {0, mbps(115)},
	{BlueField2, SoC, LZ4, Compress}:       {0, mbps(390)},
	{BlueField2, SoC, LZ4, Decompress}:     {0, mbps(1500)},
	{BlueField2, SoC, SZ3Core, Compress}:   {0, mbps(95)},
	{BlueField2, SoC, SZ3Core, Decompress}: {0, mbps(190)},
	{BlueField2, SoC, FastLZ, Compress}:    {0, mbps(330)},
	{BlueField2, SoC, FastLZ, Decompress}:  {0, mbps(1100)},

	// ---- BlueField-2 C-Engine ----
	// Calibrated so DEFLATE compression is ~101.8× the SoC on 5.1 MB and
	// decompression ~11.2× (Fig. 8).
	{BlueField2, CEngine, Deflate, Compress}:   {1300 * time.Microsecond, mbps(2900)},
	{BlueField2, CEngine, Deflate, Decompress}: {1500 * time.Microsecond, mbps(2020)},
	{BlueField2, CEngine, Zlib, Compress}:      {1300 * time.Microsecond, mbps(2900)}, // body on C-Engine; Adler-32 charged via ZlibTrailer
	{BlueField2, CEngine, Zlib, Decompress}:    {1500 * time.Microsecond, mbps(2020)},

	// ---- BlueField-3 SoC (16× ARM Cortex-A78) ----
	// ~1.7× the BF2 SoC single-stream (paper: up to 40% lower comm time).
	{BlueField3, SoC, Deflate, Compress}:   {0, mbps(27)},
	{BlueField3, SoC, Deflate, Decompress}: {0, mbps(204)},
	{BlueField3, SoC, Zlib, Compress}:      {0, mbps(26.7)},
	{BlueField3, SoC, Zlib, Decompress}:    {0, mbps(196)},
	{BlueField3, SoC, LZ4, Compress}:       {0, mbps(660)},
	{BlueField3, SoC, LZ4, Decompress}:     {0, mbps(2550)},
	{BlueField3, SoC, SZ3Core, Compress}:   {0, mbps(160)},
	{BlueField3, SoC, SZ3Core, Decompress}: {0, mbps(320)},
	{BlueField3, SoC, FastLZ, Compress}:    {0, mbps(560)},
	{BlueField3, SoC, FastLZ, Decompress}:  {0, mbps(1870)},

	// ---- BlueField-3 C-Engine (decompression only) ----
	// Calibrated to 1.78× BF2's C-Engine at 5.1 MB and ~1.3× at 48.84 MB
	// (Fig. 8): lower fixed latency, moderately higher throughput.
	{BlueField3, CEngine, Deflate, Decompress}: {240 * time.Microsecond, mbps(2525)},
	{BlueField3, CEngine, Zlib, Decompress}:    {240 * time.Microsecond, mbps(2525)},
	{BlueField3, CEngine, LZ4, Decompress}:     {200 * time.Microsecond, mbps(3200)},
}

// OpCost returns the virtual duration of running algo/op over n input
// bytes on the given generation and engine. The boolean reports whether
// the hardware path exists; callers should fall back to the SoC when it
// does not (PEDAL's capability fallback, paper §III-D).
func OpCost(gen Generation, eng Engine, algo Algo, op Op, n int) (time.Duration, bool) {
	p, ok := costTable[opKey{gen, eng, algo, op}]
	if !ok {
		return 0, false
	}
	return p.duration(n), true
}

// InitCost is the one-time DOCA initialisation cost: device open, PE and
// work-queue creation, C-Engine context setup. The paper's baseline pays
// this on every message; PEDAL pays it once in PEDAL_Init.
func InitCost(gen Generation) time.Duration {
	switch gen {
	case BlueField3:
		return 120 * time.Millisecond
	default:
		return 150 * time.Millisecond
	}
}

// ResetCost is the engine hot-reset cost: work-queue teardown, C-Engine
// context destroy + re-create, and doorbell re-arm. Far cheaper than a
// full InitCost because the device stays open and the PE survives.
func ResetCost(gen Generation) time.Duration {
	switch gen {
	case BlueField3:
		return 18 * time.Millisecond
	default:
		return 25 * time.Millisecond
	}
}

// BufPrepCost models buffer preparation: allocation plus mapping between
// regular and DOCA-operable memory (mmap + buf-inventory registration).
func BufPrepCost(gen Generation, eng Engine, n int) time.Duration {
	if eng == CEngine {
		// DOCA mapping: fixed setup + pinning at ~3 GB/s.
		return 2*time.Millisecond + time.Duration(float64(n)/mbps(3072)*float64(time.Second))
	}
	// Plain allocation on the SoC.
	return 500*time.Microsecond + time.Duration(float64(n)/mbps(8192)*float64(time.Second))
}

// ZlibTrailerCost is the SoC-side Adler-32 + header assembly cost of the
// hybrid zlib design (checksum at ~2.5 GB/s on the A72, ~4.2 GB/s on the
// A78 thanks to the DDR5 bandwidth bump).
func ZlibTrailerCost(gen Generation, n int) time.Duration {
	t := mbps(2560)
	if gen == BlueField3 {
		t = mbps(4300)
	}
	return time.Duration(float64(n) / t * float64(time.Second))
}

// WireLatency models the RDMA network between two DPUs: a base latency
// plus size over link bandwidth. BF2 carries ConnectX-6 (200 Gb/s); BF3
// ConnectX-7 (400 Gb/s).
func WireLatency(gen Generation, n int) time.Duration {
	base := 2 * time.Microsecond
	var gbps float64 = 200
	if gen == BlueField3 {
		gbps = 400
	}
	bytesPerSec := gbps / 8 * 1e9
	return base + time.Duration(float64(n)/bytesPerSec*float64(time.Second))
}

// PCIeCost models a DMA transfer between the host and the DPU across
// the PCIe link (Gen4 x16 on BlueField-2, Gen5 x16 on BlueField-3),
// including the doorbell/DMA setup latency. Used by the host-offload
// deployment scenarios of the paper's §VI discussion.
func PCIeCost(gen Generation, n int) time.Duration {
	base := 3 * time.Microsecond
	gbps := 22.0 // effective Gen4 x16 payload bandwidth, GB/s
	if gen == BlueField3 {
		gbps = 42.0 // Gen5 x16
	}
	return base + time.Duration(float64(n)/(gbps*1e9)*float64(time.Second))
}

// Host-side (x86 server CPU) compression rates for the §VI deployment
// comparison: a modern Xeon core is faster than a DPU ARM core but far
// slower than the C-Engine for DEFLATE.
var hostCostTable = map[opKey]perf{
	{0, 0, Deflate, Compress}:   {0, mbps(45)},
	{0, 0, Deflate, Decompress}: {0, mbps(480)},
	{0, 0, Zlib, Compress}:      {0, mbps(44)},
	{0, 0, Zlib, Decompress}:    {0, mbps(460)},
	{0, 0, LZ4, Compress}:       {0, mbps(780)},
	{0, 0, LZ4, Decompress}:     {0, mbps(3600)},
	{0, 0, SZ3Core, Compress}:   {0, mbps(260)},
	{0, 0, SZ3Core, Decompress}: {0, mbps(520)},
	{0, 0, FastLZ, Compress}:    {0, mbps(650)},
	{0, 0, FastLZ, Decompress}:  {0, mbps(2300)},
}

// HostOpCost returns the virtual duration of running algo/op on the host
// CPU (one core of the x86 server the DPU is installed in).
func HostOpCost(algo Algo, op Op, n int) (time.Duration, bool) {
	p, ok := hostCostTable[opKey{0, 0, algo, op}]
	if !ok {
		return 0, false
	}
	return p.duration(n), true
}

// MemcpyCost models an on-SoC memory copy (DDR4 on BF2, DDR5 on BF3).
func MemcpyCost(gen Generation, n int) time.Duration {
	t := mbps(10240)
	if gen == BlueField3 {
		t = mbps(20480)
	}
	return time.Duration(float64(n) / t * float64(time.Second))
}
