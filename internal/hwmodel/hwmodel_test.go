package hwmodel

import (
	"testing"
	"time"
)

var (
	mibF = float64(mib)
	mb51 = int(5.1 * mibF) // silesia/xml size
)

func opCost(t *testing.T, gen Generation, eng Engine, algo Algo, op Op, n int) time.Duration {
	t.Helper()
	d, ok := OpCost(gen, eng, algo, op, n)
	if !ok {
		t.Fatalf("no cost entry for %v/%v/%v/%v", gen, eng, algo, op)
	}
	return d
}

// The calibration constraints from Fig. 8 must hold in the model.
func TestCalibrationDeflateCompressBF2(t *testing.T) {
	soc := opCost(t, BlueField2, SoC, Deflate, Compress, mb51)
	ce := opCost(t, BlueField2, CEngine, Deflate, Compress, mb51)
	ratio := float64(soc) / float64(ce)
	if ratio < 80 || ratio > 130 {
		t.Fatalf("BF2 C-Engine/SoC DEFLATE compression speedup = %.1f, want ≈101.8", ratio)
	}
}

func TestCalibrationDeflateDecompressBF2(t *testing.T) {
	soc := opCost(t, BlueField2, SoC, Deflate, Decompress, mb51)
	ce := opCost(t, BlueField2, CEngine, Deflate, Decompress, mb51)
	ratio := float64(soc) / float64(ce)
	if ratio < 5 || ratio > 18 {
		t.Fatalf("BF2 C-Engine/SoC DEFLATE decompression speedup = %.1f, want ≈11.2", ratio)
	}
}

func TestCalibrationBF3vsBF2CEngineDecompress(t *testing.T) {
	small := mb51
	large := int(48.84 * mibF)
	r1 := float64(opCost(t, BlueField2, CEngine, Deflate, Decompress, small)) /
		float64(opCost(t, BlueField3, CEngine, Deflate, Decompress, small))
	r2 := float64(opCost(t, BlueField2, CEngine, Deflate, Decompress, large)) /
		float64(opCost(t, BlueField3, CEngine, Deflate, Decompress, large))
	if r1 < 1.5 || r1 > 2.1 {
		t.Fatalf("BF3/BF2 C-Engine speedup at 5.1 MB = %.2f, want ≈1.78", r1)
	}
	if r2 < 1.1 || r2 > 1.5 {
		t.Fatalf("BF3/BF2 C-Engine speedup at 48.84 MB = %.2f, want ≈1.28", r2)
	}
	if r1 <= r2 {
		t.Fatalf("small-message advantage (%.2f) must exceed large-message (%.2f)", r1, r2)
	}
}

func TestBF3SoCFasterThanBF2SoC(t *testing.T) {
	for _, algo := range []Algo{Deflate, Zlib, LZ4, SZ3Core} {
		for _, op := range []Op{Compress, Decompress} {
			b2 := opCost(t, BlueField2, SoC, algo, op, mib)
			b3 := opCost(t, BlueField3, SoC, algo, op, mib)
			if b3 >= b2 {
				t.Errorf("%v %v: BF3 SoC (%v) not faster than BF2 SoC (%v)", algo, op, b3, b2)
			}
		}
	}
}

func TestDecompressionFasterThanCompression(t *testing.T) {
	// Paper Fig. 8 insight 2: decompression invariably shorter.
	for _, gen := range []Generation{BlueField2, BlueField3} {
		for _, algo := range []Algo{Deflate, Zlib, LZ4, SZ3Core} {
			c, okC := OpCost(gen, SoC, algo, Compress, 10*mib)
			d, okD := OpCost(gen, SoC, algo, Decompress, 10*mib)
			if !okC || !okD {
				t.Fatalf("missing SoC entries for %v/%v", gen, algo)
			}
			if d >= c {
				t.Errorf("%v %v SoC: decompress (%v) not faster than compress (%v)", gen, algo, d, c)
			}
		}
	}
}

func TestUnsupportedPathsAbsent(t *testing.T) {
	// Table II: BF2 C-Engine has no LZ4 at all; BF3 C-Engine cannot
	// compress anything.
	if _, ok := OpCost(BlueField2, CEngine, LZ4, Compress, mib); ok {
		t.Error("BF2 C-Engine LZ4 compression should be unsupported")
	}
	if _, ok := OpCost(BlueField2, CEngine, LZ4, Decompress, mib); ok {
		t.Error("BF2 C-Engine LZ4 decompression should be unsupported")
	}
	for _, algo := range []Algo{Deflate, Zlib, LZ4} {
		if _, ok := OpCost(BlueField3, CEngine, algo, Compress, mib); ok {
			t.Errorf("BF3 C-Engine %v compression should be unsupported", algo)
		}
	}
	if _, ok := OpCost(BlueField3, CEngine, LZ4, Decompress, mib); !ok {
		t.Error("BF3 C-Engine LZ4 decompression should be supported")
	}
}

func TestInitDominatesSmallMessages(t *testing.T) {
	// §V-C: init + buffer prep ≈ 94% of an un-hoisted 5.1 MB C-Engine run.
	n := mb51
	overhead := InitCost(BlueField2) + BufPrepCost(BlueField2, CEngine, n)
	work := opCost(t, BlueField2, CEngine, Deflate, Compress, n) +
		opCost(t, BlueField2, CEngine, Deflate, Decompress, n)
	frac := float64(overhead) / float64(overhead+work)
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("init+prep fraction = %.3f, want ≈0.94", frac)
	}
}

func TestCostsMonotonicInSize(t *testing.T) {
	for _, gen := range []Generation{BlueField2, BlueField3} {
		prev := time.Duration(0)
		for _, n := range []int{1 << 10, 1 << 16, 1 << 20, 1 << 24} {
			d := opCost(t, gen, SoC, Deflate, Compress, n)
			if d <= prev {
				t.Fatalf("%v: cost not monotonic at %d bytes", gen, n)
			}
			prev = d
		}
	}
}

func TestWireLatency(t *testing.T) {
	// BF3's 400 Gb/s link moves bulk data ~2× faster than BF2's 200 Gb/s.
	b2 := WireLatency(BlueField2, 100*mib)
	b3 := WireLatency(BlueField3, 100*mib)
	r := float64(b2) / float64(b3)
	if r < 1.8 || r > 2.2 {
		t.Fatalf("BF2/BF3 wire ratio = %.2f, want ≈2", r)
	}
	if WireLatency(BlueField2, 0) <= 0 {
		t.Fatal("zero-byte message must still have base latency")
	}
}

func TestStringers(t *testing.T) {
	if BlueField2.String() != "BlueField-2" || BlueField3.String() != "BlueField-3" {
		t.Error("Generation strings")
	}
	if SoC.String() != "SoC" || CEngine.String() != "C-Engine" {
		t.Error("Engine strings")
	}
	if Deflate.String() != "DEFLATE" || Zlib.String() != "zlib" || LZ4.String() != "LZ4" {
		t.Error("Algo strings")
	}
	if Compress.String() != "compress" || Decompress.String() != "decompress" {
		t.Error("Op strings")
	}
}
