// Package lz4 implements the LZ4 block and frame formats from scratch,
// following the official specifications (lz4_Block_format.md and
// lz4_Frame_format.md). The compressor uses the reference algorithm's
// greedy single-probe hash strategy, tuned for speed over ratio — the
// same trade-off the real LZ4 makes, which is why the paper's Table V(a)
// shows LZ4 ratios consistently below DEFLATE's.
package lz4

import (
	"errors"
	"fmt"
)

// Block format errors.
var (
	ErrCorrupt  = errors.New("lz4: corrupt block")
	ErrTooLarge = errors.New("lz4: output exceeds limit")
	ErrShortDst = errors.New("lz4: destination too small")
)

const (
	minMatch = 4
	// mfLimit: the last match must start at least this many bytes before
	// the block end (spec: last 5 bytes are always literals; matches must
	// not start within the last 12 bytes).
	mfLimit = 12
	// maxDistance is the LZ4 offset limit (64 KiB window).
	maxDistance = 65535

	hashLog  = 16
	hashSize = 1 << hashLog
)

// CompressBlockBound returns the maximum compressed size of a block of n
// input bytes (spec formula).
func CompressBlockBound(n int) int {
	return n + n/255 + 16
}

func blockHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - hashLog)
}

func load32(p []byte, i int) uint32 {
	return uint32(p[i]) | uint32(p[i+1])<<8 | uint32(p[i+2])<<16 | uint32(p[i+3])<<24
}

// CompressBlock compresses src into the LZ4 block format and returns the
// compressed bytes. Incompressible input grows by at most
// CompressBlockBound(len(src)) - len(src) bytes.
func CompressBlock(src []byte) []byte {
	return AppendCompressBlock(make([]byte, 0, CompressBlockBound(len(src))), src)
}

// AppendCompressBlock compresses src into the LZ4 block format,
// appending to dst. With cap(dst)-len(dst) ≥ CompressBlockBound(len(src))
// the call performs no heap allocation (the hash table is a fixed-size
// stack array).
func AppendCompressBlock(dst, src []byte) []byte {
	n := len(src)
	if n == 0 {
		return dst
	}
	if n < mfLimit+1 {
		return appendSequence(dst, src, 0, 0)
	}

	var table [hashSize]int32
	for i := range table {
		table[i] = -1
	}
	anchor := 0
	i := 0
	limit := n - mfLimit
	for i < limit {
		h := blockHash(load32(src, i))
		cand := int(table[h])
		table[h] = int32(i)
		if cand < 0 || i-cand > maxDistance || load32(src, cand) != load32(src, i) {
			i++
			continue
		}
		// Extend the match forward.
		matchLen := minMatch
		maxLen := n - 5 - i // last 5 bytes must remain literals
		for matchLen < maxLen && src[cand+matchLen] == src[i+matchLen] {
			matchLen++
		}
		// Extend backward over pending literals.
		for i > anchor && cand > 0 && src[i-1] == src[cand-1] {
			i--
			cand--
			matchLen++
		}
		dst = appendSequence(dst, src[anchor:i], matchLen, i-cand)
		i += matchLen
		anchor = i
		// Prime the table inside the match span for better future matches.
		if i < limit {
			table[blockHash(load32(src, i-2))] = int32(i - 2)
		}
	}
	return appendSequence(dst, src[anchor:], 0, 0)
}

// appendSequence emits one LZ4 sequence: token, literal length extension,
// literals, offset, match length extension. matchLen == 0 means a final
// literals-only sequence.
func appendSequence(dst, literals []byte, matchLen, offset int) []byte {
	litLen := len(literals)
	var token byte
	if litLen >= 15 {
		token = 0xF0
	} else {
		token = byte(litLen) << 4
	}
	if matchLen > 0 {
		ml := matchLen - minMatch
		if ml >= 15 {
			token |= 0x0F
		} else {
			token |= byte(ml)
		}
		dst = append(dst, token)
		dst = appendLenExt(dst, litLen-15)
		dst = append(dst, literals...)
		dst = append(dst, byte(offset), byte(offset>>8))
		dst = appendLenExt(dst, ml-15)
		return dst
	}
	dst = append(dst, token)
	dst = appendLenExt(dst, litLen-15)
	return append(dst, literals...)
}

// appendLenExt emits the 255-run length extension when rem >= 0.
func appendLenExt(dst []byte, rem int) []byte {
	if rem < 0 {
		return dst
	}
	for rem >= 255 {
		dst = append(dst, 255)
		rem -= 255
	}
	return append(dst, byte(rem))
}

// DecompressBlock decompresses an LZ4 block into a buffer of at most limit
// bytes.
func DecompressBlock(src []byte, limit int) ([]byte, error) {
	var out []byte
	i := 0
	n := len(src)
	if n == 0 {
		return nil, nil
	}
	for i < n {
		token := src[i]
		i++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			for {
				if i >= n {
					return nil, fmt.Errorf("%w: truncated literal length", ErrCorrupt)
				}
				b := src[i]
				i++
				litLen += int(b)
				if b != 255 {
					break
				}
			}
		}
		if i+litLen > n {
			return nil, fmt.Errorf("%w: literals overrun input", ErrCorrupt)
		}
		if len(out)+litLen > limit {
			return nil, ErrTooLarge
		}
		out = append(out, src[i:i+litLen]...)
		i += litLen
		if i == n {
			break // final literals-only sequence
		}
		// Match.
		if i+2 > n {
			return nil, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 {
			return nil, fmt.Errorf("%w: zero offset", ErrCorrupt)
		}
		if offset > len(out) {
			return nil, fmt.Errorf("%w: offset %d beyond output %d", ErrCorrupt, offset, len(out))
		}
		matchLen := int(token & 0x0F)
		if matchLen == 15 {
			for {
				if i >= n {
					return nil, fmt.Errorf("%w: truncated match length", ErrCorrupt)
				}
				b := src[i]
				i++
				matchLen += int(b)
				if b != 255 {
					break
				}
			}
		}
		matchLen += minMatch
		if len(out)+matchLen > limit {
			return nil, ErrTooLarge
		}
		start := len(out) - offset
		for k := 0; k < matchLen; k++ {
			out = append(out, out[start+k])
		}
	}
	return out, nil
}
