package lz4

import (
	"bytes"
	"testing"
)

// FuzzDecompressBlock must never panic on arbitrary block input.
func FuzzDecompressBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add(CompressBlock([]byte("lz4 fuzz seed, somewhat compressible compressible")))
	f.Add([]byte{0x10, 'x', 0x01, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecompressBlock(data, 1<<22)
		if err == nil && len(out) > 1<<22 {
			t.Fatalf("limit exceeded: %d", len(out))
		}
	})
}

// FuzzDecompressFrame must never panic on arbitrary frame input.
func FuzzDecompressFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(Compress([]byte("frame fuzz seed")))
	f.Add(Compress(bytes.Repeat([]byte{7}, 10000)))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecompressLimit(data, 1<<22)
		if err == nil && len(out) > 1<<22 {
			t.Fatalf("limit exceeded: %d", len(out))
		}
	})
}

// FuzzBlockRoundTrip requires byte-exact block round trips.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaa"))
	f.Add(bytes.Repeat([]byte("0123456789abcdef"), 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecompressBlock(CompressBlock(data), len(data)+16)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzFrameRoundTrip requires byte-exact frame round trips.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("frame round trip"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecompressLimit(Compress(data), len(data)+64)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
	})
}
