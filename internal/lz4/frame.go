package lz4

import (
	"errors"
	"fmt"

	"pedal/internal/checksum"
)

// Frame format errors.
var (
	ErrFrameMagic    = errors.New("lz4: bad frame magic")
	ErrFrameHeader   = errors.New("lz4: bad frame header")
	ErrFrameChecksum = errors.New("lz4: frame content checksum mismatch")
)

const (
	frameMagic = 0x184D2204

	// flgVersion is FLG version bits 01 in bits 7-6.
	flgVersion         = 1 << 6
	flgContentChecksum = 1 << 2
	flgContentSize     = 1 << 3

	// bdBlockMax4MB selects the 4 MB max block size (BD bits 6-4 = 7).
	bdBlockMax4MB = 7 << 4
	blockMax      = 4 << 20

	// uncompressedBit marks a stored block in the block size word.
	uncompressedBit = 1 << 31
)

// Compress produces a complete LZ4 frame: magic, frame descriptor with
// content size and content checksum, 4 MB blocks, end mark, checksum.
func Compress(src []byte) []byte {
	return AppendCompress(make([]byte, 0, CompressBlockBound(len(src))+32), src)
}

// CompressBound returns a dst capacity that guarantees AppendCompress
// will not reallocate: frame header (15) + per-block size words and
// worst-case block expansion + end mark and content checksum. The
// compressed attempt for a block that ends up stored transiently needs
// the full CompressBlockBound, so that is what is budgeted.
func CompressBound(n int) int {
	blocks := n/blockMax + 1
	return n + n/255 + 20*blocks + 32
}

// AppendCompress is Compress appending to dst. With
// cap(dst)-len(dst) ≥ CompressBound(len(src)) the call performs no heap
// allocation: each block is compressed directly into dst after a size
// placeholder, and rewound to a stored block if compression expanded it.
func AppendCompress(dst, src []byte) []byte {
	out := dst
	out = appendLE32(out, frameMagic)

	flg := byte(flgVersion | flgContentChecksum | flgContentSize)
	bd := byte(bdBlockMax4MB)
	out = append(out, flg, bd)
	// Content size: 8 bytes little-endian.
	sz := uint64(len(src))
	for k := 0; k < 8; k++ {
		out = append(out, byte(sz>>(8*k)))
	}
	// HC: second byte of xxh32 of the descriptor (FLG..content size).
	hc := byte(checksum.XXH32(out[4:], 0) >> 8)
	out = append(out, hc)

	for off := 0; off < len(src) || (off == 0 && len(src) == 0); off += blockMax {
		end := off + blockMax
		if end > len(src) {
			end = len(src)
		}
		chunk := src[off:end]
		if len(chunk) == 0 {
			break
		}
		// Compress in place after a 4-byte size placeholder; rewind to a
		// stored block if the result did not shrink.
		sizePos := len(out)
		out = appendLE32(out, 0)
		out = AppendCompressBlock(out, chunk)
		compLen := len(out) - sizePos - 4
		if compLen >= len(chunk) {
			out = out[:sizePos]
			out = appendLE32(out, uint32(len(chunk))|uncompressedBit)
			out = append(out, chunk...)
		} else {
			writeLE32(out[sizePos:], uint32(compLen))
		}
	}
	out = appendLE32(out, 0) // EndMark
	out = appendLE32(out, checksum.XXH32(src, 0))
	return out
}

// Decompress parses a complete LZ4 frame and returns the content,
// verifying the content checksum when present.
func Decompress(src []byte) ([]byte, error) {
	return DecompressLimit(src, 1<<31)
}

// DecompressLimit is Decompress with an output cap.
func DecompressLimit(src []byte, limit int) ([]byte, error) {
	if len(src) < 7 {
		return nil, ErrFrameMagic
	}
	if readLE32(src) != frameMagic {
		return nil, ErrFrameMagic
	}
	i := 4
	flg := src[i]
	bd := src[i+1]
	i += 2
	if flg>>6 != 1 {
		return nil, fmt.Errorf("%w: version %d", ErrFrameHeader, flg>>6)
	}
	if bd&0x8F != 0 {
		return nil, fmt.Errorf("%w: reserved BD bits", ErrFrameHeader)
	}
	var contentSize uint64
	hasContentSize := flg&flgContentSize != 0
	if hasContentSize {
		if i+8 > len(src) {
			return nil, fmt.Errorf("%w: truncated content size", ErrFrameHeader)
		}
		for k := 0; k < 8; k++ {
			contentSize |= uint64(src[i+k]) << (8 * k)
		}
		i += 8
	}
	if flg&(1<<0) != 0 { // DictID present
		i += 4
	}
	if i >= len(src) {
		return nil, fmt.Errorf("%w: truncated descriptor", ErrFrameHeader)
	}
	// Verify HC over the descriptor bytes.
	hc := src[i]
	if byte(checksum.XXH32(src[4:i], 0)>>8) != hc {
		return nil, fmt.Errorf("%w: descriptor checksum", ErrFrameHeader)
	}
	i++

	var out []byte
	for {
		if i+4 > len(src) {
			return nil, fmt.Errorf("%w: truncated block size", ErrCorrupt)
		}
		word := readLE32(src[i:])
		i += 4
		if word == 0 {
			break // EndMark
		}
		stored := word&uncompressedBit != 0
		size := int(word &^ uncompressedBit)
		if size > blockMax+16 {
			return nil, fmt.Errorf("%w: block size %d", ErrCorrupt, size)
		}
		if i+size > len(src) {
			return nil, fmt.Errorf("%w: block overruns input", ErrCorrupt)
		}
		blk := src[i : i+size]
		i += size
		if flg&(1<<4) != 0 { // block checksum
			if i+4 > len(src) {
				return nil, fmt.Errorf("%w: truncated block checksum", ErrCorrupt)
			}
			if readLE32(src[i:]) != checksum.XXH32(blk, 0) {
				return nil, fmt.Errorf("%w: block checksum mismatch", ErrCorrupt)
			}
			i += 4
		}
		if stored {
			if len(out)+size > limit {
				return nil, ErrTooLarge
			}
			out = append(out, blk...)
			continue
		}
		dec, err := DecompressBlock(blk, limit-len(out))
		if err != nil {
			return nil, err
		}
		out = append(out, dec...)
	}
	if flg&flgContentChecksum != 0 {
		if i+4 > len(src) {
			return nil, fmt.Errorf("%w: truncated content checksum", ErrCorrupt)
		}
		if readLE32(src[i:]) != checksum.XXH32(out, 0) {
			return nil, ErrFrameChecksum
		}
	}
	if hasContentSize && uint64(len(out)) != contentSize {
		return nil, fmt.Errorf("%w: content size %d != declared %d", ErrCorrupt, len(out), contentSize)
	}
	return out, nil
}

func appendLE32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func writeLE32(p []byte, v uint32) {
	p[0], p[1], p[2], p[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func readLE32(p []byte) uint32 {
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}
