package lz4

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pedal/internal/checksum"
)

func blockInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(21))
	rnd := make([]byte, 70000)
	rng.Read(rnd)
	return map[string][]byte{
		"empty":      {},
		"one":        {9},
		"tiny":       []byte("abc"),
		"twelve":     []byte("123456789012"),
		"thirteen":   []byte("1234567890123"),
		"zeros":      make([]byte, 100000),
		"repeats":    bytes.Repeat([]byte("lz4 block "), 5000),
		"text":       []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 800)),
		"random":     rnd,
		"long-lits":  append(append([]byte{}, rnd[:400]...), bytes.Repeat([]byte("zq"), 600)...),
		"rle-suffix": append(append([]byte{}, rnd[:1000]...), bytes.Repeat([]byte{0}, 5000)...),
	}
}

func TestBlockRoundTrip(t *testing.T) {
	for name, src := range blockInputs() {
		comp := CompressBlock(src)
		if len(comp) > CompressBlockBound(len(src)) {
			t.Fatalf("%s: compressed %d exceeds bound %d", name, len(comp), CompressBlockBound(len(src)))
		}
		got, err := DecompressBlock(comp, len(src)+16)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: round trip mismatch (%d vs %d bytes)", name, len(got), len(src))
		}
	}
}

func TestBlockCompressesRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 10000)
	comp := CompressBlock(src)
	if len(comp) > len(src)/10 {
		t.Fatalf("repetitive input compressed to %d of %d; want < 10%%", len(comp), len(src))
	}
}

func TestBlockSpecLastFiveLiterals(t *testing.T) {
	// The spec requires the last 5 bytes to be literals and no match
	// within the last 12 bytes. Verify via exact round trips near those
	// boundaries with highly matchable data.
	for n := 1; n < 64; n++ {
		src := bytes.Repeat([]byte{0xAA}, n)
		got, err := DecompressBlock(CompressBlock(src), n+8)
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("n=%d: round trip failed: %v", n, err)
		}
	}
}

func TestDecompressBlockCorrupt(t *testing.T) {
	// Offset beyond output.
	bad := []byte{0x10, 'x', 0xFF, 0xFF, 0x00}
	if _, err := DecompressBlock(bad, 1000); err == nil {
		t.Fatal("offset beyond output accepted")
	}
	// Zero offset.
	bad = []byte{0x10, 'x', 0x00, 0x00, 0x00}
	if _, err := DecompressBlock(bad, 1000); err == nil {
		t.Fatal("zero offset accepted")
	}
	// Truncated literal run.
	bad = []byte{0xF0, 0xFF}
	if _, err := DecompressBlock(bad, 1000); err == nil {
		t.Fatal("truncated literal length accepted")
	}
}

func TestDecompressBlockLimit(t *testing.T) {
	src := make([]byte, 100000)
	comp := CompressBlock(src)
	if _, err := DecompressBlock(comp, 1000); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for name, src := range blockInputs() {
		f := Compress(src)
		got, err := Decompress(f)
		if err != nil {
			t.Fatalf("%s: frame decompress: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: frame round trip mismatch", name)
		}
	}
}

func TestFrameMultiBlock(t *testing.T) {
	// Exceed the 4 MB block size to force multiple blocks.
	src := bytes.Repeat([]byte("0123456789abcdef"), (5<<20)/16)
	f := Compress(src)
	got, err := Decompress(f)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("multi-block frame failed: %v", err)
	}
}

func TestFrameMagicRejected(t *testing.T) {
	if _, err := Decompress([]byte{1, 2, 3, 4, 5, 6, 7, 8}); !errors.Is(err, ErrFrameMagic) {
		t.Fatalf("want ErrFrameMagic, got %v", err)
	}
}

func TestFrameChecksumDetectsCorruption(t *testing.T) {
	src := []byte(strings.Repeat("checksummed ", 1000))
	f := Compress(src)
	// Flip a bit inside the block payload (skip 15-byte header region).
	f[20] ^= 0x01
	if _, err := Decompress(f); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestFrameDescriptorChecksum(t *testing.T) {
	src := []byte("hc guard")
	f := Compress(src)
	f[4] ^= 0x04 // flip a FLG bit → HC mismatch
	if _, err := Decompress(f); err == nil {
		t.Fatal("descriptor corruption accepted")
	}
}

func TestFrameContentSizeMismatch(t *testing.T) {
	src := []byte(strings.Repeat("size matters ", 100))
	f := Compress(src)
	// Corrupt the declared content size and fix up the descriptor HC so
	// only the final size check can catch it.
	f[6] ^= 0xFF
	// Recompute HC (descriptor spans bytes 4..13, HC at 14).
	hcPos := 14
	f[hcPos] = byte(xxhOf(f[4:hcPos]) >> 8)
	if _, err := Decompress(f); err == nil {
		t.Fatal("content size mismatch accepted")
	}
}

func xxhOf(p []byte) uint32 {
	// Local indirection to keep the test readable.
	return checksum.XXH32(p, 0)
}

func TestQuickBlockRoundTrip(t *testing.T) {
	f := func(seed int64, size uint16, alpha uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alpha)%48 + 1
		src := make([]byte, int(size))
		for i := range src {
			src[i] = byte(rng.Intn(a))
		}
		got, err := DecompressBlock(CompressBlock(src), len(src)+16)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		src := make([]byte, int(size))
		for i := range src {
			src[i] = byte(rng.Intn(30))
		}
		got, err := Decompress(Compress(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressBlock(b *testing.B) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 20000))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		CompressBlock(src)
	}
}

func BenchmarkDecompressBlock(b *testing.B) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 20000))
	comp := CompressBlock(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressBlock(comp, len(src)+16); err != nil {
			b.Fatal(err)
		}
	}
}
