package zlibfmt

import (
	"bytes"
	stdzlib "compress/zlib"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pedal/internal/flate"
)

func TestRoundTrip(t *testing.T) {
	inputs := [][]byte{
		{},
		[]byte("x"),
		[]byte(strings.Repeat("zlib wraps deflate ", 1000)),
		make([]byte, 50000),
	}
	for i, src := range inputs {
		for _, level := range []int{1, 6, 9} {
			z := Compress(src, level)
			got, err := Decompress(z)
			if err != nil {
				t.Fatalf("input %d level %d: %v", i, level, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("input %d level %d: mismatch", i, level)
			}
		}
	}
}

func TestStdlibDecodesOurOutput(t *testing.T) {
	src := []byte(strings.Repeat("interop with compress/zlib! ", 500))
	z := Compress(src, 6)
	r, err := stdzlib.NewReader(bytes.NewReader(z))
	if err != nil {
		t.Fatalf("stdlib rejected our header: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("stdlib inflate: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("stdlib decoded wrong bytes")
	}
}

func TestWeDecodeStdlibOutput(t *testing.T) {
	src := []byte(strings.Repeat("the other direction too ", 500))
	var buf bytes.Buffer
	w := stdzlib.NewWriter(&buf)
	w.Write(src)
	w.Close()
	got, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatalf("our decode of stdlib output: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("wrong bytes")
	}
}

func TestHeaderFCheck(t *testing.T) {
	for level := 1; level <= 9; level++ {
		h := Header(level)
		if (uint16(h[0])*256+uint16(h[1]))%31 != 0 {
			t.Errorf("level %d: FCHECK invalid: % x", level, h)
		}
		if h[0]&0x0F != 8 {
			t.Errorf("level %d: CM != 8", level)
		}
	}
}

func TestHeaderLevels(t *testing.T) {
	// FLEVEL field must reflect the level class.
	if Header(1)[1]>>6 != 0 {
		t.Error("level 1 FLEVEL != 0")
	}
	if Header(6)[1]>>6 != 2 {
		t.Error("level 6 FLEVEL != 2")
	}
	if Header(9)[1]>>6 != 3 {
		t.Error("level 9 FLEVEL != 3")
	}
}

func TestSplitAssembleEqualsCompress(t *testing.T) {
	// The hybrid path (header + C-Engine body + trailer) must produce a
	// stream identical to the one-shot path.
	src := []byte(strings.Repeat("hybrid SoC + C-Engine zlib ", 300))
	body := flate.Compress(src, 6)
	assembled := Assemble(6, body, src)
	oneShot := Compress(src, 6)
	if !bytes.Equal(assembled, oneShot) {
		t.Fatal("assembled stream differs from one-shot stream")
	}
	got, err := Decompress(assembled)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("assembled stream does not decompress: %v", err)
	}
}

func TestBodyExtraction(t *testing.T) {
	src := []byte("extract the deflate body")
	z := Compress(src, 6)
	body, err := Body(z)
	if err != nil {
		t.Fatal(err)
	}
	got, err := flate.Decompress(body)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("body did not inflate: %v", err)
	}
	if err := VerifyTrailer(z, got); err != nil {
		t.Fatalf("trailer verify: %v", err)
	}
	if err := VerifyTrailer(z, append(got, 'x')); err == nil {
		t.Fatal("trailer verified against wrong data")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	src := []byte(strings.Repeat("checksummed payload ", 100))
	z := Compress(src, 6)
	z[len(z)-1] ^= 0xFF // corrupt the trailer
	if _, err := Decompress(z); !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
}

func TestBadHeaders(t *testing.T) {
	if _, err := Decompress([]byte{0x78}); !errors.Is(err, ErrShort) {
		t.Errorf("1-byte input: %v", err)
	}
	if _, err := Decompress([]byte{0x79, 0x01, 0, 0, 0, 0, 1}); err == nil {
		t.Error("bad CM accepted")
	}
	// Dictionary flag set.
	cmf := byte(0x78)
	flg := byte(0x20)
	rem := (uint16(cmf)*256 + uint16(flg)) % 31
	if rem != 0 {
		flg += byte(31 - rem)
	}
	if _, err := Decompress([]byte{cmf, flg, 0, 0, 0, 0, 1}); !errors.Is(err, ErrDict) {
		t.Errorf("dictionary stream: %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		src := make([]byte, int(size))
		for i := range src {
			src[i] = byte(rng.Intn(40))
		}
		got, err := Decompress(Compress(src, 6))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
