// Package zlibfmt implements the zlib compressed data format (RFC 1950):
// a 2-byte header and a 4-byte Adler-32 trailer around a DEFLATE stream.
//
// Besides the ordinary one-shot Compress/Decompress, the package exposes
// the split Header/Body/Trailer operations that PEDAL's hybrid design uses
// on the BlueField DPU: the SoC computes the zlib header and trailer while
// the actual DEFLATE body is produced by the C-Engine (paper §III-C.1,
// Fig. 3).
package zlibfmt

import (
	"errors"
	"fmt"

	"pedal/internal/checksum"
	"pedal/internal/flate"
)

// Format errors.
var (
	ErrHeader   = errors.New("zlibfmt: invalid header")
	ErrChecksum = errors.New("zlibfmt: Adler-32 mismatch")
	ErrDict     = errors.New("zlibfmt: preset dictionaries unsupported")
	ErrShort    = errors.New("zlibfmt: stream too short")
)

const (
	cmfDeflate = 8 // CM=8: DEFLATE with up to 32K window
	cinfo32K   = 7 // CINFO=7: 32K window
)

// Header returns the 2-byte zlib header for a DEFLATE body compressed at
// the given level, per RFC 1950 §2.2. This is the SoC-side half of PEDAL's
// hybrid zlib design.
func Header(level int) [2]byte {
	cmf := byte(cinfo32K<<4 | cmfDeflate)
	var flevel byte
	switch {
	case level <= 1:
		flevel = 0 // fastest
	case level <= 5:
		flevel = 1 // fast
	case level == 6:
		flevel = 2 // default
	default:
		flevel = 3 // maximum
	}
	flg := flevel << 6
	// FCHECK: make (CMF*256 + FLG) a multiple of 31.
	rem := (uint16(cmf)*256 + uint16(flg)) % 31
	if rem != 0 {
		flg += byte(31 - rem)
	}
	return [2]byte{cmf, flg}
}

// Trailer returns the 4-byte big-endian Adler-32 trailer over the
// *uncompressed* data, per RFC 1950 §2.3.
func Trailer(uncompressed []byte) [4]byte {
	s := checksum.Adler32Sum(uncompressed)
	return [4]byte{byte(s >> 24), byte(s >> 16), byte(s >> 8), byte(s)}
}

// Assemble concatenates header + DEFLATE body + trailer into a complete
// zlib stream. The body must be a valid RFC 1951 stream for the
// uncompressed data; Assemble does not verify this.
func Assemble(level int, deflateBody, uncompressed []byte) []byte {
	h := Header(level)
	t := Trailer(uncompressed)
	out := make([]byte, 0, 2+len(deflateBody)+4)
	out = append(out, h[:]...)
	out = append(out, deflateBody...)
	out = append(out, t[:]...)
	return out
}

// Compress produces a complete zlib stream for src at the given level.
func Compress(src []byte, level int) []byte {
	return Assemble(level, flate.Compress(src, level), src)
}

// ParseHeader validates the 2-byte zlib header and reports whether a
// preset dictionary follows (unsupported).
func ParseHeader(src []byte) error {
	if len(src) < 2 {
		return ErrShort
	}
	cmf, flg := src[0], src[1]
	if cmf&0x0F != cmfDeflate {
		return fmt.Errorf("%w: compression method %d", ErrHeader, cmf&0x0F)
	}
	if cmf>>4 > 7 {
		return fmt.Errorf("%w: window size code %d", ErrHeader, cmf>>4)
	}
	if (uint16(cmf)*256+uint16(flg))%31 != 0 {
		return fmt.Errorf("%w: FCHECK failed", ErrHeader)
	}
	if flg&0x20 != 0 {
		return ErrDict
	}
	return nil
}

// Decompress inflates a complete zlib stream and verifies the Adler-32
// trailer.
func Decompress(src []byte) ([]byte, error) {
	return DecompressLimit(src, flate.DefaultMaxOutput)
}

// DecompressLimit is Decompress with an output size cap.
func DecompressLimit(src []byte, limit int) ([]byte, error) {
	if err := ParseHeader(src); err != nil {
		return nil, err
	}
	if len(src) < 2+4 {
		return nil, ErrShort
	}
	body := src[2 : len(src)-4]
	out, err := flate.DecompressLimit(body, limit)
	if err != nil {
		return nil, err
	}
	tr := src[len(src)-4:]
	want := uint32(tr[0])<<24 | uint32(tr[1])<<16 | uint32(tr[2])<<8 | uint32(tr[3])
	if got := checksum.Adler32Sum(out); got != want {
		return nil, fmt.Errorf("%w: got %#x want %#x", ErrChecksum, got, want)
	}
	return out, nil
}

// Body extracts the raw DEFLATE body from a zlib stream without inflating
// it. Used by PEDAL's hybrid receive path, where the C-Engine inflates the
// body and the SoC only verifies the trailer.
func Body(src []byte) ([]byte, error) {
	if err := ParseHeader(src); err != nil {
		return nil, err
	}
	if len(src) < 2+4 {
		return nil, ErrShort
	}
	return src[2 : len(src)-4], nil
}

// VerifyTrailer checks the stream's Adler-32 trailer against decompressed
// data produced elsewhere (e.g. by the C-Engine).
func VerifyTrailer(src, uncompressed []byte) error {
	if len(src) < 6 {
		return ErrShort
	}
	tr := src[len(src)-4:]
	want := uint32(tr[0])<<24 | uint32(tr[1])<<16 | uint32(tr[2])<<8 | uint32(tr[3])
	if got := checksum.Adler32Sum(uncompressed); got != want {
		return fmt.Errorf("%w: got %#x want %#x", ErrChecksum, got, want)
	}
	return nil
}
