// Package trace records hardware activity for observability: each
// C-Engine job and SoC software run can be logged with its algorithm,
// operation, sizes and modelled duration, and dumped as a timeline
// table. The experiment harness uses it to explain *where* time went in
// a run, complementing the aggregate phase breakdowns of
// internal/stats.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Event is one recorded hardware activity.
type Event struct {
	// Seq is the record sequence number (assigned by the tracer).
	Seq int
	// Engine is where the work ran ("C-Engine", "SoC", "host", ...).
	Engine string
	// Algo and Op name the work ("DEFLATE", "compress", ...).
	Algo string
	Op   string
	// InBytes and OutBytes are the real data sizes.
	InBytes  int
	OutBytes int
	// Virtual is the modelled duration.
	Virtual time.Duration
	// Wall is the observed wall-clock duration of the simulation step.
	Wall time.Duration
	// Err notes a failed activity (empty on success): failed C-Engine
	// jobs and circuit-breaker transitions are traced too, so a timeline
	// shows *why* work moved between engines.
	Err string
}

// Tracer is a bounded in-memory event recorder, safe for concurrent
// use. A nil *Tracer is a valid no-op recorder.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	next   int
	limit  int
}

// DefaultLimit bounds retained events.
const DefaultLimit = 4096

// New returns a tracer retaining up to limit events (0 means
// DefaultLimit). The oldest events are dropped once the limit is hit.
func New(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Tracer{limit: limit}
}

// Record appends an event. Safe on a nil tracer.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Seq = t.next
	t.next++
	if len(t.events) >= t.limit {
		copy(t.events, t.events[1:])
		t.events = t.events[:len(t.events)-1]
	}
	t.events = append(t.events, e)
}

// Events returns a copy of the retained events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len reports the retained event count.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Reset discards all events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = t.events[:0]
	t.next = 0
}

// String renders the timeline as an aligned table.
func (t *Tracer) String() string {
	events := t.Events()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %-9s %-10s %-11s %12s %12s %14s\n",
		"seq", "engine", "algo", "op", "in(B)", "out(B)", "virtual")
	for _, e := range events {
		fmt.Fprintf(&sb, "%-5d %-9s %-10s %-11s %12d %12d %14v",
			e.Seq, e.Engine, e.Algo, e.Op, e.InBytes, e.OutBytes, e.Virtual.Round(time.Microsecond))
		if e.Err != "" {
			fmt.Fprintf(&sb, "  !%s", e.Err)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CountOps reports how many retained events match the given engine and
// op ("" matches all). Experiment assertions use it to check that a
// fault-handling path actually fired (e.g. fleet failovers or ejects).
func (t *Tracer) CountOps(engine, op string) int {
	n := 0
	for _, e := range t.Events() {
		if (engine == "" || e.Engine == engine) && (op == "" || e.Op == op) {
			n++
		}
	}
	return n
}

// TotalVirtual sums the modelled durations of all retained events,
// optionally filtered by engine ("" matches all).
func (t *Tracer) TotalVirtual(engine string) time.Duration {
	var total time.Duration
	for _, e := range t.Events() {
		if engine == "" || e.Engine == engine {
			total += e.Virtual
		}
	}
	return total
}
