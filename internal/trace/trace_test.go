package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndString(t *testing.T) {
	tr := New(0)
	tr.Record(Event{Engine: "C-Engine", Algo: "DEFLATE", Op: "compress", InBytes: 1000, OutBytes: 100, Virtual: time.Millisecond})
	tr.Record(Event{Engine: "SoC", Algo: "LZ4", Op: "decompress", InBytes: 100, OutBytes: 1000, Virtual: 2 * time.Millisecond})
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	events := tr.Events()
	if events[0].Seq != 0 || events[1].Seq != 1 {
		t.Fatal("sequence numbers wrong")
	}
	s := tr.String()
	if !strings.Contains(s, "C-Engine") || !strings.Contains(s, "DEFLATE") {
		t.Fatalf("format: %s", s)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{})
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer not inert")
	}
	tr.Reset()
}

func TestLimitDropsOldest(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Record(Event{InBytes: i})
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d", len(events))
	}
	if events[0].InBytes != 2 || events[2].InBytes != 4 {
		t.Fatalf("wrong retention: %+v", events)
	}
	// Sequence numbers keep counting across drops.
	if events[2].Seq != 4 {
		t.Fatalf("seq = %d", events[2].Seq)
	}
}

func TestTotalVirtualFiltered(t *testing.T) {
	tr := New(0)
	tr.Record(Event{Engine: "SoC", Virtual: time.Millisecond})
	tr.Record(Event{Engine: "C-Engine", Virtual: 2 * time.Millisecond})
	tr.Record(Event{Engine: "C-Engine", Virtual: 3 * time.Millisecond})
	if got := tr.TotalVirtual(""); got != 6*time.Millisecond {
		t.Fatalf("all = %v", got)
	}
	if got := tr.TotalVirtual("C-Engine"); got != 5*time.Millisecond {
		t.Fatalf("engine = %v", got)
	}
}

func TestReset(t *testing.T) {
	tr := New(0)
	tr.Record(Event{})
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset failed")
	}
	tr.Record(Event{})
	if tr.Events()[0].Seq != 0 {
		t.Fatal("seq not reset")
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New(10000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Event{Virtual: time.Microsecond})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 4000 {
		t.Fatalf("len = %d", tr.Len())
	}
}
