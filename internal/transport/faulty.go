package transport

import (
	"sync"
	"time"

	"pedal/internal/faults"
	"pedal/internal/stats"
)

// faultyEndpoint wraps an Endpoint and injects network faults on the
// send path from a seeded faults.NetInjector: frames can be dropped,
// duplicated, reordered, bit-flipped or delayed (virtual time) before
// they reach the underlying fabric. It deliberately breaks the Endpoint
// contract's per-(src,dst) FIFO and integrity guarantees — the
// reliability sublayer (WrapReliable) is what restores them, so the two
// wrappers are normally stacked: reliable(faulty(raw)).
type faultyEndpoint struct {
	inner Endpoint
	inj   *faults.NetInjector
	bd    *stats.Breakdown

	mu sync.Mutex
	// held is the reorder slot: a frame being overtaken waits here until
	// the next send (or receive call) flushes it.
	held []heldFrame
}

type heldFrame struct {
	dst       int
	data      []byte
	departure time.Duration
}

// WrapFaulty returns ep with fault injection on its send path. Injection
// decisions come from inj (nil injects nothing); injected fault counts
// accumulate into bd (nil discards them).
func WrapFaulty(ep Endpoint, inj *faults.NetInjector, bd *stats.Breakdown) Endpoint {
	return &faultyEndpoint{inner: ep, inj: inj, bd: bd}
}

func (e *faultyEndpoint) Rank() int { return e.inner.Rank() }
func (e *faultyEndpoint) Size() int { return e.inner.Size() }

func (e *faultyEndpoint) Send(dst int, data []byte, departure time.Duration) error {
	d := e.inj.Next()
	switch d.Class {
	case faults.NetDrop:
		e.bd.Inc(stats.CounterNetInjDrops)
		// Silent loss: the frame never reaches the fabric. Flush any
		// held frame so a drop cannot extend a reorder hold forever.
		return e.flushHeld()
	case faults.NetDuplicate:
		e.bd.Inc(stats.CounterNetInjDups)
		if err := e.inner.Send(dst, data, departure); err != nil {
			return err
		}
		if err := e.inner.Send(dst, data, departure); err != nil {
			return err
		}
		return e.flushHeld()
	case faults.NetReorder:
		e.bd.Inc(stats.CounterNetInjReorders)
		// Hold this frame; the next frame overtakes it. The copy is
		// needed because senders may reuse their buffer immediately.
		buf := make([]byte, len(data))
		copy(buf, data)
		e.mu.Lock()
		e.held = append(e.held, heldFrame{dst: dst, data: buf, departure: departure})
		e.mu.Unlock()
		return nil
	case faults.NetCorrupt:
		e.bd.Inc(stats.CounterNetInjCorrupts)
		buf := make([]byte, len(data))
		copy(buf, data)
		corruptFrame(buf, d.Bits)
		if err := e.inner.Send(dst, buf, departure); err != nil {
			return err
		}
		return e.flushHeld()
	case faults.NetDelay:
		e.bd.Inc(stats.CounterNetInjDelays)
		departure += d.Delay
	}
	if err := e.inner.Send(dst, data, departure); err != nil {
		return err
	}
	return e.flushHeld()
}

// flushHeld releases reorder-held frames after the overtaking frame has
// gone out.
func (e *faultyEndpoint) flushHeld() error {
	e.mu.Lock()
	held := e.held
	e.held = nil
	e.mu.Unlock()
	for _, h := range held {
		if err := e.inner.Send(h.dst, h.data, h.departure); err != nil {
			return err
		}
	}
	return nil
}

// corruptFrame flips one to three bits at positions derived from the
// injector's deterministic detail bits.
func corruptFrame(buf []byte, bits uint64) {
	if len(buf) == 0 {
		return
	}
	n := int(bits%3) + 1
	for i := 0; i < n; i++ {
		bits = bits*0x9e3779b97f4a7c15 + 1
		pos := int(bits % uint64(len(buf)))
		bit := byte(1) << ((bits >> 32) % 8)
		buf[pos] ^= bit
	}
}

func (e *faultyEndpoint) Recv() (Frame, error) {
	// A receive turn is also a chance to release a held frame whose
	// sender went quiet (liveness for the raw wrapper; the reliability
	// layer would retransmit anyway).
	if err := e.flushHeld(); err != nil && err != ErrClosed {
		return Frame{}, err
	}
	return e.inner.Recv()
}

func (e *faultyEndpoint) TryRecv() (Frame, bool, error) {
	if err := e.flushHeld(); err != nil && err != ErrClosed {
		return Frame{}, false, err
	}
	return e.inner.TryRecv()
}

func (e *faultyEndpoint) Close() error {
	e.mu.Lock()
	e.held = nil
	e.mu.Unlock()
	return e.inner.Close()
}
