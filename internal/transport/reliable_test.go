package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pedal/internal/faults"
	"pedal/internal/stats"
)

// lossyWorld builds an in-process world with per-rank fault injection
// under the reliability sublayer, returning the wrapped endpoints and
// their per-rank stat breakdowns.
func lossyWorld(t *testing.T, n int, cfg faults.NetConfig) ([]Endpoint, []*stats.Breakdown) {
	t.Helper()
	raw, err := NewInProcWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]Endpoint, n)
	bds := make([]*stats.Breakdown, n)
	for i := range raw {
		bds[i] = stats.NewBreakdown()
		c := cfg
		c.Seed = faults.DeriveSeed(cfg.Seed, uint64(i))
		ep := WrapFaulty(raw[i], faults.NewNetInjector(c), bds[i])
		eps[i] = WrapReliable(ep, ReliableOptions{Stats: bds[i], RTO: time.Millisecond, MaxRTO: 10 * time.Millisecond})
	}
	return eps, bds
}

func closeAllRel(eps []Endpoint) {
	for _, ep := range eps {
		ep.Close()
	}
}

func payloadFor(src, i int) []byte {
	buf := make([]byte, 64+i%256)
	binary.BigEndian.PutUint32(buf[0:4], uint32(src))
	binary.BigEndian.PutUint32(buf[4:8], uint32(i))
	for j := 8; j < len(buf); j++ {
		buf[j] = byte(src*31 + i + j)
	}
	return buf
}

// streamCheck sends count frames from every rank to rank 0 and asserts
// rank 0 sees each stream complete, in order, uncorrupted.
func streamCheck(t *testing.T, eps []Endpoint, count int) {
	t.Helper()
	n := len(eps)
	var wg sync.WaitGroup
	for src := 1; src < n; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < count; i++ {
				if err := eps[src].Send(0, payloadFor(src, i), time.Duration(i)); err != nil {
					t.Errorf("rank %d send %d: %v", src, i, err)
					return
				}
			}
		}(src)
	}
	next := make([]int, n)
	for got := 0; got < (n-1)*count; got++ {
		f, err := eps[0].Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", got, err)
		}
		i := next[f.Src]
		if want := payloadFor(f.Src, i); !bytes.Equal(f.Data, want) {
			t.Fatalf("rank %d frame %d corrupted or out of order", f.Src, i)
		}
		next[f.Src]++
	}
	wg.Wait()
	for src := 1; src < n; src++ {
		if next[src] != count {
			t.Fatalf("rank %d delivered %d/%d", src, next[src], count)
		}
	}
}

func TestReliableCleanFabricPassthrough(t *testing.T) {
	eps, bds := lossyWorld(t, 3, faults.NetConfig{})
	defer closeAllRel(eps)
	streamCheck(t, eps, 200)
	// A timeout-based reliability layer may probe a slow-but-clean link
	// a handful of times (head-of-line RTO), but must not retransmit
	// wholesale when nothing is actually lost.
	var retrans uint64
	for _, bd := range bds {
		retrans += bd.Count(stats.CounterRetransmits)
	}
	if retrans > 20 {
		t.Errorf("%d retransmits on a clean fabric, want ≈0", retrans)
	}
}

func TestReliableSurvivesEveryFaultClass(t *testing.T) {
	cases := []struct {
		name string
		cfg  faults.NetConfig
		// fired returns a counter that must be non-zero somewhere.
		fired stats.Counter
	}{
		{"drop-15%", faults.NetConfig{Seed: 101, PDrop: 0.15}, stats.CounterRetransmits},
		{"dup-15%", faults.NetConfig{Seed: 102, PDuplicate: 0.15}, stats.CounterNetDuplicates},
		{"reorder-20%", faults.NetConfig{Seed: 103, PReorder: 0.20}, stats.CounterNetReorders},
		{"corrupt-15%", faults.NetConfig{Seed: 104, PCorrupt: 0.15}, stats.CounterNetCorrupt},
		{"delay-30%", faults.NetConfig{Seed: 105, PDelay: 0.30}, stats.CounterNetInjDelays},
		{"mixed", faults.NetConfig{Seed: 106, PDrop: 0.05, PDuplicate: 0.05, PReorder: 0.05, PCorrupt: 0.05, PDelay: 0.05}, stats.CounterRetransmits},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eps, bds := lossyWorld(t, 3, tc.cfg)
			defer closeAllRel(eps)
			streamCheck(t, eps, 150)
			var fired uint64
			for _, bd := range bds {
				fired += bd.Count(tc.fired)
			}
			if fired == 0 {
				t.Errorf("counter %s never fired under %s", tc.fired, tc.name)
			}
		})
	}
}

func TestReliableBidirectional(t *testing.T) {
	eps, _ := lossyWorld(t, 2, faults.NetConfig{Seed: 9, PDrop: 0.1, PReorder: 0.1, PCorrupt: 0.1})
	defer closeAllRel(eps)
	const count = 120
	var wg sync.WaitGroup
	for me := 0; me < 2; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			peerNext := 0
			sent := 0
			for peerNext < count || sent < count {
				if sent < count {
					if err := eps[me].Send(1-me, payloadFor(me, sent), 0); err != nil {
						t.Errorf("rank %d send: %v", me, err)
						return
					}
					sent++
				}
				for {
					f, ok, err := eps[me].TryRecv()
					if err != nil {
						t.Errorf("rank %d recv: %v", me, err)
						return
					}
					if !ok {
						break
					}
					if want := payloadFor(1-me, peerNext); !bytes.Equal(f.Data, want) {
						t.Errorf("rank %d: frame %d mismatch", me, peerNext)
						return
					}
					peerNext++
				}
			}
			// Drain the tail with blocking receives.
			for peerNext < count {
				f, err := eps[me].Recv()
				if err != nil {
					t.Errorf("rank %d tail recv: %v", me, err)
					return
				}
				if want := payloadFor(1-me, peerNext); !bytes.Equal(f.Data, want) {
					t.Errorf("rank %d: tail frame %d mismatch", me, peerNext)
					return
				}
				peerNext++
			}
		}(me)
	}
	wg.Wait()
}

func TestReliableRetryChargedAsVirtualTime(t *testing.T) {
	eps, bds := lossyWorld(t, 2, faults.NetConfig{Seed: 21, PDrop: 0.4})
	defer closeAllRel(eps)
	streamCheck(t, eps, 80)
	var retrans uint64
	var retry time.Duration
	for _, bd := range bds {
		retrans += bd.Count(stats.CounterRetransmits)
		retry += bd.Get(stats.PhaseRetry)
	}
	if retrans == 0 {
		t.Fatal("40% drop produced no retransmits")
	}
	if retry <= 0 {
		t.Fatal("retransmissions charged no virtual retry time")
	}
}

func TestReliableGivesUpOnDeadPeer(t *testing.T) {
	raw, err := NewInProcWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	// 100% drop: nothing ever arrives, every retransmission is eaten.
	inj := faults.NewNetInjector(faults.NetConfig{Seed: 5, PDrop: 1.0})
	ep := WrapReliable(WrapFaulty(raw[0], inj, nil), ReliableOptions{
		RTO: 500 * time.Microsecond, MaxRTO: time.Millisecond, MaxAttempts: 3,
	})
	defer ep.Close()
	defer raw[1].Close()
	if err := ep.Send(1, []byte("into the void"), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		_, err := ep.Recv()
		if errors.Is(err, ErrUnreliable) {
			break
		}
		if err != nil {
			t.Fatalf("want ErrUnreliable, got %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("endpoint never reported the dead peer")
		default:
		}
	}
	// Subsequent sends fail fast with the same diagnosis.
	if err := ep.Send(1, []byte("x"), 0); !errors.Is(err, ErrUnreliable) {
		t.Fatalf("send after failure: %v", err)
	}
}

func TestFaultyDeterministicSchedule(t *testing.T) {
	// Two identical runs over the raw faulty wrapper (no reliability)
	// must produce byte-identical delivery sequences.
	deliveries := func() []string {
		raw, err := NewInProcWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		defer raw[1].Close()
		inj := faults.NewNetInjector(faults.NetConfig{
			Seed: 77, PDrop: 0.2, PDuplicate: 0.2, PReorder: 0.2, PCorrupt: 0.2,
		})
		ep := WrapFaulty(raw[0], inj, nil)
		defer ep.Close()
		for i := 0; i < 100; i++ {
			if err := ep.Send(1, payloadFor(0, i), 0); err != nil {
				t.Fatal(err)
			}
		}
		var out []string
		for {
			f, ok, err := raw[1].TryRecv()
			if err != nil || !ok {
				break
			}
			out = append(out, fmt.Sprintf("%x", f.Data))
		}
		return out
	}
	a, b := deliveries(), deliveries()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("fault schedule inert: %d/100 delivered", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs between identical runs", i)
		}
	}
}
