// Package transport is the runtime's network abstraction — the analogue
// of UCX/OFI in the paper's Fig. 6. It moves opaque frames between ranks
// with per-sender FIFO ordering and offers two providers: an in-process
// channel provider (fast, used by tests and benchmarks) and a TCP
// provider (separate sockets per rank pair, usable across processes).
//
// Frames carry a virtual-time departure stamp so the MPI layer can model
// network latency with the calibrated clock while the real bytes flow.
package transport

import (
	"errors"
	"time"
)

// Frame is one delivered transport message.
type Frame struct {
	// Src is the sending rank.
	Src int
	// Data is the payload; the receiver owns it.
	Data []byte
	// Departure is the sender's virtual clock when the frame entered the
	// wire; the MPI layer combines it with the modelled wire latency.
	Departure time.Duration
}

// Endpoint is one rank's attachment to the fabric.
type Endpoint interface {
	// Rank is this endpoint's rank in [0, Size).
	Rank() int
	// Size is the number of ranks in the world.
	Size() int
	// Send delivers a frame to dst. It must not block indefinitely under
	// normal queue depths; per-(src,dst) FIFO order is guaranteed.
	Send(dst int, data []byte, departure time.Duration) error
	// Recv blocks until a frame arrives from any source.
	Recv() (Frame, error)
	// TryRecv returns a frame if one is immediately available. The
	// boolean reports whether a frame was returned. Used by nonblocking
	// MPI progress (MPI_Test).
	TryRecv() (Frame, bool, error)
	// Close shuts the endpoint down; blocked Recvs return ErrClosed.
	Close() error
}

// Errors common to providers.
var (
	ErrClosed   = errors.New("transport: endpoint closed")
	ErrBadRank  = errors.New("transport: rank out of range")
	ErrTooLarge = errors.New("transport: frame exceeds limit")
)

// MaxFrameSize bounds a single frame (wire sanity limit).
const MaxFrameSize = 1 << 30
