package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// worldMakers lets every test run against both providers.
var worldMakers = map[string]func(n int) ([]Endpoint, error){
	"inproc": NewInProcWorld,
	"tcp":    NewTCPWorld,
}

func closeAll(eps []Endpoint) {
	for _, ep := range eps {
		ep.Close()
	}
}

func TestBasicSendRecv(t *testing.T) {
	for name, mk := range worldMakers {
		t.Run(name, func(t *testing.T) {
			eps, err := mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer closeAll(eps)
			want := []byte("hello fabric")
			if err := eps[0].Send(1, want, 7*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			f, err := eps[1].Recv()
			if err != nil {
				t.Fatal(err)
			}
			if f.Src != 0 || !bytes.Equal(f.Data, want) || f.Departure != 7*time.Millisecond {
				t.Fatalf("frame = %+v", f)
			}
		})
	}
}

func TestSenderBufferReuse(t *testing.T) {
	for name, mk := range worldMakers {
		t.Run(name, func(t *testing.T) {
			eps, err := mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer closeAll(eps)
			buf := []byte("original")
			if err := eps[0].Send(1, buf, 0); err != nil {
				t.Fatal(err)
			}
			copy(buf, "CLOBBER!")
			f, err := eps[1].Recv()
			if err != nil {
				t.Fatal(err)
			}
			if string(f.Data) != "original" {
				t.Fatalf("got %q; transport must copy", f.Data)
			}
		})
	}
}

func TestPerPairOrdering(t *testing.T) {
	for name, mk := range worldMakers {
		t.Run(name, func(t *testing.T) {
			eps, err := mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer closeAll(eps)
			const n = 200
			for i := 0; i < n; i++ {
				if err := eps[0].Send(1, []byte(fmt.Sprintf("msg-%04d", i)), 0); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				f, err := eps[1].Recv()
				if err != nil {
					t.Fatal(err)
				}
				if want := fmt.Sprintf("msg-%04d", i); string(f.Data) != want {
					t.Fatalf("out of order: got %q want %q", f.Data, want)
				}
			}
		})
	}
}

func TestAllToAll(t *testing.T) {
	for name, mk := range worldMakers {
		t.Run(name, func(t *testing.T) {
			const n = 4
			eps, err := mk(n)
			if err != nil {
				t.Fatal(err)
			}
			defer closeAll(eps)
			var wg sync.WaitGroup
			errs := make(chan error, n*2)
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(me int) {
					defer wg.Done()
					for dst := 0; dst < n; dst++ {
						if dst == me {
							continue
						}
						if err := eps[me].Send(dst, []byte{byte(me), byte(dst)}, 0); err != nil {
							errs <- err
						}
					}
					seen := make(map[int]bool)
					for i := 0; i < n-1; i++ {
						f, err := eps[me].Recv()
						if err != nil {
							errs <- err
							return
						}
						if int(f.Data[1]) != me {
							errs <- fmt.Errorf("rank %d got frame for %d", me, f.Data[1])
						}
						seen[f.Src] = true
					}
					if len(seen) != n-1 {
						errs <- fmt.Errorf("rank %d saw %d senders", me, len(seen))
					}
				}(r)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestLargeFrame(t *testing.T) {
	for name, mk := range worldMakers {
		t.Run(name, func(t *testing.T) {
			eps, err := mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer closeAll(eps)
			big := make([]byte, 8<<20)
			for i := range big {
				big[i] = byte(i * 31)
			}
			go func() { eps[0].Send(1, big, 0) }()
			f, err := eps[1].Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(f.Data, big) {
				t.Fatal("large frame corrupted")
			}
		})
	}
}

func TestBadRank(t *testing.T) {
	for name, mk := range worldMakers {
		t.Run(name, func(t *testing.T) {
			eps, err := mk(2)
			if err != nil {
				t.Fatal(err)
			}
			defer closeAll(eps)
			if err := eps[0].Send(5, []byte("x"), 0); err != ErrBadRank {
				t.Fatalf("want ErrBadRank, got %v", err)
			}
			if err := eps[0].Send(-1, []byte("x"), 0); err != ErrBadRank {
				t.Fatalf("want ErrBadRank, got %v", err)
			}
		})
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	for name, mk := range worldMakers {
		t.Run(name, func(t *testing.T) {
			eps, err := mk(2)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := eps[1].Recv()
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			eps[1].Close()
			select {
			case err := <-done:
				if err != ErrClosed {
					t.Fatalf("want ErrClosed, got %v", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv did not unblock on close")
			}
			eps[0].Close()
		})
	}
}

func TestWorldSizeValidation(t *testing.T) {
	for name, mk := range worldMakers {
		t.Run(name, func(t *testing.T) {
			if _, err := mk(0); err == nil {
				t.Fatal("zero-size world accepted")
			}
		})
	}
}

func TestTCPSelfSend(t *testing.T) {
	eps, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(eps)
	if err := eps[0].Send(0, []byte("loopback"), 0); err != nil {
		t.Fatal(err)
	}
	f, err := eps[0].Recv()
	if err != nil || string(f.Data) != "loopback" {
		t.Fatalf("self-send failed: %v", err)
	}
}
