package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/faults"
	"pedal/internal/simclock"
	"pedal/internal/stats"
	"pedal/internal/trace"
)

// This file implements the reliability sublayer: a wrapper that restores
// the Endpoint contract (per-(src,dst) FIFO delivery of uncorrupted
// frames, exactly once) on top of a fabric that drops, duplicates,
// reorders, corrupts and delays frames. It is the UCX/OFI "reliable
// connection" analogue the MPI co-design assumes: every payload is
// framed with a CRC-32 and a per-(src,dst) sequence number, receivers
// acknowledge cumulatively and NACK gaps or CRC failures, and senders
// retransmit unacknowledged frames with capped exponential backoff whose
// cost is charged as virtual time (simclock), so the MPI layer above
// runs unmodified over a lossy fabric.
//
// Wire format of a reliable frame (big-endian):
//
//	magic(2)='RL' kind(1) seq(8) crc(4) payload
//
// The CRC covers the header prefix (magic, kind, seq) and the payload,
// so a bit flip anywhere in the frame is detected.

// Reliable frame kinds.
const (
	relData = 1
	// relAck carries the receiver's next expected sequence number:
	// everything below it is acknowledged (cumulative ack).
	relAck = 2
	// relNack requests retransmission of one missing sequence number
	// (gap observed or frame rejected by CRC).
	relNack = 3
)

const (
	relMagic0, relMagic1 = 'R', 'L'
	relHeaderLen         = 2 + 1 + 8 + 4
)

// ErrUnreliable reports that a frame exhausted its retransmission budget
// — the peer is unreachable or the fabric is effectively dead.
var ErrUnreliable = errors.New("transport: reliability exhausted")

// ReliableOptions tunes the reliability sublayer.
type ReliableOptions struct {
	// RTO is the base retransmission timeout (real time between a send
	// and its first retransmission); zero means 2ms.
	RTO time.Duration
	// MaxRTO caps the exponential retransmission backoff; zero means
	// 40ms.
	MaxRTO time.Duration
	// MaxAttempts bounds retransmissions of a single frame before the
	// endpoint declares the link dead with ErrUnreliable; zero means 40,
	// negative means unlimited.
	MaxAttempts int
	// Stats accumulates reliability counters (retransmits, CRC rejects,
	// duplicates dropped, reorders healed) and retry virtual time; nil
	// allocates a private breakdown.
	Stats *stats.Breakdown
	// Clock, when set, is charged with the virtual cost of each
	// retransmission backoff, merging recovery latency into the rank's
	// simulated timeline.
	Clock *simclock.Clock
	// Tracer, when set, records retransmit and CRC-reject events on the
	// fabric timeline.
	Tracer *trace.Tracer
}

// NetStatser is implemented by endpoints that expose reliability
// counters (the reliable wrapper does).
type NetStatser interface {
	NetStats() *stats.Breakdown
}

// relOut is one unacknowledged outbound frame.
type relOut struct {
	frame     []byte
	departure time.Duration
	sentAt    time.Time
	attempts  int
}

type reliableEndpoint struct {
	inner Endpoint
	opts  ReliableOptions
	bd    *stats.Breakdown

	mu          sync.Mutex
	nextSeq     []uint64            // per dst: last assigned sequence
	outstanding []map[uint64]*relOut // per dst: unacked frames
	expected    []uint64            // per src: next expected sequence
	oooBuf      []map[uint64]Frame  // per src: out-of-order holding
	lastNack    []uint64            // per src: last NACKed expected seq
	failed      error

	delivery chan Frame
	done     chan struct{} // closed by Close
	recvDone chan struct{} // closed when the inner receive loop exits
	failedCh chan struct{} // closed on ErrUnreliable
	once     sync.Once
	failOnce sync.Once
	wg       sync.WaitGroup
}

// WrapReliable layers CRC framing, sequencing and ack/nack
// retransmission over ep. The wrapped endpoint must only talk to peers
// that are also wrapped (the protocol is symmetric).
func WrapReliable(ep Endpoint, opts ReliableOptions) Endpoint {
	if opts.RTO <= 0 {
		opts.RTO = 2 * time.Millisecond
	}
	if opts.MaxRTO <= 0 {
		opts.MaxRTO = 40 * time.Millisecond
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 40
	}
	if opts.Stats == nil {
		opts.Stats = stats.NewBreakdown()
	}
	n := ep.Size()
	r := &reliableEndpoint{
		inner:       ep,
		opts:        opts,
		bd:          opts.Stats,
		nextSeq:     make([]uint64, n),
		outstanding: make([]map[uint64]*relOut, n),
		expected:    make([]uint64, n),
		oooBuf:      make([]map[uint64]Frame, n),
		lastNack:    make([]uint64, n),
		delivery:    make(chan Frame, inboxDepth),
		done:        make(chan struct{}),
		recvDone:    make(chan struct{}),
		failedCh:    make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		r.outstanding[i] = make(map[uint64]*relOut)
		r.oooBuf[i] = make(map[uint64]Frame)
		r.expected[i] = 1
	}
	r.wg.Add(2)
	go r.recvLoop()
	go r.retransmitLoop()
	return r
}

func (r *reliableEndpoint) Rank() int { return r.inner.Rank() }
func (r *reliableEndpoint) Size() int { return r.inner.Size() }

// NetStats exposes the reliability counters and retry virtual time.
func (r *reliableEndpoint) NetStats() *stats.Breakdown { return r.bd }

func encodeRel(kind byte, seq uint64, payload []byte) []byte {
	buf := make([]byte, relHeaderLen+len(payload))
	buf[0], buf[1], buf[2] = relMagic0, relMagic1, kind
	binary.BigEndian.PutUint64(buf[3:11], seq)
	copy(buf[relHeaderLen:], payload)
	crc := checksum.CRC32Update(checksum.CRC32(buf[:11]), buf[relHeaderLen:])
	binary.BigEndian.PutUint32(buf[11:15], crc)
	return buf
}

// decodeRel validates the magic and CRC; ok=false means the frame is
// corrupt (or not a reliable frame at all) and must be dropped.
func decodeRel(data []byte) (kind byte, seq uint64, payload []byte, ok bool) {
	if len(data) < relHeaderLen || data[0] != relMagic0 || data[1] != relMagic1 {
		return 0, 0, nil, false
	}
	want := binary.BigEndian.Uint32(data[11:15])
	got := checksum.CRC32Update(checksum.CRC32(data[:11]), data[relHeaderLen:])
	if got != want {
		return 0, 0, nil, false
	}
	return data[2], binary.BigEndian.Uint64(data[3:11]), data[relHeaderLen:], true
}

func (r *reliableEndpoint) Send(dst int, data []byte, departure time.Duration) error {
	if dst < 0 || dst >= r.inner.Size() {
		return ErrBadRank
	}
	if len(data)+relHeaderLen > MaxFrameSize {
		return ErrTooLarge
	}
	r.mu.Lock()
	if r.failed != nil {
		err := r.failed
		r.mu.Unlock()
		return err
	}
	r.nextSeq[dst]++
	seq := r.nextSeq[dst]
	frame := encodeRel(relData, seq, data)
	r.outstanding[dst][seq] = &relOut{frame: frame, departure: departure, sentAt: time.Now()}
	r.mu.Unlock()
	return r.inner.Send(dst, frame, departure)
}

func (r *reliableEndpoint) Recv() (Frame, error) {
	// Prefer deliverable frames even when closing, matching the raw
	// providers' drain semantics.
	select {
	case f := <-r.delivery:
		return f, nil
	default:
	}
	select {
	case f := <-r.delivery:
		return f, nil
	case <-r.failedCh:
		return Frame{}, r.failErr()
	case <-r.done:
	case <-r.recvDone:
	}
	select {
	case f := <-r.delivery:
		return f, nil
	default:
		return Frame{}, ErrClosed
	}
}

func (r *reliableEndpoint) TryRecv() (Frame, bool, error) {
	select {
	case f := <-r.delivery:
		return f, true, nil
	default:
	}
	select {
	case <-r.failedCh:
		return Frame{}, false, r.failErr()
	case <-r.done:
		return Frame{}, false, ErrClosed
	case <-r.recvDone:
		return Frame{}, false, ErrClosed
	default:
		return Frame{}, false, nil
	}
}

func (r *reliableEndpoint) Close() error {
	r.once.Do(func() { close(r.done) })
	err := r.inner.Close()
	r.wg.Wait()
	return err
}

func (r *reliableEndpoint) failErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed != nil {
		return r.failed
	}
	return ErrUnreliable
}

func (r *reliableEndpoint) fail(err error) {
	r.mu.Lock()
	if r.failed == nil {
		r.failed = err
	}
	r.mu.Unlock()
	r.failOnce.Do(func() { close(r.failedCh) })
}

// recvLoop drains the inner endpoint, reassembling the reliable streams
// and emitting in-order frames on the delivery channel.
func (r *reliableEndpoint) recvLoop() {
	defer r.wg.Done()
	defer close(r.recvDone)
	for {
		f, err := r.inner.Recv()
		if err != nil {
			return
		}
		if !r.process(f) {
			return
		}
	}
}

// process handles one raw frame; it reports false when delivery is shut
// down.
func (r *reliableEndpoint) process(f Frame) bool {
	kind, seq, payload, ok := decodeRel(f.Data)
	if !ok {
		// Corrupt frame. The transport metadata (source rank) is
		// link-level and survives payload corruption, so we can still
		// ask the sender for a retransmission of the earliest gap.
		r.bd.Inc(stats.CounterNetCorrupt)
		r.opts.Tracer.Record(trace.Event{
			Engine: "fabric", Op: "crc-reject", InBytes: len(f.Data), Err: "crc mismatch",
		})
		r.mu.Lock()
		exp := r.expected[f.Src]
		r.lastNack[f.Src] = exp
		r.mu.Unlock()
		r.sendCtl(f.Src, relNack, exp)
		return true
	}
	switch kind {
	case relAck:
		r.mu.Lock()
		progressed := false
		for s := range r.outstanding[f.Src] {
			if s < seq {
				delete(r.outstanding[f.Src], s)
				progressed = true
			}
		}
		if progressed {
			// The link is making progress: restart the retransmission
			// timers of the still-unacked tail (TCP-style), so a burst
			// that outruns the ack round trip is not retransmitted
			// wholesale.
			now := time.Now()
			for _, out := range r.outstanding[f.Src] {
				out.sentAt = now
			}
		}
		r.mu.Unlock()
		return true
	case relNack:
		r.mu.Lock()
		out, found := r.outstanding[f.Src][seq]
		var frame []byte
		var departure time.Duration
		if found {
			out.attempts++
			out.sentAt = time.Now()
			frame, departure = out.frame, out.departure
			r.bd.Inc(stats.CounterRetransmits)
		}
		r.mu.Unlock()
		if found {
			r.opts.Tracer.Record(trace.Event{Engine: "fabric", Op: "fast-retransmit", OutBytes: len(frame)})
			r.inner.Send(f.Src, frame, departure)
		}
		return true
	case relData:
		return r.processData(f.Src, seq, payload, f.Departure)
	default:
		// Unknown kind with a valid CRC: protocol bug; drop.
		r.bd.Inc(stats.CounterNetCorrupt)
		return true
	}
}

func (r *reliableEndpoint) processData(src int, seq uint64, payload []byte, departure time.Duration) bool {
	var deliverable []Frame
	var nackSeq uint64
	sendNack := false
	r.mu.Lock()
	exp := r.expected[src]
	switch {
	case seq == exp:
		deliverable = append(deliverable, Frame{Src: src, Data: payload, Departure: departure})
		exp++
		for {
			buf, okBuf := r.oooBuf[src][exp]
			if !okBuf {
				break
			}
			delete(r.oooBuf[src], exp)
			r.bd.Inc(stats.CounterNetReorders)
			deliverable = append(deliverable, buf)
			exp++
		}
		r.expected[src] = exp
		r.lastNack[src] = 0
	case seq > exp:
		if _, dup := r.oooBuf[src][seq]; dup {
			r.bd.Inc(stats.CounterNetDuplicates)
		} else {
			r.oooBuf[src][seq] = Frame{Src: src, Data: payload, Departure: departure}
			// Request the missing frame once per gap position; the RTO
			// retransmit covers a lost NACK.
			if r.lastNack[src] != exp {
				r.lastNack[src] = exp
				nackSeq = exp
				sendNack = true
			}
		}
	default: // seq < exp: already delivered
		r.bd.Inc(stats.CounterNetDuplicates)
	}
	r.mu.Unlock()
	if sendNack {
		r.bd.Inc(stats.CounterNetNacks)
		r.sendCtl(src, relNack, nackSeq)
	}
	for _, fr := range deliverable {
		select {
		case r.delivery <- fr:
		case <-r.done:
			return false
		}
	}
	// Cumulative ack after delivery so the ack never precedes the data
	// becoming visible.
	r.mu.Lock()
	ackSeq := r.expected[src]
	r.mu.Unlock()
	r.sendCtl(src, relAck, ackSeq)
	return true
}

// sendCtl emits an unsequenced control frame. Control frames are not
// themselves retransmitted: a lost ACK is repaired by the peer's RTO
// retransmission (which triggers a duplicate and a fresh ACK), a lost
// NACK by our own gap detection or the peer's RTO.
func (r *reliableEndpoint) sendCtl(dst int, kind byte, seq uint64) {
	r.inner.Send(dst, encodeRel(kind, seq, nil), 0)
}

// retransmitLoop re-sends unacknowledged frames whose retransmission
// timeout expired, with exponential backoff capped at MaxRTO. Each
// retransmission charges its backoff as virtual time: the frame's
// departure stamp moves forward (so modelled latency includes the
// recovery delay) and the configured clock/breakdown absorb the cost.
func (r *reliableEndpoint) retransmitLoop() {
	defer r.wg.Done()
	interval := r.opts.RTO / 2
	if interval < 200*time.Microsecond {
		interval = 200 * time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-r.recvDone:
			return
		case <-ticker.C:
		}
		now := time.Now()
		type resend struct {
			dst       int
			frame     []byte
			departure time.Duration
		}
		var batch []resend
		r.mu.Lock()
		for dst := range r.outstanding {
			// Only the head-of-line frame per destination is probed by
			// the RTO: with cumulative acks, a lost head blocks all
			// progress on that stream, while later losses are repaired
			// by the receiver's gap NACKs. This keeps spurious
			// retransmission of a healthy-but-slow burst at O(1) per
			// RTO instead of O(window).
			var head uint64
			for seq := range r.outstanding[dst] {
				if head == 0 || seq < head {
					head = seq
				}
			}
			if head == 0 {
				continue
			}
			out := r.outstanding[dst][head]
			rto := faults.Backoff(out.attempts, r.opts.RTO, r.opts.MaxRTO, nil)
			if now.Sub(out.sentAt) < rto {
				continue
			}
			out.attempts++
			if r.opts.MaxAttempts > 0 && out.attempts > r.opts.MaxAttempts {
				err := fmt.Errorf("%w: frame seq %d to rank %d after %d attempts",
					ErrUnreliable, head, dst, out.attempts-1)
				r.mu.Unlock()
				r.fail(err)
				return
			}
			out.sentAt = now
			backoff := faults.Backoff(out.attempts, r.opts.RTO, r.opts.MaxRTO, nil)
			out.departure += backoff
			r.bd.Inc(stats.CounterRetransmits)
			r.bd.Add(stats.PhaseRetry, backoff)
			if r.opts.Clock != nil {
				r.opts.Clock.Advance(backoff)
			}
			batch = append(batch, resend{dst: dst, frame: out.frame, departure: out.departure})
		}
		r.mu.Unlock()
		for _, b := range batch {
			r.opts.Tracer.Record(trace.Event{Engine: "fabric", Op: "retransmit", OutBytes: len(b.frame)})
			if err := r.inner.Send(b.dst, b.frame, b.departure); err != nil {
				return
			}
		}
	}
}
