package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// tcpEndpoint is one rank of a TCP world: a full mesh of sockets, one
// per ordered rank pair, with reader goroutines feeding a merged inbox.
//
// Wire format per frame (big-endian):
//
//	[4 bytes src rank][8 bytes departure ns][4 bytes length][payload]
type tcpEndpoint struct {
	rank  int
	size  int
	conns []net.Conn // conns[dst], nil at own rank
	inbox chan Frame

	mu     sync.Mutex
	sendMu []sync.Mutex
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

const tcpFrameHeader = 4 + 8 + 4

// NewTCPWorld creates n ranks connected over loopback TCP. It performs
// the whole rendezvous internally (listeners on ephemeral ports, then a
// full mesh dial), which models a single-node multi-process MPI launch.
func NewTCPWorld(n int) ([]Endpoint, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: world size %d", n)
	}
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	eps := make([]*tcpEndpoint, n)
	for i := 0; i < n; i++ {
		eps[i] = &tcpEndpoint{
			rank:   i,
			size:   n,
			conns:  make([]net.Conn, n),
			sendMu: make([]sync.Mutex, n),
			inbox:  make(chan Frame, inboxDepth),
			done:   make(chan struct{}),
		}
	}
	// Mesh construction: rank i dials every j > i; j accepts and learns
	// i's rank from a 4-byte hello.
	var wg sync.WaitGroup
	errCh := make(chan error, n*2)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			// Accept connections from every lower rank.
			for k := 0; k < me; k++ {
				conn, err := listeners[me].Accept()
				if err != nil {
					errCh <- err
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					errCh <- err
					return
				}
				peer := int(binary.BigEndian.Uint32(hello[:]))
				if peer < 0 || peer >= n {
					errCh <- fmt.Errorf("transport: bad hello rank %d", peer)
					return
				}
				eps[me].conns[peer] = conn
			}
			// Dial every higher rank, tolerating listener-readiness
			// races with a short retry instead of failing the world.
			for j := me + 1; j < n; j++ {
				conn, err := dialRetry(addrs[j])
				if err != nil {
					errCh <- err
					return
				}
				var hello [4]byte
				binary.BigEndian.PutUint32(hello[:], uint32(me))
				if _, err := conn.Write(hello[:]); err != nil {
					errCh <- err
					return
				}
				eps[me].conns[j] = conn
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for _, l := range listeners {
		l.Close()
	}
	if err, ok := <-errCh; ok && err != nil {
		return nil, err
	}
	// Start reader goroutines.
	out := make([]Endpoint, n)
	for i, ep := range eps {
		for j, conn := range ep.conns {
			if conn == nil {
				continue
			}
			ep.wg.Add(1)
			go ep.readLoop(j, conn)
		}
		out[i] = ep
	}
	return out, nil
}

// dialRetry dials addr with bounded exponential backoff. In a larger
// deployment the accept side may not be listening yet when a
// higher-rank process starts its mesh dials; a handful of short retries
// absorbs that race.
func dialRetry(addr string) (net.Conn, error) {
	backoff := 2 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
	return nil, fmt.Errorf("transport: dial %s: %w", addr, lastErr)
}

func (e *tcpEndpoint) readLoop(peer int, conn net.Conn) {
	defer e.wg.Done()
	hdr := make([]byte, tcpFrameHeader)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		src := int(binary.BigEndian.Uint32(hdr[0:4]))
		departure := time.Duration(binary.BigEndian.Uint64(hdr[4:12]))
		length := binary.BigEndian.Uint32(hdr[12:16])
		if length > MaxFrameSize {
			return
		}
		data := make([]byte, length)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		select {
		case e.inbox <- Frame{Src: src, Data: data, Departure: departure}:
		case <-e.done:
			return
		}
	}
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) Size() int { return e.size }

func (e *tcpEndpoint) Send(dst int, data []byte, departure time.Duration) error {
	if dst < 0 || dst >= e.size {
		return ErrBadRank
	}
	if len(data) > MaxFrameSize {
		return ErrTooLarge
	}
	if dst == e.rank {
		// Loopback delivery without a socket.
		buf := make([]byte, len(data))
		copy(buf, data)
		select {
		case e.inbox <- Frame{Src: e.rank, Data: buf, Departure: departure}:
			return nil
		case <-e.done:
			return ErrClosed
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	conn := e.conns[dst]
	e.mu.Unlock()
	if conn == nil {
		return ErrBadRank
	}
	hdr := make([]byte, tcpFrameHeader)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(e.rank))
	binary.BigEndian.PutUint64(hdr[4:12], uint64(departure))
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(data)))
	e.sendMu[dst].Lock()
	defer e.sendMu[dst].Unlock()
	if _, err := conn.Write(hdr); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	if _, err := conn.Write(data); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	return nil
}

func (e *tcpEndpoint) Recv() (Frame, error) {
	select {
	case f := <-e.inbox:
		return f, nil
	case <-e.done:
		// Drain any frame that raced the close.
		select {
		case f := <-e.inbox:
			return f, nil
		default:
			return Frame{}, ErrClosed
		}
	}
}

func (e *tcpEndpoint) TryRecv() (Frame, bool, error) {
	select {
	case f := <-e.inbox:
		return f, true, nil
	default:
	}
	select {
	case <-e.done:
		return Frame{}, false, ErrClosed
	default:
		return Frame{}, false, nil
	}
}

func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	for _, c := range e.conns {
		if c != nil {
			c.Close()
		}
	}
	e.wg.Wait()
	return nil
}
