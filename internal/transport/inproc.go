package transport

import (
	"fmt"
	"sync"
	"time"
)

// inprocEndpoint is one rank of an in-process world: all ranks share a
// set of buffered channels, one inbox per rank.
type inprocEndpoint struct {
	rank  int
	world *inprocWorld
}

type inprocWorld struct {
	inboxes []chan Frame
	done    []chan struct{}
	once    []sync.Once
}

// inboxDepth bounds in-flight frames per receiver; deep enough for the
// collective fan-ins the benchmarks produce.
const inboxDepth = 4096

// NewInProcWorld creates n connected in-process endpoints. Endpoint i is
// rank i.
func NewInProcWorld(n int) ([]Endpoint, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: world size %d", n)
	}
	w := &inprocWorld{
		inboxes: make([]chan Frame, n),
		done:    make([]chan struct{}, n),
		once:    make([]sync.Once, n),
	}
	for i := range w.inboxes {
		w.inboxes[i] = make(chan Frame, inboxDepth)
		w.done[i] = make(chan struct{})
	}
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = &inprocEndpoint{rank: i, world: w}
	}
	return eps, nil
}

func (e *inprocEndpoint) Rank() int { return e.rank }
func (e *inprocEndpoint) Size() int { return len(e.world.inboxes) }

func (e *inprocEndpoint) Send(dst int, data []byte, departure time.Duration) error {
	w := e.world
	if dst < 0 || dst >= len(w.inboxes) {
		return ErrBadRank
	}
	if len(data) > MaxFrameSize {
		return ErrTooLarge
	}
	// Copy: the sender may reuse its buffer immediately (MPI semantics).
	buf := make([]byte, len(data))
	copy(buf, data)
	select {
	case <-w.done[e.rank]:
		return ErrClosed
	case <-w.done[dst]:
		return ErrClosed
	case w.inboxes[dst] <- Frame{Src: e.rank, Data: buf, Departure: departure}:
		return nil
	}
}

func (e *inprocEndpoint) Recv() (Frame, error) {
	w := e.world
	// Prefer pending frames even when the endpoint is closing, so
	// teardown does not drop deliverable data.
	select {
	case f := <-w.inboxes[e.rank]:
		return f, nil
	default:
	}
	select {
	case f := <-w.inboxes[e.rank]:
		return f, nil
	case <-w.done[e.rank]:
		return Frame{}, ErrClosed
	}
}

func (e *inprocEndpoint) TryRecv() (Frame, bool, error) {
	w := e.world
	select {
	case f := <-w.inboxes[e.rank]:
		return f, true, nil
	default:
	}
	select {
	case <-w.done[e.rank]:
		return Frame{}, false, ErrClosed
	default:
		return Frame{}, false, nil
	}
}

func (e *inprocEndpoint) Close() error {
	e.world.once[e.rank].Do(func() { close(e.world.done[e.rank]) })
	return nil
}
