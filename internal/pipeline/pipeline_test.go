package pipeline_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/core"
	"pedal/internal/dpu"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/pipeline"
	"pedal/internal/sz3"
	"pedal/internal/testutil"
)

func textData(n int) []byte {
	unit := []byte("<record id=\"42\" kind=\"pipeline\">chunked overlap payload</record>\n")
	out := make([]byte, n)
	for i := 0; i < n; i += len(unit) {
		copy(out[i:], unit)
	}
	return out
}

func floatData(n int) []byte {
	n &^= 7
	out := make([]byte, n)
	for i := 0; i < n/4; i++ {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(float32(math.Sin(float64(i)*0.01))))
	}
	return out
}

func newPipeline(t *testing.T, gen hwmodel.Generation) *pipeline.Pipeline {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	dev, err := dpu.NewDevice(gen, dpu.SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	p := pipeline.New(dev, 0, nil)
	t.Cleanup(p.Close)
	return p
}

// collect runs Compress and copies every delivered chunk (Chunk.Data is
// only valid during the sink call).
func collect(t *testing.T, p *pipeline.Pipeline, data []byte, spec pipeline.Spec) ([]pipeline.Chunk, pipeline.Summary) {
	t.Helper()
	var chunks []pipeline.Chunk
	sum, err := p.Compress(data, spec, func(ch pipeline.Chunk) error {
		ch.Data = append([]byte(nil), ch.Data...)
		chunks = append(chunks, ch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return chunks, sum
}

// TestCompletionOrderDelivery checks the sink contract: chunks arrive in
// nondecreasing virtual completion order, cover the payload exactly once,
// and the makespan is the latest delivery.
func TestCompletionOrderDelivery(t *testing.T) {
	p := newPipeline(t, hwmodel.BlueField3)
	data := textData(3<<20 + 12345)
	spec := pipeline.Spec{Algo: pipeline.AlgoDeflate}
	chunks, sum := collect(t, p, data, spec)
	if sum.Chunks != len(chunks) {
		t.Fatalf("summary says %d chunks, sink saw %d", sum.Chunks, len(chunks))
	}
	seen := make(map[int]bool)
	var prev time.Duration
	var last time.Duration
	total := 0
	for i, ch := range chunks {
		if ch.Done < prev {
			t.Fatalf("chunk %d delivered at %v after %v", ch.Index, ch.Done, prev)
		}
		prev = ch.Done
		if seen[ch.Index] {
			t.Fatalf("chunk %d delivered twice", ch.Index)
		}
		seen[ch.Index] = true
		if ch.Offset != ch.Index*sum.ChunkSize {
			t.Fatalf("chunk %d offset %d, want %d", ch.Index, ch.Offset, ch.Index*sum.ChunkSize)
		}
		total += ch.OrigLen
		if ch.Done > last {
			last = ch.Done
		}
		_ = i
	}
	if total != len(data) {
		t.Fatalf("chunks cover %d bytes, want %d", total, len(data))
	}
	if last != sum.Makespan {
		t.Fatalf("last delivery %v != makespan %v", last, sum.Makespan)
	}
}

// TestStreamDigestStitching pins the parallel end-to-end digest: under
// VerifyFull every worker digests its own source chunk and the sink
// loop stitches them with CRC32Combine, so Summary.SrcCRC must equal a
// straight CRC-32 of the whole payload — including on a ragged last
// chunk and a single-chunk stream — while Off and Sampled carry the
// zero "not carried" sentinel.
func TestStreamDigestStitching(t *testing.T) {
	p := newPipeline(t, hwmodel.BlueField3)
	for _, n := range []int{3<<20 + 12345, 256 << 10, 100} {
		data := textData(n)
		want := checksum.CRC32(data)
		spec := pipeline.Spec{Algo: pipeline.AlgoDeflate, Verify: integrity.VerifyFull}
		_, sum := collect(t, p, data, spec)
		if sum.SrcCRC != want {
			t.Errorf("n=%d: stitched SrcCRC %#x, want %#x", n, sum.SrcCRC, want)
		}
		for _, mode := range []integrity.VerifyMode{integrity.VerifyOff, integrity.VerifySampled} {
			spec.Verify = mode
			if _, sum := collect(t, p, data, spec); sum.SrcCRC != 0 {
				t.Errorf("n=%d verify=%v: SrcCRC %#x, want 0 sentinel", n, mode, sum.SrcCRC)
			}
		}
	}
}

// TestMakespanBeatsSerial is the point of the pipeline: with k chunks
// spread over the SoC cores, the virtual makespan must be well below the
// single-stream cost of the same payload.
func TestMakespanBeatsSerial(t *testing.T) {
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		p := newPipeline(t, gen)
		n := 4 << 20
		data := textData(n)
		_, sum := collect(t, p, data, pipeline.Spec{Algo: pipeline.AlgoDeflate})
		serial, _ := hwmodel.OpCost(gen, hwmodel.SoC, hwmodel.Deflate, hwmodel.Compress, n)
		if sum.Makespan >= serial {
			t.Errorf("%v: pipelined makespan %v not below serial %v", gen, sum.Makespan, serial)
		}
		// Busy time never exceeds chunk-count × worst-case serial share by
		// more than the engine fixed cost; the model adds no overhead on
		// the pure-SoC path.
		if sum.Busy > serial+serial/8 {
			t.Errorf("%v: busy %v far above serial %v", gen, sum.Busy, serial)
		}
	}
}

// TestEngineAmortisation: on BlueField-2 the C-Engine's 1.3 ms fixed cost
// is paid once per busy period, so engine-preferred pipelined compression
// must not cost k× the fixed cost.
func TestEngineAmortisation(t *testing.T) {
	p := newPipeline(t, hwmodel.BlueField2)
	n := 4 << 20
	data := textData(n)
	_, sum := collect(t, p, data, pipeline.Spec{Algo: pipeline.AlgoDeflate, Engine: true})
	if sum.EngineChunks == 0 {
		t.Fatal("no chunks offloaded to the C-Engine")
	}
	serial, _ := hwmodel.OpCost(hwmodel.BlueField2, hwmodel.CEngine, hwmodel.Deflate, hwmodel.Compress, n)
	if sum.Makespan >= serial+serial/4 {
		t.Errorf("engine-pipelined makespan %v not comparable to serial engine %v", sum.Makespan, serial)
	}
	fixed, _ := hwmodel.OpCost(hwmodel.BlueField2, hwmodel.CEngine, hwmodel.Deflate, hwmodel.Compress, 0)
	if perChunk := time.Duration(sum.EngineChunks) * fixed; sum.Makespan >= perChunk && sum.EngineChunks > 2 {
		t.Errorf("makespan %v suggests fixed cost paid per chunk (%d × %v)", sum.Makespan, sum.EngineChunks, fixed)
	}
}

func roundTrip(t *testing.T, gen hwmodel.Generation, spec pipeline.Spec, data []byte, submitOrder func(k int) []int) []byte {
	t.Helper()
	p := newPipeline(t, gen)
	spec.ChunkSize = p.ChunkSizeFor(len(data), spec)
	chunks, sum := collect(t, p, data, spec)
	sess, err := p.NewDecompress(spec, len(chunks), sum.ChunkSize, len(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	order := submitOrder(len(chunks))
	for _, i := range order {
		ch := chunks[i]
		if err := sess.Submit(ch.Index, ch.OrigLen, ch.CRC, ch.Data, 0); err != nil {
			t.Fatalf("submit chunk %d: %v", ch.Index, err)
		}
	}
	out, _, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func identityOrder(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

func reverseOrder(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = k - 1 - i
	}
	return out
}

// shuffledOrder interleaves from both ends — a deterministic shuffle.
func shuffledOrder(k int) []int {
	out := make([]int, 0, k)
	for lo, hi := 0, k-1; lo <= hi; lo, hi = lo+1, hi-1 {
		out = append(out, lo)
		if hi != lo {
			out = append(out, hi)
		}
	}
	return out
}

// TestRoundTripLossless round-trips every lossless codec through the raw
// pipeline on both generations, with in-order, reversed and interleaved
// chunk arrival (completion order on the wire is arbitrary).
func TestRoundTripLossless(t *testing.T) {
	data := textData(2<<20 + 777)
	orders := map[string]func(int) []int{
		"in-order": identityOrder,
		"reversed": reverseOrder,
		"shuffled": shuffledOrder,
	}
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		for _, algo := range []pipeline.Algo{pipeline.AlgoDeflate, pipeline.AlgoZlib, pipeline.AlgoLZ4} {
			for name, ord := range orders {
				for _, engine := range []bool{false, true} {
					spec := pipeline.Spec{Algo: algo, Engine: engine}
					out := roundTrip(t, gen, spec, data, ord)
					if !bytes.Equal(out, data) {
						t.Fatalf("%v/%v/%s/engine=%v: round trip mismatch", gen, algo, name, engine)
					}
				}
			}
		}
	}
}

// TestRoundTripSZ3 checks the lossy codecs stay inside the error bound
// through per-chunk 1-D streams.
func TestRoundTripSZ3(t *testing.T) {
	const bound = 1e-3
	data := floatData(1 << 20)
	cfg := sz3.Config{ErrorBound: bound, Backend: sz3.BackendFastLZ}
	spec := pipeline.Spec{Algo: pipeline.AlgoSZ3F32, SZ3: cfg}
	out := roundTrip(t, hwmodel.BlueField2, spec, data, reverseOrder)
	if len(out) != len(data) {
		t.Fatalf("length %d, want %d", len(out), len(data))
	}
	for i := 0; i+4 <= len(data); i += 4 {
		want := math.Float32frombits(binary.LittleEndian.Uint32(data[i:]))
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[i:]))
		if math.Abs(float64(got-want)) > bound*(1+1e-6) {
			t.Fatalf("element %d error %g exceeds bound", i/4, math.Abs(float64(got-want)))
		}
	}
}

// TestSingleChunkDegenerate: payloads at or below one chunk still work,
// deliver exactly one chunk, and a zero-byte payload is a no-op.
func TestSingleChunkDegenerate(t *testing.T) {
	p := newPipeline(t, hwmodel.BlueField2)
	data := textData(4 << 10)
	spec := pipeline.Spec{Algo: pipeline.AlgoDeflate}
	chunks, sum := collect(t, p, data, spec)
	if len(chunks) != 1 || sum.Chunks != 1 {
		t.Fatalf("got %d chunks for sub-chunk payload", len(chunks))
	}
	if chunks[0].OrigLen != len(data) || chunks[0].Index != 0 {
		t.Fatalf("bad single chunk: %+v", chunks[0])
	}
	out := roundTrip(t, hwmodel.BlueField2, spec, data, identityOrder)
	if !bytes.Equal(out, data) {
		t.Fatal("single-chunk round trip mismatch")
	}

	empty, sum := collect(t, p, nil, spec)
	if len(empty) != 0 || sum.Chunks != 0 || sum.Makespan != 0 {
		t.Fatalf("empty payload produced %d chunks, makespan %v", len(empty), sum.Makespan)
	}
}

// TestDecompressRejects exercises the session's geometry and duplicate
// defences.
func TestDecompressRejects(t *testing.T) {
	p := newPipeline(t, hwmodel.BlueField2)
	data := textData(300 << 10)
	spec := pipeline.Spec{Algo: pipeline.AlgoDeflate, ChunkSize: 128 << 10}
	chunks, sum := collect(t, p, data, spec)
	if len(chunks) != 3 {
		t.Fatalf("want 3 chunks, got %d", len(chunks))
	}

	// Bad geometry: count×chunkSize can't cover origLen.
	if _, err := p.NewDecompress(spec, 1, sum.ChunkSize, len(data), 0); err == nil {
		t.Error("undersized geometry accepted")
	}
	// Duplicate and out-of-range submits.
	sess, err := p.NewDecompress(spec, 3, sum.ChunkSize, len(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(chunks[0].Index, chunks[0].OrigLen, chunks[0].CRC, chunks[0].Data, 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(chunks[0].Index, chunks[0].OrigLen, chunks[0].CRC, chunks[0].Data, 0); err == nil {
		t.Error("duplicate chunk accepted")
	}
	if err := sess.Submit(7, 1, 0, []byte{0}, 0); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Missing chunks surface as ErrIncomplete.
	if _, _, err := sess.Wait(); err == nil {
		t.Error("incomplete session Wait succeeded")
	}
}

// TestCorePipelinedDesigns routes all eight Table III designs plus the
// hybrid through core.CompressPipelined and back through the ordinary
// Decompress dispatch (the PEDAL header names AlgoPipelined; the
// descriptor names the inner codec).
func TestCorePipelinedDesigns(t *testing.T) {
	text := textData(1<<20 + 321)
	floats := floatData(1 << 20)
	designs := append(core.Designs(), core.DesignHybrid())
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		lib, err := core.Init(core.Options{Generation: gen})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range designs {
			dt, data := core.TypeBytes, text
			if d.Algo == core.AlgoSZ3 {
				dt, data = core.TypeFloat32, floats
			}
			msg, crep, err := lib.CompressPipelined(d, dt, data)
			if err != nil {
				t.Fatalf("%v/%v: compress: %v", gen, d, err)
			}
			if crep.Virtual <= 0 {
				t.Errorf("%v/%v: no virtual time charged", gen, d)
			}
			out, drep, err := lib.Decompress(d.Engine, dt, msg, len(data)+64)
			if err != nil {
				t.Fatalf("%v/%v: decompress: %v", gen, d, err)
			}
			if d.Algo == core.AlgoSZ3 {
				if len(out) != len(data) {
					t.Fatalf("%v/%v: length %d want %d", gen, d, len(out), len(data))
				}
				for i := 0; i+4 <= len(data); i += 4 {
					want := math.Float32frombits(binary.LittleEndian.Uint32(data[i:]))
					got := math.Float32frombits(binary.LittleEndian.Uint32(out[i:]))
					if math.Abs(float64(got-want)) > 1e-4*(1+1e-6) {
						t.Fatalf("%v/%v: element %d error %g", gen, d, i/4, math.Abs(float64(got-want)))
					}
				}
			} else if !bytes.Equal(out, data) {
				t.Fatalf("%v/%v: round trip mismatch", gen, d)
			}
			if drep.Virtual <= 0 {
				t.Errorf("%v/%v: no decompress virtual time", gen, d)
			}
			lib.Release(msg)
		}
		lib.Finalize()
	}
}

// TestCorePipelinedMakespan: the pipelined report's virtual time must
// undercut the serial design for a large message (the overlap headline).
func TestCorePipelinedMakespan(t *testing.T) {
	data := textData(4 << 20)
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		lib, err := core.Init(core.Options{Generation: gen})
		if err != nil {
			t.Fatal(err)
		}
		d := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
		serialMsg, serial, err := lib.Compress(d, core.TypeBytes, data)
		if err != nil {
			t.Fatal(err)
		}
		lib.Release(serialMsg)
		pipedMsg, piped, err := lib.CompressPipelined(d, core.TypeBytes, data)
		if err != nil {
			t.Fatal(err)
		}
		lib.Release(pipedMsg)
		if piped.Virtual >= serial.Virtual {
			t.Errorf("%v: pipelined %v not below serial %v", gen, piped.Virtual, serial.Virtual)
		}
		lib.Finalize()
	}
}
