package pipeline_test

import (
	"bytes"
	"errors"
	"testing"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/pipeline"
)

// TestFrameRejects drives the wire decoders through the malformed
// shapes a dying or hostile peer can produce: truncated at every field
// boundary, lengths past every cap, bodies longer than the input.
// Every rejection must be the typed ErrFrame, never a panic or an
// allocation sized by attacker-controlled fields.
func TestFrameRejects(t *testing.T) {
	valid := pipeline.AppendChunkFrame(nil, 3, 64, 0x11223344, bytes.Repeat([]byte{0xCD}, 48))
	for cut := 0; cut < len(valid); cut++ {
		if _, _, _, _, _, err := pipeline.ParseChunkFrame(valid[:cut]); err == nil {
			// A truncation that still parses must consume only what it
			// declares — the one legal case is cutting inside trailing
			// garbage, which a single frame has none of.
			t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(valid))
		} else if !errors.Is(err, pipeline.ErrFrame) {
			t.Fatalf("truncated frame: untyped error %v", err)
		}
	}

	frameCases := map[string][]byte{
		"empty":               {},
		"index at cap":        pipeline.AppendChunkFrame(nil, pipeline.MaxChunks, 0, 0, nil),
		"huge origLen":        {3, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0},
		"body over input":     {3, 64, 200, 1, 2, 3},
		"unterminated varint": bytes.Repeat([]byte{0x80}, 16),
	}
	for name, data := range frameCases {
		if _, _, _, _, _, err := pipeline.ParseChunkFrame(data); !errors.Is(err, pipeline.ErrFrame) {
			t.Errorf("frame %s: got %v, want ErrFrame", name, err)
		}
	}

	descCases := map[string][]byte{
		"empty":             {},
		"bad algo":          {0x7F, 1, 1, 1},
		"count at cap":      pipeline.AppendDescriptor(nil, pipeline.AlgoDeflate, pipeline.MaxChunks+1, 1, 1, 0),
		"huge chunkSize":    {byte(pipeline.AlgoDeflate), 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 1},
		"truncated origLen": {byte(pipeline.AlgoDeflate), 1, 1},
	}
	for name, data := range descCases {
		if _, _, _, _, _, _, err := pipeline.ParseDescriptor(data); !errors.Is(err, pipeline.ErrFrame) {
			t.Errorf("descriptor %s: got %v, want ErrFrame", name, err)
		}
	}
}

// FuzzDescriptor feeds arbitrary bytes to the descriptor parser and,
// when a descriptor parses, opens a decompress session from it — the
// cross-field geometry check must turn any inconsistent descriptor into
// a typed error before a single output byte is allocated past origLen.
func FuzzDescriptor(f *testing.F) {
	f.Add(pipeline.AppendDescriptor(nil, pipeline.AlgoDeflate, 4, 64<<10, 200<<10, 0))
	f.Add(pipeline.AppendDescriptor(nil, pipeline.AlgoLZ4, 0, 0, 0, 0))
	f.Add(pipeline.AppendDescriptor(nil, pipeline.AlgoSZ3F32, 1, 4096, 4000, 0xA1B2C3D4))
	// Rejected shapes as seeds: oversized count, padded geometry,
	// truncated tail, unterminated varint.
	f.Add(pipeline.AppendDescriptor(nil, pipeline.AlgoDeflate, pipeline.MaxChunks+1, 1, 1, 0))
	f.Add(pipeline.AppendDescriptor(nil, pipeline.AlgoDeflate, 4, 64<<10, 1, 0))
	f.Add([]byte{byte(pipeline.AlgoZlib), 2, 8})
	f.Add(bytes.Repeat([]byte{0x80}, 12))

	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { lib.Finalize() })

	f.Fuzz(func(t *testing.T, data []byte) {
		algo, count, chunkSize, origLen, srcCRC, _, err := pipeline.ParseDescriptor(data)
		if err != nil {
			return
		}
		if count > pipeline.MaxChunks || chunkSize > 1<<30 || origLen > 1<<30 {
			t.Fatalf("parser accepted over-cap geometry: %d/%d/%d", count, chunkSize, origLen)
		}
		sess, err := lib.Pipeline().NewDecompress(pipeline.Spec{Algo: algo}, count, chunkSize, origLen, srcCRC)
		if err != nil {
			if !errors.Is(err, pipeline.ErrBadSpec) {
				t.Fatalf("geometry rejection not typed: %v", err)
			}
			return
		}
		sess.Abort()
	})
}

// TestAbortMidStream: an abort with chunks still in flight waits for
// the in-flight decodes, then poisons the session — later Submits and
// Wait return ErrAborted, and Abort is idempotent.
func TestAbortMidStream(t *testing.T) {
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()

	data := textData(256 << 10)
	spec, err := lib.PipelineSpec(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}, core.TypeBytes)
	if err != nil {
		t.Fatal(err)
	}
	type chunk struct {
		index, origLen int
		crc            uint32
		data           []byte
	}
	var chunks []chunk
	sum, err := lib.Pipeline().Compress(data, spec, func(ch pipeline.Chunk) error {
		chunks = append(chunks, chunk{ch.Index, ch.OrigLen, ch.CRC, append([]byte(nil), ch.Data...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Chunks < 2 {
		t.Fatalf("need a multi-chunk stream, got %d", sum.Chunks)
	}

	sess, err := lib.Pipeline().NewDecompress(spec, sum.Chunks, sum.ChunkSize, len(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half the stream arrives, then the sender dies.
	for _, ch := range chunks[:len(chunks)/2] {
		if err := sess.Submit(ch.index, ch.origLen, ch.crc, ch.data, 0); err != nil {
			t.Fatal(err)
		}
	}
	sess.Abort()
	sess.Abort() // idempotent
	last := chunks[len(chunks)-1]
	if err := sess.Submit(last.index, last.origLen, last.crc, last.data, 0); !errors.Is(err, pipeline.ErrAborted) {
		t.Fatalf("submit after abort: got %v, want ErrAborted", err)
	}
	if _, _, err := sess.Wait(); !errors.Is(err, pipeline.ErrAborted) {
		t.Fatalf("wait after abort: got %v, want ErrAborted", err)
	}
}
