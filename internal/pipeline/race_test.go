//go:build race

package pipeline

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-contract tests skip under it because the detector's
// shadow-memory bookkeeping allocates on paths that are allocation-free
// in a normal build.
const raceEnabled = true
