//go:build !race

package pipeline

// raceEnabled reports whether the race detector is instrumenting this
// build; see race_test.go.
const raceEnabled = false
