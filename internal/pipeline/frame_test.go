package pipeline_test

import (
	"bytes"
	"testing"

	"pedal/internal/pipeline"
)

func TestChunkFrameRoundTrip(t *testing.T) {
	body := []byte("compressed chunk body")
	var stream []byte
	stream = pipeline.AppendChunkFrame(stream, 3, 65536, body)
	stream = pipeline.AppendChunkFrame(stream, 0, 12, nil)

	index, origLen, got, rest, err := pipeline.ParseChunkFrame(stream)
	if err != nil {
		t.Fatal(err)
	}
	if index != 3 || origLen != 65536 || !bytes.Equal(got, body) {
		t.Fatalf("frame 1: index=%d origLen=%d body=%q", index, origLen, got)
	}
	index, origLen, got, rest, err = pipeline.ParseChunkFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	if index != 0 || origLen != 12 || len(got) != 0 || len(rest) != 0 {
		t.Fatalf("frame 2: index=%d origLen=%d body=%q rest=%d", index, origLen, got, len(rest))
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	desc := pipeline.AppendDescriptor(nil, pipeline.AlgoLZ4, 7, 256<<10, 7<<18-13)
	algo, count, chunkSize, origLen, rest, err := pipeline.ParseDescriptor(desc)
	if err != nil {
		t.Fatal(err)
	}
	if algo != pipeline.AlgoLZ4 || count != 7 || chunkSize != 256<<10 || origLen != 7<<18-13 || len(rest) != 0 {
		t.Fatalf("descriptor mismatch: %v %d %d %d rest=%d", algo, count, chunkSize, origLen, len(rest))
	}
	if _, _, _, _, _, err := pipeline.ParseDescriptor([]byte{0x00, 1, 1, 1}); err == nil {
		t.Error("invalid algo accepted")
	}
	if _, _, _, _, _, err := pipeline.ParseDescriptor(nil); err == nil {
		t.Error("empty descriptor accepted")
	}
}

// FuzzChunkFrame throws arbitrary bytes at the wire-facing frame parser.
// A successful parse must re-encode to a stream that parses back to the
// same values, and the parser must never read outside the input.
func FuzzChunkFrame(f *testing.F) {
	f.Add(pipeline.AppendChunkFrame(nil, 0, 0, nil))
	f.Add(pipeline.AppendChunkFrame(nil, 5, 1<<20, []byte("body bytes")))
	f.Add(pipeline.AppendChunkFrame(pipeline.AppendChunkFrame(nil, 1, 64, bytes.Repeat([]byte{0xAB}, 64)), 2, 64, nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		index, origLen, body, rest, err := pipeline.ParseChunkFrame(data)
		if err != nil {
			return
		}
		if len(body)+len(rest) > len(data) {
			t.Fatalf("parsed %d body + %d rest from %d input bytes", len(body), len(rest), len(data))
		}
		re := pipeline.AppendChunkFrame(nil, index, origLen, body)
		i2, o2, b2, r2, err := pipeline.ParseChunkFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not parse: %v", err)
		}
		if i2 != index || o2 != origLen || !bytes.Equal(b2, body) || len(r2) != 0 {
			t.Fatalf("re-encode mismatch: (%d,%d,%d) vs (%d,%d,%d)", index, origLen, len(body), i2, o2, len(b2))
		}
	})
}
