package pipeline_test

import (
	"bytes"
	"testing"

	"pedal/internal/pipeline"
)

func TestChunkFrameRoundTrip(t *testing.T) {
	body := []byte("compressed chunk body")
	var stream []byte
	stream = pipeline.AppendChunkFrame(stream, 3, 65536, 0xDEADBEEF, body)
	stream = pipeline.AppendChunkFrame(stream, 0, 12, 0, nil)

	index, origLen, crc, got, rest, err := pipeline.ParseChunkFrame(stream)
	if err != nil {
		t.Fatal(err)
	}
	if index != 3 || origLen != 65536 || crc != 0xDEADBEEF || !bytes.Equal(got, body) {
		t.Fatalf("frame 1: index=%d origLen=%d crc=%#x body=%q", index, origLen, crc, got)
	}
	index, origLen, crc, got, rest, err = pipeline.ParseChunkFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	if index != 0 || origLen != 12 || crc != 0 || len(got) != 0 || len(rest) != 0 {
		t.Fatalf("frame 2: index=%d origLen=%d crc=%#x body=%q rest=%d", index, origLen, crc, got, len(rest))
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	desc := pipeline.AppendDescriptor(nil, pipeline.AlgoLZ4, 7, 256<<10, 7<<18-13, 0xCAFEF00D)
	algo, count, chunkSize, origLen, srcCRC, rest, err := pipeline.ParseDescriptor(desc)
	if err != nil {
		t.Fatal(err)
	}
	if algo != pipeline.AlgoLZ4 || count != 7 || chunkSize != 256<<10 || origLen != 7<<18-13 || srcCRC != 0xCAFEF00D || len(rest) != 0 {
		t.Fatalf("descriptor mismatch: %v %d %d %d %#x rest=%d", algo, count, chunkSize, origLen, srcCRC, len(rest))
	}
	if _, _, _, _, _, _, err := pipeline.ParseDescriptor([]byte{0x00, 1, 1, 1}); err == nil {
		t.Error("invalid algo accepted")
	}
	if _, _, _, _, _, _, err := pipeline.ParseDescriptor(nil); err == nil {
		t.Error("empty descriptor accepted")
	}
	// A descriptor truncated inside the CRC field must not parse.
	if _, _, _, _, _, _, err := pipeline.ParseDescriptor(desc[:len(desc)-2]); err == nil {
		t.Error("descriptor truncated inside srcCRC accepted")
	}
}

// FuzzChunkFrame throws arbitrary bytes at the wire-facing frame parser.
// A successful parse must re-encode to a stream that parses back to the
// same values, and the parser must never read outside the input.
func FuzzChunkFrame(f *testing.F) {
	f.Add(pipeline.AppendChunkFrame(nil, 0, 0, 0, nil))
	f.Add(pipeline.AppendChunkFrame(nil, 5, 1<<20, 0x01020304, []byte("body bytes")))
	f.Add(pipeline.AppendChunkFrame(pipeline.AppendChunkFrame(nil, 1, 64, 7, bytes.Repeat([]byte{0xAB}, 64)), 2, 64, 0, nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		index, origLen, crc, body, rest, err := pipeline.ParseChunkFrame(data)
		if err != nil {
			return
		}
		if len(body)+len(rest) > len(data) {
			t.Fatalf("parsed %d body + %d rest from %d input bytes", len(body), len(rest), len(data))
		}
		re := pipeline.AppendChunkFrame(nil, index, origLen, crc, body)
		i2, o2, c2, b2, r2, err := pipeline.ParseChunkFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not parse: %v", err)
		}
		if i2 != index || o2 != origLen || c2 != crc || !bytes.Equal(b2, body) || len(r2) != 0 {
			t.Fatalf("re-encode mismatch: (%d,%d,%#x,%d) vs (%d,%d,%#x,%d)", index, origLen, crc, len(body), i2, o2, c2, len(b2))
		}
	})
}
