package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Self-describing wire framing for the streamed-chunk protocol. A
// pipelined payload is a descriptor followed by one frame per chunk in
// completion order:
//
//	descriptor: algo(1) | uvarint chunkCount | uvarint chunkSize | uvarint origLen
//	frame:      uvarint index | uvarint origLen | uvarint compLen | compLen body bytes
//
// Frames carry their own index because completion order is not index
// order — the receiver reassembles by offset while later chunks are
// still in flight.

// ErrFrame reports malformed chunk framing.
var ErrFrame = errors.New("pipeline: bad frame")

// maxFrameOrigLen bounds a single chunk's declared uncompressed size.
const maxFrameOrigLen = 1 << 30

// AppendChunkFrame appends one chunk frame to dst.
func AppendChunkFrame(dst []byte, index, origLen int, body []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(index))
	dst = binary.AppendUvarint(dst, uint64(origLen))
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// ParseChunkFrame decodes one chunk frame from the front of src,
// returning the remaining bytes. The body aliases src.
func ParseChunkFrame(src []byte) (index, origLen int, body, rest []byte, err error) {
	idx, n := binary.Uvarint(src)
	if n <= 0 || idx >= MaxChunks {
		return 0, 0, nil, nil, fmt.Errorf("%w: chunk index", ErrFrame)
	}
	src = src[n:]
	ol, n := binary.Uvarint(src)
	if n <= 0 || ol > maxFrameOrigLen {
		return 0, 0, nil, nil, fmt.Errorf("%w: chunk origLen", ErrFrame)
	}
	src = src[n:]
	cl, n := binary.Uvarint(src)
	if n <= 0 || cl > uint64(len(src)-n) {
		return 0, 0, nil, nil, fmt.Errorf("%w: chunk body length", ErrFrame)
	}
	src = src[n:]
	return int(idx), int(ol), src[:cl], src[cl:], nil
}

// AppendDescriptor appends the stream descriptor to dst.
func AppendDescriptor(dst []byte, algo Algo, count, chunkSize, origLen int) []byte {
	dst = append(dst, byte(algo))
	dst = binary.AppendUvarint(dst, uint64(count))
	dst = binary.AppendUvarint(dst, uint64(chunkSize))
	return binary.AppendUvarint(dst, uint64(origLen))
}

// ParseDescriptor decodes the stream descriptor from the front of src,
// returning the remaining bytes (the first chunk frame). The geometry
// is range-checked here; cross-field consistency is enforced by
// Pipeline.NewDecompress.
func ParseDescriptor(src []byte) (algo Algo, count, chunkSize, origLen int, rest []byte, err error) {
	if len(src) < 1 {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: empty descriptor", ErrFrame)
	}
	algo = Algo(src[0])
	if !algo.valid() {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: algo %d", ErrFrame, src[0])
	}
	src = src[1:]
	c, n := binary.Uvarint(src)
	if n <= 0 || c > MaxChunks {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: chunk count", ErrFrame)
	}
	src = src[n:]
	cs, n := binary.Uvarint(src)
	if n <= 0 || cs > maxFrameOrigLen {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: chunk size", ErrFrame)
	}
	src = src[n:]
	ol, n := binary.Uvarint(src)
	if n <= 0 || ol > maxFrameOrigLen {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: origLen", ErrFrame)
	}
	return algo, int(c), int(cs), int(ol), src[n:], nil
}
