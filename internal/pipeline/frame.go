package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Self-describing wire framing for the streamed-chunk protocol. A
// pipelined payload is a descriptor followed by one frame per chunk in
// completion order:
//
//	descriptor: algo(1) | uvarint chunkCount | uvarint chunkSize | uvarint origLen | srcCRC(4, LE)
//	frame:      uvarint index | uvarint origLen | uvarint compLen | crc(4, LE) | compLen body bytes
//
// Frames carry their own index because completion order is not index
// order — the receiver reassembles by offset while later chunks are
// still in flight.
//
// The CRC fields are the hop-carried checksums of the integrity plane:
// computed once at the source (the engine's completion metadata, or one
// software pass over a freshly compressed chunk) and carried with the
// data so every hop — transport, fleet, checkpoint — checks the same
// digest instead of recomputing or trusting. A frame CRC covers the
// chunk's compressed body; the descriptor's srcCRC covers the whole
// *uncompressed* payload (zero means "not carried", the sentinel used
// below VerifyFull so the hot path and the Sampled screening tier stay
// unchanged). Both are
// fixed-width little-endian rather than uvarint: a CRC is uniformly
// random, so a varint would average five bytes and save nothing.

// ErrFrame reports malformed chunk framing.
var ErrFrame = errors.New("pipeline: bad frame")

// maxFrameOrigLen bounds a single chunk's declared uncompressed size.
const maxFrameOrigLen = 1 << 30

// AppendChunkFrame appends one chunk frame to dst. crc is the
// source-computed CRC-32 of body, carried hop to hop.
func AppendChunkFrame(dst []byte, index, origLen int, crc uint32, body []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(index))
	dst = binary.AppendUvarint(dst, uint64(origLen))
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return append(dst, body...)
}

// ParseChunkFrame decodes one chunk frame from the front of src,
// returning the remaining bytes. The body aliases src. The carried CRC
// is returned for the receiver to check against the body; parsing does
// not check it (the hop boundary — DecompressSession.Submit — does, so
// the rejection is attributed to the hop that observed it).
func ParseChunkFrame(src []byte) (index, origLen int, crc uint32, body, rest []byte, err error) {
	idx, n := binary.Uvarint(src)
	if n <= 0 || idx >= MaxChunks {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: chunk index", ErrFrame)
	}
	src = src[n:]
	ol, n := binary.Uvarint(src)
	if n <= 0 || ol > maxFrameOrigLen {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: chunk origLen", ErrFrame)
	}
	src = src[n:]
	cl, n := binary.Uvarint(src)
	if n <= 0 || cl > uint64(len(src)-n-4) {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: chunk body length", ErrFrame)
	}
	src = src[n:]
	if len(src) < 4 {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: chunk crc", ErrFrame)
	}
	crc = binary.LittleEndian.Uint32(src)
	src = src[4:]
	return int(idx), int(ol), crc, src[:cl], src[cl:], nil
}

// AppendDescriptor appends the stream descriptor to dst. srcCRC is the
// CRC-32 of the whole uncompressed payload (zero when not carried).
func AppendDescriptor(dst []byte, algo Algo, count, chunkSize, origLen int, srcCRC uint32) []byte {
	dst = append(dst, byte(algo))
	dst = binary.AppendUvarint(dst, uint64(count))
	dst = binary.AppendUvarint(dst, uint64(chunkSize))
	dst = binary.AppendUvarint(dst, uint64(origLen))
	return binary.LittleEndian.AppendUint32(dst, srcCRC)
}

// ParseDescriptor decodes the stream descriptor from the front of src,
// returning the remaining bytes (the first chunk frame). The geometry
// is range-checked here; cross-field consistency is enforced by
// Pipeline.NewDecompress, and the srcCRC is checked against the
// reassembled payload by DecompressSession.Wait.
func ParseDescriptor(src []byte) (algo Algo, count, chunkSize, origLen int, srcCRC uint32, rest []byte, err error) {
	if len(src) < 1 {
		return 0, 0, 0, 0, 0, nil, fmt.Errorf("%w: empty descriptor", ErrFrame)
	}
	algo = Algo(src[0])
	if !algo.valid() {
		return 0, 0, 0, 0, 0, nil, fmt.Errorf("%w: algo %d", ErrFrame, src[0])
	}
	src = src[1:]
	c, n := binary.Uvarint(src)
	if n <= 0 || c > MaxChunks {
		return 0, 0, 0, 0, 0, nil, fmt.Errorf("%w: chunk count", ErrFrame)
	}
	src = src[n:]
	cs, n := binary.Uvarint(src)
	if n <= 0 || cs > maxFrameOrigLen {
		return 0, 0, 0, 0, 0, nil, fmt.Errorf("%w: chunk size", ErrFrame)
	}
	src = src[n:]
	ol, n := binary.Uvarint(src)
	if n <= 0 || ol > maxFrameOrigLen {
		return 0, 0, 0, 0, 0, nil, fmt.Errorf("%w: origLen", ErrFrame)
	}
	src = src[n:]
	if len(src) < 4 {
		return 0, 0, 0, 0, 0, nil, fmt.Errorf("%w: source crc", ErrFrame)
	}
	return algo, int(c), int(cs), int(ol), binary.LittleEndian.Uint32(src), src[4:], nil
}
