package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/dpu"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/lz4"
	"pedal/internal/sz3"
	"pedal/internal/zlibfmt"
)

// DecompressSession reassembles a chunked payload while chunks are still
// in flight: each Submit schedules the chunk's decompression across the
// SoC workers and the C-Engine immediately, decoding straight into the
// chunk's slot of the preallocated output buffer. Submit is not safe for
// concurrent use (the MPI progress loop calls it from one goroutine);
// the decode work itself runs concurrently.
type DecompressSession struct {
	p         *Pipeline
	spec      Spec
	out       []byte
	chunkSize int
	count     int
	seen      []bool
	submitted int
	pl        *planner
	wg        sync.WaitGroup
	// wantCRC is the descriptor-carried CRC of the whole uncompressed
	// payload (zero when the source did not carry one); Wait checks the
	// reassembled output against it. rejected counts chunks this hop
	// refused for a frame-CRC mismatch.
	wantCRC  uint32
	rejected int

	mu       sync.Mutex
	firstErr error
	replays  int
	aborted  bool
}

// ErrAborted reports a decompression session cancelled by Abort before
// all chunks arrived (the sending rank died mid-stream, the MPI wait was
// revoked, ...).
var ErrAborted = errors.New("pipeline: session aborted")

// NewDecompress opens a reassembly session for count chunks of
// chunkSize bytes (the last possibly shorter) totalling origLen
// uncompressed bytes. The geometry is validated against origLen so a
// corrupt descriptor cannot cause over-allocation. srcCRC is the
// descriptor-carried CRC of the uncompressed payload (zero when not
// carried); Wait checks the reassembled output against it, so
// end-to-end corruption — even a corrupt chunk whose frame CRC was
// recomputed by a malicious or buggy hop — cannot reach the caller
// undetected.
func (p *Pipeline) NewDecompress(spec Spec, count, chunkSize, origLen int, srcCRC uint32) (*DecompressSession, error) {
	if !spec.Algo.valid() {
		return nil, fmt.Errorf("%w: algo %d", ErrBadSpec, spec.Algo)
	}
	if count < 0 || count > MaxChunks || origLen < 0 {
		return nil, fmt.Errorf("%w: count %d origLen %d", ErrBadSpec, count, origLen)
	}
	if count == 0 {
		if origLen != 0 {
			return nil, fmt.Errorf("%w: zero chunks but origLen %d", ErrBadSpec, origLen)
		}
		return &DecompressSession{p: p, spec: spec, wantCRC: srcCRC}, nil
	}
	if chunkSize <= 0 {
		return nil, fmt.Errorf("%w: chunk size %d", ErrBadSpec, chunkSize)
	}
	// origLen must land inside the last chunk: (count-1)*chunkSize <
	// origLen ≤ count*chunkSize, guarding against both truncated and
	// padded descriptors.
	if origLen > count*chunkSize || origLen <= (count-1)*chunkSize {
		return nil, fmt.Errorf("%w: %d chunks of %d cannot cover %d bytes", ErrBadSpec, count, chunkSize, origLen)
	}
	return &DecompressSession{
		p:         p,
		spec:      spec,
		out:       make([]byte, origLen),
		chunkSize: chunkSize,
		count:     count,
		seen:      make([]bool, count),
		pl:        p.newPlanner(spec, hwmodel.Decompress),
		wantCRC:   srcCRC,
	}, nil
}

// Submit schedules chunk index, whose uncompressed size is origLen and
// compressed body is comp, arriving at the given virtual time (the
// receiver's clock when the chunk's frame landed). comp must stay valid
// and unmodified until Wait returns. Chunks may arrive in any order.
//
// crc is the frame-carried source CRC of comp (zero when not carried):
// this hop checks the received bytes against it and rejects a mismatch
// with a typed integrity.CorruptError identifying the chunk, before any
// decode work is scheduled.
func (s *DecompressSession) Submit(index, origLen int, crc uint32, comp []byte, arrival time.Duration) error {
	s.mu.Lock()
	aborted := s.aborted
	s.mu.Unlock()
	if aborted {
		return ErrAborted
	}
	if index < 0 || index >= s.count {
		return fmt.Errorf("%w: index %d of %d", ErrBadChunk, index, s.count)
	}
	if crc != 0 {
		if got := checksum.CRC32(comp); got != crc {
			s.rejected++
			return &integrity.CorruptError{Hop: "pipeline.submit", Segment: "chunk", Index: index, Want: crc, Got: got}
		}
	}
	if s.seen[index] {
		return fmt.Errorf("%w: duplicate index %d", ErrBadChunk, index)
	}
	off := index * s.chunkSize
	want := s.chunkSize
	if off+want > len(s.out) {
		want = len(s.out) - off
	}
	if origLen != want {
		return fmt.Errorf("%w: chunk %d declares %d bytes, geometry says %d", ErrBadChunk, index, origLen, want)
	}
	s.seen[index] = true
	s.submitted++
	_, engine := s.pl.place(arrival, origLen)
	// Full-capacity slice so the decoder cannot spill past the slot even
	// transiently.
	slot := s.out[off : off : off+origLen]

	if engine {
		h, err := s.p.dev.CEngine().TrySubmit(dpu.Job{
			Algo: s.pl.engAlgo, Op: hwmodel.Decompress, Input: comp, MaxOutput: origLen,
		})
		if err == nil {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				res := h.Wait()
				if res.Err == nil && res.VerifyOutput() && len(res.Output) == origLen {
					copy(slot[:origLen], res.Output)
					return
				}
				// Hardware failure: decode in software instead. An
				// ErrEngineLost result is a journal replay — the chunk's
				// slot geometry guarantees exactly-once delivery into the
				// output no matter which path wins.
				if errors.Is(res.Err, dpu.ErrEngineLost) {
					s.mu.Lock()
					s.replays++
					s.mu.Unlock()
				}
				s.fail(s.decode(comp, slot, origLen))
			}()
			return nil
		}
		// Queue saturated: fall through to the SoC pool.
	}
	s.wg.Add(1)
	s.p.jobs <- func(int) {
		defer s.wg.Done()
		s.fail(s.decode(comp, slot, origLen))
	}
	return nil
}

func (s *DecompressSession) fail(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
}

// decode decompresses comp into slot (a zero-length slice whose capacity
// is exactly origLen).
func (s *DecompressSession) decode(comp, slot []byte, origLen int) error {
	switch s.spec.Algo {
	case AlgoDeflate:
		out, err := flate.AppendDecompress(slot, comp, origLen)
		if err != nil {
			return err
		}
		if len(out) != origLen {
			return fmt.Errorf("%w: deflate chunk decoded %d of %d bytes", ErrBadChunk, len(out), origLen)
		}
		return nil
	case AlgoZlib:
		out, err := zlibfmt.DecompressLimit(comp, origLen)
		if err != nil {
			return err
		}
		if len(out) != origLen {
			return fmt.Errorf("%w: zlib chunk decoded %d of %d bytes", ErrBadChunk, len(out), origLen)
		}
		copy(slot[:origLen], out)
		return nil
	case AlgoLZ4:
		out, err := lz4.DecompressLimit(comp, origLen)
		if err != nil {
			return err
		}
		if len(out) != origLen {
			return fmt.Errorf("%w: lz4 chunk decoded %d of %d bytes", ErrBadChunk, len(out), origLen)
		}
		copy(slot[:origLen], out)
		return nil
	case AlgoSZ3F32:
		vals, _, err := sz3.DecompressFloat32(comp)
		if err != nil {
			return err
		}
		if len(vals)*4 != origLen {
			return fmt.Errorf("%w: sz3 chunk decoded %d floats for %d bytes", ErrBadChunk, len(vals), origLen)
		}
		b := slot[:origLen]
		for i, v := range vals {
			binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
		}
		return nil
	case AlgoSZ3F64:
		vals, _, err := sz3.DecompressFloat64(comp)
		if err != nil {
			return err
		}
		if len(vals)*8 != origLen {
			return fmt.Errorf("%w: sz3 chunk decoded %d floats for %d bytes", ErrBadChunk, len(vals), origLen)
		}
		b := slot[:origLen]
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
		}
		return nil
	default:
		return fmt.Errorf("%w: algo %d", ErrBadSpec, s.spec.Algo)
	}
}

// Abort cancels the session: it waits for already-submitted chunks to
// finish decoding — so no decode goroutine outlives the session and the
// caller may reuse submitted frame buffers immediately — then poisons
// the session so later Submits fail with ErrAborted and Wait reports the
// abort. Abort is idempotent and safe after a failed Submit; an MPI
// receive interrupted by a rank failure calls it so a half-arrived
// stream leaks neither goroutines nor buffers.
func (s *DecompressSession) Abort() {
	s.wg.Wait()
	s.mu.Lock()
	s.aborted = true
	if s.firstErr == nil {
		s.firstErr = ErrAborted
	}
	s.mu.Unlock()
	s.out = nil
}

// Wait blocks until every submitted chunk has decoded and returns the
// reassembled payload with the session's virtual-time summary. It fails
// with ErrIncomplete when chunks are missing.
func (s *DecompressSession) Wait() ([]byte, Summary, error) {
	s.mu.Lock()
	aborted := s.aborted
	s.mu.Unlock()
	if aborted {
		return nil, Summary{}, ErrAborted
	}
	if s.submitted != s.count {
		return nil, Summary{}, fmt.Errorf("%w: %d of %d submitted", ErrIncomplete, s.submitted, s.count)
	}
	s.wg.Wait()
	sum := Summary{Chunks: s.count, ChunkSize: s.chunkSize}
	if s.pl != nil {
		sum.Makespan = s.pl.makespan
		sum.Busy = s.pl.busy
		sum.EngineChunks = s.pl.engChunks
	}
	s.mu.Lock()
	err := s.firstErr
	sum.Replayed = s.replays
	s.mu.Unlock()
	if err != nil {
		return nil, sum, err
	}
	// End-to-end check: the reassembled payload must match the CRC the
	// source computed before any chunking, compression, or transit.
	if s.wantCRC != 0 {
		if got := checksum.CRC32(s.out); got != s.wantCRC {
			return nil, sum, &integrity.CorruptError{Hop: "pipeline.wait", Segment: "payload", Want: s.wantCRC, Got: got}
		}
	}
	return s.out, sum, nil
}

// Rejected reports how many chunk submissions this session refused for
// a frame-CRC mismatch (hop-level corruption detection).
func (s *DecompressSession) Rejected() int { return s.rejected }

// bytesToF32 reinterprets little-endian bytes as float32 values.
func bytesToF32(data []byte) ([]float32, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("%w: %d bytes not float32-aligned", ErrBadChunk, len(data))
	}
	out := make([]float32, len(data)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return out, nil
}

// bytesToF64 reinterprets little-endian bytes as float64 values.
func bytesToF64(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("%w: %d bytes not float64-aligned", ErrBadChunk, len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out, nil
}
