package pipeline_test

import (
	"bytes"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/dpu"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/pipeline"
)

// TestPipelinedStallMidStream injects FaultStall into the C-Engine while
// the chunked pipeline is streaming, with the stall watchdog armed, and
// asserts the recovery contract: every chunk is delivered exactly once,
// the reassembled payload is byte-identical, and at least one stalled
// chunk was replayed on the SoC (Summary.Replayed).
func TestPipelinedStallMidStream(t *testing.T) {
	lib, err := core.Init(core.Options{
		Generation: hwmodel.BlueField2,
		FaultInjector: faults.NewInjector(faults.Config{
			Seed: 61, PStall: 0.6,
		}),
		Resilience: &core.ResilienceOptions{
			// Generous budgets: queue wait behind sibling chunks and the
			// race detector's slowdown must never look like a stall.
			Watchdog: &dpu.WatchdogConfig{
				Interval:         time.Millisecond,
				BudgetFloor:      50 * time.Millisecond,
				BudgetSlack:      8,
				WedgeAfter:       3,
				MaxResetAttempts: 3,
				ResetBackoff:     time.Millisecond,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()

	data := textData(512 << 10) // 8 chunks of 64 KiB
	spec, err := lib.PipelineSpec(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}, core.TypeBytes)
	if err != nil {
		t.Fatal(err)
	}

	replayed := 0
	for op := 0; op < 8 && replayed == 0; op++ {
		type delivered struct {
			origLen int
			crc     uint32
			data    []byte
		}
		seen := map[int]delivered{}
		sum, err := lib.Pipeline().Compress(data, spec, func(ch pipeline.Chunk) error {
			if _, dup := seen[ch.Index]; dup {
				t.Fatalf("chunk %d delivered twice", ch.Index)
			}
			seen[ch.Index] = delivered{origLen: ch.OrigLen, crc: ch.CRC, data: append([]byte(nil), ch.Data...)}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Chunks != len(seen) {
			t.Fatalf("delivered %d chunks, want %d", len(seen), sum.Chunks)
		}
		replayed += sum.Replayed

		// Reassemble through the decompress session: byte-identical or
		// the stall recovery corrupted the stream.
		sess, err := lib.Pipeline().NewDecompress(spec, sum.Chunks, sum.ChunkSize, len(data), 0)
		if err != nil {
			t.Fatal(err)
		}
		for idx, d := range seen {
			if err := sess.Submit(idx, d.origLen, d.crc, d.data, 0); err != nil {
				t.Fatal(err)
			}
		}
		out, dsum, err := sess.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("op %d: round trip mismatch after stall recovery", op)
		}
		replayed += dsum.Replayed
	}
	if replayed == 0 {
		t.Fatal("no chunk was ever replayed: the stall injection never bit")
	}
	if got := lib.EngineHealth().State; got != dpu.EngineLive && got != dpu.EngineDegraded {
		t.Fatalf("engine in transient state %v after soak", got)
	}
}
