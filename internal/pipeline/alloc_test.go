package pipeline

import (
	"bytes"
	"testing"

	"pedal/internal/dpu"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
)

// TestProduceSoftVerifiedZeroAllocs pins the allocation contract of the
// verified chunk hot path: producing one deflate chunk — including the
// decode-verify pass on the chunks the sampler elects — must not
// allocate in steady state. Both Sampled (the production screening
// mode) and Full (every chunk verified, the worst case) are held to
// zero, so turning verification on cannot reintroduce per-chunk GC
// pressure.
func TestProduceSoftVerifiedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector shadow memory allocates on the hot path")
	}
	dev, err := dpu.NewDevice(hwmodel.BlueField3, dpu.SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	p := New(dev, 1, nil)
	t.Cleanup(p.Close)

	data := bytes.Repeat([]byte("<chunk seq=\"9\">verified hot-path payload</chunk>\n"), 5600)[:256<<10]
	for _, tc := range []struct {
		name string
		mode integrity.VerifyMode
	}{
		{"off", integrity.VerifyOff},
		{"sampled", integrity.VerifySampled},
		{"full", integrity.VerifyFull},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := Spec{Algo: AlgoDeflate, Verify: tc.mode}
			sampler := integrity.NewSampler(tc.mode, 0)
			produce := func() {
				r := p.produceSoft(1, spec, sampler, data)
				if r.err != nil {
					t.Fatal(r.err)
				}
				if r.mismatch {
					t.Fatal("clean chunk reported a verify mismatch")
				}
				if r.buf != nil {
					p.pool.Put(r.buf)
				}
			}
			// Warm the pooled compress/verify scratch before measuring.
			for i := 0; i < 2; i++ {
				produce()
			}
			if n := testing.AllocsPerRun(30, produce); n != 0 {
				t.Errorf("verify=%s: %v allocs/op on the chunk hot path, want 0", tc.mode, n)
			}
		})
	}
}
