// Package pipeline implements PEDAL's chunked streaming compression
// scheduler: a payload is split into fixed-size chunks that are fanned
// out across a persistent pool of SoC worker goroutines and the
// C-Engine's asynchronous job queue, and the compressed chunks are
// delivered to a caller-provided sink in completion order. Because the
// sink typically transmits each chunk as it completes, transmission of
// chunk i overlaps compression of chunk i+1 — the compression/
// communication overlap the paper's §VI extension sketches.
//
// Virtual-time accounting follows the cost model in internal/hwmodel.
// The SoC side is modelled as one queue per ARM core; a chunk placed on
// a core occupies it for the full single-stream OpCost of the chunk.
// The C-Engine is modelled as a serial batched resource: its large fixed
// submission cost (work-queue descriptor setup, ~1.3 ms on BlueField-2)
// is paid once per busy period, and chunks that queue back-to-back
// behind it pay only their streaming cost. This mirrors how DOCA batch
// submission amortises setup across queued descriptors; without it,
// chunking would *add* one fixed cost per chunk and lose to the serial
// path outright. The pipeline makespan is therefore the maximum over
// resources of their critical paths — not the sum of stage times.
package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/dpu"
	"pedal/internal/faults"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/lz4"
	"pedal/internal/mempool"
	"pedal/internal/sz3"
	"pedal/internal/zlibfmt"
)

// Errors.
var (
	ErrClosed     = errors.New("pipeline: closed")
	ErrBadSpec    = errors.New("pipeline: bad spec")
	ErrBadChunk   = errors.New("pipeline: bad chunk")
	ErrIncomplete = errors.New("pipeline: missing chunks")
)

// Algo selects the per-chunk codec.
type Algo uint8

// Codecs. The SZ3 variants differ in element width; chunk boundaries are
// 8-byte aligned so both split cleanly.
const (
	AlgoDeflate Algo = iota + 1
	AlgoZlib
	AlgoLZ4
	AlgoSZ3F32
	AlgoSZ3F64
)

func (a Algo) String() string {
	switch a {
	case AlgoDeflate:
		return "deflate"
	case AlgoZlib:
		return "zlib"
	case AlgoLZ4:
		return "lz4"
	case AlgoSZ3F32:
		return "sz3-f32"
	case AlgoSZ3F64:
		return "sz3-f64"
	default:
		return fmt.Sprintf("Algo(%d)", uint8(a))
	}
}

func (a Algo) valid() bool { return a >= AlgoDeflate && a <= AlgoSZ3F64 }

// Spec configures one pipelined operation.
type Spec struct {
	Algo Algo
	// Engine permits C-Engine offload where the hardware supports the
	// path (Table II); unsupported combinations silently run on the SoC.
	Engine bool
	// Level is the deflate/zlib effort (0 means DefaultLevel).
	Level int
	// SZ3 configures the lossy codec for the SZ3 algos.
	SZ3 sz3.Config
	// ChunkSize overrides the adaptive chunk size (rounded up to a
	// multiple of chunkAlign). Zero selects automatically.
	ChunkSize int
	// Verify enables per-chunk verified compression: decode-verify for
	// the lossless codecs, the scalar-reference differential referee for
	// SZ3. A mismatching chunk is re-executed on the trusted scalar path
	// before delivery. Off trusts kernel output.
	Verify integrity.VerifyMode
	// VerifySampleN is the sampling stride for VerifySampled; zero means
	// integrity.DefaultSampleN.
	VerifySampleN int
	// SDC, when set, injects silent data corruption into SoC-produced
	// chunks (the C-Engine carries its own injector); each worker draws
	// from its own per-core seeded stream. Tests and soaks only.
	SDC *faults.ComputeInjector
}

// Chunk sizing policy.
const (
	// MinChunk keeps per-chunk framing and fixed costs amortised.
	MinChunk = 64 << 10
	// MaxChunk bounds per-chunk latency so overlap kicks in early.
	MaxChunk = 1 << 20
	// MaxChunksPerOp caps the fan-out of one operation at the C-Engine
	// work-queue depth so every chunk can be in flight at once.
	MaxChunksPerOp = 128
	// MaxChunks bounds the chunk index accepted from the wire.
	MaxChunks = 1 << 20
	// chunkAlign keeps chunk boundaries on 8-byte (float64) boundaries.
	chunkAlign = 8
)

// Chunk is one compressed chunk handed to the sink. Data is only valid
// during the sink call; the backing buffer returns to the pool after.
type Chunk struct {
	Index   int
	Offset  int
	OrigLen int
	Data    []byte
	// Engine reports whether the chunk was produced by the C-Engine.
	Engine bool
	// CRC is the source-computed CRC-32 of Data — the hop-carried
	// checksum downstream layers (frames, transport, fleet, checkpoint)
	// carry and check instead of recomputing or trusting.
	CRC uint32
	// Done is the chunk's virtual completion time relative to the start
	// of the operation.
	Done time.Duration
}

// Summary is the virtual-time account of one pipelined operation.
type Summary struct {
	// Makespan is the virtual duration of the whole operation: the
	// maximum completion time across all resources, not the sum.
	Makespan time.Duration
	// Busy is the total virtual compute time across all resources; the
	// difference between Chunks×serial-cost and Busy is the model's view
	// of chunking overhead (none under this cost model).
	Busy         time.Duration
	Chunks       int
	EngineChunks int
	CompBytes    int
	ChunkSize    int
	// Replayed counts chunks whose engine job was lost to a stall or
	// wedge (ErrEngineLost) and were re-executed on the SoC from the
	// scheduler's chunk journal — each exactly once, so reassembly stays
	// complete with no duplicate or missing chunks.
	Replayed int
	// VerifyMismatches counts chunks whose verification caught silent
	// data corruption; ScalarFallbacks counts the trusted scalar
	// re-executions that replaced them; Quarantines counts engine
	// quarantine transitions those mismatches triggered.
	VerifyMismatches int
	ScalarFallbacks  int
	Quarantines      int
	// SrcCRC is the CRC-32 of the whole uncompressed payload under
	// VerifyFull (zero otherwise, the "not carried" descriptor
	// sentinel). Each worker digests its own chunk alongside the
	// compression and the sink loop stitches the stream value with
	// CRC32Combine, so the end-to-end digest costs no serial pass over
	// the input.
	SrcCRC uint32
}

// Pipeline owns a persistent SoC worker pool bound to one device. It is
// safe for concurrent use; workers are shared across operations.
type Pipeline struct {
	dev     *dpu.Device
	gen     hwmodel.Generation
	pool    *mempool.Pool
	jobs    chan func(core int)
	wg      sync.WaitGroup
	workers int
	once    sync.Once
	// maxConc is the brownout concurrency cap (overload fault domain):
	// 0 means unrestricted; n>0 bounds how many chunks of one operation
	// are in flight at once (and shrinks the virtual schedule to match),
	// so each in-flight chunk's pooled buffers are the only ones held.
	// 1 is the serial-fallback rung of the brownout ladder.
	maxConc atomic.Int32
}

// New starts a pipeline with one worker goroutine per SoC core (or the
// given override) on dev. pool supplies output buffers; nil creates a
// private pool.
func New(dev *dpu.Device, workers int, pool *mempool.Pool) *Pipeline {
	if workers <= 0 {
		workers = dev.SoC().Cores
	}
	if pool == nil {
		pool = mempool.New()
	}
	p := &Pipeline{
		dev:     dev,
		gen:     dev.Generation(),
		pool:    pool,
		jobs:    make(chan func(core int), 4*workers),
		workers: workers,
	}
	// Each worker is pinned to a virtual core identity so the SDC
	// injector's per-core seeded schedules stay reproducible regardless
	// of which goroutine the runtime schedules first.
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func(core int) {
			defer p.wg.Done()
			for f := range p.jobs {
				f(core)
			}
		}(i)
	}
	return p
}

// Close stops the worker pool after draining queued work.
func (p *Pipeline) Close() {
	p.once.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

// Workers returns the SoC worker count.
func (p *Pipeline) Workers() int { return p.workers }

// SetMaxConcurrency installs the brownout concurrency cap: n > 0 bounds
// how many chunks of one operation run at once (1 = serial fallback);
// n <= 0 restores full fan-out. Safe to flip while operations run —
// in-flight operations keep the cap they started with.
func (p *Pipeline) SetMaxConcurrency(n int) {
	if n < 0 {
		n = 0
	}
	p.maxConc.Store(int32(n))
}

// MaxConcurrency reports the active brownout cap (0 = unrestricted).
func (p *Pipeline) MaxConcurrency() int { return int(p.maxConc.Load()) }

// effWorkers is the SoC parallelism the virtual schedule plans against:
// the worker count, shrunk by the brownout cap when one is set.
func (p *Pipeline) effWorkers() int {
	if c := int(p.maxConc.Load()); c > 0 && c < p.workers {
		return c
	}
	return p.workers
}

// ChunkSizeFor returns the chunk size the pipeline will use for an
// n-byte payload under spec: adaptive between MinChunk and MaxChunk,
// aimed at two waves of work per SoC core, aligned to chunkAlign, and
// floored so the chunk count never exceeds MaxChunksPerOp.
func (p *Pipeline) ChunkSizeFor(n int, spec Spec) int {
	cs := spec.ChunkSize
	if cs <= 0 {
		cs = n / (2 * p.effWorkers())
		if cs < MinChunk {
			cs = MinChunk
		}
		if cs > MaxChunk {
			cs = MaxChunk
		}
	}
	cs = (cs + chunkAlign - 1) &^ (chunkAlign - 1)
	if minCS := (n + MaxChunksPerOp - 1) / MaxChunksPerOp; cs < minCS {
		cs = (minCS + chunkAlign - 1) &^ (chunkAlign - 1)
	}
	return cs
}

// planner is the greedy earliest-finish scheduler over the virtual
// resources: per-core SoC queues plus the batched serial C-Engine.
type planner struct {
	gen       hwmodel.Generation
	spec      Spec
	op        hwmodel.Op
	cores     []time.Duration
	engAlgo   hwmodel.Algo
	engOK     bool
	engFixed  time.Duration
	engFree   time.Duration
	engUsed   bool
	engChunks int
	busy      time.Duration
	makespan  time.Duration
}

func (p *Pipeline) newPlanner(spec Spec, op hwmodel.Op) *planner {
	pl := &planner{gen: p.gen, spec: spec, op: op, cores: make([]time.Duration, p.effWorkers())}
	if spec.Engine {
		var a hwmodel.Algo
		switch {
		case spec.Algo == AlgoDeflate:
			a = hwmodel.Deflate
		case spec.Algo == AlgoLZ4 && op == hwmodel.Decompress:
			a = hwmodel.LZ4
		}
		// A quarantined engine is held off the schedule except for the
		// ledger's half-open probe admissions, which re-earn trust chunk
		// by chunk.
		if a != 0 && p.dev.SupportsCEngine(a, op) && p.dev.CEngine().IntegrityAllow() {
			if f, ok := hwmodel.OpCost(p.gen, hwmodel.CEngine, a, op, 0); ok {
				pl.engAlgo, pl.engOK, pl.engFixed = a, true, f
			}
		}
	}
	return pl
}

// socCost is the single-core SoC cost of op over n payload bytes. For
// decompression n is the chunk's *uncompressed* size — virtual time
// scales with the data volume moved, matching doca.SoCRun and the
// C-Engine's accounting.
func socCost(gen hwmodel.Generation, spec Spec, op hwmodel.Op, n int) time.Duration {
	switch spec.Algo {
	case AlgoDeflate:
		d, _ := hwmodel.OpCost(gen, hwmodel.SoC, hwmodel.Deflate, op, n)
		return d
	case AlgoZlib:
		d, _ := hwmodel.OpCost(gen, hwmodel.SoC, hwmodel.Zlib, op, n)
		return d
	case AlgoLZ4:
		d, _ := hwmodel.OpCost(gen, hwmodel.SoC, hwmodel.LZ4, op, n)
		return d
	case AlgoSZ3F32, AlgoSZ3F64:
		// Lossy core plus its FastLZ backend over the ~4× reduced
		// quantized stream (paper §III-B).
		core, _ := hwmodel.OpCost(gen, hwmodel.SoC, hwmodel.SZ3Core, op, n)
		back, _ := hwmodel.OpCost(gen, hwmodel.SoC, hwmodel.FastLZ, op, n/4)
		return core + back
	default:
		return 0
	}
}

// place schedules one chunk whose cost scales with n bytes, arriving at
// the given virtual time, onto the resource that finishes it earliest.
// It returns the chunk's completion time and whether it went to the
// C-Engine. Chunks queued back-to-back on the engine pay the fixed
// submission cost only when the engine was idle (a new busy period).
func (pl *planner) place(arrival time.Duration, n int) (time.Duration, bool) {
	sc := socCost(pl.gen, pl.spec, pl.op, n)
	ci := 0
	for i, f := range pl.cores {
		if f < pl.cores[ci] {
			ci = i
		}
	}
	socStart := arrival
	if pl.cores[ci] > socStart {
		socStart = pl.cores[ci]
	}
	socDone := socStart + sc

	if pl.engOK {
		full, _ := hwmodel.OpCost(pl.gen, hwmodel.CEngine, pl.engAlgo, pl.op, n)
		stream := full - pl.engFixed
		start := arrival
		if pl.engFree > start {
			start = pl.engFree
		}
		cost := stream
		if !pl.engUsed || start > pl.engFree {
			cost += pl.engFixed
		}
		if engDone := start + cost; engDone <= socDone {
			pl.engUsed = true
			pl.engChunks++
			pl.engFree = engDone
			pl.busy += cost
			if engDone > pl.makespan {
				pl.makespan = engDone
			}
			return engDone, true
		}
	}
	pl.cores[ci] = socDone
	pl.busy += sc
	if socDone > pl.makespan {
		pl.makespan = socDone
	}
	return socDone, false
}

type compResult struct {
	out      []byte
	buf      []byte // pooled backing buffer, nil for engine output
	crc      uint32 // source-computed CRC of out, carried hop to hop
	srcCRC   uint32 // CRC of the chunk's *uncompressed* bytes (verify on)
	err      error
	fellBack bool
	// replayed marks a fallback caused by engine loss (stall/wedge/
	// reset) rather than an ordinary job failure.
	replayed bool
	// mismatch marks a chunk whose verification caught silent
	// corruption; redo marks the scalar re-execution that replaced it;
	// quarantined marks a mismatch that tipped the engine's integrity
	// ledger over its threshold.
	mismatch    bool
	redo        bool
	quarantined bool
}

// Compress splits src into chunks, compresses them across the SoC
// workers and the C-Engine, and calls sink once per chunk in virtual
// completion order. Chunk.Data is valid only during the sink call. The
// returned Summary carries the pipeline makespan; a sink error aborts
// delivery (remaining chunks are discarded) and is returned.
func (p *Pipeline) Compress(src []byte, spec Spec, sink func(Chunk) error) (Summary, error) {
	return p.CompressContext(context.Background(), src, spec, sink)
}

// deadlineErr is the typed abandonment error for an expired chunk: the
// layers above unwrap it to dpu.ErrDeadline.
func deadlineErr(ctx context.Context) error {
	return fmt.Errorf("%w: %v", dpu.ErrDeadline, ctx.Err())
}

// CompressContext is Compress bounded by a caller deadline. The
// dispatch loop checkpoints ctx per chunk — chunks past the expiry are
// failed with a typed dpu.ErrDeadline instead of compressed — and the
// delivery loop stops sinking once the deadline passes, draining every
// dispatched chunk so all pooled buffers return. A background context
// takes exactly the classic Compress path.
func (p *Pipeline) CompressContext(ctx context.Context, src []byte, spec Spec, sink func(Chunk) error) (Summary, error) {
	if !spec.Algo.valid() {
		return Summary{}, fmt.Errorf("%w: algo %d", ErrBadSpec, spec.Algo)
	}
	n := len(src)
	if n == 0 {
		return Summary{}, nil
	}
	ctxExpires := ctx != nil && ctx.Done() != nil
	if ctxExpires && ctx.Err() != nil {
		return Summary{}, deadlineErr(ctx)
	}
	cs := p.ChunkSizeFor(n, spec)
	k := (n + cs - 1) / cs

	type slot struct {
		done   time.Duration
		engine bool
		off    int
		clen   int
	}
	pl := p.newPlanner(spec, hwmodel.Compress)
	slots := make([]slot, k)
	for i := range slots {
		off := i * cs
		clen := cs
		if off+clen > n {
			clen = n - off
		}
		done, eng := pl.place(0, clen)
		slots[i] = slot{done: done, engine: eng, off: off, clen: clen}
	}
	// Delivery order is known up front: the virtual schedule fixes each
	// chunk's completion time before any real work runs.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return slots[order[a]].done < slots[order[b]].done })

	results := make([]chan compResult, k)
	for i := range results {
		results[i] = make(chan compResult, 1)
	}
	sampler := integrity.NewSampler(spec.Verify, spec.VerifySampleN)
	// Under VerifyFull each producer also digests its chunk's *source*
	// bytes on its own core — the per-chunk CRCs are stitched into the
	// end-to-end stream digest after the sink loop, so the descriptor
	// CRC never costs a serial pass over the input. Sampled mode is the
	// bounded-cost screening tier: it keeps the unconditional per-chunk
	// hop CRCs and the sampled decode-verify, but does not carry the
	// full-coverage stream digest (a 100% source pass would defeat the
	// point of sampling).
	digest := spec.Verify == integrity.VerifyFull
	// Brownout concurrency cap: a real semaphore bounds in-flight chunks
	// (and with them the pooled buffers an operation can hold at once),
	// acquired at dispatch and released once the chunk's result is
	// posted. Nil when unrestricted.
	var sem chan struct{}
	if c := p.effWorkers(); c < k && int(p.maxConc.Load()) > 0 {
		sem = make(chan struct{}, c)
	}
	acquire := func() {
		if sem != nil {
			sem <- struct{}{}
		}
	}
	post := func(i int, r compResult) {
		results[i] <- r
		if sem != nil {
			<-sem
		}
	}
	// Dispatch in index order so the engine's FIFO matches the schedule.
	for i := range slots {
		i := i
		s := slots[i]
		data := src[s.off : s.off+s.clen]
		// Deadline checkpoint: chunks dispatched after expiry would be
		// work nobody collects — fail them typed instead of running them.
		if ctxExpires && ctx.Err() != nil {
			results[i] <- compResult{err: deadlineErr(ctx)}
			continue
		}
		acquire()
		if s.engine {
			h, err := p.dev.CEngine().TrySubmit(dpu.Job{Algo: pl.engAlgo, Op: hwmodel.Compress, Input: data})
			if err == nil {
				go func() {
					res := h.Wait()
					var r compResult
					if res.Err == nil && res.VerifyOutput() {
						r = p.checkEngineChunk(spec, sampler, data, res.Output, res.Checksum)
					} else {
						r = p.produceSoft(0, spec, sampler, data)
						r.fellBack = true
						r.replayed = errors.Is(res.Err, dpu.ErrEngineLost)
					}
					if digest {
						r.srcCRC = checksum.CRC32(data)
					}
					post(i, r)
				}()
				continue
			}
			// Saturated or closed queue: spill to the SoC pool.
			slots[i].engine = false
		}
		p.jobs <- func(core int) {
			r := p.produceSoft(core, spec, sampler, data)
			if digest {
				r.srcCRC = checksum.CRC32(data)
			}
			post(i, r)
		}
	}

	sum := Summary{Makespan: pl.makespan, Busy: pl.busy, Chunks: k, ChunkSize: cs}
	var srcs []uint32
	if digest {
		srcs = make([]uint32, k)
	}
	var opErr error
	for _, idx := range order {
		r := <-results[idx]
		if digest {
			srcs[idx] = r.srcCRC
		}
		// Deadline checkpoint: once the caller's budget expires, stop
		// delivering and drain the remaining chunks so every pooled
		// buffer returns before the typed error surfaces.
		if opErr == nil && ctxExpires && ctx.Err() != nil {
			opErr = deadlineErr(ctx)
		}
		if opErr != nil {
			if r.buf != nil {
				p.pool.Put(r.buf)
			}
			continue
		}
		if r.err != nil {
			opErr = fmt.Errorf("pipeline: chunk %d: %w", idx, r.err)
			continue
		}
		s := slots[idx]
		done := s.done
		engine := s.engine
		if r.fellBack {
			// The engine accepted the job and failed; the software retry
			// serialises behind the scheduled completion.
			done += socCost(p.gen, spec, hwmodel.Compress, s.clen)
			engine = false
			if done > sum.Makespan {
				sum.Makespan = done
			}
			if r.replayed {
				sum.Replayed++
			}
		}
		if engine {
			sum.EngineChunks++
		}
		if r.mismatch {
			sum.VerifyMismatches++
		}
		if r.redo {
			sum.ScalarFallbacks++
		}
		if r.quarantined {
			sum.Quarantines++
		}
		sum.CompBytes += len(r.out)
		err := sink(Chunk{Index: idx, Offset: s.off, OrigLen: s.clen, Data: r.out, Engine: engine, CRC: r.crc, Done: done})
		if r.buf != nil {
			p.pool.Put(r.buf)
		}
		if err != nil {
			opErr = err
		}
	}
	if digest && opErr == nil {
		// Stitch the per-chunk source digests in index order: each
		// combine advances the running CRC past the next chunk's length,
		// so the fold equals one pass over the whole payload. All chunks
		// but the last share one length, so one precomputed zero-operator
		// serves the whole fold at ~32 XORs per chunk.
		zop := checksum.MakeCRC32Zeros(cs)
		sum.SrcCRC = srcs[0]
		for i := 1; i < k; i++ {
			if slots[i].clen == cs {
				sum.SrcCRC = zop.Combine(sum.SrcCRC, srcs[i])
			} else {
				sum.SrcCRC = checksum.CRC32Combine(sum.SrcCRC, srcs[i], slots[i].clen)
			}
		}
	}
	return sum, opErr
}

// softCompress compresses one chunk in software on the calling
// goroutine. For deflate and LZ4 the output lands in a pooled buffer
// (returned as buf for release after delivery); the zlib and SZ3 codecs
// allocate their own framing.
func (p *Pipeline) softCompress(spec Spec, data []byte) (out, buf []byte, err error) {
	level := spec.Level
	if level <= 0 {
		level = flate.DefaultLevel
	}
	switch spec.Algo {
	case AlgoDeflate:
		buf = p.pool.GetCap(flate.CompressBound(len(data)))
		out = flate.AppendCompress(buf, data, level)
		return out, buf, nil
	case AlgoZlib:
		return zlibfmt.Compress(data, level), nil, nil
	case AlgoLZ4:
		buf = p.pool.GetCap(lz4.CompressBound(len(data)))
		out = lz4.AppendCompress(buf, data)
		return out, buf, nil
	case AlgoSZ3F32:
		vals, cerr := bytesToF32(data)
		if cerr != nil {
			return nil, nil, cerr
		}
		out, err = sz3.CompressFloat32(vals, spec.SZ3)
		return out, nil, err
	case AlgoSZ3F64:
		vals, cerr := bytesToF64(data)
		if cerr != nil {
			return nil, nil, cerr
		}
		out, err = sz3.CompressFloat64(vals, spec.SZ3)
		return out, nil, err
	default:
		return nil, nil, fmt.Errorf("%w: algo %d", ErrBadSpec, spec.Algo)
	}
}

// produceSoft is the SoC chunk producer with the compute fault domain
// wired through: compress, give the SDC injector its shot (the fault
// model's stand-in for a misbehaving vector kernel on this core), then
// — when the sampler elects this chunk — decode-verify and fall back to
// the trusted scalar path on a mismatch. The chunk CRC is computed
// *after* injection: a corrupted chunk carries a checksum matching its
// corrupt bytes, which is exactly what makes the corruption silent to
// every downstream hop and leaves verification as the only detector.
func (p *Pipeline) produceSoft(core int, spec Spec, sampler *integrity.Sampler, data []byte) compResult {
	out, buf, err := p.softCompress(spec, data)
	if err != nil {
		return compResult{err: err}
	}
	if inj := spec.SDC; inj != nil {
		if d := inj.Next(core); d.Class != faults.None {
			inj.Apply(d, out)
		}
	}
	r := compResult{out: out, buf: buf}
	if sampler.Hit() && !p.verifyChunk(spec, data, out) {
		r.mismatch = true
		redo, rbuf, rerr := p.softCompressVerified(spec, data)
		if buf != nil {
			p.pool.Put(buf)
		}
		if rerr == nil && !p.verifyChunk(spec, data, redo) {
			rerr = &integrity.CorruptError{Hop: "pipeline.chunk", Segment: spec.Algo.String()}
		}
		if rerr != nil {
			return compResult{err: rerr, mismatch: true}
		}
		r.out, r.buf, r.redo = redo, rbuf, true
	}
	r.crc = checksum.CRC32(r.out)
	return r
}

// checkEngineChunk post-processes a successful engine chunk: the
// engine's completion checksum is the hop-carried CRC (taken over
// whatever bytes the engine produced — silently corrupt or not), and
// the sampler decides whether to decode-verify. Engine output is always
// verified while the engine is quarantined: those are the half-open
// probes that earn readmission. A mismatch feeds the integrity ledger
// and re-executes the chunk on the trusted scalar path.
func (p *Pipeline) checkEngineChunk(spec Spec, sampler *integrity.Sampler, data, out []byte, crc uint32) compResult {
	eng := p.dev.CEngine()
	if !sampler.Hit() && !eng.Quarantined() {
		return compResult{out: out, crc: crc}
	}
	if p.verifyChunk(spec, data, out) {
		eng.ReportVerified()
		return compResult{out: out, crc: crc}
	}
	r := compResult{mismatch: true, fellBack: true, quarantined: eng.ReportCorrupt()}
	redo, rbuf, rerr := p.softCompressVerified(spec, data)
	if rerr == nil && !p.verifyChunk(spec, data, redo) {
		rerr = &integrity.CorruptError{Hop: "pipeline.chunk", Segment: spec.Algo.String()}
	}
	if rerr != nil {
		r.err = rerr
		return r
	}
	r.out, r.buf, r.redo, r.crc = redo, rbuf, true, checksum.CRC32(redo)
	return r
}

// verifyChunk answers "does this compressed chunk faithfully encode
// data?": a pooled decode-and-compare for the lossless codecs, the
// scalar-reference differential referee for SZ3 (whose slab kernels are
// pinned byte-identical to the reference walk). The deflate path is
// allocation-free so VerifySampled keeps the chunk hot path at zero
// allocations per op.
func (p *Pipeline) verifyChunk(spec Spec, data, out []byte) bool {
	switch spec.Algo {
	case AlgoDeflate:
		buf := p.pool.GetCap(len(data))
		dec, err := flate.AppendDecompress(buf, out, len(data))
		ok := err == nil && bytes.Equal(dec, data)
		p.pool.Put(buf)
		return ok
	case AlgoZlib:
		dec, err := zlibfmt.DecompressLimit(out, len(data))
		return err == nil && bytes.Equal(dec, data)
	case AlgoLZ4:
		dec, err := lz4.DecompressLimit(out, len(data))
		return err == nil && bytes.Equal(dec, data)
	case AlgoSZ3F32:
		vals, err := bytesToF32(data)
		if err != nil {
			return false
		}
		ref, err := sz3.CompressFloat32Reference(vals, spec.SZ3)
		return err == nil && bytes.Equal(ref, out)
	case AlgoSZ3F64:
		vals, err := bytesToF64(data)
		if err != nil {
			return false
		}
		ref, err := sz3.CompressFloat64Reference(vals, spec.SZ3)
		return err == nil && bytes.Equal(ref, out)
	default:
		return false
	}
}

// softCompressVerified is the trusted scalar re-execution path: the
// token-refereed DEFLATE encoder (stored-block recovery) for the
// deflate-based codecs, the scalar reference walk for SZ3, a plain
// recompression for LZ4 (re-verified by the caller).
func (p *Pipeline) softCompressVerified(spec Spec, data []byte) (out, buf []byte, err error) {
	level := spec.Level
	if level <= 0 {
		level = flate.DefaultLevel
	}
	switch spec.Algo {
	case AlgoDeflate:
		buf = p.pool.GetCap(flate.CompressBound(len(data)))
		out, _ = flate.AppendCompressVerified(buf, data, level)
		return out, buf, nil
	case AlgoZlib:
		body, _ := flate.AppendCompressVerified(nil, data, level)
		return zlibfmt.Assemble(level, body, data), nil, nil
	case AlgoLZ4:
		buf = p.pool.GetCap(lz4.CompressBound(len(data)))
		out = lz4.AppendCompress(buf, data)
		return out, buf, nil
	case AlgoSZ3F32:
		vals, cerr := bytesToF32(data)
		if cerr != nil {
			return nil, nil, cerr
		}
		out, err = sz3.CompressFloat32Reference(vals, spec.SZ3)
		return out, nil, err
	case AlgoSZ3F64:
		vals, cerr := bytesToF64(data)
		if cerr != nil {
			return nil, nil, cerr
		}
		out, err = sz3.CompressFloat64Reference(vals, spec.SZ3)
		return out, nil, err
	default:
		return nil, nil, fmt.Errorf("%w: algo %d", ErrBadSpec, spec.Algo)
	}
}
