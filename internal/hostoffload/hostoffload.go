// Package hostoffload models the alternative deployment the paper's §VI
// recommends evaluating: "MPI on the host while offloading data
// compression to the DPU. It is crucial to assess the overhead
// associated with data movement between the host and DPU ... evaluating
// computation and communication overlaps, along with pipeline designs,
// can help alleviate potential performance bottlenecks."
//
// Four scenarios are modelled end-to-end for one outgoing message
// (compress + move to the NIC + wire time of the compressed bytes):
//
//	OnHost          compress on a host x86 core, send from the host NIC path
//	OffloadBounce   host → DPU (PCIe) → compress → back to host → NIC
//	OffloadDirect   host → DPU (PCIe) → compress → NIC directly from the DPU
//	OffloadPipelined chunked OffloadDirect with PCIe transfer overlapped
//	                against compression (the §VI pipeline design)
//
// Compression is executed for real (the compressed sizes and wire times
// are honest); durations come from the calibrated cost model.
package hostoffload

import (
	"errors"
	"fmt"
	"time"

	"pedal/internal/dpu"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
)

// Scenario selects a deployment.
type Scenario uint8

// The four deployment scenarios.
const (
	OnHost Scenario = iota + 1
	OffloadBounce
	OffloadDirect
	OffloadPipelined
)

func (s Scenario) String() string {
	switch s {
	case OnHost:
		return "on-host"
	case OffloadBounce:
		return "offload-bounce"
	case OffloadDirect:
		return "offload-direct"
	case OffloadPipelined:
		return "offload-pipelined"
	default:
		return fmt.Sprintf("Scenario(%d)", uint8(s))
	}
}

// Scenarios lists all deployments in presentation order.
func Scenarios() []Scenario {
	return []Scenario{OnHost, OffloadBounce, OffloadDirect, OffloadPipelined}
}

// Result is one end-to-end scenario execution.
type Result struct {
	Scenario Scenario
	InBytes  int
	OutBytes int
	// Compress is the modelled compression time (wherever it ran).
	Compress time.Duration
	// Movement is the modelled host↔DPU PCIe time (zero for OnHost).
	Movement time.Duration
	// Wire is the network time of the compressed message.
	Wire time.Duration
	// Total is the modelled end-to-end makespan. For the pipelined
	// scenario Total < Compress + Movement + Wire because stages overlap.
	Total time.Duration
}

// pipelineChunk is the chunk size of the pipelined scenario.
const pipelineChunk = 4 << 20

// Run executes one scenario for data on a device. Compression uses
// DEFLATE: the C-Engine when the generation supports it, the DPU SoC
// otherwise (capability fallback as everywhere in PEDAL).
func Run(dev *dpu.Device, s Scenario, data []byte) (Result, error) {
	if dev == nil {
		return Result{}, errors.New("hostoffload: nil device")
	}
	gen := dev.Generation()
	r := Result{Scenario: s, InBytes: len(data)}

	dpuCompress := func(chunk []byte) ([]byte, time.Duration, error) {
		if dev.SupportsCEngine(hwmodel.Deflate, hwmodel.Compress) {
			res := dev.CEngine().Run(dpu.Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: chunk})
			if res.Err != nil {
				return nil, 0, res.Err
			}
			return res.Output, res.Virtual, nil
		}
		out := flate.Compress(chunk, flate.DefaultLevel)
		d, _ := hwmodel.OpCost(gen, hwmodel.SoC, hwmodel.Deflate, hwmodel.Compress, len(chunk))
		return out, d, nil
	}

	switch s {
	case OnHost:
		out := flate.Compress(data, flate.DefaultLevel)
		d, ok := hwmodel.HostOpCost(hwmodel.Deflate, hwmodel.Compress, len(data))
		if !ok {
			return r, errors.New("hostoffload: no host cost entry")
		}
		r.OutBytes = len(out)
		r.Compress = d
		r.Wire = hwmodel.WireLatency(gen, len(out))
		r.Total = r.Compress + r.Wire
		return r, nil

	case OffloadBounce, OffloadDirect:
		out, d, err := dpuCompress(data)
		if err != nil {
			return r, err
		}
		r.OutBytes = len(out)
		r.Compress = d
		r.Movement = hwmodel.PCIeCost(gen, len(data))
		if s == OffloadBounce {
			// The compressed result returns to the host before the send.
			r.Movement += hwmodel.PCIeCost(gen, len(out))
		}
		r.Wire = hwmodel.WireLatency(gen, len(out))
		r.Total = r.Movement + r.Compress + r.Wire
		return r, nil

	case OffloadPipelined:
		// Chunked pipeline: while chunk i compresses on the DPU, chunk
		// i+1 crosses PCIe; the wire send of chunk i overlaps both. The
		// makespan follows the classic pipeline bound:
		// fill latency + max-stage-time × (chunks-1) … computed exactly
		// below by simulating stage completion times.
		var pcieDone, compDone, wireDone time.Duration
		outTotal := 0
		for off := 0; off < len(data); off += pipelineChunk {
			end := off + pipelineChunk
			if end > len(data) {
				end = len(data)
			}
			chunk := data[off:end]
			out, d, err := dpuCompress(chunk)
			if err != nil {
				return r, err
			}
			outTotal += len(out)
			pcie := hwmodel.PCIeCost(gen, len(chunk))
			wire := hwmodel.WireLatency(gen, len(out))
			pcieDone += pcie // PCIe stage is serial on the link
			startComp := maxDur(pcieDone, compDone)
			compDone = startComp + d
			startWire := maxDur(compDone, wireDone)
			wireDone = startWire + wire
			r.Compress += d
			r.Movement += pcie
			r.Wire += wire
		}
		if len(data) == 0 {
			wireDone = 0
		}
		r.OutBytes = outTotal
		r.Total = wireDone
		return r, nil

	default:
		return r, fmt.Errorf("hostoffload: unknown scenario %v", s)
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
