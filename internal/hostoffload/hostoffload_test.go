package hostoffload

import (
	"bytes"
	"testing"

	"pedal/internal/dpu"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
)

func payload(n int) []byte {
	unit := []byte("host-offload deployment scenario payload line 0042\n")
	return bytes.Repeat(unit, n/len(unit)+1)[:n]
}

func bf2(t *testing.T) *dpu.Device {
	t.Helper()
	d, err := dpu.NewDevice(hwmodel.BlueField2, dpu.SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestAllScenariosProduceValidOutput(t *testing.T) {
	dev := bf2(t)
	data := payload(8 << 20)
	for _, s := range Scenarios() {
		r, err := Run(dev, s, data)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r.InBytes != len(data) || r.OutBytes <= 0 || r.OutBytes >= len(data) {
			t.Fatalf("%v: sizes in=%d out=%d", s, r.InBytes, r.OutBytes)
		}
		if r.Total <= 0 {
			t.Fatalf("%v: zero total", s)
		}
	}
}

func TestOffloadBeatsHostOnBF2(t *testing.T) {
	// The whole point of the §VI proposal: the C-Engine out-compresses a
	// host core by enough to pay for the PCIe crossing.
	dev := bf2(t)
	data := payload(16 << 20)
	host, err := Run(dev, OnHost, data)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(dev, OffloadDirect, data)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(host.Total) / float64(direct.Total)
	t.Logf("offload-direct vs on-host: %.1fx", speedup)
	if speedup < 5 {
		t.Fatalf("offload speedup %.1f too small on BF2", speedup)
	}
}

func TestDirectBeatsBounce(t *testing.T) {
	// Sending straight from the DPU avoids the return PCIe crossing.
	dev := bf2(t)
	data := payload(16 << 20)
	bounce, err := Run(dev, OffloadBounce, data)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(dev, OffloadDirect, data)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Total >= bounce.Total {
		t.Fatalf("direct (%v) not faster than bounce (%v)", direct.Total, bounce.Total)
	}
	if bounce.Movement <= direct.Movement {
		t.Fatalf("bounce movement (%v) should exceed direct (%v)", bounce.Movement, direct.Movement)
	}
}

func TestPipelineOverlapProperty(t *testing.T) {
	// The defining property of a pipeline: makespan below the sum of its
	// stage times (stages overlap). Holds on both generations.
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		dev, err := dpu.NewDevice(gen, dpu.SeparatedHost)
		if err != nil {
			t.Fatal(err)
		}
		data := payload(32 << 20)
		pipe, err := Run(dev, OffloadPipelined, data)
		if err != nil {
			t.Fatal(err)
		}
		if pipe.Total >= pipe.Compress+pipe.Movement+pipe.Wire {
			t.Errorf("%v: pipeline did not overlap: total %v vs stage sum %v",
				gen, pipe.Total, pipe.Compress+pipe.Movement+pipe.Wire)
		}
		dev.Close()
	}
}

func TestPipelineTradeOffByGeneration(t *testing.T) {
	// A finding the cost model exposes (and EXPERIMENTS.md records): on
	// BlueField-2 the C-Engine's per-job fixed latency makes chunked
	// pipelining *slower* than one big sequential job, while on
	// BlueField-3 (SoC compression, no per-job cost) the overlap wins.
	data := payload(32 << 20)

	bf2dev := bf2(t)
	seq2, err := Run(bf2dev, OffloadDirect, data)
	if err != nil {
		t.Fatal(err)
	}
	pipe2, err := Run(bf2dev, OffloadPipelined, data)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BF2: sequential %v, pipelined %v", seq2.Total, pipe2.Total)
	if pipe2.Total <= seq2.Total {
		t.Errorf("BF2: expected per-job fixed costs to make pipelining slower (%v vs %v)",
			pipe2.Total, seq2.Total)
	}

	bf3dev, err := dpu.NewDevice(hwmodel.BlueField3, dpu.SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	defer bf3dev.Close()
	seq3, err := Run(bf3dev, OffloadDirect, data)
	if err != nil {
		t.Fatal(err)
	}
	pipe3, err := Run(bf3dev, OffloadPipelined, data)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BF3: sequential %v, pipelined %v", seq3.Total, pipe3.Total)
	if pipe3.Total > seq3.Total {
		t.Errorf("BF3: pipelining should win without per-job costs (%v vs %v)",
			pipe3.Total, seq3.Total)
	}
}

func TestBF3FallsBackToSoC(t *testing.T) {
	dev, err := dpu.NewDevice(hwmodel.BlueField3, dpu.SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	data := payload(4 << 20)
	r, err := Run(dev, OffloadDirect, data)
	if err != nil {
		t.Fatal(err)
	}
	// BF3 cannot compress on the C-Engine: the offloaded compression runs
	// on the (slow) SoC, so on-host wins there — the asymmetry the paper's
	// §VI asks deployments to weigh.
	host, err := Run(dev, OnHost, data)
	if err != nil {
		t.Fatal(err)
	}
	if host.Total >= r.Total {
		t.Fatalf("BF3: on-host (%v) should beat SoC offload (%v)", host.Total, r.Total)
	}
}

func TestCompressedBytesDecode(t *testing.T) {
	// Scenario runs produce real DEFLATE streams; verify decodability by
	// recompressing equivalently.
	dev := bf2(t)
	data := payload(2 << 20)
	res := dev.CEngine().Run(dpu.Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: data})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	got, err := flate.Decompress(res.Output)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("engine output not decodable: %v", err)
	}
}

func TestNilDeviceRejected(t *testing.T) {
	if _, err := Run(nil, OnHost, []byte("x")); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestUnknownScenarioRejected(t *testing.T) {
	dev := bf2(t)
	if _, err := Run(dev, Scenario(99), []byte("x")); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
