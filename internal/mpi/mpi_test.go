package mpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

func textPayload(n int) []byte {
	unit := []byte("<msg seq=\"9\"><body>on-the-fly compression over mpi</body></msg>\n")
	return bytes.Repeat(unit, n/len(unit)+1)[:n]
}

func closeWorld(comms []*Comm) {
	for _, c := range comms {
		c.Close()
	}
}

// run spawns one goroutine per rank and waits; any rank error fails the
// test.
func run(t *testing.T, comms []*Comm, body func(c *Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(comms))
	for _, c := range comms {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			if err := body(c); err != nil {
				errs <- fmt.Errorf("rank %d: %w", c.Rank(), err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEagerSendRecv(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	want := []byte("small eager message")
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 42, want)
		}
		got, err := c.Recv(0, 42, 1024)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return errors.New("payload mismatch")
		}
		return nil
	})
}

func TestRendezvousSendRecv(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	want := textPayload(1 << 20) // > threshold → RNDV
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, want)
		}
		got, err := c.Recv(0, 7, len(want)+64)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return errors.New("rendezvous payload mismatch")
		}
		return nil
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("first-tag-1")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("second-tag-2"))
		}
		// Receive in reverse tag order: tag 2 first.
		got2, err := c.Recv(0, 2, 256)
		if err != nil {
			return err
		}
		got1, err := c.Recv(0, 1, 256)
		if err != nil {
			return err
		}
		if string(got2) != "second-tag-2" || string(got1) != "first-tag-1" {
			return fmt.Errorf("matching wrong: %q %q", got2, got1)
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	comms, err := NewWorld(3, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			seen := 0
			for i := 0; i < 2; i++ {
				got, err := c.Recv(AnySource, AnyTag, 256)
				if err != nil {
					return err
				}
				if len(got) > 0 {
					seen++
				}
			}
			if seen != 2 {
				return errors.New("missing wildcard messages")
			}
			return nil
		default:
			return c.Send(0, 10+c.Rank(), []byte{byte(c.Rank())})
		}
	})
}

func TestTruncationError(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 4096))
		}
		_, err := c.Recv(0, 0, 128)
		if !errors.Is(err, ErrTruncate) {
			return fmt.Errorf("want ErrTruncate, got %v", err)
		}
		return nil
	})
}

func TestCompressedPointToPoint(t *testing.T) {
	for _, d := range []core.Design{
		{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine},
		{Algo: core.AlgoZlib, Engine: hwmodel.CEngine},
		{Algo: core.AlgoLZ4, Engine: hwmodel.SoC},
	} {
		comms, err := NewWorld(2, WorldOptions{
			Compression: &CompressionConfig{Design: d},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := textPayload(2 << 20)
		run(t, comms, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 3, want)
			}
			got, err := c.Recv(0, 3, len(want)+64)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("%v: payload mismatch", d)
			}
			return nil
		})
		closeWorld(comms)
	}
}

func TestLossyPointToPoint(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{
		Compression: &CompressionConfig{
			Design:   core.Design{Algo: core.AlgoSZ3, Engine: hwmodel.SoC},
			DataType: core.TypeFloat64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	vals := make([]float64, 1<<17)
	for i := range vals {
		vals[i] = math.Sin(float64(i) * 0.001)
	}
	want := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(want[i*8:], math.Float64bits(v))
	}
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, want)
		}
		got, err := c.Recv(0, 5, len(want)+64)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return fmt.Errorf("length %d != %d", len(got), len(want))
		}
		for i := range vals {
			g := math.Float64frombits(binary.LittleEndian.Uint64(got[i*8:]))
			if math.Abs(g-vals[i]) > 1e-4*(1+1e-9) {
				return fmt.Errorf("element %d error %g", i, math.Abs(g-vals[i]))
			}
		}
		return nil
	})
}

func TestSmallMessagesSkipCompression(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{
		Compression: &CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			// Below the rendezvous threshold: must go eager, uncompressed
			// (paper §IV: PEDAL operates on RNDV only).
			return c.Send(1, 1, textPayload(1024))
		}
		got, err := c.Recv(0, 1, 4096)
		if err != nil {
			return err
		}
		if len(got) != 1024 {
			return fmt.Errorf("got %d bytes", len(got))
		}
		return nil
	})
	// The sender's phase breakdown must show no compression activity.
	if comms[0].Breakdown().Get("compression") != 0 {
		t.Fatal("eager message was compressed")
	}
}

func TestBcastAllSizes(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8} {
		comms, err := NewWorld(n, WorldOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := textPayload(300000)
		run(t, comms, func(c *Comm) error {
			var in []byte
			if c.Rank() == 2%n {
				in = want
			}
			got, err := c.Bcast(2%n, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("rank %d bcast mismatch", c.Rank())
			}
			return nil
		})
		closeWorld(comms)
	}
}

func TestBcastCompressed(t *testing.T) {
	comms, err := NewWorld(4, WorldOptions{
		Compression: &CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	want := textPayload(5 << 20)
	run(t, comms, func(c *Comm) error {
		var in []byte
		if c.Rank() == 0 {
			in = want
		}
		got, err := c.Bcast(0, in)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return errors.New("compressed bcast mismatch")
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	comms, err := NewWorld(5, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		for i := 0; i < 3; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	comms, err := NewWorld(4, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	var got [][]byte
	var mu sync.Mutex
	run(t, comms, func(c *Comm) error {
		data := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
		res, err := c.Gather(0, data)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			got = res
			mu.Unlock()
		}
		return nil
	})
	if len(got) != 4 {
		t.Fatalf("gather result size %d", len(got))
	}
	for r, d := range got {
		if len(d) != 2 || d[0] != byte(r) || d[1] != byte(r*2) {
			t.Fatalf("rank %d data %v", r, d)
		}
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{
		Compression: &CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	payload := textPayload(5 << 20)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, payload)
		}
		_, err := c.Recv(0, 0, len(payload)+64)
		return err
	})
	recvClock := comms[1].Clock().Now()
	if recvClock <= 0 {
		t.Fatal("receiver clock did not advance")
	}
	// The receiver's completion must include compression + wire +
	// decompression, i.e., at least the wire time of the compressed data.
	if recvClock < hwmodel.WireLatency(hwmodel.BlueField2, 1<<20) {
		t.Fatalf("receiver clock %v implausibly small", recvClock)
	}
}

func TestCEngineDesignBeatsSoCDesign(t *testing.T) {
	// Fig. 10's central comparison on BF2: the C-Engine DEFLATE design
	// must have far lower communication latency than the SoC DEFLATE
	// design (the paper never compares against uncompressed transfers —
	// all six designs A-F compress).
	payload := textPayload(20 << 20)
	latency := func(engine hwmodel.Engine) time.Duration {
		comms, err := NewWorld(2, WorldOptions{
			Compression: &CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: engine}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer closeWorld(comms)
		run(t, comms, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, payload)
			}
			_, err := c.Recv(0, 0, len(payload)+64)
			return err
		})
		return comms[1].Clock().Now()
	}
	soc := latency(hwmodel.SoC)
	ce := latency(hwmodel.CEngine)
	if ratio := float64(soc) / float64(ce); ratio < 10 {
		t.Fatalf("C-Engine design speedup over SoC design = %.1f, want large", ratio)
	}
}

func TestBaselineWorldSlower(t *testing.T) {
	payload := textPayload(5 << 20)
	latency := func(baseline bool) time.Duration {
		comms, err := NewWorld(2, WorldOptions{
			Baseline:    baseline,
			Compression: &CompressionConfig{Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer closeWorld(comms)
		run(t, comms, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, payload)
			}
			_, err := c.Recv(0, 0, len(payload)+64)
			return err
		})
		return comms[1].Clock().Now()
	}
	base := latency(true)
	pedal := latency(false)
	speedup := float64(base) / float64(pedal)
	if speedup < 3 {
		t.Fatalf("PEDAL speedup over baseline = %.2f, want substantial (paper: up to 88x)", speedup)
	}
}

func TestTCPWorld(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	want := textPayload(1 << 20)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, want)
		}
		got, err := c.Recv(0, 0, len(want)+64)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return errors.New("tcp payload mismatch")
		}
		return nil
	})
}

func TestClosedCommRejects(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comms[0].Close()
	if err := comms[0].Send(1, 0, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := comms[0].Recv(1, 0, 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	comms[1].Close()
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, WorldOptions{}); err == nil {
		t.Fatal("zero-size world accepted")
	}
}

func TestPingPongManyIterations(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{
		Compression: &CompressionConfig{Design: core.Design{Algo: core.AlgoLZ4, Engine: hwmodel.SoC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	payload := textPayload(256 << 10)
	const iters = 20
	run(t, comms, func(c *Comm) error {
		for i := 0; i < iters; i++ {
			if c.Rank() == 0 {
				if err := c.Send(1, i, payload); err != nil {
					return err
				}
				if _, err := c.Recv(1, i, len(payload)+64); err != nil {
					return err
				}
			} else {
				got, err := c.Recv(0, i, len(payload)+64)
				if err != nil {
					return err
				}
				if err := c.Send(0, i, got); err != nil {
					return err
				}
			}
		}
		return nil
	})
}
