package mpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

func TestIsendIrecvEager(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	want := []byte("nonblocking eager")
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 9, want)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		req, err := c.Irecv(0, 9, 1024)
		if err != nil {
			return err
		}
		got, err := req.Wait()
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return errors.New("mismatch")
		}
		return nil
	})
}

func TestIsendIrecvRendezvous(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	want := textPayload(1 << 20)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 0, want)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		req, err := c.Irecv(0, 0, len(want)+64)
		if err != nil {
			return err
		}
		got, err := req.Wait()
		if err != nil || !bytes.Equal(got, want) {
			return fmt.Errorf("rendezvous irecv: %v", err)
		}
		return nil
	})
}

func TestOverlappingIsends(t *testing.T) {
	// Multiple in-flight sends to the same peer must complete correctly
	// (distinct rendezvous sequence numbers).
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	const nMsgs = 4
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < nMsgs; i++ {
				payload := bytes.Repeat([]byte{byte('A' + i)}, 256<<10)
				req, err := c.Isend(1, i, payload)
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
			return Waitall(reqs...)
		}
		for i := 0; i < nMsgs; i++ {
			got, err := c.Recv(0, i, 1<<20)
			if err != nil {
				return err
			}
			if len(got) != 256<<10 || got[0] != byte('A'+i) {
				return fmt.Errorf("message %d wrong: len %d first %c", i, len(got), got[0])
			}
		}
		return nil
	})
}

func TestTestPolling(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	want := []byte("poll me")
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(50 * time.Millisecond)
			return c.Send(1, 0, want)
		}
		req, err := c.Irecv(0, 0, 1024)
		if err != nil {
			return err
		}
		// Early Test must report not-done without blocking.
		if _, done, _ := req.Test(); done {
			return errors.New("Test reported done before the send")
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			got, done, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				if !bytes.Equal(got, want) {
					return errors.New("mismatch")
				}
				return nil
			}
			if time.Now().After(deadline) {
				return errors.New("poll timeout")
			}
			time.Sleep(time.Millisecond)
		}
	})
}

func TestSendrecvShiftExchange(t *testing.T) {
	// Ring shift: every rank sends to (rank+1) and receives from
	// (rank-1) simultaneously — deadlocks without Sendrecv.
	const n = 4
	comms, err := NewWorld(n, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		dst := (c.Rank() + 1) % n
		src := (c.Rank() - 1 + n) % n
		payload := bytes.Repeat([]byte{byte(c.Rank())}, 128<<10)
		got, err := c.Sendrecv(dst, 0, payload, src, 0, 1<<20)
		if err != nil {
			return err
		}
		if len(got) != 128<<10 || got[0] != byte(src) {
			return fmt.Errorf("rank %d got wrong shift data", c.Rank())
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	const n = 5
	comms, err := NewWorld(n, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	const elems = 1000
	run(t, comms, func(c *Comm) error {
		vals := make([]byte, elems*8)
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(vals[i*8:], math.Float64bits(float64(c.Rank()+1)))
		}
		res, err := c.Reduce(0, SumFloat64, vals)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			want := float64(n * (n + 1) / 2) // 1+2+...+n
			for i := 0; i < elems; i++ {
				got := math.Float64frombits(binary.LittleEndian.Uint64(res[i*8:]))
				if got != want {
					return fmt.Errorf("element %d = %v, want %v", i, got, want)
				}
			}
		} else if res != nil {
			return errors.New("non-root got a reduce result")
		}
		return nil
	})
}

func TestAllreduceMax(t *testing.T) {
	const n = 4
	comms, err := NewWorld(n, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c.Rank()*10)))
		res, err := c.Allreduce(MaxFloat64, buf)
		if err != nil {
			return err
		}
		got := math.Float64frombits(binary.LittleEndian.Uint64(res))
		if got != float64((n-1)*10) {
			return fmt.Errorf("rank %d allreduce max = %v", c.Rank(), got)
		}
		return nil
	})
}

func TestReduceBXOR(t *testing.T) {
	comms, err := NewWorld(3, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		buf := []byte{byte(c.Rank()), 0xFF}
		res, err := c.Reduce(0, BXOR, buf)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if res[0] != 0^1^2 || res[1] != 0xFF {
				return fmt.Errorf("bxor result %v", res)
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	const n = 4
	comms, err := NewWorld(n, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		var in []byte
		if c.Rank() == 1 {
			in = make([]byte, n*100)
			for i := range in {
				in[i] = byte(i / 100)
			}
		}
		got, err := c.Scatter(1, in)
		if err != nil {
			return err
		}
		if len(got) != 100 || got[0] != byte(c.Rank()) {
			return fmt.Errorf("rank %d scatter chunk wrong", c.Rank())
		}
		return nil
	})
}

func TestScatterIndivisible(t *testing.T) {
	comms, err := NewWorld(3, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		var in []byte
		if c.Rank() == 0 {
			in = make([]byte, 100) // not divisible by 3
			if _, err := c.Scatter(0, in); err == nil {
				return errors.New("indivisible scatter accepted")
			}
			// Unblock peers: send them their (empty) error markers.
			for r := 1; r < 3; r++ {
				if err := c.Send(r, tagScatter, nil); err != nil {
					return err
				}
			}
			return nil
		}
		_, err := c.Recv(0, tagScatter, 10)
		return err
	})
}

func TestAllgather(t *testing.T) {
	const n = 4
	comms, err := NewWorld(n, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		contribution := bytes.Repeat([]byte{byte(c.Rank() + 1)}, 50)
		all, err := c.Allgather(contribution)
		if err != nil {
			return err
		}
		if len(all) != n*50 {
			return fmt.Errorf("rank %d: %d bytes", c.Rank(), len(all))
		}
		for r := 0; r < n; r++ {
			if all[r*50] != byte(r+1) {
				return fmt.Errorf("rank %d: segment %d wrong", c.Rank(), r)
			}
		}
		return nil
	})
}

func TestCompressedAllreduce(t *testing.T) {
	// Large compressed reductions through the full PEDAL path.
	const n = 4
	comms, err := NewWorld(n, WorldOptions{
		Compression: &CompressionConfig{Design: core.Design{Algo: core.AlgoLZ4, Engine: hwmodel.SoC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	const elems = 64 << 10
	run(t, comms, func(c *Comm) error {
		vals := make([]byte, elems*8)
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(vals[i*8:], math.Float64bits(1.0))
		}
		res, err := c.Allreduce(SumFloat64, vals)
		if err != nil {
			return err
		}
		got := math.Float64frombits(binary.LittleEndian.Uint64(res))
		if got != float64(n) {
			return fmt.Errorf("sum = %v, want %v", got, float64(n))
		}
		return nil
	})
}

func TestProbe(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 42, []byte("probe target"))
		}
		// Poll until the message is visible.
		deadline := time.Now().Add(5 * time.Second)
		for {
			src, tag, size, ok, err := c.Probe(0, 42)
			if err != nil {
				return err
			}
			if ok {
				if src != 0 || tag != 42 || size != len("probe target") {
					return fmt.Errorf("probe = src %d tag %d size %d", src, tag, size)
				}
				break
			}
			if time.Now().After(deadline) {
				return errors.New("probe timeout")
			}
			time.Sleep(time.Millisecond)
		}
		// Probing must not consume: the receive still works.
		got, err := c.Recv(0, 42, 64)
		if err != nil || string(got) != "probe target" {
			return fmt.Errorf("recv after probe: %v", err)
		}
		// Nothing left afterwards.
		if _, _, _, ok, _ := c.Probe(0, AnyTag); ok {
			return errors.New("probe found a consumed message")
		}
		return nil
	})
}
