package mpi

import (
	"errors"
	"fmt"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/core"
	"pedal/internal/integrity"
	"pedal/internal/pipeline"
	"pedal/internal/stats"
)

// Streamed-frame rendezvous: instead of compressing the whole payload and
// shipping one DATA frame, the sender splits it into chunks, fans the
// chunk compressions across the SoC workers and the C-Engine, and puts
// each compressed chunk on the wire the moment it completes. Transmission
// of chunk i overlaps compression of chunk i+1, and on the far side
// decompression of chunk i overlaps reception of chunk i+1 — the
// compression/communication pipelining the paper's DPU offload targets.
//
// Wire layout: the RTS carries the pipeline descriptor as its payload (a
// plain RTS has an empty payload, so the descriptor doubles as the
// protocol signal), origLen holds the total uncompressed size, and the
// chunks follow as kindChunk frames whose payloads are self-describing
// pipeline chunk frames (index | origLen | body). Frames are matched by
// (src, seq) like DATA, so concurrent pipelined streams cannot mix.

// sendPipelined runs the sender half of the streamed-frame rendezvous.
// Chunk departures follow the virtual completion schedule, serialised by
// the link: a frame cannot depart while the previous one still occupies
// the wire.
func (c *Comm) sendPipelined(dst, tag int, dt core.DataType, cc *CompressionConfig, data []byte) error {
	lib := c.pedal
	spec, err := lib.PipelineSpec(cc.Design, dt)
	if err != nil {
		return fmt.Errorf("mpi: pedal pipeline: %w", err)
	}
	// Pin the chunk size so descriptor and execution agree.
	spec.ChunkSize = lib.Pipeline().ChunkSizeFor(len(data), spec)
	count := (len(data) + spec.ChunkSize - 1) / spec.ChunkSize
	// Hop-carried end-to-end digest under VerifyFull: computed once
	// here, checked by the receiver's Wait against the reassembled
	// payload. The zero sentinel below Full keeps the fast path and the
	// Sampled screening tier unchanged (per-chunk frame CRCs still guard
	// every hop). Unlike the local CompressPipelined path — which lets
	// the workers digest their own chunks and patches the combined CRC
	// over the descriptor afterwards — the streamed protocol puts the
	// descriptor on the wire before any chunk compresses (it doubles as
	// the RTS signal), so the sender pays one up-front pass through the
	// slicing-by-8 kernel.
	var srcCRC uint32
	if spec.Verify == integrity.VerifyFull {
		srcCRC = checksum.CRC32(data)
	}
	desc := pipeline.AppendDescriptor(nil, spec.Algo, count, spec.ChunkSize, len(data), srcCRC)

	seq := c.nextSeq()
	if err := c.sendFrame(dst, kindRTS, tag, seq, len(data), desc); err != nil {
		return err
	}
	cts, err := c.waitFor(dst, AnyTag, kindCTS, seq)
	if err != nil {
		return err
	}
	c.clock.AdvanceTo(durationOf(cts.departure) + c.wire(envHeaderLen))

	t0 := c.clock.Now()
	wireFixed := c.wire(0)
	var (
		prevDepart time.Duration
		occupancy  time.Duration
		first      = true
		frame      []byte
		sendErr    error
	)
	sum, err := lib.Pipeline().Compress(data, spec, func(ch pipeline.Chunk) error {
		frame = pipeline.AppendChunkFrame(frame[:0], ch.Index, ch.OrigLen, ch.CRC, ch.Data)
		// Departure: when the chunk's compression completes on the virtual
		// schedule, but no earlier than the link finishing the previous
		// frame (NIC serialisation: occupancy is the bandwidth term of the
		// wire model, the propagation base overlaps).
		depart := t0 + ch.Done
		if !first && depart < prevDepart+occupancy {
			depart = prevDepart + occupancy
		}
		c.clock.AdvanceTo(depart)
		if err := c.sendFrame(dst, kindChunk, tag, seq, ch.OrigLen, frame); err != nil {
			sendErr = err
			return err
		}
		prevDepart = depart
		occupancy = c.wire(envHeaderLen+len(frame)) - wireFixed
		first = false
		return nil
	})
	if err != nil {
		if sendErr != nil {
			return sendErr
		}
		return fmt.Errorf("mpi: pedal pipeline compress: %w", err)
	}
	// The send completes when the last stage of the pipeline drains.
	c.clock.AdvanceTo(t0 + sum.Makespan)
	c.bd.Add(stats.PhaseCompress, sum.Makespan)
	return nil
}

// recvPipelined runs the receiver half: grant the CTS, then feed each
// arriving chunk frame to the decompression session at its virtual
// arrival time. Decoding overlaps reception; the final clock position is
// the pipeline makespan, not the sum of chunk decode times.
func (c *Comm) recvPipelined(env envelope, dt core.DataType, maxLen int) ([]byte, error) {
	_ = dt // the descriptor names the codec; datatype is implied
	if c.pedal == nil {
		return nil, fmt.Errorf("%w: pipelined RTS without PEDAL configured", ErrMismatch)
	}
	engine := core.Design{}.Engine
	if cc := c.opts.Compression; cc != nil {
		engine = cc.Design.Engine
	}
	recv, err := c.pedal.NewPipelinedRecv(engine, env.payload, maxLen)
	if err != nil {
		return nil, fmt.Errorf("mpi: pedal pipelined recv: %w", err)
	}
	if err := c.sendFrame(env.src, kindCTS, env.tag, env.seq, 0, nil); err != nil {
		recv.Abort()
		return nil, err
	}
	t0 := c.clock.Now()
	for i := 0; i < recv.Count; i++ {
		f, err := c.waitFor(env.src, AnyTag, kindChunk, env.seq)
		if err != nil {
			// Sender died (or the wait was revoked) mid-stream: drain the
			// chunks already decoding and drop the half-built session so
			// the interrupted transfer leaks no goroutine or buffer.
			recv.Abort()
			return nil, err
		}
		c.clock.AdvanceTo(durationOf(f.departure) + c.wire(envHeaderLen+len(f.payload)))
		if err := recv.Submit(f.payload, c.clock.Now()-t0); err != nil {
			if errors.Is(err, integrity.ErrCorrupt) {
				c.bd.Inc(stats.CounterHopsRejected)
			}
			recv.Abort()
			return nil, fmt.Errorf("mpi: pedal pipelined recv: %w", err)
		}
	}
	out, sum, err := recv.Wait()
	if err != nil {
		if errors.Is(err, integrity.ErrCorrupt) {
			c.bd.Inc(stats.CounterHopsRejected)
		}
		return nil, fmt.Errorf("mpi: pedal pipelined recv: %w", err)
	}
	c.clock.AdvanceTo(t0 + sum.Makespan)
	c.bd.Add(stats.PhaseDecompress, sum.Busy)
	return out, nil
}
