package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

// fastDetector keeps detection latency in the few-millisecond range so
// the fault tests run in well under a second.
func fastDetector() *DetectorConfig {
	return &DetectorConfig{
		Interval:      time.Millisecond,
		SuspectAfter:  10 * time.Millisecond,
		ShrinkTimeout: 3 * time.Second,
	}
}

func ftWorld(t *testing.T, n int, opts WorldOptions) []*Comm {
	t.Helper()
	if opts.Detector == nil {
		opts.Detector = fastDetector()
	}
	comms, err := NewWorld(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	return comms
}

// TestRankCrashBcastShrinkRerun is the core ULFM loop: a rank dies, the
// survivors' broadcasts fail with ErrRankFailed instead of hanging,
// every survivor shrinks to a dense 3-rank world, and the re-run
// broadcast delivers correct data under the new epoch.
func TestRankCrashBcastShrinkRerun(t *testing.T) {
	comms := ftWorld(t, 4, WorldOptions{})
	defer closeWorld(comms)
	payload := textPayload(4 << 10)
	const victim = 2
	run(t, comms, func(c *Comm) error {
		if c.Rank() == victim {
			c.Kill()
			return nil
		}
		// Round until the failure surfaces. Pace the loop: a root whose
		// sends are all eager can spin many successful rounds before
		// detection, and each round parks frames in the dead rank's inbox.
		var opErr error
		for i := 0; i < 1000; i++ {
			if _, opErr = c.Bcast(0, payload); opErr != nil {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !errors.Is(opErr, ErrRankFailed) {
			return fmt.Errorf("wanted ErrRankFailed, got %v", opErr)
		}
		if err := c.Shrink(); err != nil {
			return fmt.Errorf("shrink: %w", err)
		}
		if c.Size() != 3 {
			return fmt.Errorf("shrunk size %d, want 3", c.Size())
		}
		if c.Epoch() == 0 {
			return fmt.Errorf("epoch not bumped")
		}
		got, err := c.Bcast(0, payload)
		if err != nil {
			return fmt.Errorf("post-shrink bcast: %w", err)
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("post-shrink bcast corrupted")
		}
		return nil
	})
	// Dense re-rank: group omits the victim, ranks are 0..2.
	for _, c := range comms {
		if c.WorldRank() == victim {
			continue
		}
		g := c.Group()
		want := []int{0, 1, 3}
		if len(g) != 3 || g[0] != want[0] || g[1] != want[1] || g[2] != want[2] {
			t.Fatalf("world %d: group %v, want %v", c.WorldRank(), g, want)
		}
	}
}

// TestRecvDeadlineNoSender is the collective-blocking-semantics fix: a
// receiver waiting on a rank that never sends gets ErrDeadline, not an
// infinite block — with only the deadline configured, no detector.
func TestRecvDeadlineNoSender(t *testing.T) {
	comms, err := NewWorld(2, WorldOptions{OpDeadline: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	start := time.Now()
	if _, err := comms[1].Recv(0, 7, 0); !errors.Is(err, ErrDeadline) {
		t.Fatalf("recv from silent rank: got %v, want ErrDeadline", err)
	}
	// Collectives observe it too: the non-root side of a bcast is a recv.
	if _, err := comms[1].Bcast(0, nil); !errors.Is(err, ErrDeadline) {
		t.Fatalf("bcast with silent root: got %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline waits took %v", elapsed)
	}
}

// TestHangFencing: a hang that outlasts SuspectAfter gets the rank
// declared dead; when the process un-freezes it is a zombie — fenced
// out, every operation failing — while the survivor shrinks to a
// 1-rank world.
func TestHangFencing(t *testing.T) {
	comms := ftWorld(t, 2, WorldOptions{})
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Hang(40 * time.Millisecond) // > SuspectAfter: fenced
			time.Sleep(60 * time.Millisecond)
			if !c.Fenced() {
				return fmt.Errorf("rank 1 not fenced after over-long hang")
			}
			// The restarted zombie cannot operate or rejoin.
			if err := c.Send(0, 1, []byte("zombie")); !errors.Is(err, ErrRankFailed) {
				return fmt.Errorf("zombie send: got %v, want ErrRankFailed", err)
			}
			if err := c.Shrink(); !errors.Is(err, ErrRankFailed) {
				return fmt.Errorf("zombie shrink: got %v, want ErrRankFailed", err)
			}
			return nil
		}
		_, err := c.Recv(1, 1, 0)
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 1 {
			return fmt.Errorf("survivor recv: got %v, want rank-1 failure", err)
		}
		if err := c.Shrink(); err != nil {
			return fmt.Errorf("survivor shrink: %w", err)
		}
		if c.Size() != 1 || c.Rank() != 0 {
			return fmt.Errorf("survivor world %d/%d after shrink", c.Rank(), c.Size())
		}
		return nil
	})
}

// TestShortHangHarmless: a pause within the suspicion budget must not
// fence anyone.
func TestShortHangHarmless(t *testing.T) {
	comms := ftWorld(t, 2, WorldOptions{})
	defer closeWorld(comms)
	payload := textPayload(512)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Hang(3 * time.Millisecond) // < SuspectAfter
			time.Sleep(5 * time.Millisecond)
			return c.Send(0, 3, payload)
		}
		got, err := c.Recv(1, 3, 0)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("payload corrupted")
		}
		return nil
	})
	for _, c := range comms {
		if c.Fenced() {
			t.Fatalf("world %d fenced after harmless hang", c.WorldRank())
		}
	}
}

// TestIsendRevokedOnPeerDeath: a pending rendezvous send to a dead rank
// completes with ErrRankFailed (instead of waiting forever for a CTS)
// and deregisters from the progress engine.
func TestIsendRevokedOnPeerDeath(t *testing.T) {
	comms := ftWorld(t, 2, WorldOptions{})
	defer closeWorld(comms)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Kill()
			return nil
		}
		r, err := c.Isend(1, 5, textPayload(128<<10)) // rendezvous-class
		if err != nil {
			return err
		}
		if _, err := r.Wait(); !errors.Is(err, ErrRankFailed) {
			return fmt.Errorf("wait: got %v, want ErrRankFailed", err)
		}
		if len(c.pending) != 0 {
			return fmt.Errorf("%d requests still registered after revocation", len(c.pending))
		}
		return nil
	})
}

// TestRankCrashMidPipelinedStream: the sender freezes after its stream
// is announced; the receiver's half-built decompression session aborts
// with ErrRankFailed and the sender ends up fenced.
func TestRankCrashMidPipelinedStream(t *testing.T) {
	comms := ftWorld(t, 2, WorldOptions{
		Compression: &CompressionConfig{Design: core.Design{Algo: core.AlgoLZ4, Engine: hwmodel.SoC}, Pipelined: true},
	})
	defer closeWorld(comms)
	payload := textPayload(512 << 10) // several chunks
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := comms[0]
		// Freeze before sending: the RTS never arrives, the receiver's
		// wait is revoked when the detector declares us dead. (The
		// mid-stream chunk cut is exercised deterministically at the
		// pipeline layer; here the whole protocol path is under test.)
		c.Hang(time.Hour)
		time.Sleep(30 * time.Millisecond)
		if err := c.Send(1, 9, payload); !errors.Is(err, ErrRankFailed) {
			errs <- fmt.Errorf("fenced sender: got %v, want ErrRankFailed", err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := comms[1].Recv(0, 9, len(payload)); !errors.Is(err, ErrRankFailed) {
			errs <- fmt.Errorf("receiver: got %v, want ErrRankFailed", err)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestShrinkNoDeadIsNoop: shrinking a fully-alive world does nothing.
func TestShrinkNoDeadIsNoop(t *testing.T) {
	comms := ftWorld(t, 3, WorldOptions{})
	defer closeWorld(comms)
	for _, c := range comms {
		if err := c.Shrink(); err != nil {
			t.Fatal(err)
		}
		if c.Epoch() != 0 || c.Size() != 3 {
			t.Fatalf("no-op shrink changed the world: epoch %d size %d", c.Epoch(), c.Size())
		}
	}
}

// TestSequentialShrinks: two failures in separate rounds produce two
// epochs and a final dense 2-rank world that still moves data.
func TestSequentialShrinks(t *testing.T) {
	comms := ftWorld(t, 4, WorldOptions{})
	defer closeWorld(comms)
	payload := textPayload(2 << 10)
	kill := map[int]int{3: 0, 1: 1} // world rank → round it dies in
	run(t, comms, func(c *Comm) error {
		for round := 0; round < 2; round++ {
			if r, dies := kill[c.WorldRank()]; dies && r == round {
				c.Kill()
				return nil
			}
			var opErr error
			for i := 0; i < 1000; i++ {
				if _, opErr = c.Bcast(0, payload); opErr != nil {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			if !errors.Is(opErr, ErrRankFailed) {
				return fmt.Errorf("round %d: got %v, want ErrRankFailed", round, opErr)
			}
			if err := c.Shrink(); err != nil {
				return fmt.Errorf("round %d shrink: %w", round, err)
			}
		}
		if c.Size() != 2 || c.Epoch() != 2 {
			return fmt.Errorf("final world %d ranks epoch %d, want 2/2", c.Size(), c.Epoch())
		}
		got, err := c.Bcast(0, payload)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("final bcast corrupted")
		}
		return nil
	})
}

// TestRaceNonblockingVsRevocation exercises the satellite race: a
// TestDetectorArmsAfterConstruction: the staleness monitor must not
// scan during world construction — per-rank PEDAL_init can take longer
// than the whole suspicion budget (real DOCA init costs hundreds of
// milliseconds), and a rank whose heartbeat goroutine has not started
// yet is unborn, not late. The detector arms only once every rank
// beats, so a construction pause of many SuspectAfters fences no one.
func TestDetectorArmsAfterConstruction(t *testing.T) {
	cfg := DetectorConfig{Interval: time.Millisecond, SuspectAfter: 5 * time.Millisecond}.withDefaults()
	d := newDetector(3, cfg)
	// Simulate slow construction: far past SuspectAfter with no monitor.
	time.Sleep(10 * cfg.SuspectAfter)
	d.arm()
	time.Sleep(2 * cfg.Interval) // a couple of scans on the armed monitor
	if got := d.deadRanks(); len(got) != 0 {
		t.Fatalf("monitor fenced ranks %v for construction time", got)
	}
	// Once armed, staleness counts: rank 1 keeps beating, 0 and 2 stop.
	deadline := time.Now().Add(2 * time.Second)
	for !d.isDead(0) || !d.isDead(2) {
		if time.Now().After(deadline) {
			t.Fatal("armed monitor never declared the silent ranks")
		}
		d.beat(1, 0)
		time.Sleep(cfg.Interval)
	}
	if d.isDead(1) {
		t.Fatal("beating rank declared dead")
	}
	for i := 0; i < 3; i++ {
		d.release()
	}
}

// TestDetectorUnarmedDiscard: a world whose construction fails part-way
// releases every reference on a detector that was never armed; that
// must not deadlock waiting for a monitor that never started.
func TestDetectorUnarmedDiscard(t *testing.T) {
	d := newDetector(2, DetectorConfig{}.withDefaults())
	done := make(chan struct{})
	go func() {
		d.release()
		d.release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("release of an unarmed detector deadlocked")
	}
}

// nonblocking send completing (Test polling + progress engine) while the
// failure detector concurrently declares a death and revokes. Run under
// -race via `make race`.
func TestRaceNonblockingVsRevocation(t *testing.T) {
	comms := ftWorld(t, 3, WorldOptions{})
	defer closeWorld(comms)
	payload := textPayload(96 << 10) // rendezvous-class
	run(t, comms, func(c *Comm) error {
		switch c.Rank() {
		case 2:
			// Dies while rank 0's send to rank 1 is in flight.
			time.Sleep(time.Millisecond)
			c.Kill()
			return nil
		case 1:
			_, err := c.Recv(0, 11, len(payload))
			if err != nil && !errors.Is(err, ErrRankFailed) {
				return err
			}
			return nil
		default:
			r, err := c.Isend(1, 11, payload)
			if err != nil {
				return err
			}
			for {
				_, done, err := r.Test()
				if done {
					if err != nil && !errors.Is(err, ErrRankFailed) {
						return err
					}
					return nil
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	})
}

// FuzzEnvelope hardens the envelope and shrink-commit decoders against
// arbitrary wire bytes: no panics, no over-allocation, errors only.
func FuzzEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(encodeEnvelope(kindEager, 0, 7, 1, 5, []byte("hello")))
	f.Add(encodeEnvelope(kindRTS, 3, -1, 9, 1<<20, nil))
	f.Add(encodeEnvelope(kindShrinkCommit, 1, 0, 0, 0, encodeShrinkCommit(1, []int{0, 2, 3})))
	f.Add(encodeEnvelope(kindShrinkCommit, 1, 0, 0, 0, []byte{0, 0, 0, 1, 0xff}))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := decodeEnvelope(0, data, 0)
		if err != nil {
			return
		}
		if env.kind == kindShrinkCommit {
			if sc, err := parseShrinkCommit(env.payload, 64); err == nil {
				if len(sc.group) == 0 || len(sc.group) > 64 {
					t.Fatalf("commit parser accepted group of %d", len(sc.group))
				}
			}
		}
	})
}
