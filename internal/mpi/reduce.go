package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Reserved tags for the reduction-family collectives.
const (
	tagReduce    = 1<<30 + 3
	tagScatter   = 1<<30 + 4
	tagAllgather = 1<<30 + 5
)

// ReduceOp combines two equally-shaped byte buffers element-wise. All
// standard ops are commutative and associative, as MPI requires for
// tree-based reductions.
type ReduceOp struct {
	Name    string
	Combine func(a, b []byte) ([]byte, error)
}

// SumFloat64 adds little-endian float64 vectors.
var SumFloat64 = ReduceOp{
	Name: "sum_float64",
	Combine: mapFloat64(func(x, y float64) float64 {
		return x + y
	}),
}

// MaxFloat64 takes the element-wise maximum of float64 vectors.
var MaxFloat64 = ReduceOp{
	Name: "max_float64",
	Combine: mapFloat64(func(x, y float64) float64 {
		return math.Max(x, y)
	}),
}

// MinFloat64 takes the element-wise minimum of float64 vectors.
var MinFloat64 = ReduceOp{
	Name: "min_float64",
	Combine: mapFloat64(func(x, y float64) float64 {
		return math.Min(x, y)
	}),
}

// BXOR xors byte vectors (useful for checksum-style reductions).
var BXOR = ReduceOp{
	Name: "bxor",
	Combine: func(a, b []byte) ([]byte, error) {
		if len(a) != len(b) {
			return nil, fmt.Errorf("mpi: reduce length mismatch %d vs %d", len(a), len(b))
		}
		out := make([]byte, len(a))
		for i := range a {
			out[i] = a[i] ^ b[i]
		}
		return out, nil
	},
}

func mapFloat64(f func(x, y float64) float64) func(a, b []byte) ([]byte, error) {
	return func(a, b []byte) ([]byte, error) {
		if len(a) != len(b) || len(a)%8 != 0 {
			return nil, fmt.Errorf("mpi: float64 reduce needs equal 8-aligned buffers (%d vs %d)", len(a), len(b))
		}
		out := make([]byte, len(a))
		for i := 0; i < len(a); i += 8 {
			x := math.Float64frombits(binary.LittleEndian.Uint64(a[i:]))
			y := math.Float64frombits(binary.LittleEndian.Uint64(b[i:]))
			binary.LittleEndian.PutUint64(out[i:], math.Float64bits(f(x, y)))
		}
		return out, nil
	}
}

// Reduce combines every rank's data at root with op, using the binomial
// tree MPICH uses for commutative operations. Compression applies per
// hop like any point-to-point transfer. Non-root ranks return nil.
func (c *Comm) Reduce(root int, op ReduceOp, data []byte) ([]byte, error) {
	if err := c.opBegin(); err != nil {
		return nil, err
	}
	if c.size == 1 {
		return data, nil
	}
	relrank := (c.rank - root + c.size) % c.size
	acc := data
	for mask := 1; mask < c.size; mask <<= 1 {
		if relrank&mask != 0 {
			parent := ((relrank - mask) + root) % c.size
			if err := c.Send(parent, tagReduce, acc); err != nil {
				return nil, err
			}
			return nil, nil
		}
		if relrank+mask < c.size {
			child := ((relrank + mask) + root) % c.size
			got, err := c.Recv(child, tagReduce, len(acc)+1024)
			if err != nil {
				return nil, err
			}
			acc, err = op.Combine(acc, got)
			if err != nil {
				return nil, err
			}
		}
	}
	if c.rank == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce is Reduce followed by Bcast (MPICH's default for large
// messages), leaving every rank with the combined result.
func (c *Comm) Allreduce(op ReduceOp, data []byte) ([]byte, error) {
	res, err := c.Reduce(0, op, data)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, res)
}

// Scatter splits root's data into size equal chunks and delivers chunk i
// to rank i. len(data) must be divisible by the world size at root.
func (c *Comm) Scatter(root int, data []byte) ([]byte, error) {
	if err := c.opBegin(); err != nil {
		return nil, err
	}
	if c.size == 1 {
		return data, nil
	}
	if c.rank == root {
		if len(data)%c.size != 0 {
			return nil, fmt.Errorf("mpi: scatter buffer %d not divisible by %d ranks", len(data), c.size)
		}
		chunk := len(data) / c.size
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tagScatter, data[r*chunk:(r+1)*chunk]); err != nil {
				return nil, err
			}
		}
		return data[root*chunk : (root+1)*chunk], nil
	}
	return c.Recv(root, tagScatter, 0)
}

// Allgather collects every rank's equally-sized contribution and leaves
// the rank-ordered concatenation on all ranks (gather-to-root followed by
// a broadcast of the concatenation).
func (c *Comm) Allgather(data []byte) ([]byte, error) {
	if err := c.opBegin(); err != nil {
		return nil, err
	}
	if c.size == 1 {
		return data, nil
	}
	if c.rank != 0 {
		if err := c.Send(0, tagAllgather, data); err != nil {
			return nil, err
		}
		return c.Bcast(0, nil)
	}
	parts := make([][]byte, c.size)
	parts[0] = data
	for i := 0; i < c.size-1; i++ {
		env, err := c.waitForSendStart(AnySource, tagAllgather)
		if err != nil {
			return nil, err
		}
		c.unexpected = append(c.unexpected, env)
		got, err := c.Recv(env.src, tagAllgather, 0)
		if err != nil {
			return nil, err
		}
		parts[env.src] = got
	}
	var all []byte
	for _, p := range parts {
		all = append(all, p...)
	}
	return c.Bcast(0, all)
}
