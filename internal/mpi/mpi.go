// Package mpi implements a message-passing runtime modelled on MPICH,
// with the PEDAL co-design of the paper's §IV: point-to-point Send/Recv
// with Eager and Rendezvous protocols, binomial-tree Bcast, and on-the-fly
// compression hooks placed exactly as Fig. 6 describes — on the sender
// between the shim and transport layers, on the receiver inside the
// binding layer with a PEDAL-owned bounce buffer so the decompressed
// message lands in the user buffer without an extra copy.
//
// PEDAL_init runs inside the world construction (the paper integrates it
// into MPI_Init), so no per-message path pays initialisation costs unless
// the world is configured as the baseline.
//
// Each rank carries a virtual clock (internal/simclock). Message
// timestamps merge sender completion time plus modelled wire latency into
// the receiver's clock, which is how the OSU-style benchmarks measure
// communication latency shapes without real BlueField silicon.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/core"
	"pedal/internal/dpu"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/simclock"
	"pedal/internal/stats"
	"pedal/internal/transport"
)

// Errors returned by the runtime.
var (
	ErrClosed    = errors.New("mpi: communicator closed")
	ErrTruncate  = errors.New("mpi: message longer than receive buffer")
	ErrMismatch  = errors.New("mpi: protocol violation")
	ErrBadConfig = errors.New("mpi: invalid configuration")
)

// AnyTag matches any tag in Recv.
const AnyTag = -1

// AnySource matches any source rank in Recv.
const AnySource = -1

// DefaultRendezvousThreshold is the Eager/Rendezvous protocol switch
// point. PEDAL only engages on Rendezvous messages (paper §IV: "PEDAL
// operates on MPI's Rendezvous protocol for larger message sizes rather
// than the Eager protocol ... compression cannot benefit short
// messages").
const DefaultRendezvousThreshold = 64 << 10

// CompressionConfig enables PEDAL in the runtime.
type CompressionConfig struct {
	// Design selects the compression design for outgoing messages.
	Design core.Design
	// DataType describes outgoing payloads for the lossy design; Send
	// uses it when the caller does not override per message.
	DataType core.DataType
	// MinSize overrides the size above which messages are compressed;
	// zero means the rendezvous threshold.
	MinSize int
	// Pipelined streams Rendezvous messages as chunked frames: chunk
	// compression fans across the SoC workers and the C-Engine, each
	// compressed chunk departs the moment it completes, and the receiver
	// decompresses chunks while later ones are still in flight
	// (internal/pipeline). Messages below the rendezvous threshold use
	// the ordinary path.
	Pipelined bool
}

// WorldOptions configures a world of ranks.
type WorldOptions struct {
	// Generation selects the simulated DPU generation all ranks run on;
	// zero means BlueField-2.
	Generation hwmodel.Generation
	// Compression enables the PEDAL co-design; nil disables compression.
	Compression *CompressionConfig
	// Baseline makes every rank pay DOCA init + buffer prep per message
	// (the paper's comparison point).
	Baseline bool
	// RendezvousThreshold overrides the Eager/RNDV switch; zero means
	// DefaultRendezvousThreshold.
	RendezvousThreshold int
	// TCP selects the TCP provider instead of in-process channels.
	TCP bool
	// ErrorBound is the SZ3 bound for lossy compression; zero = 1e-4.
	ErrorBound float64
	// NetFaults injects deterministic per-frame fabric faults (drop,
	// duplicate, reorder, corrupt, delay) beneath a reliability
	// sublayer that recovers them, so collectives and point-to-point
	// traffic survive a lossy fabric unmodified. Each rank draws from
	// an independent schedule derived from Seed. Nil models a perfect
	// fabric. Implies Reliable.
	NetFaults *faults.NetConfig
	// Reliable wraps every endpoint in the CRC + ack/retransmit
	// sublayer even without injected faults (useful to measure the
	// framing overhead on a clean fabric).
	Reliable bool
	// RelOptions overrides the reliability sublayer's timers; zero
	// values select the transport defaults. Stats/Clock/Tracer fields
	// are managed per rank and ignored here.
	RelOptions transport.ReliableOptions
	// Detector enables the heartbeat failure detector and the
	// ULFM-style recovery path: rank crashes surface as ErrRankFailed
	// instead of deadlocks, and survivors rebuild a dense communicator
	// with Shrink. Nil runs without process fault tolerance (waits block
	// exactly as before).
	Detector *DetectorConfig
	// OpDeadline bounds every blocking wait with a wall-clock deadline,
	// independent of the detector: a receiver waiting on a rank that
	// never sends observes ErrDeadline instead of blocking forever.
	// Zero disables the deadline.
	OpDeadline time.Duration
}

// Comm is one rank's communicator handle. A Comm is driven by a single
// goroutine (the rank's "process"), like a real MPI rank.
type Comm struct {
	rank int
	size int
	ep   transport.Endpoint
	opts WorldOptions

	pedal *core.Library
	dev   *dpu.Device

	clock *simclock.Clock
	bd    *stats.Breakdown
	// netBD accumulates fabric fault-injection and reliability counters
	// when the world runs over a lossy/reliable transport; nil on a
	// perfect fabric.
	netBD *stats.Breakdown

	// unexpected holds frames that arrived while waiting for something
	// else (MPI's unexpected-message queue).
	unexpected []envelope
	// pending tracks in-flight nonblocking rendezvous sends by sequence
	// number. Any blocking wait acts as a progress engine for them: when
	// a CTS for a pending send arrives, the DATA frame goes out
	// immediately, which is what makes patterns like Sendrecv rings
	// deadlock-free (real MPI behaves the same way).
	pending map[uint64]*Request

	// Process fault domain (nil det disables it). worldRank is the
	// transport-level identity, stable across shrinks; rank/size above
	// describe the current dense group. group maps group rank → world
	// rank, w2g the inverse (-1 for non-members), and epoch stamps
	// every outgoing envelope so post-shrink re-runs drop the
	// interrupted attempt's leftovers.
	det       *detector
	worldRank int
	group     []int
	w2g       []int
	epoch     uint32

	hbStop     chan struct{}
	hbOnce     sync.Once
	hbWG       sync.WaitGroup
	pauseUntil atomic.Int64
	killed     bool

	// Shrink-agreement state (see shrink.go).
	joins           map[int]bool
	pendingCommit   *shrinkCommit
	lastCommit      []byte
	lastCommitEpoch uint32

	seq    uint64
	closed bool
}

// NewWorld builds n connected ranks and runs PEDAL_init inside the
// construction (the MPI_Init integration of §IV). The returned comms are
// indexed by rank.
func NewWorld(n int, opts WorldOptions) ([]*Comm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: world size %d", ErrBadConfig, n)
	}
	if opts.Generation == 0 {
		opts.Generation = hwmodel.BlueField2
	}
	if opts.RendezvousThreshold == 0 {
		opts.RendezvousThreshold = DefaultRendezvousThreshold
	}
	var eps []transport.Endpoint
	var err error
	if opts.TCP {
		eps, err = transport.NewTCPWorld(n)
	} else {
		eps, err = transport.NewInProcWorld(n)
	}
	if err != nil {
		return nil, err
	}
	var det *detector
	if opts.Detector != nil {
		det = newDetector(n, opts.Detector.withDefaults())
	}
	comms := make([]*Comm, n)
	for i := 0; i < n; i++ {
		clock := simclock.New()
		ep := eps[i]
		var netBD *stats.Breakdown
		if opts.NetFaults != nil || opts.Reliable {
			netBD = stats.NewBreakdown()
			if opts.NetFaults != nil {
				cfg := *opts.NetFaults
				cfg.Seed = faults.DeriveSeed(cfg.Seed, uint64(i))
				ep = transport.WrapFaulty(ep, faults.NewNetInjector(cfg), netBD)
			}
			rel := opts.RelOptions
			rel.Stats = netBD
			rel.Clock = clock
			rel.Tracer = nil
			ep = transport.WrapReliable(ep, rel)
		}
		c := &Comm{
			rank:      i,
			size:      n,
			ep:        ep,
			opts:      opts,
			clock:     clock,
			netBD:     netBD,
			bd:        stats.NewBreakdown(),
			pending:   make(map[uint64]*Request),
			worldRank: i,
			group:     make([]int, n),
			w2g:       make([]int, n),
		}
		for r := 0; r < n; r++ {
			c.group[r], c.w2g[r] = r, r
		}
		if opts.Compression != nil {
			lib, err := core.Init(core.Options{
				Generation: opts.Generation,
				Baseline:   opts.Baseline,
				ErrorBound: opts.ErrorBound,
			})
			if err != nil {
				for _, done := range comms[:i] {
					done.Close()
				}
				if det != nil {
					// Unwind the references of the never-built ranks so
					// the monitor goroutine stops.
					for j := i; j < n; j++ {
						det.release()
					}
				}
				return nil, err
			}
			c.pedal = lib
			c.dev = lib.Device()
		}
		if det != nil {
			c.det = det
			c.startHeartbeat()
		}
		comms[i] = c
	}
	if det != nil {
		// Only now does staleness start counting: per-rank construction
		// (PEDAL_init, worker pools) can exceed SuspectAfter, and the
		// scan must not fence ranks that were never late, just unborn.
		det.arm()
	}
	return comms, nil
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.size }

// Clock exposes the rank's virtual clock (benchmarks read it).
func (c *Comm) Clock() *simclock.Clock { return c.clock }

// Breakdown exposes the rank's accumulated phase accounting.
func (c *Comm) Breakdown() *stats.Breakdown { return c.bd }

// NetStats exposes the rank's fabric reliability counters (retransmits,
// CRC rejects, duplicates dropped, reorders healed, injected faults).
// It returns nil on a perfect fabric; stats.Breakdown methods are
// nil-safe, so callers may use the result unconditionally.
func (c *Comm) NetStats() *stats.Breakdown { return c.netBD }

// Pedal returns the rank's PEDAL library, or nil when compression is
// disabled.
func (c *Comm) Pedal() *core.Library { return c.pedal }

// Close releases the rank's resources.
func (c *Comm) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.stopHeartbeat()
	if c.det != nil {
		c.det.release()
	}
	c.ep.Close()
	if c.pedal != nil {
		c.pedal.Finalize()
	}
}

// compressionFor decides whether an outgoing payload of size n gets
// compressed, honouring the RNDV-only rule.
func (c *Comm) compressionFor(n int) *CompressionConfig {
	cc := c.opts.Compression
	if cc == nil || c.pedal == nil {
		return nil
	}
	min := cc.MinSize
	if min == 0 {
		min = c.opts.RendezvousThreshold
	}
	if n < min {
		return nil
	}
	return cc
}

// wire models the network between two DPUs for a payload of n bytes.
func (c *Comm) wire(n int) time.Duration {
	return hwmodel.WireLatency(c.opts.Generation, n)
}
