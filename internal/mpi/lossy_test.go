package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"time"

	"pedal/internal/faults"
	"pedal/internal/stats"
	"pedal/internal/transport"
)

// lossyOpts builds world options with the given fault mix under the
// reliability sublayer, timers tightened for test speed, and the RNDV
// threshold lowered so modest payloads exercise the three-frame
// rendezvous protocol over the lossy fabric.
func lossyOpts(cfg faults.NetConfig) WorldOptions {
	return WorldOptions{
		NetFaults:           &cfg,
		RendezvousThreshold: 1 << 10,
		RelOptions: transport.ReliableOptions{
			RTO:    time.Millisecond,
			MaxRTO: 10 * time.Millisecond,
		},
	}
}

// lossyScenarios covers every network fault class plus a mixed storm.
func lossyScenarios() []struct {
	name string
	cfg  faults.NetConfig
} {
	return []struct {
		name string
		cfg  faults.NetConfig
	}{
		{"drop", faults.NetConfig{Seed: 201, PDrop: 0.12}},
		{"duplicate", faults.NetConfig{Seed: 202, PDuplicate: 0.15}},
		{"reorder", faults.NetConfig{Seed: 203, PReorder: 0.18}},
		{"corrupt", faults.NetConfig{Seed: 204, PCorrupt: 0.12}},
		{"delay", faults.NetConfig{Seed: 205, PDelay: 0.30}},
		{"mixed", faults.NetConfig{Seed: 206, PDrop: 0.04, PDuplicate: 0.04, PReorder: 0.04, PCorrupt: 0.04, PDelay: 0.04}},
	}
}

// rankPayload derives a deterministic payload distinct per (rank, round,
// size) so any cross-wiring or corruption is caught by comparison.
func rankPayload(rank, round, size int) []byte {
	buf := make([]byte, size)
	binary.BigEndian.PutUint32(buf[0:4], uint32(rank))
	binary.BigEndian.PutUint32(buf[4:8], uint32(round))
	for i := 8; i < size; i++ {
		buf[i] = byte(rank*131 + round*31 + i)
	}
	return buf
}

func TestLossyPointToPointAllClasses(t *testing.T) {
	for _, sc := range lossyScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			comms, err := NewWorld(2, lossyOpts(sc.cfg))
			if err != nil {
				t.Fatal(err)
			}
			defer closeWorld(comms)
			// Mix of eager (256 B) and rendezvous (4 KiB) rounds.
			sizes := []int{256, 4 << 10}
			run(t, comms, func(c *Comm) error {
				for round := 0; round < 25; round++ {
					size := sizes[round%len(sizes)]
					if c.Rank() == 0 {
						if err := c.Send(1, round, rankPayload(0, round, size)); err != nil {
							return err
						}
						got, err := c.Recv(1, round, size+64)
						if err != nil {
							return err
						}
						if !bytes.Equal(got, rankPayload(1, round, size)) {
							return fmt.Errorf("round %d: reply corrupted", round)
						}
					} else {
						got, err := c.Recv(0, round, size+64)
						if err != nil {
							return err
						}
						if !bytes.Equal(got, rankPayload(0, round, size)) {
							return fmt.Errorf("round %d: request corrupted", round)
						}
						if err := c.Send(0, round, rankPayload(1, round, size)); err != nil {
							return err
						}
					}
				}
				return nil
			})
		})
	}
}

func TestLossyBcastAllClasses(t *testing.T) {
	for _, sc := range lossyScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			comms, err := NewWorld(4, lossyOpts(sc.cfg))
			if err != nil {
				t.Fatal(err)
			}
			defer closeWorld(comms)
			run(t, comms, func(c *Comm) error {
				for round := 0; round < 10; round++ {
					root := round % c.Size()
					var data []byte
					if c.Rank() == root {
						data = rankPayload(root, round, 4<<10)
					}
					got, err := c.Bcast(root, data)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, rankPayload(root, round, 4<<10)) {
						return fmt.Errorf("round %d: bcast payload corrupted", round)
					}
				}
				return nil
			})
		})
	}
}

func TestLossyReduceAllClasses(t *testing.T) {
	for _, sc := range lossyScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			comms, err := NewWorld(4, lossyOpts(sc.cfg))
			if err != nil {
				t.Fatal(err)
			}
			defer closeWorld(comms)
			const elems = 512 // 4 KiB of float64s → rendezvous hops
			run(t, comms, func(c *Comm) error {
				for round := 0; round < 6; round++ {
					vec := make([]byte, elems*8)
					for i := 0; i < elems; i++ {
						binary.LittleEndian.PutUint64(vec[i*8:],
							math.Float64bits(float64(c.Rank()+1)*float64(i+round)))
					}
					got, err := c.Reduce(0, SumFloat64, vec)
					if err != nil {
						return err
					}
					if c.Rank() != 0 {
						continue
					}
					// Sum over ranks r of (r+1)*(i+round) = 10*(i+round)
					// for 4 ranks.
					for i := 0; i < elems; i++ {
						want := 10 * float64(i+round)
						gotv := math.Float64frombits(binary.LittleEndian.Uint64(got[i*8:]))
						if gotv != want {
							return fmt.Errorf("round %d elem %d: %v != %v", round, i, gotv, want)
						}
					}
				}
				return nil
			})
		})
	}
}

func TestLossyNonblockingAllClasses(t *testing.T) {
	for _, sc := range lossyScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			comms, err := NewWorld(4, lossyOpts(sc.cfg))
			if err != nil {
				t.Fatal(err)
			}
			defer closeWorld(comms)
			run(t, comms, func(c *Comm) error {
				for round := 0; round < 8; round++ {
					// Ring shift: Isend to the right, Irecv from the left.
					right := (c.Rank() + 1) % c.Size()
					left := (c.Rank() - 1 + c.Size()) % c.Size()
					rreq, err := c.Irecv(left, round, (4<<10)+64)
					if err != nil {
						return err
					}
					sreq, err := c.Isend(right, round, rankPayload(c.Rank(), round, 4<<10))
					if err != nil {
						return err
					}
					got, err := rreq.Wait()
					if err != nil {
						return err
					}
					if _, err := sreq.Wait(); err != nil {
						return err
					}
					if !bytes.Equal(got, rankPayload(left, round, 4<<10)) {
						return fmt.Errorf("round %d: ring payload corrupted", round)
					}
				}
				return nil
			})
		})
	}
}

// TestLossySeededRepeatability runs the same mixed-fault world twice
// with a fixed seed: both runs must complete with zero data errors and
// with the fault machinery visibly firing. (Exact frame-level schedule
// determinism is asserted at the transport layer, where no
// timing-dependent retransmissions feed back into the injector.)
func TestLossySeededRepeatability(t *testing.T) {
	runOnce := func() uint64 {
		cfg := faults.NetConfig{Seed: 999, PDrop: 0.05, PDuplicate: 0.05, PReorder: 0.05, PCorrupt: 0.05}
		comms, err := NewWorld(2, lossyOpts(cfg))
		if err != nil {
			t.Fatal(err)
		}
		defer closeWorld(comms)
		run(t, comms, func(c *Comm) error {
			for round := 0; round < 20; round++ {
				if c.Rank() == 0 {
					if err := c.Send(1, round, rankPayload(0, round, 2<<10)); err != nil {
						return err
					}
				} else {
					got, err := c.Recv(0, round, (2<<10)+64)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, rankPayload(0, round, 2<<10)) {
						return fmt.Errorf("round %d corrupted", round)
					}
				}
			}
			return nil
		})
		var injected uint64
		for _, c := range comms {
			bd := c.NetStats()
			injected += bd.Count(stats.CounterNetInjDrops) + bd.Count(stats.CounterNetInjDups) +
				bd.Count(stats.CounterNetInjReorders) + bd.Count(stats.CounterNetInjCorrupts)
		}
		return injected
	}
	if a, b := runOnce(), runOnce(); a == 0 || b == 0 {
		t.Fatalf("mixed 20%% fault mix injected nothing (%d, %d)", a, b)
	}
}
