package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pedal/internal/stats"
)

// Process fault domain: a heartbeat failure detector plus ULFM-style
// recovery. Every rank beats a world-shared detector; a monitor declares
// a rank dead once its heartbeat goes stale past the suspicion timeout.
// Liveness (did the process beat recently?) runs on the wall clock — a
// crashed goroutine stops in real time, not virtual time — while each
// beat is stamped with the rank's virtual clock so experiments can
// relate failure points to the simulated timeline.
//
// Once a rank is declared dead it stays dead: beats from it are ignored
// (zombie fencing), so a process that un-hangs after the timeout — the
// RankRestart fault class — can never rejoin the old world. Survivors
// observe ErrRankFailed from any blocked or new operation, agree on a
// dense surviving group via Shrink, and re-run interrupted work on the
// new epoch; the epoch filter in the envelope protocol drops the old
// attempt's leftovers, which is what makes the re-run idempotent.

// Errors of the process fault domain.
var (
	// ErrRankFailed reports that a peer rank was declared failed by the
	// heartbeat detector (or that this rank itself was fenced). Every
	// concrete failure is a *RankFailedError, which unwraps to this
	// sentinel; recover by calling Shrink on every survivor and
	// re-running the operation on the shrunk communicator.
	ErrRankFailed = errors.New("mpi: rank failed")
	// ErrDeadline reports a blocking operation that exceeded
	// WorldOptions.OpDeadline without the awaited frame arriving.
	ErrDeadline = errors.New("mpi: operation deadline exceeded")
)

// RankFailedError carries the identity of a detected process failure.
type RankFailedError struct {
	// Rank is the world rank of the failed process, or -1 when the
	// failure surfaces only as a communicator revocation.
	Rank int
	// Revoked marks errors raised because some member of the current
	// group died, revoking the communicator as a whole — the operation
	// was aborted even if its direct peer is alive, because the
	// collective's tree may route through the dead rank.
	Revoked bool
	// Fenced marks the error returned to a zombie: this rank itself was
	// declared dead (a hang outlasted the suspicion timeout) and has
	// been fenced out of the world.
	Fenced bool
}

func (e *RankFailedError) Error() string {
	switch {
	case e.Fenced:
		return fmt.Sprintf("mpi: rank %d fenced: declared failed by the world", e.Rank)
	case e.Revoked && e.Rank >= 0:
		return fmt.Sprintf("mpi: communicator revoked: rank %d failed", e.Rank)
	case e.Revoked:
		return "mpi: communicator revoked by a rank failure"
	default:
		return fmt.Sprintf("mpi: rank %d failed", e.Rank)
	}
}

// Unwrap lets errors.Is(err, ErrRankFailed) match every failure shape.
func (e *RankFailedError) Unwrap() error { return ErrRankFailed }

// DetectorConfig tunes the heartbeat failure detector. The timing
// budget: a crash is declared within SuspectAfter (+ one Interval of
// scan jitter) of the last heartbeat, so worst-case detection latency is
// SuspectAfter + Interval of wall time.
type DetectorConfig struct {
	// Interval is the heartbeat period and the monitor scan period;
	// zero means 2ms.
	Interval time.Duration
	// SuspectAfter is the heartbeat staleness that declares a rank
	// dead; zero means 8×Interval. It must exceed worst-case scheduler
	// jitter for the heartbeat goroutines or healthy ranks get fenced.
	SuspectAfter time.Duration
	// ShrinkTimeout bounds the Shrink agreement round; zero means 5s.
	ShrinkTimeout time.Duration
	// PollInterval is the sleep between transport polls while a
	// blocking wait watches for revocation; zero means 200µs.
	PollInterval time.Duration
}

func (cfg DetectorConfig) withDefaults() DetectorConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 8 * cfg.Interval
	}
	if cfg.ShrinkTimeout <= 0 {
		cfg.ShrinkTimeout = 5 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Microsecond
	}
	return cfg
}

// detector is the world-shared failure detector. Ranks beat it directly
// (method call, not a wire frame: n² heartbeat frames would swamp the
// small test fabrics, and real MPI failure detectors also run on a side
// channel distinct from the message path).
type detector struct {
	cfg DetectorConfig

	mu   sync.Mutex
	last []time.Time     // wall-clock time of each rank's last beat
	virt []time.Duration // virtual-clock stamp of each rank's last beat
	dead []bool
	deadCount int
	refs      int  // live Comm handles; the monitor stops at zero
	armed     bool // monitor running; set by arm after world construction

	stopCh chan struct{}
	done   chan struct{}
}

// newDetector builds the shared detector without starting the monitor:
// ranks register their heartbeats during world construction, which can
// legitimately take longer than SuspectAfter (DOCA init alone costs
// hundreds of milliseconds per rank on real BlueFields), and a monitor
// scanning mid-construction would fence healthy ranks whose heartbeat
// goroutines simply have not started yet. arm starts the scan once the
// world is fully built.
func newDetector(n int, cfg DetectorConfig) *detector {
	d := &detector{
		cfg:    cfg,
		last:   make([]time.Time, n),
		virt:   make([]time.Duration, n),
		dead:   make([]bool, n),
		refs:   n,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	now := time.Now()
	for i := range d.last {
		d.last[i] = now
	}
	return d
}

// arm stamps every rank live as of now and starts the staleness monitor.
// Called exactly once, after every rank's heartbeat goroutine is running,
// so construction time never counts against the suspicion budget.
func (d *detector) arm() {
	d.mu.Lock()
	now := time.Now()
	for i := range d.last {
		d.last[i] = now
	}
	d.armed = true
	d.mu.Unlock()
	go d.monitor()
}

// monitor scans heartbeat staleness every Interval and declares deaths.
func (d *detector) monitor() {
	defer close(d.done)
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-t.C:
			now := time.Now()
			d.mu.Lock()
			for r := range d.last {
				if !d.dead[r] && now.Sub(d.last[r]) > d.cfg.SuspectAfter {
					d.dead[r] = true
					d.deadCount++
				}
			}
			d.mu.Unlock()
		}
	}
}

// beat records a heartbeat from rank, stamped with the rank's virtual
// clock. Beats from dead ranks are ignored (fencing); the return value
// reports acceptance.
func (d *detector) beat(rank int, virt time.Duration) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead[rank] {
		return false
	}
	d.last[rank] = time.Now()
	if virt > d.virt[rank] {
		d.virt[rank] = virt
	}
	return true
}

func (d *detector) isDead(rank int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return rank >= 0 && rank < len(d.dead) && d.dead[rank]
}

func (d *detector) anyDead() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deadCount > 0
}

// firstDeadOf returns the first world rank in group that is dead.
func (d *detector) firstDeadOf(group []int) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.deadCount == 0 {
		return -1, false
	}
	for _, w := range group {
		if w >= 0 && w < len(d.dead) && d.dead[w] {
			return w, true
		}
	}
	return -1, false
}

// aliveRanks returns the sorted world ranks not declared dead.
func (d *detector) aliveRanks() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, 0, len(d.dead)-d.deadCount)
	for r, dd := range d.dead {
		if !dd {
			out = append(out, r)
		}
	}
	return out
}

// deadRanks returns the sorted world ranks declared dead.
func (d *detector) deadRanks() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for r, dd := range d.dead {
		if dd {
			out = append(out, r)
		}
	}
	return out
}

// lastVirtual reports the virtual-clock stamp of rank's last accepted
// heartbeat: where on the simulated timeline the rank was last known
// alive.
func (d *detector) lastVirtual(rank int) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.virt[rank]
}

// release drops one Comm reference; the monitor stops with the last.
// A detector discarded before arm (world construction failed) has no
// monitor goroutine to stop.
func (d *detector) release() {
	d.mu.Lock()
	d.refs--
	last := d.refs == 0
	armed := d.armed
	d.mu.Unlock()
	if last && armed {
		close(d.stopCh)
		<-d.done
	}
}

// startHeartbeat launches the rank's heartbeat goroutine.
func (c *Comm) startHeartbeat() {
	c.hbStop = make(chan struct{})
	c.hbWG.Add(1)
	go func() {
		defer c.hbWG.Done()
		t := time.NewTicker(c.det.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.hbStop:
				return
			case <-t.C:
				if time.Now().UnixNano() < c.pauseUntil.Load() {
					continue // injected hang: the process is frozen
				}
				if c.det.beat(c.worldRank, c.clock.Now()) {
					c.bd.Inc(stats.CounterHeartbeats)
				} else {
					c.bd.Inc(stats.CounterFencedBeats)
				}
			}
		}
	}()
}

func (c *Comm) stopHeartbeat() {
	if c.hbStop == nil {
		return
	}
	c.hbOnce.Do(func() { close(c.hbStop) })
	c.hbWG.Wait()
}

// Kill crashes the rank (the RankCrash fault class): the heartbeat stops
// and the process goes silent, but its endpoint stays open — peers learn
// of the death only through the failure detector, exactly like a real
// process crash behind a still-routable NIC. Subsequent operations on
// the killed Comm return ErrClosed. Call it from the rank's own
// goroutine (a rank is single-threaded, like a real MPI process).
func (c *Comm) Kill() {
	if c.killed || c.closed {
		return
	}
	c.killed = true
	c.stopHeartbeat()
	c.failPending(&RankFailedError{Rank: c.worldRank})
}

// Hang freezes the rank's heartbeat for d (the RankHang / RankRestart
// fault classes). A pause under the detector's SuspectAfter is invisible;
// a longer one gets the rank declared dead and fenced, and when the
// process "restarts" its beats are ignored and its operations fail.
// Safe to call from any goroutine.
func (c *Comm) Hang(d time.Duration) {
	c.pauseUntil.Store(time.Now().Add(d).UnixNano())
}

// Fenced reports whether the world has declared this rank dead.
func (c *Comm) Fenced() bool {
	return c.det != nil && c.det.isDead(c.worldRank)
}

// DeadRanks returns the world ranks the failure detector has declared
// dead (nil without a detector).
func (c *Comm) DeadRanks() []int {
	if c.det == nil {
		return nil
	}
	return c.det.deadRanks()
}

// liveness is the per-poll fault check inside every blocking wait:
// fencing first (a zombie must not keep operating), then the awaited
// peer, then whole-group revocation, then the optional wall-clock
// deadline. await is the awaited group rank, or AnySource; a zero start
// skips the deadline check (used for op-entry checks).
func (c *Comm) liveness(await int, start time.Time) error {
	if d := c.det; d != nil {
		if d.isDead(c.worldRank) {
			c.bd.Inc(stats.CounterRevocations)
			return &RankFailedError{Rank: c.worldRank, Fenced: true}
		}
		if await != AnySource && await >= 0 && await < len(c.group) {
			if w := c.group[await]; d.isDead(w) {
				c.bd.Inc(stats.CounterRevocations)
				return &RankFailedError{Rank: w}
			}
		}
		if w, any := d.firstDeadOf(c.group); any {
			c.bd.Inc(stats.CounterRevocations)
			return &RankFailedError{Rank: w, Revoked: true}
		}
		if c.pendingCommit != nil {
			// A peer already committed the next epoch without us noticing
			// a death locally; the communicator is revoked until Shrink
			// installs the commit.
			c.bd.Inc(stats.CounterRevocations)
			return &RankFailedError{Rank: -1, Revoked: true}
		}
	}
	if dl := c.opts.OpDeadline; dl > 0 && !start.IsZero() && time.Since(start) > dl {
		return fmt.Errorf("%w (%v)", ErrDeadline, dl)
	}
	return nil
}

// failPending completes every in-flight nonblocking request with err,
// releasing pooled compressed payloads so an aborted transfer leaks no
// mempool buffers.
func (c *Comm) failPending(err error) {
	for seq, r := range c.pending {
		delete(c.pending, seq)
		if r.pooled && r.payload != nil {
			c.pedal.Release(r.payload)
		}
		r.payload = nil
		r.done, r.err = true, err
	}
}

// pollInterval returns the transport poll period for waiting loops.
func (c *Comm) pollInterval() time.Duration {
	if c.det != nil {
		return c.det.cfg.PollInterval
	}
	return 200 * time.Microsecond
}
