package mpi

// Reserved tags for collective operations, outside the user tag space.
const (
	tagBcast   = 1 << 30
	tagBarrier = 1<<30 + 1
	tagGather  = 1<<30 + 2
)

// Bcast broadcasts data from root to every rank using the binomial tree
// MPICH uses for large messages. Every rank must call Bcast; non-root
// callers ignore their data argument and receive the broadcast value.
// Compression applies per hop exactly as in point-to-point transfers,
// which is how the paper's Fig. 11 experiment runs.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.opBegin(); err != nil {
		return nil, err
	}
	if c.size == 1 {
		return data, nil
	}
	relrank := (c.rank - root + c.size) % c.size
	buf := data
	// Receive phase: find the bit that names our parent.
	mask := 1
	for mask < c.size {
		if relrank&mask != 0 {
			parent := ((relrank - mask) + root) % c.size
			got, err := c.Recv(parent, tagBcast, 0)
			if err != nil {
				return nil, err
			}
			buf = got
			break
		}
		mask <<= 1
	}
	// Forward phase: send to children at decreasing bit positions.
	mask >>= 1
	for mask > 0 {
		if relrank+mask < c.size {
			child := ((relrank + mask) + root) % c.size
			if err := c.Send(child, tagBcast, buf); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return buf, nil
}

// Barrier synchronises all ranks with the dissemination algorithm. The
// virtual clocks of all ranks converge to the max across participants,
// mirroring real barrier semantics.
func (c *Comm) Barrier() error {
	if err := c.opBegin(); err != nil {
		return err
	}
	for mask := 1; mask < c.size; mask <<= 1 {
		dst := (c.rank + mask) % c.size
		src := (c.rank - mask + c.size) % c.size
		if err := c.Send(dst, tagBarrier, nil); err != nil {
			return err
		}
		if _, err := c.Recv(src, tagBarrier, 0); err != nil {
			return err
		}
	}
	return nil
}

// Gather collects each rank's data at root; the result at root is
// indexed by rank, nil elsewhere. Small helper used by examples.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.opBegin(); err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, c.Send(root, tagGather, data)
	}
	out := make([][]byte, c.size)
	out[root] = data
	for i := 0; i < c.size-1; i++ {
		env, err := c.waitForSendStart(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		// Re-queue and use the ordinary receive path for the matched
		// source so protocol handling stays in one place.
		c.unexpected = append(c.unexpected, env)
		got, err := c.Recv(env.src, tagGather, 0)
		if err != nil {
			return nil, err
		}
		out[env.src] = got
	}
	return out, nil
}
