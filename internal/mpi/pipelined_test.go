package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/transport"
)

// pipelinedPayload is compressible text sized for the rendezvous path.
func pipelinedPayload(n int) []byte {
	unit := []byte("<msg seq=\"9\">streamed chunk frame overlap test payload</msg>\n")
	out := make([]byte, n)
	for i := 0; i < n; i += len(unit) {
		copy(out[i:], unit)
	}
	return out
}

func pipelinedWorld(gen hwmodel.Generation, d core.Design) WorldOptions {
	return WorldOptions{
		Generation:  gen,
		Compression: &CompressionConfig{Design: d, Pipelined: true},
	}
}

// TestPipelinedRoundTrip ping-pongs a large message through the streamed
// chunk-frame rendezvous for representative designs on both generations.
func TestPipelinedRoundTrip(t *testing.T) {
	designs := []core.Design{
		{Algo: core.AlgoDeflate, Engine: hwmodel.SoC},
		{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine},
		{Algo: core.AlgoLZ4, Engine: hwmodel.SoC},
		{Algo: core.AlgoZlib, Engine: hwmodel.SoC},
		core.DesignHybrid(),
	}
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		for _, d := range designs {
			t.Run(fmt.Sprintf("%v/%v", gen, d), func(t *testing.T) {
				comms, err := NewWorld(2, pipelinedWorld(gen, d))
				if err != nil {
					t.Fatal(err)
				}
				defer closeWorld(comms)
				payload := pipelinedPayload(2<<20 + 4321)
				run(t, comms, func(c *Comm) error {
					if c.Rank() == 0 {
						if err := c.Send(1, 7, payload); err != nil {
							return err
						}
						got, err := c.Recv(1, 8, len(payload)+64)
						if err != nil {
							return err
						}
						if !bytes.Equal(got, payload) {
							return fmt.Errorf("reply mismatch: %d bytes", len(got))
						}
					} else {
						got, err := c.Recv(0, 7, len(payload)+64)
						if err != nil {
							return err
						}
						if !bytes.Equal(got, payload) {
							return fmt.Errorf("request mismatch: %d bytes", len(got))
						}
						if err := c.Send(0, 8, got); err != nil {
							return err
						}
					}
					return nil
				})
			})
		}
	}
}

// TestPipelinedSmallStaysEager: below the rendezvous threshold the
// pipelined flag must not change the ordinary eager/serial path.
func TestPipelinedSmallStaysEager(t *testing.T) {
	d := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	comms, err := NewWorld(2, pipelinedWorld(hwmodel.BlueField2, d))
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	payload := pipelinedPayload(4 << 10)
	run(t, comms, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, payload)
		}
		got, err := c.Recv(0, 0, len(payload)+64)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("eager payload mismatch")
		}
		return nil
	})
}

// TestPipelinedBeatsSerialLatency is the acceptance headline: for a
// ≥1 MiB message the pipelined one-way latency must be strictly below
// the serial compress-then-send latency on BOTH generations.
func TestPipelinedBeatsSerialLatency(t *testing.T) {
	d := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	payload := pipelinedPayload(2 << 20)
	oneWay := func(gen hwmodel.Generation, pipelined bool) time.Duration {
		opts := WorldOptions{
			Generation:  gen,
			Compression: &CompressionConfig{Design: d, Pipelined: pipelined},
		}
		comms, err := NewWorld(2, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer closeWorld(comms)
		run(t, comms, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, payload)
			}
			got, err := c.Recv(0, 0, len(payload)+64)
			if err == nil && !bytes.Equal(got, payload) {
				return fmt.Errorf("payload mismatch")
			}
			return err
		})
		return comms[1].Clock().Now()
	}
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		serial := oneWay(gen, false)
		piped := oneWay(gen, true)
		if piped >= serial {
			t.Errorf("%v: pipelined latency %v not below serial %v", gen, piped, serial)
		} else {
			t.Logf("%v: serial %v, pipelined %v (%.2fx)", gen, serial, piped, float64(serial)/float64(piped))
		}
	}
}

// TestPipelinedUnderNetFaults streams chunk frames across a faulty
// fabric healed by the reliability sublayer: every fault class plus the
// mixed storm must deliver bit-exact payloads.
func TestPipelinedUnderNetFaults(t *testing.T) {
	d := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	for _, sc := range lossyScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			cfg := sc.cfg
			comms, err := NewWorld(2, WorldOptions{
				NetFaults:           &cfg,
				Compression:         &CompressionConfig{Design: d, Pipelined: true},
				RendezvousThreshold: 64 << 10,
				RelOptions: transport.ReliableOptions{
					RTO:    time.Millisecond,
					MaxRTO: 10 * time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer closeWorld(comms)
			run(t, comms, func(c *Comm) error {
				for round := 0; round < 4; round++ {
					payload := pipelinedPayload(512<<10 + round*8192)
					if c.Rank() == 0 {
						if err := c.Send(1, round, payload); err != nil {
							return err
						}
						got, err := c.Recv(1, round, len(payload)+64)
						if err != nil {
							return err
						}
						if !bytes.Equal(got, payload) {
							return fmt.Errorf("round %d: reply corrupted", round)
						}
					} else {
						got, err := c.Recv(0, round, len(payload)+64)
						if err != nil {
							return err
						}
						if !bytes.Equal(got, payload) {
							return fmt.Errorf("round %d: request corrupted", round)
						}
						if err := c.Send(0, round, got); err != nil {
							return err
						}
					}
				}
				return nil
			})
		})
	}
}

// TestPipelinedTruncation: a pipelined RTS announcing more data than the
// receive buffer must fail cleanly with ErrTruncate.
func TestPipelinedTruncation(t *testing.T) {
	d := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	comms, err := NewWorld(2, pipelinedWorld(hwmodel.BlueField2, d))
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(comms)
	payload := pipelinedPayload(1 << 20)
	errc := make(chan error, 1)
	go func() { errc <- comms[0].Send(1, 0, payload) }()
	_, err = comms[1].Recv(0, 0, 1024)
	if err == nil {
		t.Fatal("truncated pipelined receive succeeded")
	}
	// Unblock the sender: close tears the world down.
	closeWorld(comms)
	<-errc
}
