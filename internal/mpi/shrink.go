package mpi

import (
	"encoding/binary"
	"fmt"
	"time"

	"pedal/internal/stats"
)

// ULFM-style communicator shrink. After the detector declares deaths,
// every survivor calls Shrink; the agreement elects the lowest surviving
// world rank as coordinator, collects a join from every other survivor,
// and commits a dense re-ranked group under a bumped epoch:
//
//	survivor ──kindShrinkJoin──▶ coordinator
//	coordinator ──kindShrinkCommit(epoch+1, group)──▶ every survivor
//
// Joins are idempotent and re-sent every detector interval until the
// commit lands, so lost joins, coordinator changes (the coordinator
// itself dying mid-round restarts the election implicitly — survivors
// re-send to the new lowest rank), and late joiners all converge. A
// coordinator that has already installed answers stale joins by
// replaying its last commit. If the membership the coordinator committed
// turns out to contain a rank that died during the round, survivors
// simply observe a fresh revocation on their next operation and run
// another Shrink; the app-level retry loop (Shrink until the collective
// succeeds) converges because epochs only move forward.
//
// Revocation ordering: Shrink first fails every pending nonblocking
// request (releasing pooled payloads), then runs the agreement, and only
// installs the new group after the commit — so no frame of the old epoch
// can be matched by an operation of the new one. The epoch filter in
// absorb drops the old attempt's leftovers, making post-shrink re-sends
// exactly-once on top of the transport's sequence numbers.

// shrinkCommit is a decoded commit: the new epoch and the dense group
// (sorted surviving world ranks).
type shrinkCommit struct {
	epoch uint32
	group []int
}

func encodeShrinkCommit(epoch uint32, group []int) []byte {
	buf := make([]byte, 4, 4+binary.MaxVarintLen64*(len(group)+1))
	binary.BigEndian.PutUint32(buf, epoch)
	buf = binary.AppendUvarint(buf, uint64(len(group)))
	for _, w := range group {
		buf = binary.AppendUvarint(buf, uint64(w))
	}
	return buf
}

func parseShrinkCommit(payload []byte, worldSize int) (*shrinkCommit, error) {
	if len(payload) < 5 {
		return nil, fmt.Errorf("%w: short shrink commit (%d bytes)", ErrMismatch, len(payload))
	}
	sc := &shrinkCommit{epoch: binary.BigEndian.Uint32(payload)}
	rest := payload[4:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count == 0 || count > uint64(worldSize) {
		return nil, fmt.Errorf("%w: shrink commit group count %d", ErrMismatch, count)
	}
	rest = rest[n:]
	sc.group = make([]int, 0, count)
	prev := -1
	for i := uint64(0); i < count; i++ {
		w, n := binary.Uvarint(rest)
		if n <= 0 || int(w) >= worldSize || int(w) <= prev {
			return nil, fmt.Errorf("%w: shrink commit rank list invalid", ErrMismatch)
		}
		rest = rest[n:]
		prev = int(w)
		sc.group = append(sc.group, int(w))
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after shrink commit", ErrMismatch, len(rest))
	}
	return sc, nil
}

// noteJoin handles an incoming kindShrinkJoin. A join for a round this
// rank already committed gets the commit replayed (late joiner); joins
// for the current round are stashed for the coordinator role in Shrink.
func (c *Comm) noteJoin(env envelope) {
	if c.lastCommit != nil && c.lastCommitEpoch > env.epoch {
		if c.groupOf(env.world) >= 0 {
			_ = c.sendControl(env.world, kindShrinkCommit, c.lastCommitEpoch, c.lastCommit)
		}
		return
	}
	if c.joins == nil {
		c.joins = make(map[int]bool)
	}
	c.joins[env.world] = true
}

// noteCommit stashes an incoming kindShrinkCommit for install; stale or
// malformed commits are dropped.
func (c *Comm) noteCommit(env envelope) {
	sc, err := parseShrinkCommit(env.payload, len(c.w2g))
	if err != nil || sc.epoch <= c.epoch {
		c.bd.Inc(stats.CounterStaleFrames)
		return
	}
	if c.pendingCommit == nil || sc.epoch > c.pendingCommit.epoch {
		c.pendingCommit = sc
	}
}

// install applies a committed group: dense re-rank, epoch bump, stale
// unexpected-queue flush. It fails if this rank is not a member (fenced).
func (c *Comm) install(sc *shrinkCommit) error {
	idx := -1
	for i, w := range sc.group {
		if w == c.worldRank {
			idx = i
			break
		}
	}
	if idx < 0 {
		return &RankFailedError{Rank: c.worldRank, Fenced: true}
	}
	c.epoch = sc.epoch
	c.group = append(c.group[:0:0], sc.group...)
	c.rank = idx
	c.size = len(sc.group)
	for i := range c.w2g {
		c.w2g[i] = -1
	}
	for g, w := range c.group {
		c.w2g[w] = g
	}
	// Flush frames that can never match under the new epoch: the
	// interrupted attempt's leftovers and traffic from fenced ranks.
	kept := c.unexpected[:0]
	for _, env := range c.unexpected {
		if env.epoch == c.epoch && c.groupOf(env.world) >= 0 {
			kept = append(kept, env)
		} else {
			c.bd.Inc(stats.CounterStaleFrames)
		}
	}
	for i := len(kept); i < len(c.unexpected); i++ {
		c.unexpected[i] = envelope{}
	}
	c.unexpected = kept
	c.pendingCommit = nil
	c.joins = nil
	c.bd.Inc(stats.CounterShrinks)
	return nil
}

// Shrink runs the agreement that replaces the communicator's group with
// the dense, re-ranked set of surviving ranks under a new epoch — the
// MPIX_Comm_shrink of this runtime. Every survivor must call it after
// observing ErrRankFailed; it returns nil once the new group is
// installed (Rank/Size reflect the shrunk world), a *RankFailedError
// with Fenced set if this rank itself was declared dead, and ErrDeadline
// if the agreement cannot complete within the detector's ShrinkTimeout.
// Calling it on a fully-alive world is a no-op.
func (c *Comm) Shrink() error {
	if err := c.usable(); err != nil {
		return err
	}
	d := c.det
	if d == nil {
		return fmt.Errorf("%w: Shrink requires WorldOptions.Detector", ErrBadConfig)
	}
	if !d.anyDead() && c.pendingCommit == nil {
		return nil
	}
	// Revocation ordering, step 1: every pending nonblocking request
	// fails now, before the group changes, releasing pooled payloads.
	c.failPending(&RankFailedError{Rank: -1, Revoked: true})

	deadline := time.Now().Add(d.cfg.ShrinkTimeout)
	var lastJoinAt time.Time
	lastCoord := -1
	for {
		if d.isDead(c.worldRank) {
			return &RankFailedError{Rank: c.worldRank, Fenced: true}
		}
		if pc := c.pendingCommit; pc != nil && pc.epoch > c.epoch {
			return c.install(pc)
		}
		alive := d.aliveRanks()
		if len(alive) == 0 {
			return &RankFailedError{Rank: c.worldRank, Fenced: true}
		}
		coord := alive[0]
		if coord == c.worldRank {
			all := true
			for _, w := range alive {
				if w != c.worldRank && !c.joins[w] {
					all = false
					break
				}
			}
			if all {
				commit := &shrinkCommit{epoch: c.epoch + 1, group: alive}
				payload := encodeShrinkCommit(commit.epoch, commit.group)
				for _, w := range alive {
					if w == c.worldRank {
						continue
					}
					if err := c.sendControl(w, kindShrinkCommit, commit.epoch, payload); err != nil {
						return err
					}
				}
				c.lastCommit, c.lastCommitEpoch = payload, commit.epoch
				return c.install(commit)
			}
		} else if now := time.Now(); coord != lastCoord || now.Sub(lastJoinAt) >= d.cfg.Interval {
			if err := c.sendControl(coord, kindShrinkJoin, c.epoch, nil); err != nil {
				return err
			}
			if lastCoord == coord {
				c.bd.Inc(stats.CounterShrinkJoinResends)
			}
			lastCoord, lastJoinAt = coord, now
		}
		// Pump the transport: joins and commits are absorbed, data
		// frames of any epoch are parked on the unexpected queue.
		progressed := false
		for {
			f, ok, err := c.ep.TryRecv()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			env, err := decodeEnvelope(f.Src, f.Data, int64(f.Departure))
			if err != nil {
				return err
			}
			progressed = true
			if c.absorb(&env) {
				continue
			}
			c.unexpected = append(c.unexpected, env)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: shrink agreement timed out", ErrDeadline)
		}
		if !progressed {
			time.Sleep(c.pollInterval())
		}
	}
}

// Epoch returns the communicator's current epoch (bumped by each
// installed Shrink).
func (c *Comm) Epoch() uint32 { return c.epoch }

// Group returns the current group as world ranks, indexed by group rank.
func (c *Comm) Group() []int { return append([]int(nil), c.group...) }

// WorldRank returns this rank's original (world) rank, stable across
// shrinks; Rank returns the dense group rank.
func (c *Comm) WorldRank() int { return c.worldRank }
