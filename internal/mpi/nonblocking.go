package mpi

import (
	"fmt"
	"time"

	"pedal/internal/core"
)

// Request tracks a nonblocking operation started by Isend or Irecv.
// Complete it with Wait (blocking) or poll it with Test. A Comm and its
// Requests must be driven by the rank's single goroutine, like a real
// MPI rank.
type Request struct {
	c    *Comm
	done bool
	err  error
	data []byte // completed receive payload

	// Send state.
	isSend  bool
	dst     int
	tag     int
	seq     uint64
	payload []byte
	// pooled marks payload as a PEDAL pool buffer that must be released
	// once the DATA frame is on the wire (or the request aborts).
	pooled  bool
	origLen int
	rndv    bool

	// Recv state.
	src    int
	dt     core.DataType
	maxLen int
}

// Isend starts a nonblocking standard send. Eager messages complete
// immediately; Rendezvous messages complete in Wait/Test once the
// receiver grants the transfer (CTS) and the data frame is on the wire.
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	dt := core.TypeBytes
	if cc := c.opts.Compression; cc != nil && cc.DataType != 0 {
		dt = cc.DataType
	}
	return c.IsendTyped(dst, tag, dt, data)
}

// IsendTyped is Isend with an explicit datatype.
func (c *Comm) IsendTyped(dst, tag int, dt core.DataType, data []byte) (*Request, error) {
	if err := c.opBegin(); err != nil {
		return nil, err
	}
	origLen := len(data)
	payload := data
	pooled := false
	if cc := c.compressionFor(origLen); cc != nil {
		msg, rep, err := c.pedal.Compress(cc.Design, dt, data)
		if err != nil {
			return nil, fmt.Errorf("mpi: pedal compress: %w", err)
		}
		payload = msg
		pooled = true
		c.clock.Advance(rep.Virtual)
		c.mergePhases(rep)
	}
	r := &Request{c: c, isSend: true, dst: dst, tag: tag, origLen: origLen, payload: payload, pooled: pooled}
	if origLen < c.opts.RendezvousThreshold {
		r.done = true
		r.err = c.sendFrame(dst, kindEager, tag, c.nextSeq(), origLen, payload)
		r.release()
		return r, r.err
	}
	r.rndv = true
	r.seq = c.nextSeq()
	// Register before the RTS leaves so any blocking wait can service the
	// CTS the moment it arrives (progress-engine semantics).
	c.pending[r.seq] = r
	if err := c.sendFrame(dst, kindRTS, tag, r.seq, len(payload), nil); err != nil {
		delete(c.pending, r.seq)
		r.release()
		r.done, r.err = true, err
		return r, err
	}
	return r, nil
}

// release returns a pooled compressed payload to the PEDAL pool. The
// envelope encoder copies onto the wire, so this is safe the moment the
// frame has been sent — and mandatory when the request aborts, or the
// fault soaks would count a leaked buffer.
func (r *Request) release() {
	if r.pooled && r.payload != nil {
		r.c.pedal.Release(r.payload)
	}
	r.pooled = false
	r.payload = nil
}

// abortSend completes a pending send with err, deregistering it from the
// progress engine and releasing its payload.
func (r *Request) abortSend(err error) {
	delete(r.c.pending, r.seq)
	r.release()
	r.done, r.err = true, err
}

// Irecv starts a nonblocking receive. The match and transfer happen in
// Wait or Test.
func (c *Comm) Irecv(src, tag int, maxLen int) (*Request, error) {
	dt := core.TypeBytes
	if cc := c.opts.Compression; cc != nil && cc.DataType != 0 {
		dt = cc.DataType
	}
	return c.IrecvTyped(src, tag, dt, maxLen)
}

// IrecvTyped is Irecv with an explicit datatype.
func (c *Comm) IrecvTyped(src, tag int, dt core.DataType, maxLen int) (*Request, error) {
	if err := c.usable(); err != nil {
		return nil, err
	}
	return &Request{c: c, src: src, tag: tag, dt: dt, maxLen: maxLen}, nil
}

// Wait blocks until the request completes and returns the received
// payload (nil for sends). A rank failure or revocation completes the
// request with ErrRankFailed instead of blocking forever.
func (r *Request) Wait() ([]byte, error) {
	if r.done {
		return r.data, r.err
	}
	if r.isSend {
		// Drive the progress engine until our own CTS has been serviced
		// (possibly by a nested wait that ran while we were blocked
		// elsewhere).
		c := r.c
		start := time.Now()
		for !r.done {
			env, ok, err := c.step(r.dst, start)
			if err != nil {
				r.abortSend(err)
				return nil, err
			}
			if ok {
				c.unexpected = append(c.unexpected, env)
			}
		}
		return nil, r.err
	}
	r.data, r.err = r.c.RecvTyped(r.src, r.tag, r.dt, r.maxLen)
	r.done = true
	return r.data, r.err
}

// Test polls for completion without blocking on a quiet network. When it
// reports true the request is complete and the payload (for receives) is
// returned. Note: once a matching first frame has arrived, Test finishes
// the remaining protocol steps, which can involve bounded waiting for a
// rendezvous data frame (real MPI progress engines behave the same way).
func (r *Request) Test() ([]byte, bool, error) {
	if r.done {
		return r.data, true, r.err
	}
	c := r.c
	// Drain everything immediately available, absorbing control frames
	// and pending-send CTS grants (which may complete this very request)
	// and queueing the rest.
	if err := c.drain(); err != nil {
		if r.isSend {
			r.abortSend(err)
		} else {
			r.done, r.err = true, err
		}
		return nil, true, err
	}
	if r.isSend {
		// A failure detector revocation also completes the request: the
		// CTS this send waits for is never coming.
		if !r.done && c.det != nil {
			if err := c.liveness(r.dst, time.Time{}); err != nil {
				r.abortSend(err)
				return nil, true, err
			}
		}
		return nil, r.done, r.err
	}
	for _, env := range c.unexpected {
		if c.accepts(env, r.src, r.tag, kindEager, 0) || c.accepts(env, r.src, r.tag, kindRTS, 0) {
			data, err := r.Wait()
			return data, true, err
		}
	}
	return nil, false, nil
}

// drain pulls every immediately-available frame off the transport,
// running each through absorb (control frames, stale drops, CTS
// progress) and parking the rest on the unexpected queue.
func (c *Comm) drain() error {
	for {
		f, ok, err := c.ep.TryRecv()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		env, err := decodeEnvelope(f.Src, f.Data, int64(f.Departure))
		if err != nil {
			return err
		}
		if c.absorb(&env) {
			continue
		}
		c.unexpected = append(c.unexpected, env)
	}
}

// Waitall completes every request in order and returns the first error.
func Waitall(reqs ...*Request) error {
	var firstErr error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Probe reports whether a message matching (src, tag) is available
// without receiving it, returning its source, tag and payload size when
// present (MPI_Iprobe semantics: nonblocking).
func (c *Comm) Probe(src, tag int) (fromRank, msgTag, size int, ok bool, err error) {
	if err := c.usable(); err != nil {
		return 0, 0, 0, false, err
	}
	if err := c.drain(); err != nil {
		return 0, 0, 0, false, err
	}
	for _, env := range c.unexpected {
		if c.accepts(env, src, tag, kindEager, 0) || c.accepts(env, src, tag, kindRTS, 0) {
			// The RTS advertises the (possibly compressed) payload size.
			return c.groupOf(env.world), env.tag, env.origLen, true, nil
		}
	}
	return 0, 0, 0, false, nil
}

// Sendrecv performs a simultaneous send and receive, the standard idiom
// for shift exchanges that would deadlock with two blocking calls.
func (c *Comm) Sendrecv(dst, sendTag int, sendData []byte, src, recvTag int, maxLen int) ([]byte, error) {
	sreq, err := c.Isend(dst, sendTag, sendData)
	if err != nil {
		return nil, err
	}
	got, err := c.Recv(src, recvTag, maxLen)
	if err != nil {
		if !sreq.done {
			// The exchange is dead; don't leave the send registered (or
			// its pooled payload held) in the progress engine.
			sreq.abortSend(err)
		}
		return nil, err
	}
	if _, err := sreq.Wait(); err != nil {
		return nil, err
	}
	return got, nil
}
