package mpi

import (
	"encoding/binary"
	"fmt"
	"time"

	"pedal/internal/core"
)

// Wire protocol kinds. Eager messages carry their payload inline; larger
// messages use the three-step Rendezvous handshake (RTS → CTS → DATA),
// matching MPICH's protocol split.
const (
	kindEager = iota + 1
	kindRTS
	kindCTS
	kindData
	// kindChunk carries one compressed chunk of a pipelined rendezvous
	// stream (see pipelined.go). An RTS with a non-empty payload (the
	// pipeline descriptor) announces the stream; chunks are matched by
	// (src, seq) like DATA frames.
	kindChunk
)

// envHeaderLen is the fixed envelope prefix:
// kind(1) + tag(4) + seq(8) + origLen(8).
const envHeaderLen = 1 + 4 + 8 + 8

// envelope is a decoded frame.
type envelope struct {
	kind    byte
	src     int
	tag     int
	seq     uint64
	origLen int
	payload []byte
	// departure is the sender's virtual clock at transmission.
	departure int64
}

func encodeEnvelope(kind byte, tag int, seq uint64, origLen int, payload []byte) []byte {
	buf := make([]byte, envHeaderLen+len(payload))
	buf[0] = kind
	binary.BigEndian.PutUint32(buf[1:5], uint32(int32(tag)))
	binary.BigEndian.PutUint64(buf[5:13], seq)
	binary.BigEndian.PutUint64(buf[13:21], uint64(origLen))
	copy(buf[envHeaderLen:], payload)
	return buf
}

func decodeEnvelope(src int, data []byte, departure int64) (envelope, error) {
	if len(data) < envHeaderLen {
		return envelope{}, fmt.Errorf("%w: short envelope (%d bytes)", ErrMismatch, len(data))
	}
	return envelope{
		kind:      data[0],
		src:       src,
		tag:       int(int32(binary.BigEndian.Uint32(data[1:5]))),
		seq:       binary.BigEndian.Uint64(data[5:13]),
		origLen:   int(binary.BigEndian.Uint64(data[13:21])),
		payload:   data[envHeaderLen:],
		departure: departure,
	}, nil
}

// nextSeq allocates a request id for a rendezvous exchange.
func (c *Comm) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// sendFrame transmits an envelope, stamping the rank's current virtual
// time as the departure.
func (c *Comm) sendFrame(dst int, kind byte, tag int, seq uint64, origLen int, payload []byte) error {
	buf := encodeEnvelope(kind, tag, seq, origLen, payload)
	return c.ep.Send(dst, buf, c.clock.Now())
}

// match reports whether env satisfies a (src, tag, kind, seq) wait. A
// negative src or tag is a wildcard; seq 0 is a wildcard.
func match(env envelope, src, tag int, kind byte, seq uint64) bool {
	if env.kind != kind {
		return false
	}
	if src != AnySource && env.src != src {
		return false
	}
	if kind == kindEager || kind == kindRTS {
		if tag != AnyTag && env.tag != tag {
			return false
		}
	}
	if seq != 0 && env.seq != seq {
		return false
	}
	return true
}

// progressCTS services a CTS belonging to a pending nonblocking send:
// the DATA frame goes out immediately and the request completes. It
// reports whether the envelope was consumed. This is the progress-engine
// behaviour that keeps mutual-exchange patterns deadlock-free.
func (c *Comm) progressCTS(env envelope) bool {
	if env.kind != kindCTS {
		return false
	}
	r, ok := c.pending[env.seq]
	if !ok || r.dst != env.src {
		return false
	}
	delete(c.pending, env.seq)
	c.clock.AdvanceTo(durationOf(env.departure) + c.wire(envHeaderLen))
	r.err = c.sendFrame(r.dst, kindData, r.tag, r.seq, r.origLen, r.payload)
	r.done = true
	r.payload = nil
	return true
}

// waitFor blocks until a frame matching the criteria arrives, servicing
// pending-send CTS grants and queueing everything else on the unexpected
// list (MPI's unexpected-message queue).
func (c *Comm) waitFor(src, tag int, kind byte, seq uint64) (envelope, error) {
	for i, env := range c.unexpected {
		if match(env, src, tag, kind, seq) {
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			return env, nil
		}
	}
	for {
		f, err := c.ep.Recv()
		if err != nil {
			return envelope{}, err
		}
		env, err := decodeEnvelope(f.Src, f.Data, int64(f.Departure))
		if err != nil {
			return envelope{}, err
		}
		if c.progressCTS(env) {
			continue
		}
		if match(env, src, tag, kind, seq) {
			return env, nil
		}
		c.unexpected = append(c.unexpected, env)
	}
}

// Send transmits data to dst with the given tag, compressing on the fly
// per the world's PEDAL configuration. Send blocks until the message is
// on the wire (standard-mode semantics).
func (c *Comm) Send(dst, tag int, data []byte) error {
	dt := core.TypeBytes
	if cc := c.opts.Compression; cc != nil && cc.DataType != 0 {
		dt = cc.DataType
	}
	return c.SendTyped(dst, tag, dt, data)
}

// SendTyped is Send with an explicit datatype (the Listing-1 datatype
// parameter; float types enable the lossy design).
func (c *Comm) SendTyped(dst, tag int, dt core.DataType, data []byte) error {
	if c.closed {
		return ErrClosed
	}
	origLen := len(data)
	payload := data
	// PEDAL hook, sender side: between the shim and transport layers
	// (Fig. 6). Only Rendezvous-class messages are compressed.
	if cc := c.compressionFor(origLen); cc != nil {
		if cc.Pipelined && origLen >= c.opts.RendezvousThreshold {
			// Streamed-frame rendezvous: chunks go on the wire as they
			// compress instead of after one monolithic compression.
			return c.sendPipelined(dst, tag, dt, cc, data)
		}
		msg, rep, err := c.pedal.Compress(cc.Design, dt, data)
		if err != nil {
			return fmt.Errorf("mpi: pedal compress: %w", err)
		}
		payload = msg
		c.clock.Advance(rep.Virtual)
		c.mergePhases(rep)
	}
	if origLen < c.opts.RendezvousThreshold {
		// Eager: single frame, payload inline.
		return c.sendFrame(dst, kindEager, tag, c.nextSeq(), origLen, payload)
	}
	// Rendezvous: RTS carries the payload size; the receiver posts a
	// PEDAL buffer of that size and grants with CTS.
	seq := c.nextSeq()
	if err := c.sendFrame(dst, kindRTS, tag, seq, len(payload), nil); err != nil {
		return err
	}
	cts, err := c.waitFor(dst, AnyTag, kindCTS, seq)
	if err != nil {
		return err
	}
	// Merge the receiver's grant time plus control-message latency.
	c.clock.AdvanceTo(durationOf(cts.departure) + c.wire(envHeaderLen))
	return c.sendFrame(dst, kindData, tag, seq, origLen, payload)
}

// Recv receives a message from src with the given tag into a new buffer
// of at most maxLen bytes. It implements the receiver half of the PEDAL
// co-design: the transport delivers into a PEDAL-owned buffer, and the
// decompressed message is produced for the user without an extra copy.
func (c *Comm) Recv(src, tag int, maxLen int) ([]byte, error) {
	dt := core.TypeBytes
	if cc := c.opts.Compression; cc != nil && cc.DataType != 0 {
		dt = cc.DataType
	}
	return c.RecvTyped(src, tag, dt, maxLen)
}

// RecvTyped is Recv with an explicit datatype for the lossy design.
func (c *Comm) RecvTyped(src, tag int, dt core.DataType, maxLen int) ([]byte, error) {
	if c.closed {
		return nil, ErrClosed
	}
	// Wait for either an eager message or a rendezvous RTS.
	env, err := c.waitForSendStart(src, tag)
	if err != nil {
		return nil, err
	}
	var payload []byte
	var origLen int
	switch env.kind {
	case kindEager:
		c.clock.AdvanceTo(durationOf(env.departure) + c.wire(envHeaderLen+len(env.payload)))
		payload = env.payload
		origLen = env.origLen
	case kindRTS:
		c.clock.AdvanceTo(durationOf(env.departure) + c.wire(envHeaderLen+len(env.payload)))
		if len(env.payload) > 0 {
			// An RTS carrying a payload is a pipelined stream descriptor:
			// reassemble and decompress chunk frames as they land.
			if maxLen > 0 && env.origLen > maxLen {
				return nil, fmt.Errorf("%w: %d > %d", ErrTruncate, env.origLen, maxLen)
			}
			return c.recvPipelined(env, dt, maxLen)
		}
		// Grant: MPICH posts the receive with a PEDAL-generated buffer
		// sized from the RTS (paper §IV).
		if err := c.sendFrame(env.src, kindCTS, env.tag, env.seq, 0, nil); err != nil {
			return nil, err
		}
		data, err := c.waitFor(env.src, AnyTag, kindData, env.seq)
		if err != nil {
			return nil, err
		}
		c.clock.AdvanceTo(durationOf(data.departure) + c.wire(envHeaderLen+len(data.payload)))
		payload = data.payload
		origLen = data.origLen
	default:
		return nil, fmt.Errorf("%w: unexpected kind %d", ErrMismatch, env.kind)
	}
	if maxLen > 0 && origLen > maxLen {
		return nil, fmt.Errorf("%w: %d > %d", ErrTruncate, origLen, maxLen)
	}
	// PEDAL hook, receiver side: decompress from the PEDAL buffer
	// directly into the user's buffer. Uncompressed payloads (no PEDAL
	// header) pass through untouched.
	if c.pedal != nil {
		engine := core.Design{}.Engine
		if cc := c.opts.Compression; cc != nil {
			engine = cc.Design.Engine
		}
		out, rep, err := c.pedal.Decompress(engine, dt, payload, maxLen)
		if err != nil {
			return nil, fmt.Errorf("mpi: pedal decompress: %w", err)
		}
		c.clock.Advance(rep.Virtual)
		c.mergePhases(rep)
		return out, nil
	}
	return payload, nil
}

// waitForSendStart waits for the first frame of an incoming message:
// either an eager payload or an RTS.
func (c *Comm) waitForSendStart(src, tag int) (envelope, error) {
	for i, env := range c.unexpected {
		if match(env, src, tag, kindEager, 0) || match(env, src, tag, kindRTS, 0) {
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			return env, nil
		}
	}
	for {
		f, err := c.ep.Recv()
		if err != nil {
			return envelope{}, err
		}
		env, err := decodeEnvelope(f.Src, f.Data, int64(f.Departure))
		if err != nil {
			return envelope{}, err
		}
		if c.progressCTS(env) {
			continue
		}
		if match(env, src, tag, kindEager, 0) || match(env, src, tag, kindRTS, 0) {
			return env, nil
		}
		c.unexpected = append(c.unexpected, env)
	}
}

// mergePhases folds a PEDAL operation report into the rank's breakdown.
func (c *Comm) mergePhases(rep core.Report) {
	for p, d := range rep.Phases {
		c.bd.Add(p, d)
	}
}

// durationOf converts a stamped departure (nanoseconds of virtual time)
// back to a duration.
func durationOf(ns int64) time.Duration { return time.Duration(ns) }
