package mpi

import (
	"encoding/binary"
	"fmt"
	"time"

	"pedal/internal/core"
	"pedal/internal/stats"
	"pedal/internal/transport"
)

// Wire protocol kinds. Eager messages carry their payload inline; larger
// messages use the three-step Rendezvous handshake (RTS → CTS → DATA),
// matching MPICH's protocol split.
const (
	kindEager = iota + 1
	kindRTS
	kindCTS
	kindData
	// kindChunk carries one compressed chunk of a pipelined rendezvous
	// stream (see pipelined.go). An RTS with a non-empty payload (the
	// pipeline descriptor) announces the stream; chunks are matched by
	// (src, seq) like DATA frames.
	kindChunk
	// kindShrinkJoin and kindShrinkCommit are the control frames of the
	// ULFM-style shrink agreement (shrink.go). They bypass the epoch
	// filter — agreement traffic must cross epochs by definition — and
	// address world ranks directly.
	kindShrinkJoin
	kindShrinkCommit
)

// envHeaderLen is the fixed envelope prefix:
// kind(1) + epoch(4) + tag(4) + seq(8) + origLen(8).
const envHeaderLen = 1 + 4 + 4 + 8 + 8

// envelope is a decoded frame.
type envelope struct {
	kind byte
	// epoch is the sender's communicator epoch. Frames from older
	// epochs are leftovers of an operation interrupted by a rank
	// failure and are dropped; frames from a newer epoch are parked
	// until this rank installs the matching shrink commit.
	epoch uint32
	// world is the sender's world (transport) rank; src is its dense
	// group rank, resolved at match time (it changes across shrinks).
	world int
	src   int
	tag     int
	seq     uint64
	origLen int
	payload []byte
	// departure is the sender's virtual clock at transmission.
	departure int64
}

func encodeEnvelope(kind byte, epoch uint32, tag int, seq uint64, origLen int, payload []byte) []byte {
	buf := make([]byte, envHeaderLen+len(payload))
	buf[0] = kind
	binary.BigEndian.PutUint32(buf[1:5], epoch)
	binary.BigEndian.PutUint32(buf[5:9], uint32(int32(tag)))
	binary.BigEndian.PutUint64(buf[9:17], seq)
	binary.BigEndian.PutUint64(buf[17:25], uint64(origLen))
	copy(buf[envHeaderLen:], payload)
	return buf
}

func decodeEnvelope(src int, data []byte, departure int64) (envelope, error) {
	if len(data) < envHeaderLen {
		return envelope{}, fmt.Errorf("%w: short envelope (%d bytes)", ErrMismatch, len(data))
	}
	return envelope{
		kind:      data[0],
		epoch:     binary.BigEndian.Uint32(data[1:5]),
		world:     src,
		src:       -1,
		tag:       int(int32(binary.BigEndian.Uint32(data[5:9]))),
		seq:       binary.BigEndian.Uint64(data[9:17]),
		origLen:   int(binary.BigEndian.Uint64(data[17:25])),
		payload:   data[envHeaderLen:],
		departure: departure,
	}, nil
}

// nextSeq allocates a request id for a rendezvous exchange.
func (c *Comm) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// groupOf translates a world rank to the current dense group rank, or -1
// for non-members (dead or fenced ranks).
func (c *Comm) groupOf(world int) int {
	if world < 0 || world >= len(c.w2g) {
		return -1
	}
	return c.w2g[world]
}

// sendFrame transmits an envelope to group rank dst under the current
// epoch, stamping the rank's current virtual time as the departure.
func (c *Comm) sendFrame(dst int, kind byte, tag int, seq uint64, origLen int, payload []byte) error {
	if dst < 0 || dst >= len(c.group) {
		return transport.ErrBadRank
	}
	buf := encodeEnvelope(kind, c.epoch, tag, seq, origLen, payload)
	return c.ep.Send(c.group[dst], buf, c.clock.Now())
}

// sendControl transmits a shrink-agreement frame to a world rank under
// an explicit epoch (the agreement crosses epochs by design).
func (c *Comm) sendControl(world int, kind byte, epoch uint32, payload []byte) error {
	buf := encodeEnvelope(kind, epoch, 0, 0, 0, payload)
	return c.ep.Send(world, buf, c.clock.Now())
}

// accepts reports whether env satisfies a (src, tag, kind, seq) wait
// under the current epoch and group. A negative src or tag is a
// wildcard; seq 0 is a wildcard.
func (c *Comm) accepts(env envelope, src, tag int, kind byte, seq uint64) bool {
	if env.kind != kind || env.epoch != c.epoch {
		return false
	}
	g := c.groupOf(env.world)
	if g < 0 {
		return false
	}
	if src != AnySource && g != src {
		return false
	}
	if kind == kindEager || kind == kindRTS {
		if tag != AnyTag && env.tag != tag {
			return false
		}
	}
	if seq != 0 && env.seq != seq {
		return false
	}
	return true
}

// progressCTS services a CTS belonging to a pending nonblocking send:
// the DATA frame goes out immediately and the request completes. It
// reports whether the envelope was consumed. This is the progress-engine
// behaviour that keeps mutual-exchange patterns deadlock-free.
func (c *Comm) progressCTS(env envelope) bool {
	if env.kind != kindCTS || env.epoch != c.epoch {
		return false
	}
	r, ok := c.pending[env.seq]
	if !ok || r.dst < 0 || r.dst >= len(c.group) || c.group[r.dst] != env.world {
		return false
	}
	delete(c.pending, env.seq)
	c.clock.AdvanceTo(durationOf(env.departure) + c.wire(envHeaderLen))
	r.err = c.sendFrame(r.dst, kindData, r.tag, r.seq, r.origLen, r.payload)
	r.done = true
	if r.pooled {
		// The envelope encoder copied the payload onto the wire; the
		// compressed buffer goes back to the pool now.
		c.pedal.Release(r.payload)
		r.pooled = false
	}
	r.payload = nil
	return true
}

// absorb processes control and non-matchable frames, reporting whether
// env was consumed: shrink frames feed the agreement, stale-epoch and
// fenced-sender frames are dropped (the idempotence filter), CTS grants
// service pending sends. Frames from a future epoch are NOT consumed —
// they park on the unexpected queue until this rank installs the commit.
func (c *Comm) absorb(env *envelope) bool {
	switch env.kind {
	case kindShrinkJoin:
		c.noteJoin(*env)
		return true
	case kindShrinkCommit:
		c.noteCommit(*env)
		return true
	}
	if env.epoch < c.epoch || (env.epoch == c.epoch && c.groupOf(env.world) < 0) {
		c.bd.Inc(stats.CounterStaleFrames)
		return true
	}
	if env.epoch == c.epoch && c.progressCTS(*env) {
		return true
	}
	return false
}

// step pulls one frame from the transport and runs it through absorb.
// It returns (env, true, nil) when a data-path envelope is ready for the
// caller to match, (zero, false, nil) when a frame was consumed
// internally (so callers can re-check completion state), and an error
// when the wait must abort: transport failure, rank failure/revocation,
// or the operation deadline. await is the awaited group rank (AnySource
// for wildcards) and start anchors the deadline.
//
// Without a detector or deadline the receive blocks exactly as before;
// with either, the transport is polled so the failure checks interleave
// with reception — this is what turns "receiver blocks forever on a
// rank that never sends" into a typed error.
func (c *Comm) step(await int, start time.Time) (envelope, bool, error) {
	polling := c.det != nil || c.opts.OpDeadline > 0
	for {
		var f transport.Frame
		if polling {
			if err := c.liveness(await, start); err != nil {
				return envelope{}, false, err
			}
			var ok bool
			var err error
			f, ok, err = c.ep.TryRecv()
			if err != nil {
				return envelope{}, false, err
			}
			if !ok {
				time.Sleep(c.pollInterval())
				continue
			}
		} else {
			var err error
			f, err = c.ep.Recv()
			if err != nil {
				return envelope{}, false, err
			}
		}
		env, err := decodeEnvelope(f.Src, f.Data, int64(f.Departure))
		if err != nil {
			return envelope{}, false, err
		}
		if c.absorb(&env) {
			return envelope{}, false, nil
		}
		return env, true, nil
	}
}

// waitMatch blocks until a frame satisfying accept arrives, queueing
// everything else on the unexpected list (MPI's unexpected-message
// queue). The returned envelope has src resolved to the current group.
func (c *Comm) waitMatch(await int, accept func(envelope) bool) (envelope, error) {
	for i, env := range c.unexpected {
		if accept(env) {
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			env.src = c.groupOf(env.world)
			return env, nil
		}
	}
	start := time.Now()
	for {
		env, ok, err := c.step(await, start)
		if err != nil {
			return envelope{}, err
		}
		if !ok {
			continue
		}
		if accept(env) {
			env.src = c.groupOf(env.world)
			return env, nil
		}
		c.unexpected = append(c.unexpected, env)
	}
}

// waitFor blocks until a frame matching the criteria arrives.
func (c *Comm) waitFor(src, tag int, kind byte, seq uint64) (envelope, error) {
	return c.waitMatch(src, func(env envelope) bool {
		return c.accepts(env, src, tag, kind, seq)
	})
}

// waitForSendStart waits for the first frame of an incoming message:
// either an eager payload or an RTS.
func (c *Comm) waitForSendStart(src, tag int) (envelope, error) {
	return c.waitMatch(src, func(env envelope) bool {
		return c.accepts(env, src, tag, kindEager, 0) || c.accepts(env, src, tag, kindRTS, 0)
	})
}

// usable rejects operations on closed or crashed communicators.
func (c *Comm) usable() error {
	if c.closed || c.killed {
		return ErrClosed
	}
	return nil
}

// opBegin is the entry check of every blocking operation: closed state
// first, then an immediate fault check so an operation on a revoked
// communicator fails fast instead of pushing frames at dead ranks.
func (c *Comm) opBegin() error {
	if err := c.usable(); err != nil {
		return err
	}
	return c.liveness(AnySource, time.Time{})
}

// Send transmits data to dst with the given tag, compressing on the fly
// per the world's PEDAL configuration. Send blocks until the message is
// on the wire (standard-mode semantics).
func (c *Comm) Send(dst, tag int, data []byte) error {
	dt := core.TypeBytes
	if cc := c.opts.Compression; cc != nil && cc.DataType != 0 {
		dt = cc.DataType
	}
	return c.SendTyped(dst, tag, dt, data)
}

// SendTyped is Send with an explicit datatype (the Listing-1 datatype
// parameter; float types enable the lossy design).
func (c *Comm) SendTyped(dst, tag int, dt core.DataType, data []byte) error {
	if err := c.opBegin(); err != nil {
		return err
	}
	origLen := len(data)
	payload := data
	pooled := false
	// PEDAL hook, sender side: between the shim and transport layers
	// (Fig. 6). Only Rendezvous-class messages are compressed.
	if cc := c.compressionFor(origLen); cc != nil {
		if cc.Pipelined && origLen >= c.opts.RendezvousThreshold {
			// Streamed-frame rendezvous: chunks go on the wire as they
			// compress instead of after one monolithic compression.
			return c.sendPipelined(dst, tag, dt, cc, data)
		}
		msg, rep, err := c.pedal.Compress(cc.Design, dt, data)
		if err != nil {
			return fmt.Errorf("mpi: pedal compress: %w", err)
		}
		payload = msg
		pooled = true
		c.clock.Advance(rep.Virtual)
		c.mergePhases(rep)
	}
	release := func() {
		if pooled {
			// encodeEnvelope copies onto the wire, so the compressed
			// buffer returns to the pool on every exit path — an aborted
			// rendezvous must not leak it.
			c.pedal.Release(payload)
		}
	}
	if origLen < c.opts.RendezvousThreshold {
		// Eager: single frame, payload inline.
		err := c.sendFrame(dst, kindEager, tag, c.nextSeq(), origLen, payload)
		release()
		return err
	}
	// Rendezvous: RTS carries the payload size; the receiver posts a
	// PEDAL buffer of that size and grants with CTS.
	seq := c.nextSeq()
	if err := c.sendFrame(dst, kindRTS, tag, seq, len(payload), nil); err != nil {
		release()
		return err
	}
	cts, err := c.waitFor(dst, AnyTag, kindCTS, seq)
	if err != nil {
		release()
		return err
	}
	// Merge the receiver's grant time plus control-message latency.
	c.clock.AdvanceTo(durationOf(cts.departure) + c.wire(envHeaderLen))
	err = c.sendFrame(dst, kindData, tag, seq, origLen, payload)
	release()
	return err
}

// Recv receives a message from src with the given tag into a new buffer
// of at most maxLen bytes. It implements the receiver half of the PEDAL
// co-design: the transport delivers into a PEDAL-owned buffer, and the
// decompressed message is produced for the user without an extra copy.
func (c *Comm) Recv(src, tag int, maxLen int) ([]byte, error) {
	dt := core.TypeBytes
	if cc := c.opts.Compression; cc != nil && cc.DataType != 0 {
		dt = cc.DataType
	}
	return c.RecvTyped(src, tag, dt, maxLen)
}

// RecvTyped is Recv with an explicit datatype for the lossy design.
func (c *Comm) RecvTyped(src, tag int, dt core.DataType, maxLen int) ([]byte, error) {
	if err := c.opBegin(); err != nil {
		return nil, err
	}
	// Wait for either an eager message or a rendezvous RTS.
	env, err := c.waitForSendStart(src, tag)
	if err != nil {
		return nil, err
	}
	var payload []byte
	var origLen int
	switch env.kind {
	case kindEager:
		c.clock.AdvanceTo(durationOf(env.departure) + c.wire(envHeaderLen+len(env.payload)))
		payload = env.payload
		origLen = env.origLen
	case kindRTS:
		c.clock.AdvanceTo(durationOf(env.departure) + c.wire(envHeaderLen+len(env.payload)))
		if len(env.payload) > 0 {
			// An RTS carrying a payload is a pipelined stream descriptor:
			// reassemble and decompress chunk frames as they land.
			if maxLen > 0 && env.origLen > maxLen {
				return nil, fmt.Errorf("%w: %d > %d", ErrTruncate, env.origLen, maxLen)
			}
			return c.recvPipelined(env, dt, maxLen)
		}
		// Grant: MPICH posts the receive with a PEDAL-generated buffer
		// sized from the RTS (paper §IV).
		if err := c.sendFrame(env.src, kindCTS, env.tag, env.seq, 0, nil); err != nil {
			return nil, err
		}
		data, err := c.waitFor(env.src, AnyTag, kindData, env.seq)
		if err != nil {
			return nil, err
		}
		c.clock.AdvanceTo(durationOf(data.departure) + c.wire(envHeaderLen+len(data.payload)))
		payload = data.payload
		origLen = data.origLen
	default:
		return nil, fmt.Errorf("%w: unexpected kind %d", ErrMismatch, env.kind)
	}
	if maxLen > 0 && origLen > maxLen {
		return nil, fmt.Errorf("%w: %d > %d", ErrTruncate, origLen, maxLen)
	}
	// PEDAL hook, receiver side: decompress from the PEDAL buffer
	// directly into the user's buffer. Uncompressed payloads (no PEDAL
	// header) pass through untouched.
	if c.pedal != nil {
		engine := core.Design{}.Engine
		if cc := c.opts.Compression; cc != nil {
			engine = cc.Design.Engine
		}
		out, rep, err := c.pedal.Decompress(engine, dt, payload, maxLen)
		if err != nil {
			return nil, fmt.Errorf("mpi: pedal decompress: %w", err)
		}
		c.clock.Advance(rep.Virtual)
		c.mergePhases(rep)
		return out, nil
	}
	return payload, nil
}

// mergePhases folds a PEDAL operation report into the rank's breakdown.
func (c *Comm) mergePhases(rep core.Report) {
	for p, d := range rep.Phases {
		c.bd.Add(p, d)
	}
}

// durationOf converts a stamped departure (nanoseconds of virtual time)
// back to a duration.
func durationOf(ns int64) time.Duration { return time.Duration(ns) }
