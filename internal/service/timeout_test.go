package service

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

// A client that connects and then stalls must be disconnected once the
// idle timeout elapses, freeing the handler goroutine.
func TestServerIdleTimeoutDisconnectsStalledConn(t *testing.T) {
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lib)
	s.IdleTimeout = 50 * time.Millisecond
	go s.Serve(ln)
	defer s.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing: the server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("want server-side EOF after idle timeout, got %v", err)
	}
}

// Negative IdleTimeout disables the deadline: a briefly idle connection
// stays usable.
func TestServerIdleTimeoutDisabled(t *testing.T) {
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lib)
	s.IdleTimeout = -1
	go s.Serve(ln)
	defer s.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}, core.TypeBytes, []byte("still alive")); err != nil {
		t.Fatalf("idle connection died with deadlines disabled: %v", err)
	}
}

// A server that accepts a request but never answers must not block the
// client forever when a client timeout is configured.
func TestClientTimeout(t *testing.T) {
	clientConn, serverConn := net.Pipe()
	defer serverConn.Close()
	// Silent server: read the request, respond with nothing.
	go func() {
		io.Copy(io.Discard, serverConn)
	}()
	c := NewClient(clientConn)
	c.Timeout = 30 * time.Millisecond
	defer c.Close()
	start := time.Now()
	_, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}, core.TypeBytes, []byte("no answer"))
	if err == nil {
		t.Fatal("round trip against a silent server succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want a deadline error, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("client timeout did not bound the wait")
	}
}
