package service

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

// TestKeepaliveHealthySession: against a live server, the keepalive
// stays quiet and real requests keep flowing alongside the probes.
func TestKeepaliveHealthySession(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.StartKeepalive(2*time.Millisecond, 3)
	payload := []byte("keepalive does not disturb the data plane")
	for i := 0; i < 20; i++ {
		msg, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}, core.TypeBytes, payload)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if _, err := c.Decompress(hwmodel.SoC, core.TypeBytes, msg, len(payload)); err != nil {
			t.Fatalf("request %d decompress: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	if c.Dead() {
		t.Fatal("keepalive declared a live server dead")
	}
	if _, err := c.Health(); err != nil {
		t.Fatalf("health on live session: %v", err)
	}
}

// TestKeepaliveDeclaresPeerDead: when the daemon dies, the keepalive
// crosses its miss budget and every later call — Health included —
// fails fast with ErrPeerDead.
func TestKeepaliveDeclaresPeerDead(t *testing.T) {
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lib)
	go s.Serve(ln)

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping against live server: %v", err)
	}
	c.StartKeepalive(2*time.Millisecond, 3)
	s.Close() // the daemon dies

	deadline := time.Now().Add(2 * time.Second)
	for !c.Dead() {
		if time.Now().After(deadline) {
			t.Fatal("keepalive never declared the dead server")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Health(); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("health after death: got %v, want ErrPeerDead", err)
	}
	if err := c.Ping(); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("ping after death: got %v, want ErrPeerDead", err)
	}
	if _, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}, core.TypeBytes, []byte("x")); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("compress after death: got %v, want ErrPeerDead", err)
	}
}

// TestPingBypassesAdmission: with every execution slot held and the
// wait queue disabled, data requests shed with ErrBusy while pings
// still answer — overload must not look like death to the keepalive.
func TestPingBypassesAdmission(t *testing.T) {
	addr, srv := startServerWith(t, func(s *Server) {
		s.MaxConcurrent = 1
		s.QueueDepth = -1 // shed the moment the slot is busy
		s.ExecDelay = 200 * time.Millisecond
	})
	_ = srv

	blocker, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	started := make(chan struct{})
	blockDone := make(chan error, 1)
	go func() {
		close(started)
		blockDone <- compressReq(blocker, []byte("slot holder"))
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the blocker claim the slot

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := compressReq(c, []byte("shed me")); !errors.Is(err, ErrBusy) {
		t.Fatalf("data request under overload: got %v, want ErrBusy", err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d under overload: %v", i, err)
		}
	}
	if err := <-blockDone; err != nil {
		t.Fatalf("slot holder: %v", err)
	}
}

// TestKeepaliveUnblocksInFlightRequest: a request wedged on a
// stopped-responding connection is unwound by the keepalive's teardown
// and reports ErrPeerDead rather than hanging.
func TestKeepaliveUnblocksInFlightRequest(t *testing.T) {
	// A listener that accepts and reads but never responds: the daemon
	// process is gone in all but the TCP handshake.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var sink atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf)
					sink.Add(int64(n))
					if err != nil {
						return
					}
				}
			}()
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.StartKeepalive(2*time.Millisecond, 3)
	done := make(chan error, 1)
	go func() {
		_, err := c.Health()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerDead) {
			t.Fatalf("wedged request: got %v, want ErrPeerDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request never unblocked by the keepalive teardown")
	}
}

// TestStopKeepaliveKeepsSession: stopping the keepalive is not a death
// sentence — the session keeps working without probes.
func TestStopKeepaliveKeepsSession(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.StartKeepalive(time.Millisecond, 2)
	time.Sleep(5 * time.Millisecond)
	c.StopKeepalive()
	c.StopKeepalive() // idempotent
	if c.Dead() {
		t.Fatal("stop marked the peer dead")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after stop: %v", err)
	}
}
