package service

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

// startServerWith boots a server on a loopback listener after letting
// the caller configure admission and hooks, returning the address and
// the server for stats inspection.
func startServerWith(t *testing.T, configure func(*Server)) (string, *Server) {
	t.Helper()
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lib)
	if configure != nil {
		configure(s)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		s.Close()
		lib.Finalize()
	})
	return ln.Addr().String(), s
}

// waitCounter polls a server counter until it reaches want or the
// deadline passes.
func waitCounter(t *testing.T, s *Server, k stats.Counter, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Count(k) >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter %s stuck at %d, want ≥%d", k, s.Stats().Count(k), want)
}

func compressReq(c *Client, data []byte) error {
	_, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}, core.TypeBytes, data)
	return err
}

func TestBusyShedSurfacesErrBusy(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	addr, s := startServerWith(t, func(s *Server) {
		s.MaxConcurrent = 1
		s.QueueDepth = -1 // no wait queue: second request sheds immediately
		s.execHook = func(req request) ([]byte, error) {
			entered <- struct{}{}
			<-gate
			return append([]byte(nil), req.data...), nil
		}
	})
	slow, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slowDone := make(chan error, 1)
	go func() { slowDone <- compressReq(slow, []byte("occupies the only slot")) }()
	<-entered // the slot is now provably held

	fast, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	if err := compressReq(fast, []byte("overflow")); !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	if got := s.Stats().Count(stats.CounterSheds); got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}

	// The shed connection must remain usable once load clears.
	close(gate)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow request: %v", err)
	}
	if err := compressReq(fast, []byte("retry succeeds")); err != nil {
		t.Fatalf("retry after ErrBusy: %v", err)
	}
}

func TestQueueAbsorbsBurstThenSheds(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	addr, s := startServerWith(t, func(s *Server) {
		s.MaxConcurrent = 1
		s.QueueDepth = 2
		s.execHook = func(req request) ([]byte, error) {
			entered <- struct{}{}
			<-gate
			return req.data, nil
		}
	})
	slow, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slowDone := make(chan error, 1)
	go func() { slowDone <- compressReq(slow, []byte("holder")) }()
	<-entered

	// Three competitors against one held slot and a queue of two: the
	// two queue entries absorb two of them, the third sheds — no matter
	// the arrival order, because queue slots cannot free until the gate
	// opens.
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			errs <- compressReq(c, []byte("burst"))
		}()
	}
	waitCounter(t, s, stats.CounterSheds, 1)
	close(gate)
	wg.Wait()
	close(errs)
	var busy, ok int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrBusy):
			busy++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if busy != 1 || ok != 2 {
		t.Fatalf("burst outcome: %d ok, %d busy; want 2 ok, 1 busy", ok, busy)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("holder: %v", err)
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	addr, s := startServerWith(t, func(s *Server) {
		s.MaxConcurrent = 4
		s.execHook = func(req request) ([]byte, error) {
			entered <- struct{}{}
			<-gate
			return append([]byte("echo:"), req.data...), nil
		}
	})

	// Two in-flight requests plus one idle connection.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		go func() { results <- compressReq(c, []byte("inflight")) }()
	}
	<-entered
	<-entered
	idle, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(ctx) }()

	// Wait until the drain has observably begun: Shutdown pokes idle
	// read deadlines before closing the listener, so once Dial is
	// refused the idle connection has been released. Sending the "too
	// late" request earlier would race past the drain poke — the server
	// then (correctly) serves and counts it, which is not this test's
	// scenario.
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(time.Millisecond) {
		c, err := Dial(addr)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown")
		}
	}

	// The idle connection is released promptly; its next request fails
	// instead of hanging.
	idle.Timeout = 5 * time.Second
	if err := compressReq(idle, []byte("too late")); err == nil {
		t.Fatal("request on idle connection succeeded after Shutdown")
	}

	// In-flight requests complete once the handler finishes.
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("in-flight request %d: %v", i, err)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.Stats().Count(stats.CounterDrained); got != 2 {
		t.Fatalf("drained = %d, want 2", got)
	}
	// New connections are refused after shutdown.
	if c, err := Dial(addr); err == nil {
		c.Close()
		t.Fatal("Dial succeeded after Shutdown")
	}
}

func TestShutdownDeadlineForcesClose(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	addr, s := startServerWith(t, func(s *Server) {
		s.execHook = func(req request) ([]byte, error) {
			entered <- struct{}{}
			<-gate
			return nil, nil
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go compressReq(c, []byte("wedged"))
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = s.Shutdown(ctx)
	close(gate) // release the handler so Shutdown's wg.Wait can finish
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
}

func TestPanicRecoveredAndReported(t *testing.T) {
	addr, s := startServerWith(t, func(s *Server) {
		s.execHook = func(req request) ([]byte, error) {
			if bytes.HasPrefix(req.data, []byte("boom")) {
				panic("poisoned request")
			}
			return req.data, nil
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = compressReq(c, []byte("boom goes the handler"))
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("want remote panic error, got %v", err)
	}
	if got := s.Stats().Count(stats.CounterPanics); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	// The connection and the server survive the panic.
	if err := compressReq(c, []byte("still alive")); err != nil {
		t.Fatalf("request after panic: %v", err)
	}
}

func TestLargeFrameRoundTrip(t *testing.T) {
	// A body above coalesceLimit exercises the vectored (net.Buffers)
	// write path in both directions: incompressible random data keeps
	// the response body large too.
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, coalesceLimit*2+4096)
	rng.Read(data)
	msg, err := c.Compress(core.Design{Algo: core.AlgoLZ4, Engine: hwmodel.SoC}, core.TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(hwmodel.SoC, core.TypeBytes, msg, len(data)+1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("large-frame round trip mismatch")
	}
}
