package service

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/testutil"
)

func startServer(t *testing.T) (addr string, lib *core.Library) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lib)
	go s.Serve(ln)
	t.Cleanup(func() {
		s.Close()
		lib.Finalize()
	})
	return ln.Addr().String(), lib
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := bytes.Repeat([]byte("pedal as a service over tcp "), 5000)
	msg, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}, core.TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg) >= len(data) {
		t.Fatalf("no compression: %d vs %d", len(msg), len(data))
	}
	algo, _, err := core.ParseHeader(msg)
	if err != nil || algo != core.AlgoDeflate {
		t.Fatalf("header: %v %v", algo, err)
	}
	out, err := c.Decompress(hwmodel.CEngine, core.TypeBytes, msg, len(data)+64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestMultipleRequestsOneConnection(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 10000)
		msg, err := c.Compress(core.Design{Algo: core.AlgoLZ4, Engine: hwmodel.SoC}, core.TypeBytes, data)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		out, err := c.Decompress(hwmodel.SoC, core.TypeBytes, msg, len(data)+64)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			data := bytes.Repeat([]byte(strings.Repeat("x", g+1)), 5000)
			msg, err := c.Compress(core.Design{Algo: core.AlgoZlib, Engine: hwmodel.CEngine}, core.TypeBytes, data)
			if err != nil {
				errs <- err
				return
			}
			out, err := c.Decompress(hwmodel.CEngine, core.TypeBytes, msg, len(data)+64)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out, data) {
				errs <- errors.New("mismatch")
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRemoteErrorSurfaced(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// SZ3 with a non-float datatype errors on the server; the client
	// must see ErrRemote and the connection must stay usable.
	if _, err := c.Compress(core.Design{Algo: core.AlgoSZ3, Engine: hwmodel.SoC}, core.TypeBytes, []byte("abcd")); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	data := []byte("still works after an error")
	msg, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}, core.TypeBytes, data)
	if err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
	out, err := c.Decompress(hwmodel.SoC, core.TypeBytes, msg, 1024)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatal("recovery round trip failed")
	}
}

func TestBadEngineRejected(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.Engine(9)}, core.TypeBytes, []byte("x")); !errors.Is(err, ErrRemote) {
		t.Fatalf("bad engine: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	lib, err := core.Init(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Finalize()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lib)
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Close()
	if err := <-done; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	// Requests on the closed connection fail cleanly.
	if _, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}, core.TypeBytes, []byte("x")); err == nil {
		t.Fatal("request succeeded after server close")
	}
}
