package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/core"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
)

// ErrPeerDead reports that the keepalive declared the service dead:
// the configured number of consecutive probes went unanswered. Every
// later call on the client — including Health — fails fast with it, so
// callers distinguish "daemon gone" from a transient request error.
var ErrPeerDead = errors.New("service: peer declared dead")

// RetryPolicy configures client-side retry of ErrBusy sheds: jittered
// exponential backoff with a per-call retry budget, floored by the
// server's Retry-After hint when the shed carried one. Only busy sheds
// are retried — the request never reached the compression path, so
// re-sending it is always safe; remote application errors and peer
// failures are surfaced immediately as before.
type RetryPolicy struct {
	// Budget is the maximum number of retries per call (on top of the
	// initial attempt). Zero means DefaultRetryBudget; negative disables
	// retry.
	Budget int
	// Base and Max shape the exponential backoff (zero selects the
	// faults.Backoff defaults: 50µs base, 5ms cap).
	Base time.Duration
	Max  time.Duration
	// Seed seeds the jitter PRNG (deterministic tests); zero selects the
	// fixed default.
	Seed uint64

	mu  sync.Mutex
	rng *faults.Rand
}

// DefaultRetryBudget is the retry budget when RetryPolicy.Budget is 0.
const DefaultRetryBudget = 3

func (p *RetryPolicy) budget() int {
	if p.Budget == 0 {
		return DefaultRetryBudget
	}
	if p.Budget < 0 {
		return 0
	}
	return p.Budget
}

// delay computes the sleep before retry attempt (0-based), honoring the
// shed's Retry-After hint as a floor with jitter above it.
func (p *RetryPolicy) delay(attempt int, err error) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = faults.NewRand(p.Seed)
	}
	d := faults.Backoff(attempt, p.Base, p.Max, p.rng)
	if hint := RetryAfter(err); hint > 0 && hint > d {
		d = hint + time.Duration(p.rng.Float64()*float64(hint/2))
	}
	return d
}

// Client is a connection to a PEDAL service. Safe for concurrent use
// (requests are serialised on the single connection, like a DOCA queue
// pair).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	// Timeout bounds each request/response round trip (write + read);
	// zero means no deadline. A timed-out exchange leaves the stream
	// desynchronised, so callers should close the client afterwards.
	Timeout time.Duration
	// Retry, when set, retries busy sheds with jittered backoff under a
	// per-call budget. Nil preserves the fail-fast behaviour (ErrBusy is
	// returned on the first shed). With Timeout set, retries never sleep
	// past the call's overall deadline (entry time + Timeout): a backoff
	// that would overrun it returns a typed DeadlineError carrying the
	// server's Retry-After hint instead.
	Retry *RetryPolicy
	// DeadlineHints, when set (and Timeout > 0), carries the remaining
	// call budget on every request as a wire deadline hint, so the
	// server abandons work the caller has already given up on. Off by
	// default: the flagged op byte is not understood by legacy servers.
	DeadlineHints bool
	// BestEffort marks this client's requests as low priority: under
	// brownout the server sheds them first, protecting paying traffic.
	// Off by default (legacy wire format).
	BestEffort bool

	dead atomic.Bool
	// lastOK is the unix-nano time of the last completed exchange; the
	// keepalive scores connection staleness against it when a request in
	// flight keeps it from probing directly.
	lastOK atomic.Int64
	kaMu   sync.Mutex
	kaStop chan struct{}
	kaDone chan struct{}
}

// Dial connects to a PEDAL service at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// DialTimeout connects to a PEDAL service at addr with a bounded dial.
// The fleet router's health plane uses it so a black-holed shard fails
// its probe within the probe timeout instead of hanging on SYN.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Close stops the keepalive (if running) and closes the connection.
func (c *Client) Close() error {
	c.StopKeepalive()
	return c.conn.Close()
}

// roundTrip runs one exchange, retrying busy sheds under the retry
// policy's budget. Only ErrBusy is retried: the server read the request
// and refused it before execution, so the stream is clean and the
// request provably never ran. The whole exchange — every attempt and
// every backoff sleep — is bounded by one overall deadline fixed at
// entry (now + Timeout); a backoff that would overrun it fails typed
// with DeadlineError instead of sleeping past the caller's budget.
func (c *Client) roundTrip(req request) ([]byte, error) {
	var overall time.Time
	if c.Timeout > 0 {
		overall = time.Now().Add(c.Timeout)
	}
	body, err := c.once(req, overall)
	if c.Retry == nil {
		return body, err
	}
	for attempt := 0; attempt < c.Retry.budget() && errors.Is(err, ErrBusy); attempt++ {
		d := c.Retry.delay(attempt, err)
		if !overall.IsZero() && d >= time.Until(overall) {
			return nil, &DeadlineError{
				RetryAfter: RetryAfter(err),
				Msg:        fmt.Sprintf("busy-retry backoff %v overruns the call budget", d),
			}
		}
		time.Sleep(d)
		body, err = c.once(req, overall)
	}
	return body, err
}

// once serialises one request/response exchange bounded by the call's
// overall deadline. A client whose keepalive has declared the peer dead
// fails fast with ErrPeerDead and never touches the (already closed)
// connection.
func (c *Client) once(req request, overall time.Time) ([]byte, error) {
	if c.dead.Load() {
		return nil, ErrPeerDead
	}
	req.bestEffort = c.BestEffort && req.op != opPing // keepalives are never shed
	c.mu.Lock()
	defer c.mu.Unlock()
	if !overall.IsZero() {
		// Remaining budget is measured after the connection lock: time
		// spent queued behind another request counts against the caller.
		remain := time.Until(overall)
		if remain <= 0 {
			return nil, &DeadlineError{Msg: "call budget exhausted before send"}
		}
		if c.DeadlineHints {
			req.deadline = remain
		}
		c.conn.SetDeadline(overall)
		defer c.conn.SetDeadline(time.Time{})
	}
	body, err := c.exchange(req)
	if err != nil && c.dead.Load() {
		// The keepalive closed the connection out from under this
		// exchange; report the diagnosis, not the symptom.
		return nil, ErrPeerDead
	}
	return body, err
}

// exchange writes one request and reads its response. Caller holds c.mu.
func (c *Client) exchange(req request) ([]byte, error) {
	if err := writeRequest(c.conn, req); err != nil {
		return nil, err
	}
	body, err := readResponse(c.conn)
	if err == nil || errors.Is(err, ErrRemote) || errors.Is(err, ErrBusy) {
		// Any completed round trip — even an application error or a shed
		// — proves the daemon alive.
		c.lastOK.Store(time.Now().UnixNano())
	}
	return body, err
}

// Ping probes the service's keepalive endpoint once. The server answers
// pings before admission control, so Ping succeeding means the daemon
// process is alive, even under full load.
func (c *Client) Ping() error {
	_, err := c.roundTrip(request{op: opPing})
	return err
}

// StartKeepalive arms a per-session failure detector: a background
// goroutine pings the service every interval and, after misses
// consecutive unanswered probes (each bounded by interval), declares
// the peer dead — the connection is closed, any blocked request
// unwinds, and every later call fails fast with ErrPeerDead (surfaced
// through Health like any other operation). It is the service-plane
// twin of the MPI runtime's heartbeat detector: detection latency is
// interval × misses, and a slow-but-live daemon is kept (pings bypass
// admission control). Idempotent while a keepalive is running; misses
// < 1 is treated as 1.
func (c *Client) StartKeepalive(interval time.Duration, misses int) {
	if interval <= 0 || c.dead.Load() {
		return
	}
	if misses < 1 {
		misses = 1
	}
	c.kaMu.Lock()
	defer c.kaMu.Unlock()
	if c.kaStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.kaStop, c.kaDone = stop, done
	c.lastOK.Store(time.Now().UnixNano())
	go c.keepalive(interval, misses, stop, done)
}

// StopKeepalive stops the keepalive goroutine, if any, without marking
// the peer dead. Safe to call at any time.
func (c *Client) StopKeepalive() {
	c.kaMu.Lock()
	stop, done := c.kaStop, c.kaDone
	c.kaStop, c.kaDone = nil, nil
	c.kaMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Dead reports whether the keepalive has declared the peer dead.
func (c *Client) Dead() bool { return c.dead.Load() }

func (c *Client) keepalive(interval time.Duration, misses int, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	budget := interval * time.Duration(misses)
	declare := func() {
		// Diagnosis first, then teardown: a request racing the close
		// must see ErrPeerDead, not a bare I/O error.
		c.dead.Store(true)
		c.conn.Close()
	}
	streak := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if !c.mu.TryLock() {
			// A request holds the connection. It cannot be interrupted
			// for a probe, but its own completions refresh lastOK — so a
			// connection silent past the whole miss budget is a wedged
			// peer, and closing it is what frees the stuck caller.
			if time.Since(time.Unix(0, c.lastOK.Load())) > budget {
				declare()
				return
			}
			continue
		}
		err := c.pingLocked(interval)
		c.mu.Unlock()
		if err != nil {
			streak++
			if streak >= misses {
				declare()
				return
			}
			continue
		}
		streak = 0
	}
}

// pingLocked is one keepalive probe bounded by d. Caller holds c.mu.
func (c *Client) pingLocked(d time.Duration) error {
	if c.dead.Load() {
		return ErrPeerDead
	}
	c.conn.SetDeadline(time.Now().Add(d))
	defer c.conn.SetDeadline(time.Time{})
	_, err := c.exchange(request{op: opPing})
	return err
}

// Compress asks the service to compress data with the given design. The
// returned message carries the PEDAL header like a local Compress.
func (c *Client) Compress(d core.Design, dt core.DataType, data []byte) ([]byte, error) {
	return c.roundTrip(request{
		op:     opCompress,
		algo:   byte(d.Algo),
		engine: byte(d.Engine),
		dtype:  byte(dt),
		data:   data,
	})
}

// Decompress asks the service to decompress a PEDAL message.
func (c *Client) Decompress(engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error) {
	return c.roundTrip(request{
		op:     opDecompress,
		engine: byte(engine),
		dtype:  byte(dt),
		maxOut: int64(maxOut),
		data:   msg,
	})
}

// CompressChecked is Compress with hop-carried checksums on both
// directions of the wire: the request carries the source CRC of data
// (verified by the daemon before compression) and the response carries
// the daemon-computed CRC of the message (verified here on receipt). A
// mismatch in either direction surfaces as a typed integrity.ErrCorrupt
// instead of silently delivering damaged bytes.
func (c *Client) CompressChecked(d core.Design, dt core.DataType, data []byte) ([]byte, error) {
	return c.checkedRoundTrip(request{
		op:     opCompressChecked,
		algo:   byte(d.Algo),
		engine: byte(d.Engine),
		dtype:  byte(dt),
	}, data, "compress")
}

// DecompressChecked is Decompress with hop-carried checksums on both
// directions (see CompressChecked).
func (c *Client) DecompressChecked(engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error) {
	return c.checkedRoundTrip(request{
		op:     opDecompressChecked,
		engine: byte(engine),
		dtype:  byte(dt),
		maxOut: int64(maxOut),
	}, msg, "decompress")
}

// checkedRoundTrip prefixes the request payload with its CRC, runs the
// exchange, and verifies the CRC prefix of the response body.
func (c *Client) checkedRoundTrip(req request, payload []byte, segment string) ([]byte, error) {
	data := make([]byte, checkedDigestLen, checkedDigestLen+len(payload))
	binary.LittleEndian.PutUint32(data, checksum.CRC32(payload))
	req.data = append(data, payload...)
	body, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if len(body) < checkedDigestLen {
		return nil, fmt.Errorf("%w: checked response missing digest", ErrRemote)
	}
	want := binary.LittleEndian.Uint32(body)
	out := body[checkedDigestLen:]
	if got := checksum.CRC32(out); got != want {
		return nil, &integrity.CorruptError{Hop: "service.response", Segment: segment, Want: want, Got: got}
	}
	return out, nil
}

// Health is the parsed engine fault-domain status of a PEDAL service:
// the daemon's view of its C-Engine (live / resetting / degraded) plus
// the recovery counters.
type Health struct {
	State          string
	Inflight       uint64
	Stalls         uint64
	Wedges         uint64
	Resets         uint64
	ResetFailures  uint64
	ExpiredDropped uint64
	LostJobs       uint64
	JobsReplayed   uint64
	// Integrity counters from the silent-data-corruption fault domain:
	// decode-verify mismatches caught by verified compression, chunks or
	// requests a hop rejected on a checksum mismatch, cores quarantined
	// after repeated mismatches, and jobs re-executed on the scalar
	// reference path.
	VerifyMismatches uint64
	HopsRejected     uint64
	CoresQuarantined uint64
	ScalarFallbacks  uint64
	// Overload fault-domain counters: governed pool occupancy against
	// its byte budget, memory-pressure sheds, deadline-abandoned work,
	// and the brownout ladder (step count plus current rung).
	PoolHeld          uint64
	PoolPeak          uint64
	PoolBudget        uint64
	MemPressure       uint64
	DeadlineAbandoned uint64
	Brownouts         uint64
	BrownoutRung      uint64
}

// Live reports whether the daemon's engine is serving hardware jobs.
func (h Health) Live() bool { return h.State == "live" }

// Health queries the daemon's engine fault-domain status.
func (c *Client) Health() (Health, error) {
	body, err := c.roundTrip(request{op: opHealth})
	if err != nil {
		return Health{}, err
	}
	return parseHealth(body)
}

// parseHealth decodes the health endpoint's key=value text line.
func parseHealth(body []byte) (Health, error) {
	var h Health
	for _, field := range strings.Fields(string(body)) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Health{}, fmt.Errorf("%w: malformed health field %q", ErrRemote, field)
		}
		if key == "state" {
			h.State = val
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return Health{}, fmt.Errorf("%w: health field %q: %v", ErrRemote, field, err)
		}
		switch key {
		case "inflight":
			h.Inflight = n
		case "stalls":
			h.Stalls = n
		case "wedges":
			h.Wedges = n
		case "resets":
			h.Resets = n
		case "reset_failures":
			h.ResetFailures = n
		case "expired_dropped":
			h.ExpiredDropped = n
		case "lost_jobs":
			h.LostJobs = n
		case "jobs_replayed":
			h.JobsReplayed = n
		case "verify_mismatches":
			h.VerifyMismatches = n
		case "hops_rejected":
			h.HopsRejected = n
		case "cores_quarantined":
			h.CoresQuarantined = n
		case "scalar_fallbacks":
			h.ScalarFallbacks = n
		case "pool_held":
			h.PoolHeld = n
		case "pool_peak":
			h.PoolPeak = n
		case "pool_budget":
			h.PoolBudget = n
		case "mem_pressure":
			h.MemPressure = n
		case "deadline_abandoned":
			h.DeadlineAbandoned = n
		case "brownouts":
			h.Brownouts = n
		case "brownout_rung":
			h.BrownoutRung = n
		}
	}
	if h.State == "" {
		return Health{}, fmt.Errorf("%w: health response missing state", ErrRemote)
	}
	return h, nil
}
