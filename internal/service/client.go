package service

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

// Client is a connection to a PEDAL service. Safe for concurrent use
// (requests are serialised on the single connection, like a DOCA queue
// pair).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	// Timeout bounds each request/response round trip (write + read);
	// zero means no deadline. A timed-out exchange leaves the stream
	// desynchronised, so callers should close the client afterwards.
	Timeout time.Duration
}

// Dial connects to a PEDAL service at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip serialises one request/response exchange.
func (c *Client) roundTrip(req request) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeRequest(c.conn, req); err != nil {
		return nil, err
	}
	return readResponse(c.conn)
}

// Compress asks the service to compress data with the given design. The
// returned message carries the PEDAL header like a local Compress.
func (c *Client) Compress(d core.Design, dt core.DataType, data []byte) ([]byte, error) {
	return c.roundTrip(request{
		op:     opCompress,
		algo:   byte(d.Algo),
		engine: byte(d.Engine),
		dtype:  byte(dt),
		data:   data,
	})
}

// Decompress asks the service to decompress a PEDAL message.
func (c *Client) Decompress(engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error) {
	return c.roundTrip(request{
		op:     opDecompress,
		engine: byte(engine),
		dtype:  byte(dt),
		maxOut: int64(maxOut),
		data:   msg,
	})
}

// Health is the parsed engine fault-domain status of a PEDAL service:
// the daemon's view of its C-Engine (live / resetting / degraded) plus
// the recovery counters.
type Health struct {
	State          string
	Inflight       uint64
	Stalls         uint64
	Wedges         uint64
	Resets         uint64
	ResetFailures  uint64
	ExpiredDropped uint64
	LostJobs       uint64
	JobsReplayed   uint64
}

// Live reports whether the daemon's engine is serving hardware jobs.
func (h Health) Live() bool { return h.State == "live" }

// Health queries the daemon's engine fault-domain status.
func (c *Client) Health() (Health, error) {
	body, err := c.roundTrip(request{op: opHealth})
	if err != nil {
		return Health{}, err
	}
	return parseHealth(body)
}

// parseHealth decodes the health endpoint's key=value text line.
func parseHealth(body []byte) (Health, error) {
	var h Health
	for _, field := range strings.Fields(string(body)) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Health{}, fmt.Errorf("%w: malformed health field %q", ErrRemote, field)
		}
		if key == "state" {
			h.State = val
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return Health{}, fmt.Errorf("%w: health field %q: %v", ErrRemote, field, err)
		}
		switch key {
		case "inflight":
			h.Inflight = n
		case "stalls":
			h.Stalls = n
		case "wedges":
			h.Wedges = n
		case "resets":
			h.Resets = n
		case "reset_failures":
			h.ResetFailures = n
		case "expired_dropped":
			h.ExpiredDropped = n
		case "lost_jobs":
			h.LostJobs = n
		case "jobs_replayed":
			h.JobsReplayed = n
		}
	}
	if h.State == "" {
		return Health{}, fmt.Errorf("%w: health response missing state", ErrRemote)
	}
	return h, nil
}
