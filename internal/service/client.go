package service

import (
	"net"
	"sync"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

// Client is a connection to a PEDAL service. Safe for concurrent use
// (requests are serialised on the single connection, like a DOCA queue
// pair).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	// Timeout bounds each request/response round trip (write + read);
	// zero means no deadline. A timed-out exchange leaves the stream
	// desynchronised, so callers should close the client afterwards.
	Timeout time.Duration
}

// Dial connects to a PEDAL service at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip serialises one request/response exchange.
func (c *Client) roundTrip(req request) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeRequest(c.conn, req); err != nil {
		return nil, err
	}
	return readResponse(c.conn)
}

// Compress asks the service to compress data with the given design. The
// returned message carries the PEDAL header like a local Compress.
func (c *Client) Compress(d core.Design, dt core.DataType, data []byte) ([]byte, error) {
	return c.roundTrip(request{
		op:     opCompress,
		algo:   byte(d.Algo),
		engine: byte(d.Engine),
		dtype:  byte(dt),
		data:   data,
	})
}

// Decompress asks the service to decompress a PEDAL message.
func (c *Client) Decompress(engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error) {
	return c.roundTrip(request{
		op:     opDecompress,
		engine: byte(engine),
		dtype:  byte(dt),
		maxOut: int64(maxOut),
		data:   msg,
	})
}
