// Package service exposes a PEDAL library over TCP: the deployment where
// the DPU runs a compression daemon and host applications use it as a
// service (§VI: "the standalone PEDAL library is readily accessible to
// these applications"). The wire protocol is a simple length-prefixed
// binary request/response.
//
// Request:
//
//	op(1) algo(1) engine(1) dtype(1) maxOut(8 LE) len(8 LE) [deadline(8 LE)] payload
//
// The high bits of the op byte are flags: flagDeadline marks an extra
// 8-byte little-endian deadline hint (remaining nanoseconds of the
// caller's budget) between the fixed header and the payload, and
// flagBestEffort marks the request sheddable first under brownout.
// Both are opt-in on the client, so a legacy peer never sees them.
//
// Response:
//
//	status(1) len(8 LE) payload-or-error-text
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"pedal/internal/dpu"
)

// Protocol op codes.
const (
	opCompress   = 1
	opDecompress = 2
	// opHealth asks for the daemon's engine fault-domain status; the
	// response body is a text line of space-separated key=value pairs
	// (the /health endpoint of a DPU compression daemon).
	opHealth = 3
	// opPing is the keepalive probe. The server answers before admission
	// control, so a ping measures the daemon process being alive, not
	// whether it has spare engine capacity: an overloaded-but-live
	// service keeps its sessions, a dead one is detected even while its
	// last responses are queued.
	opPing = 4
	// opCompressChecked / opDecompressChecked are the hop-carried-checksum
	// variants: the request payload is crc(4 LE) || data and the statusOK
	// response body is crc(4 LE) || payload. The server verifies the
	// request digest before touching the compression path and the client
	// verifies the response digest, so corruption on either direction of
	// the service hop surfaces as a typed integrity error instead of
	// silently reaching the application.
	opCompressChecked   = 5
	opDecompressChecked = 6
)

// Op-byte flags (overload fault domain). Flag-free requests are exactly
// the legacy wire format; a client only sets a flag when it was
// explicitly configured to, so old servers never see one.
const (
	// flagDeadline marks an 8-byte little-endian deadline hint (the
	// remaining nanoseconds of the caller's end-to-end budget) carried
	// between the fixed header and the payload.
	flagDeadline = 0x80
	// flagBestEffort marks the request as low priority: the server's
	// brownout ladder sheds flagged requests first under overload.
	flagBestEffort = 0x40
	// opMask recovers the op code from a flagged op byte.
	opMask = 0x3f
)

// maxWireDeadline bounds a deadline hint accepted off the wire; larger
// values are treated as garbage and dropped (the request still runs,
// just without a caller deadline).
const maxWireDeadline = time.Hour

// checkedDigestLen is the fixed little-endian CRC32 prefix carried by
// checked requests and responses.
const checkedDigestLen = 4

// Response status codes.
const (
	statusOK  = 0
	statusErr = 1
	// statusBusy refuses a request under admission control: both the
	// concurrent-handler semaphore and the wait queue are full. The
	// request was read in full and the connection stays usable; the
	// client surfaces ErrBusy and may retry.
	statusBusy = 2
	// statusDeadline reports that the request's deadline budget expired
	// before the work completed; the partial work was abandoned at a
	// checkpoint and its buffers released. The client surfaces a typed
	// DeadlineError (errors.Is dpu.ErrDeadline).
	statusDeadline = 3
)

// maxPayload bounds a single request or response body.
const maxPayload = 1 << 30

// ErrRemote wraps an error string returned by the server.
var ErrRemote = errors.New("service: remote error")

// ErrBusy reports that the server shed the request under overload. The
// connection remains usable; callers may retry, ideally after a
// backoff.
var ErrBusy = errors.New("service: server busy")

// BusyError is a shed carrying the server's Retry-After hint. It
// matches errors.Is(err, ErrBusy), so existing callers that only test
// for ErrBusy keep working; hint-aware callers recover the duration via
// RetryAfter.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("service: server busy (retry after %v)", e.RetryAfter)
}

// Is makes errors.Is(err, ErrBusy) match.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// RetryAfterDuration exposes the hint to the RetryAfter helper.
func (e *BusyError) RetryAfterDuration() time.Duration { return e.RetryAfter }

// RetryAfter extracts a Retry-After hint from any error in err's chain
// (BusyError here, the fleet router's shed errors, ...). Zero means no
// hint.
func RetryAfter(err error) time.Duration {
	for err != nil {
		if h, ok := err.(interface{ RetryAfterDuration() time.Duration }); ok {
			return h.RetryAfterDuration()
		}
		err = errors.Unwrap(err)
	}
	return 0
}

// maxRetryAfter bounds a hint accepted off the wire; anything larger is
// treated as garbage and dropped (the shed still surfaces as ErrBusy).
const maxRetryAfter = time.Minute

// DeadlineError reports that a call's end-to-end deadline budget ran
// out — on the server (statusDeadline: the work was abandoned at a
// checkpoint) or on the client (a retry backoff would have overrun the
// caller's budget). It matches errors.Is(err, dpu.ErrDeadline), so the
// overload fault domain surfaces one typed error at every layer, and it
// carries the last Retry-After hint seen so callers that re-enqueue the
// work know how long the congestion is expected to last.
type DeadlineError struct {
	// RetryAfter is the last busy hint observed before the budget ran
	// out; zero when none was seen.
	RetryAfter time.Duration
	// Msg describes where the budget was exhausted.
	Msg string
}

func (e *DeadlineError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("service: deadline exceeded: %s (retry after %v)", e.Msg, e.RetryAfter)
	}
	return "service: deadline exceeded: " + e.Msg
}

// Is makes errors.Is(err, dpu.ErrDeadline) match.
func (e *DeadlineError) Is(target error) bool { return target == dpu.ErrDeadline }

// RetryAfterDuration exposes the hint to the RetryAfter helper.
func (e *DeadlineError) RetryAfterDuration() time.Duration { return e.RetryAfter }

// retryAfterBody encodes a positive Retry-After hint as a statusBusy
// body: 8 bytes, little-endian nanoseconds. An empty body (the pre-hint
// wire format) still decodes as a plain ErrBusy, keeping old and new
// peers compatible in both directions.
func retryAfterBody(d time.Duration) []byte {
	if d <= 0 {
		return nil
	}
	body := make([]byte, 8)
	binary.LittleEndian.PutUint64(body, uint64(d))
	return body
}

// parseRetryAfter decodes a statusBusy body into the typed busy error.
func parseRetryAfter(body []byte) error {
	if len(body) == 8 {
		d := time.Duration(binary.LittleEndian.Uint64(body))
		if d > 0 && d <= maxRetryAfter {
			return &BusyError{RetryAfter: d}
		}
	}
	return ErrBusy
}

type request struct {
	op     byte
	algo   byte
	engine byte
	dtype  byte
	maxOut int64
	data   []byte
	// deadline is the caller's remaining budget hint (flagDeadline);
	// zero means none was carried.
	deadline time.Duration
	// bestEffort marks the request sheddable first (flagBestEffort).
	bestEffort bool
	// deadlineAt is the server-side absolute deadline, stamped when the
	// request is read so queue wait counts against the budget.
	deadlineAt time.Time
}

// coalesceLimit bounds the payload size up to which header and body are
// copied into one buffer and written with a single Write (one syscall,
// no partial-write interleaving window). Larger bodies use writev-style
// vectored output instead of paying a large copy.
const coalesceLimit = 64 << 10

// writeFrame emits hdr followed by body as a single logical write: one
// buffered Write for small bodies, a vectored net.Buffers write (one
// writev syscall on TCP) for large ones.
func writeFrame(w io.Writer, hdr, body []byte) error {
	if len(body) == 0 {
		_, err := w.Write(hdr)
		return err
	}
	if len(body) <= coalesceLimit {
		buf := make([]byte, 0, len(hdr)+len(body))
		buf = append(buf, hdr...)
		buf = append(buf, body...)
		_, err := w.Write(buf)
		return err
	}
	bufs := net.Buffers{hdr, body}
	_, err := bufs.WriteTo(w)
	return err
}

func writeRequest(w io.Writer, r request) error {
	op := r.op
	extra := 0
	if r.deadline > 0 {
		op |= flagDeadline
		extra = 8
	}
	if r.bestEffort {
		op |= flagBestEffort
	}
	hdr := make([]byte, 4+8+8+extra)
	hdr[0], hdr[1], hdr[2], hdr[3] = op, r.algo, r.engine, r.dtype
	binary.LittleEndian.PutUint64(hdr[4:], uint64(r.maxOut))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(r.data)))
	if extra > 0 {
		binary.LittleEndian.PutUint64(hdr[20:], uint64(r.deadline))
	}
	return writeFrame(w, hdr, r.data)
}

// readRequestHeader reads and parses the fixed header (plus the deadline
// extension when flagged) and returns the request metadata and the body
// length still on the wire.
func readRequestHeader(r io.Reader) (request, uint64, error) {
	hdr := make([]byte, 4+8+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return request{}, 0, err
	}
	req := request{op: hdr[0] & opMask, algo: hdr[1], engine: hdr[2], dtype: hdr[3]}
	req.bestEffort = hdr[0]&flagBestEffort != 0
	req.maxOut = int64(binary.LittleEndian.Uint64(hdr[4:]))
	n := binary.LittleEndian.Uint64(hdr[12:])
	if n > maxPayload {
		return request{}, 0, fmt.Errorf("service: request payload %d too large", n)
	}
	if hdr[0]&flagDeadline != 0 {
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return request{}, 0, err
		}
		d := time.Duration(binary.LittleEndian.Uint64(ext[:]))
		if d > 0 && d <= maxWireDeadline {
			req.deadline = d
			req.deadlineAt = time.Now().Add(d)
		}
	}
	return req, n, nil
}

func readRequest(r io.Reader) (request, error) {
	req, n, err := readRequestHeader(r)
	if err != nil {
		return request{}, err
	}
	data, err := readBody(r, n)
	if err != nil {
		return request{}, err
	}
	req.data = data
	return req, nil
}

// bodyChunk is the allocation step for reading length-prefixed bodies.
const bodyChunk = 1 << 20

// readBody reads an n-byte body in bounded chunks, growing the buffer
// as bytes actually arrive. A forged length prefix therefore cannot
// make the peer allocate maxPayload up front — the connection fails at
// the first missing byte having bought at most one chunk.
func readBody(r io.Reader, n uint64) ([]byte, error) {
	if n == 0 {
		return []byte{}, nil
	}
	if n <= bodyChunk {
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, err
		}
		return body, nil
	}
	body := make([]byte, 0, bodyChunk)
	for uint64(len(body)) < n {
		step := n - uint64(len(body))
		if step > bodyChunk {
			step = bodyChunk
		}
		off := len(body)
		body = append(body, make([]byte, step)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return nil, err
		}
	}
	return body, nil
}

func writeResponse(w io.Writer, status byte, body []byte) error {
	hdr := make([]byte, 1+8)
	hdr[0] = status
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(body)))
	return writeFrame(w, hdr, body)
}

func readResponse(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 1+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[1:])
	if n > maxPayload {
		return nil, fmt.Errorf("service: response payload %d too large", n)
	}
	body, err := readBody(r, n)
	if err != nil {
		return nil, err
	}
	switch hdr[0] {
	case statusOK:
		return body, nil
	case statusBusy:
		return nil, parseRetryAfter(body)
	case statusDeadline:
		return nil, &DeadlineError{Msg: "server abandoned work: " + string(body)}
	default:
		return nil, fmt.Errorf("%w: %s", ErrRemote, body)
	}
}
