package service

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"

	"pedal/internal/checksum"
	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
)

// TestCheckedRoundTrip: the checked ops carry digests on both
// directions and round-trip byte-identically with the plain ops.
func TestCheckedRoundTrip(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := bytes.Repeat([]byte("verified service payload with hop digests "), 3000)
	d := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}
	msg, err := c.CompressChecked(d, core.TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg) >= len(data) {
		t.Fatalf("no compression: %d vs %d", len(msg), len(data))
	}
	out, err := c.DecompressChecked(hwmodel.CEngine, core.TypeBytes, msg, len(data)+64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("checked round trip mismatch")
	}
	// The health line now carries the integrity counters (all zero on a
	// clean run, but present and parseable).
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.VerifyMismatches != 0 || h.HopsRejected != 0 || h.CoresQuarantined != 0 {
		t.Fatalf("clean run reported integrity events: %+v", h)
	}
}

// TestCheckedRequestDigestMismatch: a request whose payload disagrees
// with its carried digest is rejected server-side before any
// compression work, with the detection counted.
func TestCheckedRequestDigestMismatch(t *testing.T) {
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lib.Finalize)
	s := NewServer(lib)
	payload := []byte("damaged in transit")
	data := make([]byte, checkedDigestLen+len(payload))
	binary.LittleEndian.PutUint32(data, checksum.CRC32(payload)^0xFFFF) // wrong digest
	copy(data[checkedDigestLen:], payload)
	_, _, err = s.execute(request{op: opCompressChecked, algo: byte(core.AlgoDeflate), engine: byte(hwmodel.SoC), data: data})
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("err = %v, want integrity.ErrCorrupt", err)
	}
	var ce *integrity.CorruptError
	if !errors.As(err, &ce) || ce.Hop != "service.request" {
		t.Fatalf("error detail = %+v", err)
	}
	body := s.HealthBody()
	h, perr := parseHealth(body)
	if perr != nil {
		t.Fatal(perr)
	}
	if h.HopsRejected != 1 {
		t.Fatalf("hops_rejected = %d, want 1 (health line %q)", h.HopsRejected, body)
	}
}

// TestCheckedResponseDigestMismatch: the client rejects a response body
// whose bytes disagree with the carried digest — a daemon (or the wire)
// corrupting responses cannot hand the application damaged bytes.
func TestCheckedResponseDigestMismatch(t *testing.T) {
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lib.Finalize)
	s := NewServer(lib)
	s.execHook = func(request) ([]byte, error) {
		body := make([]byte, checkedDigestLen+8)
		binary.LittleEndian.PutUint32(body, 0x12345678) // not the CRC of 8 zero bytes
		return body, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(s.Close)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.CompressChecked(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}, core.TypeBytes, []byte("x"))
	if !errors.Is(err, integrity.ErrCorrupt) {
		t.Fatalf("err = %v, want integrity.ErrCorrupt", err)
	}
	var ce *integrity.CorruptError
	if !errors.As(err, &ce) || ce.Hop != "service.response" {
		t.Fatalf("error detail = %+v", err)
	}
}
