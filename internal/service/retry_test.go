package service

import (
	"errors"
	"testing"
	"time"

	"pedal/internal/stats"
)

// TestClientRetriesBusyWithinBudget holds the server's only slot, lets
// a second client hit statusBusy, and checks its retry policy carries
// the request through once the slot frees.
func TestClientRetriesBusyWithinBudget(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	addr, s := startServerWith(t, func(s *Server) {
		s.MaxConcurrent = 1
		s.QueueDepth = -1
		s.RetryAfterHint = 2 * time.Millisecond
		s.execHook = func(req request) ([]byte, error) {
			entered <- struct{}{}
			<-gate
			return append([]byte(nil), req.data...), nil
		}
	})
	slow, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slowDone := make(chan error, 1)
	go func() { slowDone <- compressReq(slow, []byte("holds the slot")) }()
	<-entered

	retrier, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer retrier.Close()
	retrier.Retry = &RetryPolicy{Budget: 50, Base: time.Millisecond, Max: 5 * time.Millisecond}
	go func() {
		// Free the slot partway through the retry budget.
		waitCounter(t, s, stats.CounterSheds, 2)
		close(gate)
	}()
	if err := compressReq(retrier, []byte("retried")); err != nil {
		t.Fatalf("retry policy did not carry the request through: %v", err)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slot holder: %v", err)
	}
	if got := s.Stats().Count(stats.CounterSheds); got < 2 {
		t.Fatalf("sheds = %d, want the retrier to have been shed at least twice", got)
	}
}

// TestClientRetryBudgetExhausted pins that a saturated server still
// surfaces ErrBusy once the budget runs out — bounded retry, no hang.
func TestClientRetryBudgetExhausted(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	entered := make(chan struct{}, 8)
	addr, s := startServerWith(t, func(s *Server) {
		s.MaxConcurrent = 1
		s.QueueDepth = -1
		s.execHook = func(req request) ([]byte, error) {
			entered <- struct{}{}
			<-gate
			return nil, nil
		}
	})
	slow, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	go compressReq(slow, []byte("holds the slot forever"))
	<-entered

	retrier, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer retrier.Close()
	retrier.Retry = &RetryPolicy{Budget: 3, Base: 100 * time.Microsecond, Max: time.Millisecond}
	if err := compressReq(retrier, []byte("doomed")); !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy after budget exhaustion, got %v", err)
	}
	if got := s.Stats().Count(stats.CounterSheds); got != 4 {
		t.Fatalf("sheds = %d, want 4 (1 attempt + 3 retries)", got)
	}
}

// TestBusyCarriesRetryAfterHint checks the hint survives the wire when
// the server is configured with one.
func TestBusyCarriesRetryAfterHint(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	entered := make(chan struct{}, 8)
	addr, _ := startServerWith(t, func(s *Server) {
		s.MaxConcurrent = 1
		s.QueueDepth = -1
		s.RetryAfterHint = 4 * time.Millisecond
		s.execHook = func(req request) ([]byte, error) {
			entered <- struct{}{}
			<-gate
			return nil, nil
		}
	})
	slow, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	go compressReq(slow, []byte("holds"))
	<-entered

	shed, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer shed.Close()
	err = compressReq(shed, []byte("shed me"))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	if got := RetryAfter(err); got != 4*time.Millisecond {
		t.Fatalf("Retry-After = %v, want 4ms", got)
	}
}
