package service

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// fuzzCap bounds decoded payloads during fuzzing so the corpus cannot
// make a single iteration allocate gigabytes.
const fuzzCap = 1 << 20

// FuzzProtocol round-trips the wire framing: whatever the fuzzer feeds
// the decoders must either fail cleanly or decode into a frame that
// re-encodes and re-decodes to the same value. This is the framing the
// fleet router, the keepalive, and every client share — a desync here
// corrupts all of them at once.
func FuzzProtocol(f *testing.F) {
	// Seeds: a valid request, a valid OK response, a busy response with
	// a Retry-After hint, an error response, and a forged huge length.
	var req bytes.Buffer
	writeRequest(&req, request{op: opCompress, algo: 1, engine: 2, dtype: 1, maxOut: 64, data: []byte("payload")})
	f.Add(req.Bytes())
	var ok bytes.Buffer
	writeResponse(&ok, statusOK, []byte("result"))
	f.Add(ok.Bytes())
	var busy bytes.Buffer
	writeResponse(&busy, statusBusy, retryAfterBody(5*time.Millisecond))
	f.Add(busy.Bytes())
	var rerr bytes.Buffer
	writeResponse(&rerr, statusErr, []byte("bad engine"))
	f.Add(rerr.Bytes())
	huge := make([]byte, 20)
	binary.LittleEndian.PutUint64(huge[12:], 1<<62)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRequestRoundTrip(t, data)
		fuzzResponseRoundTrip(t, data)
	})
}

func fuzzRequestRoundTrip(t *testing.T, data []byte) {
	req, err := readRequest(bytes.NewReader(data))
	if err != nil {
		return // malformed input must only error, never panic or hang
	}
	if len(req.data) > fuzzCap {
		return
	}
	var buf bytes.Buffer
	if err := writeRequest(&buf, req); err != nil {
		t.Fatalf("re-encode decoded request: %v", err)
	}
	again, err := readRequest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-decode encoded request: %v", err)
	}
	if again.op != req.op || again.algo != req.algo || again.engine != req.engine ||
		again.dtype != req.dtype || again.maxOut != req.maxOut || !bytes.Equal(again.data, req.data) {
		t.Fatalf("request round trip changed the frame: %+v != %+v", again, req)
	}
}

func fuzzResponseRoundTrip(t *testing.T, data []byte) {
	body, err := readResponse(bytes.NewReader(data))
	switch {
	case err == nil:
		if len(body) > fuzzCap {
			return
		}
		var buf bytes.Buffer
		if werr := writeResponse(&buf, statusOK, body); werr != nil {
			t.Fatalf("re-encode OK response: %v", werr)
		}
		again, rerr := readResponse(bytes.NewReader(buf.Bytes()))
		if rerr != nil || !bytes.Equal(again, body) {
			t.Fatalf("OK response round trip: %v (%q != %q)", rerr, again, body)
		}
	case errors.Is(err, ErrBusy):
		// A busy decode must re-encode to an identical busy decode,
		// hint included.
		hint := RetryAfter(err)
		var buf bytes.Buffer
		if werr := writeResponse(&buf, statusBusy, retryAfterBody(hint)); werr != nil {
			t.Fatalf("re-encode busy response: %v", werr)
		}
		_, rerr := readResponse(bytes.NewReader(buf.Bytes()))
		if !errors.Is(rerr, ErrBusy) || RetryAfter(rerr) != hint {
			t.Fatalf("busy round trip lost the hint: %v (hint %v != %v)", rerr, RetryAfter(rerr), hint)
		}
	case errors.Is(err, ErrRemote):
		// Remote errors carry the server's text; nothing more to check
		// beyond the decode not panicking.
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
	default:
		// Length-bound rejections and similar: fine, as long as they
		// are errors and not hangs.
	}
}

// TestRetryAfterCodec pins the busy-hint wire format: 8 LE nanosecond
// bytes, empty body compatible in both directions, garbage tolerated.
func TestRetryAfterCodec(t *testing.T) {
	if body := retryAfterBody(0); body != nil {
		t.Fatalf("zero hint must encode as empty body, got %v", body)
	}
	if err := parseRetryAfter(nil); err != ErrBusy {
		t.Fatalf("empty busy body must decode as plain ErrBusy, got %v", err)
	}
	err := parseRetryAfter(retryAfterBody(7 * time.Millisecond))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("hinted busy must still match ErrBusy, got %v", err)
	}
	if got := RetryAfter(err); got != 7*time.Millisecond {
		t.Fatalf("hint = %v, want 7ms", got)
	}
	// Garbage hints (wrong size, absurd values) degrade to plain busy.
	if err := parseRetryAfter([]byte{1, 2, 3}); err != ErrBusy {
		t.Fatalf("short body: %v", err)
	}
	if err := parseRetryAfter(retryAfterBody(time.Hour)); err != ErrBusy {
		t.Fatalf("oversized hint must be dropped, got %v", err)
	}
	if got := RetryAfter(errors.New("plain")); got != 0 {
		t.Fatalf("unhinted error yields %v, want 0", got)
	}
}
