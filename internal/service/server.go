package service

import (
	"errors"
	"log"
	"net"
	"sync"
	"time"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

// Connection deadline defaults. A stalled peer must not wedge a handler
// goroutine forever.
const (
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// Server serves PEDAL compression over a listener. One PEDAL library is
// shared by all connections, the way a DPU daemon would share the
// device.
type Server struct {
	lib *core.Library
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	// Logf receives per-connection error logs; nil silences them.
	Logf func(format string, args ...any)
	// IdleTimeout bounds the wait for the next request on an open
	// connection; WriteTimeout bounds each response write. Zero selects
	// the defaults above; negative disables the deadline.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
}

// NewServer wraps an initialised library. The caller retains ownership
// of lib (Close does not finalize it).
func NewServer(lib *core.Library) *Server {
	return &Server{lib: lib, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes. Temporary accept
// errors (e.g. fd exhaustion) are retried with exponential backoff
// instead of killing the loop. It returns the accept error that
// terminated the loop (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() && !s.isClosed() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.logf("service: accept error (retrying in %v): %v", backoff, err)
				time.Sleep(backoff)
				continue
			}
			s.wg.Wait()
			return err
		}
		backoff = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Close stops accepting and closes active connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// timeout resolves a configured deadline: zero → def, negative → off.
func timeout(configured, def time.Duration) time.Duration {
	if configured == 0 {
		return def
	}
	if configured < 0 {
		return 0
	}
	return configured
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	idle := timeout(s.IdleTimeout, DefaultIdleTimeout)
	write := timeout(s.WriteTimeout, DefaultWriteTimeout)
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		req, err := readRequest(conn)
		if err != nil {
			return // EOF, deadline, or broken connection: session over
		}
		body, err := s.execute(req)
		if write > 0 {
			conn.SetWriteDeadline(time.Now().Add(write))
		}
		if err != nil {
			if werr := writeResponse(conn, statusErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if err := writeResponse(conn, statusOK, body); err != nil {
			s.logf("service: write response: %v", err)
			return
		}
	}
}

func (s *Server) execute(req request) ([]byte, error) {
	engine := hwmodel.Engine(req.engine)
	if engine != hwmodel.SoC && engine != hwmodel.CEngine {
		return nil, errors.New("bad engine")
	}
	dt := core.DataType(req.dtype)
	switch req.op {
	case opCompress:
		d := core.Design{Algo: core.AlgoID(req.algo), Engine: engine}
		msg, _, err := s.lib.Compress(d, dt, req.data)
		return msg, err
	case opDecompress:
		out, _, err := s.lib.Decompress(engine, dt, req.data, int(req.maxOut))
		return out, err
	default:
		return nil, errors.New("bad op")
	}
}

// ListenAndServe is the convenience entry used by cmd/pedald.
func ListenAndServe(addr string, lib *core.Library) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := NewServer(lib)
	s.Logf = log.Printf
	return s.Serve(ln)
}
