package service

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/stats"
	"pedal/internal/trace"
)

// Connection deadline defaults. A stalled peer must not wedge a handler
// goroutine forever.
const (
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// DefaultQueueDepth is the admission wait-queue capacity when QueueDepth
// is zero.
const DefaultQueueDepth = 16

// connState tracks one connection's handler for graceful drain: busy
// means the handler is between a fully read request and its response,
// so Shutdown must let it finish; idle handlers are blocked in
// readRequest and get their read deadline fired instead.
type connState struct {
	busy bool
}

// Server serves PEDAL compression over a listener. One PEDAL library is
// shared by all connections, the way a DPU daemon would share the
// device.
//
// Admission control mirrors a real DPU daemon with a fixed engine-queue
// depth: at most MaxConcurrent requests execute at once, up to
// QueueDepth more wait, and anything beyond that is shed immediately
// with a statusBusy response (the client sees ErrBusy, never a hang or
// a dropped byte).
type Server struct {
	lib *core.Library
	ln  net.Listener

	mu       sync.Mutex
	closed   bool
	draining bool
	conns    map[net.Conn]*connState
	wg       sync.WaitGroup

	admitOnce sync.Once
	sem       chan struct{} // MaxConcurrent execution slots
	queue     chan struct{} // QueueDepth admission waiters

	bd *stats.Breakdown

	// Logf receives per-connection error logs; nil silences them.
	Logf func(format string, args ...any)
	// IdleTimeout bounds the wait for the next request on an open
	// connection; WriteTimeout bounds each response write. Zero selects
	// the defaults above; negative disables the deadline.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxConcurrent bounds requests executing at once. Zero means
	// GOMAXPROCS; negative disables admission control entirely.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot before
	// the server sheds with statusBusy. Zero means DefaultQueueDepth;
	// negative means no queue (shed as soon as all slots are busy).
	QueueDepth int
	// Tracer, when set, records shed/drain/panic events alongside the
	// hardware timeline. A nil tracer is a no-op.
	Tracer *trace.Tracer
	// ExecDelay stalls each admitted request for the given duration
	// before executing it, while holding its admission slot. Chaos and
	// soak harnesses use it to model a slow or contended engine and
	// drive the server into sustained overload deterministically. To
	// change the delay while the server is running use SetExecDelay.
	ExecDelay time.Duration
	// execDelay overrides ExecDelay when non-zero: nanoseconds, with -1
	// meaning "explicitly zero". Lets fault injectors flip a live
	// server between stalled and healthy without racing the handlers.
	execDelay atomic.Int64
	// RetryAfterHint, when positive, is carried on every statusBusy
	// response so clients back off for at least that long instead of
	// guessing. Zero keeps the pre-hint wire format (empty busy body).
	RetryAfterHint time.Duration

	// execHook replaces execute when non-nil (tests use it to inject
	// slow or panicking handlers).
	execHook func(request) ([]byte, error)
}

// NewServer wraps an initialised library. The caller retains ownership
// of lib (Close does not finalize it).
func NewServer(lib *core.Library) *Server {
	return &Server{
		lib:   lib,
		conns: make(map[net.Conn]*connState),
		bd:    stats.NewBreakdown(),
	}
}

// Stats exposes the server's request/shed/panic/drain counters.
func (s *Server) Stats() *stats.Breakdown { return s.bd }

// SetExecDelay changes the per-request execution stall on a running
// server (atomically — handlers may be mid-request). Chaos harnesses
// use it to wedge and un-wedge a live shard.
func (s *Server) SetExecDelay(d time.Duration) {
	if d <= 0 {
		s.execDelay.Store(-1)
		return
	}
	s.execDelay.Store(int64(d))
}

// currentExecDelay resolves the effective stall: the atomic override if
// SetExecDelay was ever called, the ExecDelay field otherwise.
func (s *Server) currentExecDelay() time.Duration {
	switch v := s.execDelay.Load(); {
	case v > 0:
		return time.Duration(v)
	case v < 0:
		return 0
	default:
		return s.ExecDelay
	}
}

// initAdmission resolves the semaphore and queue once, at first use, so
// MaxConcurrent/QueueDepth can be set any time before Serve.
func (s *Server) initAdmission() {
	s.admitOnce.Do(func() {
		mc := s.MaxConcurrent
		if mc == 0 {
			mc = runtime.GOMAXPROCS(0)
		}
		if mc > 0 {
			s.sem = make(chan struct{}, mc)
		}
		qd := s.QueueDepth
		if qd == 0 {
			qd = DefaultQueueDepth
		}
		if s.sem != nil && qd > 0 {
			s.queue = make(chan struct{}, qd)
		}
	})
}

// admit claims an execution slot. It returns a release func and true on
// success; false means both the slots and the wait queue are full and
// the request must be shed.
func (s *Server) admit() (func(), bool) {
	s.initAdmission()
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	if s.queue == nil {
		return nil, false
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, false
	}
	// Queued: wait (bounded by the holders finishing) for a slot.
	s.sem <- struct{}{}
	<-s.queue
	return func() { <-s.sem }, true
}

// Serve accepts connections until the listener closes. Temporary accept
// errors (e.g. fd exhaustion) are retried with exponential backoff
// instead of killing the loop. It returns the accept error that
// terminated the loop (net.ErrClosed after Close or Shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.initAdmission()
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() && !s.isClosed() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.logf("service: accept error (retrying in %v): %v", backoff, err)
				time.Sleep(backoff)
				continue
			}
			s.wg.Wait()
			return err
		}
		backoff = 0
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Close stops accepting and closes active connections immediately,
// abandoning in-flight requests. Prefer Shutdown for a graceful drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Shutdown gracefully drains the server: it stops accepting new
// connections, lets every in-flight request finish and write its
// response, then closes. Idle connections (blocked waiting for the next
// request) are released immediately. If ctx expires first, remaining
// connections are closed abruptly and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	s.ln = nil
	var inflight int
	// Fire the read deadline of idle handlers so their blocking
	// readRequest returns now; busy handlers finish their response and
	// then observe draining at the top of their loop. Both the poke and
	// the handler's own deadline/busy transitions happen under s.mu, so
	// no request can slip between the two states unobserved.
	for c, st := range s.conns {
		if st.busy {
			inflight++
		} else {
			c.SetReadDeadline(time.Now())
		}
	}
	s.bd.CountAdd(stats.CounterDrained, uint64(inflight))
	s.mu.Unlock()
	if !alreadyDraining {
		s.Tracer.Record(trace.Event{Engine: "service", Op: "drain", InBytes: inflight})
	}
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		// Abandon the drain: close the remaining connections. Handlers
		// blocked on connection I/O unwind immediately; a handler wedged
		// inside execute is not waited for (mirroring net/http).
		s.mu.Lock()
		s.closed = true
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.draining
}

// timeout resolves a configured deadline: zero → def, negative → off.
func timeout(configured, def time.Duration) time.Duration {
	if configured == 0 {
		return def
	}
	if configured < 0 {
		return 0
	}
	return configured
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	idle := timeout(s.IdleTimeout, DefaultIdleTimeout)
	write := timeout(s.WriteTimeout, DefaultWriteTimeout)
	s.mu.Lock()
	st := s.conns[conn]
	s.mu.Unlock()
	if st == nil {
		return // raced with Close
	}
	respond := func(status byte, body []byte) error {
		if write > 0 {
			conn.SetWriteDeadline(time.Now().Add(write))
		}
		return writeResponse(conn, status, body)
	}
	for {
		// Mark idle and arm the read deadline in the same critical
		// section where Shutdown checks busy and pokes deadlines: either
		// Shutdown sees us idle and fires the deadline, or we see
		// draining and exit — a request can never be read after drain
		// without being served.
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			return
		}
		st.busy = false
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		s.mu.Unlock()
		req, err := readRequest(conn)
		if err != nil {
			return // EOF, deadline, drain poke, or broken connection
		}
		s.mu.Lock()
		st.busy = true
		if s.draining {
			// The request raced past the drain poke (bytes were already
			// buffered); it still gets served and counted as drained.
			s.bd.Inc(stats.CounterDrained)
		}
		s.mu.Unlock()
		if req.op == opPing {
			// Keepalive: answer before admission so overload never
			// masquerades as death (a shed ping would let a busy spell
			// tear down every session at once).
			if err := respond(statusOK, nil); err != nil {
				return
			}
			continue
		}
		release, ok := s.admit()
		if !ok {
			s.bd.Inc(stats.CounterSheds)
			s.Tracer.Record(trace.Event{Engine: "service", Op: "shed", InBytes: len(req.data), Err: "busy"})
			if err := respond(statusBusy, retryAfterBody(s.RetryAfterHint)); err != nil {
				return
			}
			continue
		}
		body, err := s.execute(req)
		release()
		s.bd.Inc(stats.CounterRequests)
		if err != nil {
			if werr := respond(statusErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if err := respond(statusOK, body); err != nil {
			s.logf("service: write response: %v", err)
			return
		}
	}
}

// execute runs one request against the library. A panicking handler is
// recovered into a statusErr response so one poisoned request cannot
// take down the daemon or its other connections.
func (s *Server) execute(req request) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.bd.Inc(stats.CounterPanics)
			s.logf("service: handler panic: %v\n%s", r, debug.Stack())
			s.Tracer.Record(trace.Event{Engine: "service", Op: "panic", Err: fmt.Sprint(r)})
			body = nil
			err = fmt.Errorf("internal error: handler panic: %v", r)
		}
	}()
	if d := s.currentExecDelay(); d > 0 {
		time.Sleep(d)
	}
	if s.execHook != nil {
		return s.execHook(req)
	}
	if req.op == opHealth {
		// Health carries no payload and no engine selector.
		return s.HealthBody(), nil
	}
	engine := hwmodel.Engine(req.engine)
	if engine != hwmodel.SoC && engine != hwmodel.CEngine {
		return nil, errors.New("bad engine")
	}
	dt := core.DataType(req.dtype)
	switch req.op {
	case opCompress:
		d := core.Design{Algo: core.AlgoID(req.algo), Engine: engine}
		msg, _, err := s.lib.Compress(d, dt, req.data)
		return msg, err
	case opDecompress:
		out, _, err := s.lib.Decompress(engine, dt, req.data, int(req.maxOut))
		return out, err
	case opCompressChecked:
		payload, err := s.checkRequestDigest(req, "compress")
		if err != nil {
			return nil, err
		}
		d := core.Design{Algo: core.AlgoID(req.algo), Engine: engine}
		msg, rep, err := s.lib.Compress(d, dt, payload)
		if err != nil {
			return nil, err
		}
		return prependDigest(rep.MsgCRC, msg), nil
	case opDecompressChecked:
		payload, err := s.checkRequestDigest(req, "decompress")
		if err != nil {
			return nil, err
		}
		out, rep, err := s.lib.Decompress(engine, dt, payload, int(req.maxOut))
		if err != nil {
			return nil, err
		}
		return prependDigest(rep.MsgCRC, out), nil
	default:
		return nil, errors.New("bad op")
	}
}

// checkRequestDigest strips and verifies the crc(4 LE) prefix of a
// checked request. A mismatch means the request bytes were damaged on
// the host→daemon hop: the request is rejected with a typed integrity
// error before any compression work, and the daemon's hops_rejected
// counter records the detection.
func (s *Server) checkRequestDigest(req request, segment string) ([]byte, error) {
	if len(req.data) < checkedDigestLen {
		return nil, errors.New("checked request missing digest")
	}
	want := binary.LittleEndian.Uint32(req.data)
	payload := req.data[checkedDigestLen:]
	if got := checksum.CRC32(payload); got != want {
		s.bd.Inc(stats.CounterHopsRejected)
		return nil, &integrity.CorruptError{Hop: "service.request", Segment: segment, Want: want, Got: got}
	}
	return payload, nil
}

// prependDigest builds a checked response body: the source-computed CRC
// (MsgCRC from the library, not recomputed at the wire) followed by the
// payload.
func prependDigest(crc uint32, payload []byte) []byte {
	body := make([]byte, checkedDigestLen, checkedDigestLen+len(payload))
	binary.LittleEndian.PutUint32(body, crc)
	return append(body, payload...)
}

// HealthBody renders the engine fault-domain status as the health
// endpoint's key=value text line. Exposed so cmd/pedald can log the same
// line at startup and drain.
func (s *Server) HealthBody() []byte {
	h := s.lib.EngineHealth()
	tb := s.lib.TotalBreakdown()
	replayed := tb.Count(stats.CounterJobsReplayed)
	// The integrity counters fold the library's detections (verified
	// compression, pipeline hops) with the daemon's own wire-hop
	// rejections — one line answers "has this daemon ever seen silent
	// data corruption".
	return []byte(fmt.Sprintf(
		"state=%s inflight=%d stalls=%d wedges=%d resets=%d reset_failures=%d expired_dropped=%d lost_jobs=%d jobs_replayed=%d verify_mismatches=%d hops_rejected=%d cores_quarantined=%d scalar_fallbacks=%d",
		h.State, h.Inflight, h.Stalls, h.Wedges, h.Resets, h.ResetFailures,
		h.ExpiredDropped, h.LostJobs, replayed,
		tb.Count(stats.CounterVerifyMismatches),
		tb.Count(stats.CounterHopsRejected)+s.bd.Count(stats.CounterHopsRejected),
		tb.Count(stats.CounterCoresQuarantined),
		tb.Count(stats.CounterScalarFallbacks)))
}

// ListenAndServe is the convenience entry used by cmd/pedald.
func ListenAndServe(addr string, lib *core.Library) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := NewServer(lib)
	s.Logf = log.Printf
	return s.Serve(ln)
}
