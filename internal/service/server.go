package service

import (
	"errors"
	"log"
	"net"
	"sync"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

// Server serves PEDAL compression over a listener. One PEDAL library is
// shared by all connections, the way a DPU daemon would share the
// device.
type Server struct {
	lib *core.Library
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	// Logf receives per-connection error logs; nil silences them.
	Logf func(format string, args ...any)
}

// NewServer wraps an initialised library. The caller retains ownership
// of lib (Close does not finalize it).
func NewServer(lib *core.Library) *Server {
	return &Server{lib: lib, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes. It returns the
// accept error that terminated the loop (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Close stops accepting and closes active connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	for {
		req, err := readRequest(conn)
		if err != nil {
			return // EOF or broken connection: session over
		}
		body, err := s.execute(req)
		if err != nil {
			if werr := writeResponse(conn, statusErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if err := writeResponse(conn, statusOK, body); err != nil {
			s.logf("service: write response: %v", err)
			return
		}
	}
}

func (s *Server) execute(req request) ([]byte, error) {
	engine := hwmodel.Engine(req.engine)
	if engine != hwmodel.SoC && engine != hwmodel.CEngine {
		return nil, errors.New("bad engine")
	}
	dt := core.DataType(req.dtype)
	switch req.op {
	case opCompress:
		d := core.Design{Algo: core.AlgoID(req.algo), Engine: engine}
		msg, _, err := s.lib.Compress(d, dt, req.data)
		return msg, err
	case opDecompress:
		out, _, err := s.lib.Decompress(engine, dt, req.data, int(req.maxOut))
		return out, err
	default:
		return nil, errors.New("bad op")
	}
}

// ListenAndServe is the convenience entry used by cmd/pedald.
func ListenAndServe(addr string, lib *core.Library) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := NewServer(lib)
	s.Logf = log.Printf
	return s.Serve(ln)
}
