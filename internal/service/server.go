package service

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/core"
	"pedal/internal/dpu"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/stats"
	"pedal/internal/trace"
)

// Connection deadline defaults. A stalled peer must not wedge a handler
// goroutine forever.
const (
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// DefaultQueueDepth is the admission wait-queue capacity when QueueDepth
// is zero.
const DefaultQueueDepth = 16

// connState tracks one connection's handler for graceful drain: busy
// means the handler is between a fully read request and its response,
// so Shutdown must let it finish; idle handlers are blocked in
// readRequest and get their read deadline fired instead.
type connState struct {
	busy bool
}

// Server serves PEDAL compression over a listener. One PEDAL library is
// shared by all connections, the way a DPU daemon would share the
// device.
//
// Admission control mirrors a real DPU daemon with a fixed engine-queue
// depth: at most MaxConcurrent requests execute at once, up to
// QueueDepth more wait, and anything beyond that is shed immediately
// with a statusBusy response (the client sees ErrBusy, never a hang or
// a dropped byte).
type Server struct {
	lib *core.Library
	ln  net.Listener

	mu       sync.Mutex
	closed   bool
	draining bool
	conns    map[net.Conn]*connState
	wg       sync.WaitGroup

	admitOnce sync.Once
	sem       chan struct{} // MaxConcurrent execution slots
	queue     chan struct{} // QueueDepth admission waiters

	bd *stats.Breakdown

	// Logf receives per-connection error logs; nil silences them.
	Logf func(format string, args ...any)
	// IdleTimeout bounds the wait for the next request on an open
	// connection; WriteTimeout bounds each response write. Zero selects
	// the defaults above; negative disables the deadline.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxConcurrent bounds requests executing at once. Zero means
	// GOMAXPROCS; negative disables admission control entirely.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot before
	// the server sheds with statusBusy. Zero means DefaultQueueDepth;
	// negative means no queue (shed as soon as all slots are busy).
	QueueDepth int
	// Tracer, when set, records shed/drain/panic events alongside the
	// hardware timeline. A nil tracer is a no-op.
	Tracer *trace.Tracer
	// ExecDelay stalls each admitted request for the given duration
	// before executing it, while holding its admission slot. Chaos and
	// soak harnesses use it to model a slow or contended engine and
	// drive the server into sustained overload deterministically. To
	// change the delay while the server is running use SetExecDelay.
	ExecDelay time.Duration
	// execDelay overrides ExecDelay when non-zero: nanoseconds, with -1
	// meaning "explicitly zero". Lets fault injectors flip a live
	// server between stalled and healthy without racing the handlers.
	execDelay atomic.Int64
	// RetryAfterHint, when positive, is carried on every statusBusy
	// response so clients back off for at least that long instead of
	// guessing. Zero keeps the pre-hint wire format (empty busy body) —
	// unless the server is under pool or queue pressure, in which case a
	// load-scaled hint is synthesised so clients back off harder exactly
	// when the daemon needs them to (cooperative backpressure).
	RetryAfterHint time.Duration
	// DefaultDeadline bounds requests that carry no deadline hint of
	// their own, and acts as a ceiling on hints that are looser. Zero
	// leaves hint-free requests unbounded (classic behaviour).
	DefaultDeadline time.Duration
	// defaultDeadline overrides DefaultDeadline when non-zero:
	// nanoseconds, with -1 meaning "explicitly zero". Lets fault
	// injectors storm a live server with tiny deadlines without racing
	// the handlers (the SetExecDelay pattern).
	defaultDeadline atomic.Int64

	// rung is the brownout ladder state (rungHealthy..rungSerial),
	// stepped by load observed at request admission.
	rung atomic.Int32

	// execHook replaces execute when non-nil (tests use it to inject
	// slow or panicking handlers).
	execHook func(request) ([]byte, error)
}

// NewServer wraps an initialised library. The caller retains ownership
// of lib (Close does not finalize it).
func NewServer(lib *core.Library) *Server {
	return &Server{
		lib:   lib,
		conns: make(map[net.Conn]*connState),
		bd:    stats.NewBreakdown(),
	}
}

// Stats exposes the server's request/shed/panic/drain counters.
func (s *Server) Stats() *stats.Breakdown { return s.bd }

// SetExecDelay changes the per-request execution stall on a running
// server (atomically — handlers may be mid-request). Chaos harnesses
// use it to wedge and un-wedge a live shard.
func (s *Server) SetExecDelay(d time.Duration) {
	if d <= 0 {
		s.execDelay.Store(-1)
		return
	}
	s.execDelay.Store(int64(d))
}

// currentExecDelay resolves the effective stall: the atomic override if
// SetExecDelay was ever called, the ExecDelay field otherwise.
func (s *Server) currentExecDelay() time.Duration {
	switch v := s.execDelay.Load(); {
	case v > 0:
		return time.Duration(v)
	case v < 0:
		return 0
	default:
		return s.ExecDelay
	}
}

// SetDefaultDeadline changes the server-side deadline ceiling on a
// running server (atomically — handlers may be mid-request). Chaos
// harnesses use it to drive a deadline storm against a live shard.
func (s *Server) SetDefaultDeadline(d time.Duration) {
	if d <= 0 {
		s.defaultDeadline.Store(-1)
		return
	}
	s.defaultDeadline.Store(int64(d))
}

// currentDefaultDeadline resolves the effective ceiling: the atomic
// override if SetDefaultDeadline was ever called, the DefaultDeadline
// field otherwise.
func (s *Server) currentDefaultDeadline() time.Duration {
	switch v := s.defaultDeadline.Load(); {
	case v > 0:
		return time.Duration(v)
	case v < 0:
		return 0
	default:
		return s.DefaultDeadline
	}
}

// Brownout ladder rungs (overload fault domain). Load — the worse of
// pool-budget occupancy and admission-queue occupancy — steps the
// server up the ladder: first low-priority requests are shed, then the
// chunk pipeline's concurrency is halved, finally it falls back to
// serial. Each rung trades throughput for bounded memory instead of
// failing unpredictably.
const (
	rungHealthy = iota
	rungShedBestEffort
	rungShrinkPipeline
	rungSerial
)

// Brownout step-up thresholds per rung; a rung steps back down one
// level once load clears its own threshold by brownoutHysteresis.
var brownoutUp = [4]float64{0, 0.70, 0.85, 0.95}

const brownoutHysteresis = 0.15

// defaultPressureRetryAfter is the synthesised Retry-After hint when
// the server sheds under pressure but RetryAfterHint was not set.
const defaultPressureRetryAfter = 2 * time.Millisecond

// loadFactor measures overload pressure in [0,1+): the worse of pool
// budget occupancy (held/budget) and admission queue occupancy.
func (s *Server) loadFactor() float64 {
	var load float64
	if snap := s.lib.PoolSnapshot(); snap.Budget > 0 {
		load = float64(snap.HeldBytes) / float64(snap.Budget)
	}
	s.initAdmission()
	if s.queue != nil {
		if q := float64(len(s.queue)) / float64(cap(s.queue)); q > load {
			load = q
		}
	}
	return load
}

// pressureHint scales the Retry-After hint by current load, so a busy
// response under deep pressure asks for a longer backoff than one at
// the edge of capacity.
func (s *Server) pressureHint() time.Duration {
	h := s.RetryAfterHint
	load := s.loadFactor()
	if h <= 0 {
		if load < brownoutUp[rungShedBestEffort] {
			return 0
		}
		h = defaultPressureRetryAfter
	}
	if load > 0 {
		scale := load
		if scale > 1 {
			scale = 1
		}
		h += time.Duration(scale * float64(3*h))
	}
	if h > maxRetryAfter {
		h = maxRetryAfter
	}
	return h
}

// maybeBrownout re-evaluates the brownout rung against current load and
// applies the rung's pipeline concurrency cap. Returns the rung in
// effect for this request.
func (s *Server) maybeBrownout() int {
	load := s.loadFactor()
	cur := int(s.rung.Load())
	want := cur
	if cur < rungSerial && load >= brownoutUp[cur+1] {
		for want < rungSerial && load >= brownoutUp[want+1] {
			want++
		}
	} else if cur > rungHealthy && load < brownoutUp[cur]-brownoutHysteresis {
		want--
	}
	if want != cur && s.rung.CompareAndSwap(int32(cur), int32(want)) {
		s.applyRung(want, cur, load)
		return want
	}
	return cur
}

// applyRung installs a rung's pipeline concurrency cap and records the
// transition (brownout steps count once per upward transition).
func (s *Server) applyRung(want, cur int, load float64) {
	pl := s.lib.Pipeline()
	switch want {
	case rungSerial:
		pl.SetMaxConcurrency(1)
	case rungShrinkPipeline:
		pl.SetMaxConcurrency((pl.Workers() + 1) / 2)
	default:
		pl.SetMaxConcurrency(0)
	}
	op := "brownout_clear"
	if want > cur {
		op = "brownout"
		s.bd.Inc(stats.CounterBrownouts)
	}
	s.Tracer.Record(trace.Event{Engine: "service", Op: op, InBytes: want, OutBytes: cur,
		Err: fmt.Sprintf("load=%.2f", load)})
}

// BrownoutRung exposes the current ladder rung (0 = healthy) for
// operational tooling and soak assertions.
func (s *Server) BrownoutRung() int { return int(s.rung.Load()) }

// readRequestGoverned reads one request, drawing the body from the
// library's governed memory pool when a budget is configured. When the
// pool refuses the draw (budget exhausted) the body is still read —
// the stream must stay framed — but shed=true tells the handler to
// answer statusBusy instead of executing, converting memory pressure
// into cooperative backpressure. putBody releases a pooled body back
// to the budget and must be called exactly once.
func (s *Server) readRequestGoverned(conn net.Conn) (req request, putBody func(), shed bool, err error) {
	req, n, err := readRequestHeader(conn)
	if err != nil {
		return request{}, nil, false, err
	}
	putBody = func() {}
	if n == 0 {
		req.data = []byte{}
		return req, putBody, false, nil
	}
	pool := s.lib.Pool()
	// Oversize bodies (larger than the whole budget) can never be
	// admitted; they bypass governance rather than shedding forever.
	if budget := pool.Budget(); budget > 0 && int64(n) <= budget {
		buf, gerr := pool.TryGet(int(n))
		if gerr == nil {
			if _, err := io.ReadFull(conn, buf); err != nil {
				pool.Put(buf)
				return request{}, nil, false, err
			}
			req.data = buf
			return req, func() { pool.Put(buf) }, false, nil
		}
		s.bd.Inc(stats.CounterMemPressure)
		shed = true
	}
	body, err := readBody(conn, n)
	if err != nil {
		return request{}, nil, false, err
	}
	req.data = body
	return req, putBody, shed, nil
}

// initAdmission resolves the semaphore and queue once, at first use, so
// MaxConcurrent/QueueDepth can be set any time before Serve.
func (s *Server) initAdmission() {
	s.admitOnce.Do(func() {
		mc := s.MaxConcurrent
		if mc == 0 {
			mc = runtime.GOMAXPROCS(0)
		}
		if mc > 0 {
			s.sem = make(chan struct{}, mc)
		}
		qd := s.QueueDepth
		if qd == 0 {
			qd = DefaultQueueDepth
		}
		if s.sem != nil && qd > 0 {
			s.queue = make(chan struct{}, qd)
		}
	})
}

// admit claims an execution slot. It returns a release func and true on
// success; false means both the slots and the wait queue are full and
// the request must be shed.
func (s *Server) admit() (func(), bool) {
	s.initAdmission()
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	if s.queue == nil {
		return nil, false
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, false
	}
	// Queued: wait (bounded by the holders finishing) for a slot.
	s.sem <- struct{}{}
	<-s.queue
	return func() { <-s.sem }, true
}

// Serve accepts connections until the listener closes. Temporary accept
// errors (e.g. fd exhaustion) are retried with exponential backoff
// instead of killing the loop. It returns the accept error that
// terminated the loop (net.ErrClosed after Close or Shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.initAdmission()
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() && !s.isClosed() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.logf("service: accept error (retrying in %v): %v", backoff, err)
				time.Sleep(backoff)
				continue
			}
			s.wg.Wait()
			return err
		}
		backoff = 0
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Close stops accepting and closes active connections immediately,
// abandoning in-flight requests. Prefer Shutdown for a graceful drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Shutdown gracefully drains the server: it stops accepting new
// connections, lets every in-flight request finish and write its
// response, then closes. Idle connections (blocked waiting for the next
// request) are released immediately. If ctx expires first, remaining
// connections are closed abruptly and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	s.ln = nil
	var inflight int
	// Fire the read deadline of idle handlers so their blocking
	// readRequest returns now; busy handlers finish their response and
	// then observe draining at the top of their loop. Both the poke and
	// the handler's own deadline/busy transitions happen under s.mu, so
	// no request can slip between the two states unobserved.
	for c, st := range s.conns {
		if st.busy {
			inflight++
		} else {
			c.SetReadDeadline(time.Now())
		}
	}
	s.bd.CountAdd(stats.CounterDrained, uint64(inflight))
	s.mu.Unlock()
	if !alreadyDraining {
		s.Tracer.Record(trace.Event{Engine: "service", Op: "drain", InBytes: inflight})
	}
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		// Abandon the drain: close the remaining connections. Handlers
		// blocked on connection I/O unwind immediately; a handler wedged
		// inside execute is not waited for (mirroring net/http).
		s.mu.Lock()
		s.closed = true
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.draining
}

// timeout resolves a configured deadline: zero → def, negative → off.
func timeout(configured, def time.Duration) time.Duration {
	if configured == 0 {
		return def
	}
	if configured < 0 {
		return 0
	}
	return configured
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	idle := timeout(s.IdleTimeout, DefaultIdleTimeout)
	write := timeout(s.WriteTimeout, DefaultWriteTimeout)
	s.mu.Lock()
	st := s.conns[conn]
	s.mu.Unlock()
	if st == nil {
		return // raced with Close
	}
	respond := func(status byte, body []byte) error {
		if write > 0 {
			conn.SetWriteDeadline(time.Now().Add(write))
		}
		return writeResponse(conn, status, body)
	}
	for {
		// Mark idle and arm the read deadline in the same critical
		// section where Shutdown checks busy and pokes deadlines: either
		// Shutdown sees us idle and fires the deadline, or we see
		// draining and exit — a request can never be read after drain
		// without being served.
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			return
		}
		st.busy = false
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		s.mu.Unlock()
		req, putBody, memShed, err := s.readRequestGoverned(conn)
		if err != nil {
			return // EOF, deadline, drain poke, or broken connection
		}
		s.mu.Lock()
		st.busy = true
		if s.draining {
			// The request raced past the drain poke (bytes were already
			// buffered); it still gets served and counted as drained.
			s.bd.Inc(stats.CounterDrained)
		}
		s.mu.Unlock()
		if req.op == opPing {
			// Keepalive: answer before admission so overload never
			// masquerades as death (a shed ping would let a busy spell
			// tear down every session at once).
			putBody()
			if err := respond(statusOK, nil); err != nil {
				return
			}
			continue
		}
		rung := s.maybeBrownout()
		if memShed || (rung >= rungShedBestEffort && req.bestEffort) {
			why := "best_effort"
			if memShed {
				why = "mem_pressure"
			}
			putBody()
			s.bd.Inc(stats.CounterSheds)
			s.Tracer.Record(trace.Event{Engine: "service", Op: "shed", InBytes: len(req.data), Err: why})
			if err := respond(statusBusy, retryAfterBody(s.pressureHint())); err != nil {
				return
			}
			continue
		}
		release, ok := s.admit()
		if !ok {
			putBody()
			s.bd.Inc(stats.CounterSheds)
			s.Tracer.Record(trace.Event{Engine: "service", Op: "shed", InBytes: len(req.data), Err: "busy"})
			if err := respond(statusBusy, retryAfterBody(s.pressureHint())); err != nil {
				return
			}
			continue
		}
		body, pooled, err := s.execute(req)
		release()
		// Buffers go back to the budget only after the response bytes are
		// on the wire (or the write failed): the response may alias the
		// request buffer (decompress passthrough), and a daemon that never
		// returned pool-drawn response bodies would bleed its budget dry.
		finish := func() {
			putBody()
			if pooled && body != nil {
				s.lib.Release(body)
			}
		}
		s.bd.Inc(stats.CounterRequests)
		if err != nil {
			finish()
			status := byte(statusErr)
			if errors.Is(err, dpu.ErrDeadline) {
				// The request's budget ran out mid-flight: the work was
				// abandoned at a checkpoint and the client gets the typed
				// status so it never mistakes overload for a data error.
				status = statusDeadline
				s.bd.Inc(stats.CounterDeadlineAbandoned)
				s.Tracer.Record(trace.Event{Engine: "service", Op: "deadline_abandoned", Err: err.Error()})
			}
			if werr := respond(status, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		err = respond(statusOK, body)
		finish()
		if err != nil {
			s.logf("service: write response: %v", err)
			return
		}
	}
}

// execute runs one request against the library. pooled reports that the
// returned body is a pool-drawn buffer whose budget charge the caller
// must release (via lib.Release) once the response is written. A
// panicking handler is recovered into a statusErr response so one
// poisoned request cannot take down the daemon or its other connections.
func (s *Server) execute(req request) (body []byte, pooled bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.bd.Inc(stats.CounterPanics)
			s.logf("service: handler panic: %v\n%s", r, debug.Stack())
			s.Tracer.Record(trace.Event{Engine: "service", Op: "panic", Err: fmt.Sprint(r)})
			body, pooled = nil, false
			err = fmt.Errorf("internal error: handler panic: %v", r)
		}
	}()
	if d := s.currentExecDelay(); d > 0 {
		time.Sleep(d)
	}
	if s.execHook != nil {
		body, err = s.execHook(req)
		return body, false, err
	}
	if req.op == opHealth {
		// Health carries no payload and no engine selector.
		return s.HealthBody(), false, nil
	}
	// Per-request deadline: the client's hint was stamped to an absolute
	// deadline at read time, so queue wait already counts against the
	// budget; the server's own ceiling bounds hint-free requests and
	// caps hints looser than the operator allows.
	deadlineAt := req.deadlineAt
	if d := s.currentDefaultDeadline(); d > 0 {
		if ceiling := time.Now().Add(d); deadlineAt.IsZero() || ceiling.Before(deadlineAt) {
			deadlineAt = ceiling
		}
	}
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if !deadlineAt.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, deadlineAt)
	}
	defer cancel()
	engine := hwmodel.Engine(req.engine)
	if engine != hwmodel.SoC && engine != hwmodel.CEngine {
		return nil, false, errors.New("bad engine")
	}
	dt := core.DataType(req.dtype)
	switch req.op {
	case opCompress:
		d := core.Design{Algo: core.AlgoID(req.algo), Engine: engine}
		// The assembled message is pool-drawn; ownership passes to the
		// caller, which releases it once the response hits the wire.
		msg, _, err := s.lib.CompressContext(ctx, d, dt, req.data)
		return msg, err == nil, err
	case opDecompress:
		// Decompress outputs are plain allocations (or, on passthrough,
		// aliases into the request buffer) — never pool-charged.
		out, _, err := s.lib.DecompressContext(ctx, engine, dt, req.data, int(req.maxOut))
		return out, false, err
	case opCompressChecked:
		payload, err := s.checkRequestDigest(req, "compress")
		if err != nil {
			return nil, false, err
		}
		d := core.Design{Algo: core.AlgoID(req.algo), Engine: engine}
		msg, rep, err := s.lib.CompressContext(ctx, d, dt, payload)
		if err != nil {
			return nil, false, err
		}
		// prependDigest copies, so the pool-drawn message can go back to
		// the budget immediately.
		body = prependDigest(rep.MsgCRC, msg)
		s.lib.Release(msg)
		return body, false, nil
	case opDecompressChecked:
		payload, err := s.checkRequestDigest(req, "decompress")
		if err != nil {
			return nil, false, err
		}
		out, rep, err := s.lib.DecompressContext(ctx, engine, dt, payload, int(req.maxOut))
		if err != nil {
			return nil, false, err
		}
		return prependDigest(rep.MsgCRC, out), false, nil
	default:
		return nil, false, errors.New("bad op")
	}
}

// checkRequestDigest strips and verifies the crc(4 LE) prefix of a
// checked request. A mismatch means the request bytes were damaged on
// the host→daemon hop: the request is rejected with a typed integrity
// error before any compression work, and the daemon's hops_rejected
// counter records the detection.
func (s *Server) checkRequestDigest(req request, segment string) ([]byte, error) {
	if len(req.data) < checkedDigestLen {
		return nil, errors.New("checked request missing digest")
	}
	want := binary.LittleEndian.Uint32(req.data)
	payload := req.data[checkedDigestLen:]
	if got := checksum.CRC32(payload); got != want {
		s.bd.Inc(stats.CounterHopsRejected)
		return nil, &integrity.CorruptError{Hop: "service.request", Segment: segment, Want: want, Got: got}
	}
	return payload, nil
}

// prependDigest builds a checked response body: the source-computed CRC
// (MsgCRC from the library, not recomputed at the wire) followed by the
// payload.
func prependDigest(crc uint32, payload []byte) []byte {
	body := make([]byte, checkedDigestLen, checkedDigestLen+len(payload))
	binary.LittleEndian.PutUint32(body, crc)
	return append(body, payload...)
}

// HealthBody renders the engine fault-domain status as the health
// endpoint's key=value text line. Exposed so cmd/pedald can log the same
// line at startup and drain.
func (s *Server) HealthBody() []byte {
	h := s.lib.EngineHealth()
	tb := s.lib.TotalBreakdown()
	replayed := tb.Count(stats.CounterJobsReplayed)
	// The integrity counters fold the library's detections (verified
	// compression, pipeline hops) with the daemon's own wire-hop
	// rejections — one line answers "has this daemon ever seen silent
	// data corruption".
	// Overload fault-domain counters: pool budget occupancy, pressure
	// sheds, deadline-abandoned work, and brownout ladder steps — one
	// line answers "is this daemon shedding load and why".
	snap := s.lib.PoolSnapshot()
	return []byte(fmt.Sprintf(
		"state=%s inflight=%d stalls=%d wedges=%d resets=%d reset_failures=%d expired_dropped=%d lost_jobs=%d jobs_replayed=%d verify_mismatches=%d hops_rejected=%d cores_quarantined=%d scalar_fallbacks=%d pool_held=%d pool_peak=%d pool_budget=%d mem_pressure=%d deadline_abandoned=%d brownouts=%d brownout_rung=%d",
		h.State, h.Inflight, h.Stalls, h.Wedges, h.Resets, h.ResetFailures,
		h.ExpiredDropped, h.LostJobs, replayed,
		tb.Count(stats.CounterVerifyMismatches),
		tb.Count(stats.CounterHopsRejected)+s.bd.Count(stats.CounterHopsRejected),
		tb.Count(stats.CounterCoresQuarantined),
		tb.Count(stats.CounterScalarFallbacks),
		snap.HeldBytes, snap.PeakBytes, snap.Budget,
		snap.PressureRejects+s.bd.Count(stats.CounterMemPressure),
		tb.Count(stats.CounterDeadlineAbandoned)+s.bd.Count(stats.CounterDeadlineAbandoned),
		s.bd.Count(stats.CounterBrownouts), s.rung.Load()))
}

// ListenAndServe is the convenience entry used by cmd/pedald.
func ListenAndServe(addr string, lib *core.Library) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := NewServer(lib)
	s.Logf = log.Printf
	return s.Serve(ln)
}
