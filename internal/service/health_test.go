package service

import (
	"bytes"
	"testing"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
)

// TestHealthEndpoint: the daemon reports its engine fault-domain status
// over the wire — live state and zeroed recovery counters on a fresh
// server, with the counters still parseable after real traffic.
func TestHealthEndpoint(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Live() || h.State != "live" {
		t.Fatalf("fresh daemon not live: %+v", h)
	}
	if h.Stalls != 0 || h.Wedges != 0 || h.Resets != 0 || h.LostJobs != 0 {
		t.Fatalf("fresh daemon has nonzero recovery counters: %+v", h)
	}

	// Health interleaves with compression traffic on the same
	// connection without desynchronising the stream.
	data := bytes.Repeat([]byte("health endpoint interleave payload "), 1000)
	msg, err := c.Compress(core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}, core.TypeBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	if h, err = c.Health(); err != nil || !h.Live() {
		t.Fatalf("health after traffic: %+v err=%v", h, err)
	}
	out, err := c.Decompress(hwmodel.CEngine, core.TypeBytes, msg, len(data)+64)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("round trip around health probe failed: %v", err)
	}
}

// TestParseHealthRejectsMalformed: the client surfaces malformed health
// bodies as ErrRemote instead of returning a zero Health.
func TestParseHealthRejectsMalformed(t *testing.T) {
	if _, err := parseHealth([]byte("state=live stalls=notanumber")); err == nil {
		t.Fatal("malformed counter accepted")
	}
	if _, err := parseHealth([]byte("stalls=3")); err == nil {
		t.Fatal("missing state accepted")
	}
	if _, err := parseHealth([]byte("garbage")); err == nil {
		t.Fatal("keyless field accepted")
	}
	h, err := parseHealth([]byte("state=degraded stalls=2 wedges=1 resets=0 reset_failures=3 expired_dropped=4 lost_jobs=5 jobs_replayed=5 inflight=0"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Live() || h.State != "degraded" || h.Stalls != 2 || h.ResetFailures != 3 || h.JobsReplayed != 5 {
		t.Fatalf("parsed health wrong: %+v", h)
	}
}
