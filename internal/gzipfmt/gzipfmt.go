// Package gzipfmt implements the gzip file format (RFC 1952) around the
// from-scratch DEFLATE codec: a 10-byte header, the raw DEFLATE stream,
// and a CRC-32 + ISIZE trailer. It exists because real deployments of
// the DEFLATE C-Engine path exchange gzip files as often as raw streams,
// and it rounds out the DEFLATE container family (raw / zlib / gzip)
// PEDAL's AlgoID could address.
package gzipfmt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pedal/internal/checksum"
	"pedal/internal/flate"
)

// Format errors.
var (
	ErrHeader   = errors.New("gzipfmt: invalid header")
	ErrChecksum = errors.New("gzipfmt: CRC-32 mismatch")
	ErrSize     = errors.New("gzipfmt: ISIZE mismatch")
	ErrShort    = errors.New("gzipfmt: stream too short")
)

const (
	id1 = 0x1F
	id2 = 0x8B
	// cmDeflate is the only compression method RFC 1952 defines.
	cmDeflate = 8

	flgFTEXT    = 1 << 0
	flgFHCRC    = 1 << 1
	flgFEXTRA   = 1 << 2
	flgFNAME    = 1 << 3
	flgFCOMMENT = 1 << 4

	// osUnix is the OS byte for Unix-like systems.
	osUnix = 3
)

// Compress produces a complete gzip member for src at the given level,
// with a minimal header (no name, no extra fields, MTIME zero for
// deterministic output).
func Compress(src []byte, level int) []byte {
	body := flate.Compress(src, level)
	out := make([]byte, 0, len(body)+18)
	var xfl byte
	switch {
	case level >= 9:
		xfl = 2 // maximum compression
	case level <= 1:
		xfl = 4 // fastest
	}
	out = append(out, id1, id2, cmDeflate, 0 /*FLG*/, 0, 0, 0, 0 /*MTIME*/, xfl, osUnix)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, checksum.CRC32(src))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(src)))
	return out
}

// Decompress parses a complete gzip member, verifying CRC-32 and ISIZE.
func Decompress(src []byte) ([]byte, error) {
	return DecompressLimit(src, flate.DefaultMaxOutput)
}

// DecompressLimit is Decompress with an output size cap.
func DecompressLimit(src []byte, limit int) ([]byte, error) {
	body, err := Body(src)
	if err != nil {
		return nil, err
	}
	out, err := flate.DecompressLimit(body, limit)
	if err != nil {
		return nil, err
	}
	tr := src[len(src)-8:]
	wantCRC := binary.LittleEndian.Uint32(tr[0:4])
	wantISZ := binary.LittleEndian.Uint32(tr[4:8])
	if got := checksum.CRC32(out); got != wantCRC {
		return nil, fmt.Errorf("%w: got %#x want %#x", ErrChecksum, got, wantCRC)
	}
	if uint32(len(out)) != wantISZ {
		return nil, fmt.Errorf("%w: got %d want %d", ErrSize, len(out), wantISZ)
	}
	return out, nil
}

// Body validates the header and returns the raw DEFLATE stream between
// header and trailer, skipping any optional fields.
func Body(src []byte) ([]byte, error) {
	if len(src) < 18 {
		return nil, ErrShort
	}
	if src[0] != id1 || src[1] != id2 {
		return nil, fmt.Errorf("%w: magic % x", ErrHeader, src[:2])
	}
	if src[2] != cmDeflate {
		return nil, fmt.Errorf("%w: compression method %d", ErrHeader, src[2])
	}
	flg := src[3]
	if flg&0xE0 != 0 {
		return nil, fmt.Errorf("%w: reserved FLG bits %#x", ErrHeader, flg)
	}
	pos := 10
	if flg&flgFEXTRA != 0 {
		if pos+2 > len(src) {
			return nil, ErrShort
		}
		xlen := int(binary.LittleEndian.Uint16(src[pos:]))
		pos += 2 + xlen
	}
	for _, f := range []byte{flgFNAME, flgFCOMMENT} {
		if flg&f == 0 {
			continue
		}
		// Zero-terminated string.
		for {
			if pos >= len(src) {
				return nil, ErrShort
			}
			pos++
			if src[pos-1] == 0 {
				break
			}
		}
	}
	if flg&flgFHCRC != 0 {
		pos += 2
	}
	if pos+8 > len(src) {
		return nil, ErrShort
	}
	return src[pos : len(src)-8], nil
}
