package dpu

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pedal/internal/faults"
	"pedal/internal/hwmodel"
)

var faultSrc = []byte(strings.Repeat("fault injection payload ", 200))

func compressJob() Job {
	return Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: faultSrc}
}

func TestInjectedTransientFault(t *testing.T) {
	d := newBF2(t)
	d.SetFaultInjector(faults.NewInjector(faults.Config{Seed: 1, PTransient: 1.0}))
	res := d.CEngine().Run(compressJob())
	if !errors.Is(res.Err, ErrTransient) {
		t.Fatalf("want ErrTransient, got %v", res.Err)
	}
	if !IsTransient(res.Err) {
		t.Fatal("transient fault not classified retryable")
	}
}

func TestInjectedPersistentFault(t *testing.T) {
	d := newBF2(t)
	d.SetFaultInjector(faults.NewInjector(faults.Config{Seed: 1, PPersistent: 1.0}))
	res := d.CEngine().Run(compressJob())
	if !errors.Is(res.Err, ErrHardware) {
		t.Fatalf("want ErrHardware, got %v", res.Err)
	}
	if IsTransient(res.Err) {
		t.Fatal("persistent fault classified retryable")
	}
}

func TestInjectedQueueFull(t *testing.T) {
	d := newBF2(t)
	d.SetFaultInjector(faults.NewInjector(faults.Config{Seed: 1, PQueueFull: 1.0}))
	_, err := d.CEngine().Submit(compressJob())
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if !IsTransient(err) {
		t.Fatal("queue-full not classified retryable")
	}
}

func TestInjectedCorruptionDetectable(t *testing.T) {
	d := newBF2(t)
	d.SetFaultInjector(faults.NewInjector(faults.Config{Seed: 1, PCorrupt: 1.0}))
	res := d.CEngine().Run(compressJob())
	if res.Err != nil {
		t.Fatalf("corrupt job must 'succeed': %v", res.Err)
	}
	if res.VerifyOutput() {
		t.Fatal("corrupted output passed checksum verification")
	}
	// Clean runs verify.
	d.SetFaultInjector(nil)
	res = d.CEngine().Run(compressJob())
	if res.Err != nil || !res.VerifyOutput() {
		t.Fatalf("clean output failed verification: %v", res.Err)
	}
}

func TestWaitTimeoutOnHang(t *testing.T) {
	d := newBF2(t)
	d.SetFaultInjector(faults.NewInjector(faults.Config{
		Seed: 1, PHang: 1.0, HangDelay: 200 * time.Millisecond,
	}))
	h, err := d.CEngine().Submit(compressJob())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := h.WaitTimeout(5 * time.Millisecond)
	if ok || !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("deadline did not fire: ok=%v err=%v", ok, res.Err)
	}
	// The abandoned job still completes in the background without
	// blocking the worker (buffered handle channel).
	d.SetFaultInjector(nil)
	if res := d.CEngine().Run(compressJob()); res.Err != nil {
		t.Fatalf("engine wedged after abandoned job: %v", res.Err)
	}
}

func TestWaitContext(t *testing.T) {
	d := newBF2(t)
	d.SetFaultInjector(faults.NewInjector(faults.Config{
		Seed: 1, PHang: 1.0, HangDelay: 200 * time.Millisecond,
	}))
	h, err := d.CEngine().Submit(compressJob())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res, ok := h.WaitContext(ctx)
	if ok || !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("context deadline did not fire: ok=%v err=%v", ok, res.Err)
	}
}

// Regression test for the Submit/close deadlock: Submit used to hold the
// engine mutex while sending on a possibly-full queue, so a full queue
// wedged SetTracer and close, and close(queue) could panic a blocked
// send. Now submits block outside the lock and close drains them.
func TestSubmitCloseRaceOnFullQueue(t *testing.T) {
	d, err := NewDevice(hwmodel.BlueField2, SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	// Every job hangs briefly, so the single worker drains slowly and
	// the queue (depth 128) fills while submitters keep pushing.
	d.SetFaultInjector(faults.NewInjector(faults.Config{
		Seed: 1, PHang: 1.0, HangDelay: time.Millisecond,
	}))
	var wg sync.WaitGroup
	for i := 0; i < 300; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := d.CEngine().Submit(compressJob())
			if err != nil {
				return // ErrClosed for submissions that lost the race
			}
			h.Wait()
		}()
	}
	// Give submitters time to fill the queue, then make sure the mutex
	// paths stay reachable and close neither deadlocks nor panics.
	time.Sleep(20 * time.Millisecond)
	tracerSet := make(chan struct{})
	go func() {
		d.CEngine().SetTracer(nil)
		close(tracerSet)
	}()
	select {
	case <-tracerSet:
	case <-time.After(2 * time.Second):
		t.Fatal("SetTracer blocked behind a full queue")
	}
	closed := make(chan struct{})
	go func() {
		d.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked against blocked submitters")
	}
	wg.Wait()
	if _, err := d.CEngine().Submit(compressJob()); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: %v", err)
	}
}
