package dpu

import (
	"errors"
	"testing"
	"time"

	"pedal/internal/faults"
)

// TestExpiredJobDrainedByResetOnce pins the double-selection edge: a
// queued job whose wait deadline has already expired is ALSO drained by
// a journal-replay reset. Two writers race for its handle — the reset
// drain (ErrEngineLost, a replay candidate) and the stale worker's
// dequeue of the same job (whose deadline has long passed). The caller
// must observe exactly one completion and therefore replay exactly
// once; the loser's completion is a dropped non-blocking send.
func TestExpiredJobDrainedByResetOnce(t *testing.T) {
	d := newBF2(t)
	eng := d.CEngine()
	// Every job draws Wedge: job A freezes the worker at dequeue, so job
	// B sits in the queue with its deadline already burned.
	d.SetFaultInjector(faults.NewInjector(faults.Config{Seed: 3, PWedge: 1.0}))

	ha, err := eng.Submit(compressJob())
	if err != nil {
		t.Fatal(err)
	}
	jb := compressJob()
	jb.Deadline = time.Now().Add(-time.Millisecond) // expired before it ever runs
	hb, err := eng.Submit(jb)
	if err != nil {
		t.Fatal(err)
	}
	// Let the worker dequeue A and wedge.
	time.Sleep(5 * time.Millisecond)

	// Journal-replay selection: the reset drains every in-flight entry —
	// including expired B — and the retired worker then re-encounters B
	// at dequeue.
	if st := eng.Reset(); st != EngineLive {
		t.Fatalf("engine state after reset: %v", st)
	}

	replays := 0
	for _, h := range []*JobHandle{ha, hb} {
		res := h.Wait()
		if !errors.Is(res.Err, ErrEngineLost) {
			t.Fatalf("job %d: got %v, want ErrEngineLost", h.Seq(), res.Err)
		}
		// The SoC replay a real caller performs on ErrEngineLost.
		replays++
	}
	if replays != 2 {
		t.Fatalf("replayed %d jobs, want 2 (each exactly once)", replays)
	}
	// Give the retired worker time to drain B and lose the handle race.
	time.Sleep(5 * time.Millisecond)
	if n := len(eng.InflightJobs()); n != 0 {
		t.Fatalf("%d journal entries leaked past the reset", n)
	}
	st := eng.Health()
	// B was claimed by the drain, not the expired-drop path: it must be
	// counted lost (replay candidate) and not double-counted as expired.
	if st.LostJobs < 2 {
		t.Fatalf("LostJobs %d, want >= 2", st.LostJobs)
	}
	if st.ExpiredDropped != 0 {
		t.Fatalf("ExpiredDropped %d: drained job double-counted", st.ExpiredDropped)
	}

	// The engine came back: a clean job executes for real.
	d.SetFaultInjector(nil)
	if res := eng.Run(compressJob()); res.Err != nil || !res.VerifyOutput() {
		t.Fatalf("post-reset job: %v", res.Err)
	}
}

// TestExpiredAtDequeueRacesWatchdogReplay runs the probabilistic
// interleaving of the same edge under the watchdog: stalled jobs pile
// up a streak while expired jobs are dropped at dequeue, and whichever
// writer reaches a handle first wins — every job completes exactly
// once with either ErrDeadline or ErrEngineLost, never neither, never
// both (the handle's buffered-once channel makes a double completion
// observable as a lost wait below).
func TestExpiredAtDequeueRacesWatchdogReplay(t *testing.T) {
	d := newBF2(t)
	eng := d.CEngine()
	d.SetFaultInjector(faults.NewInjector(faults.Config{Seed: 17, PStall: 0.5}))
	eng.StartWatchdog(WatchdogConfig{
		Interval: time.Millisecond, BudgetFloor: 4 * time.Millisecond,
		WedgeAfter: 2, MaxResetAttempts: 3, ResetBackoff: time.Millisecond,
	})

	const jobs = 32
	handles := make([]*JobHandle, 0, jobs)
	for i := 0; i < jobs; i++ {
		j := compressJob()
		// Half the deadlines are pre-expired: those jobs are dead at
		// dequeue unless a wedge drain selects them first.
		if i%2 == 1 {
			j.Deadline = time.Now().Add(-time.Millisecond)
		}
		h, err := eng.Submit(j)
		if err != nil {
			// Reset window: the submit path itself reported the loss.
			continue
		}
		handles = append(handles, h)
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, h := range handles {
		res, ok := h.WaitTimeout(time.Until(deadline))
		if !ok {
			t.Fatalf("job %d never completed: a writer was lost or doubled", h.Seq())
		}
		if res.Err != nil && !errors.Is(res.Err, ErrDeadline) && !errors.Is(res.Err, ErrEngineLost) {
			t.Fatalf("job %d: unexpected error class %v", h.Seq(), res.Err)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if n := len(eng.InflightJobs()); n != 0 {
		t.Fatalf("%d journal entries leaked", n)
	}
}
