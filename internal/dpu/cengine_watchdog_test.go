package dpu

import (
	"errors"
	"testing"
	"time"

	"pedal/internal/faults"
)

// testWatchdog is a fast configuration for deterministic unit tests:
// injected stalls are declared within a few milliseconds, and genuine
// executions (microseconds of real flate work) never come close to the
// budget floor.
func testWatchdog() WatchdogConfig {
	return WatchdogConfig{
		Interval:         time.Millisecond,
		BudgetFloor:      20 * time.Millisecond,
		BudgetSlack:      8,
		WedgeAfter:       2,
		MaxResetAttempts: 3,
		ResetBackoff:     100 * time.Microsecond,
	}
}

// waitState polls until the engine reaches want or the deadline passes.
func waitState(t *testing.T, e *CEngine, want EngineState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("engine state %v, want %v", e.State(), want)
}

// TestDeadlineExpiredDropAtDequeue: a queued job whose deadline has
// already passed is dropped at dequeue with ErrDeadline instead of
// wasting engine time, and the drop is counted.
func TestDeadlineExpiredDropAtDequeue(t *testing.T) {
	d := newBF2(t)
	job := compressJob()
	job.Deadline = time.Now().Add(-time.Millisecond)
	h, err := d.CEngine().Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", res.Err)
	}
	if !IsTransient(res.Err) {
		t.Fatal("expired-in-queue drop not classified retryable")
	}
	if got := d.CEngine().Health().ExpiredDropped; got != 1 {
		t.Fatalf("ExpiredDropped = %d, want 1", got)
	}
	// A job with a live deadline still executes.
	job = compressJob()
	job.Deadline = time.Now().Add(time.Minute)
	if res := d.CEngine().Run(job); res.Err != nil {
		t.Fatalf("live-deadline job failed: %v", res.Err)
	}
}

// TestAbandonedHandlesNeverBlockWorker: completion sends are
// non-blocking, so handles nobody waits on (timed-out callers, crashed
// goroutines) never wedge the worker loop.
func TestAbandonedHandlesNeverBlockWorker(t *testing.T) {
	d := newBF2(t)
	for i := 0; i < 64; i++ {
		if _, err := d.CEngine().Submit(compressJob()); err != nil {
			t.Fatal(err)
		}
	}
	// The worker must still make progress past all the abandoned
	// handles and complete a watched job.
	h, err := d.CEngine().Submit(compressJob())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := h.WaitTimeout(10 * time.Second)
	if !ok {
		t.Fatal("worker blocked behind abandoned handles")
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestWatchdogStallDetection: a stalled job (submitted, never completed)
// is failed with ErrEngineLost once its latency budget expires; the
// engine itself stays live and keeps executing.
func TestWatchdogStallDetection(t *testing.T) {
	d := newBF2(t)
	e := d.CEngine()
	e.SetInjector(faults.NewInjector(faults.Config{Seed: 7, PStall: 1.0, MaxInjections: 1}))
	e.StartWatchdog(testWatchdog())
	h, err := e.Submit(compressJob())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := h.WaitTimeout(10 * time.Second)
	if !ok {
		t.Fatal("watchdog never failed the stalled job")
	}
	if !errors.Is(res.Err, ErrEngineLost) {
		t.Fatalf("want ErrEngineLost, got %v", res.Err)
	}
	if IsTransient(res.Err) {
		t.Fatal("ErrEngineLost must not be transient: the caller replays on the SoC")
	}
	hl := e.Health()
	if hl.Stalls != 1 || hl.LostJobs != 1 {
		t.Fatalf("stalls=%d lost=%d, want 1/1", hl.Stalls, hl.LostJobs)
	}
	if hl.State != EngineLive {
		t.Fatalf("one stall degraded the engine to %v", hl.State)
	}
	// The fault budget is spent; the next job executes normally and
	// resets the stall streak.
	if res := e.Run(compressJob()); res.Err != nil {
		t.Fatalf("engine dead after single stall: %v", res.Err)
	}
}

// TestWatchdogWedgeHotResetRecovers: a wedged engine (worker stuck, jobs
// piling up overdue) is hot-reset by the watchdog and returns to live;
// in-flight jobs fail with ErrEngineLost, later jobs execute on the
// fresh epoch.
func TestWatchdogWedgeHotResetRecovers(t *testing.T) {
	d := newBF2(t)
	e := d.CEngine()
	e.SetInjector(faults.NewInjector(faults.Config{Seed: 7, PWedge: 1.0, MaxInjections: 1}))
	e.StartWatchdog(testWatchdog())
	// The first job wedges the worker; the second piles up behind it.
	// Both go overdue, crossing WedgeAfter and declaring the wedge.
	var handles []*JobHandle
	for i := 0; i < 2; i++ {
		h, err := e.Submit(compressJob())
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		res, ok := h.WaitTimeout(10 * time.Second)
		if !ok {
			t.Fatal("wedged job never failed")
		}
		if !errors.Is(res.Err, ErrEngineLost) {
			t.Fatalf("want ErrEngineLost, got %v", res.Err)
		}
	}
	waitState(t, e, EngineLive)
	hl := e.Health()
	if hl.Wedges == 0 || hl.Resets == 0 {
		t.Fatalf("wedges=%d resets=%d, want both > 0", hl.Wedges, hl.Resets)
	}
	if res := e.Run(compressJob()); res.Err != nil {
		t.Fatalf("engine not usable after hot-reset: %v", res.Err)
	}
}

// TestWatchdogResetExhaustionDegrades: when every reset attempt fails,
// the engine escalates to permanent degradation and rejects new work
// with ErrEngineLost so callers pin traffic to the SoC.
func TestWatchdogResetExhaustionDegrades(t *testing.T) {
	d := newBF2(t)
	e := d.CEngine()
	e.SetInjector(faults.NewInjector(faults.Config{
		Seed: 7, PWedge: 1.0, PResetFail: 1.0, MaxInjections: 1,
	}))
	e.StartWatchdog(testWatchdog())
	for i := 0; i < 2; i++ {
		h, err := e.Submit(compressJob())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := h.WaitTimeout(10 * time.Second); !ok {
			t.Fatal("wedged job never failed")
		}
	}
	waitState(t, e, EngineDegraded)
	hl := e.Health()
	if want := uint64(testWatchdog().MaxResetAttempts); hl.ResetFailures != want {
		t.Fatalf("ResetFailures = %d, want %d", hl.ResetFailures, want)
	}
	if _, err := e.Submit(compressJob()); !errors.Is(err, ErrEngineLost) {
		t.Fatalf("degraded engine accepted work: err=%v", err)
	}
}

// TestManualReset: Reset() fails in-flight jobs with ErrEngineLost,
// rebuilds the queue, and leaves the engine live.
func TestManualReset(t *testing.T) {
	d := newBF2(t)
	e := d.CEngine()
	// A hanging job keeps an entry in flight while Reset runs.
	e.SetInjector(faults.NewInjector(faults.Config{
		Seed: 7, PStall: 1.0, MaxInjections: 1,
	}))
	h, err := e.Submit(compressJob())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the stalled job is journaled in flight.
	deadline := time.Now().Add(5 * time.Second)
	for len(e.InflightJobs()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := e.Reset(); st != EngineLive {
		t.Fatalf("Reset → %v, want live", st)
	}
	res, ok := h.WaitTimeout(10 * time.Second)
	if !ok {
		t.Fatal("in-flight job not failed by manual reset")
	}
	if !errors.Is(res.Err, ErrEngineLost) {
		t.Fatalf("want ErrEngineLost, got %v", res.Err)
	}
	if res := e.Run(compressJob()); res.Err != nil {
		t.Fatalf("engine not usable after manual reset: %v", res.Err)
	}
}
