package dpu

import (
	"strings"
	"testing"

	"pedal/internal/hwmodel"
	"pedal/internal/trace"
)

func TestCEngineTracing(t *testing.T) {
	d := newBF2(t)
	tr := trace.New(0)
	d.CEngine().SetTracer(tr)
	src := []byte(strings.Repeat("traced job payload ", 200))
	res := d.CEngine().Run(Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: src})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	e := events[0]
	if e.Engine != "C-Engine" || e.Algo != "DEFLATE" || e.Op != "compress" {
		t.Fatalf("event = %+v", e)
	}
	if e.InBytes != len(src) || e.OutBytes != len(res.Output) || e.Virtual != res.Virtual {
		t.Fatalf("event sizes/durations wrong: %+v", e)
	}
	// Detach: no further events.
	d.CEngine().SetTracer(nil)
	d.CEngine().Run(Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: src})
	if tr.Len() != 1 {
		t.Fatal("tracer recorded after detach")
	}
}
