package dpu

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/faults"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/lz4"
	"pedal/internal/trace"
)

// EngineState is the C-Engine fault-domain position: Live serves jobs,
// Resetting is the window between a declared wedge and a completed
// hot-reset, Degraded is the permanent SoC-only escalation after reset
// attempts are exhausted.
type EngineState uint8

// Engine states.
const (
	EngineLive EngineState = iota + 1
	EngineResetting
	EngineDegraded
)

func (s EngineState) String() string {
	switch s {
	case EngineLive:
		return "live"
	case EngineResetting:
		return "resetting"
	case EngineDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("EngineState(%d)", uint8(s))
	}
}

// JobResult is the completion record of one C-Engine job.
type JobResult struct {
	// Output is the produced data (compressed or decompressed bytes).
	Output []byte
	// Virtual is the modelled hardware execution time of the job.
	Virtual time.Duration
	// Checksum is the engine-computed CRC-32 of Output — the completion
	// metadata real DOCA work queues report alongside the data. Callers
	// verify it against the received bytes to detect corruption on the
	// data path (see VerifyOutput).
	Checksum uint32
	// Seq is the engine-assigned submission sequence number, matching
	// the in-flight journal entry the job was recorded under.
	Seq uint64
	// Err is non-nil when the job failed (unsupported path, corrupt
	// input, or an injected runtime fault). Hardware reports such
	// failures through the work queue's completion status.
	Err error
}

// VerifyOutput recomputes the output CRC and compares it with the
// engine-reported checksum; false means the output was corrupted after
// the engine produced it and must not be used.
func (r *JobResult) VerifyOutput() bool {
	return r.Err == nil && checksum.CRC32(r.Output) == r.Checksum
}

// Job describes one compression or decompression operation submitted to
// the C-Engine. Input must stay unmodified until completion, mirroring
// the DOCA buffer ownership rules.
type Job struct {
	Algo  hwmodel.Algo
	Op    hwmodel.Op
	Input []byte
	// MaxOutput bounds decompression output (DOCA requires the caller to
	// provide a destination buffer; this models its capacity). Zero means
	// a generous default.
	MaxOutput int
	// Deadline, when non-zero, is the completion deadline the submitter
	// waits against. The worker drops jobs whose deadline has already
	// expired at dequeue, completing them with ErrDeadline instead of
	// wasting engine time on a result the caller has abandoned.
	Deadline time.Time
}

// JobHandle tracks an in-flight job.
type JobHandle struct {
	seq  uint64
	done chan JobResult
}

// Seq returns the engine-assigned submission sequence number.
func (h *JobHandle) Seq() uint64 { return h.seq }

// complete delivers r unless a result was already delivered. The first
// writer wins; late or duplicate completions (a watchdog-failed job that
// eventually finishes, a drained stale-epoch job) are dropped, so no
// writer — worker or watchdog — can ever block on an abandoned handle.
func (h *JobHandle) complete(r JobResult) {
	select {
	case h.done <- r:
	default:
	}
}

// Wait blocks until the job completes and returns its result.
func (h *JobHandle) Wait() JobResult { return <-h.done }

// WaitTimeout blocks up to d for completion; ok=false means the deadline
// fired first and the result carries ErrDeadline. The abandoned job may
// still complete in the background — completion sends are non-blocking,
// so the worker can never wedge on an abandoned handle. d <= 0 waits
// forever.
func (h *JobHandle) WaitTimeout(d time.Duration) (JobResult, bool) {
	if d <= 0 {
		return h.Wait(), true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-h.done:
		return r, true
	case <-timer.C:
		return JobResult{Seq: h.seq, Err: ErrDeadline}, false
	}
}

// WaitContext blocks until completion or ctx cancellation; ok=false
// means ctx won and the result carries ErrDeadline.
func (h *JobHandle) WaitContext(ctx context.Context) (JobResult, bool) {
	select {
	case r := <-h.done:
		return r, true
	case <-ctx.Done():
		return JobResult{Seq: h.seq, Err: fmt.Errorf("%w: %v", ErrDeadline, ctx.Err())}, false
	}
}

// WaitContextTimeout blocks until completion, ctx cancellation, or the
// elapsed timeout d, whichever fires first; ok=false means the job was
// abandoned and the result carries ErrDeadline. A background context
// with no deadline takes the allocation-free WaitTimeout path, so the
// hot benchmarks see no new machinery. d <= 0 means no elapsed bound.
func (h *JobHandle) WaitContextTimeout(ctx context.Context, d time.Duration) (JobResult, bool) {
	if ctx == nil || ctx.Done() == nil {
		return h.WaitTimeout(d)
	}
	if d <= 0 {
		return h.WaitContext(ctx)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-h.done:
		return r, true
	case <-timer.C:
		return JobResult{Seq: h.seq, Err: ErrDeadline}, false
	case <-ctx.Done():
		return JobResult{Seq: h.seq, Err: fmt.Errorf("%w: %v", ErrDeadline, ctx.Err())}, false
	}
}

type queued struct {
	job    Job
	handle *JobHandle
	fault  faults.Decision
	seq    uint64
}

// journalEntry is one in-flight job's journal record: enough to detect a
// stall (submit timestamp scored against the hwmodel latency budget) and
// to deterministically re-execute the work on the SoC path after engine
// loss (input ref, algo, op, seq — the caller owns the input buffer and
// replays through its software codec when the handle fails with
// ErrEngineLost).
type journalEntry struct {
	seq       uint64
	algo      hwmodel.Algo
	op        hwmodel.Op
	input     []byte
	submitted time.Time
	handle    *JobHandle
}

// InflightJob is the exported view of one journal entry.
type InflightJob struct {
	Seq   uint64
	Algo  hwmodel.Algo
	Op    hwmodel.Op
	Bytes int
	Age   time.Duration
}

// engineEpoch is one incarnation of the hardware work queue and its
// worker. A hot-reset retires the epoch and installs a fresh one, the
// way a DOCA device re-open tears down and rebuilds the queue pair.
type engineEpoch struct {
	queue chan queued
	// stop closes when the epoch retires (hot-reset or engine close),
	// unblocking submitters stuck on a full queue and a wedged worker.
	stop chan struct{}
	// submitters counts Submit calls bound to this epoch; the queue
	// closes only after they drain, so a send never races the close.
	submitters sync.WaitGroup
	// stale marks a reset-retired epoch: the worker fails newly dequeued
	// jobs with ErrEngineLost instead of executing on dead hardware. A
	// close-retired epoch keeps stale false so accepted jobs still run.
	stale      atomic.Bool
	retireOnce sync.Once
	// drained closes once the queue is closed (after submitters finish).
	drained chan struct{}
}

func newEpoch() *engineEpoch {
	return &engineEpoch{
		queue:   make(chan queued, cengineQueueDepth),
		stop:    make(chan struct{}),
		drained: make(chan struct{}),
	}
}

// retire ends the epoch: failPending marks it stale (reset path — the
// worker fails drained jobs), stop unblocks submitters and a wedged
// worker, and the queue closes once in-flight submitters drain so the
// worker exits.
func (ep *engineEpoch) retire(failPending bool) {
	ep.retireOnce.Do(func() {
		if failPending {
			ep.stale.Store(true)
		}
		close(ep.stop)
		go func() {
			ep.submitters.Wait()
			close(ep.queue)
			close(ep.drained)
		}()
	})
}

// WatchdogConfig tunes the stall watchdog and hot-reset escalation.
// Zero fields select defaults.
type WatchdogConfig struct {
	// Interval between watchdog scans; zero means 2ms.
	Interval time.Duration
	// BudgetSlack multiplies the hwmodel expected latency of each job to
	// form its overdue budget; zero means 8.
	BudgetSlack float64
	// BudgetFloor is the minimum per-job budget, absorbing queue wait
	// and host scheduling noise; zero means 50ms.
	BudgetFloor time.Duration
	// WedgeAfter is K: this many stall detections without an intervening
	// completed job declare the whole engine wedged (all in-flight jobs
	// failed, hot-reset initiated); zero means 3.
	WedgeAfter int
	// MaxResetAttempts bounds hot-reset attempts before the engine
	// escalates to permanent SoC-only degradation; zero means 3.
	MaxResetAttempts int
	// ResetBackoff is the wall delay between reset attempts; zero means
	// 1ms.
	ResetBackoff time.Duration
}

func (c WatchdogConfig) normalized() WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.BudgetSlack <= 0 {
		c.BudgetSlack = 8
	}
	if c.BudgetFloor <= 0 {
		c.BudgetFloor = 50 * time.Millisecond
	}
	if c.WedgeAfter <= 0 {
		c.WedgeAfter = 3
	}
	if c.MaxResetAttempts <= 0 {
		c.MaxResetAttempts = 3
	}
	if c.ResetBackoff <= 0 {
		c.ResetBackoff = time.Millisecond
	}
	return c
}

// EngineEventKind names a fault-domain transition.
type EngineEventKind uint8

// Fault-domain events, emitted through the hook installed with
// SetEventHook.
const (
	// EventStallDetected fires per job the watchdog failed as overdue.
	EventStallDetected EngineEventKind = iota + 1
	// EventWedgeDeclared fires when the stall streak crosses the
	// threshold: all in-flight jobs are failed and a hot-reset begins.
	EventWedgeDeclared
	// EventResetOK fires when a hot-reset attempt brings the engine back
	// to Live.
	EventResetOK
	// EventResetFailed fires per failed hot-reset attempt.
	EventResetFailed
	// EventDegraded fires when reset attempts are exhausted and the
	// engine permanently degrades to SoC-only operation.
	EventDegraded
)

// EngineEvent describes one fault-domain transition.
type EngineEvent struct {
	Kind  EngineEventKind
	State EngineState
	// Seq is the stalled job (EventStallDetected).
	Seq uint64
	// Pending is the in-flight job count failed by a wedge declaration.
	Pending int
	// Attempt is the 1-based reset attempt number.
	Attempt int
}

// EngineHealth is a snapshot of the engine fault domain.
type EngineHealth struct {
	State    EngineState
	Inflight int
	// Stalls counts jobs the watchdog failed as overdue; Wedges counts
	// whole-engine wedge declarations; Resets counts successful
	// hot-resets; ResetFailures counts failed reset attempts.
	Stalls, Wedges, Resets, ResetFailures uint64
	// ExpiredDropped counts jobs dropped at dequeue because their
	// deadline had already passed; LostJobs counts handles failed with
	// ErrEngineLost (each is a replay candidate for the SoC path).
	ExpiredDropped, LostJobs uint64
	// Quarantined reports the compute fault domain's verdict: the
	// engine is benched after repeated decode-verified mismatches and
	// only half-open probes run on it. CorruptMismatches /
	// Quarantines / Readmits are the ledger's lifetime totals.
	Quarantined           bool
	CorruptMismatches     uint64
	Quarantines, Readmits uint64
}

// CEngine is the hardware compression accelerator: a serial job queue
// served by one worker, the way a hardware queue pair drains submissions
// in order. It is also a recoverable fault domain: an optional watchdog
// detects stalled jobs and wedged queues, fails the in-flight journal
// with ErrEngineLost, and hot-resets the engine with bounded attempts
// before degrading permanently to SoC-only operation.
type CEngine struct {
	gen hwmodel.Generation
	// closeCh signals engine close to the watchdog goroutine.
	closeCh chan struct{}

	mu       sync.Mutex
	closed   bool
	tracer   *trace.Tracer
	injector *faults.Injector
	// sdc corrupts compressed output pre-checksum (silent data
	// corruption); integrity is the mismatch ledger that quarantines
	// the complex after repeated verified mismatches.
	sdc       *faults.ComputeInjector
	integrity *integrity.Ledger
	state     EngineState
	epoch     *engineEpoch
	seq       uint64
	inflight  map[uint64]*journalEntry
	wd        *WatchdogConfig
	hook      func(EngineEvent)
	// stallStreak counts watchdog stall detections since the last
	// genuinely completed job; reaching WedgeAfter declares a wedge.
	stallStreak int

	stalls, wedges, resets, resetFailures, expired, lost uint64
}

// SetTracer attaches an activity recorder; every executed job is logged.
// Pass nil to disable.
func (e *CEngine) SetTracer(t *trace.Tracer) {
	e.mu.Lock()
	e.tracer = t
	e.mu.Unlock()
}

func (e *CEngine) getTracer() *trace.Tracer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracer
}

// Tracer returns the attached activity recorder (nil when disabled).
func (e *CEngine) Tracer() *trace.Tracer { return e.getTracer() }

// SetInjector attaches a fault injector; every subsequent job draws a
// fault decision from it. Pass nil to disable.
func (e *CEngine) SetInjector(inj *faults.Injector) {
	e.mu.Lock()
	e.injector = inj
	e.mu.Unlock()
}

func (e *CEngine) getInjector() *faults.Injector {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.injector
}

// engineUnitID is the quarantine-ledger unit ID for the C-Engine
// complex (the serial hardware queue is one fault unit; SoC worker
// cores are 1..N and tracked by their own layers).
const engineUnitID = 0

// SetComputeInjector attaches the silent-data-corruption schedule:
// compressed outputs are corrupted *before* the engine checksums them,
// so only decode-verification catches it. Pass nil to disable.
func (e *CEngine) SetComputeInjector(inj *faults.ComputeInjector) {
	e.mu.Lock()
	e.sdc = inj
	e.mu.Unlock()
}

func (e *CEngine) getComputeInjector() *faults.ComputeInjector {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sdc
}

// ReportCorrupt records one decode-verified mismatch against the
// engine's output in the quarantine ledger and reports whether this
// mismatch quarantined the engine (K consecutive mismatches bench the
// complex; core falls back to the scalar/SoC path until a half-open
// probe clears it).
func (e *CEngine) ReportCorrupt() bool {
	quarantined := e.ledger().Mismatch(engineUnitID)
	if quarantined {
		if tr := e.getTracer(); tr != nil {
			tr.Record(trace.Event{Engine: hwmodel.CEngine.String(), Op: "quarantine",
				Err: "verified mismatch threshold reached"})
		}
	}
	return quarantined
}

// ReportVerified records one decode-verified success: the mismatch
// streak resets, and a quarantined engine that passed its half-open
// probe is readmitted. Reports whether a readmission happened.
func (e *CEngine) ReportVerified() bool {
	readmitted := e.ledger().Verified(engineUnitID)
	if readmitted {
		if tr := e.getTracer(); tr != nil {
			tr.Record(trace.Event{Engine: hwmodel.CEngine.String(), Op: "readmit"})
		}
	}
	return readmitted
}

// IntegrityAllow reports whether the quarantine ledger lets the engine
// execute: always for a clean engine, one half-open probe per window
// for a quarantined one. Callers that take the probe must report its
// verified outcome.
func (e *CEngine) IntegrityAllow() bool { return e.ledger().Allow(engineUnitID) }

// Quarantined reports the quarantine state without probe side effects.
func (e *CEngine) Quarantined() bool { return e.ledger().Quarantined(engineUnitID) }

// ledger lazily builds the quarantine ledger so zero-value engines and
// engines built before the compute fault domain keep working.
func (e *CEngine) ledger() *integrity.Ledger {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.integrity == nil {
		e.integrity = integrity.NewLedger(integrity.LedgerConfig{})
	}
	return e.integrity
}

// SetEventHook installs the fault-domain transition listener (stall,
// wedge, reset, degradation). The hook runs on the watchdog goroutine
// and must not block; pass nil to remove it.
func (e *CEngine) SetEventHook(fn func(EngineEvent)) {
	e.mu.Lock()
	e.hook = fn
	e.mu.Unlock()
}

// cengineQueueDepth mirrors a typical DOCA work-queue depth.
const cengineQueueDepth = 128

// engineWatchdog labels watchdog trace events.
const engineWatchdog = "watchdog"

func newCEngine(gen hwmodel.Generation) *CEngine {
	e := &CEngine{
		gen:      gen,
		closeCh:  make(chan struct{}),
		state:    EngineLive,
		epoch:    newEpoch(),
		inflight: make(map[uint64]*journalEntry),
	}
	go e.worker(e.epoch)
	return e
}

// Supports reports whether this engine supports algo/op (Table II).
func (e *CEngine) Supports(algo hwmodel.Algo, op hwmodel.Op) bool {
	return supportsCEngine(e.gen, algo, op)
}

// State reports the engine fault-domain position.
func (e *CEngine) State() EngineState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// Health snapshots the engine fault domain: state, in-flight depth, and
// the stall/reset/replay counters.
func (e *CEngine) Health() EngineHealth {
	led := e.ledger()
	mm, q, r := led.Counts()
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineHealth{
		State:             e.state,
		Inflight:          len(e.inflight),
		Stalls:            e.stalls,
		Wedges:            e.wedges,
		Resets:            e.resets,
		ResetFailures:     e.resetFailures,
		ExpiredDropped:    e.expired,
		LostJobs:          e.lost,
		Quarantined:       led.Quarantined(engineUnitID),
		CorruptMismatches: mm,
		Quarantines:       q,
		Readmits:          r,
	}
}

// InflightJobs snapshots the in-flight journal (tests and diagnostics).
func (e *CEngine) InflightJobs() []InflightJob {
	now := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]InflightJob, 0, len(e.inflight))
	for _, je := range e.inflight {
		out = append(out, InflightJob{
			Seq: je.seq, Algo: je.algo, Op: je.op,
			Bytes: len(je.input), Age: now.Sub(je.submitted),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Submit enqueues a job. It fails fast with ErrUnsupported when the
// hardware lacks the path (callers should have checked Supports, the way
// PEDAL's capability fallback does), with ErrQueueFull when the injector
// models a busy work queue, with ErrEngineLost while the engine is
// resetting or permanently degraded, and with ErrClosed after close.
func (e *CEngine) Submit(job Job) (*JobHandle, error) {
	return e.submit(job, true)
}

// TrySubmit is Submit without the blocking enqueue: when the work queue
// is full it returns ErrQueueFull immediately instead of waiting for a
// slot. The chunked pipeline uses it to spill overflow chunks to the SoC
// cores rather than stalling the scheduler behind a saturated engine.
func (e *CEngine) TrySubmit(job Job) (*JobHandle, error) {
	return e.submit(job, false)
}

func (e *CEngine) submit(job Job, blocking bool) (*JobHandle, error) {
	if !e.Supports(job.Algo, job.Op) {
		return nil, fmt.Errorf("%w: %v %v on %v C-Engine", ErrUnsupported, job.Algo, job.Op, e.gen)
	}
	// One fault decision per submitted job, drawn at submission time the
	// way the hardware queue would accept or reject the descriptor.
	var dec faults.Decision
	if inj := e.getInjector(); inj != nil {
		dec = inj.Next()
		if dec.Class == faults.QueueFull {
			return nil, fmt.Errorf("%w: %v %v", ErrQueueFull, job.Algo, job.Op)
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if e.state != EngineLive {
		st := e.state
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: engine %v", ErrEngineLost, st)
	}
	e.seq++
	h := &JobHandle{seq: e.seq, done: make(chan JobResult, 1)}
	ep := e.epoch
	ep.submitters.Add(1)
	// Journal the job before it leaves our hands: the watchdog scores
	// this entry against the latency budget, and a wedge declaration
	// fails it so the caller can replay on the SoC.
	e.inflight[h.seq] = &journalEntry{
		seq: h.seq, algo: job.Algo, op: job.Op, input: job.Input,
		submitted: time.Now(), handle: h,
	}
	e.mu.Unlock()
	defer ep.submitters.Done()
	q := queued{job: job, handle: h, fault: dec, seq: h.seq}
	// Enqueue outside the lock: a full queue must not wedge SetTracer or
	// close behind a blocked send, and retire never races this send — it
	// signals stop first and waits for in-flight submitters before
	// closing the queue.
	if blocking {
		select {
		case ep.queue <- q:
			return h, nil
		case <-ep.stop:
			return nil, e.submitFailed(h.seq)
		}
	}
	select {
	case ep.queue <- q:
		return h, nil
	case <-ep.stop:
		return nil, e.submitFailed(h.seq)
	default:
		e.journalRemove(h.seq)
		return nil, fmt.Errorf("%w: %v %v (queue depth %d)", ErrQueueFull, job.Algo, job.Op, cengineQueueDepth)
	}
}

// submitFailed cleans the journal after an enqueue lost against epoch
// retirement and picks the caller-facing error.
func (e *CEngine) submitFailed(seq uint64) error {
	e.journalRemove(seq)
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return fmt.Errorf("%w: engine resetting", ErrEngineLost)
}

func (e *CEngine) journalRemove(seq uint64) {
	e.mu.Lock()
	delete(e.inflight, seq)
	e.mu.Unlock()
}

// jobCompleted retires a journal entry after genuine execution and
// resets the watchdog's stall streak: a draining engine is not wedged.
func (e *CEngine) jobCompleted(seq uint64) {
	e.mu.Lock()
	delete(e.inflight, seq)
	e.stallStreak = 0
	e.mu.Unlock()
}

// Run is the synchronous convenience wrapper: submit and wait.
func (e *CEngine) Run(job Job) JobResult {
	h, err := e.Submit(job)
	if err != nil {
		return JobResult{Err: err}
	}
	return h.Wait()
}

func (e *CEngine) worker(ep *engineEpoch) {
	for q := range ep.queue {
		if ep.stale.Load() {
			// Reset-retired epoch: the hardware behind this queue is
			// gone. The watchdog already failed journaled handles; the
			// duplicate completion below is a dropped non-blocking send.
			e.journalRemove(q.seq)
			q.handle.complete(JobResult{Seq: q.seq, Err: fmt.Errorf("%w: epoch retired", ErrEngineLost)})
			continue
		}
		if !q.job.Deadline.IsZero() && time.Now().After(q.job.Deadline) {
			// Dead on arrival: the submitter's wait deadline has already
			// fired. Executing would spend engine time on an abandoned
			// result, so drop at dequeue.
			e.noteExpired(q)
			e.journalRemove(q.seq)
			q.handle.complete(JobResult{Seq: q.seq, Err: fmt.Errorf("%w: expired in queue", ErrDeadline)})
			continue
		}
		switch q.fault.Class {
		case faults.Stall:
			// Injected descriptor loss: the engine accepted the job and
			// will never complete it. The journal entry stays; only the
			// watchdog (or the caller's wait deadline) frees the caller.
			continue
		case faults.Wedge:
			// Injected firmware wedge: stop draining entirely until the
			// epoch is retired by a hot-reset or engine close.
			<-ep.stop
			e.journalRemove(q.seq)
			q.handle.complete(JobResult{Seq: q.seq, Err: fmt.Errorf("%w: engine wedged", ErrEngineLost)})
			continue
		}
		res := e.execute(q.job, q.fault)
		res.Seq = q.seq
		e.jobCompleted(q.seq)
		q.handle.complete(res)
	}
}

func (e *CEngine) noteExpired(q queued) {
	e.mu.Lock()
	e.expired++
	tr := e.tracer
	e.mu.Unlock()
	if tr != nil {
		tr.Record(trace.Event{
			Engine: hwmodel.CEngine.String(), Algo: q.job.Algo.String(),
			Op: "deadline_expired_drop", InBytes: len(q.job.Input),
			Err: ErrDeadline.Error(),
		})
	}
}

// StartWatchdog arms the stall watchdog: a goroutine that scores every
// journaled job against its expected-latency budget, fails overdue jobs
// with ErrEngineLost, declares the engine wedged after WedgeAfter
// consecutive stalls, and drives the hot-reset/degradation state
// machine. Idempotent: the first configuration wins.
func (e *CEngine) StartWatchdog(cfg WatchdogConfig) {
	cfg = cfg.normalized()
	e.mu.Lock()
	if e.closed || e.wd != nil {
		e.mu.Unlock()
		return
	}
	e.wd = &cfg
	e.mu.Unlock()
	go e.watchdog(cfg)
}

// WatchdogEnabled reports whether the stall watchdog is armed.
func (e *CEngine) WatchdogEnabled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.wd != nil
}

func (e *CEngine) watchdog(cfg WatchdogConfig) {
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-e.closeCh:
			return
		case <-tick.C:
		}
		if wedged := e.scan(cfg); wedged {
			e.hotReset(cfg)
		}
	}
}

// budget is the expected-latency allowance for one in-flight job: the
// hwmodel cost of the operation scaled by the configured slack, plus a
// floor absorbing queue wait and host scheduling noise. Decompression
// cost scales with the expanded output, unknown while in flight, so the
// compressed size is inflated by a nominal expansion ratio first.
func (e *CEngine) budget(cfg WatchdogConfig, je *journalEntry) time.Duration {
	n := len(je.input)
	if je.op == hwmodel.Decompress {
		n *= 8
	}
	d, ok := hwmodel.OpCost(e.gen, hwmodel.CEngine, je.algo, je.op, n)
	if !ok {
		d = 0
	}
	return cfg.BudgetFloor + time.Duration(float64(d)*cfg.BudgetSlack)
}

// scan fails jobs whose budget has expired and reports whether the
// stall streak crossed the wedge threshold (the caller then hot-resets).
func (e *CEngine) scan(cfg WatchdogConfig) bool {
	now := time.Now()
	e.mu.Lock()
	if e.closed || e.state != EngineLive {
		e.mu.Unlock()
		return false
	}
	var overdue []*journalEntry
	for _, je := range e.inflight {
		if now.Sub(je.submitted) > e.budget(cfg, je) {
			overdue = append(overdue, je)
		}
	}
	if len(overdue) == 0 {
		e.mu.Unlock()
		return false
	}
	sort.Slice(overdue, func(a, b int) bool { return overdue[a].seq < overdue[b].seq })
	for _, je := range overdue {
		delete(e.inflight, je.seq)
		e.stalls++
		e.lost++
		e.stallStreak++
	}
	wedged := e.stallStreak >= cfg.WedgeAfter
	var drained []*journalEntry
	if wedged {
		e.state = EngineResetting
		e.wedges++
		for _, je := range e.inflight {
			drained = append(drained, je)
			e.lost++
		}
		e.inflight = make(map[uint64]*journalEntry)
		e.stallStreak = 0
	}
	tr := e.tracer
	hook := e.hook
	e.mu.Unlock()

	for _, je := range overdue {
		je.handle.complete(JobResult{Seq: je.seq, Err: fmt.Errorf(
			"%w: job %d stalled (%v %v over %d bytes)", ErrEngineLost, je.seq, je.algo, je.op, len(je.input))})
		if tr != nil {
			tr.Record(trace.Event{
				Engine: engineWatchdog, Algo: je.algo.String(),
				Op: "engine_stall_detected", InBytes: len(je.input), Err: "job overdue",
			})
		}
		if hook != nil {
			hook(EngineEvent{Kind: EventStallDetected, State: EngineLive, Seq: je.seq})
		}
	}
	if wedged {
		sort.Slice(drained, func(a, b int) bool { return drained[a].seq < drained[b].seq })
		for _, je := range drained {
			je.handle.complete(JobResult{Seq: je.seq, Err: fmt.Errorf(
				"%w: engine wedged with job %d in flight", ErrEngineLost, je.seq)})
		}
		pending := len(overdue) + len(drained)
		if tr != nil {
			tr.Record(trace.Event{
				Engine: engineWatchdog, Op: "engine_wedge_declared",
				InBytes: pending, Err: "stall streak exhausted budget",
			})
		}
		if hook != nil {
			hook(EngineEvent{Kind: EventWedgeDeclared, State: EngineResetting, Pending: pending})
		}
	}
	return wedged
}

// hotReset retires the wedged epoch and re-opens the engine with a
// fresh queue and worker (the DOCA work-queue teardown + rebuild of a
// device re-open). Attempts are bounded: a firmware that refuses to come
// back escalates to permanent SoC-only degradation.
func (e *CEngine) hotReset(cfg WatchdogConfig) {
	e.mu.Lock()
	old := e.epoch
	tr := e.tracer
	hook := e.hook
	e.mu.Unlock()
	old.retire(true)
	for attempt := 1; attempt <= cfg.MaxResetAttempts; attempt++ {
		if attempt > 1 {
			time.Sleep(cfg.ResetBackoff)
		}
		if dec := e.getInjector().NextReset(); dec.Class == faults.ResetFail {
			e.mu.Lock()
			e.resetFailures++
			e.mu.Unlock()
			if tr != nil {
				tr.Record(trace.Event{Engine: engineWatchdog, Op: "engine_reset",
					Err: fmt.Sprintf("attempt %d/%d failed", attempt, cfg.MaxResetAttempts)})
			}
			if hook != nil {
				hook(EngineEvent{Kind: EventResetFailed, State: EngineResetting, Attempt: attempt})
			}
			continue
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		ep := newEpoch()
		e.epoch = ep
		e.state = EngineLive
		e.resets++
		e.mu.Unlock()
		go e.worker(ep)
		if tr != nil {
			tr.Record(trace.Event{Engine: engineWatchdog, Op: "engine_reset"})
		}
		if hook != nil {
			hook(EngineEvent{Kind: EventResetOK, State: EngineLive, Attempt: attempt})
		}
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.state = EngineDegraded
	e.mu.Unlock()
	if tr != nil {
		tr.Record(trace.Event{Engine: engineWatchdog, Op: "engine_degraded",
			Err: "reset attempts exhausted"})
	}
	if hook != nil {
		hook(EngineEvent{Kind: EventDegraded, State: EngineDegraded, Attempt: cfg.MaxResetAttempts})
	}
}

// Reset manually hot-resets the engine: every in-flight job fails with
// ErrEngineLost, the queue is rebuilt, and bounded attempts escalate to
// permanent degradation exactly like a watchdog-initiated reset. It
// returns the resulting state. Resetting and Degraded engines return
// their current state unchanged.
func (e *CEngine) Reset() EngineState {
	e.mu.Lock()
	if e.closed || e.state != EngineLive {
		st := e.state
		e.mu.Unlock()
		return st
	}
	cfg := WatchdogConfig{}.normalized()
	if e.wd != nil {
		cfg = *e.wd
	}
	e.state = EngineResetting
	var drained []*journalEntry
	for _, je := range e.inflight {
		drained = append(drained, je)
		e.lost++
	}
	e.inflight = make(map[uint64]*journalEntry)
	e.stallStreak = 0
	e.mu.Unlock()
	sort.Slice(drained, func(a, b int) bool { return drained[a].seq < drained[b].seq })
	for _, je := range drained {
		je.handle.complete(JobResult{Seq: je.seq, Err: fmt.Errorf(
			"%w: manual reset with job %d in flight", ErrEngineLost, je.seq)})
	}
	e.hotReset(cfg)
	return e.State()
}

func (e *CEngine) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	ep := e.epoch
	e.mu.Unlock()
	close(e.closeCh)
	// Unblock submitters stuck on a full queue, wait until none are in
	// flight, then close the queue so the worker drains what was
	// accepted and exits. This ordering makes close(queue) race-free.
	ep.retire(false)
	<-ep.drained
}

// execute performs the real compression work and attaches the modelled
// hardware duration. Failed jobs are traced too, with the error noted.
func (e *CEngine) execute(job Job, fault faults.Decision) JobResult {
	wallStart := time.Now()
	res := e.executeInner(job, fault)
	if tr := e.getTracer(); tr != nil {
		ev := trace.Event{
			Engine: hwmodel.CEngine.String(),
			Algo:   job.Algo.String(), Op: job.Op.String(),
			InBytes: len(job.Input), OutBytes: len(res.Output),
			Virtual: res.Virtual, Wall: time.Since(wallStart),
		}
		if res.Err != nil {
			ev.Err = res.Err.Error()
		}
		tr.Record(ev)
	}
	return res
}

func (e *CEngine) executeInner(job Job, fault faults.Decision) JobResult {
	switch fault.Class {
	case faults.Transient:
		return JobResult{Err: fmt.Errorf("%w: injected %v %v fault", ErrTransient, job.Algo, job.Op)}
	case faults.Persistent:
		return JobResult{Err: fmt.Errorf("%w: injected %v %v fault", ErrHardware, job.Algo, job.Op)}
	case faults.Hang:
		// The worker stalls exactly like a hung hardware queue entry:
		// head-of-line blocking for everything behind it, and only a
		// wait deadline frees the submitter.
		time.Sleep(fault.Delay)
	}
	limit := job.MaxOutput
	if limit <= 0 {
		limit = 1 << 30
	}
	var out []byte
	var err error
	switch {
	case job.Algo == hwmodel.Deflate && job.Op == hwmodel.Compress:
		// The hardware engine compresses in one pass at a fixed effort.
		out = flate.Compress(job.Input, flate.DefaultLevel)
	case job.Algo == hwmodel.Deflate && job.Op == hwmodel.Decompress:
		out, err = flate.DecompressLimit(job.Input, limit)
	case job.Algo == hwmodel.LZ4 && job.Op == hwmodel.Decompress:
		out, err = lz4.DecompressLimit(job.Input, limit)
	default:
		return JobResult{Err: fmt.Errorf("%w: %v %v", ErrUnsupported, job.Algo, job.Op)}
	}
	if err != nil {
		return JobResult{Err: err}
	}
	// Compute-fault (SDC) injection happens BEFORE the engine digests
	// its output: the corrupted bytes carry a valid checksum, exactly
	// like a miscomputing compression lane. VerifyOutput cannot see it;
	// only decode-verification against the source digest can. Compress
	// only — the SDC model targets the compression kernels the paper
	// offloads.
	if job.Op == hwmodel.Compress {
		if inj := e.getComputeInjector(); inj != nil {
			if d := inj.Next(engineUnitID); d.Class != faults.None {
				inj.Apply(d, out)
			}
		}
	}
	// The engine reports the CRC of the data it produced; corruption
	// injected below therefore mismatches it, the way a bit flip on the
	// PCIe/DMA path would.
	sum := checksum.CRC32(out)
	if fault.Class == faults.Corrupt && len(out) > 0 {
		out[len(out)/2] ^= 0x55
	}
	// Hardware time scales with the volume of data moved through the
	// engine, which for decompression is the expanded output.
	n := len(job.Input)
	if job.Op == hwmodel.Decompress {
		n = len(out)
	}
	d, ok := hwmodel.OpCost(e.gen, hwmodel.CEngine, job.Algo, job.Op, n)
	if !ok {
		return JobResult{Err: fmt.Errorf("%w: no cost model for %v %v", ErrUnsupported, job.Algo, job.Op)}
	}
	return JobResult{Output: out, Virtual: d, Checksum: sum}
}
