package dpu

import (
	"fmt"
	"sync"
	"time"

	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/lz4"
	"pedal/internal/trace"
)

// JobResult is the completion record of one C-Engine job.
type JobResult struct {
	// Output is the produced data (compressed or decompressed bytes).
	Output []byte
	// Virtual is the modelled hardware execution time of the job.
	Virtual time.Duration
	// Err is non-nil when the job failed (unsupported path or corrupt
	// input). Hardware reports such failures through the work queue's
	// completion status.
	Err error
}

// Job describes one compression or decompression operation submitted to
// the C-Engine. Input must stay unmodified until completion, mirroring
// the DOCA buffer ownership rules.
type Job struct {
	Algo  hwmodel.Algo
	Op    hwmodel.Op
	Input []byte
	// MaxOutput bounds decompression output (DOCA requires the caller to
	// provide a destination buffer; this models its capacity). Zero means
	// a generous default.
	MaxOutput int
}

// JobHandle tracks an in-flight job.
type JobHandle struct {
	done chan JobResult
}

// Wait blocks until the job completes and returns its result.
func (h *JobHandle) Wait() JobResult { return <-h.done }

type queued struct {
	job    Job
	handle *JobHandle
}

// CEngine is the hardware compression accelerator: a serial job queue
// served by one worker, the way a hardware queue pair drains submissions
// in order.
type CEngine struct {
	gen   hwmodel.Generation
	queue chan queued

	mu     sync.Mutex
	closed bool
	tracer *trace.Tracer
}

// SetTracer attaches an activity recorder; every executed job is logged.
// Pass nil to disable.
func (e *CEngine) SetTracer(t *trace.Tracer) {
	e.mu.Lock()
	e.tracer = t
	e.mu.Unlock()
}

func (e *CEngine) getTracer() *trace.Tracer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracer
}

// cengineQueueDepth mirrors a typical DOCA work-queue depth.
const cengineQueueDepth = 128

func newCEngine(gen hwmodel.Generation) *CEngine {
	e := &CEngine{
		gen:   gen,
		queue: make(chan queued, cengineQueueDepth),
	}
	go e.worker()
	return e
}

// Supports reports whether this engine supports algo/op (Table II).
func (e *CEngine) Supports(algo hwmodel.Algo, op hwmodel.Op) bool {
	return supportsCEngine(e.gen, algo, op)
}

// Submit enqueues a job. It fails fast with ErrUnsupported when the
// hardware lacks the path (callers should have checked Supports, the way
// PEDAL's capability fallback does) and with ErrClosed after close.
func (e *CEngine) Submit(job Job) (*JobHandle, error) {
	if !e.Supports(job.Algo, job.Op) {
		return nil, fmt.Errorf("%w: %v %v on %v C-Engine", ErrUnsupported, job.Algo, job.Op, e.gen)
	}
	h := &JobHandle{done: make(chan JobResult, 1)}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	e.queue <- queued{job: job, handle: h}
	return h, nil
}

// Run is the synchronous convenience wrapper: submit and wait.
func (e *CEngine) Run(job Job) JobResult {
	h, err := e.Submit(job)
	if err != nil {
		return JobResult{Err: err}
	}
	return h.Wait()
}

func (e *CEngine) worker() {
	for q := range e.queue {
		q.handle.done <- e.execute(q.job)
	}
}

func (e *CEngine) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	close(e.queue)
}

// execute performs the real compression work and attaches the modelled
// hardware duration.
func (e *CEngine) execute(job Job) JobResult {
	wallStart := time.Now()
	res := e.executeInner(job)
	if tr := e.getTracer(); tr != nil && res.Err == nil {
		tr.Record(trace.Event{
			Engine: hwmodel.CEngine.String(),
			Algo:   job.Algo.String(), Op: job.Op.String(),
			InBytes: len(job.Input), OutBytes: len(res.Output),
			Virtual: res.Virtual, Wall: time.Since(wallStart),
		})
	}
	return res
}

func (e *CEngine) executeInner(job Job) JobResult {
	limit := job.MaxOutput
	if limit <= 0 {
		limit = 1 << 30
	}
	var out []byte
	var err error
	switch {
	case job.Algo == hwmodel.Deflate && job.Op == hwmodel.Compress:
		// The hardware engine compresses in one pass at a fixed effort.
		out = flate.Compress(job.Input, flate.DefaultLevel)
	case job.Algo == hwmodel.Deflate && job.Op == hwmodel.Decompress:
		out, err = flate.DecompressLimit(job.Input, limit)
	case job.Algo == hwmodel.LZ4 && job.Op == hwmodel.Decompress:
		out, err = lz4.DecompressLimit(job.Input, limit)
	default:
		return JobResult{Err: fmt.Errorf("%w: %v %v", ErrUnsupported, job.Algo, job.Op)}
	}
	if err != nil {
		return JobResult{Err: err}
	}
	// Hardware time scales with the volume of data moved through the
	// engine, which for decompression is the expanded output.
	n := len(job.Input)
	if job.Op == hwmodel.Decompress {
		n = len(out)
	}
	d, ok := hwmodel.OpCost(e.gen, hwmodel.CEngine, job.Algo, job.Op, n)
	if !ok {
		return JobResult{Err: fmt.Errorf("%w: no cost model for %v %v", ErrUnsupported, job.Algo, job.Op)}
	}
	return JobResult{Output: out, Virtual: d}
}
