package dpu

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pedal/internal/checksum"
	"pedal/internal/faults"
	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/lz4"
	"pedal/internal/trace"
)

// JobResult is the completion record of one C-Engine job.
type JobResult struct {
	// Output is the produced data (compressed or decompressed bytes).
	Output []byte
	// Virtual is the modelled hardware execution time of the job.
	Virtual time.Duration
	// Checksum is the engine-computed CRC-32 of Output — the completion
	// metadata real DOCA work queues report alongside the data. Callers
	// verify it against the received bytes to detect corruption on the
	// data path (see VerifyOutput).
	Checksum uint32
	// Err is non-nil when the job failed (unsupported path, corrupt
	// input, or an injected runtime fault). Hardware reports such
	// failures through the work queue's completion status.
	Err error
}

// VerifyOutput recomputes the output CRC and compares it with the
// engine-reported checksum; false means the output was corrupted after
// the engine produced it and must not be used.
func (r *JobResult) VerifyOutput() bool {
	return r.Err == nil && checksum.CRC32(r.Output) == r.Checksum
}

// Job describes one compression or decompression operation submitted to
// the C-Engine. Input must stay unmodified until completion, mirroring
// the DOCA buffer ownership rules.
type Job struct {
	Algo  hwmodel.Algo
	Op    hwmodel.Op
	Input []byte
	// MaxOutput bounds decompression output (DOCA requires the caller to
	// provide a destination buffer; this models its capacity). Zero means
	// a generous default.
	MaxOutput int
}

// JobHandle tracks an in-flight job.
type JobHandle struct {
	done chan JobResult
}

// Wait blocks until the job completes and returns its result.
func (h *JobHandle) Wait() JobResult { return <-h.done }

// WaitTimeout blocks up to d for completion; ok=false means the deadline
// fired first and the result carries ErrDeadline. The abandoned job may
// still complete in the background — the handle's buffered channel keeps
// the worker from blocking on it. d <= 0 waits forever.
func (h *JobHandle) WaitTimeout(d time.Duration) (JobResult, bool) {
	if d <= 0 {
		return h.Wait(), true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-h.done:
		return r, true
	case <-timer.C:
		return JobResult{Err: ErrDeadline}, false
	}
}

// WaitContext blocks until completion or ctx cancellation; ok=false
// means ctx won and the result carries ErrDeadline.
func (h *JobHandle) WaitContext(ctx context.Context) (JobResult, bool) {
	select {
	case r := <-h.done:
		return r, true
	case <-ctx.Done():
		return JobResult{Err: fmt.Errorf("%w: %v", ErrDeadline, ctx.Err())}, false
	}
}

type queued struct {
	job    Job
	handle *JobHandle
	fault  faults.Decision
}

// CEngine is the hardware compression accelerator: a serial job queue
// served by one worker, the way a hardware queue pair drains submissions
// in order.
type CEngine struct {
	gen   hwmodel.Generation
	queue chan queued
	// done signals close to submitters blocked on a full queue.
	done chan struct{}
	// submitters counts Submit calls past the closed-check; close waits
	// for them before closing the queue so a send never races the close.
	submitters sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	tracer   *trace.Tracer
	injector *faults.Injector
}

// SetTracer attaches an activity recorder; every executed job is logged.
// Pass nil to disable.
func (e *CEngine) SetTracer(t *trace.Tracer) {
	e.mu.Lock()
	e.tracer = t
	e.mu.Unlock()
}

func (e *CEngine) getTracer() *trace.Tracer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracer
}

// Tracer returns the attached activity recorder (nil when disabled).
func (e *CEngine) Tracer() *trace.Tracer { return e.getTracer() }

// SetInjector attaches a fault injector; every subsequent job draws a
// fault decision from it. Pass nil to disable.
func (e *CEngine) SetInjector(inj *faults.Injector) {
	e.mu.Lock()
	e.injector = inj
	e.mu.Unlock()
}

func (e *CEngine) getInjector() *faults.Injector {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.injector
}

// cengineQueueDepth mirrors a typical DOCA work-queue depth.
const cengineQueueDepth = 128

func newCEngine(gen hwmodel.Generation) *CEngine {
	e := &CEngine{
		gen:   gen,
		queue: make(chan queued, cengineQueueDepth),
		done:  make(chan struct{}),
	}
	go e.worker()
	return e
}

// Supports reports whether this engine supports algo/op (Table II).
func (e *CEngine) Supports(algo hwmodel.Algo, op hwmodel.Op) bool {
	return supportsCEngine(e.gen, algo, op)
}

// Submit enqueues a job. It fails fast with ErrUnsupported when the
// hardware lacks the path (callers should have checked Supports, the way
// PEDAL's capability fallback does), with ErrQueueFull when the injector
// models a busy work queue, and with ErrClosed after close.
func (e *CEngine) Submit(job Job) (*JobHandle, error) {
	if !e.Supports(job.Algo, job.Op) {
		return nil, fmt.Errorf("%w: %v %v on %v C-Engine", ErrUnsupported, job.Algo, job.Op, e.gen)
	}
	// One fault decision per submitted job, drawn at submission time the
	// way the hardware queue would accept or reject the descriptor.
	var dec faults.Decision
	if inj := e.getInjector(); inj != nil {
		dec = inj.Next()
		if dec.Class == faults.QueueFull {
			return nil, fmt.Errorf("%w: %v %v", ErrQueueFull, job.Algo, job.Op)
		}
	}
	h := &JobHandle{done: make(chan JobResult, 1)}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.submitters.Add(1)
	e.mu.Unlock()
	defer e.submitters.Done()
	// Enqueue outside the lock: a full queue must not wedge SetTracer or
	// close behind a blocked send, and close never races this send — it
	// signals done first and waits for in-flight submitters before
	// closing the queue.
	select {
	case e.queue <- queued{job: job, handle: h, fault: dec}:
		return h, nil
	case <-e.done:
		return nil, ErrClosed
	}
}

// TrySubmit is Submit without the blocking enqueue: when the work queue
// is full it returns ErrQueueFull immediately instead of waiting for a
// slot. The chunked pipeline uses it to spill overflow chunks to the SoC
// cores rather than stalling the scheduler behind a saturated engine.
func (e *CEngine) TrySubmit(job Job) (*JobHandle, error) {
	if !e.Supports(job.Algo, job.Op) {
		return nil, fmt.Errorf("%w: %v %v on %v C-Engine", ErrUnsupported, job.Algo, job.Op, e.gen)
	}
	var dec faults.Decision
	if inj := e.getInjector(); inj != nil {
		dec = inj.Next()
		if dec.Class == faults.QueueFull {
			return nil, fmt.Errorf("%w: %v %v", ErrQueueFull, job.Algo, job.Op)
		}
	}
	h := &JobHandle{done: make(chan JobResult, 1)}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.submitters.Add(1)
	e.mu.Unlock()
	defer e.submitters.Done()
	select {
	case e.queue <- queued{job: job, handle: h, fault: dec}:
		return h, nil
	case <-e.done:
		return nil, ErrClosed
	default:
		return nil, fmt.Errorf("%w: %v %v (queue depth %d)", ErrQueueFull, job.Algo, job.Op, cengineQueueDepth)
	}
}

// Run is the synchronous convenience wrapper: submit and wait.
func (e *CEngine) Run(job Job) JobResult {
	h, err := e.Submit(job)
	if err != nil {
		return JobResult{Err: err}
	}
	return h.Wait()
}

func (e *CEngine) worker() {
	for q := range e.queue {
		q.handle.done <- e.execute(q.job, q.fault)
	}
}

func (e *CEngine) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	// Unblock submitters stuck on a full queue, wait until none are in
	// flight, then close the queue so the worker drains what was
	// accepted and exits. This ordering makes close(queue) race-free.
	close(e.done)
	e.submitters.Wait()
	close(e.queue)
}

// execute performs the real compression work and attaches the modelled
// hardware duration. Failed jobs are traced too, with the error noted.
func (e *CEngine) execute(job Job, fault faults.Decision) JobResult {
	wallStart := time.Now()
	res := e.executeInner(job, fault)
	if tr := e.getTracer(); tr != nil {
		ev := trace.Event{
			Engine: hwmodel.CEngine.String(),
			Algo:   job.Algo.String(), Op: job.Op.String(),
			InBytes: len(job.Input), OutBytes: len(res.Output),
			Virtual: res.Virtual, Wall: time.Since(wallStart),
		}
		if res.Err != nil {
			ev.Err = res.Err.Error()
		}
		tr.Record(ev)
	}
	return res
}

func (e *CEngine) executeInner(job Job, fault faults.Decision) JobResult {
	switch fault.Class {
	case faults.Transient:
		return JobResult{Err: fmt.Errorf("%w: injected %v %v fault", ErrTransient, job.Algo, job.Op)}
	case faults.Persistent:
		return JobResult{Err: fmt.Errorf("%w: injected %v %v fault", ErrHardware, job.Algo, job.Op)}
	case faults.Hang:
		// The worker stalls exactly like a hung hardware queue entry:
		// head-of-line blocking for everything behind it, and only a
		// wait deadline frees the submitter.
		time.Sleep(fault.Delay)
	}
	limit := job.MaxOutput
	if limit <= 0 {
		limit = 1 << 30
	}
	var out []byte
	var err error
	switch {
	case job.Algo == hwmodel.Deflate && job.Op == hwmodel.Compress:
		// The hardware engine compresses in one pass at a fixed effort.
		out = flate.Compress(job.Input, flate.DefaultLevel)
	case job.Algo == hwmodel.Deflate && job.Op == hwmodel.Decompress:
		out, err = flate.DecompressLimit(job.Input, limit)
	case job.Algo == hwmodel.LZ4 && job.Op == hwmodel.Decompress:
		out, err = lz4.DecompressLimit(job.Input, limit)
	default:
		return JobResult{Err: fmt.Errorf("%w: %v %v", ErrUnsupported, job.Algo, job.Op)}
	}
	if err != nil {
		return JobResult{Err: err}
	}
	// The engine reports the CRC of the data it produced; corruption
	// injected below therefore mismatches it, the way a bit flip on the
	// PCIe/DMA path would.
	sum := checksum.CRC32(out)
	if fault.Class == faults.Corrupt && len(out) > 0 {
		out[len(out)/2] ^= 0x55
	}
	// Hardware time scales with the volume of data moved through the
	// engine, which for decompression is the expanded output.
	n := len(job.Input)
	if job.Op == hwmodel.Decompress {
		n = len(out)
	}
	d, ok := hwmodel.OpCost(e.gen, hwmodel.CEngine, job.Algo, job.Op, n)
	if !ok {
		return JobResult{Err: fmt.Errorf("%w: no cost model for %v %v", ErrUnsupported, job.Algo, job.Op)}
	}
	return JobResult{Output: out, Virtual: d, Checksum: sum}
}
