// Package dpu models NVIDIA BlueField-2 and BlueField-3 DPUs: the ARM
// System-on-Chip complex, the hardware compression accelerator
// ("C-Engine"), the per-generation capability matrix of the paper's
// Table II, and the two host modes (§II-A).
//
// The C-Engine executes real compression work (via the from-scratch Go
// codecs) on an asynchronous job queue served by a worker goroutine, the
// way the real accelerator is driven through DOCA work queues. Virtual
// durations come from the calibrated cost model in internal/hwmodel.
package dpu

import (
	"errors"
	"fmt"

	"pedal/internal/faults"
	"pedal/internal/hwmodel"
)

// Mode is the DPU operating mode (paper §II-A).
type Mode uint8

// Operating modes. PEDAL requires SeparatedHost: SmartNIC (Embedded CPU
// Function) mode loses RDMA-IB support on the host.
const (
	SeparatedHost Mode = iota + 1
	SmartNIC
)

func (m Mode) String() string {
	switch m {
	case SeparatedHost:
		return "Separated Host"
	case SmartNIC:
		return "SmartNIC (Embedded CPU Function)"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Errors returned by device construction and job submission.
var (
	ErrUnsupported = errors.New("dpu: operation not supported by this engine")
	ErrClosed      = errors.New("dpu: device closed")
)

// Runtime failure classes, the way real DOCA work queues surface them in
// completion statuses. ErrUnsupported and ErrClosed above are *static*
// conditions; these are *dynamic* faults a healthy retry/fallback layer
// must absorb.
var (
	// ErrTransient is a retryable engine fault; an immediate
	// resubmission may succeed.
	ErrTransient = errors.New("dpu: transient engine fault")
	// ErrHardware is a persistent engine failure; retrying is futile
	// until the engine recovers.
	ErrHardware = errors.New("dpu: hardware engine failure")
	// ErrQueueFull rejects a submission on a busy work queue (EAGAIN).
	ErrQueueFull = errors.New("dpu: work queue full")
	// ErrDeadline fires when a job misses its completion deadline.
	ErrDeadline = errors.New("dpu: job deadline exceeded")
	// ErrCorrupt marks engine output whose checksum failed verification.
	ErrCorrupt = errors.New("dpu: engine output failed checksum")
	// ErrEngineLost marks a job lost to an engine fault-domain event: the
	// watchdog declared the job stalled, the whole engine wedged, or the
	// engine is resetting/degraded. It is deliberately NOT transient —
	// resubmitting to the same dead engine is futile; the caller must
	// replay the journaled work on the SoC path instead.
	ErrEngineLost = errors.New("dpu: engine lost")
)

// IsTransient reports whether err belongs to a failure class a caller
// may retry: transient faults, queue-full rejections, detected output
// corruption, and missed deadlines. Persistent hardware failures and
// capability misses are not retryable.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrQueueFull) ||
		errors.Is(err, ErrCorrupt) || errors.Is(err, ErrDeadline)
}

// SoCInfo describes the ARM core complex of a generation.
type SoCInfo struct {
	Cores     int
	CoreModel string
	MemoryGB  int
	Memory    string
}

// socInfo per generation (paper §II-A and §V-B: Thor cluster).
var socInfo = map[hwmodel.Generation]SoCInfo{
	hwmodel.BlueField2: {Cores: 8, CoreModel: "ARM Cortex-A72 @ 2.75 GHz", MemoryGB: 16, Memory: "DDR4"},
	hwmodel.BlueField3: {Cores: 16, CoreModel: "ARM Cortex-A78", MemoryGB: 16, Memory: "DDR5"},
}

// Device is one simulated BlueField DPU.
type Device struct {
	gen     hwmodel.Generation
	mode    Mode
	cengine *CEngine
	closed  bool
}

// NewDevice creates a DPU of the given generation in the given mode.
func NewDevice(gen hwmodel.Generation, mode Mode) (*Device, error) {
	if _, ok := socInfo[gen]; !ok {
		return nil, fmt.Errorf("dpu: unknown generation %v", gen)
	}
	switch mode {
	case SeparatedHost, SmartNIC:
	default:
		return nil, fmt.Errorf("dpu: unknown mode %v", mode)
	}
	d := &Device{gen: gen, mode: mode}
	d.cengine = newCEngine(gen)
	return d, nil
}

// Generation reports the device generation.
func (d *Device) Generation() hwmodel.Generation { return d.gen }

// Mode reports the operating mode.
func (d *Device) Mode() Mode { return d.mode }

// SoC describes the ARM core complex.
func (d *Device) SoC() SoCInfo { return socInfo[d.gen] }

// CEngine returns the hardware compression engine.
func (d *Device) CEngine() *CEngine { return d.cengine }

// SetFaultInjector attaches a fault injector to the C-Engine; every
// subsequent job draws a fault decision from it. Pass nil to disable.
func (d *Device) SetFaultInjector(inj *faults.Injector) { d.cengine.SetInjector(inj) }

// HostRDMASupported reports whether the host retains RDMA-IB support;
// false in SmartNIC mode up to and including BlueField-3 (§II-A).
func (d *Device) HostRDMASupported() bool { return d.mode == SeparatedHost }

// Close shuts down the C-Engine worker. Further submissions fail.
func (d *Device) Close() {
	if d.closed {
		return
	}
	d.closed = true
	d.cengine.close()
}

// SupportsCEngine reports whether the C-Engine natively supports algo/op,
// per the paper's Table II. Only DEFLATE and LZ4 exist in the hardware;
// zlib and SZ3 C-Engine support are PEDAL software extensions built on
// the DEFLATE path (Table III).
func (d *Device) SupportsCEngine(algo hwmodel.Algo, op hwmodel.Op) bool {
	return supportsCEngine(d.gen, algo, op)
}

func supportsCEngine(gen hwmodel.Generation, algo hwmodel.Algo, op hwmodel.Op) bool {
	switch gen {
	case hwmodel.BlueField2:
		// DEFLATE compression and decompression.
		return algo == hwmodel.Deflate && (op == hwmodel.Compress || op == hwmodel.Decompress)
	case hwmodel.BlueField3:
		// Decompression only: DEFLATE and LZ4.
		if op != hwmodel.Decompress {
			return false
		}
		return algo == hwmodel.Deflate || algo == hwmodel.LZ4
	default:
		return false
	}
}
