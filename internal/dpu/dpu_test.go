package dpu

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"pedal/internal/flate"
	"pedal/internal/hwmodel"
	"pedal/internal/lz4"
)

func newBF2(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(hwmodel.BlueField2, SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func newBF3(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(hwmodel.BlueField3, SeparatedHost)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestDeviceInfo(t *testing.T) {
	d2, d3 := newBF2(t), newBF3(t)
	if d2.SoC().Cores != 8 || !strings.Contains(d2.SoC().CoreModel, "A72") {
		t.Errorf("BF2 SoC info wrong: %+v", d2.SoC())
	}
	if d3.SoC().Cores != 16 || !strings.Contains(d3.SoC().CoreModel, "A78") {
		t.Errorf("BF3 SoC info wrong: %+v", d3.SoC())
	}
	if d2.SoC().Memory != "DDR4" || d3.SoC().Memory != "DDR5" {
		t.Error("memory generations wrong")
	}
}

func TestInvalidConstruction(t *testing.T) {
	if _, err := NewDevice(hwmodel.Generation(99), SeparatedHost); err == nil {
		t.Error("unknown generation accepted")
	}
	if _, err := NewDevice(hwmodel.BlueField2, Mode(9)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestHostRDMAByMode(t *testing.T) {
	sep, _ := NewDevice(hwmodel.BlueField3, SeparatedHost)
	defer sep.Close()
	nic, _ := NewDevice(hwmodel.BlueField3, SmartNIC)
	defer nic.Close()
	if !sep.HostRDMASupported() {
		t.Error("Separated Host mode must retain RDMA")
	}
	if nic.HostRDMASupported() {
		t.Error("SmartNIC mode must lose host RDMA-IB (paper §II-A)")
	}
}

// Table II, verbatim.
func TestTable2CapabilityMatrix(t *testing.T) {
	d2, d3 := newBF2(t), newBF3(t)
	cases := []struct {
		dev  *Device
		algo hwmodel.Algo
		op   hwmodel.Op
		want bool
	}{
		{d2, hwmodel.Deflate, hwmodel.Compress, true},
		{d2, hwmodel.Deflate, hwmodel.Decompress, true},
		{d2, hwmodel.LZ4, hwmodel.Compress, false},
		{d2, hwmodel.LZ4, hwmodel.Decompress, false},
		{d2, hwmodel.Zlib, hwmodel.Compress, false}, // zlib is a PEDAL extension, not hardware
		{d3, hwmodel.Deflate, hwmodel.Compress, false},
		{d3, hwmodel.Deflate, hwmodel.Decompress, true},
		{d3, hwmodel.LZ4, hwmodel.Compress, false},
		{d3, hwmodel.LZ4, hwmodel.Decompress, true},
		{d3, hwmodel.Zlib, hwmodel.Decompress, false},
	}
	for _, c := range cases {
		if got := c.dev.SupportsCEngine(c.algo, c.op); got != c.want {
			t.Errorf("%v C-Engine %v %v = %v, want %v",
				c.dev.Generation(), c.algo, c.op, got, c.want)
		}
	}
}

func TestCEngineDeflateRoundTrip(t *testing.T) {
	d := newBF2(t)
	src := []byte(strings.Repeat("hardware-offloaded deflate ", 1000))
	comp := d.CEngine().Run(Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: src})
	if comp.Err != nil {
		t.Fatal(comp.Err)
	}
	if comp.Virtual <= 0 {
		t.Error("compression job has no modelled duration")
	}
	dec := d.CEngine().Run(Job{Algo: hwmodel.Deflate, Op: hwmodel.Decompress, Input: comp.Output, MaxOutput: len(src) + 16})
	if dec.Err != nil {
		t.Fatal(dec.Err)
	}
	if !bytes.Equal(dec.Output, src) {
		t.Fatal("C-Engine round trip mismatch")
	}
}

func TestCEngineOutputInteroperable(t *testing.T) {
	// The engine's output must be a plain RFC 1951 stream our software
	// codec can read — that is what lets PEDAL mix SoC and C-Engine.
	d := newBF2(t)
	src := []byte(strings.Repeat("mix and match engines ", 500))
	res := d.CEngine().Run(Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: src})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	got, err := flate.Decompress(res.Output)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("software decode of hardware output failed: %v", err)
	}
}

func TestBF3LZ4Decompress(t *testing.T) {
	d := newBF3(t)
	src := []byte(strings.Repeat("lz4 on the bf3 engine ", 400))
	comp := lz4.Compress(src)
	res := d.CEngine().Run(Job{Algo: hwmodel.LZ4, Op: hwmodel.Decompress, Input: comp, MaxOutput: len(src) + 64})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !bytes.Equal(res.Output, src) {
		t.Fatal("BF3 LZ4 decompression mismatch")
	}
}

func TestUnsupportedSubmitFailsFast(t *testing.T) {
	d3 := newBF3(t)
	_, err := d3.CEngine().Submit(Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: []byte("x")})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	d, _ := NewDevice(hwmodel.BlueField2, SeparatedHost)
	d.Close()
	_, err := d.CEngine().Submit(Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: []byte("x")})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	d.Close() // double close must be safe
}

func TestCorruptInputReportsError(t *testing.T) {
	d := newBF2(t)
	res := d.CEngine().Run(Job{Algo: hwmodel.Deflate, Op: hwmodel.Decompress, Input: []byte{0x07, 0xFF}})
	if res.Err == nil {
		t.Fatal("corrupt input decompressed without error")
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	d := newBF2(t)
	src := []byte(strings.Repeat("concurrent jobs ", 200))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := d.CEngine().Run(Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: src})
			if res.Err != nil {
				errs <- res.Err
				return
			}
			got, err := flate.Decompress(res.Output)
			if err != nil || !bytes.Equal(got, src) {
				errs <- errors.New("round trip mismatch")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestAsyncSubmitWait(t *testing.T) {
	d := newBF2(t)
	src := []byte(strings.Repeat("async pipeline ", 100))
	handles := make([]*JobHandle, 8)
	for i := range handles {
		h, err := d.CEngine().Submit(Job{Algo: hwmodel.Deflate, Op: hwmodel.Compress, Input: src})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for _, h := range handles {
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}
