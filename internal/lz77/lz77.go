// Package lz77 implements the sliding-window match finder used by the
// DEFLATE compressor (RFC 1951). It produces a token stream of literals
// and (length, distance) back-references over a 32 KiB window, using
// hash chains with lazy matching, the same strategy zlib's deflate uses.
//
// The hot loops are written in SWAR (word-parallel pure Go) style:
// match lengths are measured 8 bytes at a time with an unaligned load,
// XOR and TrailingZeros64, and chain candidates come from a 6-byte
// multiplicative hash computed from a single 64-bit load. This is
// portable to every 64-bit target (including the BlueField SoC's arm64
// cores) without assembly.
package lz77

import (
	"encoding/binary"
	mathbits "math/bits"
)

const (
	// WindowSize is the DEFLATE history window (RFC 1951 §2).
	WindowSize = 32 * 1024
	// MinMatch and MaxMatch bound back-reference lengths (RFC 1951 §3.2.5).
	MinMatch = 3
	MaxMatch = 258

	hashBits = 15
	hashSize = 1 << hashBits
	hashMask = hashSize - 1

	// hashLen is the number of bytes folded into the hash. Hashing 6
	// bytes (vs the classic 4) gives far fewer false chain candidates on
	// structured data, which is where the match finder spends its time;
	// matches are verified byte-exactly regardless.
	hashLen = 6

	// hashPrime is a 64-bit odd multiplicative-hash constant (2^64/φ).
	hashPrime = 0x9E3779B185EBCA87
)

// Token is a literal byte or a back-reference.
//
// A literal has Len == 0 and the byte in Lit. A match has Len in
// [MinMatch, MaxMatch] and Dist in [1, WindowSize].
type Token struct {
	Dist uint16
	Len  uint16
	Lit  byte
}

// IsLiteral reports whether t is a literal token.
func (t Token) IsLiteral() bool { return t.Len == 0 }

// Params tunes the match finder. The presets mirror zlib's configuration
// table: good/lazy/nice/chain per compression level.
type Params struct {
	// GoodLen: stop lazy evaluation early when the current match is at
	// least this long.
	GoodLen int
	// LazyLen: only attempt lazy matching when the previous match is
	// shorter than this.
	LazyLen int
	// NiceLen: stop chain search when a match of this length is found.
	NiceLen int
	// ChainLen: maximum hash-chain positions to probe.
	ChainLen int
}

// LevelParams returns match-finder tuning for a zlib-style level 1–9.
func LevelParams(level int) Params {
	// Mirrors zlib's configuration_table.
	table := []Params{
		{4, 4, 8, 4},         // 1
		{4, 5, 16, 8},        // 2
		{4, 6, 32, 32},       // 3
		{4, 4, 16, 16},       // 4
		{8, 16, 32, 32},      // 5
		{8, 16, 128, 128},    // 6 (default)
		{8, 32, 128, 256},    // 7
		{32, 128, 258, 1024}, // 8
		{32, 258, 258, 4096}, // 9
	}
	if level < 1 {
		level = 1
	}
	if level > 9 {
		level = 9
	}
	return table[level-1]
}

func load32(p []byte, i int) uint32 { return binary.LittleEndian.Uint32(p[i:]) }
func load64(p []byte, i int) uint64 { return binary.LittleEndian.Uint64(p[i:]) }

// hash6 folds the low 6 bytes of an 8-byte little-endian load into a
// hashBits-bit table index: shift the two high bytes out, multiply by a
// large odd constant, keep the top bits.
func hash6(v uint64) uint32 {
	return uint32(((v << 16) * hashPrime) >> (64 - hashBits))
}

// Tokenize scans src and emits LZ77 tokens via emit. The emit function is
// called in stream order. Params control effort; use LevelParams.
//
// Tokenize allocates its hash tables per call; repeated callers on a hot
// path should hold a Matcher and use Matcher.Tokens, which reuses them.
func Tokenize(src []byte, p Params, emit func(Token)) {
	var m Matcher
	for _, t := range m.Tokens(src, p, nil) {
		emit(t)
	}
}

// Matcher is a reusable match finder: the 32K-entry hash head table and
// the per-position chain links persist across calls, so steady-state
// tokenisation of same-sized inputs allocates nothing. A Matcher is not
// safe for concurrent use; pool instances with sync.Pool.
type Matcher struct {
	head [hashSize]int32
	prev []int32
	src  []byte
	p    Params
}

// insert records position i in the hash chain. Positions within hashLen+2
// bytes of the end are not indexed (the 64-bit load needs 8 valid bytes);
// matches cannot start there profitably anyway.
func (m *Matcher) insert(i int) {
	if i+8 > len(m.src) {
		return
	}
	h := hash6(load64(m.src, i))
	m.prev[i] = m.head[h]
	m.head[h] = int32(i)
}

// insertSpan records positions [start, end) in the hash chains with the
// table lookups hoisted out of the loop — the batched form used when a
// match's span is skipped over. end is clamped to the last indexable
// position.
//
// Long spans are indexed with a stride instead of position-by-position:
// the bytes inside a long match already occur one match-distance back
// and are indexed there, so dense re-insertion buys almost no extra
// matches but dominates the profile on compressible data. Positions not
// inserted never enter any chain (head is rebuilt per Tokens call and
// prev is only read for chained positions), so skipping is safe.
func (m *Matcher) insertSpan(start, end int) {
	src, prev := m.src, m.prev
	if last := len(src) - 8; end > last+1 {
		end = last + 1
	}
	span := end - start
	stride := 1
	if span > 32 {
		// ~32 insertions regardless of span length.
		stride = span >> 5
	}
	for j := start; j < end; j += stride {
		h := hash6(load64(src, j))
		prev[j] = m.head[h]
		m.head[h] = int32(j)
	}
}

// findMatch returns the best match length and distance at position i,
// probing at most chain candidates.
func (m *Matcher) findMatch(i, prevLen int) (bestLen, bestDist int) {
	src, n := m.src, len(m.src)
	if i+8 > n {
		return 0, 0
	}
	limit := i - WindowSize
	if limit < 0 {
		limit = 0
	}
	chain := m.p.ChainLen
	if prevLen >= m.p.GoodLen {
		chain >>= 2
	}
	maxLen := n - i
	if maxLen > MaxMatch {
		maxLen = MaxMatch
	}
	bestLen = MinMatch - 1
	first := load32(src, i)
	prev := m.prev
	cand := m.head[hash6(load64(src, i))]
	for chain > 0 && cand >= int32(limit) {
		c := int(cand)
		// Quick reject: the byte that would extend the best match, then
		// the first four bytes in one compare.
		if src[c+bestLen] == src[i+bestLen] && load32(src, c) == first {
			l := matchLen(src, c, i, maxLen)
			if l > bestLen {
				bestLen = l
				bestDist = i - c
				if l >= m.p.NiceLen || l == maxLen {
					break
				}
			}
		}
		cand = prev[c]
		chain--
	}
	if bestLen < MinMatch {
		return 0, 0
	}
	return bestLen, bestDist
}

// Tokens scans src and appends its LZ77 token stream to dst, returning
// the extended slice. Passing a dst with sufficient capacity makes the
// call allocation-free.
func (m *Matcher) Tokens(src []byte, p Params, dst []Token) []Token {
	n := len(src)
	if n == 0 {
		return dst
	}
	for i := range m.head {
		m.head[i] = -1
	}
	if cap(m.prev) < n {
		m.prev = make([]int32, n)
	} else {
		m.prev = m.prev[:n]
	}
	m.src, m.p = src, p
	defer func() { m.src = nil }()

	i := 0
	// Lazy matching state: a pending match from the previous position.
	pendLen, pendDist := 0, 0
	pendPos := -1
	for i < n {
		curLen, curDist := 0, 0
		if i+MinMatch <= n {
			prevL := pendLen
			curLen, curDist = m.findMatch(i, prevL)
		}
		if pendPos >= 0 {
			// Decide between pending match at i-1 and current match at i.
			if curLen > pendLen {
				// Current wins: emit literal for i-1, keep evaluating.
				dst = append(dst, Token{Lit: src[pendPos]})
				m.insert(pendPos)
				pendLen, pendDist, pendPos = curLen, curDist, i
				i++
				continue
			}
			// Pending wins: emit it; skip its span.
			dst = append(dst, Token{Len: uint16(pendLen), Dist: uint16(pendDist)})
			end := pendPos + pendLen
			m.insert(pendPos)
			m.insertSpan(i, end)
			i = end
			pendLen, pendDist, pendPos = 0, 0, -1
			continue
		}
		if curLen == 0 {
			dst = append(dst, Token{Lit: src[i]})
			m.insert(i)
			i++
			continue
		}
		if curLen < p.LazyLen && i+1 < n {
			// Defer: maybe a better match starts at i+1.
			pendLen, pendDist, pendPos = curLen, curDist, i
			i++
			continue
		}
		// Take the match immediately.
		dst = append(dst, Token{Len: uint16(curLen), Dist: uint16(curDist)})
		m.insertSpan(i, i+curLen)
		i += curLen
	}
	if pendPos >= 0 {
		dst = append(dst, Token{Len: uint16(pendLen), Dist: uint16(pendDist)})
	}
	return dst
}

// matchLen counts how many bytes match between src[a:] and src[b:], up to
// maxLen. a < b is required. The comparison runs 8 bytes per step: XOR of
// two unaligned loads, with TrailingZeros64 locating the first differing
// byte. The caller guarantees b+maxLen <= len(src), so the word loop
// needs no extra bounds checks.
func matchLen(src []byte, a, b, maxLen int) int {
	l := 0
	for l+8 <= maxLen {
		x := load64(src, a+l) ^ load64(src, b+l)
		if x != 0 {
			return l + mathbits.TrailingZeros64(x)>>3
		}
		l += 8
	}
	for l < maxLen && src[a+l] == src[b+l] {
		l++
	}
	return l
}

// Expand reconstructs the original byte stream from tokens — the inverse
// of Tokenize. It is used by tests and by the fastlz verification path.
func Expand(tokens []Token) []byte {
	var out []byte
	for _, t := range tokens {
		if t.IsLiteral() {
			out = append(out, t.Lit)
			continue
		}
		start := len(out) - int(t.Dist)
		for k := 0; k < int(t.Len); k++ {
			out = append(out, out[start+k])
		}
	}
	return out
}
