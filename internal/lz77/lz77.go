// Package lz77 implements the sliding-window match finder used by the
// DEFLATE compressor (RFC 1951). It produces a token stream of literals
// and (length, distance) back-references over a 32 KiB window, using
// hash chains with lazy matching, the same strategy zlib's deflate uses.
package lz77

const (
	// WindowSize is the DEFLATE history window (RFC 1951 §2).
	WindowSize = 32 * 1024
	// MinMatch and MaxMatch bound back-reference lengths (RFC 1951 §3.2.5).
	MinMatch = 3
	MaxMatch = 258

	hashBits = 15
	hashSize = 1 << hashBits
	hashMask = hashSize - 1
)

// Token is a literal byte or a back-reference.
//
// A literal has Len == 0 and the byte in Lit. A match has Len in
// [MinMatch, MaxMatch] and Dist in [1, WindowSize].
type Token struct {
	Dist uint16
	Len  uint16
	Lit  byte
}

// IsLiteral reports whether t is a literal token.
func (t Token) IsLiteral() bool { return t.Len == 0 }

// Params tunes the match finder. The presets mirror zlib's configuration
// table: good/lazy/nice/chain per compression level.
type Params struct {
	// GoodLen: stop lazy evaluation early when the current match is at
	// least this long.
	GoodLen int
	// LazyLen: only attempt lazy matching when the previous match is
	// shorter than this.
	LazyLen int
	// NiceLen: stop chain search when a match of this length is found.
	NiceLen int
	// ChainLen: maximum hash-chain positions to probe.
	ChainLen int
}

// LevelParams returns match-finder tuning for a zlib-style level 1–9.
func LevelParams(level int) Params {
	// Mirrors zlib's configuration_table.
	table := []Params{
		{4, 4, 8, 4},         // 1
		{4, 5, 16, 8},        // 2
		{4, 6, 32, 32},       // 3
		{4, 4, 16, 16},       // 4
		{8, 16, 32, 32},      // 5
		{8, 16, 128, 128},    // 6 (default)
		{8, 32, 128, 256},    // 7
		{32, 128, 258, 1024}, // 8
		{32, 258, 258, 4096}, // 9
	}
	if level < 1 {
		level = 1
	}
	if level > 9 {
		level = 9
	}
	return table[level-1]
}

// hash4 hashes the next 4 bytes at p[i:]. DEFLATE's minimum match is 3,
// but 4-byte hashing gives far fewer false chains; we verify matches
// byte-by-byte anyway.
func hash4(p []byte, i int) uint32 {
	v := uint32(p[i]) | uint32(p[i+1])<<8 | uint32(p[i+2])<<16 | uint32(p[i+3])<<24
	return (v * 2654435761) >> (32 - hashBits) & hashMask
}

// Tokenize scans src and emits LZ77 tokens via emit. The emit function is
// called in stream order. Params control effort; use LevelParams.
//
// Tokenize allocates its hash tables per call; repeated callers on a hot
// path should hold a Matcher and use Matcher.Tokens, which reuses them.
func Tokenize(src []byte, p Params, emit func(Token)) {
	var m Matcher
	for _, t := range m.Tokens(src, p, nil) {
		emit(t)
	}
}

// Matcher is a reusable match finder: the 32K-entry hash head table and
// the per-position chain links persist across calls, so steady-state
// tokenisation of same-sized inputs allocates nothing. A Matcher is not
// safe for concurrent use; pool instances with sync.Pool.
type Matcher struct {
	head [hashSize]int32
	prev []int32
	src  []byte
	p    Params
}

func (m *Matcher) insert(i int) {
	if i+4 > len(m.src) {
		return
	}
	h := hash4(m.src, i)
	m.prev[i] = m.head[h]
	m.head[h] = int32(i)
}

// findMatch returns the best match length and distance at position i,
// probing at most chain candidates.
func (m *Matcher) findMatch(i, prevLen int) (bestLen, bestDist int) {
	src, n := m.src, len(m.src)
	if i+4 > n {
		return 0, 0
	}
	limit := i - WindowSize
	if limit < 0 {
		limit = 0
	}
	chain := m.p.ChainLen
	if prevLen >= m.p.GoodLen {
		chain >>= 2
	}
	maxLen := n - i
	if maxLen > MaxMatch {
		maxLen = MaxMatch
	}
	if maxLen < MinMatch {
		return 0, 0
	}
	bestLen = MinMatch - 1
	cand := m.head[hash4(src, i)]
	for chain > 0 && cand >= int32(limit) {
		c := int(cand)
		// Quick reject: check the byte that would extend the best match.
		if src[c+bestLen] == src[i+bestLen] && src[c] == src[i] {
			l := matchLen(src, c, i, maxLen)
			if l > bestLen {
				bestLen = l
				bestDist = i - c
				if l >= m.p.NiceLen || l == maxLen {
					break
				}
			}
		}
		cand = m.prev[c]
		chain--
	}
	if bestLen < MinMatch {
		return 0, 0
	}
	return bestLen, bestDist
}

// Tokens scans src and appends its LZ77 token stream to dst, returning
// the extended slice. Passing a dst with sufficient capacity makes the
// call allocation-free.
func (m *Matcher) Tokens(src []byte, p Params, dst []Token) []Token {
	n := len(src)
	if n == 0 {
		return dst
	}
	for i := range m.head {
		m.head[i] = -1
	}
	if cap(m.prev) < n {
		m.prev = make([]int32, n)
	} else {
		m.prev = m.prev[:n]
	}
	m.src, m.p = src, p
	defer func() { m.src = nil }()

	i := 0
	// Lazy matching state: a pending match from the previous position.
	pendLen, pendDist := 0, 0
	pendPos := -1
	for i < n {
		curLen, curDist := 0, 0
		if i+MinMatch <= n {
			prevL := pendLen
			curLen, curDist = m.findMatch(i, prevL)
		}
		if pendPos >= 0 {
			// Decide between pending match at i-1 and current match at i.
			if curLen > pendLen {
				// Current wins: emit literal for i-1, keep evaluating.
				dst = append(dst, Token{Lit: src[pendPos]})
				m.insert(pendPos)
				pendLen, pendDist, pendPos = curLen, curDist, i
				i++
				continue
			}
			// Pending wins: emit it; skip its span.
			dst = append(dst, Token{Len: uint16(pendLen), Dist: uint16(pendDist)})
			end := pendPos + pendLen
			m.insert(pendPos)
			for j := i; j < end && j < n; j++ {
				m.insert(j)
			}
			i = end
			pendLen, pendDist, pendPos = 0, 0, -1
			continue
		}
		if curLen == 0 {
			dst = append(dst, Token{Lit: src[i]})
			m.insert(i)
			i++
			continue
		}
		if curLen < p.LazyLen && i+1 < n {
			// Defer: maybe a better match starts at i+1.
			pendLen, pendDist, pendPos = curLen, curDist, i
			i++
			continue
		}
		// Take the match immediately.
		dst = append(dst, Token{Len: uint16(curLen), Dist: uint16(curDist)})
		end := i + curLen
		for j := i; j < end && j < n; j++ {
			m.insert(j)
		}
		i = end
	}
	if pendPos >= 0 {
		dst = append(dst, Token{Len: uint16(pendLen), Dist: uint16(pendDist)})
	}
	return dst
}

// matchLen counts how many bytes match between src[a:] and src[b:], up to
// maxLen. a < b is required.
func matchLen(src []byte, a, b, maxLen int) int {
	l := 0
	for l < maxLen && src[a+l] == src[b+l] {
		l++
	}
	return l
}

// Expand reconstructs the original byte stream from tokens — the inverse
// of Tokenize. It is used by tests and by the fastlz verification path.
func Expand(tokens []Token) []byte {
	var out []byte
	for _, t := range tokens {
		if t.IsLiteral() {
			out = append(out, t.Lit)
			continue
		}
		start := len(out) - int(t.Dist)
		for k := 0; k < int(t.Len); k++ {
			out = append(out, out[start+k])
		}
	}
	return out
}
