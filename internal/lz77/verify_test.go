package lz77

import (
	"bytes"
	"testing"
)

func TestVerifyTokensAcceptsTokenizer(t *testing.T) {
	srcs := [][]byte{
		nil,
		[]byte("abc"),
		bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 200),
		bytes.Repeat([]byte{0}, 4096),
	}
	var m Matcher
	for _, src := range srcs {
		for _, level := range []int{1, 6, 9} {
			tokens := m.Tokens(src, LevelParams(level), nil)
			if !VerifyTokens(tokens, src) {
				t.Errorf("referee rejected a correct token stream (len %d, level %d)", len(src), level)
			}
		}
	}
}

func TestVerifyTokensRejectsCorruption(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh pattern pattern pattern "), 64)
	var m Matcher
	good := m.Tokens(src, LevelParams(6), nil)
	if !VerifyTokens(good, src) {
		t.Fatal("baseline stream rejected")
	}

	mutate := func(f func([]Token)) []Token {
		bad := append([]Token(nil), good...)
		f(bad)
		return bad
	}
	cases := map[string][]Token{
		"wrong literal": mutate(func(ts []Token) {
			for i := range ts {
				if ts[i].IsLiteral() {
					ts[i].Lit ^= 0x01
					return
				}
			}
		}),
		"wrong distance": mutate(func(ts []Token) {
			for i := range ts {
				if !ts[i].IsLiteral() && ts[i].Dist > 1 {
					ts[i].Dist--
					return
				}
			}
		}),
		"wrong length": mutate(func(ts []Token) {
			for i := range ts {
				if !ts[i].IsLiteral() {
					ts[i].Len++
					return
				}
			}
		}),
		"truncated": good[:len(good)-1],
		"oob distance": mutate(func(ts []Token) {
			for i := range ts {
				if !ts[i].IsLiteral() {
					ts[i].Dist = uint16(i) + 30000
					return
				}
			}
		}),
	}
	for name, bad := range cases {
		if VerifyTokens(bad, src) {
			t.Errorf("%s: referee accepted a corrupt token stream", name)
		}
	}
}

func TestVerifyTokensZeroAlloc(t *testing.T) {
	src := bytes.Repeat([]byte("zero alloc referee "), 512)
	var m Matcher
	tokens := m.Tokens(src, LevelParams(6), nil)
	allocs := testing.AllocsPerRun(50, func() {
		if !VerifyTokens(tokens, src) {
			t.Fatal("rejected")
		}
	})
	if allocs != 0 {
		t.Errorf("VerifyTokens allocates %.1f/op, want 0", allocs)
	}
}
