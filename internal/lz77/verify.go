package lz77

// VerifyTokens is the scalar referee for the SWAR match finder: it
// checks that a token stream reproduces src exactly, using nothing but
// byte compares — no hashing, no word-parallel tricks, no shared state
// with the tokenizer it is judging. The SWAR path may legitimately pick
// *different* tokens than a scalar tokenizer would (stride-skipped span
// insertion changes match choices), so the referee is semantic, not a
// byte-compare of token streams: whatever tokens were emitted, they
// must expand to src. Allocation-free and O(len(src)).
func VerifyTokens(tokens []Token, src []byte) bool {
	pos := 0
	for _, t := range tokens {
		if t.IsLiteral() {
			if pos >= len(src) || src[pos] != t.Lit {
				return false
			}
			pos++
			continue
		}
		l, d := int(t.Len), int(t.Dist)
		if l < MinMatch || l > MaxMatch || d < 1 || d > pos || pos+l > len(src) {
			return false
		}
		for j := 0; j < l; j++ {
			if src[pos+j] != src[pos+j-d] {
				return false
			}
		}
		pos += l
	}
	return pos == len(src)
}
