package lz77

import (
	"bytes"
	"testing"
)

// FuzzLZ77RoundTrip tokenizes arbitrary input at every level and requires
// Expand to reproduce it exactly, with every token structurally valid
// (in-range lengths and distances). This is the differential check for
// the SWAR match finder: whatever matchLen and the hash chains decide,
// the token stream must still describe the input.
func FuzzLZ77RoundTrip(f *testing.F) {
	f.Add([]byte(""), 6)
	f.Add([]byte("abcabcabcabcabcabc"), 1)
	f.Add(bytes.Repeat([]byte{'a'}, 1000), 9)
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), 6)
	f.Add(bytes.Repeat([]byte("0123456789abcdef"), 64), 3)
	f.Fuzz(func(t *testing.T, data []byte, level int) {
		toks := tokenize(data, level%10)
		pos := 0
		for i, tok := range toks {
			if tok.IsLiteral() {
				pos++
				continue
			}
			if int(tok.Len) < MinMatch || int(tok.Len) > MaxMatch {
				t.Fatalf("token %d: length %d out of [%d,%d]", i, tok.Len, MinMatch, MaxMatch)
			}
			if int(tok.Dist) < 1 || int(tok.Dist) > WindowSize || int(tok.Dist) > pos {
				t.Fatalf("token %d: distance %d invalid at position %d", i, tok.Dist, pos)
			}
			pos += int(tok.Len)
		}
		if pos != len(data) {
			t.Fatalf("tokens cover %d bytes, input has %d", pos, len(data))
		}
		if got := Expand(toks); !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
		}
	})
}
