package lz77

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func tokenize(src []byte, level int) []Token {
	var toks []Token
	Tokenize(src, LevelParams(level), func(t Token) { toks = append(toks, t) })
	return toks
}

func TestEmptyInput(t *testing.T) {
	if toks := tokenize(nil, 6); len(toks) != 0 {
		t.Fatalf("got %d tokens for empty input", len(toks))
	}
}

func TestAllLiterals(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	toks := tokenize(src, 6)
	for _, tok := range toks {
		if !tok.IsLiteral() {
			t.Fatalf("unexpected match token %+v on incompressible input", tok)
		}
	}
	if got := Expand(toks); !bytes.Equal(got, src) {
		t.Fatalf("expand mismatch: %v", got)
	}
}

func TestFindsRepeats(t *testing.T) {
	src := []byte(strings.Repeat("abcd", 64))
	toks := tokenize(src, 6)
	hasMatch := false
	for _, tok := range toks {
		if !tok.IsLiteral() {
			hasMatch = true
			if int(tok.Dist)%4 != 0 {
				t.Errorf("match distance %d not a multiple of period 4", tok.Dist)
			}
		}
	}
	if !hasMatch {
		t.Fatal("no match tokens on highly repetitive input")
	}
	if got := Expand(toks); !bytes.Equal(got, src) {
		t.Fatal("expand mismatch")
	}
}

func TestOverlappingMatch(t *testing.T) {
	// "aaaa..." forces dist=1 matches overlapping themselves (RLE-style).
	src := bytes.Repeat([]byte{'a'}, 300)
	toks := tokenize(src, 6)
	if got := Expand(toks); !bytes.Equal(got, src) {
		t.Fatal("expand mismatch on RLE input")
	}
	found := false
	for _, tok := range toks {
		if !tok.IsLiteral() && tok.Dist == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("expected a dist=1 overlapping match")
	}
}

func TestTokenBoundsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, 200000)
	// Compressible: bytes drawn from a small alphabet with repeats.
	for i := range src {
		src[i] = byte(rng.Intn(8))
	}
	for _, level := range []int{1, 6, 9} {
		for _, tok := range tokenize(src, level) {
			if tok.IsLiteral() {
				continue
			}
			if int(tok.Len) < MinMatch || int(tok.Len) > MaxMatch {
				t.Fatalf("level %d: match length %d out of bounds", level, tok.Len)
			}
			if int(tok.Dist) < 1 || int(tok.Dist) > WindowSize {
				t.Fatalf("level %d: match distance %d out of bounds", level, tok.Dist)
			}
		}
	}
}

func TestWindowLimit(t *testing.T) {
	// A repeat separated by more than WindowSize must not produce a match
	// back to the first occurrence.
	pattern := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	var src []byte
	src = append(src, pattern...)
	filler := make([]byte, WindowSize+1024)
	rng := rand.New(rand.NewSource(1))
	rng.Read(filler)
	src = append(src, filler...)
	src = append(src, pattern...)
	toks := tokenize(src, 9)
	if got := Expand(toks); !bytes.Equal(got, src) {
		t.Fatal("expand mismatch")
	}
}

func TestRoundTripLevels(t *testing.T) {
	inputs := [][]byte{
		[]byte("hello hello hello hello"),
		bytes.Repeat([]byte("xyz"), 1000),
		[]byte(strings.Repeat("<tag attr=\"value\">text</tag>\n", 500)),
		make([]byte, 4096), // zeros
	}
	rng := rand.New(rand.NewSource(2))
	randBuf := make([]byte, 65536)
	rng.Read(randBuf)
	inputs = append(inputs, randBuf)
	for _, level := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		for i, src := range inputs {
			toks := tokenize(src, level)
			if got := Expand(toks); !bytes.Equal(got, src) {
				t.Fatalf("level %d input %d: round trip failed", level, i)
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, size uint16, alphabet uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alphabet)%32 + 1
		src := make([]byte, int(size)%20000)
		for i := range src {
			src[i] = byte(rng.Intn(a))
		}
		toks := tokenize(src, 6)
		return bytes.Equal(Expand(toks), src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHigherLevelNotWorse(t *testing.T) {
	// Higher effort should find at least as much redundancy (fewer or
	// equal tokens) on structured text.
	src := []byte(strings.Repeat("func main() { fmt.Println(\"hello world\") }\n", 2000))
	n1 := len(tokenize(src, 1))
	n9 := len(tokenize(src, 9))
	if n9 > n1 {
		t.Fatalf("level 9 produced more tokens (%d) than level 1 (%d)", n9, n1)
	}
}

func TestLevelParamsClamped(t *testing.T) {
	if LevelParams(0) != LevelParams(1) {
		t.Error("level 0 should clamp to 1")
	}
	if LevelParams(100) != LevelParams(9) {
		t.Error("level 100 should clamp to 9")
	}
}

func BenchmarkTokenizeText(b *testing.B) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 25000))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tokenize(src, LevelParams(6), func(Token) {})
	}
}
