package lz77

import (
	"bytes"
	"testing"
)

// naiveMatchLen is the obviously-correct byte-at-a-time reference the
// SWAR matchLen must agree with.
func naiveMatchLen(src []byte, a, b, maxLen int) int {
	l := 0
	for l < maxLen && src[a+l] == src[b+l] {
		l++
	}
	return l
}

// TestMatchLenEndsAtSourceEnd covers matches running exactly to len(src):
// the word loop must not read past the slice, and partial tails shorter
// than 8 bytes must be compared byte-wise.
func TestMatchLenEndsAtSourceEnd(t *testing.T) {
	// Every tail length 0..16 past the last full word.
	for tail := 0; tail <= 16; tail++ {
		pat := bytes.Repeat([]byte("qrstuvwx"), 4)[:8+tail]
		src := append(append([]byte{}, pat...), pat...)
		a, b := 0, len(pat)
		maxLen := len(src) - b // match may run exactly to len(src)
		if got := matchLen(src, a, b, maxLen); got != maxLen {
			t.Fatalf("tail %d: matchLen = %d, want full %d", tail, got, maxLen)
		}
	}
}

// TestMatchLenMismatchPositions checks that the first differing byte is
// located exactly, at every offset within and across word boundaries.
func TestMatchLenMismatchPositions(t *testing.T) {
	const n = 40
	for diff := 0; diff < n; diff++ {
		src := make([]byte, 2*n)
		for i := 0; i < n; i++ {
			src[i] = byte(i * 7)
			src[n+i] = byte(i * 7)
		}
		src[n+diff] ^= 0xFF
		got := matchLen(src, 0, n, n)
		if got != diff {
			t.Fatalf("mismatch at %d: matchLen = %d", diff, got)
		}
		if want := naiveMatchLen(src, 0, n, n); got != want {
			t.Fatalf("mismatch at %d: SWAR %d != naive %d", diff, got, want)
		}
	}
}

// TestMatchLenMaxMatchTruncation verifies a longer-than-MaxMatch run is
// clamped by the maxLen argument, mid-word and on word boundaries.
func TestMatchLenMaxMatchTruncation(t *testing.T) {
	src := bytes.Repeat([]byte{'z'}, 2*MaxMatch+64)
	for _, maxLen := range []int{MaxMatch, 256, 8, 7, 3, 1, 0} {
		if got := matchLen(src, 0, 16, maxLen); got != maxLen {
			t.Fatalf("maxLen %d: matchLen = %d", maxLen, got)
		}
	}
}

// TestMatchLenDistanceOne exercises a=b-1 — the RLE case where the two
// windows overlap by 7 of every 8 loaded bytes.
func TestMatchLenDistanceOne(t *testing.T) {
	src := bytes.Repeat([]byte{'r'}, 100)
	src[60] = 's' // run ends here
	got := matchLen(src, 0, 1, 99)
	want := naiveMatchLen(src, 0, 1, 99)
	if got != want || got != 59 {
		t.Fatalf("dist-1 run: SWAR %d, naive %d, want 59", got, want)
	}
}

// TestTokenizeMatchToEnd compresses input whose best match extends to the
// final byte of src — the span insertion and match emission must both
// handle ends flush with len(src).
func TestTokenizeMatchToEnd(t *testing.T) {
	for extra := 0; extra <= 10; extra++ {
		pat := []byte("abcdefghij")
		src := append(append([]byte{}, pat...), pat[:len(pat)-extra%len(pat)]...)
		toks := tokenize(src, 9)
		if got := Expand(toks); !bytes.Equal(got, src) {
			t.Fatalf("extra %d: round-trip mismatch", extra)
		}
	}
}

// TestTokenizeRLEDistanceOne checks that long single-byte runs produce
// dist-1 matches (self-overlapping copies) and round-trip.
func TestTokenizeRLEDistanceOne(t *testing.T) {
	src := bytes.Repeat([]byte{0xAB}, 4096)
	toks := tokenize(src, 6)
	sawDist1 := false
	for _, tok := range toks {
		if !tok.IsLiteral() && tok.Dist == 1 {
			sawDist1 = true
			break
		}
	}
	if !sawDist1 {
		t.Fatal("no dist-1 match on a uniform run")
	}
	if got := Expand(toks); !bytes.Equal(got, src) {
		t.Fatal("round-trip mismatch")
	}
}

// TestTokenizeWindowBoundaryCandidate places the only match candidate
// right at the 32 KiB window edge: one copy just inside the window must
// be found, one just outside must be ignored (distances above WindowSize
// cannot be encoded).
func TestTokenizeWindowBoundaryCandidate(t *testing.T) {
	pat := []byte("WINDOWEDGEPATTERN")
	mk := func(gap int) []byte {
		src := append([]byte{}, pat...)
		for i := 0; len(src) < len(pat)+gap; i++ {
			// Incompressible filler (no internal repeats).
			src = append(src, byte(i), byte(i>>8), byte(i*131+17))
		}
		src = src[:len(pat)+gap]
		return append(src, pat...)
	}

	inside := mk(WindowSize - len(pat)) // candidate distance == WindowSize
	toks := tokenize(inside, 9)
	found := false
	for _, tok := range toks {
		if !tok.IsLiteral() && int(tok.Dist) == WindowSize {
			found = true
		}
		if !tok.IsLiteral() && int(tok.Dist) > WindowSize {
			t.Fatalf("distance %d exceeds window", tok.Dist)
		}
	}
	if !found {
		t.Fatal("match at exactly WindowSize distance not found")
	}
	if got := Expand(toks); !bytes.Equal(got, inside) {
		t.Fatal("round-trip mismatch (inside window)")
	}

	outside := mk(WindowSize - len(pat) + 1) // distance == WindowSize+1
	toks = tokenize(outside, 9)
	for _, tok := range toks {
		if !tok.IsLiteral() && int(tok.Dist) > WindowSize {
			t.Fatalf("emitted out-of-window distance %d", tok.Dist)
		}
	}
	if got := Expand(toks); !bytes.Equal(got, outside) {
		t.Fatal("round-trip mismatch (outside window)")
	}
}
