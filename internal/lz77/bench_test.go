package lz77

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// BenchmarkMatchLen measures the raw byte-comparison kernel on long
// matches — the loop the SWAR (8-byte XOR + TrailingZeros64) rewrite
// targets.
func BenchmarkMatchLen(b *testing.B) {
	src := bytes.Repeat([]byte("abcdefgh"), 128) // 1 KiB, fully self-similar
	b.SetBytes(MaxMatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l := matchLen(src, 0, 512, MaxMatch); l != MaxMatch {
			b.Fatalf("matchLen = %d", l)
		}
	}
}

// BenchmarkTokenizeRLE drives the match finder over a distance-1 run,
// the overlapping-match worst case for the skip-span insert loop.
func BenchmarkTokenizeRLE(b *testing.B) {
	src := bytes.Repeat([]byte{'a'}, 256<<10)
	var m Matcher
	var toks []Token
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks = m.Tokens(src, LevelParams(6), toks[:0])
	}
}

// BenchmarkTokenizeCompressible is the representative hot-path shape:
// structured text with medium-length repeats, default level.
func BenchmarkTokenizeCompressible(b *testing.B) {
	src := []byte(strings.Repeat("<chunk seq=\"11\">pipelined per-chunk payload</chunk>\n", 5120))[:256<<10]
	var m Matcher
	var toks []Token
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks = m.Tokens(src, LevelParams(6), toks[:0])
	}
}

// BenchmarkTokenizeRandom bounds the incompressible worst case: every
// position hashes and probes but no matches are found.
func BenchmarkTokenizeRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 256<<10)
	rng.Read(src)
	var m Matcher
	var toks []Token
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks = m.Tokens(src, LevelParams(6), toks[:0])
	}
}
