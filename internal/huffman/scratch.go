package huffman

import (
	"fmt"
)

// Scratch holds reusable state for code construction so that repeated
// dynamic-table builds (one per DEFLATE block on the chunked hot path)
// allocate nothing at steady state. A Scratch is not safe for concurrent
// use; pool instances with sync.Pool.
type Scratch struct {
	heap  nodeHeap
	stack []treeItem
}

type treeItem struct{ idx, depth int }

// BuildLengthsInto is BuildLengths writing into a caller-provided
// lengths slice (len(lengths) must equal len(freq)), reusing the
// scratch's heap and traversal storage.
func (s *Scratch) BuildLengthsInto(freq []uint64, maxBits int, lengths []uint8) error {
	if len(freq) == 0 || len(freq) > MaxSymbols {
		return fmt.Errorf("huffman: bad alphabet size %d", len(freq))
	}
	if len(lengths) != len(freq) {
		return fmt.Errorf("huffman: lengths size %d != alphabet %d", len(lengths), len(freq))
	}
	if maxBits < 1 || maxBits > 32 {
		return fmt.Errorf("huffman: bad length limit %d", maxBits)
	}
	for i := range lengths {
		lengths[i] = 0
	}
	nonzero := 0
	last := -1
	for sym, f := range freq {
		if f > 0 {
			nonzero++
			last = sym
		}
	}
	switch nonzero {
	case 0:
		return ErrEmptyAlphabet
	case 1:
		lengths[last] = 1
		return nil
	}

	h := &s.heap
	h.nodes = h.nodes[:0]
	h.order = h.order[:0]
	for sym, f := range freq {
		if f > 0 {
			h.nodes = append(h.nodes, node{weight: f, symbol: sym, left: -1, right: -1})
			h.order = append(h.order, len(h.nodes)-1)
		}
	}
	h.init()
	for h.Len() > 1 {
		a := h.pop()
		b := h.pop()
		d := h.nodes[a].depth
		if h.nodes[b].depth > d {
			d = h.nodes[b].depth
		}
		h.nodes = append(h.nodes, node{
			weight: h.nodes[a].weight + h.nodes[b].weight,
			symbol: -1, left: a, right: b, depth: d + 1,
		})
		h.push(len(h.nodes) - 1)
	}
	root := h.order[0]

	// Walk the tree iteratively, assigning depths to leaves.
	stack := append(s.stack[:0], treeItem{root, 0})
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := h.nodes[it.idx]
		if n.symbol >= 0 {
			d := it.depth
			if d == 0 {
				d = 1 // single-symbol case already handled, defensive
			}
			lengths[n.symbol] = uint8(d)
			continue
		}
		stack = append(stack, treeItem{n.left, it.depth + 1}, treeItem{n.right, it.depth + 1})
	}
	s.stack = stack[:0]

	if maxLen(lengths) > uint8(maxBits) {
		limitLengths(lengths, maxBits)
	}
	return nil
}

// CanonicalInto assigns canonical codes into a caller-provided Code,
// reusing its Bits and Len storage. The allocation-free counterpart of
// CanonicalCode.
func CanonicalInto(lengths []uint8, c *Code) error {
	maxBits := int(maxLen(lengths))
	if maxBits == 0 {
		return ErrEmptyAlphabet
	}
	if maxBits > 32 {
		return fmt.Errorf("huffman: code length %d exceeds 32", maxBits)
	}
	var blCount [33]int
	for _, l := range lengths {
		if l > 0 {
			blCount[l]++
		}
	}
	// Validate the Kraft inequality before assigning codes.
	var kraft uint64
	for b := 1; b <= maxBits; b++ {
		kraft += uint64(blCount[b]) << uint(maxBits-b)
	}
	if kraft > 1<<uint(maxBits) {
		return fmt.Errorf("huffman: oversubscribed code lengths (kraft %d > %d)", kraft, uint64(1)<<uint(maxBits))
	}
	var nextCode [34]uint32
	var code uint32
	for b := 1; b <= maxBits; b++ {
		code = (code + uint32(blCount[b-1])) << 1
		nextCode[b] = code
	}
	c.Bits = growU32(c.Bits, len(lengths))
	c.Len = growU8(c.Len, len(lengths))
	copy(c.Len, lengths)
	for s, l := range lengths {
		if l == 0 {
			c.Bits[s] = 0
			continue
		}
		c.Bits[s] = nextCode[l]
		nextCode[l]++
	}
	return nil
}

// growU32 returns a slice of length n, reusing b's storage when it fits.
func growU32(b []uint32, n int) []uint32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]uint32, n)
}

func growU8(b []uint8, n int) []uint8 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]uint8, n)
}
