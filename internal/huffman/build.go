// Package huffman implements canonical, length-limited Huffman coding as
// used by DEFLATE (RFC 1951 §3.2.2) and by the SZ3 entropy stage.
//
// Code construction follows the classical two-step approach: build optimal
// code lengths from symbol frequencies with a heap-based Huffman algorithm,
// then, if the longest code exceeds the limit, rebalance lengths with the
// Kraft-sum repair used by zlib. Codes are assigned canonically so that a
// (length histogram, ordered symbols) pair fully determines the code table,
// which is exactly the property DEFLATE's dynamic block headers rely on.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
)

// MaxSymbols is a sanity cap on alphabet size (SZ3 quantizer bins can be
// large but bounded).
const MaxSymbols = 1 << 20

// ErrEmptyAlphabet is returned when no symbol has a nonzero frequency.
var ErrEmptyAlphabet = errors.New("huffman: empty alphabet")

type node struct {
	weight uint64
	symbol int // -1 for internal nodes
	left   int // index into nodes, -1 for leaves
	right  int
	depth  int
}

type nodeHeap struct {
	nodes []node
	order []int // heap of indices into nodes
}

func (h *nodeHeap) Len() int { return len(h.order) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	// Tie-break on depth for flatter trees, then on symbol for determinism.
	if a.depth != b.depth {
		return a.depth < b.depth
	}
	return a.symbol < b.symbol
}
func (h *nodeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *nodeHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *nodeHeap) Pop() any {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// BuildLengths computes code lengths for the given symbol frequencies,
// limited to maxBits. Symbols with zero frequency get length 0 (no code).
// If only one symbol has nonzero frequency it is assigned length 1, as
// DEFLATE requires at least one bit per coded symbol.
func BuildLengths(freq []uint64, maxBits int) ([]uint8, error) {
	if len(freq) == 0 || len(freq) > MaxSymbols {
		return nil, fmt.Errorf("huffman: bad alphabet size %d", len(freq))
	}
	if maxBits < 1 || maxBits > 32 {
		return nil, fmt.Errorf("huffman: bad length limit %d", maxBits)
	}

	lengths := make([]uint8, len(freq))
	nonzero := 0
	last := -1
	for s, f := range freq {
		if f > 0 {
			nonzero++
			last = s
		}
	}
	switch nonzero {
	case 0:
		return nil, ErrEmptyAlphabet
	case 1:
		lengths[last] = 1
		return lengths, nil
	}

	h := &nodeHeap{}
	h.nodes = make([]node, 0, 2*nonzero)
	for s, f := range freq {
		if f > 0 {
			h.nodes = append(h.nodes, node{weight: f, symbol: s, left: -1, right: -1})
			h.order = append(h.order, len(h.nodes)-1)
		}
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		d := h.nodes[a].depth
		if h.nodes[b].depth > d {
			d = h.nodes[b].depth
		}
		h.nodes = append(h.nodes, node{
			weight: h.nodes[a].weight + h.nodes[b].weight,
			symbol: -1, left: a, right: b, depth: d + 1,
		})
		heap.Push(h, len(h.nodes)-1)
	}
	root := h.order[0]

	// Walk the tree iteratively, assigning depths to leaves.
	type item struct{ idx, depth int }
	stack := []item{{root, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := h.nodes[it.idx]
		if n.symbol >= 0 {
			d := it.depth
			if d == 0 {
				d = 1 // single-symbol case already handled, defensive
			}
			lengths[n.symbol] = uint8(d)
			continue
		}
		stack = append(stack, item{n.left, it.depth + 1}, item{n.right, it.depth + 1})
	}

	if maxLen(lengths) > uint8(maxBits) {
		limitLengths(lengths, maxBits)
	}
	return lengths, nil
}

func maxLen(lengths []uint8) uint8 {
	var m uint8
	for _, l := range lengths {
		if l > m {
			m = l
		}
	}
	return m
}

// limitLengths rebalances code lengths so none exceeds maxBits while the
// Kraft inequality sum(2^-len) ≤ 1 still holds, preserving optimality as
// closely as possible (zlib's bl_count repair strategy).
func limitLengths(lengths []uint8, maxBits int) {
	// Clamp overlong codes and track the Kraft sum in units of 2^-maxBits.
	var kraft uint64
	unit := uint64(1) << uint(maxBits)
	for i, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxBits {
			lengths[i] = uint8(maxBits)
			l = uint8(maxBits)
		}
		kraft += unit >> uint(l)
	}
	// While oversubscribed, demote (lengthen) the shortest over-candidates:
	// take a symbol at the deepest level < maxBits... Standard repair:
	// find a code with length < maxBits, increment it (halves its Kraft
	// contribution appropriately). We iterate from maxBits-1 downward.
	for kraft > unit {
		// Find a symbol with the largest length strictly below maxBits to
		// lengthen (costs the least in expected bits).
		best := -1
		var bestLen uint8
		for i, l := range lengths {
			if l > 0 && int(l) < maxBits && l > bestLen {
				best, bestLen = i, l
			}
		}
		if best == -1 {
			panic("huffman: cannot satisfy length limit")
		}
		kraft -= unit >> uint(bestLen)
		lengths[best]++
		kraft += unit >> uint(lengths[best])
	}
	// If undersubscribed we could shorten codes, but a valid (possibly
	// slightly suboptimal) canonical code only requires Kraft ≤ 1.
}

// Code is a canonical Huffman code table for encoding.
type Code struct {
	// Bits[s] is the code for symbol s, MSB-first within Len[s] bits.
	Bits []uint32
	// Len[s] is the code length for symbol s; 0 means the symbol is unused.
	Len []uint8
}

// CanonicalCode assigns canonical codes (numerically increasing within a
// length, shorter lengths first; RFC 1951 §3.2.2) for the given lengths.
func CanonicalCode(lengths []uint8) (*Code, error) {
	maxBits := int(maxLen(lengths))
	if maxBits == 0 {
		return nil, ErrEmptyAlphabet
	}
	blCount := make([]int, maxBits+1)
	for _, l := range lengths {
		if l > 0 {
			blCount[l]++
		}
	}
	// Validate the Kraft inequality before assigning codes.
	var kraft uint64
	for b := 1; b <= maxBits; b++ {
		kraft += uint64(blCount[b]) << uint(maxBits-b)
	}
	if kraft > 1<<uint(maxBits) {
		return nil, fmt.Errorf("huffman: oversubscribed code lengths (kraft %d > %d)", kraft, uint64(1)<<uint(maxBits))
	}
	nextCode := make([]uint32, maxBits+2)
	var code uint32
	for b := 1; b <= maxBits; b++ {
		code = (code + uint32(blCount[b-1])) << 1
		nextCode[b] = code
	}
	c := &Code{Bits: make([]uint32, len(lengths)), Len: append([]uint8(nil), lengths...)}
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		c.Bits[s] = nextCode[l]
		nextCode[l]++
	}
	return c, nil
}

// Build is a convenience that computes lengths and canonical codes in one
// step.
func Build(freq []uint64, maxBits int) (*Code, error) {
	lengths, err := BuildLengths(freq, maxBits)
	if err != nil {
		return nil, err
	}
	return CanonicalCode(lengths)
}
