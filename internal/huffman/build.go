// Package huffman implements canonical, length-limited Huffman coding as
// used by DEFLATE (RFC 1951 §3.2.2) and by the SZ3 entropy stage.
//
// Code construction follows the classical two-step approach: build optimal
// code lengths from symbol frequencies with a heap-based Huffman algorithm,
// then, if the longest code exceeds the limit, rebalance lengths with the
// Kraft-sum repair used by zlib. Codes are assigned canonically so that a
// (length histogram, ordered symbols) pair fully determines the code table,
// which is exactly the property DEFLATE's dynamic block headers rely on.
package huffman

import (
	"errors"
)

// MaxSymbols is a sanity cap on alphabet size (SZ3 quantizer bins can be
// large but bounded).
const MaxSymbols = 1 << 20

// ErrEmptyAlphabet is returned when no symbol has a nonzero frequency.
var ErrEmptyAlphabet = errors.New("huffman: empty alphabet")

type node struct {
	weight uint64
	symbol int // -1 for internal nodes
	left   int // index into nodes, -1 for leaves
	right  int
	depth  int
}

type nodeHeap struct {
	nodes []node
	order []int // heap of indices into nodes
}

func (h *nodeHeap) Len() int { return len(h.order) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	// Tie-break on depth for flatter trees, then on symbol for determinism.
	if a.depth != b.depth {
		return a.depth < b.depth
	}
	return a.symbol < b.symbol
}
func (h *nodeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }

// The heap operations are hand-rolled rather than delegated to
// container/heap: its any-typed Push/Pop box every node index, which
// would put an allocation inside the per-block hot path.

func (h *nodeHeap) up(j int) {
	for j > 0 {
		p := (j - 1) / 2
		if !h.Less(j, p) {
			return
		}
		h.Swap(j, p)
		j = p
	}
}

func (h *nodeHeap) down(i int) {
	n := len(h.order)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && h.Less(r, l) {
			least = r
		}
		if !h.Less(least, i) {
			return
		}
		h.Swap(i, least)
		i = least
	}
}

func (h *nodeHeap) init() {
	for i := len(h.order)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *nodeHeap) push(x int) {
	h.order = append(h.order, x)
	h.up(len(h.order) - 1)
}

func (h *nodeHeap) pop() int {
	x := h.order[0]
	last := len(h.order) - 1
	h.order[0] = h.order[last]
	h.order = h.order[:last]
	h.down(0)
	return x
}

// BuildLengths computes code lengths for the given symbol frequencies,
// limited to maxBits. Symbols with zero frequency get length 0 (no code).
// If only one symbol has nonzero frequency it is assigned length 1, as
// DEFLATE requires at least one bit per coded symbol.
func BuildLengths(freq []uint64, maxBits int) ([]uint8, error) {
	lengths := make([]uint8, len(freq))
	var s Scratch
	if err := s.BuildLengthsInto(freq, maxBits, lengths); err != nil {
		return nil, err
	}
	return lengths, nil
}

func maxLen(lengths []uint8) uint8 {
	var m uint8
	for _, l := range lengths {
		if l > m {
			m = l
		}
	}
	return m
}

// limitLengths rebalances code lengths so none exceeds maxBits while the
// Kraft inequality sum(2^-len) ≤ 1 still holds, preserving optimality as
// closely as possible (zlib's bl_count repair strategy).
func limitLengths(lengths []uint8, maxBits int) {
	// Clamp overlong codes and track the Kraft sum in units of 2^-maxBits.
	var kraft uint64
	unit := uint64(1) << uint(maxBits)
	for i, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxBits {
			lengths[i] = uint8(maxBits)
			l = uint8(maxBits)
		}
		kraft += unit >> uint(l)
	}
	// While oversubscribed, demote (lengthen) the shortest over-candidates:
	// take a symbol at the deepest level < maxBits... Standard repair:
	// find a code with length < maxBits, increment it (halves its Kraft
	// contribution appropriately). We iterate from maxBits-1 downward.
	for kraft > unit {
		// Find a symbol with the largest length strictly below maxBits to
		// lengthen (costs the least in expected bits).
		best := -1
		var bestLen uint8
		for i, l := range lengths {
			if l > 0 && int(l) < maxBits && l > bestLen {
				best, bestLen = i, l
			}
		}
		if best == -1 {
			panic("huffman: cannot satisfy length limit")
		}
		kraft -= unit >> uint(bestLen)
		lengths[best]++
		kraft += unit >> uint(lengths[best])
	}
	// If undersubscribed we could shorten codes, but a valid (possibly
	// slightly suboptimal) canonical code only requires Kraft ≤ 1.
}

// Code is a canonical Huffman code table for encoding.
type Code struct {
	// Bits[s] is the code for symbol s, MSB-first within Len[s] bits.
	Bits []uint32
	// Len[s] is the code length for symbol s; 0 means the symbol is unused.
	Len []uint8
}

// CanonicalCode assigns canonical codes (numerically increasing within a
// length, shorter lengths first; RFC 1951 §3.2.2) for the given lengths.
func CanonicalCode(lengths []uint8) (*Code, error) {
	c := &Code{}
	if err := CanonicalInto(lengths, c); err != nil {
		return nil, err
	}
	return c, nil
}

// Build is a convenience that computes lengths and canonical codes in one
// step.
func Build(freq []uint64, maxBits int) (*Code, error) {
	lengths, err := BuildLengths(freq, maxBits)
	if err != nil {
		return nil, err
	}
	return CanonicalCode(lengths)
}
