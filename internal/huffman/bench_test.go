package huffman

import (
	"math/rand"
	"testing"

	"pedal/internal/bits"
)

// benchStream Huffman-encodes n symbols drawn from dist with the code
// built for that distribution, returning the decoder and the bit stream.
func benchStream(b *testing.B, nsyms, n int, skew bool) (*Decoder, []byte, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	freq := make([]uint64, nsyms)
	syms := make([]int, n)
	for i := range syms {
		var s int
		if skew {
			// Geometric-ish skew: short codes dominate, as in real streams.
			s = int(rng.ExpFloat64() * float64(nsyms) / 16)
			if s >= nsyms {
				s = nsyms - 1
			}
		} else {
			s = rng.Intn(nsyms)
		}
		syms[i] = s
		freq[s]++
	}
	code, err := Build(freq, 15)
	if err != nil {
		b.Fatal(err)
	}
	w := bits.NewWriter(n)
	for _, s := range syms {
		l := uint(code.Len[s])
		w.WriteBits(bits.Reverse(code.Bits[s], l), l)
	}
	lengths := make([]uint8, nsyms)
	copy(lengths, code.Len)
	dec, err := NewDecoder(lengths)
	if err != nil {
		b.Fatal(err)
	}
	return dec, w.Bytes(), syms
}

// BenchmarkDecodeSkewed decodes a symbol stream with a skewed (realistic)
// distribution — short codes dominate, so the two-symbols-per-lookup fast
// path applies most of the time.
func BenchmarkDecodeSkewed(b *testing.B) {
	const n = 1 << 16
	dec, stream, syms := benchStream(b, 256, n, true)
	r := bits.NewReader(stream)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(stream)
		for k := 0; k < n; k++ {
			s, err := dec.Decode(r)
			if err != nil {
				b.Fatal(err)
			}
			if s != syms[k] {
				b.Fatalf("symbol %d: got %d want %d", k, s, syms[k])
			}
		}
	}
}

// BenchmarkDecodePairSkewed is BenchmarkDecodeSkewed through the fused
// two-symbols-per-lookup path — the configuration flate's literal runs
// decode with.
func BenchmarkDecodePairSkewed(b *testing.B) {
	const n = 1 << 16
	dec, stream, syms := benchStream(b, 256, n, true)
	if err := dec.ResetPaired(lengthsOf(dec), 256); err != nil {
		b.Fatal(err)
	}
	r := bits.NewReader(stream)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(stream)
		for k := 0; k < n; {
			s1, s2, ok2, err := dec.DecodePair(r)
			if err != nil {
				b.Fatal(err)
			}
			if s1 != syms[k] {
				b.Fatalf("symbol %d: got %d want %d", k, s1, syms[k])
			}
			k++
			if ok2 {
				// The last pair may straddle the byte-padding tail; only
				// verify s2 while it maps to a real symbol.
				if k < n && s2 != syms[k] {
					b.Fatalf("symbol %d: got %d want %d", k, s2, syms[k])
				}
				k++
			}
		}
	}
}

// lengthsOf recovers the code lengths a decoder was built from.
func lengthsOf(d *Decoder) []uint8 {
	lengths := make([]uint8, len(d.code.Len))
	copy(lengths, d.code.Len)
	return lengths
}

// BenchmarkDecodeUniform decodes a uniform distribution over a large
// alphabet — longer codes, exercising the secondary-table path.
func BenchmarkDecodeUniform(b *testing.B) {
	const n = 1 << 16
	dec, stream, _ := benchStream(b, 4096, n, false)
	r := bits.NewReader(stream)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(stream)
		for k := 0; k < n; k++ {
			if _, err := dec.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEncode measures the encoder kernel: bit-reversing and writing
// one code per symbol (the flate writeTokens inner operation).
func BenchmarkEncode(b *testing.B) {
	const n = 1 << 16
	_, _, syms := benchStream(b, 256, n, true)
	freq := make([]uint64, 256)
	for _, s := range syms {
		freq[s]++
	}
	code, err := Build(freq, 15)
	if err != nil {
		b.Fatal(err)
	}
	w := bits.NewWriter(n)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		for _, s := range syms {
			l := uint(code.Len[s])
			w.WriteBits(bits.Reverse(code.Bits[s], l), l)
		}
	}
}
