package huffman

import "sync"

// DEFLATE's fixed Huffman codes (RFC 1951 §3.2.6) never change, yet the
// compressor used to rebuild them for every fixed block — a measurable
// allocation cost on the chunked hot path. They are built exactly once
// here and shared; Code tables are read-only after construction so the
// cached pointers are safe for concurrent use.

var (
	fixedOnce    sync.Once
	fixedLitLen  *Code
	fixedDist    *Code
	fixedLitLens []uint8
	fixedDistLns []uint8
)

func buildFixed() {
	fixedLitLens = make([]uint8, 288)
	for i := range fixedLitLens {
		switch {
		case i < 144:
			fixedLitLens[i] = 8
		case i < 256:
			fixedLitLens[i] = 9
		case i < 280:
			fixedLitLens[i] = 7
		default:
			fixedLitLens[i] = 8
		}
	}
	fixedDistLns = make([]uint8, 30)
	for i := range fixedDistLns {
		fixedDistLns[i] = 5
	}
	var err error
	fixedLitLen, err = CanonicalCode(fixedLitLens)
	if err != nil {
		panic(err)
	}
	fixedDist, err = CanonicalCode(fixedDistLns)
	if err != nil {
		panic(err)
	}
}

// FixedLitLenCode returns the cached fixed literal/length code table
// (288 symbols). Callers must treat it as read-only.
func FixedLitLenCode() *Code {
	fixedOnce.Do(buildFixed)
	return fixedLitLen
}

// FixedDistCode returns the cached fixed distance code table (30
// symbols, 5 bits each). Callers must treat it as read-only.
func FixedDistCode() *Code {
	fixedOnce.Do(buildFixed)
	return fixedDist
}

// FixedLitLenLengths returns the fixed literal/length code lengths.
// Callers must treat the slice as read-only.
func FixedLitLenLengths() []uint8 {
	fixedOnce.Do(buildFixed)
	return fixedLitLens
}

// FixedDistLengths returns the fixed distance code lengths. Callers must
// treat the slice as read-only.
func FixedDistLengths() []uint8 {
	fixedOnce.Do(buildFixed)
	return fixedDistLns
}
