package huffman

import "testing"

// TestFixedCodesCached: the fixed RFC 1951 tables must be built once and
// returned by pointer — no per-call table construction on the chunked
// hot path.
func TestFixedCodesCached(t *testing.T) {
	if FixedLitLenCode() != FixedLitLenCode() {
		t.Error("FixedLitLenCode rebuilt per call")
	}
	if FixedDistCode() != FixedDistCode() {
		t.Error("FixedDistCode rebuilt per call")
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = FixedLitLenCode()
		_ = FixedDistCode()
		_ = FixedLitLenLengths()
		_ = FixedDistLengths()
	}); n != 0 {
		t.Errorf("fixed-table accessors allocate %.1f per call", n)
	}
	// Sanity: the cached tables are the canonical fixed codes.
	c := FixedLitLenCode()
	if len(c.Len) != 288 || c.Len[0] != 8 || c.Len[200] != 9 || c.Len[260] != 7 || c.Len[287] != 8 {
		t.Error("fixed lit/len lengths wrong")
	}
}

// TestScratchBuildZeroAlloc is the allocation regression test for the
// dynamic-table scratch path: at steady state (warmed storage) a full
// build-lengths + canonical-code cycle must not allocate.
func TestScratchBuildZeroAlloc(t *testing.T) {
	freq := make([]uint64, 286)
	for i := range freq {
		freq[i] = uint64(i%7) + 1
	}
	var s Scratch
	lengths := make([]uint8, len(freq))
	var code Code
	// Warm the scratch and code storage.
	if err := s.BuildLengthsInto(freq, 15, lengths); err != nil {
		t.Fatal(err)
	}
	if err := CanonicalInto(lengths, &code); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := s.BuildLengthsInto(freq, 15, lengths); err != nil {
			t.Fatal(err)
		}
		if err := CanonicalInto(lengths, &code); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state table build allocates %.1f per run, want 0", n)
	}
	// The scratch output must agree with the allocating entry points.
	ref, err := BuildLengths(freq, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != lengths[i] {
			t.Fatalf("symbol %d: scratch length %d != reference %d", i, lengths[i], ref[i])
		}
	}
}
