package huffman

import (
	"errors"

	"pedal/internal/bits"
)

// ErrInvalidCode is returned when the bit stream contains a code that is
// not part of the table.
var ErrInvalidCode = errors.New("huffman: invalid code in stream")

// primaryBits is the width of the first-level decode table. Codes no longer
// than primaryBits decode with a single lookup; longer codes fall through
// to a per-prefix secondary table. 11 bits covers the overwhelming
// majority of DEFLATE lit/len codes directly AND leaves room for two
// typical (4–6 bit) codes to land in one window, which is what makes the
// pair entries fire often enough to pay for themselves. The 16 KiB table
// still rebuilds in ~1 µs per dynamic block, amortised over tens of
// thousands of decoded symbols.
const primaryBits = 11

// Decode-table entries are packed into a single uint64 so the hot loop
// does one load, one mask, and a couple of shifts per symbol:
//
//	bits  0..1   kind; bit 0 = directly decodable (single or pair),
//	             bit 1 on a decodable entry = two fused symbols
//	bits  2..7   first-code length (single and pair), or the
//	             secondary-table width subBits (secondary)
//	bits  8..15  combined length of all fused codes (= first-code
//	             length for singles)
//	bits 16..47  symbol (single), sym1|sym2<<16 (pair),
//	             or secondary-table index (secondary)
//
// The kind values are chosen so the fast path is ONE predictable branch
// (e&1 != 0) covering both singles and pairs; single-vs-pair then only
// selects a payload mask, which compiles to a conditional move rather
// than a data-dependent jump.
const (
	kindInvalid   = 0
	kindSingle    = 1
	kindSecondary = 2
	kindPair      = 3
)

func packSingle(sym uint32, l uint8) uint64 {
	return kindSingle | uint64(l)<<2 | uint64(l)<<8 | uint64(sym)<<16
}

// payloadMask returns the s1 extraction mask for a decodable entry:
// pairs keep sym1 in the low 16 payload bits, singles use all 32.
func payloadMask(e uint64) uint32 {
	mask := uint32(0xFFFFFFFF)
	if e&2 != 0 {
		mask = 0xFFFF
	}
	return mask
}

// revCode is a (bit-reversed code, length) pair kept for the error slow
// path, which must distinguish a truncated stream from an invalid code.
type revCode struct {
	rev uint32
	len uint8
}

// Decoder is a table-driven canonical Huffman decoder operating on an
// LSB-first bit stream (codes stored bit-reversed, as in DEFLATE).
//
// When built with ResetPaired, primary slots whose first code is short
// enough that a complete second code also fits in the same primaryBits
// window carry both pre-decoded symbols; DecodePair then retires two
// symbols with a single table lookup. On skewed (realistic) streams most
// lookups hit this path.
type Decoder struct {
	primary   []uint64
	secondary [][]uint64
	codes     []revCode
	// code is the scratch canonical-code storage reused across Resets.
	code    Code
	maxBits uint8
	// minBits is the shortest code length, used for the slow path bound.
	minBits uint8
	// pairLimit bounds which symbols may be fused into pair entries:
	// only symbols < pairLimit qualify (callers exclude symbols whose
	// decode consumes extra bits, e.g. DEFLATE length codes).
	pairLimit int
}

// NewDecoder builds a decoder for the canonical code defined by lengths.
func NewDecoder(lengths []uint8) (*Decoder, error) {
	d := &Decoder{}
	if err := d.Reset(lengths); err != nil {
		return nil, err
	}
	return d, nil
}

// NewPairedDecoder builds a decoder whose DecodePair fast path may fuse
// two consecutive symbols, both below pairLimit, into one lookup.
func NewPairedDecoder(lengths []uint8, pairLimit int) (*Decoder, error) {
	d := &Decoder{}
	if err := d.ResetPaired(lengths, pairLimit); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset rebuilds the decoder for a new canonical code, reusing the
// primary/secondary tables and slow-path storage from earlier builds so
// that per-block dynamic-table decoding allocates nothing at steady
// state (the chunked decompression hot path pools Decoders). The decoder
// has no pair entries; use ResetPaired to enable them.
func (d *Decoder) Reset(lengths []uint8) error {
	return d.ResetPaired(lengths, 0)
}

// ResetPaired is Reset with two-symbol fusion enabled for symbols below
// pairLimit (0 disables fusion).
func (d *Decoder) ResetPaired(lengths []uint8, pairLimit int) error {
	if err := CanonicalInto(lengths, &d.code); err != nil {
		return err
	}
	d.pairLimit = pairLimit
	d.maxBits = maxLen(lengths)
	d.minBits = 255
	for _, l := range lengths {
		if l > 0 && l < d.minBits {
			d.minBits = l
		}
	}
	if cap(d.primary) >= 1<<primaryBits {
		d.primary = d.primary[:1<<primaryBits]
	} else {
		d.primary = make([]uint64, 1<<primaryBits)
	}
	for i := range d.primary {
		d.primary[i] = kindInvalid
	}
	d.codes = d.codes[:0]
	d.secondary = d.secondary[:0]

	for s, l := range lengths {
		if l == 0 {
			continue
		}
		// DEFLATE streams store the code MSB-first; we read LSB-first, so
		// the lookup index is the bit-reversed code.
		rev := bits.Reverse(d.code.Bits[s], uint(l))
		d.codes = append(d.codes, revCode{rev: rev, len: l})
		if l <= primaryBits {
			// Fill every primary slot whose low l bits equal rev.
			e := packSingle(uint32(s), l)
			step := uint32(1) << uint(l)
			for idx := rev; idx < 1<<primaryBits; idx += step {
				d.primary[idx] = e
			}
			continue
		}
		// Secondary table keyed by the primary prefix (low primaryBits).
		prefix := rev & (1<<primaryBits - 1)
		pe := d.primary[prefix]
		need := d.maxBits - primaryBits
		if pe&3 != kindSecondary {
			pe = kindSecondary | uint64(need)<<2 | uint64(d.grabSecondary(need))<<16
			d.primary[prefix] = pe
		}
		sub := d.secondary[uint32(pe>>16)]
		hi := rev >> primaryBits
		step := uint32(1) << uint(l-primaryBits)
		e := packSingle(uint32(s), l)
		for idx := hi; idx < uint32(len(sub)); idx += step {
			sub[idx] = e
		}
	}
	if pairLimit > 0 {
		d.buildPairs()
	}
	return nil
}

// buildPairs upgrades primary slots to two-symbol entries where the
// window determines a complete second code after the first. Indices are
// walked descending so primary[idx>>l1] — always a smaller index — is
// still a single entry when read.
func (d *Decoder) buildPairs() {
	lim := d.pairLimit
	if lim > 1<<16 {
		lim = 1 << 16
	}
	for idx := len(d.primary) - 1; idx >= 0; idx-- {
		e := d.primary[idx]
		if e&3 != kindSingle {
			continue
		}
		l1 := uint(e>>2) & 63
		s1 := uint32(e >> 16)
		if l1 == 0 || int(s1) >= lim {
			continue
		}
		e2 := d.primary[uint(idx)>>l1]
		if e2&3 != kindSingle {
			continue
		}
		l2 := uint(e2>>2) & 63
		s2 := uint32(e2 >> 16)
		if l2 == 0 || l1+l2 > primaryBits || int(s2) >= lim {
			continue
		}
		d.primary[idx] = kindPair | uint64(l1)<<2 | uint64(l1+l2)<<8 |
			uint64(s1)<<16 | uint64(s2)<<32
	}
}

// grabSecondary returns the index of a cleared secondary table of
// 1<<need entries, reusing storage retained from previous Resets.
func (d *Decoder) grabSecondary(need uint8) int32 {
	idx := len(d.secondary)
	var sub []uint64
	if cap(d.secondary) > idx {
		d.secondary = d.secondary[:idx+1]
		sub = d.secondary[idx]
	}
	if cap(sub) >= 1<<need {
		sub = sub[:1<<need]
	} else {
		sub = make([]uint64, 1<<need)
	}
	if idx == len(d.secondary) {
		d.secondary = append(d.secondary, sub)
	} else {
		d.secondary[idx] = sub
	}
	for i := range sub {
		sub[i] = kindInvalid
	}
	return int32(idx)
}

// Decode reads one symbol from r.
func (d *Decoder) Decode(r *bits.Reader) (int, error) {
	v, avail := r.PeekBits(primaryBits)
	e := d.primary[v]
	if e&1 != 0 {
		l := uint(e>>2) & 63
		if l > avail {
			return 0, bits.ErrUnexpectedEOF
		}
		r.SkipBits(l)
		return int(uint32(e>>16) & payloadMask(e)), nil
	}
	return d.decodeSlow(r, v, avail, e)
}

// DecodePair reads one symbol, and — when the table window pre-decoded a
// complete second code — a second one in the same lookup. ok2 reports
// whether s2 is valid. Both fused symbols are always below the
// pairLimit the decoder was built with.
func (d *Decoder) DecodePair(r *bits.Reader) (s1, s2 int, ok2 bool, err error) {
	v, avail := r.PeekBits(primaryBits)
	e := d.primary[v]
	if e&1 != 0 {
		if total := uint(e>>8) & 0xFF; total <= avail {
			r.SkipBits(total)
			return int(uint32(e>>16) & payloadMask(e)), int(uint32(e>>32) & 0xFFFF),
				e&2 != 0, nil
		}
		// Stream tail: not enough bits for the fused total; consume just
		// the first code if it still fits.
		l := uint(e>>2) & 63
		if l > avail {
			return 0, 0, false, bits.ErrUnexpectedEOF
		}
		r.SkipBits(l)
		return int(uint32(e>>16) & payloadMask(e)), 0, false, nil
	}
	s1, err = d.decodeSlow(r, v, avail, e)
	return s1, 0, false, err
}

// decodeSlow handles the non-single primary entries: unmapped slots and
// long codes that continue into a secondary table.
func (d *Decoder) decodeSlow(r *bits.Reader, v uint32, avail uint, e uint64) (int, error) {
	if e&3 == kindInvalid {
		// No entry: invalid code unless the stream is too short to tell.
		if avail < primaryBits {
			return 0, d.shortStreamError(v, avail)
		}
		return 0, ErrInvalidCode
	}
	// Long code: peek the full maxBits and index the secondary table.
	total := primaryBits + uint(e>>2)&63
	full, availFull := r.PeekBits(total)
	sub := d.secondary[uint32(e>>16)]
	se := sub[full>>primaryBits]
	if se&3 != kindSingle {
		if availFull < total {
			return 0, d.shortStreamError(full, availFull)
		}
		return 0, ErrInvalidCode
	}
	l := uint(se>>2) & 63
	if l > availFull {
		return 0, bits.ErrUnexpectedEOF
	}
	r.SkipBits(l)
	return int(uint32(se >> 16)), nil
}

// shortStreamError decides, for a truncated peek of avail bits with value v,
// whether a longer stream could still have decoded (→ ErrUnexpectedEOF) or
// whether no code matches the bits we do have (→ ErrInvalidCode).
func (d *Decoder) shortStreamError(v uint32, avail uint) error {
	mask := uint32(1)<<avail - 1
	for _, c := range d.codes {
		if uint(c.len) > avail && c.rev&mask == v&mask {
			return bits.ErrUnexpectedEOF
		}
	}
	return ErrInvalidCode
}

// MaxBits reports the longest code length in the table.
func (d *Decoder) MaxBits() int { return int(d.maxBits) }
