package huffman

import (
	"errors"

	"pedal/internal/bits"
)

// ErrInvalidCode is returned when the bit stream contains a code that is
// not part of the table.
var ErrInvalidCode = errors.New("huffman: invalid code in stream")

// primaryBits is the width of the first-level decode table. Codes no longer
// than primaryBits decode with a single lookup; longer codes fall through
// to a per-prefix secondary table.
const primaryBits = 9

type decodeEntry struct {
	// For primary entries: if len <= primaryBits, symbol/len describe the
	// decoded symbol. Otherwise sub indexes into the secondary tables and
	// subBits gives the secondary table width.
	symbol  int32
	len     uint8
	subBits uint8
	sub     int32
}

// revCode is a (bit-reversed code, length) pair kept for the error slow
// path, which must distinguish a truncated stream from an invalid code.
type revCode struct {
	rev uint32
	len uint8
}

// Decoder is a table-driven canonical Huffman decoder operating on an
// LSB-first bit stream (codes stored bit-reversed, as in DEFLATE).
type Decoder struct {
	primary   []decodeEntry
	secondary [][]decodeEntry
	codes     []revCode
	// code is the scratch canonical-code storage reused across Resets.
	code    Code
	maxBits uint8
	// minBits is the shortest code length, used for the slow path bound.
	minBits uint8
}

// NewDecoder builds a decoder for the canonical code defined by lengths.
func NewDecoder(lengths []uint8) (*Decoder, error) {
	d := &Decoder{}
	if err := d.Reset(lengths); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset rebuilds the decoder for a new canonical code, reusing the
// primary/secondary tables and slow-path storage from earlier builds so
// that per-block dynamic-table decoding allocates nothing at steady
// state (the chunked decompression hot path pools Decoders).
func (d *Decoder) Reset(lengths []uint8) error {
	if err := CanonicalInto(lengths, &d.code); err != nil {
		return err
	}
	d.maxBits = maxLen(lengths)
	d.minBits = 255
	for _, l := range lengths {
		if l > 0 && l < d.minBits {
			d.minBits = l
		}
	}
	if cap(d.primary) >= 1<<primaryBits {
		d.primary = d.primary[:1<<primaryBits]
	} else {
		d.primary = make([]decodeEntry, 1<<primaryBits)
	}
	for i := range d.primary {
		d.primary[i] = decodeEntry{symbol: -1}
	}
	d.codes = d.codes[:0]
	d.secondary = d.secondary[:0]

	for s, l := range lengths {
		if l == 0 {
			continue
		}
		// DEFLATE streams store the code MSB-first; we read LSB-first, so
		// the lookup index is the bit-reversed code.
		rev := bits.Reverse(d.code.Bits[s], uint(l))
		d.codes = append(d.codes, revCode{rev: rev, len: l})
		if l <= primaryBits {
			// Fill every primary slot whose low l bits equal rev.
			step := uint32(1) << uint(l)
			for idx := rev; idx < 1<<primaryBits; idx += step {
				d.primary[idx] = decodeEntry{symbol: int32(s), len: l}
			}
			continue
		}
		// Secondary table keyed by the primary prefix (low primaryBits).
		prefix := rev & (1<<primaryBits - 1)
		pe := &d.primary[prefix]
		need := uint8(d.maxBits) - primaryBits
		if pe.sub == 0 && pe.subBits == 0 {
			*pe = decodeEntry{symbol: -1, subBits: need, sub: d.grabSecondary(need), len: 0}
		}
		sub := d.secondary[pe.sub]
		hi := rev >> primaryBits
		step := uint32(1) << uint(l-primaryBits)
		for idx := hi; idx < uint32(len(sub)); idx += step {
			sub[idx] = decodeEntry{symbol: int32(s), len: l}
		}
	}
	return nil
}

// grabSecondary returns the index of a cleared secondary table of
// 1<<need entries, reusing storage retained from previous Resets.
func (d *Decoder) grabSecondary(need uint8) int32 {
	idx := len(d.secondary)
	var sub []decodeEntry
	if cap(d.secondary) > idx {
		d.secondary = d.secondary[:idx+1]
		sub = d.secondary[idx]
	}
	if cap(sub) >= 1<<need {
		sub = sub[:1<<need]
	} else {
		sub = make([]decodeEntry, 1<<need)
	}
	if idx == len(d.secondary) {
		d.secondary = append(d.secondary, sub)
	} else {
		d.secondary[idx] = sub
	}
	for i := range sub {
		sub[i] = decodeEntry{symbol: -1}
	}
	return int32(idx)
}

// Decode reads one symbol from r.
func (d *Decoder) Decode(r *bits.Reader) (int, error) {
	v, avail := r.PeekBits(primaryBits)
	e := d.primary[v]
	if e.symbol >= 0 && e.len > 0 {
		if uint(e.len) > avail {
			return 0, bits.ErrUnexpectedEOF
		}
		r.SkipBits(uint(e.len))
		return int(e.symbol), nil
	}
	if e.subBits == 0 {
		// No entry: invalid code unless the stream is too short to tell.
		if avail < primaryBits {
			return 0, d.shortStreamError(v, avail)
		}
		return 0, ErrInvalidCode
	}
	// Long code: peek the full maxBits and index the secondary table.
	total := uint(primaryBits) + uint(e.subBits)
	full, availFull := r.PeekBits(total)
	sub := d.secondary[e.sub]
	se := sub[full>>primaryBits]
	if se.symbol < 0 || se.len == 0 {
		if availFull < total {
			return 0, d.shortStreamError(full, availFull)
		}
		return 0, ErrInvalidCode
	}
	if uint(se.len) > availFull {
		return 0, bits.ErrUnexpectedEOF
	}
	r.SkipBits(uint(se.len))
	return int(se.symbol), nil
}

// shortStreamError decides, for a truncated peek of avail bits with value v,
// whether a longer stream could still have decoded (→ ErrUnexpectedEOF) or
// whether no code matches the bits we do have (→ ErrInvalidCode).
func (d *Decoder) shortStreamError(v uint32, avail uint) error {
	mask := uint32(1)<<avail - 1
	for _, c := range d.codes {
		if uint(c.len) > avail && c.rev&mask == v&mask {
			return bits.ErrUnexpectedEOF
		}
	}
	return ErrInvalidCode
}

// MaxBits reports the longest code length in the table.
func (d *Decoder) MaxBits() int { return int(d.maxBits) }
