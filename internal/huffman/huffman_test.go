package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pedal/internal/bits"
)

func encodeSymbols(t *testing.T, c *Code, syms []int) []byte {
	t.Helper()
	w := bits.NewWriter(len(syms))
	for _, s := range syms {
		if c.Len[s] == 0 {
			t.Fatalf("symbol %d has no code", s)
		}
		w.WriteBits(bits.Reverse(c.Bits[s], uint(c.Len[s])), uint(c.Len[s]))
	}
	return w.Bytes()
}

func decodeSymbols(t *testing.T, d *Decoder, data []byte, n int) []int {
	t.Helper()
	r := bits.NewReader(data)
	out := make([]int, n)
	for i := range out {
		s, err := d.Decode(r)
		if err != nil {
			t.Fatalf("decode symbol %d: %v", i, err)
		}
		out[i] = s
	}
	return out
}

func TestSingleSymbol(t *testing.T) {
	freq := make([]uint64, 10)
	freq[3] = 100
	lengths, err := BuildLengths(freq, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[3] != 1 {
		t.Fatalf("single symbol length = %d, want 1", lengths[3])
	}
	c, err := CanonicalCode(lengths)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	syms := []int{3, 3, 3, 3, 3}
	got := decodeSymbols(t, d, encodeSymbols(t, c, syms), len(syms))
	for i, s := range got {
		if s != 3 {
			t.Fatalf("symbol %d = %d", i, s)
		}
	}
}

func TestEmptyAlphabet(t *testing.T) {
	if _, err := BuildLengths(make([]uint64, 5), 15); err != ErrEmptyAlphabet {
		t.Fatalf("want ErrEmptyAlphabet, got %v", err)
	}
}

func TestOptimalityClassicExample(t *testing.T) {
	// Frequencies 5, 9, 12, 13, 16, 45 — the textbook example; expected
	// total cost 224 bits (optimal Huffman).
	freq := []uint64{5, 9, 12, 13, 16, 45}
	lengths, err := BuildLengths(freq, 15)
	if err != nil {
		t.Fatal(err)
	}
	var cost uint64
	for i, f := range freq {
		cost += f * uint64(lengths[i])
	}
	if cost != 224 {
		t.Fatalf("total cost = %d bits, want 224", cost)
	}
}

func TestKraftHolds(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%300 + 2
		freq := make([]uint64, n)
		for i := range freq {
			if rng.Intn(3) > 0 {
				freq[i] = uint64(rng.Intn(10000) + 1)
			}
		}
		lengths, err := BuildLengths(freq, 15)
		if err == ErrEmptyAlphabet {
			return true
		}
		if err != nil {
			return false
		}
		var kraft float64
		for _, l := range lengths {
			if l > 0 {
				if l > 15 {
					return false
				}
				kraft += 1 / float64(uint64(1)<<l)
			}
		}
		return kraft <= 1.0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthLimitSevenBits(t *testing.T) {
	// Exponential frequencies force deep trees; the limiter must cap at 7.
	freq := make([]uint64, 30)
	f := uint64(1)
	for i := range freq {
		freq[i] = f
		if f < 1<<40 {
			f *= 2
		}
	}
	lengths, err := BuildLengths(freq, 7)
	if err != nil {
		t.Fatal(err)
	}
	for s, l := range lengths {
		if l > 7 {
			t.Fatalf("symbol %d has length %d > 7", s, l)
		}
	}
	if _, err := CanonicalCode(lengths); err != nil {
		t.Fatalf("limited lengths are not a valid code: %v", err)
	}
}

func TestRoundTripSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	freq := make([]uint64, 64)
	for i := range freq {
		freq[i] = uint64(rng.Intn(1000)) * uint64(rng.Intn(1000))
	}
	freq[0] = 1 << 30 // heavily skewed
	lengths, err := BuildLengths(freq, 15)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CanonicalCode(lengths)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	var syms []int
	for s, l := range lengths {
		if l > 0 {
			for k := 0; k < 17; k++ {
				syms = append(syms, s)
			}
		}
	}
	rng.Shuffle(len(syms), func(i, j int) { syms[i], syms[j] = syms[j], syms[i] })
	got := decodeSymbols(t, d, encodeSymbols(t, c, syms), len(syms))
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], syms[i])
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, size uint8, count uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%600 + 2
		freq := make([]uint64, n)
		for i := range freq {
			freq[i] = uint64(rng.Intn(100))
		}
		freq[rng.Intn(n)] = 1000 // ensure nonzero
		lengths, err := BuildLengths(freq, 15)
		if err != nil {
			return false
		}
		c, err := CanonicalCode(lengths)
		if err != nil {
			return false
		}
		d, err := NewDecoder(lengths)
		if err != nil {
			return false
		}
		var alphabet []int
		for s, l := range lengths {
			if l > 0 {
				alphabet = append(alphabet, s)
			}
		}
		m := int(count)%2000 + 1
		syms := make([]int, m)
		for i := range syms {
			syms[i] = alphabet[rng.Intn(len(alphabet))]
		}
		w := bits.NewWriter(m)
		for _, s := range syms {
			w.WriteBits(bits.Reverse(c.Bits[s], uint(c.Len[s])), uint(c.Len[s]))
		}
		r := bits.NewReader(w.Bytes())
		for _, want := range syms {
			got, err := d.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	// A code with only symbols 0 and 1 (1 bit each): every stream decodes,
	// so use a sparse 3-symbol code where some patterns are invalid.
	freq := []uint64{10, 5, 1}
	lengths, err := BuildLengths(freq, 15)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	// Lengths are {1,2,2}: all patterns valid. Craft an explicitly sparse
	// length set instead: symbol 0 len 2 only → patterns 01,10,11 invalid.
	sparse := []uint8{2, 0, 0}
	d, err = NewDecoder(sparse)
	if err != nil {
		t.Fatal(err)
	}
	r := bits.NewReader([]byte{0xFF})
	if _, err := d.Decode(r); err != ErrInvalidCode {
		t.Fatalf("want ErrInvalidCode, got %v", err)
	}
}

func TestLongCodesSecondaryTable(t *testing.T) {
	// Force codes longer than primaryBits (9): exponential frequencies over
	// a large alphabet with limit 15.
	freq := make([]uint64, 40)
	f := uint64(1)
	for i := range freq {
		freq[i] = f
		if i < 20 {
			f = f * 3 / 2
			if f == freq[i] {
				f++
			}
		}
	}
	lengths, err := BuildLengths(freq, 15)
	if err != nil {
		t.Fatal(err)
	}
	long := false
	for _, l := range lengths {
		if l > 9 {
			long = true
		}
	}
	if !long {
		t.Skip("test setup did not produce codes > 9 bits")
	}
	c, err := CanonicalCode(lengths)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	var syms []int
	for s := range freq {
		syms = append(syms, s, s, s)
	}
	got := decodeSymbols(t, d, encodeSymbols(t, c, syms), len(syms))
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], syms[i])
		}
	}
}

func TestCanonicalCodesAreCanonical(t *testing.T) {
	// For lengths {2,2,3,3,3,3} the canonical codes are 00,01,100,...,111.
	lengths := []uint8{2, 2, 3, 3, 3, 3}
	c, err := CanonicalCode(lengths)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0b00, 0b01, 0b100, 0b101, 0b110, 0b111}
	for s, w := range want {
		if c.Bits[s] != w {
			t.Errorf("symbol %d code = %#b, want %#b", s, c.Bits[s], w)
		}
	}
}

func TestOversubscribedRejected(t *testing.T) {
	// Three 1-bit codes violate Kraft.
	if _, err := CanonicalCode([]uint8{1, 1, 1}); err == nil {
		t.Fatal("oversubscribed lengths accepted")
	}
	if _, err := NewDecoder([]uint8{1, 1, 1}); err == nil {
		t.Fatal("decoder accepted oversubscribed lengths")
	}
}
