package checksum

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCRC32WriterMatchesOneShot(t *testing.T) {
	f := func(p []byte) bool {
		var buf bytes.Buffer
		w := NewCRC32Writer(&buf)
		if _, err := w.Write(p); err != nil {
			return false
		}
		return w.Sum32() == CRC32(p) && bytes.Equal(buf.Bytes(), p) && w.N() == int64(len(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCRC32WriterIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 100000)
	rng.Read(data)
	w := NewCRC32Writer(nil)
	for off := 0; off < len(data); {
		n := rng.Intn(7000) + 1
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := w.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if got, want := w.Sum32(), CRC32(data); got != want {
		t.Fatalf("incremental CRC32 = %#x, want %#x", got, want)
	}
	if w.N() != int64(len(data)) {
		t.Fatalf("N = %d, want %d", w.N(), len(data))
	}
}

// shortWriter accepts only the first byte of each Write, then errors.
type shortWriter struct{ got []byte }

func (s *shortWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.got = append(s.got, p[0])
	return 1, errors.New("short")
}

func TestCRC32WriterShortWrite(t *testing.T) {
	// The digest must cover only the bytes the underlying writer took,
	// never the bytes the caller attempted: a torn write that is later
	// retried would otherwise double-digest the tail.
	s := &shortWriter{}
	w := NewCRC32Writer(s)
	n, err := w.Write([]byte("abc"))
	if n != 1 || err == nil {
		t.Fatalf("Write = (%d, %v), want (1, error)", n, err)
	}
	if got, want := w.Sum32(), CRC32([]byte("a")); got != want {
		t.Fatalf("digest after short write = %#x, want CRC32(\"a\") = %#x", got, want)
	}
}

func TestCRC32WriterReset(t *testing.T) {
	w := NewCRC32Writer(nil)
	w.Write([]byte("garbage"))
	w.Reset()
	w.Write([]byte("abc"))
	if got, want := w.Sum32(), CRC32([]byte("abc")); got != want {
		t.Fatalf("digest after Reset = %#x, want %#x", got, want)
	}
	if w.N() != 3 {
		t.Fatalf("N after Reset = %d, want 3", w.N())
	}
}
