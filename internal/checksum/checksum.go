// Package checksum implements the checksums required by the compression
// container formats PEDAL produces: Adler-32 (zlib, RFC 1950), CRC-32
// (IEEE 802.3 polynomial, gzip-compatible), and the 32-bit xxHash used by
// the LZ4 frame format. All are implemented from scratch on top of the
// format specifications so the library has no dependency on hash/*.
package checksum

// adlerMod is the largest prime smaller than 65536 (RFC 1950 §8.2).
const adlerMod = 65521

// Adler32 is a running Adler-32 checksum. The zero value is NOT valid;
// use NewAdler32.
type Adler32 struct {
	a, b uint32
}

// NewAdler32 returns a checksum initialised to the RFC 1950 starting value.
func NewAdler32() *Adler32 { return &Adler32{a: 1} }

// Write absorbs p into the checksum.
func (h *Adler32) Write(p []byte) {
	a, b := h.a, h.b
	for len(p) > 0 {
		// Largest n such that 255*n*(n+1)/2 + (n+1)*(adlerMod-1) fits in
		// uint32; the classical value is 5552.
		n := len(p)
		if n > 5552 {
			n = 5552
		}
		for _, c := range p[:n] {
			a += uint32(c)
			b += a
		}
		a %= adlerMod
		b %= adlerMod
		p = p[n:]
	}
	h.a, h.b = a, b
}

// Sum32 returns the current checksum value.
func (h *Adler32) Sum32() uint32 { return h.b<<16 | h.a }

// Adler32Sum is a convenience one-shot Adler-32 over p.
func Adler32Sum(p []byte) uint32 {
	h := NewAdler32()
	h.Write(p)
	return h.Sum32()
}

// crcTable is the byte-at-a-time lookup table for the reflected IEEE
// polynomial 0xEDB88320.
var crcTable = func() [256]uint32 {
	var t [256]uint32
	for i := range t {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		t[i] = c
	}
	return t
}()

// crcTable8 extends crcTable to the slicing-by-8 form: crcTable8[k][b]
// is the CRC contribution of byte b followed by k zero bytes, so eight
// table lookups advance the register by a whole 64-bit word.
var crcTable8 = func() [8][256]uint32 {
	var t [8][256]uint32
	t[0] = crcTable
	for i := 0; i < 256; i++ {
		c := crcTable[i]
		for k := 1; k < 8; k++ {
			c = crcTable[byte(c)] ^ (c >> 8)
			t[k][i] = c
		}
	}
	return t
}()

// CRC32Update continues a CRC-32 (IEEE) over p from a previous value.
// Start with crc = 0. The hop-carried digests of the pipelined path run
// this over every payload byte, so the bulk loop uses slicing-by-8:
// eight bytes per iteration through the derived tables, with the plain
// byte-at-a-time loop (crcUpdateBytewise, kept as the differential
// reference) finishing the tail.
func CRC32Update(crc uint32, p []byte) uint32 {
	c := crc ^ 0xFFFFFFFF
	for len(p) >= 8 {
		c ^= le32(p)
		c = crcTable8[7][byte(c)] ^ crcTable8[6][byte(c>>8)] ^
			crcTable8[5][byte(c>>16)] ^ crcTable8[4][byte(c>>24)] ^
			crcTable8[3][p[4]] ^ crcTable8[2][p[5]] ^
			crcTable8[1][p[6]] ^ crcTable8[0][p[7]]
		p = p[8:]
	}
	for _, b := range p {
		c = crcTable[byte(c)^b] ^ (c >> 8)
	}
	return c ^ 0xFFFFFFFF
}

// crcUpdateBytewise is the definitional byte-at-a-time loop; the
// checksum tests pin the slicing-by-8 kernel against it.
func crcUpdateBytewise(crc uint32, p []byte) uint32 {
	c := crc ^ 0xFFFFFFFF
	for _, b := range p {
		c = crcTable[byte(c)^b] ^ (c >> 8)
	}
	return c ^ 0xFFFFFFFF
}

// CRC32 is a one-shot CRC-32 (IEEE) over p.
func CRC32(p []byte) uint32 { return CRC32Update(0, p) }

// gf2MatrixSquare sets square = mat², composing the linear operator
// with itself.
func gf2MatrixSquare(square, mat *[32]uint32) {
	for n := 0; n < 32; n++ {
		square[n] = gf2MatrixTimes(mat, mat[n])
	}
}

// CRC32Zeros is the precomputed GF(2) operator that advances a CRC-32
// register past a fixed number of zero bytes. Building one costs
// O(log n) 32×32 matrix squarings; applying it (Combine) is a single
// matrix–vector product, so a caller stitching many equal-sized
// segments — the pipeline combining per-chunk digests — builds the
// operator once and pays ~32 XORs per chunk thereafter.
type CRC32Zeros [32]uint32

// gf2MatrixTimes multiplies the GF(2) 32×32 matrix mat by the bit
// vector vec (each matrix column is one uint32 row of mat).
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; vec >>= 1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		i++
	}
	return sum
}

// MakeCRC32Zeros builds the advance-past-n-zero-bytes operator by
// repeated squaring of the one-zero-bit shift (zlib's crc32_combine
// construction, with the powers composed into a standalone matrix).
func MakeCRC32Zeros(n int) *CRC32Zeros {
	res := &CRC32Zeros{}
	for i := range res {
		res[i] = 1 << i // identity: n <= 0 combines to crc1 ^ crc2
	}
	if n <= 0 {
		return res
	}
	var even, odd [32]uint32
	// odd = the one-bit-shift operator with the polynomial fed back.
	odd[0] = 0xEDB88320
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	// Square twice: even = shift-by-2-bits, odd = shift-by-4-bits; the
	// next squaring inside the loop lands on 8 bits = one zero byte.
	gf2MatrixSquare(&even, &odd)
	gf2MatrixSquare(&odd, &even)
	mat, other := &odd, &even
	var tmp CRC32Zeros
	for nn := uint64(n); nn != 0; nn >>= 1 {
		gf2MatrixSquare(other, mat) // mat for 2^i zero bytes
		mat, other = other, mat
		if nn&1 != 0 {
			// Powers of one operator commute, so the fold order is free.
			for i := range tmp {
				tmp[i] = gf2MatrixTimes(mat, res[i])
			}
			*res = tmp
		}
	}
	return res
}

// Combine returns the CRC-32 of A‖B given crc1 = CRC32(A) and
// crc2 = CRC32(B), where len(B) is the operator's byte count.
func (z *CRC32Zeros) Combine(crc1, crc2 uint32) uint32 {
	return gf2MatrixTimes((*[32]uint32)(z), crc1) ^ crc2
}

// CRC32Combine returns the CRC-32 of the concatenation A‖B given only
// crc1 = CRC32(A), crc2 = CRC32(B) and len2 = len(B). The CRC register
// update is linear over GF(2), so appending len2 bytes to A is the
// matrix operator "advance one zero byte" raised to the len2-th power
// applied to crc1, XORed with crc2 — O(log len2) regardless of payload
// size, which is what lets the pipeline digest each chunk on its own
// worker and stitch the stream CRC afterwards instead of paying a
// serial pass over the input.
func CRC32Combine(crc1, crc2 uint32, len2 int) uint32 {
	if len2 <= 0 {
		return crc1
	}
	return MakeCRC32Zeros(len2).Combine(crc1, crc2)
}

// xxHash32 prime constants (xxHash specification).
const (
	xxPrime1 = 2654435761
	xxPrime2 = 2246822519
	xxPrime3 = 3266489917
	xxPrime4 = 668265263
	xxPrime5 = 374761393
)

func rol32(x uint32, r uint) uint32 { return x<<r | x>>(32-r) }

func xxRound(acc, input uint32) uint32 {
	acc += input * xxPrime2
	acc = rol32(acc, 13)
	return acc * xxPrime1
}

func le32(p []byte) uint32 {
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// XXH32 computes the 32-bit xxHash of p with the given seed, per the
// canonical xxHash specification. The LZ4 frame format uses seed 0.
func XXH32(p []byte, seed uint32) uint32 {
	n := len(p)
	var h uint32
	if n >= 16 {
		v1 := seed + xxPrime1 + xxPrime2
		v2 := seed + xxPrime2
		v3 := seed
		v4 := seed - xxPrime1
		for len(p) >= 16 {
			v1 = xxRound(v1, le32(p))
			v2 = xxRound(v2, le32(p[4:]))
			v3 = xxRound(v3, le32(p[8:]))
			v4 = xxRound(v4, le32(p[12:]))
			p = p[16:]
		}
		h = rol32(v1, 1) + rol32(v2, 7) + rol32(v3, 12) + rol32(v4, 18)
	} else {
		h = seed + xxPrime5
	}
	h += uint32(n)
	for len(p) >= 4 {
		h += le32(p) * xxPrime3
		h = rol32(h, 17) * xxPrime4
		p = p[4:]
	}
	for _, b := range p {
		h += uint32(b) * xxPrime5
		h = rol32(h, 11) * xxPrime1
	}
	h ^= h >> 15
	h *= xxPrime2
	h ^= h >> 13
	h *= xxPrime3
	h ^= h >> 16
	return h
}
