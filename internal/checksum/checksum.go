// Package checksum implements the checksums required by the compression
// container formats PEDAL produces: Adler-32 (zlib, RFC 1950), CRC-32
// (IEEE 802.3 polynomial, gzip-compatible), and the 32-bit xxHash used by
// the LZ4 frame format. All are implemented from scratch on top of the
// format specifications so the library has no dependency on hash/*.
package checksum

// adlerMod is the largest prime smaller than 65536 (RFC 1950 §8.2).
const adlerMod = 65521

// Adler32 is a running Adler-32 checksum. The zero value is NOT valid;
// use NewAdler32.
type Adler32 struct {
	a, b uint32
}

// NewAdler32 returns a checksum initialised to the RFC 1950 starting value.
func NewAdler32() *Adler32 { return &Adler32{a: 1} }

// Write absorbs p into the checksum.
func (h *Adler32) Write(p []byte) {
	a, b := h.a, h.b
	for len(p) > 0 {
		// Largest n such that 255*n*(n+1)/2 + (n+1)*(adlerMod-1) fits in
		// uint32; the classical value is 5552.
		n := len(p)
		if n > 5552 {
			n = 5552
		}
		for _, c := range p[:n] {
			a += uint32(c)
			b += a
		}
		a %= adlerMod
		b %= adlerMod
		p = p[n:]
	}
	h.a, h.b = a, b
}

// Sum32 returns the current checksum value.
func (h *Adler32) Sum32() uint32 { return h.b<<16 | h.a }

// Adler32Sum is a convenience one-shot Adler-32 over p.
func Adler32Sum(p []byte) uint32 {
	h := NewAdler32()
	h.Write(p)
	return h.Sum32()
}

// crcTable is the byte-at-a-time lookup table for the reflected IEEE
// polynomial 0xEDB88320.
var crcTable = func() [256]uint32 {
	var t [256]uint32
	for i := range t {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		t[i] = c
	}
	return t
}()

// CRC32Update continues a CRC-32 (IEEE) over p from a previous value.
// Start with crc = 0.
func CRC32Update(crc uint32, p []byte) uint32 {
	c := crc ^ 0xFFFFFFFF
	for _, b := range p {
		c = crcTable[byte(c)^b] ^ (c >> 8)
	}
	return c ^ 0xFFFFFFFF
}

// CRC32 is a one-shot CRC-32 (IEEE) over p.
func CRC32(p []byte) uint32 { return CRC32Update(0, p) }

// xxHash32 prime constants (xxHash specification).
const (
	xxPrime1 = 2654435761
	xxPrime2 = 2246822519
	xxPrime3 = 3266489917
	xxPrime4 = 668265263
	xxPrime5 = 374761393
)

func rol32(x uint32, r uint) uint32 { return x<<r | x>>(32-r) }

func xxRound(acc, input uint32) uint32 {
	acc += input * xxPrime2
	acc = rol32(acc, 13)
	return acc * xxPrime1
}

func le32(p []byte) uint32 {
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// XXH32 computes the 32-bit xxHash of p with the given seed, per the
// canonical xxHash specification. The LZ4 frame format uses seed 0.
func XXH32(p []byte, seed uint32) uint32 {
	n := len(p)
	var h uint32
	if n >= 16 {
		v1 := seed + xxPrime1 + xxPrime2
		v2 := seed + xxPrime2
		v3 := seed
		v4 := seed - xxPrime1
		for len(p) >= 16 {
			v1 = xxRound(v1, le32(p))
			v2 = xxRound(v2, le32(p[4:]))
			v3 = xxRound(v3, le32(p[8:]))
			v4 = xxRound(v4, le32(p[12:]))
			p = p[16:]
		}
		h = rol32(v1, 1) + rol32(v2, 7) + rol32(v3, 12) + rol32(v4, 18)
	} else {
		h = seed + xxPrime5
	}
	h += uint32(n)
	for len(p) >= 4 {
		h += le32(p) * xxPrime3
		h = rol32(h, 17) * xxPrime4
		p = p[4:]
	}
	for _, b := range p {
		h += uint32(b) * xxPrime5
		h = rol32(h, 11) * xxPrime1
	}
	h ^= h >> 15
	h *= xxPrime2
	h ^= h >> 13
	h *= xxPrime3
	h ^= h >> 16
	return h
}
