package checksum

import "io"

// CRC32Writer is an io.Writer that forwards every byte to an underlying
// writer while folding it into a running CRC-32 (IEEE). It lets callers
// digest a stream *during* the write — a checkpoint shard hashes while
// it lands on disk — instead of re-reading the bytes in a second pass.
//
// A nil underlying writer is allowed and turns the type into a pure
// streaming digest (the incremental counterpart of the one-shot CRC32).
type CRC32Writer struct {
	w   io.Writer
	crc uint32
	n   int64
}

// NewCRC32Writer returns a digest writer teeing into w (nil w digests
// without forwarding).
func NewCRC32Writer(w io.Writer) *CRC32Writer { return &CRC32Writer{w: w} }

// Write forwards p to the underlying writer and absorbs the bytes that
// were actually written into the digest, so a short write never leaves
// the digest ahead of the stream.
func (c *CRC32Writer) Write(p []byte) (int, error) {
	n := len(p)
	var err error
	if c.w != nil {
		n, err = c.w.Write(p)
		if n < 0 {
			n = 0
		}
	}
	c.crc = CRC32Update(c.crc, p[:n])
	c.n += int64(n)
	return n, err
}

// Sum32 returns the CRC-32 of everything written so far.
func (c *CRC32Writer) Sum32() uint32 { return c.crc }

// N reports how many bytes have been digested.
func (c *CRC32Writer) N() int64 { return c.n }

// Reset rewinds the digest (and byte count) to the initial state; the
// underlying writer is kept.
func (c *CRC32Writer) Reset() { c.crc, c.n = 0, 0 }
