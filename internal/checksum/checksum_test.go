package checksum

import (
	"hash/adler32"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdler32KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
	}{
		{"", 0x00000001},
		{"a", 0x00620062},
		{"abc", 0x024d0127},
		{"Wikipedia", 0x11E60398},
	}
	for _, c := range cases {
		if got := Adler32Sum([]byte(c.in)); got != c.want {
			t.Errorf("Adler32(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestAdler32MatchesStdlib(t *testing.T) {
	f := func(p []byte) bool {
		return Adler32Sum(p) == adler32.Checksum(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAdler32Incremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 100000)
	rng.Read(data)
	h := NewAdler32()
	for off := 0; off < len(data); {
		n := rng.Intn(7000) + 1
		if off+n > len(data) {
			n = len(data) - off
		}
		h.Write(data[off : off+n])
		off += n
	}
	if h.Sum32() != adler32.Checksum(data) {
		t.Fatal("incremental Adler-32 mismatch")
	}
}

func TestCRC32KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
	}{
		{"", 0x00000000},
		{"123456789", 0xCBF43926},
		{"The quick brown fox jumps over the lazy dog", 0x414FA339},
	}
	for _, c := range cases {
		if got := CRC32([]byte(c.in)); got != c.want {
			t.Errorf("CRC32(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	f := func(p []byte) bool {
		return CRC32(p) == crc32.ChecksumIEEE(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCRC32UpdateComposes(t *testing.T) {
	data := []byte("hello, bluefield dpu world")
	split := 11
	c := CRC32Update(CRC32Update(0, data[:split]), data[split:])
	if c != CRC32(data) {
		t.Fatal("CRC32Update does not compose")
	}
}

// TestCRC32SlicingMatchesBytewise pins the slicing-by-8 bulk loop
// against the definitional byte-at-a-time update on every length 0..257
// and at every alignment within an 8-byte word, including mid-stream
// continuations — the three ways a table-derivation bug could hide.
func TestCRC32SlicingMatchesBytewise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := make([]byte, 300)
	rng.Read(data)
	for n := 0; n <= 257; n++ {
		for off := 0; off < 8 && off+n <= len(data); off++ {
			p := data[off : off+n]
			if got, want := CRC32(p), crcUpdateBytewise(0, p); got != want {
				t.Fatalf("CRC32(len=%d off=%d) = %#x, bytewise %#x", n, off, got, want)
			}
			mid := CRC32Update(CRC32(data[:off]), p)
			if want := crcUpdateBytewise(crcUpdateBytewise(0, data[:off]), p); mid != want {
				t.Fatalf("CRC32Update(len=%d off=%d) = %#x, bytewise %#x", n, off, mid, want)
			}
		}
	}
}

// TestCRC32Combine pins the GF(2) operator composition: combining the
// independent CRCs of two segments must equal the CRC of their
// concatenation for every split of a random payload, so the pipeline
// can digest chunks in parallel and stitch the stream CRC afterwards.
func TestCRC32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	data := make([]byte, 1000)
	rng.Read(data)
	whole := CRC32(data)
	for split := 0; split <= len(data); split += 13 {
		a, b := data[:split], data[split:]
		if got := CRC32Combine(CRC32(a), CRC32(b), len(b)); got != whole {
			t.Fatalf("CRC32Combine(split=%d) = %#x, want %#x", split, got, whole)
		}
	}
	// Multi-way: fold a chunked payload left to right.
	const chunk = 96
	acc := CRC32(data[:chunk])
	for off := chunk; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		acc = CRC32Combine(acc, CRC32(data[off:end]), end-off)
	}
	if acc != whole {
		t.Fatalf("chunked CRC32Combine fold = %#x, want %#x", acc, whole)
	}
	if got := CRC32Combine(0xDEADBEEF, 0, 0); got != 0xDEADBEEF {
		t.Fatalf("CRC32Combine with empty tail = %#x, want identity", got)
	}
}

func TestXXH32KnownVectors(t *testing.T) {
	// Reference values from the canonical xxHash implementation.
	cases := []struct {
		in   string
		seed uint32
		want uint32
	}{
		{"", 0, 0x02CC5D05},
		{"", 1, 0x0B2CB792},
		{"a", 0, 0x550D7456},
		{"abc", 0, 0x32D153FF},
		{"Nobody inspects the spammish repetition", 0, 0xE2293B2F},
	}
	for _, c := range cases {
		if got := XXH32([]byte(c.in), c.seed); got != c.want {
			t.Errorf("XXH32(%q, %d) = %#x, want %#x", c.in, c.seed, got, c.want)
		}
	}
}

func TestXXH32LongInputStable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 1<<16)
	rng.Read(data)
	h1 := XXH32(data, 0)
	h2 := XXH32(data, 0)
	if h1 != h2 {
		t.Fatal("XXH32 not deterministic")
	}
	data[0] ^= 1
	if XXH32(data, 0) == h1 {
		t.Fatal("XXH32 did not change after input flip")
	}
}

func BenchmarkAdler32(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Adler32Sum(data)
	}
}

func BenchmarkCRC32(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		CRC32(data)
	}
}

func BenchmarkXXH32(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		XXH32(data, 0)
	}
}
