// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): per-experiment runners produce the same rows/series
// the paper reports, from the same workloads (synthetic dataset
// equivalents), through the full PEDAL stack. cmd/pedalbench prints
// them; the root bench_test.go wraps each in a testing.B benchmark;
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Options tunes experiment execution.
type Options struct {
	// Quick caps dataset sizes (2 MiB prefixes) and iteration counts so
	// the whole suite runs in seconds; the CLI defaults to full sizes.
	Quick bool
}

// capBytes returns the dataset prefix size limit.
func (o Options) capBytes() int {
	if o.Quick {
		return 2 << 20
	}
	return 1 << 62
}

func (o Options) iters() int {
	if o.Quick {
		return 1
	}
	return 3
}

// Table is one regenerated table or figure: rows of formatted cells plus
// machine-readable metrics for tests and EXPERIMENTS.md.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Metrics holds named scalar results (speedups, fractions) keyed by
	// a stable identifier; tests assert the paper's shapes on these.
	Metrics map[string]float64
}

// String renders the table as aligned text.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if len(t.Metrics) > 0 {
		keys := make([]string, 0, len(t.Metrics))
		for k := range t.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("-- metrics --\n")
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s = %.3f\n", k, t.Metrics[k])
		}
	}
	return sb.String()
}

// Runner executes one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Options) (Table, error)
}

// Runners lists every experiment in the paper's order.
func Runners() []Runner {
	return []Runner{
		{"table4", "Datasets (Table IV)", func(o Options) (Table, error) { return Table4(o), nil }},
		{"fig7a", "Lossless time distribution on BlueField-2 (Fig. 7a)", func(o Options) (Table, error) { return Fig7(o, false) }},
		{"fig7b", "Lossless time distribution on BlueField-3 (Fig. 7b)", func(o Options) (Table, error) { return Fig7(o, true) }},
		{"fig8", "Compression/decompression time, BF2 vs BF3 (Fig. 8)", Fig8},
		{"fig9", "Lossy (SZ3) time distribution (Fig. 9)", Fig9},
		{"table5a", "Lossless compression ratios (Table V-a)", Table5a},
		{"table5b", "Lossy compression ratios (Table V-b)", Table5b},
		{"fig10", "MPI point-to-point latency, lossless designs (Fig. 10a-e)", Fig10},
		{"fig10f", "MPI point-to-point latency, SZ3 (Fig. 10f)", Fig10f},
		{"fig11", "MPI broadcast with four nodes (Fig. 11)", Fig11},
		{"ext-deploy", "Extension: §VI deployment scenarios (host vs DPU offload)", ExtDeploy},
		{"ext-hybrid", "Extension: hybrid parallel SoC+C-Engine design (§V-C.2)", ExtHybrid},
		{"ext-ablation", "Extension: ablation of PEDAL optimisations", ExtAblation},
		{"ext-pipeline", "Extension: pipelined chunked compression–communication overlap", ExtPipeline},
		{"ext-faults", "Extension: availability under injected C-Engine faults", ExtFaults},
		{"ext-netfaults", "Extension: chaos soak — lossy fabric + overloaded daemon", ExtNetFaults},
		{"ext-enginefaults", "Extension: chaos soak — self-healing C-Engine fault domain", ExtEngineFaults},
		{"ext-rankfaults", "Extension: chaos soak — rank-failure tolerance in the MPI runtime", ExtRankFaults},
		{"ext-fleetfaults", "Extension: chaos soak — resilient sharded pedald fleet", ExtFleetFaults},
		{"ext-ckptfaults", "Extension: chaos soak — crash-consistent compressed checkpoint store", ExtCkptFaults},
		{"ext-sdcfaults", "Extension: chaos soak — silent-data-corruption detection and quarantine", ExtSDCFaults},
		{"ext-overloadfaults", "Extension: chaos soak — overload fault domain (budgets, deadlines, brownout)", ExtOverloadFaults},
	}
}

// ByID returns the runner with the given experiment id, or nil.
func ByID(id string) *Runner {
	for _, r := range Runners() {
		if r.ID == id {
			return &r
		}
	}
	return nil
}

// ms formats a duration in milliseconds with 3 significant decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

func mb(n int) string {
	return fmt.Sprintf("%.2f", float64(n)/(1<<20))
}
