package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"time"

	"pedal/internal/ckpt"
	"pedal/internal/core"
	"pedal/internal/datasets"
	"pedal/internal/faults"
	"pedal/internal/fleet"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

// ExtCkptFaults is the chaos soak for the storage fault domain:
// multi-rank checkpoint/restart cycles over a compressed ckpt.Store
// while a seeded schedule tears writes, rots bits, stalls I/O and kills
// the committer mid-commit. The headline properties: zero data errors
// (every restored shard byte-identical to the snapshot it checkpointed),
// zero untyped errors (every storage failure surfaces as a typed ckpt
// error), and restart-to-verified-state after every cycle — a crash at
// any point leaves the previous complete checkpoint or the new one,
// never a torn hybrid.
func ExtCkptFaults(o Options) (Table, error) {
	t := Table{
		ID: "ext-ckptfaults", Title: "Checkpoint/restart resilience under disk tear/rot/stall/crash",
		Columns: []string{"Scenario", "Ranks", "Cycles", "Commits", "Crashes", "Restores",
			"DataErr", "Untyped", "RotInj", "RotDet", "Repairs", "Condemned"},
		Metrics: map[string]float64{},
	}
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		return t, err
	}
	defer lib.Finalize()

	for _, sc := range ckptScenarios(o) {
		if err := runCkptScenario(lib, sc, &t); err != nil {
			return t, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
	}
	return t, nil
}

// ckptScenario is one storage soak configuration.
type ckptScenario struct {
	name     string
	ranks    int
	cycles   int
	replicas int
	seed     uint64
	// dirFS runs over a real on-disk DirFS instead of MemFS; remote
	// compresses shards through a fleet.Router over live pedald procs.
	dirFS  bool
	remote bool
	// Silent write-path fault probabilities (FaultFS schedule).
	pTear, pRot, pStall float64
	// flipPerCycle injects explicit bit rot into that many committed
	// shard copies after each successful commit (counted exactly, so the
	// test can assert 100% detection).
	flipPerCycle int
	// condemnOld destroys every replica of one shard in an old epoch
	// near the end, then scrubs: the epoch must be condemned, not
	// half-restored.
	condemnOld bool
	// crashEvery arms the mid-commit kill switch on every Nth cycle
	// (1-based); the kill op index is drawn from the seeded stream.
	crashEvery int
	// source enables the repair ladder's re-materialisation rung.
	source bool
}

func ckptScenarios(o Options) []ckptScenario {
	cycles := 8
	if o.Quick {
		cycles = 4
	}
	return []ckptScenario{
		{name: "clean", ranks: 4, cycles: cycles, replicas: 1, seed: 11, dirFS: true},
		{name: "torn-write", ranks: 4, cycles: cycles, replicas: 2, seed: 12, pTear: 0.15, source: true},
		{name: "bit-rot", ranks: 3, cycles: cycles, replicas: 2, seed: 13, flipPerCycle: 1, condemnOld: true},
		{name: "crash-commit", ranks: 3, cycles: cycles, replicas: 1, seed: 14, crashEvery: 2},
		{name: "disk-stall", ranks: 3, cycles: cycles, replicas: 1, seed: 15, pStall: 0.3},
		{name: "combined", ranks: 4, cycles: cycles + 2, replicas: 2, seed: 16,
			pTear: 0.08, pRot: 0.05, pStall: 0.1, crashEvery: 3, source: true},
		{name: "remote", ranks: 4, cycles: cycles, replicas: 1, seed: 17, remote: true},
	}
}

func runCkptScenario(lib *core.Library, sc ckptScenario, t *Table) error {
	elems := 8 * 1024
	snap := datasets.Snapshots{Seed: int64(sc.seed), Ranks: sc.ranks, Elems: elems}
	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}

	var comp ckpt.Compressor = &ckpt.LibraryCompressor{Lib: lib, Design: design, Type: core.TypeBytes}
	if sc.remote {
		// Checkpoint shards compress on live pedald instances behind the
		// fleet router — the storage and fleet fault domains composed.
		procs := make([]*fleetShardProc, 2)
		for i := range procs {
			procs[i] = &fleetShardProc{lib: lib}
			if err := procs[i].listen("127.0.0.1:0"); err != nil {
				return err
			}
		}
		defer func() {
			for _, p := range procs {
				p.crash()
			}
		}()
		router := fleet.NewRouter(fleet.Config{})
		defer router.Close()
		for i, p := range procs {
			router.AddShard(fmt.Sprintf("s%d", i), p.addr)
		}
		comp = &ckpt.RouterCompressor{Router: router, Design: design, Type: core.TypeBytes,
			Tenant: "ckpt", Class: fleet.Gold}
	}

	// One base FS holds the store across the whole scenario; crash
	// cycles wrap it in a fresh FaultFS ("process") and restart over the
	// underlying bytes, exactly like a killed and relaunched committer.
	var base ckpt.FS = ckpt.NewMemFS()
	if sc.dirFS {
		dir, err := os.MkdirTemp("", "pedal-ckpt-soak-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		dfs, err := ckpt.NewDirFS(dir)
		if err != nil {
			return err
		}
		base = dfs
	}

	bd := stats.NewBreakdown()
	cfg := ckpt.Config{
		Compressor: comp, Replicas: sc.replicas, Retain: sc.cycles + 1,
		Algo: uint8(design.Algo), ErrorBound: 0, Stats: bd,
	}
	source := func(epoch uint64, rank int) ([]byte, error) { return snap.Rank(epoch, rank), nil }

	// The scenario's steady write-path injector; crash cycles get their
	// own single-shot injector so the kill index is independent.
	steady := faults.NewDiskInjector(faults.DiskFaultConfig{
		Seed: sc.seed, PTear: sc.pTear, PRot: sc.pRot, PStall: sc.pStall, Stall: 200 * time.Microsecond,
	})
	rnd := faults.NewRand(sc.seed ^ 0xc0ffee)

	var (
		commits, crashes              int
		restoresOK, restoresAttempted int
		dataErrs, untyped             int
		rotInjected                   int
	)
	verify := func(cp *ckpt.Checkpoint) {
		want := snap.Epoch(cp.Epoch)
		if len(cp.Shards) != len(want) {
			dataErrs++
			return
		}
		for r := range want {
			if !bytes.Equal(cp.Shards[r], want[r]) {
				dataErrs++
			}
		}
	}

	for e := uint64(1); e <= uint64(sc.cycles); e++ {
		fs := ckpt.NewFaultFS(base, steady)
		crashing := sc.crashEvery > 0 && int(e)%sc.crashEvery == 0
		if crashing {
			k := int(rnd.Uint64()%20) + 1
			fs = ckpt.NewFaultFS(base, faults.NewDiskInjector(faults.DiskFaultConfig{
				Seed: sc.seed + e, CrashAfterOps: k,
			}))
		}
		st, err := ckpt.Open(fs, cfg)
		if err != nil {
			if ckpt.IsTyped(err) {
				crashes++
			} else {
				untyped++
			}
			continue
		}
		if sc.source {
			st.SetSource(source)
		}
		_, err = st.Commit(e, snap.Epoch(e))
		switch {
		case err == nil:
			commits++
		case errors.Is(err, ckpt.ErrCrashed):
			crashes++
		case ckpt.IsTyped(err):
			// Typed storage failure: the commit aborted cleanly.
		default:
			untyped++
		}

		// Explicit bit rot on committed data (counted exactly; read paths
		// are never fault-injected, so detection accounting is exact).
		if sc.flipPerCycle > 0 && err == nil {
			for i := 0; i < sc.flipPerCycle; i++ {
				rank := int(rnd.Uint64()) % sc.ranks
				copyN := uint8(rnd.Uint64()) % uint8(sc.replicas)
				p := ckpt.ShardPath(e, rank, copyN)
				if ferr := ckpt.FlipBit(base, p, rnd.Uint64()); ferr == nil {
					rotInjected++
				}
			}
		}

		// Restart: a fresh process opens the surviving bytes and must
		// reach a verified state every single cycle — once any commit has
		// ever succeeded (before that, ErrNoCheckpoint is the right
		// answer, not a restorable state).
		if commits == 0 {
			continue
		}
		st2, err := ckpt.Open(base, cfg)
		if err != nil {
			untyped++
			continue
		}
		if sc.source {
			st2.SetSource(source)
		}
		restoresAttempted++
		cp, rerr := st2.Restore()
		if rerr != nil {
			if !ckpt.IsTyped(rerr) {
				untyped++
			}
			continue
		}
		restoresOK++
		verify(cp)
	}

	// Scrub-and-condemn: destroy every replica of one shard of an old
	// epoch, then scrub. The epoch must be condemned (typed), the newest
	// checkpoint must survive, and a restore afterwards still verifies.
	condemned := 0
	if sc.condemnOld {
		epochs := []uint64{}
		st, err := ckpt.Open(base, cfg)
		if err != nil {
			return err
		}
		if epochs, err = st.Epochs(); err != nil {
			return err
		}
		if len(epochs) >= 2 {
			victim := epochs[0]
			for c := uint8(0); c < uint8(sc.replicas); c++ {
				if ferr := ckpt.FlipBit(base, ckpt.ShardPath(victim, 0, c), rnd.Uint64()); ferr == nil {
					rotInjected++
				}
			}
			rep, serr := st.Scrub()
			if serr != nil {
				return serr
			}
			for _, cerr := range rep.Condemned {
				if !errors.Is(cerr, ckpt.ErrEpochCondemned) {
					untyped++
				}
			}
			condemned = len(rep.Condemned)
			restoresAttempted++
			cp, rerr := st.Restore()
			if rerr != nil {
				if !ckpt.IsTyped(rerr) {
					untyped++
				}
			} else {
				restoresOK++
				verify(cp)
			}
		}
	}

	rotDet := int(bd.Count(stats.CounterCkptRotDetected))
	repairs := int(bd.Count(stats.CounterCkptRepairs))
	t.Rows = append(t.Rows, []string{
		sc.name, fmt.Sprint(sc.ranks), fmt.Sprint(sc.cycles), fmt.Sprint(commits),
		fmt.Sprint(crashes), fmt.Sprintf("%d/%d", restoresOK, restoresAttempted),
		fmt.Sprint(dataErrs), fmt.Sprint(untyped), fmt.Sprint(rotInjected),
		fmt.Sprint(rotDet), fmt.Sprint(repairs), fmt.Sprint(condemned),
	})
	key := func(s string) string { return "ckpt_" + sc.name + "_" + s }
	t.Metrics[key("cycles")] = float64(sc.cycles)
	t.Metrics[key("commits")] = float64(commits)
	t.Metrics[key("crashes")] = float64(crashes)
	t.Metrics[key("restores_ok")] = float64(restoresOK)
	t.Metrics[key("restores_attempted")] = float64(restoresAttempted)
	t.Metrics[key("data_errors")] = float64(dataErrs)
	t.Metrics[key("untyped_errors")] = float64(untyped)
	t.Metrics[key("rot_injected")] = float64(rotInjected)
	t.Metrics[key("rot_detected")] = float64(rotDet)
	t.Metrics[key("repairs")] = float64(repairs)
	t.Metrics[key("condemned")] = float64(condemned)
	t.Metrics[key("torn_manifests")] = float64(bd.Count(stats.CounterCkptTornManifests))
	ops, injected := steady.Counts()
	t.Metrics[key("fs_ops")] = float64(ops)
	t.Metrics[key("faults_injected")] = float64(injected)
	return nil
}
