package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"pedal/internal/core"
	"pedal/internal/dpu"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

// ExtEngineFaults soaks the self-healing engine fault domain: a
// stall/wedge/reset-fail scenario matrix over both the serial
// compress/decompress path and the chunked pipeline, on the BlueField-2
// DEFLATE C-Engine design with the stall watchdog armed at test-scale
// budgets. The headline properties: zero data errors in every scenario,
// every operation either succeeds (possibly via journaled SoC replay)
// or returns a typed error, the engine returns to live after every
// successful hot-reset, and exhausted resets degrade it permanently
// while traffic keeps flowing on the SoC.
func ExtEngineFaults(o Options) (Table, error) {
	t := Table{
		ID: "ext-enginefaults", Title: "Chaos soak: self-healing C-Engine fault domain (BF2, DEFLATE, watchdog armed)",
		Columns: []string{"Scenario", "Ops", "OK", "DataErr", "Stalls", "Wedges", "Resets", "RstFail", "Replayed", "Lost", "State", "Virtual(ms)"},
		Metrics: map[string]float64{},
	}
	serialOps, pipeOps := 160, 40
	if o.Quick {
		serialOps, pipeOps = 40, 10
	}
	scenarios := []struct {
		name string
		cfg  *faults.Config
	}{
		{"clean", nil},
		// Individual jobs vanish into the engine; the watchdog must fail
		// each one past its latency budget and the journal replays it on
		// the SoC.
		{"stall-3%", &faults.Config{Seed: 52, PStall: 0.03}},
		// The engine wedges outright a few times: consecutive overdue
		// jobs cross WedgeAfter, the watchdog hot-resets, and the engine
		// must come back live every time (resets always succeed here).
		{"wedge-burst", &faults.Config{Seed: 53, PWedge: 0.004, MaxInjections: 3}},
		// Everything at once: transient submit errors, stalled jobs and
		// wedges interleaved across serial and pipelined traffic.
		{"stall-wedge-mix", &faults.Config{Seed: 54, PTransient: 0.05, PStall: 0.02, PWedge: 0.003, MaxInjections: 12}},
		// Resets themselves are flaky: attempts fail half the time and
		// the watchdog must keep retrying within its bounded budget.
		{"reset-flaky", &faults.Config{Seed: 55, PWedge: 0.012, PResetFail: 0.4, MaxInjections: 2}},
		// Every reset attempt fails: after MaxResetAttempts the engine is
		// declared permanently degraded and all traffic runs SoC-only.
		{"reset-exhaust", &faults.Config{Seed: 56, PWedge: 0.05, PResetFail: 1.0, MaxInjections: 1}},
	}
	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}
	serialPayload := bytes.Repeat([]byte("pedal engine fault soak payload: compressible text / "), 78) // ≈4 KiB
	pipePayload := bytes.Repeat([]byte("pedal engine fault soak pipelined chunk payload text / "), 4800) // ≈256 KiB → 4 chunks
	for _, sc := range scenarios {
		var inj *faults.Injector
		if sc.cfg != nil {
			inj = faults.NewInjector(*sc.cfg)
		}
		lib, err := core.Init(core.Options{
			Generation:    hwmodel.BlueField2,
			FaultInjector: inj,
			Resilience: &core.ResilienceOptions{
				BreakerThreshold:  3,
				BreakerProbeEvery: 8,
				// Near-default watchdog budgets: tight enough to declare
				// injected stalls in tens of milliseconds, loose enough
				// that genuinely-executing jobs (including queue wait
				// behind sibling chunks, and the race detector's
				// slowdown) never misfire. Resets retry fast so the
				// soak's wall clock stays bounded.
				Watchdog: &dpu.WatchdogConfig{
					Interval:         time.Millisecond,
					BudgetFloor:      50 * time.Millisecond,
					BudgetSlack:      8,
					WedgeAfter:       3,
					MaxResetAttempts: 4,
					ResetBackoff:     500 * time.Microsecond,
				},
			},
		})
		if err != nil {
			return t, err
		}
		ops := serialOps + pipeOps
		dataErrs, opErrs := 0, 0
		for i := 0; i < serialOps; i++ {
			binary.LittleEndian.PutUint64(serialPayload[:8], uint64(i))
			msg, _, err := lib.Compress(design, core.TypeBytes, serialPayload)
			if err != nil {
				opErrs++
				continue
			}
			out, _, err := lib.Decompress(hwmodel.CEngine, core.TypeBytes, msg, len(serialPayload)+64)
			if err != nil {
				opErrs++
			} else if !bytes.Equal(out, serialPayload) {
				dataErrs++
			}
			lib.Release(msg)
		}
		for i := 0; i < pipeOps; i++ {
			binary.LittleEndian.PutUint64(pipePayload[:8], uint64(serialOps+i))
			msg, _, err := lib.CompressPipelined(design, core.TypeBytes, pipePayload)
			if err != nil {
				opErrs++
				continue
			}
			out, _, err := lib.DecompressPipelined(hwmodel.CEngine, msg, len(pipePayload)+64)
			if err != nil {
				opErrs++
			} else if !bytes.Equal(out, pipePayload) {
				dataErrs++
			}
			lib.Release(msg)
		}
		h := lib.EngineHealth()
		tb := lib.TotalBreakdown()
		t.Rows = append(t.Rows, []string{
			sc.name, fmt.Sprint(ops), fmt.Sprint(ops - opErrs - dataErrs), fmt.Sprint(dataErrs),
			fmt.Sprint(h.Stalls), fmt.Sprint(h.Wedges), fmt.Sprint(h.Resets),
			fmt.Sprint(h.ResetFailures), fmt.Sprint(tb.Count(stats.CounterJobsReplayed)),
			fmt.Sprint(h.LostJobs), h.State.String(),
			ms(tb.Get(stats.PhaseCompress) + tb.Get(stats.PhaseDecompress) + tb.Get(stats.PhaseRetry) + tb.Get(stats.PhaseReset)),
		})
		key := func(s string) string { return sc.name + "_" + s }
		t.Metrics[key("ops")] = float64(ops)
		t.Metrics[key("data_errors")] = float64(dataErrs)
		t.Metrics[key("op_errors")] = float64(opErrs)
		t.Metrics[key("stalls")] = float64(h.Stalls)
		t.Metrics[key("wedges")] = float64(h.Wedges)
		t.Metrics[key("resets")] = float64(h.Resets)
		t.Metrics[key("reset_failures")] = float64(h.ResetFailures)
		t.Metrics[key("lost_jobs")] = float64(h.LostJobs)
		t.Metrics[key("jobs_replayed")] = float64(tb.Count(stats.CounterJobsReplayed))
		t.Metrics[key("degraded_ops")] = float64(tb.Count(stats.CounterDegradedOps))
		t.Metrics[key("state_live")] = boolMetric(h.State == dpu.EngineLive)
		t.Metrics[key("state_degraded")] = boolMetric(h.State == dpu.EngineDegraded)
		t.Metrics[key("virtual_ms")] = float64(tb.Get(stats.PhaseCompress)+tb.Get(stats.PhaseDecompress)+tb.Get(stats.PhaseRetry)+tb.Get(stats.PhaseReset)) / 1e6
		lib.Finalize()
	}
	return t, nil
}

// boolMetric encodes a boolean assertion outcome as a 0/1 metric.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
