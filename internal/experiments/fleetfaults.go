package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/core"
	"pedal/internal/faults"
	"pedal/internal/fleet"
	"pedal/internal/hwmodel"
	"pedal/internal/service"
	"pedal/internal/stats"
)

// ExtFleetFaults is the chaos soak for the fleet fault domain: N real
// pedald instances on loopback behind a fleet.Router, driven by gold
// and best-effort clients while a deterministic schedule crashes,
// stalls, restarts, overloads and drains shards. The headline
// properties: zero data errors, every rejected request a typed shed
// (never a hang or silent loss), and no single-shard failure ever
// failing a gold-class idempotent request — failover, hedging or
// busy-retry completes it.
func ExtFleetFaults(o Options) (Table, error) {
	t := Table{
		ID: "ext-fleetfaults", Title: "Fleet resilience under shard crash/stall/restart/overload",
		Columns: []string{"Scenario", "Shards", "Ops", "OK", "DataErr", "Untyped", "GoldFail",
			"Sheds", "Quota", "Failover", "Hedge", "Eject", "Readmit", "Drain", "GoldMax(ms)"},
		Metrics: map[string]float64{},
	}
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		return t, err
	}
	defer lib.Finalize()

	for _, sc := range fleetScenarios(o) {
		if err := runFleetScenario(lib, sc, &t); err != nil {
			return t, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
	}
	return t, nil
}

// fleetScenario is one soak configuration.
type fleetScenario struct {
	name       string
	shards     int
	gold, be   int // client goroutines per class
	ops        int // operations per client
	beTenant   string
	serverConf func(*service.Server)
	routerCfg  fleet.Config
	schedule   []faults.ShardFault
	poll       time.Duration // health poll interval (0: no poll loop)
	// waitEject blocks after the main wave until the health plane has
	// ejected a shard (the data path may spill around a wedged shard so
	// fast — bounded load — that only the probes ever see it fail).
	// waitReadmit additionally waits for a readmission, then runs a
	// small second wave over the healed fleet. drainShard gracefully
	// drains one shard mid-run instead.
	waitEject   bool
	waitReadmit bool
	drainShard  bool
}

func fleetScenarios(o Options) []fleetScenario {
	ops := 20
	if o.Quick {
		ops = 8
	}
	return []fleetScenario{
		{
			name: "clean", shards: 4, gold: 2, be: 4, ops: ops, beTenant: "tenant-be",
			poll: 20 * time.Millisecond,
		},
		{
			name: "crash", shards: 5, gold: 3, be: 3, ops: ops + 5, beTenant: "tenant-be",
			schedule: []faults.ShardFault{
				{Shard: 1, Class: faults.ShardCrash, AfterOps: 12},
			},
			routerCfg: fleet.Config{EjectAfter: 2},
			poll:      15 * time.Millisecond,
		},
		{
			name: "stall", shards: 4, gold: 3, be: 1, ops: ops + 10, beTenant: "tenant-be",
			schedule: []faults.ShardFault{
				{Shard: 2, Class: faults.ShardStall, AfterOps: 25, Stall: 300 * time.Millisecond},
			},
			routerCfg: fleet.Config{
				// Adaptive hedging: warmed by the pre-stall ops, then the
				// stalled shard's requests trigger hedges that win.
				HedgeQuantile: 0.95, HedgeMinSamples: 8,
				HedgeMaxDelay: 50 * time.Millisecond,
				EjectAfter:    2, DegradeAfter: 150 * time.Millisecond,
				ProbeTimeout:   60 * time.Millisecond,
				RequestTimeout: 2 * time.Second,
			},
			poll:      15 * time.Millisecond,
			waitEject: true,
		},
		{
			name: "restart", shards: 4, gold: 2, be: 2, ops: ops + 5, beTenant: "tenant-be",
			schedule: []faults.ShardFault{
				{Shard: 0, Class: faults.ShardRestart, AfterOps: 10, Down: 400 * time.Millisecond},
			},
			routerCfg:   fleet.Config{EjectAfter: 2, ReadmitAfter: 2},
			poll:        15 * time.Millisecond,
			waitReadmit: true,
		},
		{
			name: "overload", shards: 2, gold: 2, be: 8, ops: ops / 2, beTenant: "besteffort",
			serverConf: func(s *service.Server) {
				s.MaxConcurrent = 1
				s.QueueDepth = 1
				s.RetryAfterHint = time.Millisecond
				s.ExecDelay = 2 * time.Millisecond
			},
			routerCfg: fleet.Config{
				// Keep keys pinned to their primary so saturation is real
				// shedding, not bounded-load spill.
				LoadFactor: -1, ShardCapacity: 3,
				TenantQuotas:    map[string]int{"besteffort": 2},
				GoldBusyRetries: 20,
			},
		},
		{
			name: "drain", shards: 4, gold: 2, be: 2, ops: ops + 5, beTenant: "tenant-be",
			poll: 20 * time.Millisecond, drainShard: true,
		},
	}
}

// fleetShardProc is one pedald instance under the harness: a real
// server on a real loopback listener, restartable on the same address.
type fleetShardProc struct {
	lib  *core.Library
	conf func(*service.Server)

	mu   sync.Mutex
	ln   net.Listener
	srv  *service.Server
	addr string
}

func (p *fleetShardProc) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := service.NewServer(p.lib)
	if p.conf != nil {
		p.conf(srv)
	}
	p.mu.Lock()
	p.ln, p.srv = ln, srv
	p.addr = ln.Addr().String()
	p.mu.Unlock()
	go srv.Serve(ln)
	return nil
}

func (p *fleetShardProc) server() *service.Server {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.srv
}

// crash kills the daemon abruptly: listener closed, connections cut.
func (p *fleetShardProc) crash() {
	if srv := p.server(); srv != nil {
		srv.Close()
	}
}

// restart crashes the daemon, waits out the outage, then rebinds the
// same address (retrying briefly — the kernel may lag releasing it).
func (p *fleetShardProc) restart(down time.Duration) {
	addr := func() string { p.mu.Lock(); defer p.mu.Unlock(); return p.addr }()
	p.crash()
	go func() {
		time.Sleep(down)
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := p.listen(addr); err == nil || time.Now().After(deadline) {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
}

func runFleetScenario(lib *core.Library, sc fleetScenario, t *Table) error {
	// Boot the shard fleet.
	procs := make([]*fleetShardProc, sc.shards)
	for i := range procs {
		procs[i] = &fleetShardProc{lib: lib, conf: sc.serverConf}
		if err := procs[i].listen("127.0.0.1:0"); err != nil {
			return err
		}
	}
	defer func() {
		for _, p := range procs {
			p.crash()
		}
	}()

	router := fleet.NewRouter(sc.routerCfg)
	defer router.Close()
	for i, p := range procs {
		router.AddShard(fmt.Sprintf("s%d", i), p.addr)
	}
	if sc.poll > 0 {
		router.Start(sc.poll)
	}

	var (
		completed  atomic.Int64 // fires the fault schedule
		okOps      atomic.Uint64
		dataErrs   atomic.Uint64
		typedSheds atomic.Uint64
		untyped    atomic.Uint64
		goldFails  atomic.Uint64
		goldMaxNs  atomic.Int64
	)
	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}

	// The fault schedule fires synchronously from the op loop the moment
	// the fleet's completed-op count crosses an entry's AfterOps, so the
	// injection point is deterministic relative to the workload no matter
	// how fast the ops run.
	var schedMu sync.Mutex
	schedIdx := 0
	fireFaults := func(done int64) {
		schedMu.Lock()
		defer schedMu.Unlock()
		for schedIdx < len(sc.schedule) && int64(sc.schedule[schedIdx].AfterOps) <= done {
			f := sc.schedule[schedIdx]
			schedIdx++
			p := procs[f.Shard]
			switch f.Class {
			case faults.ShardCrash:
				p.crash()
			case faults.ShardStall:
				if srv := p.server(); srv != nil {
					srv.SetExecDelay(f.Stall)
				}
			case faults.ShardRestart:
				p.restart(f.Down)
			}
		}
	}

	runOps := func(class fleet.Class, tenant, prefix string, n int) {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("%s/obj-%d", prefix, i)
			body := bytes.Repeat([]byte(key+" pedal fleet soak payload / "), 40)
			req := fleet.Request{Tenant: tenant, Key: key, Class: class, Idempotent: true}
			start := time.Now()
			msg, err := router.Compress(req, design, core.TypeBytes, body)
			var out []byte
			if err == nil {
				out, err = router.Decompress(req, hwmodel.SoC, core.TypeBytes, msg, len(body)+64)
			}
			el := time.Since(start)
			fireFaults(completed.Add(1))
			if class == fleet.Gold {
				for {
					cur := goldMaxNs.Load()
					if int64(el) <= cur || goldMaxNs.CompareAndSwap(cur, int64(el)) {
						break
					}
				}
			}
			switch {
			case err == nil && bytes.Equal(out, body):
				okOps.Add(1)
			case err == nil:
				dataErrs.Add(1)
			case errors.Is(err, service.ErrBusy):
				typedSheds.Add(1)
				if class == fleet.Gold {
					goldFails.Add(1)
				}
			default:
				untyped.Add(1)
				if class == fleet.Gold {
					goldFails.Add(1)
				}
			}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < sc.gold; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			runOps(fleet.Gold, "tenant-gold", fmt.Sprintf("g%d", g), sc.ops)
		}(g)
	}
	for b := 0; b < sc.be; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			runOps(fleet.BestEffort, sc.beTenant, fmt.Sprintf("b%d", b), sc.ops)
		}(b)
	}

	var drainErr error
	if sc.drainShard {
		// Let traffic establish, then gracefully drain one live shard
		// that currently owns traffic.
		for completed.Load() < 8 {
			time.Sleep(time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		victim := router.Primary("g0/obj-0")
		drainErr = router.Drain(ctx, victim)
		cancel()
		if drainErr == nil {
			// The daemon behind the drained shard can now shut down
			// without failing anything.
			idx := victimIndex(victim)
			if idx >= 0 && idx < len(procs) {
				sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
				if srv := procs[idx].server(); srv != nil {
					srv.Shutdown(sctx)
				}
				scancel()
			}
		}
	}
	wg.Wait()
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}

	rs := router.Stats()
	if sc.waitEject {
		deadline := time.Now().Add(8 * time.Second)
		for rs.Count(stats.CounterShardEjects) == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if sc.waitReadmit {
		// The restarted shard must come back: wait for the health plane
		// to readmit it, then prove it serves again with a second wave.
		deadline := time.Now().Add(8 * time.Second)
		for rs.Count(stats.CounterShardReadmits) == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		runOps(fleet.Gold, "tenant-gold", "postwave", 10)
	}

	totalOps := int64(sc.gold+sc.be) * int64(sc.ops)
	if sc.waitReadmit {
		totalOps += 10
	}
	sheds := rs.Count(stats.CounterFleetSheds)
	quota := rs.Count(stats.CounterQuotaSheds)
	goldMax := time.Duration(goldMaxNs.Load())
	t.Rows = append(t.Rows, []string{
		sc.name, fmt.Sprint(sc.shards), fmt.Sprint(totalOps), fmt.Sprint(okOps.Load()),
		fmt.Sprint(dataErrs.Load()), fmt.Sprint(untyped.Load()), fmt.Sprint(goldFails.Load()),
		fmt.Sprint(sheds), fmt.Sprint(quota),
		fmt.Sprint(rs.Count(stats.CounterFailovers)), fmt.Sprint(rs.Count(stats.CounterHedges)),
		fmt.Sprint(rs.Count(stats.CounterShardEjects)), fmt.Sprint(rs.Count(stats.CounterShardReadmits)),
		fmt.Sprint(rs.Count(stats.CounterShardDrains)), ms(goldMax),
	})
	key := func(s string) string { return "fleet_" + sc.name + "_" + s }
	t.Metrics[key("ops")] = float64(totalOps)
	t.Metrics[key("ok")] = float64(okOps.Load())
	t.Metrics[key("data_errors")] = float64(dataErrs.Load())
	t.Metrics[key("typed_sheds")] = float64(typedSheds.Load())
	t.Metrics[key("untyped_errors")] = float64(untyped.Load())
	t.Metrics[key("gold_failures")] = float64(goldFails.Load())
	t.Metrics[key("router_sheds")] = float64(sheds)
	t.Metrics[key("quota_sheds")] = float64(quota)
	t.Metrics[key("failovers")] = float64(rs.Count(stats.CounterFailovers))
	t.Metrics[key("hedges")] = float64(rs.Count(stats.CounterHedges))
	t.Metrics[key("hedge_wins")] = float64(rs.Count(stats.CounterHedgeWins))
	t.Metrics[key("ejects")] = float64(rs.Count(stats.CounterShardEjects))
	t.Metrics[key("readmits")] = float64(rs.Count(stats.CounterShardReadmits))
	t.Metrics[key("drains")] = float64(rs.Count(stats.CounterShardDrains))
	t.Metrics[key("gold_max_ms")] = float64(goldMax) / float64(time.Millisecond)
	return nil
}

// victimIndex recovers the proc index from a shard id ("s3" -> 3).
func victimIndex(id string) int {
	var i int
	if _, err := fmt.Sscanf(id, "s%d", &i); err != nil {
		return -1
	}
	return i
}
