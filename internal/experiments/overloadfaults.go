package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/core"
	"pedal/internal/dpu"
	"pedal/internal/faults"
	"pedal/internal/fleet"
	"pedal/internal/hwmodel"
	"pedal/internal/service"
	"pedal/internal/stats"
)

// ExtOverloadFaults is the chaos soak for the overload fault domain:
// a small pedald fleet with governed memory budgets and end-to-end
// deadlines, driven by mixed-tenant sustained load (gold traffic via
// the fleet router, best-effort host apps dialing a shard directly)
// while a deterministic schedule squeezes pool budgets, stalls
// consumers, and storms deadlines. The headline properties: zero data
// errors, every refusal typed (busy with a Retry-After hint, or a
// deadline error satisfying errors.Is dpu.ErrDeadline — never a hang,
// an untyped failure, or a silent loss), peak pool bytes bounded by
// the configured budget, and zero leaked buffers after drain.
func ExtOverloadFaults(o Options) (Table, error) {
	t := Table{
		ID: "ext-overloadfaults", Title: "Overload resilience under memory pressure, slow consumers, and deadline storms",
		Columns: []string{"Scenario", "Shards", "Ops", "OK", "DataErr", "Untyped", "Busy", "Deadline",
			"MemShed", "Brownout", "Abandoned", "PeakMiB", "Leaked"},
		Metrics: map[string]float64{},
	}
	for _, sc := range overloadScenarios(o) {
		if err := runOverloadScenario(sc, &t); err != nil {
			return t, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
	}
	return t, nil
}

// overloadScenario is one soak configuration. Each shard runs its own
// library so per-shard pool budgets can be squeezed independently.
type overloadScenario struct {
	name     string
	shards   int
	gold, be int // client goroutines per class
	ops      int // operations per client
	// budget is each shard library's steady-state pool budget;
	// defaultDeadline is each server's hint-free request ceiling.
	budget          int64
	defaultDeadline time.Duration
	serverConf      func(*service.Server)
	routerCfg       fleet.Config
	schedule        []faults.OverloadFault
	// directBE routes the best-effort clients straight at shard 0 as
	// flagged low-priority connections (the host-app deployment), so
	// the brownout ladder has something to shed first; otherwise they
	// go through the router like gold.
	directBE bool
	// Scenario-specific floor assertions, checked by the soak test via
	// the exported metrics.
	wantMemSheds  bool
	wantBrownouts bool
	wantDeadlines bool
}

// overloadPayloadBytes sizes the per-op payload (40 KiB, pool charge
// 64 KiB) so a squeezed MemPressure budget below that charge refuses
// every governed draw deterministically.
const overloadPayloadBytes = 40 << 10

func overloadScenarios(o Options) []overloadScenario {
	ops := 30
	if o.Quick {
		ops = 10
	}
	budget := int64(64 << 20)
	return []overloadScenario{
		{
			// Baseline: budgets and deadlines on, nobody squeezed — the
			// governance machinery must be invisible to healthy traffic.
			name: "mixed", shards: 3, gold: 2, be: 4, ops: ops,
			budget: budget, defaultDeadline: 5 * time.Second,
			routerCfg: fleet.Config{RequestBudget: 20 * time.Second},
		},
		{
			// One shard's pool budget collapses below a single request's
			// charge: every governed draw on it must refuse as a typed
			// busy shed while the rest of the fleet absorbs gold traffic.
			name: "mempressure", shards: 3, gold: 2, be: 4, ops: ops + 10,
			budget: budget, defaultDeadline: 5 * time.Second,
			routerCfg: fleet.Config{RequestBudget: 20 * time.Second, GoldBusyRetries: 10},
			schedule: []faults.OverloadFault{
				{Shard: 0, Class: faults.MemPressure, AfterOps: 15, Ops: 60, Budget: 48 << 10},
			},
			directBE:     true,
			wantMemSheds: true,
		},
		{
			// A slow consumer wedges the only execution slot; queue
			// occupancy must walk the brownout ladder and shed the
			// flagged best-effort connections first.
			name: "slowconsumer", shards: 2, gold: 2, be: 6, ops: ops,
			budget: budget, defaultDeadline: 5 * time.Second,
			serverConf: func(s *service.Server) {
				s.MaxConcurrent = 1
				s.QueueDepth = 2
				s.RetryAfterHint = 500 * time.Microsecond
			},
			routerCfg: fleet.Config{RequestBudget: 20 * time.Second, GoldBusyRetries: 20},
			schedule: []faults.OverloadFault{
				{Shard: 0, Class: faults.SlowConsumer, AfterOps: 10, Ops: 80, Stall: 3 * time.Millisecond},
			},
			directBE:      true,
			wantBrownouts: true,
		},
		{
			// A deadline storm: the victim's ceiling collapses to 1µs, so
			// nearly every request on it must be abandoned at a checkpoint
			// with the typed deadline error — and release its buffers.
			name: "deadlinestorm", shards: 2, gold: 2, be: 4, ops: ops + 10,
			budget: budget, defaultDeadline: 5 * time.Second,
			routerCfg: fleet.Config{RequestBudget: 20 * time.Second},
			schedule: []faults.OverloadFault{
				{Shard: 0, Class: faults.DeadlineStorm, AfterOps: 10, Ops: 60, Deadline: time.Microsecond},
			},
			directBE:      true,
			wantDeadlines: true,
		},
	}
}

// overloadRestore is a scheduled end-of-episode action.
type overloadRestore struct {
	at int64
	fn func()
}

func runOverloadScenario(sc overloadScenario, t *Table) error {
	// Boot the fleet: one library per shard so pool budgets are
	// per-shard resources, like device memory on separate DPUs.
	libs := make([]*core.Library, sc.shards)
	procs := make([]*fleetShardProc, sc.shards)
	for i := range procs {
		lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2, MemBudget: sc.budget})
		if err != nil {
			return err
		}
		libs[i] = lib
		procs[i] = &fleetShardProc{lib: lib, conf: func(s *service.Server) {
			s.DefaultDeadline = sc.defaultDeadline
			if sc.serverConf != nil {
				sc.serverConf(s)
			}
		}}
		if err := procs[i].listen("127.0.0.1:0"); err != nil {
			return err
		}
	}
	defer func() {
		for _, p := range procs {
			p.crash()
		}
		for _, lib := range libs {
			lib.Finalize()
		}
	}()

	cfg := sc.routerCfg
	cfg.Dial = func(addr string, timeout time.Duration) (fleet.Backend, error) {
		cl, err := service.DialTimeout(addr, timeout)
		if err != nil {
			return nil, err
		}
		cl.Timeout = timeout
		cl.DeadlineHints = true
		return cl, nil
	}
	router := fleet.NewRouter(cfg)
	defer router.Close()
	for i, p := range procs {
		router.AddShard(fmt.Sprintf("s%d", i), p.addr)
	}

	var (
		completed      atomic.Int64
		okOps          atomic.Uint64
		dataErrs       atomic.Uint64
		typedBusy      atomic.Uint64
		typedDeadlines atomic.Uint64
		untyped        atomic.Uint64
	)
	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}

	// The fault schedule fires synchronously from the op loop (see
	// runFleetScenario); overload episodes additionally schedule their
	// own restore a fixed op count later, so squeeze and recovery are
	// both deterministic relative to the workload.
	var schedMu sync.Mutex
	schedIdx := 0
	var restores []overloadRestore
	fireFaults := func(done int64) {
		schedMu.Lock()
		defer schedMu.Unlock()
		for i := 0; i < len(restores); {
			if restores[i].at <= done {
				restores[i].fn()
				restores = append(restores[:i], restores[i+1:]...)
				continue
			}
			i++
		}
		for schedIdx < len(sc.schedule) && int64(sc.schedule[schedIdx].AfterOps) <= done {
			f := sc.schedule[schedIdx]
			schedIdx++
			lib, srv := libs[f.Shard], procs[f.Shard].server()
			until := int64(f.AfterOps + f.Ops)
			switch f.Class {
			case faults.MemPressure:
				orig := lib.Pool().Budget()
				lib.Pool().SetBudget(f.Budget)
				restores = append(restores, overloadRestore{at: until, fn: func() { lib.Pool().SetBudget(orig) }})
			case faults.SlowConsumer:
				if srv != nil {
					srv.SetExecDelay(f.Stall)
					restores = append(restores, overloadRestore{at: until, fn: func() { srv.SetExecDelay(0) }})
				}
			case faults.DeadlineStorm:
				if srv != nil {
					srv.SetDefaultDeadline(f.Deadline)
					restores = append(restores, overloadRestore{at: until, fn: func() { srv.SetDefaultDeadline(sc.defaultDeadline) }})
				}
			}
		}
	}

	classifyOutcome := func(err error, out, body []byte) {
		switch {
		case err == nil && bytes.Equal(out, body):
			okOps.Add(1)
		case err == nil:
			dataErrs.Add(1)
		case errors.Is(err, dpu.ErrDeadline):
			typedDeadlines.Add(1)
		case errors.Is(err, service.ErrBusy):
			typedBusy.Add(1)
		default:
			untyped.Add(1)
		}
	}

	payload := func(key string) []byte {
		unit := []byte(key + " pedal overload soak / ")
		return bytes.Repeat(unit, overloadPayloadBytes/len(unit)+1)[:overloadPayloadBytes]
	}

	routedOps := func(class fleet.Class, tenant, prefix string, n int) {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("%s/obj-%d", prefix, i)
			body := payload(key)
			req := fleet.Request{Tenant: tenant, Key: key, Class: class, Idempotent: true}
			msg, err := router.Compress(req, design, core.TypeBytes, body)
			var out []byte
			if err == nil {
				out, err = router.Decompress(req, hwmodel.SoC, core.TypeBytes, msg, len(body)+64)
			}
			fireFaults(completed.Add(1))
			classifyOutcome(err, out, body)
		}
	}

	// directOps is the host-app deployment: a low-priority client pinned
	// to one daemon, carrying deadline hints, retrying busy sheds under
	// its own call budget.
	directOps := func(addr, prefix string, n int) {
		cl, err := service.Dial(addr)
		if err != nil {
			untyped.Add(uint64(n))
			return
		}
		defer cl.Close()
		cl.Timeout = 2 * time.Second
		cl.DeadlineHints = true
		cl.BestEffort = true
		cl.Retry = &service.RetryPolicy{Budget: 3}
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("%s/obj-%d", prefix, i)
			body := payload(key)
			msg, err := cl.Compress(design, core.TypeBytes, body)
			var out []byte
			if err == nil {
				out, err = cl.Decompress(hwmodel.SoC, core.TypeBytes, msg, len(body)+64)
			}
			fireFaults(completed.Add(1))
			classifyOutcome(err, out, body)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < sc.gold; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			routedOps(fleet.Gold, "tenant-gold", fmt.Sprintf("g%d", g), sc.ops)
		}(g)
	}
	for b := 0; b < sc.be; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			if sc.directBE {
				directOps(procs[0].addr, fmt.Sprintf("b%d", b), sc.ops)
			} else {
				routedOps(fleet.BestEffort, "tenant-be", fmt.Sprintf("b%d", b), sc.ops)
			}
		}(b)
	}
	wg.Wait()

	// Drain accounting: after the load stops, every pooled buffer must
	// come home and the peak must never have pierced the steady budget.
	var leaked int64
	var peak int64
	var memSheds, brownouts, abandoned uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		leaked = 0
		for _, lib := range libs {
			leaked += lib.PoolOutstanding()
		}
		if leaked == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, lib := range libs {
		snap := lib.PoolSnapshot()
		if snap.PeakBytes > peak {
			peak = snap.PeakBytes
		}
		memSheds += snap.PressureRejects
		abandoned += lib.TotalBreakdown().Count(stats.CounterDeadlineAbandoned)
		if srv := procs[i].server(); srv != nil {
			sb := srv.Stats()
			memSheds += sb.Count(stats.CounterMemPressure)
			brownouts += sb.Count(stats.CounterBrownouts)
			abandoned += sb.Count(stats.CounterDeadlineAbandoned)
		}
	}

	totalOps := int64(sc.gold+sc.be) * int64(sc.ops)
	t.Rows = append(t.Rows, []string{
		sc.name, fmt.Sprint(sc.shards), fmt.Sprint(totalOps), fmt.Sprint(okOps.Load()),
		fmt.Sprint(dataErrs.Load()), fmt.Sprint(untyped.Load()),
		fmt.Sprint(typedBusy.Load()), fmt.Sprint(typedDeadlines.Load()),
		fmt.Sprint(memSheds), fmt.Sprint(brownouts), fmt.Sprint(abandoned),
		fmt.Sprintf("%.2f", float64(peak)/(1<<20)), fmt.Sprint(leaked),
	})
	key := func(s string) string { return "overload_" + sc.name + "_" + s }
	t.Metrics[key("ops")] = float64(totalOps)
	t.Metrics[key("ok")] = float64(okOps.Load())
	t.Metrics[key("data_errors")] = float64(dataErrs.Load())
	t.Metrics[key("untyped_errors")] = float64(untyped.Load())
	t.Metrics[key("typed_busy")] = float64(typedBusy.Load())
	t.Metrics[key("typed_deadlines")] = float64(typedDeadlines.Load())
	t.Metrics[key("mem_sheds")] = float64(memSheds)
	t.Metrics[key("brownouts")] = float64(brownouts)
	t.Metrics[key("deadline_abandoned")] = float64(abandoned)
	t.Metrics[key("peak_pool_bytes")] = float64(peak)
	t.Metrics[key("pool_budget")] = float64(sc.budget)
	t.Metrics[key("leaked_buffers")] = float64(leaked)
	return nil
}
