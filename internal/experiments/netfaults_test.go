package experiments

import "testing"

// TestExtNetFaultsSoak runs the chaos soak at full scale and asserts
// the PR's acceptance criteria: ≥1000 MPI operations and ≥500 service
// requests across every fault class and the overload/drain scenarios,
// with zero data errors, bounded retransmissions, every shed surfaced
// to a client as ErrBusy, and graceful shutdown completing all
// in-flight requests.
func TestExtNetFaultsSoak(t *testing.T) {
	tb, err := ExtNetFaults(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	m := tb.Metrics

	if got := m["total_mpi_ops"]; got < 1000 {
		t.Errorf("total MPI ops %v < 1000", got)
	}
	if got := m["total_service_requests"]; got < 500 {
		t.Errorf("total service requests %v < 500", got)
	}

	// Zero data errors and zero op errors in every MPI scenario, and
	// bounded retransmissions (a runaway retransmit loop shows up as
	// orders of magnitude more probes than operations).
	for _, sc := range []string{"clean", "drop-10%", "dup-12%", "reorder-15%", "corrupt-10%", "delay-25%", "mixed-storm"} {
		key := func(s string) string { return "mpi_" + sc + "_" + s }
		if got := m[key("data_errors")]; got != 0 {
			t.Errorf("%s: %v data errors", sc, got)
		}
		if got := m[key("op_errors")]; got != 0 {
			t.Errorf("%s: %v op errors", sc, got)
		}
		ops := m[key("ops")]
		if got := m[key("retransmits")]; got > 50*ops {
			t.Errorf("%s: unbounded retransmits: %v for %v ops", sc, got, ops)
		}
	}
	// The lossy classes must actually have exercised the recovery
	// machinery.
	if m["mpi_drop-10%_retransmits"] == 0 {
		t.Error("drop scenario produced no retransmits")
	}
	if m["mpi_corrupt-10%_crc_rejects"] == 0 {
		t.Error("corrupt scenario produced no CRC rejects")
	}

	// Overload: load was actually shed, every shed reached a client as
	// ErrBusy (no silent loss), and retried traffic stayed lossless.
	if m["svc_overload_sheds"] == 0 {
		t.Error("overload scenario shed nothing")
	}
	if m["svc_overload_sheds"] != m["svc_overload_busy_seen"] {
		t.Errorf("sheds %v != client-observed ErrBusy %v (silent loss)",
			m["svc_overload_sheds"], m["svc_overload_busy_seen"])
	}
	if m["svc_overload_data_errors"] != 0 || m["svc_overload_op_errors"] != 0 {
		t.Errorf("overload: %v data errors, %v op errors",
			m["svc_overload_data_errors"], m["svc_overload_op_errors"])
	}

	// Drain: shutdown returned cleanly, requests were genuinely in
	// flight when it began, and every one of them completed.
	if m["svc_drain_shutdown_err"] != 0 {
		t.Error("graceful shutdown did not complete within its deadline")
	}
	if m["svc_drain_drained"] == 0 {
		t.Error("no requests were in flight when the drain began")
	}
	if m["svc_drain_errors"] != 0 {
		t.Errorf("%v in-flight requests failed during drain", m["svc_drain_errors"])
	}
}
