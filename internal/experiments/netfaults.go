package experiments

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/core"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/mpi"
	"pedal/internal/service"
	"pedal/internal/stats"
	"pedal/internal/transport"
)

// ExtNetFaults is the chaos soak for the robustness layer: it drives
// the full MPI collective surface (point-to-point, Bcast, Reduce,
// Isend/Irecv) over a fabric injecting every network fault class, and
// the compression service through overload and graceful-drain
// scenarios. The headline properties: zero data errors everywhere,
// every shed request surfaced to its client as ErrBusy (never silent
// loss), and graceful shutdown completing every in-flight request.
func ExtNetFaults(o Options) (Table, error) {
	t := Table{
		ID: "ext-netfaults", Title: "Robustness under fabric faults and daemon overload",
		Columns: []string{"Scenario", "Kind", "Ops", "OK", "DataErr", "Retrans", "CrcRej", "DupDrop", "Reord", "Sheds", "Drained"},
		Metrics: map[string]float64{},
	}
	if err := netFaultsMPI(o, &t); err != nil {
		return t, err
	}
	if err := netFaultsService(o, &t); err != nil {
		return t, err
	}
	return t, nil
}

// netFaultsMPI soaks the MPI runtime over each fault class. Every rank
// performs 6 operations per round (pairwise exchange send+recv, Bcast,
// Reduce, Isend+Irecv ring), so 4 ranks × 10 rounds × 7 scenarios is
// 1680 operations in the full run.
func netFaultsMPI(o Options, t *Table) error {
	const ranks = 4
	rounds := 10
	if o.Quick {
		rounds = 4
	}
	scenarios := []struct {
		name string
		cfg  *faults.NetConfig
	}{
		{"clean", nil},
		{"drop-10%", &faults.NetConfig{Seed: 301, PDrop: 0.10}},
		{"dup-12%", &faults.NetConfig{Seed: 302, PDuplicate: 0.12}},
		{"reorder-15%", &faults.NetConfig{Seed: 303, PReorder: 0.15}},
		{"corrupt-10%", &faults.NetConfig{Seed: 304, PCorrupt: 0.10}},
		{"delay-25%", &faults.NetConfig{Seed: 305, PDelay: 0.25}},
		{"mixed-storm", &faults.NetConfig{Seed: 306, PDrop: 0.04, PDuplicate: 0.04, PReorder: 0.04, PCorrupt: 0.04, PDelay: 0.04}},
	}
	var totalOps float64
	for _, sc := range scenarios {
		opts := mpi.WorldOptions{
			RendezvousThreshold: 1 << 10,
			NetFaults:           sc.cfg,
			RelOptions: transport.ReliableOptions{
				RTO:    time.Millisecond,
				MaxRTO: 10 * time.Millisecond,
			},
		}
		if sc.cfg == nil {
			opts.Reliable = true // clean fabric still pays the sublayer
		}
		comms, err := mpi.NewWorld(ranks, opts)
		if err != nil {
			return err
		}
		var ok, dataErrs, opErrs atomic.Uint64
		var wg sync.WaitGroup
		for _, c := range comms {
			wg.Add(1)
			go func(c *mpi.Comm) {
				defer wg.Done()
				netSoakRank(c, rounds, &ok, &dataErrs, &opErrs)
			}(c)
		}
		wg.Wait()
		bd := stats.NewBreakdown()
		for _, c := range comms {
			bd.Merge(c.NetStats())
			c.Close()
		}
		ops := uint64(ranks * rounds * 6)
		totalOps += float64(ops)
		t.Rows = append(t.Rows, []string{
			sc.name, "mpi", fmt.Sprint(ops), fmt.Sprint(ok.Load()), fmt.Sprint(dataErrs.Load()),
			fmt.Sprint(bd.Count(stats.CounterRetransmits)), fmt.Sprint(bd.Count(stats.CounterNetCorrupt)),
			fmt.Sprint(bd.Count(stats.CounterNetDuplicates)), fmt.Sprint(bd.Count(stats.CounterNetReorders)),
			"-", "-",
		})
		key := func(s string) string { return "mpi_" + sc.name + "_" + s }
		t.Metrics[key("ops")] = float64(ops)
		t.Metrics[key("data_errors")] = float64(dataErrs.Load())
		t.Metrics[key("op_errors")] = float64(opErrs.Load())
		t.Metrics[key("retransmits")] = float64(bd.Count(stats.CounterRetransmits))
		t.Metrics[key("crc_rejects")] = float64(bd.Count(stats.CounterNetCorrupt))
	}
	t.Metrics["total_mpi_ops"] = totalOps
	return nil
}

// netSoakRank is one rank's soak loop.
func netSoakRank(c *mpi.Comm, rounds int, ok, dataErrs, opErrs *atomic.Uint64) {
	n := c.Size()
	payload := func(rank, round, size int) []byte {
		buf := make([]byte, size)
		binary.BigEndian.PutUint32(buf[0:4], uint32(rank))
		binary.BigEndian.PutUint32(buf[4:8], uint32(round))
		for i := 8; i < size; i++ {
			buf[i] = byte(rank*131 + round*31 + i)
		}
		return buf
	}
	check := func(got, want []byte, err error) {
		switch {
		case err != nil:
			opErrs.Add(1)
		case !bytes.Equal(got, want):
			dataErrs.Add(1)
		default:
			ok.Add(1)
		}
	}
	for round := 0; round < rounds; round++ {
		// Pairwise exchange, eager and rendezvous sizes on alternating
		// rounds; even ranks send first to keep blocking sends
		// deadlock-free.
		size := 512
		if round%2 == 1 {
			size = 2 << 10
		}
		partner := c.Rank() ^ 1
		tag := round*10 + 1
		exch := func() {
			if err := c.Send(partner, tag, payload(c.Rank(), round, size)); err != nil {
				opErrs.Add(1)
			} else {
				ok.Add(1)
			}
		}
		recv := func() {
			got, err := c.Recv(partner, tag, size+64)
			check(got, payload(partner, round, size), err)
		}
		if c.Rank()%2 == 0 {
			exch()
			recv()
		} else {
			recv()
			exch()
		}
		// Broadcast from a rotating root.
		root := round % n
		var bdata []byte
		if c.Rank() == root {
			bdata = payload(root, round, 2<<10)
		}
		got, err := c.Bcast(root, bdata)
		check(got, payload(root, round, 2<<10), err)
		// Reduce a float vector to rank 0.
		const elems = 256
		vec := make([]byte, elems*8)
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(vec[i*8:], math.Float64bits(float64(c.Rank()+1)*float64(i+round)))
		}
		red, err := c.Reduce(0, mpi.SumFloat64, vec)
		if err != nil {
			opErrs.Add(1)
		} else if c.Rank() == 0 {
			good := true
			for i := 0; i < elems; i++ {
				want := 10 * float64(i+round) // sum over ranks of (r+1)*(i+round), n=4
				if math.Float64frombits(binary.LittleEndian.Uint64(red[i*8:])) != want {
					good = false
					break
				}
			}
			if good {
				ok.Add(1)
			} else {
				dataErrs.Add(1)
			}
		} else {
			ok.Add(1)
		}
		// Nonblocking ring shift.
		right, left := (c.Rank()+1)%n, (c.Rank()-1+n)%n
		rtag := round*10 + 2
		rreq, err := c.Irecv(left, rtag, (2<<10)+64)
		if err != nil {
			opErrs.Add(1)
			continue
		}
		sreq, err := c.Isend(right, rtag, payload(c.Rank(), round, 2<<10))
		if err != nil {
			opErrs.Add(1)
			continue
		}
		rgot, rerr := rreq.Wait()
		if _, serr := sreq.Wait(); serr != nil {
			opErrs.Add(1)
		} else {
			ok.Add(1)
		}
		check(rgot, payload(left, round, 2<<10), rerr)
	}
}

// netFaultsService soaks the compression daemon: an overload storm
// against a single execution slot (sheds must surface as ErrBusy and
// retried requests must still round-trip losslessly), then a graceful
// drain with requests in flight.
func netFaultsService(o Options, t *Table) error {
	clients, trips := 12, 25
	if o.Quick {
		clients, trips = 6, 8
	}
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		return err
	}
	defer lib.Finalize()

	// --- overload ---
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := service.NewServer(lib)
	srv.MaxConcurrent = 1
	srv.QueueDepth = 1
	// Stall each admitted request ~1ms while holding the only slot:
	// this models a contended engine and guarantees the storm below
	// overruns the queue, even on a single-CPU host where CPU-bound
	// handlers would otherwise serialise with the clients.
	srv.ExecDelay = time.Millisecond
	go srv.Serve(ln)
	payload := bytes.Repeat([]byte("pedal service soak: compressible block of text / "), 640) // ≈31 KiB
	var busySeen, okOps, dataErrs, opErrs atomic.Uint64
	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := service.Dial(ln.Addr().String())
			if err != nil {
				opErrs.Add(1)
				return
			}
			defer cl.Close()
			body := append([]byte(nil), payload...)
			binary.LittleEndian.PutUint64(body[:8], uint64(g))
			retry := func(f func() ([]byte, error)) ([]byte, error) {
				for {
					out, err := f()
					if errors.Is(err, service.ErrBusy) {
						busySeen.Add(1)
						time.Sleep(200 * time.Microsecond)
						continue
					}
					return out, err
				}
			}
			for i := 0; i < trips; i++ {
				msg, err := retry(func() ([]byte, error) {
					return cl.Compress(design, core.TypeBytes, body)
				})
				if err != nil {
					opErrs.Add(1)
					continue
				}
				out, err := retry(func() ([]byte, error) {
					return cl.Decompress(hwmodel.SoC, core.TypeBytes, msg, len(body)+64)
				})
				switch {
				case err != nil:
					opErrs.Add(1)
				case !bytes.Equal(out, body):
					dataErrs.Add(1)
				default:
					okOps.Add(2) // compress + decompress both served
				}
			}
		}(g)
	}
	wg.Wait()
	sheds := srv.Stats().Count(stats.CounterSheds)
	served := srv.Stats().Count(stats.CounterRequests)
	srv.Close()
	t.Rows = append(t.Rows, []string{
		"overload", "svc", fmt.Sprint(served), fmt.Sprint(okOps.Load()), fmt.Sprint(dataErrs.Load()),
		"-", "-", "-", "-", fmt.Sprint(sheds), "-",
	})
	t.Metrics["svc_overload_requests"] = float64(served)
	t.Metrics["svc_overload_sheds"] = float64(sheds)
	t.Metrics["svc_overload_busy_seen"] = float64(busySeen.Load())
	t.Metrics["svc_overload_data_errors"] = float64(dataErrs.Load())
	t.Metrics["svc_overload_op_errors"] = float64(opErrs.Load())

	// --- graceful drain ---
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv2 := service.NewServer(lib)
	srv2.MaxConcurrent = 8
	// Stall handlers long enough that Shutdown provably lands while
	// every request is still executing.
	srv2.ExecDelay = 500 * time.Millisecond
	go srv2.Serve(ln2)
	big := bytes.Repeat(payload, 8) // ≈250 KiB per request
	drainClients := 6
	results := make(chan error, drainClients)
	for g := 0; g < drainClients; g++ {
		go func(g int) {
			cl, err := service.Dial(ln2.Addr().String())
			if err != nil {
				results <- err
				return
			}
			defer cl.Close()
			body := append([]byte(nil), big...)
			binary.LittleEndian.PutUint64(body[:8], uint64(g))
			msg, err := cl.Compress(design, core.TypeBytes, body)
			if err != nil {
				results <- err
				return
			}
			if len(msg) == 0 {
				results <- errors.New("empty compressed message")
				return
			}
			results <- nil
		}(g)
	}
	// Give the handlers time to read the requests off loopback and
	// enter their (stalled) execution, then drain mid-flight.
	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := srv2.Shutdown(ctx)
	var drainErrs int
	for g := 0; g < drainClients; g++ {
		if err := <-results; err != nil {
			drainErrs++
		}
	}
	drained := srv2.Stats().Count(stats.CounterDrained)
	t.Rows = append(t.Rows, []string{
		"drain", "svc", fmt.Sprint(drainClients), fmt.Sprint(drainClients - drainErrs), "0",
		"-", "-", "-", "-", "0", fmt.Sprint(drained),
	})
	t.Metrics["svc_drain_requests"] = float64(drainClients)
	t.Metrics["svc_drain_errors"] = float64(drainErrs)
	t.Metrics["svc_drain_drained"] = float64(drained)
	if shutdownErr != nil {
		t.Metrics["svc_drain_shutdown_err"] = 1
	} else {
		t.Metrics["svc_drain_shutdown_err"] = 0
	}
	t.Metrics["total_service_requests"] = float64(served) + float64(drainClients)
	return nil
}
