package experiments

import "testing"

// TestExtFleetFaultsSoak runs the fleet chaos soak at full scale and
// asserts the PR's acceptance criteria: with ≥4 shards under crash,
// stall, restart, overload and drain schedules — zero data errors,
// every rejected request a typed shed (untyped errors are zero), and
// no gold-class idempotent request ever failing: a killed or wedged
// shard is absorbed by failover, hedging or busy-retry.
func TestExtFleetFaultsSoak(t *testing.T) {
	tb, err := ExtFleetFaults(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	m := tb.Metrics

	scenarios := []string{"clean", "crash", "stall", "restart", "overload", "drain"}
	for _, sc := range scenarios {
		key := func(s string) string { return "fleet_" + sc + "_" + s }
		if m[key("ops")] == 0 {
			t.Errorf("%s: no operations ran", sc)
		}
		if got := m[key("data_errors")]; got != 0 {
			t.Errorf("%s: %v data errors", sc, got)
		}
		if got := m[key("untyped_errors")]; got != 0 {
			t.Errorf("%s: %v untyped errors (every rejection must be a typed shed)", sc, got)
		}
		if got := m[key("gold_failures")]; got != 0 {
			t.Errorf("%s: %v gold-class failures (failover/hedge/retry must complete them)", sc, got)
		}
	}

	// Clean baseline: everything succeeds, nothing fires.
	if m["fleet_clean_ok"] != m["fleet_clean_ops"] {
		t.Errorf("clean: ok %v != ops %v", m["fleet_clean_ok"], m["fleet_clean_ops"])
	}
	for _, counter := range []string{"failovers", "ejects", "router_sheds", "quota_sheds"} {
		if got := m["fleet_clean_"+counter]; got != 0 {
			t.Errorf("clean: %s = %v, want 0", counter, got)
		}
	}

	// Crash: the dead shard was routed around and ejected.
	if m["fleet_crash_failovers"] == 0 {
		t.Error("crash: no failovers — the dead shard was never routed around")
	}
	if m["fleet_crash_ejects"] == 0 {
		t.Error("crash: the dead shard was never ejected")
	}

	// Stall: hedging fired against the wedged shard and the shard was
	// taken out of rotation (probe timeout or degraded-latency path).
	if m["fleet_stall_hedges"] == 0 {
		t.Error("stall: no hedges launched against the slow shard")
	}
	if m["fleet_stall_ejects"] == 0 {
		t.Error("stall: the wedged shard was never ejected")
	}
	// Gold tail latency stayed bounded: far below the 2s request
	// timeout and the 300ms stall plateau.
	if got := m["fleet_stall_gold_max_ms"]; got >= 2000 {
		t.Errorf("stall: gold max latency %vms reached the timeout ceiling", got)
	}

	// Restart: ejected while dark, readmitted by half-open probes, and
	// the healed fleet served a second wave.
	if m["fleet_restart_ejects"] == 0 {
		t.Error("restart: shard never ejected during the outage")
	}
	if m["fleet_restart_readmits"] == 0 {
		t.Error("restart: shard never readmitted after recovery")
	}

	// Overload: load was genuinely shed, best-effort first — quota and
	// router sheds fired, and every gold request still completed (the
	// per-scenario gold_failures check above covers the latter).
	if m["fleet_overload_typed_sheds"] == 0 {
		t.Error("overload: nothing was shed under 10x oversubscription")
	}
	if m["fleet_overload_quota_sheds"] == 0 {
		t.Error("overload: tenant quota never fired")
	}

	// Drain: exactly one graceful drain, zero errors around it.
	if got := m["fleet_drain_drains"]; got != 1 {
		t.Errorf("drain: %v drains recorded, want 1", got)
	}
	if m["fleet_drain_ok"] != m["fleet_drain_ops"] {
		t.Errorf("drain: ok %v != ops %v — the migration dropped requests",
			m["fleet_drain_ok"], m["fleet_drain_ops"])
	}
}
