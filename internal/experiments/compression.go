package experiments

import (
	"fmt"
	"time"

	"pedal/internal/core"
	"pedal/internal/datasets"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

// Table4 reproduces the dataset inventory of Table IV.
func Table4(_ Options) Table {
	t := Table{
		ID:      "table4",
		Title:   "Eight datasets with various sizes and features",
		Columns: []string{"Design", "Dataset", "Description", "Size (MB)"},
	}
	for _, d := range datasets.All() {
		kind := "Lossless"
		if d.Lossy {
			kind = "Lossy"
		}
		t.Rows = append(t.Rows, []string{kind, d.Name, d.Description, mb(d.Size)})
	}
	return t
}

// datasetBytes returns the (possibly capped) dataset content.
func datasetBytes(d *datasets.Dataset, o Options) []byte {
	b := d.Bytes()
	if len(b) > o.capBytes() {
		b = b[:o.capBytes()]
	}
	return b
}

// losslessAlgos are the lossless designs' algorithms in Fig. 7/8 order.
var losslessAlgos = []core.AlgoID{core.AlgoDeflate, core.AlgoLZ4, core.AlgoZlib}

// Fig7 reproduces the time-distribution figure: the whole un-hoisted
// execution (DOCA init, buffer prep, compression, decompression) for
// every lossless design on the SoC and C-Engine, across the five
// lossless datasets. bf3 selects Fig. 7b.
func Fig7(o Options, bf3 bool) (Table, error) {
	gen := hwmodel.BlueField2
	id, title := "fig7a", "Time distribution for lossless designs on BlueField-2"
	if bf3 {
		gen = hwmodel.BlueField3
		id, title = "fig7b", "Time distribution for lossless designs on BlueField-3"
	}
	t := Table{
		ID: id, Title: title,
		Columns: []string{"Design", "Engine", "Dataset", "DOCA_Init(ms)", "BufPrep(ms)", "Compress(ms)", "Decompress(ms)", "Total(ms)", "Init+Prep%"},
		Metrics: map[string]float64{},
	}
	// The figure characterises the *baseline* execution: init and buffer
	// preparation recur per run (PEDAL's win is removing them; §V-C).
	lib, err := core.Init(core.Options{Generation: gen, Baseline: true})
	if err != nil {
		return t, err
	}
	defer lib.Finalize()

	var socTotal, ceTotal time.Duration
	for _, engine := range []hwmodel.Engine{hwmodel.SoC, hwmodel.CEngine} {
		for _, algo := range losslessAlgos {
			for _, ds := range datasets.Lossless() {
				data := datasetBytes(ds, o)
				d := core.Design{Algo: algo, Engine: engine}
				msg, crep, err := lib.Compress(d, core.TypeBytes, data)
				if err != nil {
					return t, fmt.Errorf("%s %s: %w", d, ds.Name, err)
				}
				_, drep, err := lib.Decompress(engine, core.TypeBytes, msg, len(data)+64)
				if err != nil {
					return t, fmt.Errorf("%s %s decompress: %w", d, ds.Name, err)
				}
				lib.Release(msg)
				get := func(rep core.Report, p stats.Phase) time.Duration { return rep.Phases[p] }
				init := get(crep, stats.PhaseDOCAInit) + get(drep, stats.PhaseDOCAInit)
				prep := get(crep, stats.PhaseBufPrep) + get(drep, stats.PhaseBufPrep)
				comp := get(crep, stats.PhaseCompress) + get(drep, stats.PhaseCompress)
				dec := get(crep, stats.PhaseDecompress) + get(drep, stats.PhaseDecompress)
				total := init + prep + comp + dec
				frac := float64(init+prep) / float64(total)
				t.Rows = append(t.Rows, []string{
					d.Algo.String(), engine.String(), ds.Name,
					ms(init), ms(prep), ms(comp), ms(dec), ms(total),
					fmt.Sprintf("%.1f", frac*100),
				})
				if engine == hwmodel.SoC {
					socTotal += total
				} else {
					ceTotal += total
				}
				if engine == hwmodel.CEngine && algo == core.AlgoDeflate && ds.Name == "silesia/xml" {
					t.Metrics["xml_deflate_cengine_initprep_frac"] = frac
				}
			}
		}
	}
	t.Metrics["soc_over_cengine_total"] = float64(socTotal) / float64(ceTotal)
	return t, nil
}

// Fig8 reproduces the raw compression/decompression time comparison:
// PEDAL (hoisted) per-operation times for every lossless design on both
// generations and engines across the five datasets, plus the paper's
// headline speedup metrics.
func Fig8(o Options) (Table, error) {
	t := Table{
		ID: "fig8", Title: "Compression and decompression time across datasets (PEDAL, init hoisted)",
		Columns: []string{"Gen", "Design", "Engine*", "Dataset", "Compress(ms)", "Decompress(ms)", "Fallback"},
		Metrics: map[string]float64{},
	}
	type key struct {
		gen    hwmodel.Generation
		algo   core.AlgoID
		engine hwmodel.Engine
		ds     string
	}
	compT := map[key]time.Duration{}
	decT := map[key]time.Duration{}
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		lib, err := core.Init(core.Options{Generation: gen})
		if err != nil {
			return t, err
		}
		for _, engine := range []hwmodel.Engine{hwmodel.SoC, hwmodel.CEngine} {
			for _, algo := range losslessAlgos {
				for _, ds := range datasets.Lossless() {
					data := datasetBytes(ds, o)
					d := core.Design{Algo: algo, Engine: engine}
					msg, crep, err := lib.Compress(d, core.TypeBytes, data)
					if err != nil {
						lib.Finalize()
						return t, err
					}
					_, drep, err := lib.Decompress(engine, core.TypeBytes, msg, len(data)+64)
					if err != nil {
						lib.Finalize()
						return t, err
					}
					lib.Release(msg)
					k := key{gen, algo, engine, ds.Name}
					compT[k] = crep.Virtual
					decT[k] = drep.Virtual
					fb := ""
					if crep.Fallback || drep.Fallback {
						fb = "→SoC"
					}
					t.Rows = append(t.Rows, []string{
						gen.String(), algo.String(), engine.String(), ds.Name,
						ms(crep.Virtual), ms(drep.Virtual), fb,
					})
				}
			}
		}
		lib.Finalize()
	}
	// Headline metrics (paper §V-C).
	xml, moz := "silesia/xml", "silesia/mozilla"
	ratio := func(a, b time.Duration) float64 { return float64(a) / float64(b) }
	t.Metrics["bf2_deflate_xml_compress_speedup"] = ratio(
		compT[key{hwmodel.BlueField2, core.AlgoDeflate, hwmodel.SoC, xml}],
		compT[key{hwmodel.BlueField2, core.AlgoDeflate, hwmodel.CEngine, xml}])
	t.Metrics["bf2_deflate_xml_decompress_speedup"] = ratio(
		decT[key{hwmodel.BlueField2, core.AlgoDeflate, hwmodel.SoC, xml}],
		decT[key{hwmodel.BlueField2, core.AlgoDeflate, hwmodel.CEngine, xml}])
	t.Metrics["bf2_zlib_mozilla_compress_speedup"] = ratio(
		compT[key{hwmodel.BlueField2, core.AlgoZlib, hwmodel.SoC, moz}],
		compT[key{hwmodel.BlueField2, core.AlgoZlib, hwmodel.CEngine, moz}])
	t.Metrics["bf2_zlib_mozilla_decompress_speedup"] = ratio(
		decT[key{hwmodel.BlueField2, core.AlgoZlib, hwmodel.SoC, moz}],
		decT[key{hwmodel.BlueField2, core.AlgoZlib, hwmodel.CEngine, moz}])
	t.Metrics["bf3_over_bf2_cengine_deflate_decompress_xml"] = ratio(
		decT[key{hwmodel.BlueField2, core.AlgoDeflate, hwmodel.CEngine, xml}],
		decT[key{hwmodel.BlueField3, core.AlgoDeflate, hwmodel.CEngine, xml}])
	t.Metrics["bf3_over_bf2_cengine_deflate_decompress_mozilla"] = ratio(
		decT[key{hwmodel.BlueField2, core.AlgoDeflate, hwmodel.CEngine, moz}],
		decT[key{hwmodel.BlueField3, core.AlgoDeflate, hwmodel.CEngine, moz}])
	return t, nil
}

// Fig9 reproduces the lossy (SZ3) time-distribution figure across the
// exaalt datasets on both generations and engines.
func Fig9(o Options) (Table, error) {
	t := Table{
		ID: "fig9", Title: "Time distribution for lossy (SZ3) designs on BlueField-2/3",
		Columns: []string{"Gen", "Engine*", "Dataset", "DOCA_Init(ms)", "BufPrep(ms)", "Compress(ms)", "Decompress(ms)", "Total(ms)", "Fallback"},
		Metrics: map[string]float64{},
	}
	totals := map[string]time.Duration{}
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		lib, err := core.Init(core.Options{Generation: gen, Baseline: true})
		if err != nil {
			return t, err
		}
		for _, engine := range []hwmodel.Engine{hwmodel.SoC, hwmodel.CEngine} {
			for _, ds := range datasets.LossyGroup() {
				data := datasetBytes(ds, o)
				d := core.Design{Algo: core.AlgoSZ3, Engine: engine}
				msg, crep, err := lib.Compress(d, core.TypeFloat32, data)
				if err != nil {
					lib.Finalize()
					return t, err
				}
				_, drep, err := lib.Decompress(engine, core.TypeFloat32, msg, len(data)+64)
				if err != nil {
					lib.Finalize()
					return t, err
				}
				lib.Release(msg)
				init := crep.Phases[stats.PhaseDOCAInit] + drep.Phases[stats.PhaseDOCAInit]
				prep := crep.Phases[stats.PhaseBufPrep] + drep.Phases[stats.PhaseBufPrep]
				comp := crep.Phases[stats.PhaseCompress] + drep.Phases[stats.PhaseCompress]
				dec := crep.Phases[stats.PhaseDecompress] + drep.Phases[stats.PhaseDecompress]
				total := init + prep + comp + dec
				fb := ""
				if crep.Fallback {
					fb = "→SoC"
				}
				t.Rows = append(t.Rows, []string{
					gen.String(), engine.String(), ds.Name,
					ms(init), ms(prep), ms(comp), ms(dec), ms(total), fb,
				})
				totals[fmt.Sprintf("%v/%v/%s", gen, engine, ds.Name)] = comp + dec
			}
		}
		lib.Finalize()
	}
	// Paper shape metrics: BF2 SoC ≈ BF2 C-Engine; BF3 SoC faster than
	// its redirected C-Engine design (up to 1.58x on the 10 MB dataset).
	small := datasets.LossyGroup()[0].Name
	t.Metrics["bf2_ce_over_soc_small"] =
		float64(totals[fmt.Sprintf("%v/%v/%s", hwmodel.BlueField2, hwmodel.CEngine, small)]) /
			float64(totals[fmt.Sprintf("%v/%v/%s", hwmodel.BlueField2, hwmodel.SoC, small)])
	t.Metrics["bf3_ce_over_soc_small"] =
		float64(totals[fmt.Sprintf("%v/%v/%s", hwmodel.BlueField3, hwmodel.CEngine, small)]) /
			float64(totals[fmt.Sprintf("%v/%v/%s", hwmodel.BlueField3, hwmodel.SoC, small)])
	return t, nil
}

// Table5a reproduces the lossless compression-ratio table.
func Table5a(o Options) (Table, error) {
	t := Table{
		ID: "table5a", Title: "Compression ratios, lossless designs",
		Columns: []string{"Dataset", "DEFLATE", "LZ4", "zlib"},
		Metrics: map[string]float64{},
	}
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		return t, err
	}
	defer lib.Finalize()
	// The paper sorts Table V(a) by ascending ratio.
	rows := [][]string{}
	for _, ds := range []*datasets.Dataset{
		datasets.ObsError(), datasets.SilesiaMozilla(), datasets.SilesiaMR(),
		datasets.SilesiaSamba(), datasets.SilesiaXML(),
	} {
		data := datasetBytes(ds, o)
		row := []string{ds.Name}
		for _, algo := range []core.AlgoID{core.AlgoDeflate, core.AlgoLZ4, core.AlgoZlib} {
			msg, rep, err := lib.Compress(core.Design{Algo: algo, Engine: hwmodel.SoC}, core.TypeBytes, data)
			if err != nil {
				return t, err
			}
			lib.Release(msg)
			row = append(row, fmt.Sprintf("%.3f", rep.Ratio()))
			t.Metrics[fmt.Sprintf("%s/%s", ds.Name, algo)] = rep.Ratio()
		}
		rows = append(rows, row)
	}
	t.Rows = rows
	return t, nil
}

// Table5b reproduces the lossy ratio table: SZ3 on the SoC vs the
// PEDAL-optimised SZ3 whose backend runs on the C-Engine.
func Table5b(o Options) (Table, error) {
	t := Table{
		ID: "table5b", Title: "Compression ratios, lossy designs",
		Columns: []string{"Dataset", "SZ3", "SZ3(C-Engine)"},
		Metrics: map[string]float64{},
	}
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		return t, err
	}
	defer lib.Finalize()
	for _, ds := range datasets.LossyGroup() {
		data := datasetBytes(ds, o)
		row := []string{ds.Name}
		for _, engine := range []hwmodel.Engine{hwmodel.SoC, hwmodel.CEngine} {
			msg, rep, err := lib.Compress(core.Design{Algo: core.AlgoSZ3, Engine: engine}, core.TypeFloat32, data)
			if err != nil {
				return t, err
			}
			lib.Release(msg)
			row = append(row, fmt.Sprintf("%.3f", rep.Ratio()))
			t.Metrics[fmt.Sprintf("%s/%v", ds.Name, engine)] = rep.Ratio()
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
