package experiments

import "testing"

func TestExtDeployShape(t *testing.T) {
	tab, err := ExtDeploy(quick)
	if err != nil {
		t.Fatal(err)
	}
	// 4 scenarios × 2 generations.
	if len(tab.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(tab.Rows))
	}
	// BF2: the C-Engine pays for the PCIe crossing many times over.
	if v := tab.Metrics["BlueField-2_offload_direct_speedup_vs_host"]; v < 3 {
		t.Errorf("BF2 offload speedup vs host = %.2f, want large", v)
	}
	// BF3: no hardware compression → offload to the slower SoC loses.
	if v := tab.Metrics["BlueField-3_offload_direct_speedup_vs_host"]; v > 1 {
		t.Errorf("BF3 offload speedup vs host = %.2f, want < 1 (SoC slower than host)", v)
	}
}

func TestExtHybridShape(t *testing.T) {
	tab, err := ExtHybrid(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tab.Rows))
	}
	// The hybrid design's big win is on BF3, where it parallelises the
	// 16 SoC cores; on BF2 it must at least beat the serial SoC design.
	if v := tab.Metrics["BlueField-3_hybrid_speedup_vs_serial_soc"]; v < 4 {
		t.Errorf("BF3 hybrid speedup vs serial SoC = %.2f, want ≥ 4 (16 cores)", v)
	}
	if v := tab.Metrics["BlueField-2_hybrid_speedup_vs_serial_soc"]; v < 10 {
		t.Errorf("BF2 hybrid speedup vs serial SoC = %.2f, want large (C-Engine inside)", v)
	}
}

func TestExtPipelineShape(t *testing.T) {
	tab, err := ExtPipeline(quick)
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes × 2 generations.
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	// Acceptance: at ≥1 MiB the pipelined end-to-end latency is strictly
	// below the serial compress-then-send path on BOTH generations.
	for _, gen := range []string{"BlueField-2", "BlueField-3"} {
		if v := tab.Metrics[gen+"_pipelined_speedup"]; v <= 1 {
			t.Errorf("%s pipelined end-to-end speedup = %.2f, want > 1", gen, v)
		}
		if v := tab.Metrics[gen+"_compress_makespan_speedup"]; v <= 1 {
			t.Errorf("%s compress makespan speedup = %.2f, want > 1", gen, v)
		}
	}
}

func TestExtAblationShape(t *testing.T) {
	tab, err := ExtAblation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if v := tab.Metrics["hoisting_speedup"]; v < 5 {
		t.Errorf("hoisting speedup = %.2f, want large", v)
	}
}
