package experiments

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pedal/internal/ckpt"
	"pedal/internal/core"
	"pedal/internal/datasets"
	"pedal/internal/faults"
	"pedal/internal/fleet"
	"pedal/internal/hwmodel"
	"pedal/internal/integrity"
	"pedal/internal/service"
	"pedal/internal/stats"
)

// ExtSDCFaults is the chaos soak for the compute fault domain: silent
// data corruption injected into the compression kernels themselves
// (bit flips, quantizer drift, stale-buffer stomps), on the serial and
// pipelined paths, on the fleet hop and on the checkpoint-compressor
// hop. The corruption is applied *before* any checksum is taken, so
// every post-hoc digest is "valid" — only verified compression (decode
// against the source, or the scalar differential referee) and the
// hop-carried source digests can tell. The headline properties: zero
// data errors delivered to any caller, zero untyped errors (every
// detection surfaces as integrity.ErrCorrupt or succeeds via scalar
// re-execution), 100% of injected corruptions detected under
// VerifyFull, repeat offenders quarantined and clean units readmitted,
// and VerifySampled's steady-state screening staying under a 10%
// throughput overhead.
func ExtSDCFaults(o Options) (Table, error) {
	t := Table{
		ID: "ext-sdcfaults", Title: "Silent-data-corruption resilience: verified compression + hop-carried checksums",
		Columns: []string{"Scenario", "Ops", "Injected", "Detected", "Fallbacks",
			"DataErr", "Untyped", "Quar", "Readmit", "Ovh%"},
		Metrics: map[string]float64{},
	}
	for _, sc := range sdcScenarios(o) {
		if err := runSDCCompute(sc, &t); err != nil {
			return t, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
	}
	if err := runSDCFleetHop(o, &t); err != nil {
		return t, fmt.Errorf("scenario fleet-hop: %w", err)
	}
	if err := runSDCCkptHop(o, &t); err != nil {
		return t, fmt.Errorf("scenario ckpt-hop: %w", err)
	}
	if err := runSDCOverhead(o, &t); err != nil {
		return t, fmt.Errorf("scenario sampled-overhead: %w", err)
	}
	return t, nil
}

// sdcRow records one scenario's tallies into the table.
func sdcRow(t *Table, name string, ops, injected, detected, fallbacks, dataErrs, untyped, quar, readmit int, ovh string) {
	t.Rows = append(t.Rows, []string{
		name, fmt.Sprint(ops), fmt.Sprint(injected), fmt.Sprint(detected),
		fmt.Sprint(fallbacks), fmt.Sprint(dataErrs), fmt.Sprint(untyped),
		fmt.Sprint(quar), fmt.Sprint(readmit), ovh,
	})
	key := func(s string) string { return "sdc_" + name + "_" + s }
	t.Metrics[key("ops")] = float64(ops)
	t.Metrics[key("injected")] = float64(injected)
	t.Metrics[key("detected")] = float64(detected)
	t.Metrics[key("fallbacks")] = float64(fallbacks)
	t.Metrics[key("data_errors")] = float64(dataErrs)
	t.Metrics[key("untyped_errors")] = float64(untyped)
	t.Metrics[key("quarantines")] = float64(quar)
	t.Metrics[key("readmits")] = float64(readmit)
}

// sdcBytes is the lossless workload: compressible structured text with
// a deterministic noise tail, so DEFLATE has real matches to find.
func sdcBytes(n int) []byte {
	out := make([]byte, n)
	x := uint64(0x9e3779b97f4a7c15)
	pattern := []byte("record=%08d level=INFO unit=c-engine queue=deflate payload checksum ok | ")
	pos := 0
	rec := 0
	for pos < n {
		line := fmt.Sprintf(string(pattern), rec)
		rec++
		k := copy(out[pos:], line)
		pos += k
		// Every eighth record carries a short pseudo-random field so the
		// stream is not pathologically compressible.
		if rec%8 == 0 && pos+8 <= n {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			binary.LittleEndian.PutUint64(out[pos:], x)
			pos += 8
		}
	}
	return out
}

// sdcFloats is the lossy workload: a smooth multi-tone float64 field,
// the shape SZ3's predictor is built for.
func sdcFloats(elems int) []byte {
	out := make([]byte, elems*8)
	for i := 0; i < elems; i++ {
		v := math.Sin(float64(i)*0.01) + 0.25*math.Sin(float64(i)*0.103) + 1e-4*float64(i%97)
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// sdcScenario is one compute-path soak configuration. Every scenario
// runs VerifyFull — the mode whose contract is "no corrupt byte ever
// leaves the library" — with a seeded injector schedule.
type sdcScenario struct {
	name string
	ops  int
	// kind selects the op mix: "serial-bytes" (DEFLATE, engine design),
	// "serial-float" (SZ3 on the SoC), "pipelined" (chunked DEFLATE) or
	// "mixed" (round-robin over all three).
	kind string
	cfg  faults.ComputeFaultConfig
	// wantQuarantine scenarios assert the engine ledger went through a
	// full quarantine + readmission cycle.
	wantQuarantine bool
}

func sdcScenarios(o Options) []sdcScenario {
	ops := 48
	if o.Quick {
		ops = 20
	}
	return []sdcScenario{
		{name: "serial-flip", ops: ops, kind: "serial-bytes",
			cfg: faults.ComputeFaultConfig{Seed: 21, PKernelFlip: 0.35}},
		{name: "serial-drift", ops: ops, kind: "serial-float",
			cfg: faults.ComputeFaultConfig{Seed: 22, PQuantDrift: 0.35}},
		{name: "pipelined-stomp", ops: ops / 4, kind: "pipelined",
			cfg: faults.ComputeFaultConfig{Seed: 23, PBufferStomp: 0.25}},
		{name: "mixed", ops: ops, kind: "mixed",
			cfg: faults.ComputeFaultConfig{Seed: 24, PKernelFlip: 0.12, PQuantDrift: 0.12, PBufferStomp: 0.12}},
		// A unit that goes hard-bad and then recovers: every kernel
		// execution corrupts until the injection budget runs out, which
		// must drive quarantine, scalar service during the outage, and a
		// half-open readmission once the unit proves itself clean.
		{name: "quarantine-readmit", ops: ops * 2, kind: "serial-bytes", wantQuarantine: true,
			cfg: faults.ComputeFaultConfig{Seed: 25, PKernelFlip: 1.0, MaxInjections: 4}},
	}
}

func runSDCCompute(sc sdcScenario, t *Table) error {
	inj := faults.NewComputeInjector(sc.cfg)
	lib, err := core.Init(core.Options{
		Generation:    hwmodel.BlueField2,
		Verify:        integrity.VerifyFull,
		ComputeFaults: inj,
		ErrorBound:    1e-3,
	})
	if err != nil {
		return err
	}
	defer lib.Finalize()

	text := sdcBytes(192 * 1024)
	big := sdcBytes(1 << 20)
	floats := sdcFloats(48 * 1024)
	var dataErrs, untyped int

	serialBytes := func() {
		d := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}
		msg, _, err := lib.Compress(d, core.TypeBytes, text)
		if err != nil {
			if !errors.Is(err, integrity.ErrCorrupt) {
				untyped++
			}
			return
		}
		out, _, err := lib.Decompress(hwmodel.CEngine, core.TypeBytes, msg, len(text)+64)
		if err != nil || !bytes.Equal(out, text) {
			dataErrs++
		}
	}
	serialFloat := func() {
		d := core.Design{Algo: core.AlgoSZ3, Engine: hwmodel.SoC}
		msg, _, err := lib.Compress(d, core.TypeFloat64, floats)
		if err != nil {
			if !errors.Is(err, integrity.ErrCorrupt) {
				untyped++
			}
			return
		}
		out, _, err := lib.Decompress(hwmodel.SoC, core.TypeFloat64, msg, len(floats)+64)
		if err != nil || len(out) != len(floats) {
			dataErrs++
			return
		}
		// Lossy correctness is the error bound, not byte equality.
		for i := 0; i < len(out); i += 8 {
			want := math.Float64frombits(binary.LittleEndian.Uint64(floats[i:]))
			got := math.Float64frombits(binary.LittleEndian.Uint64(out[i:]))
			if math.Abs(want-got) > 1e-3*1.0000001 {
				dataErrs++
				return
			}
		}
	}
	pipelined := func() {
		d := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}
		msg, _, err := lib.CompressPipelined(d, core.TypeBytes, big)
		if err != nil {
			if !errors.Is(err, integrity.ErrCorrupt) {
				untyped++
			}
			return
		}
		out, _, err := lib.DecompressPipelined(hwmodel.CEngine, msg, len(big)+64)
		if err != nil || !bytes.Equal(out, big) {
			dataErrs++
		}
	}

	for i := 0; i < sc.ops; i++ {
		switch sc.kind {
		case "serial-bytes":
			serialBytes()
		case "serial-float":
			serialFloat()
		case "pipelined":
			pipelined()
		case "mixed":
			switch i % 3 {
			case 0:
				serialBytes()
			case 1:
				serialFloat()
			default:
				pipelined()
			}
		}
	}

	_, injected := inj.Counts()
	bd := lib.TotalBreakdown()
	h := lib.EngineHealth()
	sdcRow(t, sc.name, sc.ops, int(injected),
		int(bd.Count(stats.CounterVerifyMismatches)),
		int(bd.Count(stats.CounterScalarFallbacks)),
		dataErrs, untyped, int(h.Quarantines), int(h.Readmits), "-")
	t.Metrics["sdc_"+sc.name+"_quarantined_end"] = b2f(h.Quarantined)
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sdcFleetBackend wraps a live pedald client. While armed, its checked
// ops report the typed digest rejection that a response damaged on the
// wire produces client-side (the rejection mechanics themselves are
// pinned by the service-layer unit tests); disarmed, it is transparent.
type sdcFleetBackend struct {
	*service.Client
	armed      *atomic.Bool
	rejections *atomic.Uint64
}

func (b *sdcFleetBackend) corrupt(segment string) ([]byte, error) {
	b.rejections.Add(1)
	return nil, &integrity.CorruptError{Hop: "service.response", Segment: segment, Index: -1, Want: 1, Got: 2}
}

func (b *sdcFleetBackend) CompressChecked(d core.Design, dt core.DataType, data []byte) ([]byte, error) {
	if b.armed.Load() {
		return b.corrupt("compress")
	}
	return b.Client.CompressChecked(d, dt, data)
}

func (b *sdcFleetBackend) DecompressChecked(engine hwmodel.Engine, dt core.DataType, msg []byte, maxOut int) ([]byte, error) {
	if b.armed.Load() {
		return b.corrupt("decompress")
	}
	return b.Client.DecompressChecked(engine, dt, msg, maxOut)
}

// runSDCFleetHop soaks the fleet hop: one shard of a live three-daemon
// fleet starts answering checked requests with damaged bytes. Idempotent
// requests must fail over to a clean shard (no data error delivered),
// the repeat offender must be ejected from routing, and the health
// plane must readmit it once its answers verify clean again.
func runSDCFleetHop(o Options, t *Table) error {
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		return err
	}
	defer lib.Finalize()

	procs := make([]*fleetShardProc, 3)
	for i := range procs {
		procs[i] = &fleetShardProc{lib: lib}
		if err := procs[i].listen("127.0.0.1:0"); err != nil {
			return err
		}
	}
	defer func() {
		for _, p := range procs {
			p.crash()
		}
	}()

	var armed atomic.Bool
	var rejections atomic.Uint64
	corruptAddr := procs[0].addr
	r := fleet.NewRouter(fleet.Config{
		EjectAfter: 2,
		Dial: func(addr string, _ time.Duration) (fleet.Backend, error) {
			c, derr := service.Dial(addr)
			if derr != nil {
				return nil, derr
			}
			if addr == corruptAddr {
				return &sdcFleetBackend{Client: c, armed: &armed, rejections: &rejections}, nil
			}
			return c, nil
		},
	})
	defer r.Close()
	for i, p := range procs {
		r.AddShard(fmt.Sprintf("s%d", i), p.addr)
	}

	// Keys whose primary is the corruptible shard, so requests hit it
	// first and must win by failover.
	var hotKeys []string
	for i := 0; i < 64 && len(hotKeys) < 4; i++ {
		k := fmt.Sprintf("object-%d", i)
		if r.Primary(k) == "s0" {
			hotKeys = append(hotKeys, k)
		}
	}
	if len(hotKeys) < 2 {
		return fmt.Errorf("no keys route to the corruptible shard")
	}

	data := sdcBytes(96 * 1024)
	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}
	var ops, dataErrs, untyped int
	run := func(key string) {
		ops++
		req := fleet.Request{Tenant: "t", Key: key, Class: fleet.Gold, Idempotent: true}
		msg, err := r.CompressChecked(req, design, core.TypeBytes, data)
		if err != nil {
			if !errors.Is(err, integrity.ErrCorrupt) {
				untyped++
			}
			return
		}
		out, _, derr := lib.Decompress(hwmodel.CEngine, core.TypeBytes, msg, len(data)+64)
		if derr != nil || !bytes.Equal(out, data) {
			dataErrs++
		}
	}

	// Phase 1: the shard answers garbage. Every request must still
	// deliver verified-clean bytes (failover), and after EjectAfter
	// consecutive corrupt answers the shard leaves the ring.
	armed.Store(true)
	for i := 0; i < 6; i++ {
		run(hotKeys[i%len(hotKeys)])
	}
	armed.Store(false)
	// Phase 2: the shard is healthy again; the health plane's probe
	// readmits it, and post-readmission traffic is rejection-free.
	r.Poll()
	before := rejections.Load()
	for i := 0; i < 4; i++ {
		run(hotKeys[i%len(hotKeys)])
	}
	if rejections.Load() != before {
		// A readmitted shard answering corrupt again would be a soak bug.
		untyped++
	}

	bd := r.Stats()
	sdcRow(t, "fleet-hop", ops, int(rejections.Load()),
		int(bd.Count(stats.CounterHopsRejected)), 0, dataErrs, untyped,
		int(bd.Count(stats.CounterCoresQuarantined)),
		int(bd.Count(stats.CounterShardReadmits)), "-")
	return nil
}

// sdcCkptCompressor wraps a checked checkpoint compressor and, when
// armed, damages the compressed shard after the source digest was
// taken — the compressor-hop corruption Commit must catch before
// anything reaches disk. Each arming injects exactly once.
type sdcCkptCompressor struct {
	inner ckpt.CheckedCompressor

	mu       sync.Mutex
	armed    bool
	injected int
}

func (c *sdcCkptCompressor) Compress(key string, data []byte) ([]byte, error) {
	return c.inner.Compress(key, data)
}

func (c *sdcCkptCompressor) Decompress(key string, msg []byte, maxOut int) ([]byte, error) {
	return c.inner.Decompress(key, msg, maxOut)
}

func (c *sdcCkptCompressor) CompressChecked(key string, data []byte) ([]byte, uint32, error) {
	msg, crc, err := c.inner.CompressChecked(key, data)
	if err != nil {
		return nil, 0, err
	}
	c.mu.Lock()
	fire := c.armed && len(msg) > 0
	if fire {
		c.armed = false
		c.injected++
	}
	c.mu.Unlock()
	if fire {
		mut := append([]byte(nil), msg...)
		mut[len(mut)/2] ^= 0x10
		return mut, crc, nil
	}
	return msg, crc, nil
}

// runSDCCkptHop soaks the checkpoint-compressor hop: on a subset of
// epochs the compressor hands Commit damaged bytes under a stale source
// digest. The commit must abort typed before staging anything, a clean
// retry must land, and every restore must reproduce the snapshot
// byte-identically.
func runSDCCkptHop(o Options, t *Table) error {
	cycles := 8
	if o.Quick {
		cycles = 4
	}
	lib, err := core.Init(core.Options{Generation: hwmodel.BlueField2})
	if err != nil {
		return err
	}
	defer lib.Finalize()

	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	comp := &sdcCkptCompressor{
		inner: &ckpt.LibraryCompressor{Lib: lib, Design: design, Type: core.TypeBytes},
	}
	fs := ckpt.NewMemFS()
	bd := stats.NewBreakdown()
	st, err := ckpt.Open(fs, ckpt.Config{
		Compressor: comp, Replicas: 1, Retain: cycles + 1,
		Algo: uint8(design.Algo), Stats: bd,
	})
	if err != nil {
		return err
	}

	snap := datasets.Snapshots{Seed: 31, Ranks: 3, Elems: 8 * 1024}
	var ops, detected, commits, dataErrs, untyped int
	for e := uint64(1); e <= uint64(cycles); e++ {
		if e%3 == 2 {
			comp.mu.Lock()
			comp.armed = true
			comp.mu.Unlock()
		}
		ops++
		_, err := st.Commit(e, snap.Epoch(e))
		if err != nil {
			if !errors.Is(err, integrity.ErrCorrupt) {
				untyped++
				continue
			}
			detected++
			// The corruption was transient (one injection per arming): the
			// retry must commit cleanly.
			ops++
			if _, rerr := st.Commit(e, snap.Epoch(e)); rerr != nil {
				untyped++
				continue
			}
		}
		commits++

		// Restart: a fresh store over the same bytes restores and the
		// state matches the snapshot exactly.
		st2, oerr := ckpt.Open(fs, ckpt.Config{Compressor: comp, Replicas: 1, Retain: cycles + 1,
			Algo: uint8(design.Algo)})
		if oerr != nil {
			untyped++
			continue
		}
		cp, rerr := st2.Restore()
		if rerr != nil {
			if !ckpt.IsTyped(rerr) {
				untyped++
			}
			continue
		}
		want := snap.Epoch(cp.Epoch)
		if len(cp.Shards) != len(want) {
			dataErrs++
			continue
		}
		for r := range want {
			if !bytes.Equal(cp.Shards[r], want[r]) {
				dataErrs++
			}
		}
	}

	comp.mu.Lock()
	injected := comp.injected
	comp.mu.Unlock()
	sdcRow(t, "ckpt-hop", ops, injected, detected, 0, dataErrs, untyped, 0, 0, "-")
	t.Metrics["sdc_ckpt-hop_commits"] = float64(commits)
	t.Metrics["sdc_ckpt-hop_hops_rejected"] = float64(bd.Count(stats.CounterHopsRejected))
	return nil
}

// runSDCOverhead measures what VerifySampled's steady-state screening
// costs on the serial DEFLATE hot path: wall-clock throughput with
// verification off versus sampled (1-in-8), best of three trials each
// so scheduler noise does not masquerade as overhead.
func runSDCOverhead(o Options, t *Table) error {
	ops := 24
	if o.Quick {
		ops = 8
	}
	data := sdcBytes(1 << 20)
	d := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	newLib := func(mode integrity.VerifyMode) (*core.Library, error) {
		return core.Init(core.Options{Generation: hwmodel.BlueField2, Verify: mode})
	}
	libOff, err := newLib(integrity.VerifyOff)
	if err != nil {
		return err
	}
	defer libOff.Finalize()
	libSampled, err := newLib(integrity.VerifySampled)
	if err != nil {
		return err
	}
	defer libSampled.Finalize()
	run := func(lib *core.Library) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < ops; i++ {
			msg, _, err := lib.Compress(d, core.TypeBytes, data)
			if err != nil {
				return 0, err
			}
			lib.Release(msg)
		}
		return time.Since(start), nil
	}
	// Warm both libraries (pools + code paths hot), then interleave the
	// timed trials off/sampled/off/sampled and keep each side's best:
	// ambient load on a shared box (the soak runs all fault domains in
	// one process) drifts over seconds, and interleaving exposes both
	// modes to the same drift instead of letting it land on one side of
	// the ratio. The minimum is the right estimator here — noise only
	// ever adds time.
	if _, err := run(libOff); err != nil {
		return err
	}
	if _, err := run(libSampled); err != nil {
		return err
	}
	off := time.Duration(math.MaxInt64)
	sampled := time.Duration(math.MaxInt64)
	for trial := 0; trial < 5; trial++ {
		el, err := run(libOff)
		if err != nil {
			return err
		}
		if el < off {
			off = el
		}
		if el, err = run(libSampled); err != nil {
			return err
		}
		if el < sampled {
			sampled = el
		}
	}
	pct := (sampled.Seconds() - off.Seconds()) / off.Seconds() * 100
	sdcRow(t, "sampled-overhead", 2*4*ops, 0, 0, 0, 0, 0, 0, 0, fmt.Sprintf("%.1f", pct))
	t.Metrics["sdc_sampled_overhead_pct"] = pct
	return nil
}
