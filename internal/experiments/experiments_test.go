package experiments

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func TestRunnersComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range Runners() {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
	}
	// Every table and figure of the paper's evaluation must be covered.
	for _, want := range []string{"table4", "fig7a", "fig7b", "fig8", "fig9", "table5a", "table5b", "fig10", "fig10f", "fig11"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if ByID("fig8") == nil || ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
}

func TestTable4(t *testing.T) {
	tab := Table4(quick)
	if len(tab.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(tab.Rows))
	}
	if tab.Rows[0][1] != "silesia/xml" || tab.Rows[7][1] != "exaalt-dataset2" {
		t.Fatal("dataset order wrong")
	}
	if !strings.Contains(tab.String(), "silesia/mozilla") {
		t.Fatal("String() missing rows")
	}
}

func TestFig7aShape(t *testing.T) {
	tab, err := Fig7(quick, false)
	if err != nil {
		t.Fatal(err)
	}
	// 2 engines × 3 algos × 5 datasets.
	if len(tab.Rows) != 30 {
		t.Fatalf("%d rows, want 30", len(tab.Rows))
	}
	// §V-C: init+prep dominate the small-dataset C-Engine run (≈94%).
	frac := tab.Metrics["xml_deflate_cengine_initprep_frac"]
	if frac < 0.85 || frac > 0.995 {
		t.Fatalf("init+prep fraction = %.3f, want ≈0.94", frac)
	}
	// C-Engine must reduce total lossless time on BF2 (paper: up to
	// 9.67×; with quick-mode caps the aggregate ratio is smaller but must
	// exceed 1).
	if r := tab.Metrics["soc_over_cengine_total"]; r <= 1 {
		t.Fatalf("BF2 C-Engine aggregate speedup = %.2f, want > 1", r)
	}
}

func TestFig7bShape(t *testing.T) {
	tab, err := Fig7(quick, true)
	if err != nil {
		t.Fatal(err)
	}
	// BF3: C-Engine totals comparable to SoC (no compression offload).
	r := tab.Metrics["soc_over_cengine_total"]
	if r < 0.5 || r > 2.5 {
		t.Fatalf("BF3 SoC/C-Engine total ratio = %.2f, want ≈1 (comparable)", r)
	}
}

func TestFig8HeadlineMetrics(t *testing.T) {
	tab, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	m := tab.Metrics
	// Paper: 101.8× compression, 11.2× decompression on xml (quick mode
	// uses a 2 MiB prefix, so fixed costs weigh slightly differently —
	// assert the right regime, not the exact value).
	if v := m["bf2_deflate_xml_compress_speedup"]; v < 50 || v > 200 {
		t.Errorf("bf2 deflate xml compress speedup = %.1f, want ≈101.8", v)
	}
	if v := m["bf2_deflate_xml_decompress_speedup"]; v < 4 || v > 25 {
		t.Errorf("bf2 deflate xml decompress speedup = %.1f, want ≈11.2", v)
	}
	if v := m["bf2_zlib_mozilla_compress_speedup"]; v < 40 || v > 200 {
		t.Errorf("bf2 zlib mozilla compress speedup = %.1f, want ≈84.6", v)
	}
	// Quick mode caps datasets at 2 MiB, where the engines' fixed job
	// latencies weigh more than at the full 5.1 MB — the ratio lands
	// near 2.4 here and at ≈1.78 in the full-size pedalbench run.
	if v := m["bf3_over_bf2_cengine_deflate_decompress_xml"]; v < 1.3 || v > 2.6 {
		t.Errorf("bf3/bf2 C-Engine xml decompress = %.2f, want 1.78-2.4 regime", v)
	}
	// The small-message BF3 advantage must exceed the large-message one.
	if m["bf3_over_bf2_cengine_deflate_decompress_xml"] <= m["bf3_over_bf2_cengine_deflate_decompress_mozilla"]-0.05 {
		t.Errorf("BF3 advantage should shrink with size: %.2f vs %.2f",
			m["bf3_over_bf2_cengine_deflate_decompress_xml"],
			m["bf3_over_bf2_cengine_deflate_decompress_mozilla"])
	}
}

func TestFig9Shape(t *testing.T) {
	tab, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	// BF2: C-Engine SZ3 comparable to SoC SZ3 (backend off the critical
	// path).
	if r := tab.Metrics["bf2_ce_over_soc_small"]; r < 0.6 || r > 1.4 {
		t.Errorf("BF2 SZ3 C-Engine/SoC = %.2f, want ≈1", r)
	}
	// BF3: the C-Engine design redirects its backend to slow SoC DEFLATE
	// → slower than the SoC design (paper: up to 1.58×).
	if r := tab.Metrics["bf3_ce_over_soc_small"]; r < 1.1 || r > 3.0 {
		t.Errorf("BF3 SZ3 C-Engine/SoC = %.2f, want ≈1.58", r)
	}
}

func TestTable5aShape(t *testing.T) {
	tab, err := Table5a(quick)
	if err != nil {
		t.Fatal(err)
	}
	m := tab.Metrics
	// DEFLATE == zlib ratio (same algorithm, 6-byte framing difference),
	// and LZ4 always below DEFLATE (Table V-a).
	for _, ds := range []string{"obs_error", "silesia/mozilla", "silesia/mr", "silesia/samba", "silesia/xml"} {
		df := m[ds+"/DEFLATE"]
		lz := m[ds+"/LZ4"]
		zl := m[ds+"/zlib"]
		if lz >= df {
			t.Errorf("%s: LZ4 %.3f not below DEFLATE %.3f", ds, lz, df)
		}
		if zl < df*0.98 || zl > df*1.02 {
			t.Errorf("%s: zlib %.3f should track DEFLATE %.3f", ds, zl, df)
		}
	}
	// Ascending ratio order as the paper prints it.
	if !(m["obs_error/DEFLATE"] < m["silesia/mr/DEFLATE"] &&
		m["silesia/mr/DEFLATE"] < m["silesia/xml/DEFLATE"]) {
		t.Error("Table V(a) ratio ordering broken")
	}
}

func TestTable5bShape(t *testing.T) {
	tab, err := Table5b(quick)
	if err != nil {
		t.Fatal(err)
	}
	// SZ3 and SZ3(C-Engine) ratios must be close (paper: 2.941 vs 2.940
	// etc. — the backend swap barely moves the ratio).
	for _, ds := range []string{"exaalt-dataset1", "exaalt-dataset3", "exaalt-dataset2"} {
		soc := tab.Metrics[ds+"/SoC"]
		ce := tab.Metrics[ds+"/C-Engine"]
		if soc < 1.5 {
			t.Errorf("%s: SZ3 ratio %.2f too low", ds, soc)
		}
		if ce < soc*0.7 || ce > soc*1.3 {
			t.Errorf("%s: C-Engine ratio %.2f far from SoC %.2f", ds, ce, soc)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tab, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline + 6 designs × 2 generations.
	if len(tab.Rows) != 13 {
		t.Fatalf("%d rows, want 13", len(tab.Rows))
	}
	if v := tab.Metrics["bf2_cengine_deflate_speedup_vs_baseline"]; v < 5 {
		t.Errorf("BF2 C-Engine speedup vs baseline = %.1f, want large (≤88x)", v)
	}
	if v := tab.Metrics["bf3_soc_reduction_vs_bf2_soc"]; v < 0.15 || v > 0.60 {
		t.Errorf("BF3 SoC reduction vs BF2 SoC = %.2f, want ≈0.40", v)
	}
}

func TestFig10fShape(t *testing.T) {
	tab, err := Fig10f(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: latency reductions up to 47.3% (BF2) and 48% (BF3), at
	// sizes where SZ3 compute dominates. Quick mode caps messages at
	// 2 MiB, where the baseline's fixed init still dominates and the
	// reduction runs high; the full-size pedalbench run lands in the
	// paper's regime.
	if v := tab.Metrics["bf2_sz3_latency_reduction_vs_baseline"]; v < 0.10 || v > 0.97 {
		t.Errorf("BF2 SZ3 reduction = %.2f, want (0.10, 0.97)", v)
	}
	if v := tab.Metrics["bf3_sz3_latency_reduction_vs_baseline"]; v < 0.10 || v > 0.98 {
		t.Errorf("BF3 SZ3 reduction = %.2f, want (0.10, 0.98)", v)
	}
}

func TestFig11Shape(t *testing.T) {
	tab, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("%d rows, want 13", len(tab.Rows))
	}
	if v := tab.Metrics["bf2_cengine_bcast_speedup_vs_baseline"]; v < 4 {
		t.Errorf("BF2 C-Engine bcast speedup = %.1f, want large (≤68x)", v)
	}
	if v := tab.Metrics["bf3_soc_bcast_reduction_vs_bf2_soc"]; v < 0.10 || v > 0.70 {
		t.Errorf("BF3 SoC bcast reduction = %.2f, want ≈0.49", v)
	}
}
