package experiments

import "testing"

// TestExtCkptFaultsSoak runs the storage chaos soak at full scale and
// asserts the PR's acceptance criteria: multi-rank checkpoint/restart
// cycles under torn writes, bit rot, injected stalls and mid-commit
// kills — zero data errors, zero untyped errors, restart reaching a
// verified checkpoint every time, 100% of injected rot detected, and
// unrecoverable epochs condemned with typed errors rather than
// half-restored.
func TestExtCkptFaultsSoak(t *testing.T) {
	tb, err := ExtCkptFaults(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	m := tb.Metrics

	scenarios := []string{"clean", "torn-write", "bit-rot", "crash-commit", "disk-stall", "combined", "remote"}
	for _, sc := range scenarios {
		key := func(s string) string { return "ckpt_" + sc + "_" + s }
		if m[key("cycles")] == 0 {
			t.Errorf("%s: no cycles ran", sc)
		}
		if got := m[key("data_errors")]; got != 0 {
			t.Errorf("%s: %v data errors (restored shard != checkpointed snapshot)", sc, got)
		}
		if got := m[key("untyped_errors")]; got != 0 {
			t.Errorf("%s: %v untyped errors (every storage failure must carry a typed class)", sc, got)
		}
		if m[key("restores_ok")] == 0 {
			t.Errorf("%s: no successful restores", sc)
		}
		if ok, att := m[key("restores_ok")], m[key("restores_attempted")]; ok != att {
			t.Errorf("%s: %v/%v restores reached a verified state — restart must ALWAYS land on a complete checkpoint", sc, ok, att)
		}
	}

	// Clean baseline over a real on-disk store: every cycle commits,
	// nothing rots, nothing repairs.
	if m["ckpt_clean_commits"] != m["ckpt_clean_cycles"] {
		t.Errorf("clean: commits %v != cycles %v", m["ckpt_clean_commits"], m["ckpt_clean_cycles"])
	}
	for _, c := range []string{"rot_detected", "repairs", "crashes", "condemned"} {
		if got := m["ckpt_clean_"+c]; got != 0 {
			t.Errorf("clean: %s = %v, want 0", c, got)
		}
	}

	// Torn writes: the schedule genuinely fired and every tear was
	// absorbed — detected at commit read-back (typed abort) or healed by
	// replica/source repair at restore.
	if m["ckpt_torn-write_faults_injected"] == 0 {
		t.Error("torn-write: schedule injected nothing")
	}

	// Bit rot: detection is exact — every explicitly flipped copy was
	// caught by digest verification; repairable damage was repaired and
	// the one unrecoverable epoch was condemned, not half-restored.
	if inj, det := m["ckpt_bit-rot_rot_injected"], m["ckpt_bit-rot_rot_detected"]; inj == 0 || det < inj {
		t.Errorf("bit-rot: %v injected, %v detected — scrub+restore must catch 100%%", inj, det)
	}
	if m["ckpt_bit-rot_repairs"] == 0 {
		t.Error("bit-rot: nothing was repaired from surviving replicas")
	}
	if got := m["ckpt_bit-rot_condemned"]; got != 1 {
		t.Errorf("bit-rot: %v epochs condemned, want exactly 1", got)
	}

	// Crash-mid-commit: kills actually fired and every restart still
	// found a complete verified checkpoint (the per-scenario checks
	// above prove the latter).
	if m["ckpt_crash-commit_crashes"] == 0 {
		t.Error("crash-commit: the kill switch never fired")
	}
	if m["ckpt_crash-commit_commits"] == 0 {
		t.Error("crash-commit: no commit ever survived")
	}

	// Stalls: injected and harmless.
	if m["ckpt_disk-stall_faults_injected"] == 0 {
		t.Error("disk-stall: schedule injected nothing")
	}
	if m["ckpt_disk-stall_commits"] != m["ckpt_disk-stall_cycles"] {
		t.Errorf("disk-stall: commits %v != cycles %v (stalls must not fail commits)",
			m["ckpt_disk-stall_commits"], m["ckpt_disk-stall_cycles"])
	}

	// Combined: everything at once, kills included.
	if m["ckpt_combined_crashes"] == 0 {
		t.Error("combined: no mid-commit kill fired")
	}

	// Remote: checkpoint shards compressed through the fleet router over
	// live pedald daemons, cleanly.
	if m["ckpt_remote_commits"] != m["ckpt_remote_cycles"] {
		t.Errorf("remote: commits %v != cycles %v", m["ckpt_remote_commits"], m["ckpt_remote_cycles"])
	}
}
