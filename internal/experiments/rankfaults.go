package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pedal/internal/core"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/mpi"
)

// ExtRankFaults soaks the MPI process fault domain: seeded rank
// crash/hang/restart schedules fire mid-broadcast, mid-reduce and
// mid-pipelined-rendezvous on BlueField-2 and BlueField-3 worlds with
// the heartbeat failure detector armed. The headline properties, per
// scenario: every survivor observes the failure as a typed
// ErrRankFailed (never a hang, never corrupt data), every survivor
// completes Shrink onto the same dense epoch, a re-run of the
// collective on the shrunk world moves correct bytes, and tearing the
// world down leaks neither goroutines nor mempool buffers.
func ExtRankFaults(o Options) (Table, error) {
	t := Table{
		ID: "ext-rankfaults", Title: "Chaos soak: rank-failure tolerance in the MPI runtime (heartbeat detector + shrink)",
		Columns: []string{"Scenario", "Ranks", "Faults", "Survivors", "Revocations", "Shrinks", "Epoch", "Rerun", "DataErr", "LeakedBufs"},
		Metrics: map[string]float64{},
	}
	ranks, attempts := 5, 8
	if o.Quick {
		ranks, attempts = 4, 6
	}
	type scenario struct {
		name string
		gen  hwmodel.Generation
		op   string // bcast | reduce | pipelined
		seed uint64
	}
	var scenarios []scenario
	for _, g := range []struct {
		name string
		gen  hwmodel.Generation
	}{{"bf2", hwmodel.BlueField2}, {"bf3", hwmodel.BlueField3}} {
		for i, op := range []string{"bcast", "reduce", "pipelined"} {
			scenarios = append(scenarios, scenario{
				name: g.name + "-" + op, gen: g.gen, op: op,
				seed: 700 + uint64(i) + 10*uint64(g.gen),
			})
		}
	}

	baseline := runtime.NumGoroutine()
	for _, sc := range scenarios {
		res, err := runRankFaultScenario(sc.gen, sc.op, sc.seed, ranks, attempts)
		if err != nil {
			return t, fmt.Errorf("%s: %w", sc.name, err)
		}
		t.Rows = append(t.Rows, []string{
			sc.name, fmt.Sprint(ranks), fmt.Sprint(res.faults), fmt.Sprint(res.survivors),
			fmt.Sprint(res.revocations), fmt.Sprint(res.shrinks), fmt.Sprint(res.epoch),
			fmt.Sprint(res.reruns), fmt.Sprint(res.dataErrs), fmt.Sprint(res.leakedBufs),
		})
		key := func(s string) string { return sc.name + "_" + s }
		t.Metrics[key("ranks")] = float64(ranks)
		t.Metrics[key("faults")] = float64(res.faults)
		t.Metrics[key("survivors")] = float64(res.survivors)
		t.Metrics[key("revocations")] = float64(res.revocations)
		t.Metrics[key("shrinks")] = float64(res.shrinks)
		t.Metrics[key("epoch")] = float64(res.epoch)
		t.Metrics[key("reruns_ok")] = float64(res.reruns)
		t.Metrics[key("data_errors")] = float64(res.dataErrs)
		t.Metrics[key("leaked_buffers")] = float64(res.leakedBufs)
		t.Metrics[key("epoch_agreed")] = boolMetric(res.epochAgreed)
		t.Metrics[key("all_survivors_revoked")] = boolMetric(res.allRevoked)
	}
	// Goroutine hygiene across the whole matrix: every detector monitor,
	// heartbeat ticker and decode worker must be gone once the worlds
	// close. The settle loop tolerates runtime-internal stragglers.
	leaked := 0
	for i := 0; i < 200; i++ {
		if leaked = runtime.NumGoroutine() - baseline; leaked <= 0 {
			leaked = 0
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Metrics["leaked_goroutines"] = float64(leaked)
	return t, nil
}

// rankFaultResult aggregates one scenario's outcome across ranks.
type rankFaultResult struct {
	faults      int
	survivors   int
	revocations int // survivors that observed >=1 ErrRankFailed
	shrinks     int // survivors that completed >=1 Shrink
	epoch       uint32
	epochAgreed bool
	allRevoked  bool
	reruns      int // survivors whose post-shrink re-run succeeded
	dataErrs    int
	leakedBufs  int64
}

// syncTag is reserved for the post-recovery convergence handshake; the
// soak rounds never use it, so a stale frame from an aborted round can
// never satisfy a sync receive.
const syncTag = 4242

// starSync converges the survivors of a shrink: every non-root sends a
// hello to group rank 0 and waits for its reply; the root replies only
// after collecting a hello from every current group member. World rank
// 0 is never drawn by the fault schedule, so it anchors the star. A
// completed sync means every survivor has installed the same epoch and
// drained its recovery — the collective re-run starts from lockstep.
// Hellos carry constant bytes, so a stale hello from an earlier,
// deadline-abandoned sync round is indistinguishable from a fresh one
// and harmlessly satisfies the root's sweep.
func starSync(c *mpi.Comm) error {
	hello := []byte("sync")
	if c.Rank() == 0 {
		for r := 1; r < c.Size(); r++ {
			if _, err := c.Recv(r, syncTag, 64); err != nil {
				return err
			}
		}
		for r := 1; r < c.Size(); r++ {
			if err := c.Send(r, syncTag, hello); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, syncTag, hello); err != nil {
		return err
	}
	_, err := c.Recv(0, syncTag, 64)
	return err
}

func runRankFaultScenario(gen hwmodel.Generation, op string, seed uint64, ranks, attempts int) (rankFaultResult, error) {
	schedule := faults.NewRankSchedule(faults.RankFaultConfig{
		Seed: seed, PCrash: 0.45, PHang: 0.3, PRestart: 0.25,
		MinOps: 1, MaxOps: 3, MaxFailures: 2,
		// A hang must outlast SuspectAfter to fence the rank.
		Pause: 900 * time.Millisecond,
	}, ranks)
	byRank := map[int]faults.RankFault{}
	for _, f := range schedule {
		byRank[f.Rank] = f
	}

	opts := mpi.WorldOptions{
		Generation: gen,
		// A generous suspicion budget: the soak may run on a single-core
		// box where chunk-compression goroutines starve the heartbeat
		// tickers for long stretches, and a starved ticker must not get
		// a live rank fenced.
		Detector: &mpi.DetectorConfig{
			Interval:     2 * time.Millisecond,
			SuspectAfter: 400 * time.Millisecond,
		},
		// Safety net: a survivor that desynchronises from the round
		// structure while peers recover must error out, never hang.
		OpDeadline: time.Second,
	}
	payload := bytes.Repeat([]byte("pedal rank fault soak payload / "), 256) // 8 KiB
	if op == "pipelined" {
		// Rendezvous-class (above the 64 KiB threshold) so the failure
		// cuts a multi-chunk stream, but light enough that compressing it
		// on every ring hop stays well inside OpDeadline on one core.
		payload = bytes.Repeat([]byte("pedal rank fault pipelined soak payload text / "), 2100) // ≈96 KiB
		opts.Compression = &mpi.CompressionConfig{
			Design:    core.Design{Algo: core.AlgoLZ4, Engine: hwmodel.SoC},
			Pipelined: true,
		}
	}
	comms, err := mpi.NewWorld(ranks, opts)
	if err != nil {
		return rankFaultResult{}, err
	}

	// runOp takes a per-attempt tag: a deadline-aborted rendezvous leaves
	// stale RTS and chunk frames in the peers' unexpected queues, and a
	// retry on the same tag can match an abandoned stream and livelock —
	// so, as a ULFM application would, every retry round gets a fresh tag
	// and the litter of aborted attempts can never be matched again.
	// (Collectives are immune: their eager frames carry the full constant
	// payload, so a stale frame satisfies a retried receive correctly.)
	runOp := func(c *mpi.Comm, tag int) ([]byte, error) {
		switch op {
		case "bcast":
			return c.Bcast(0, payload)
		case "reduce":
			// Identical contributions: the element-wise max is membership-
			// independent, so the result validates byte integrity across
			// any shrink boundary.
			got, err := c.Reduce(0, mpi.MaxFloat64, payload[:4096])
			if err != nil {
				return nil, err
			}
			if c.Rank() == 0 {
				return got, nil
			}
			return payload[:4096], nil // non-root has nothing to verify
		case "pipelined":
			// Ring exchange: every hop is a pipelined rendezvous, so a
			// death cuts streams mid-flight on both sides of the victim.
			dst := (c.Rank() + 1) % c.Size()
			src := (c.Rank() - 1 + c.Size()) % c.Size()
			return c.Sendrecv(dst, tag, payload, src, tag, len(payload))
		default:
			return nil, fmt.Errorf("unknown op %q", op)
		}
	}
	expect := func(out []byte) bool {
		if op == "reduce" {
			return bytes.Equal(out, payload[:4096])
		}
		return bytes.Equal(out, payload)
	}

	type rankOutcome struct {
		died        bool
		revocations int
		shrinks     int
		rerunOK     bool
		dataErrs    int
		epoch       uint32
		err         error
	}
	outcomes := make([]rankOutcome, ranks)
	var wg sync.WaitGroup
	for i := range comms {
		wg.Add(1)
		go func(c *mpi.Comm, out *rankOutcome) {
			defer wg.Done()
			fault, faulty := byRank[c.WorldRank()]
			for attempt := 0; attempt < attempts; attempt++ {
				if faulty && attempt == fault.AfterOps {
					switch fault.Class {
					case faults.RankCrash:
						c.Kill()
						out.died = true
						return
					case faults.RankHang, faults.RankRestart:
						// Freeze past the suspicion budget. A restart comes
						// back as a zombie: fenced, every op refused — dead
						// stays dead.
						c.Hang(fault.Pause)
						time.Sleep(fault.Pause + 40*time.Millisecond)
						if fault.Class == faults.RankRestart {
							if _, err := runOp(c, 99); !errors.Is(err, mpi.ErrRankFailed) {
								out.err = fmt.Errorf("zombie op returned %v, want ErrRankFailed", err)
							}
						}
						out.died = true
						return
					}
				}
				got, err := runOp(c, 100+attempt)
				switch {
				case err == nil:
					if got != nil && !expect(got) {
						out.dataErrs++
					}
				case errors.Is(err, mpi.ErrRankFailed):
					out.revocations++
					if serr := c.Shrink(); serr != nil {
						if errors.Is(serr, mpi.ErrRankFailed) {
							out.died = true // fenced mid-recovery
							return
						}
						out.err = fmt.Errorf("shrink: %w", serr)
						return
					}
					out.shrinks++
				case errors.Is(err, mpi.ErrDeadline):
					// Round desync while peers recovered: harmless, the
					// verification re-run below restores lockstep.
				default:
					out.err = fmt.Errorf("attempt %d: %w", attempt, err)
					return
				}
				// Pace the rounds so heartbeat staleness is observable and
				// eager retries cannot flood a dead rank's inbox.
				time.Sleep(2 * time.Millisecond)
			}
			// Verification. First settle until every scheduled death has
			// been detected, then converge the survivors: a star
			// handshake through group rank 0 (world rank 0, never drawn
			// by the schedule) on a tag the soak rounds never used, so
			// every survivor ends on the same epoch with the recovery
			// fully absorbed before the collective re-runs.
			time.Sleep(100 * time.Millisecond)
			deadline := time.Now().Add(8 * time.Second)
			absorb := func(err error) (fatal bool) {
				if errors.Is(err, mpi.ErrRankFailed) {
					out.revocations++
					if serr := c.Shrink(); serr != nil {
						if errors.Is(serr, mpi.ErrRankFailed) {
							out.died = true
							return true
						}
						out.err = fmt.Errorf("verify shrink: %w", serr)
						return true
					}
					out.shrinks++
					return false
				}
				if !errors.Is(err, mpi.ErrDeadline) {
					out.err = fmt.Errorf("verify: %w", err)
					return true
				}
				return false
			}
			for time.Now().Before(deadline) {
				if err := starSync(c); err != nil {
					if absorb(err) {
						return
					}
					time.Sleep(2 * time.Millisecond)
					continue
				}
				break
			}
			// Re-run the scenario's collective on the shrunk world.
			for retry := 0; time.Now().Before(deadline); retry++ {
				got, err := runOp(c, 9000+retry)
				if err != nil {
					if absorb(err) {
						return
					}
					time.Sleep(2 * time.Millisecond)
					continue
				}
				out.rerunOK = true
				if got != nil && !expect(got) {
					out.dataErrs++
					out.rerunOK = false
				}
				break
			}
			out.epoch = c.Epoch()
		}(comms[i], &outcomes[i])
	}
	wg.Wait()

	res := rankFaultResult{faults: len(schedule), epochAgreed: true, allRevoked: true}
	for i, out := range outcomes {
		if out.err != nil {
			return res, fmt.Errorf("rank %d: %w", i, out.err)
		}
		if out.died {
			continue
		}
		res.survivors++
		res.dataErrs += out.dataErrs
		if out.revocations > 0 {
			res.revocations++
		} else if len(schedule) > 0 {
			res.allRevoked = false
		}
		if out.shrinks > 0 {
			res.shrinks++
		}
		if out.rerunOK {
			res.reruns++
		}
		if res.epoch == 0 {
			res.epoch = out.epoch
		} else if out.epoch != res.epoch {
			res.epochAgreed = false
		}
	}
	// Buffer hygiene before teardown: every pooled compressed message a
	// surviving or dead rank ever took must be back in its pool — aborted
	// rendezvous and cut chunk streams included.
	for _, c := range comms {
		if lib := c.Pedal(); lib != nil {
			res.leakedBufs += lib.PoolOutstanding()
		}
	}
	for _, c := range comms {
		c.Close()
	}
	return res, nil
}
