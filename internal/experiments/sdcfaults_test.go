package experiments

import "testing"

// TestExtSDCFaultsSoak runs the compute fault-domain chaos soak at full
// scale and asserts the PR's acceptance criteria: silent data
// corruption injected into the kernels (bit flips, quantizer drift,
// buffer stomps) across the serial, pipelined, fleet and checkpoint
// paths — zero data errors delivered anywhere, zero untyped errors,
// 100% detection under VerifyFull, repeat offenders quarantined and
// readmitted once clean, and VerifySampled under 10% overhead.
func TestExtSDCFaultsSoak(t *testing.T) {
	tb, err := ExtSDCFaults(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	m := tb.Metrics

	faulted := []string{"serial-flip", "serial-drift", "pipelined-stomp", "mixed",
		"quarantine-readmit", "fleet-hop", "ckpt-hop"}
	for _, sc := range faulted {
		key := func(s string) string { return "sdc_" + sc + "_" + s }
		if m[key("ops")] == 0 {
			t.Errorf("%s: no operations ran", sc)
		}
		if m[key("injected")] == 0 {
			t.Errorf("%s: the injector never fired — the scenario tested nothing", sc)
		}
		if got := m[key("data_errors")]; got != 0 {
			t.Errorf("%s: %v data errors — corrupt bytes were delivered to a caller", sc, got)
		}
		if got := m[key("untyped_errors")]; got != 0 {
			t.Errorf("%s: %v untyped errors (every failure must be integrity-typed)", sc, got)
		}
		if inj, det := m[key("injected")], m[key("detected")]; det != inj {
			t.Errorf("%s: %v corruptions injected but %v detected — VerifyFull must catch 100%%", sc, inj, det)
		}
	}

	// Compute-path scenarios: every detection was transparently healed by
	// a scalar re-execution, so callers saw neither an error nor a wrong
	// byte.
	for _, sc := range []string{"serial-flip", "serial-drift", "pipelined-stomp", "mixed", "quarantine-readmit"} {
		if m["sdc_"+sc+"_fallbacks"] == 0 {
			t.Errorf("%s: detections were not healed by scalar re-execution", sc)
		}
	}

	// Quarantine ladder: a unit corrupting every execution is benched
	// after the mismatch threshold, served by the scalar path during the
	// outage, and readmitted by a half-open probe once its injection
	// budget is spent.
	if m["sdc_quarantine-readmit_quarantines"] == 0 {
		t.Error("quarantine-readmit: the hard-bad engine was never quarantined")
	}
	if m["sdc_quarantine-readmit_readmits"] == 0 {
		t.Error("quarantine-readmit: the recovered engine was never readmitted")
	}
	if m["sdc_quarantine-readmit_quarantined_end"] != 0 {
		t.Error("quarantine-readmit: engine still quarantined after recovery")
	}

	// Fleet hop: the corrupt shard was ejected exactly once and
	// readmitted exactly once after its answers verified clean again.
	if got := m["sdc_fleet-hop_quarantines"]; got != 1 {
		t.Errorf("fleet-hop: %v shard quarantines, want 1", got)
	}
	if got := m["sdc_fleet-hop_readmits"]; got != 1 {
		t.Errorf("fleet-hop: %v shard readmissions, want 1", got)
	}

	// Checkpoint hop: every corrupt compression was rejected at the
	// commit boundary (counted as a hop rejection) and the clean retry
	// landed — commits equal the cycle count.
	if inj, rej := m["sdc_ckpt-hop_injected"], m["sdc_ckpt-hop_hops_rejected"]; rej != inj {
		t.Errorf("ckpt-hop: %v injected, %v hop rejections", inj, rej)
	}
	if m["sdc_ckpt-hop_commits"] == 0 {
		t.Error("ckpt-hop: no commits landed")
	}

	// VerifySampled screening overhead on the serial DEFLATE hot path
	// stays under the 10%% budget.
	if got := m["sdc_sampled_overhead_pct"]; got >= 10 {
		t.Errorf("sampled-overhead: %.1f%% throughput overhead, want < 10%%", got)
	}
}
