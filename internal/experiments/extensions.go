package experiments

import (
	"fmt"
	"time"

	"pedal/internal/core"
	"pedal/internal/datasets"
	"pedal/internal/dpu"
	"pedal/internal/hostoffload"
	"pedal/internal/hwmodel"
	"pedal/internal/mpi"
	"pedal/internal/osu"
)

// The experiments in this file go beyond the paper's evaluation and
// exercise its §VI discussion items and §V-C.2 future-work sketch:
// deployment scenarios with host↔DPU data movement, the hybrid parallel
// SoC+C-Engine design, and ablations of PEDAL's individual design
// choices.

// ExtDeploy compares the §VI deployment scenarios: compression on the
// host vs offloaded to the DPU (bounce / direct / pipelined), on both
// generations.
func ExtDeploy(o Options) (Table, error) {
	t := Table{
		ID: "ext-deploy", Title: "Deployment scenarios (§VI): MPI on host, compression offloaded to DPU",
		Columns: []string{"Gen", "Scenario", "Compress(ms)", "PCIe(ms)", "Wire(ms)", "Total(ms)", "Ratio"},
		Metrics: map[string]float64{},
	}
	data := datasetBytes(datasets.SilesiaSamba(), o)
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		dev, err := dpu.NewDevice(gen, dpu.SeparatedHost)
		if err != nil {
			return t, err
		}
		var hostTotal, directTotal time.Duration
		for _, s := range hostoffload.Scenarios() {
			r, err := hostoffload.Run(dev, s, data)
			if err != nil {
				dev.Close()
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				gen.String(), s.String(),
				ms(r.Compress), ms(r.Movement), ms(r.Wire), ms(r.Total),
				fmt.Sprintf("%.2f", float64(r.InBytes)/float64(r.OutBytes)),
			})
			switch s {
			case hostoffload.OnHost:
				hostTotal = r.Total
			case hostoffload.OffloadDirect:
				directTotal = r.Total
			}
		}
		t.Metrics[fmt.Sprintf("%s_offload_direct_speedup_vs_host", gen)] =
			float64(hostTotal) / float64(directTotal)
		dev.Close()
	}
	return t, nil
}

// ExtHybrid compares the hybrid parallel SoC+C-Engine design (§V-C.2 /
// §VI future work) against the pure designs on both generations.
func ExtHybrid(o Options) (Table, error) {
	t := Table{
		ID: "ext-hybrid", Title: "Hybrid parallel SoC+C-Engine design vs pure designs",
		Columns: []string{"Gen", "Design", "Compress(ms)", "Decompress(ms)", "Ratio"},
		Metrics: map[string]float64{},
	}
	data := datasetBytes(datasets.SilesiaSamba(), o)
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		lib, err := core.Init(core.Options{Generation: gen})
		if err != nil {
			return t, err
		}
		designs := []core.Design{
			{Algo: core.AlgoDeflate, Engine: hwmodel.SoC},
			{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine},
			core.DesignHybrid(),
		}
		times := map[string]time.Duration{}
		for _, d := range designs {
			msg, crep, err := lib.Compress(d, core.TypeBytes, data)
			if err != nil {
				lib.Finalize()
				return t, err
			}
			_, drep, err := lib.Decompress(d.Engine, core.TypeBytes, msg, len(data)+64)
			if err != nil {
				lib.Finalize()
				return t, err
			}
			lib.Release(msg)
			t.Rows = append(t.Rows, []string{
				gen.String(), d.String(), ms(crep.Virtual), ms(drep.Virtual),
				fmt.Sprintf("%.2f", crep.Ratio()),
			})
			times[d.Algo.String()+"/"+d.Engine.String()] = crep.Virtual
		}
		t.Metrics[fmt.Sprintf("%s_hybrid_speedup_vs_serial_soc", gen)] =
			float64(times["DEFLATE/SoC"]) / float64(times["Hybrid-DEFLATE/C-Engine"])
		lib.Finalize()
	}
	return t, nil
}

// ExtAblation isolates PEDAL's individual optimisations on the BF2
// C-Engine DEFLATE point-to-point path: the full design, init hoisting
// only (cold buffers), and the un-hoisted baseline — plus a rendezvous
// threshold sweep showing the eager/RNDV crossover.
func ExtAblation(o Options) (Table, error) {
	t := Table{
		ID: "ext-ablation", Title: "Ablation: PEDAL optimisations and the RNDV threshold",
		Columns: []string{"Variant", "Message", "Latency(ms)"},
		Metrics: map[string]float64{},
	}
	size := 5 << 20
	if o.Quick {
		size = 2 << 20
	}
	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}
	run := func(world mpi.WorldOptions, sz int) (time.Duration, error) {
		res, err := osu.RunLatency(osu.P2PConfig{
			World:      world,
			Sizes:      []int{sz},
			Iterations: o.iters(),
			Payload:    losslessPayload(o),
		})
		if err != nil {
			return 0, err
		}
		return res[0].Latency, nil
	}

	pedalLat, err := run(mpi.WorldOptions{
		Compression: &mpi.CompressionConfig{Design: design},
	}, size)
	if err != nil {
		return t, err
	}
	baseLat, err := run(mpi.WorldOptions{
		Baseline:    true,
		Compression: &mpi.CompressionConfig{Design: design},
	}, size)
	if err != nil {
		return t, err
	}
	plainLat, err := run(mpi.WorldOptions{}, size)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"PEDAL (hoisted init + pooled buffers)", mb(size) + " MB", ms(pedalLat)},
		[]string{"baseline (init + alloc per message)", mb(size) + " MB", ms(baseLat)},
		[]string{"no compression", mb(size) + " MB", ms(plainLat)},
	)
	t.Metrics["hoisting_speedup"] = float64(baseLat) / float64(pedalLat)

	// Threshold sweep: where does compression start paying off against
	// eager passthrough? (paper §IV: RNDV-only compression)
	for _, msgSize := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		lat, err := run(mpi.WorldOptions{
			Compression:         &mpi.CompressionConfig{Design: design},
			RendezvousThreshold: 32 << 10,
		}, msgSize)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{"threshold=32KiB", mb(msgSize) + " MB", ms(lat)})
	}
	return t, nil
}

// ExtPipeline measures the chunked compression–communication overlap
// (internal/pipeline): serial compress-then-send vs the streamed
// chunk-frame rendezvous, per generation and message size, plus the
// library-level makespan comparison. The headline metrics are the
// per-generation end-to-end speedups at the largest message size.
func ExtPipeline(o Options) (Table, error) {
	t := Table{
		ID: "ext-pipeline", Title: "Extension: pipelined chunked compression–communication overlap",
		Columns: []string{"Gen", "Design", "Size(MB)", "Serial(ms)", "Pipelined(ms)", "Speedup"},
		Metrics: map[string]float64{},
	}
	sizes := []int{1 << 20, 4 << 20}
	if o.Quick {
		sizes = []int{1 << 20, 2 << 20}
	}
	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.SoC}
	oneWay := func(gen hwmodel.Generation, size int, pipelined bool) (time.Duration, error) {
		res, err := osu.RunLatency(osu.P2PConfig{
			World: mpi.WorldOptions{
				Generation:  gen,
				Compression: &mpi.CompressionConfig{Design: design, Pipelined: pipelined},
			},
			Sizes:      []int{size},
			Iterations: o.iters(),
			Payload:    losslessPayload(o),
		})
		if err != nil {
			return 0, err
		}
		return res[0].Latency, nil
	}
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		var speedup float64
		for _, size := range sizes {
			serial, err := oneWay(gen, size, false)
			if err != nil {
				return t, err
			}
			piped, err := oneWay(gen, size, true)
			if err != nil {
				return t, err
			}
			speedup = float64(serial) / float64(piped)
			t.Rows = append(t.Rows, []string{
				gen.String(), design.String(), mb(size),
				ms(serial), ms(piped), fmt.Sprintf("%.2f", speedup),
			})
		}
		// Largest size carries the headline metric.
		t.Metrics[fmt.Sprintf("%s_pipelined_speedup", gen)] = speedup

		// Library-level view: compression makespan vs the serial design
		// (no wire in the picture — pure overlap of chunks across cores).
		lib, err := core.Init(core.Options{Generation: gen})
		if err != nil {
			return t, err
		}
		data := losslessPayload(o)(sizes[len(sizes)-1])
		msg, serialRep, err := lib.Compress(design, core.TypeBytes, data)
		if err != nil {
			lib.Finalize()
			return t, err
		}
		lib.Release(msg)
		msg, pipedRep, err := lib.CompressPipelined(design, core.TypeBytes, data)
		if err != nil {
			lib.Finalize()
			return t, err
		}
		lib.Release(msg)
		t.Metrics[fmt.Sprintf("%s_compress_makespan_speedup", gen)] =
			float64(serialRep.Virtual) / float64(pipedRep.Virtual)
		lib.Finalize()
	}
	return t, nil
}
