package experiments

import (
	"testing"

	"pedal/internal/testutil"
)

// TestExtOverloadFaultsSoak runs the overload chaos soak at full scale
// and asserts the PR's acceptance criteria: under memory-pressure
// squeezes, slow consumers, and deadline storms — zero data errors,
// zero untyped errors (every refusal is a typed busy shed or a typed
// deadline error), peak pool bytes bounded by the configured budget,
// and zero leaked buffers or goroutines after drain.
func TestExtOverloadFaultsSoak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tb, err := ExtOverloadFaults(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	m := tb.Metrics

	scenarios := []string{"mixed", "mempressure", "slowconsumer", "deadlinestorm"}
	for _, sc := range scenarios {
		key := func(s string) string { return "overload_" + sc + "_" + s }
		if m[key("ops")] == 0 {
			t.Errorf("%s: no operations ran", sc)
		}
		if got := m[key("data_errors")]; got != 0 {
			t.Errorf("%s: %v data errors", sc, got)
		}
		if got := m[key("untyped_errors")]; got != 0 {
			t.Errorf("%s: %v untyped errors (every refusal must be typed busy or deadline)", sc, got)
		}
		if peak, budget := m[key("peak_pool_bytes")], m[key("pool_budget")]; peak > budget {
			t.Errorf("%s: peak pool bytes %v exceeded the configured budget %v", sc, peak, budget)
		}
		if got := m[key("leaked_buffers")]; got != 0 {
			t.Errorf("%s: %v pooled buffers leaked after drain", sc, got)
		}
	}

	// Baseline: governance on, nobody squeezed — everything succeeds
	// and no overload machinery fires.
	if m["overload_mixed_ok"] != m["overload_mixed_ops"] {
		t.Errorf("mixed: ok %v != ops %v", m["overload_mixed_ok"], m["overload_mixed_ops"])
	}
	for _, counter := range []string{"mem_sheds", "brownouts", "deadline_abandoned"} {
		if got := m["overload_mixed_"+counter]; got != 0 {
			t.Errorf("mixed: %s = %v, want 0", counter, got)
		}
	}

	// Memory pressure: the squeezed shard refused governed draws and
	// converted the shortage into typed busy sheds.
	if m["overload_mempressure_mem_sheds"] == 0 {
		t.Error("mempressure: the squeezed pool never refused a draw")
	}

	// Slow consumer: queue occupancy walked the brownout ladder.
	if m["overload_slowconsumer_brownouts"] == 0 {
		t.Error("slowconsumer: the brownout ladder never stepped up")
	}

	// Deadline storm: work was abandoned at checkpoints and surfaced as
	// typed deadline errors, not untyped failures.
	if m["overload_deadlinestorm_deadline_abandoned"] == 0 {
		t.Error("deadlinestorm: no work was abandoned at a deadline checkpoint")
	}
	if m["overload_deadlinestorm_typed_deadlines"] == 0 {
		t.Error("deadlinestorm: no caller ever saw the typed deadline error")
	}
}
