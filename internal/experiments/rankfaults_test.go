package experiments

import "testing"

// TestExtRankFaultsSoak runs the rank fault-domain chaos soak at full
// scale and asserts the PR's acceptance criteria: seeded crash, hang
// and restart faults mid-bcast, mid-reduce and mid-pipelined-rendezvous
// on BF2 and BF3 worlds; every survivor observes ErrRankFailed,
// completes Shrink onto one agreed epoch, and re-runs the collective on
// the shrunk world with zero data errors — with zero leaked goroutines
// and zero leaked mempool buffers after teardown.
func TestExtRankFaultsSoak(t *testing.T) {
	tb, err := ExtRankFaults(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	m := tb.Metrics

	scenarios := []string{
		"bf2-bcast", "bf2-reduce", "bf2-pipelined",
		"bf3-bcast", "bf3-reduce", "bf3-pipelined",
	}
	for _, sc := range scenarios {
		key := func(s string) string { return sc + "_" + s }
		if m[key("faults")] == 0 {
			t.Errorf("%s: schedule injected no rank faults", sc)
		}
		// Membership arithmetic: every non-faulted rank survived.
		if want := m[key("ranks")] - m[key("faults")]; m[key("survivors")] != want {
			t.Errorf("%s: %v survivors, want %v", sc, m[key("survivors")], want)
		}
		// Every survivor observed the failure as a typed revocation and
		// completed the shrink agreement.
		if m[key("all_survivors_revoked")] != 1 {
			t.Errorf("%s: a survivor never observed ErrRankFailed", sc)
		}
		if m[key("shrinks")] != m[key("survivors")] {
			t.Errorf("%s: %v of %v survivors completed Shrink",
				sc, m[key("shrinks")], m[key("survivors")])
		}
		// All survivors agree on the post-recovery epoch, and it moved.
		if m[key("epoch_agreed")] != 1 {
			t.Errorf("%s: survivors disagree on the final epoch", sc)
		}
		if m[key("epoch")] == 0 {
			t.Errorf("%s: epoch never advanced despite faults", sc)
		}
		// The re-run collective on the shrunk world succeeded everywhere
		// with correct bytes.
		if m[key("reruns_ok")] != m[key("survivors")] {
			t.Errorf("%s: post-shrink re-run succeeded on %v of %v survivors",
				sc, m[key("reruns_ok")], m[key("survivors")])
		}
		if m[key("data_errors")] != 0 {
			t.Errorf("%s: %v data errors", sc, m[key("data_errors")])
		}
		// Resource hygiene: no pooled buffer left checked out — aborted
		// streams and revoked rendezvous included.
		if m[key("leaked_buffers")] != 0 {
			t.Errorf("%s: %v mempool buffers leaked", sc, m[key("leaked_buffers")])
		}
	}
	if m["leaked_goroutines"] != 0 {
		t.Errorf("%v goroutines leaked across the soak", m["leaked_goroutines"])
	}
}
