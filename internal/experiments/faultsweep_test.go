package experiments

import "testing"

// The fault sweep's headline acceptance property: 1,000 operations per
// scenario, zero data errors and zero failed operations everywhere, with
// the resilience machinery visibly doing the work (retries under
// transient faults, breaker trips under persistent ones, a recovery
// after the bounded outage).
func TestExtFaultsAvailability(t *testing.T) {
	tb, err := ExtFaults(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []string{"clean", "transient-30%", "corrupt-10%", "outage-recover", "persistent"} {
		if got := tb.Metrics[sc+"_data_errors"]; got != 0 {
			t.Errorf("%s: %v data errors", sc, got)
		}
		if got := tb.Metrics[sc+"_op_errors"]; got != 0 {
			t.Errorf("%s: %v failed operations", sc, got)
		}
	}
	if tb.Metrics["clean_retries"] != 0 {
		t.Errorf("clean scenario retried %v times", tb.Metrics["clean_retries"])
	}
	if tb.Metrics["transient-30%_retries"] == 0 {
		t.Error("30% transient injection produced no retries")
	}
	if tb.Metrics["corrupt-10%_corruptions"] == 0 {
		t.Error("10% corruption injection never detected")
	}
	if tb.Metrics["persistent_breaker_trips"] == 0 {
		t.Error("persistent faults never tripped the breaker")
	}
	if tb.Metrics["persistent_degraded_ops"] == 0 {
		t.Error("persistent scenario never degraded to the SoC")
	}
	if tb.Metrics["outage-recover_breaker_trips"] == 0 {
		t.Error("outage never tripped the breaker")
	}
	if tb.Metrics["outage-recover_breaker_recoveries"] == 0 {
		t.Error("breaker never recovered after the outage ended")
	}
}
