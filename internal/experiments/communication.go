package experiments

import (
	"fmt"

	"pedal/internal/core"
	"pedal/internal/datasets"
	"pedal/internal/hwmodel"
	"pedal/internal/mpi"
	"pedal/internal/osu"
)

// p2pSizes is the message-size sweep for Fig. 10. The paper sweeps OSU
// sizes into the tens of MB; these cover the RNDV regime where PEDAL
// engages.
func p2pSizes(o Options) []int {
	if o.Quick {
		return []int{256 << 10, 2 << 20}
	}
	return []int{256 << 10, 1 << 20, 4 << 20, 16 << 20, 48 << 20}
}

// losslessPayload slices the silesia/samba stand-in for latency sweeps:
// representative mixed compressibility (ratio ≈ 3-4).
func losslessPayload(o Options) func(int) []byte {
	full := datasets.SilesiaSamba().Bytes()
	return func(size int) []byte {
		out := make([]byte, size)
		for off := 0; off < size; off += len(full) {
			copy(out[off:], full)
		}
		return out
	}
}

// lossyPayload slices the 10 MB exaalt stand-in.
func lossyPayload(o Options) func(int) []byte {
	full := datasets.ExaaltDataset1().Bytes()
	return func(size int) []byte {
		size &^= 3 // float32 alignment
		out := make([]byte, size)
		for off := 0; off < size; off += len(full) {
			copy(out[off:], full)
		}
		return out
	}
}

// Fig10 reproduces the lossless point-to-point latency comparison
// (Fig. 10a-e): the six designs A-F on both generations, plus the
// baseline (BF2 C-Engine DEFLATE without PEDAL's init hoisting).
func Fig10(o Options) (Table, error) {
	t := Table{
		ID: "fig10", Title: "MPI point-to-point latency, lossless designs (OSU-style)",
		Columns: append([]string{"Gen", "Design"}, sizeCols(p2pSizes(o))...),
		Metrics: map[string]float64{},
	}
	payload := losslessPayload(o)
	iters := o.iters()

	runOne := func(gen hwmodel.Generation, d core.Design, baseline bool) ([]osu.P2PResult, error) {
		return osu.RunLatency(osu.P2PConfig{
			World: mpi.WorldOptions{
				Generation: gen,
				Baseline:   baseline,
				Compression: &mpi.CompressionConfig{
					Design: d,
				},
			},
			Sizes:      p2pSizes(o),
			Iterations: iters,
			Payload:    payload,
		})
	}

	// Baseline: the paper's reference point is BF2 with compression but
	// without PEDAL (per-message init + allocation).
	baseRes, err := runOne(hwmodel.BlueField2, core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}, true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, latencyRow("BlueField-2", "Baseline (no PEDAL)", baseRes))

	var bf2SoCDeflate, bf3SoCDeflate, bf2CEDeflate []osu.P2PResult
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		for _, d := range core.LosslessDesigns() {
			res, err := runOne(gen, d, false)
			if err != nil {
				return t, fmt.Errorf("%v %v: %w", gen, d, err)
			}
			t.Rows = append(t.Rows, latencyRow(gen.String(), d.String(), res))
			switch {
			case gen == hwmodel.BlueField2 && d.String() == "SoC_DEFLATE":
				bf2SoCDeflate = res
			case gen == hwmodel.BlueField3 && d.String() == "SoC_DEFLATE":
				bf3SoCDeflate = res
			case gen == hwmodel.BlueField2 && d.String() == "C-Engine_DEFLATE":
				bf2CEDeflate = res
			}
		}
	}
	// Paper metrics, reported as "up to" = best across the size sweep:
	// C-Engine ≤88× vs baseline; BF3 SoC up to 40% lower than BF2 SoC.
	best := 0.0
	for i := range baseRes {
		if r := float64(baseRes[i].Latency) / float64(bf2CEDeflate[i].Latency); r > best {
			best = r
		}
	}
	t.Metrics["bf2_cengine_deflate_speedup_vs_baseline"] = best
	bestRed := 0.0
	for i := range bf2SoCDeflate {
		if r := 1 - float64(bf3SoCDeflate[i].Latency)/float64(bf2SoCDeflate[i].Latency); r > bestRed {
			bestRed = r
		}
	}
	t.Metrics["bf3_soc_reduction_vs_bf2_soc"] = bestRed
	return t, nil
}

// Fig10f reproduces the lossy point-to-point latency comparison: SZ3 on
// both generations against the BF2 baseline.
func Fig10f(o Options) (Table, error) {
	t := Table{
		ID: "fig10f", Title: "MPI point-to-point latency, SZ3 (OSU-style)",
		Columns: append([]string{"Gen", "Design"}, sizeCols(p2pSizes(o))...),
		Metrics: map[string]float64{},
	}
	payload := lossyPayload(o)
	iters := o.iters()
	runOne := func(gen hwmodel.Generation, engine hwmodel.Engine, baseline bool) ([]osu.P2PResult, error) {
		return osu.RunLatency(osu.P2PConfig{
			World: mpi.WorldOptions{
				Generation: gen,
				Baseline:   baseline,
				Compression: &mpi.CompressionConfig{
					Design:   core.Design{Algo: core.AlgoSZ3, Engine: engine},
					DataType: core.TypeFloat32,
				},
			},
			Sizes:      p2pSizes(o),
			Iterations: iters,
			Payload:    payload,
		})
	}
	baseRes, err := runOne(hwmodel.BlueField2, hwmodel.SoC, true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, latencyRow("BlueField-2", "Baseline (no PEDAL)", baseRes))
	var bf2, bf3 []osu.P2PResult
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		res, err := runOne(gen, hwmodel.SoC, false)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, latencyRow(gen.String(), "SoC_SZ3", res))
		if gen == hwmodel.BlueField2 {
			bf2 = res
		} else {
			bf3 = res
		}
	}
	// Reported at the largest message, where SZ3 compute (not the
	// baseline's fixed init) dominates — the paper's ~47-48% regime. At
	// small sizes the baseline's per-message init makes the reduction
	// approach 100%, which is a different effect than Fig. 10f plots.
	last := len(baseRes) - 1
	t.Metrics["bf2_sz3_latency_reduction_vs_baseline"] =
		1 - float64(bf2[last].Latency)/float64(baseRes[last].Latency)
	t.Metrics["bf3_sz3_latency_reduction_vs_baseline"] =
		1 - float64(bf3[last].Latency)/float64(baseRes[last].Latency)
	return t, nil
}

// bcastSizes are the paper's Fig. 11 sizes: 5.1 (small), 20.6 (medium)
// and 48.8 MB (large).
func bcastSizes(o Options) []int {
	if o.Quick {
		return []int{1 << 20, 4 << 20}
	}
	return []int{51 * (1 << 20) / 10, 206 * (1 << 20) / 10, 488 * (1 << 20) / 10}
}

// Fig11 reproduces the four-node MPI_Bcast comparison across designs and
// generations.
func Fig11(o Options) (Table, error) {
	t := Table{
		ID: "fig11", Title: "MPI Broadcast with four nodes",
		Columns: append([]string{"Gen", "Design"}, sizeCols(bcastSizes(o))...),
		Metrics: map[string]float64{},
	}
	payload := losslessPayload(o)
	iters := o.iters()
	runOne := func(gen hwmodel.Generation, d core.Design, baseline bool) ([]osu.BcastResult, error) {
		return osu.RunBcast(osu.BcastConfig{
			Nodes:      4,
			Sizes:      bcastSizes(o),
			Iterations: iters,
			Payload:    payload,
			World: mpi.WorldOptions{
				Generation: gen,
				Baseline:   baseline,
				Compression: &mpi.CompressionConfig{
					Design: d,
				},
			},
		})
	}
	baseRes, err := runOne(hwmodel.BlueField2, core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}, true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, bcastRow("BlueField-2", "Baseline (no PEDAL)", baseRes))
	var bf2CE, bf2SoC, bf3SoC []osu.BcastResult
	for _, gen := range []hwmodel.Generation{hwmodel.BlueField2, hwmodel.BlueField3} {
		for _, d := range core.LosslessDesigns() {
			res, err := runOne(gen, d, false)
			if err != nil {
				return t, fmt.Errorf("%v %v: %w", gen, d, err)
			}
			t.Rows = append(t.Rows, bcastRow(gen.String(), d.String(), res))
			switch {
			case gen == hwmodel.BlueField2 && d.String() == "C-Engine_DEFLATE":
				bf2CE = res
			case gen == hwmodel.BlueField2 && d.String() == "SoC_DEFLATE":
				bf2SoC = res
			case gen == hwmodel.BlueField3 && d.String() == "SoC_DEFLATE":
				bf3SoC = res
			}
		}
	}
	// "Up to" = best across the size sweep (paper: ≤68× / ≈49%).
	best, bestRed := 0.0, 0.0
	for i := range baseRes {
		if r := float64(baseRes[i].Latency) / float64(bf2CE[i].Latency); r > best {
			best = r
		}
		if r := 1 - float64(bf3SoC[i].Latency)/float64(bf2SoC[i].Latency); r > bestRed {
			bestRed = r
		}
	}
	t.Metrics["bf2_cengine_bcast_speedup_vs_baseline"] = best
	t.Metrics["bf3_soc_bcast_reduction_vs_bf2_soc"] = bestRed
	return t, nil
}

func sizeCols(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%s MB (ms)", mb(s))
	}
	return out
}

func latencyRow(gen, design string, res []osu.P2PResult) []string {
	row := []string{gen, design}
	for _, r := range res {
		row = append(row, ms(r.Latency))
	}
	return row
}

func bcastRow(gen, design string, res []osu.BcastResult) []string {
	row := []string{gen, design}
	for _, r := range res {
		row = append(row, ms(r.Latency))
	}
	return row
}
