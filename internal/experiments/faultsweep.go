package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"pedal/internal/core"
	"pedal/internal/faults"
	"pedal/internal/hwmodel"
	"pedal/internal/stats"
)

// ExtFaults measures availability and correctness under injected
// C-Engine faults: a compress/decompress sweep on the BlueField-2
// DEFLATE C-Engine design across fault scenarios, reporting how many
// operations completed byte-identically and which resilience machinery
// (retries, checksum verification, circuit breaker, SoC degradation)
// fired. The headline property is in the OK and DataErr columns: every
// operation must survive every scenario with zero data errors.
func ExtFaults(o Options) (Table, error) {
	t := Table{
		ID: "ext-faults", Title: "Availability under injected C-Engine faults (BF2, DEFLATE C-Engine design)",
		Columns: []string{"Scenario", "Ops", "OK", "DataErr", "Retries", "Timeouts", "Corrupt", "EngFail", "Trips", "Recov", "Degraded", "Virtual(ms)"},
		Metrics: map[string]float64{},
	}
	ops := 1000
	if o.Quick {
		ops = 250
	}
	scenarios := []struct {
		name string
		cfg  *faults.Config
	}{
		{"clean", nil},
		{"transient-30%", &faults.Config{Seed: 42, PTransient: 0.30}},
		{"corrupt-10%", &faults.Config{Seed: 43, PCorrupt: 0.10}},
		// The engine fails hard for a while, then recovers: the breaker
		// must trip, degrade traffic to the SoC, and re-close on a
		// successful probe once the 10-failure outage ends.
		{"outage-recover", &faults.Config{Seed: 44, PPersistent: 1.0, MaxInjections: 10}},
		{"persistent", &faults.Config{Seed: 45, PPersistent: 1.0}},
	}
	design := core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine}
	payload := bytes.Repeat([]byte("pedal fault sweep payload: compressible text block / "), 76) // ≈4 KiB
	for _, sc := range scenarios {
		var inj *faults.Injector
		if sc.cfg != nil {
			inj = faults.NewInjector(*sc.cfg)
		}
		lib, err := core.Init(core.Options{
			Generation:    hwmodel.BlueField2,
			FaultInjector: inj,
			Resilience:    &core.ResilienceOptions{BreakerThreshold: 3, BreakerProbeEvery: 16},
		})
		if err != nil {
			return t, err
		}
		dataErrs, opErrs := 0, 0
		for i := 0; i < ops; i++ {
			// Stamp the op index so every message is distinct.
			binary.LittleEndian.PutUint64(payload[:8], uint64(i))
			msg, _, err := lib.Compress(design, core.TypeBytes, payload)
			if err != nil {
				opErrs++
				continue
			}
			out, _, err := lib.Decompress(hwmodel.CEngine, core.TypeBytes, msg, len(payload)+64)
			if err != nil {
				opErrs++
			} else if !bytes.Equal(out, payload) {
				dataErrs++
			}
			lib.Release(msg)
		}
		tb := lib.TotalBreakdown()
		count := func(k stats.Counter) uint64 { return tb.Count(k) }
		t.Rows = append(t.Rows, []string{
			sc.name, fmt.Sprint(ops), fmt.Sprint(ops - opErrs - dataErrs), fmt.Sprint(dataErrs),
			fmt.Sprint(count(stats.CounterRetries)), fmt.Sprint(count(stats.CounterTimeouts)),
			fmt.Sprint(count(stats.CounterCorruptions)), fmt.Sprint(count(stats.CounterEngineFailures)),
			fmt.Sprint(count(stats.CounterBreakerTrips)), fmt.Sprint(count(stats.CounterBreakerRecoveries)),
			fmt.Sprint(count(stats.CounterDegradedOps)),
			ms(tb.Get(stats.PhaseCompress) + tb.Get(stats.PhaseDecompress) + tb.Get(stats.PhaseRetry)),
		})
		key := func(s string) string { return sc.name + "_" + s }
		t.Metrics[key("data_errors")] = float64(dataErrs)
		t.Metrics[key("op_errors")] = float64(opErrs)
		t.Metrics[key("retries")] = float64(count(stats.CounterRetries))
		t.Metrics[key("corruptions")] = float64(count(stats.CounterCorruptions))
		t.Metrics[key("breaker_trips")] = float64(count(stats.CounterBreakerTrips))
		t.Metrics[key("breaker_recoveries")] = float64(count(stats.CounterBreakerRecoveries))
		t.Metrics[key("degraded_ops")] = float64(count(stats.CounterDegradedOps))
		lib.Finalize()
	}
	return t, nil
}
