package experiments

import "testing"

// TestExtEngineFaultsSoak runs the engine fault-domain chaos soak at
// full scale and asserts the PR's acceptance criteria: ≥1000 operations
// across serial and pipelined paths under stall/wedge/reset-fail
// injection, zero data corruption, every operation succeeding (possibly
// via journaled SoC replay) or returning a typed error, the engine
// returning to live after every successful hot-reset, exhausted resets
// degrading it permanently, and bounded virtual-time overhead.
func TestExtEngineFaultsSoak(t *testing.T) {
	tb, err := ExtEngineFaults(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	m := tb.Metrics

	scenarios := []string{"clean", "stall-3%", "wedge-burst", "stall-wedge-mix", "reset-flaky", "reset-exhaust"}
	total := 0.0
	for _, sc := range scenarios {
		key := func(s string) string { return sc + "_" + s }
		total += m[key("ops")]
		// The headline property: zero data errors and zero op errors
		// everywhere — every operation survived, via the engine or via
		// journal replay on the SoC.
		if got := m[key("data_errors")]; got != 0 {
			t.Errorf("%s: %v data errors", sc, got)
		}
		if got := m[key("op_errors")]; got != 0 {
			t.Errorf("%s: %v op errors", sc, got)
		}
		// Every watchdog-failed job must have been replayed: lost jobs
		// and SoC replays balance.
		if m[key("lost_jobs")] != m[key("jobs_replayed")] {
			t.Errorf("%s: %v lost jobs but %v replays (dropped work)",
				sc, m[key("lost_jobs")], m[key("jobs_replayed")])
		}
	}
	if total < 1000 {
		t.Errorf("total soak ops %v < 1000", total)
	}

	// Clean baseline: the armed watchdog must not misfire.
	if m["clean_stalls"] != 0 || m["clean_wedges"] != 0 {
		t.Errorf("clean scenario misfired: %v stalls, %v wedges",
			m["clean_stalls"], m["clean_wedges"])
	}

	// Stall scenario: the watchdog actually detected stalls and the
	// journal replayed them, with bounded virtual-time overhead versus
	// the clean baseline (recovery must not wreck the cost model).
	if m["stall-3%_stalls"] == 0 {
		t.Error("stall scenario detected no stalls")
	}
	if m["stall-3%_jobs_replayed"] == 0 {
		t.Error("stall scenario replayed no jobs")
	}
	if clean := m["clean_virtual_ms"]; m["stall-3%_virtual_ms"] > 3*clean {
		t.Errorf("stall recovery virtual time %vms > 3x clean baseline %vms",
			m["stall-3%_virtual_ms"], clean)
	}

	// Wedge scenario: wedges were declared, every hot-reset succeeded,
	// and the engine ended live.
	if m["wedge-burst_wedges"] == 0 {
		t.Error("wedge scenario declared no wedges")
	}
	if m["wedge-burst_resets"] != m["wedge-burst_wedges"] {
		t.Errorf("wedge scenario: %v wedges but %v resets",
			m["wedge-burst_wedges"], m["wedge-burst_resets"])
	}
	if m["wedge-burst_state_live"] != 1 {
		t.Error("wedge scenario: engine did not return to live after hot-reset")
	}

	// Flaky resets: the recovery machinery was exercised and the engine
	// still ended in a well-defined state (live after retried resets, or
	// degraded if an unlucky attempt run exhausted the budget — never
	// wedged or lost).
	if m["reset-flaky_wedges"] == 0 {
		t.Error("reset-flaky scenario declared no wedges")
	}
	if m["reset-flaky_state_live"]+m["reset-flaky_state_degraded"] != 1 {
		t.Error("reset-flaky scenario ended in an undefined engine state")
	}

	// Exhausted resets: every attempt failed, the engine was declared
	// permanently degraded, and traffic kept flowing on the SoC.
	if m["reset-exhaust_reset_failures"] == 0 {
		t.Error("reset-exhaust scenario recorded no reset failures")
	}
	if m["reset-exhaust_state_degraded"] != 1 {
		t.Error("reset-exhaust scenario did not degrade the engine permanently")
	}
	if m["reset-exhaust_degraded_ops"] == 0 {
		t.Error("reset-exhaust scenario routed no SoC-degraded operations")
	}
}
