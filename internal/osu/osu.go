// Package osu implements benchmark loops modelled on the OSU
// Micro-Benchmarks the paper uses in §V-D and §V-E: point-to-point
// latency (osu_latency) and broadcast latency (osu_bcast), run over the
// simulated MPI runtime with PEDAL compression designs.
//
// Latencies are virtual-time results from the calibrated hardware model:
// the shape of the paper's Figs. 10-11 (who wins, by what factor) is the
// reproduction target, not absolute silicon numbers.
package osu

import (
	"fmt"
	"sync"
	"time"

	"pedal/internal/mpi"
)

// P2PConfig parameterises a point-to-point latency run.
type P2PConfig struct {
	// World configures the runtime (generation, compression design,
	// baseline mode).
	World mpi.WorldOptions
	// Sizes are the message sizes to sweep.
	Sizes []int
	// Iterations per size (after one warmup); zero means 4.
	Iterations int
	// Payload generates the message content for a size; nil means
	// moderately compressible text.
	Payload func(size int) []byte
}

// P2PResult is one point of an osu_latency sweep.
type P2PResult struct {
	Size int
	// Latency is the modelled one-way latency (virtual time).
	Latency time.Duration
	// Wall is the real wall-clock per iteration (sanity signal only).
	Wall time.Duration
}

// DefaultPayload produces text-like compressible data.
func DefaultPayload(size int) []byte {
	unit := []byte("<packet seq=\"0017\"><payload>bench data for the latency sweep</payload></packet>\n")
	out := make([]byte, size)
	for i := 0; i < size; i += len(unit) {
		copy(out[i:], unit)
	}
	return out
}

// RunLatency executes the osu_latency ping-pong for every size and
// returns per-size one-way latencies.
func RunLatency(cfg P2PConfig) ([]P2PResult, error) {
	iters := cfg.Iterations
	if iters == 0 {
		iters = 4
	}
	payloadFn := cfg.Payload
	if payloadFn == nil {
		payloadFn = DefaultPayload
	}
	results := make([]P2PResult, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		comms, err := mpi.NewWorld(2, cfg.World)
		if err != nil {
			return nil, err
		}
		payload := payloadFn(size)
		wallStart := time.Now()
		if err := pingPong(comms, payload, iters); err != nil {
			for _, c := range comms {
				c.Close()
			}
			return nil, fmt.Errorf("osu: size %d: %w", size, err)
		}
		wall := time.Since(wallStart)
		// One-way latency: rank 0's virtual clock accumulated the full
		// ping-pong round trips.
		total := comms[0].Clock().Now()
		results = append(results, P2PResult{
			Size:    size,
			Latency: total / time.Duration(2*iters),
			Wall:    wall / time.Duration(iters),
		})
		for _, c := range comms {
			c.Close()
		}
	}
	return results, nil
}

func pingPong(comms []*mpi.Comm, payload []byte, iters int) error {
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, c := range comms {
		wg.Add(1)
		go func(c *mpi.Comm) {
			defer wg.Done()
			max := len(payload) + 1024
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					if err := c.Send(1, i, payload); err != nil {
						errs <- err
						return
					}
					if _, err := c.Recv(1, i, max); err != nil {
						errs <- err
						return
					}
				} else {
					got, err := c.Recv(0, i, max)
					if err != nil {
						errs <- err
						return
					}
					if err := c.Send(0, i, got); err != nil {
						errs <- err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// BWConfig parameterises an osu_bw-style bandwidth run: windows of
// back-to-back nonblocking sends, acknowledged once per window.
type BWConfig struct {
	World mpi.WorldOptions
	// Sizes are the message sizes to sweep.
	Sizes []int
	// WindowSize is the number of in-flight messages per window; zero
	// means 8 (osu_bw uses 64; the simulated fabric queues are smaller).
	WindowSize int
	// Windows per size; zero means 3.
	Windows int
	// Payload as in P2PConfig.
	Payload func(size int) []byte
}

// BWResult is one point of an osu_bw sweep.
type BWResult struct {
	Size int
	// Bandwidth is the modelled payload bandwidth in MB/s (uncompressed
	// application bytes over virtual time).
	Bandwidth float64
	Wall      time.Duration
}

// RunBandwidth executes the osu_bw pattern: the sender issues a window
// of nonblocking sends, the receiver posts matching receives and replies
// with one small ack per window.
func RunBandwidth(cfg BWConfig) ([]BWResult, error) {
	window := cfg.WindowSize
	if window == 0 {
		window = 8
	}
	windows := cfg.Windows
	if windows == 0 {
		windows = 3
	}
	payloadFn := cfg.Payload
	if payloadFn == nil {
		payloadFn = DefaultPayload
	}
	results := make([]BWResult, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		comms, err := mpi.NewWorld(2, cfg.World)
		if err != nil {
			return nil, err
		}
		payload := payloadFn(size)
		wallStart := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, 2)
		wg.Add(2)
		go func() { // sender
			defer wg.Done()
			for w := 0; w < windows; w++ {
				reqs := make([]*mpi.Request, window)
				for i := range reqs {
					r, err := comms[0].Isend(1, w*window+i, payload)
					if err != nil {
						errs <- err
						return
					}
					reqs[i] = r
				}
				if err := mpi.Waitall(reqs...); err != nil {
					errs <- err
					return
				}
				if _, err := comms[0].Recv(1, 1<<29, 16); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() { // receiver
			defer wg.Done()
			for w := 0; w < windows; w++ {
				for i := 0; i < window; i++ {
					if _, err := comms[1].Recv(0, w*window+i, size+1024); err != nil {
						errs <- err
						return
					}
				}
				if err := comms[1].Send(0, 1<<29, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			for _, c := range comms {
				c.Close()
			}
			return nil, fmt.Errorf("osu: bw size %d: %w", size, err)
		}
		elapsed := comms[1].Clock().Now()
		totalBytes := float64(size) * float64(window*windows)
		bw := 0.0
		if elapsed > 0 {
			bw = totalBytes / elapsed.Seconds() / (1 << 20)
		}
		results = append(results, BWResult{
			Size:      size,
			Bandwidth: bw,
			Wall:      time.Since(wallStart),
		})
		for _, c := range comms {
			c.Close()
		}
	}
	return results, nil
}

// BcastConfig parameterises an osu_bcast run.
type BcastConfig struct {
	World mpi.WorldOptions
	// Nodes is the number of ranks (the paper uses four).
	Nodes int
	// Sizes are the broadcast payload sizes.
	Sizes []int
	// Iterations per size; zero means 3.
	Iterations int
	// Payload as in P2PConfig.
	Payload func(size int) []byte
}

// BcastResult is one point of an osu_bcast sweep.
type BcastResult struct {
	Size int
	// Latency is the modelled time until the slowest rank completed the
	// broadcast.
	Latency time.Duration
	Wall    time.Duration
}

// RunBcast executes MPI_Bcast sweeps and reports the completion time of
// the slowest rank per iteration (osu_bcast's max-latency metric).
func RunBcast(cfg BcastConfig) ([]BcastResult, error) {
	iters := cfg.Iterations
	if iters == 0 {
		iters = 3
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 4
	}
	payloadFn := cfg.Payload
	if payloadFn == nil {
		payloadFn = DefaultPayload
	}
	results := make([]BcastResult, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		comms, err := mpi.NewWorld(nodes, cfg.World)
		if err != nil {
			return nil, err
		}
		payload := payloadFn(size)
		wallStart := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, nodes)
		for _, c := range comms {
			wg.Add(1)
			go func(c *mpi.Comm) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					var in []byte
					if c.Rank() == 0 {
						in = payload
					}
					if _, err := c.Bcast(0, in); err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			for _, c := range comms {
				c.Close()
			}
			return nil, fmt.Errorf("osu: bcast size %d: %w", size, err)
		}
		wall := time.Since(wallStart)
		var slowest time.Duration
		for _, c := range comms {
			if t := c.Clock().Now(); t > slowest {
				slowest = t
			}
		}
		results = append(results, BcastResult{
			Size:    size,
			Latency: slowest / time.Duration(iters),
			Wall:    wall / time.Duration(iters),
		})
		for _, c := range comms {
			c.Close()
		}
	}
	return results, nil
}
