package osu

import (
	"testing"

	"pedal/internal/core"
	"pedal/internal/hwmodel"
	"pedal/internal/mpi"
)

func TestLatencySweepShape(t *testing.T) {
	res, err := RunLatency(P2PConfig{
		Sizes:      []int{4 << 10, 256 << 10, 4 << 20},
		Iterations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Latency <= res[i-1].Latency {
			t.Fatalf("latency not increasing with size: %v then %v", res[i-1].Latency, res[i].Latency)
		}
	}
}

func TestLatencyCEngineBeatsSoCOnBF2(t *testing.T) {
	design := func(e hwmodel.Engine) mpi.WorldOptions {
		return mpi.WorldOptions{
			Generation: hwmodel.BlueField2,
			Compression: &mpi.CompressionConfig{
				Design: core.Design{Algo: core.AlgoDeflate, Engine: e},
			},
		}
	}
	soc, err := RunLatency(P2PConfig{World: design(hwmodel.SoC), Sizes: []int{5 << 20}, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := RunLatency(P2PConfig{World: design(hwmodel.CEngine), Sizes: []int{5 << 20}, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(soc[0].Latency) / float64(ce[0].Latency); ratio < 10 {
		t.Fatalf("C-Engine vs SoC latency ratio = %.1f, want large (Fig. 10)", ratio)
	}
}

func TestBaselineVsPedalP2P(t *testing.T) {
	world := func(baseline bool) mpi.WorldOptions {
		return mpi.WorldOptions{
			Generation: hwmodel.BlueField2,
			Baseline:   baseline,
			Compression: &mpi.CompressionConfig{
				Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine},
			},
		}
	}
	base, err := RunLatency(P2PConfig{World: world(true), Sizes: []int{5 << 20}, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	ped, err := RunLatency(P2PConfig{World: world(false), Sizes: []int{5 << 20}, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(base[0].Latency) / float64(ped[0].Latency)
	t.Logf("PEDAL speedup over baseline at 5 MiB: %.1fx", speedup)
	if speedup < 20 {
		t.Fatalf("speedup %.1f too small (paper: up to 88x)", speedup)
	}
}

func TestBcastSweep(t *testing.T) {
	res, err := RunBcast(BcastConfig{
		Nodes:      4,
		Sizes:      []int{1 << 20, 8 << 20},
		Iterations: 2,
		World: mpi.WorldOptions{
			Compression: &mpi.CompressionConfig{
				Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[1].Latency <= res[0].Latency {
		t.Fatalf("bcast sweep shape wrong: %+v", res)
	}
}

func TestBcastBaselineSlower(t *testing.T) {
	cfgFor := func(baseline bool) BcastConfig {
		return BcastConfig{
			Nodes:      4,
			Sizes:      []int{5 << 20},
			Iterations: 2,
			World: mpi.WorldOptions{
				Baseline: baseline,
				Compression: &mpi.CompressionConfig{
					Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine},
				},
			},
		}
	}
	base, err := RunBcast(cfgFor(true))
	if err != nil {
		t.Fatal(err)
	}
	ped, err := RunBcast(cfgFor(false))
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(base[0].Latency) / float64(ped[0].Latency)
	t.Logf("Bcast PEDAL speedup over baseline: %.1fx", speedup)
	if speedup < 10 {
		t.Fatalf("bcast speedup %.1f too small (paper: up to 68x)", speedup)
	}
}

func TestDefaultPayloadCompressible(t *testing.T) {
	p := DefaultPayload(1 << 20)
	if len(p) != 1<<20 {
		t.Fatal("size wrong")
	}
}

func TestBandwidthSweep(t *testing.T) {
	res, err := RunBandwidth(BWConfig{
		Sizes:   []int{256 << 10, 4 << 20},
		Windows: 2,
		World: mpi.WorldOptions{
			Compression: &mpi.CompressionConfig{
				Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.Bandwidth <= 0 {
			t.Fatalf("size %d: bandwidth %v", r.Size, r.Bandwidth)
		}
	}
	// Bandwidth should improve with message size (fixed costs amortise).
	if res[1].Bandwidth <= res[0].Bandwidth {
		t.Fatalf("bandwidth not increasing: %.1f then %.1f MB/s", res[0].Bandwidth, res[1].Bandwidth)
	}
}

func TestBandwidthCompressionWins(t *testing.T) {
	// On highly compressible payloads the C-Engine design moves more
	// application bytes per second than the uncompressed transfer once
	// messages are large (the effective-bandwidth argument of the
	// paper's motivation).
	run := func(opts mpi.WorldOptions) float64 {
		res, err := RunBandwidth(BWConfig{
			Sizes:   []int{32 << 20},
			Windows: 2,
			World:   opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Bandwidth
	}
	plain := run(mpi.WorldOptions{})
	compressed := run(mpi.WorldOptions{
		Compression: &mpi.CompressionConfig{
			Design: core.Design{Algo: core.AlgoDeflate, Engine: hwmodel.CEngine},
		},
	})
	t.Logf("plain %.0f MB/s, compressed %.0f MB/s", plain, compressed)
	if compressed <= 0 || plain <= 0 {
		t.Fatal("zero bandwidth")
	}
}
