// Package simclock provides the deterministic virtual time base used by
// the BlueField hardware model. Real silicon timing cannot be reproduced
// on commodity x86, so every simulated operation computes a virtual
// duration from the calibrated cost model (internal/hwmodel) and advances
// a virtual clock. Benchmarks report virtual time for paper-figure
// reproduction alongside real wall-clock time.
package simclock

import (
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock. It is safe for
// concurrent use; concurrent work tracks (e.g. SoC vs C-Engine activity)
// can be modelled with AdvanceTo, which implements a max-merge the way
// vector clocks do.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// New returns a clock at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Negative d panics: virtual time never rewinds.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic("simclock: negative advance")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock to t if t is later than the current time and
// returns the resulting time. Used to merge completion times of parallel
// activities: a consumer that depends on two tracks advances to the max.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero (between benchmark iterations).
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}
