package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("got %v", got)
	}
	c.Advance(3 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("got %v", c.Now())
	}
}

func TestAdvanceToMaxMerge(t *testing.T) {
	c := New()
	c.Advance(10 * time.Millisecond)
	c.AdvanceTo(5 * time.Millisecond) // earlier: no-op
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("rewound to %v", c.Now())
	}
	c.AdvanceTo(20 * time.Millisecond)
	if c.Now() != 20*time.Millisecond {
		t.Fatalf("got %v", c.Now())
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	New().Advance(-1)
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset did not zero the clock")
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8*1000*time.Microsecond {
		t.Fatalf("lost updates: %v", c.Now())
	}
}
