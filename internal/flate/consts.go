// Package flate implements the DEFLATE compressed data format (RFC 1951)
// from scratch: an LZ77 + canonical-Huffman compressor emitting stored,
// fixed-Huffman and dynamic-Huffman blocks, and a table-driven
// decompressor. Output interoperates with any RFC 1951 implementation
// (verified against Go's compress/flate in the tests).
package flate

const (
	endOfBlock = 256

	// numLitLenSyms is the literal/length alphabet size (RFC 1951 §3.2.5).
	numLitLenSyms = 286
	// numDistSyms is the distance alphabet size.
	numDistSyms = 30
	// numCLCSyms is the code-length-code alphabet size (§3.2.7).
	numCLCSyms = 19

	maxCodeBits = 15
	maxCLCBits  = 7

	// maxStoredBlock is the largest stored-block payload (16-bit LEN).
	maxStoredBlock = 65535
)

// lengthCodes maps match length (3..258) to (code, extraBits, base).
// RFC 1951 §3.2.5, codes 257..285.
var lengthBase = [29]int{
	3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
	35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
}

var lengthExtra = [29]uint{
	0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
}

// distBase and distExtra describe distance codes 0..29 (§3.2.5).
var distBase = [30]int{
	1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
	257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193,
	12289, 16385, 24577,
}

var distExtra = [30]uint{
	0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
	7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
}

// clcOrder is the permuted order in which code-length-code lengths are
// stored in a dynamic block header (§3.2.7).
var clcOrder = [numCLCSyms]int{
	16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
}

// lengthCode returns the length symbol (0-based, add 257) for a match
// length in [3, 258].
var lengthCodeOf = func() [259]uint8 {
	var t [259]uint8
	code := 0
	for l := 3; l <= 258; l++ {
		for code < 28 && l >= lengthBase[code+1] {
			code++
		}
		t[l] = uint8(code)
	}
	t[258] = 28
	return t
}()

// distCodeOf returns the distance symbol for a distance in [1, 32768].
func distCodeOf(d int) int {
	code := 0
	for code < 29 && d >= distBase[code+1] {
		code++
	}
	return code
}

// fixedLitLenLengths are the fixed-Huffman literal/length code lengths
// (§3.2.6).
var fixedLitLenLengths = func() []uint8 {
	l := make([]uint8, 288)
	for i := 0; i <= 143; i++ {
		l[i] = 8
	}
	for i := 144; i <= 255; i++ {
		l[i] = 9
	}
	for i := 256; i <= 279; i++ {
		l[i] = 7
	}
	for i := 280; i <= 287; i++ {
		l[i] = 8
	}
	return l
}()

// fixedDistLengths are the fixed-Huffman distance code lengths (all 5).
var fixedDistLengths = func() []uint8 {
	l := make([]uint8, 30)
	for i := range l {
		l[i] = 5
	}
	return l
}()
