package flate

import (
	"pedal/internal/bits"
	"pedal/internal/lz77"
)

// Strategy tunes the compressor the way zlib's Z_HUFFMAN_ONLY / Z_RLE /
// Z_FIXED strategies do: trading ratio for speed or for predictable
// output shapes. All strategies produce standard RFC 1951 streams.
type Strategy uint8

// Strategies.
const (
	// StrategyDefault is the full LZ77 + adaptive-block compressor.
	StrategyDefault Strategy = iota
	// StrategyHuffmanOnly skips string matching entirely: literals plus
	// entropy coding. Fast, and effective on data with skewed byte
	// histograms but no repeats (zlib's Z_HUFFMAN_ONLY).
	StrategyHuffmanOnly
	// StrategyRLE restricts matches to distance one: run-length
	// encoding with entropy coding (zlib's Z_RLE), good for bitmaps.
	StrategyRLE
	// StrategyFixed forces fixed-Huffman blocks: no per-block code
	// tables, minimum latency and deterministic block headers (zlib's
	// Z_FIXED).
	StrategyFixed
)

// CompressStrategy deflates src with an explicit strategy. Level applies
// to the match-finder effort where relevant.
func CompressStrategy(src []byte, level int, strategy Strategy) []byte {
	if strategy == StrategyDefault {
		return Compress(src, level)
	}
	w := bits.NewWriter(len(src)/2 + 64)
	c, release := newCompressor(w, level)
	defer release()
	var tokens []lz77.Token
	switch strategy {
	case StrategyHuffmanOnly:
		tokens = literalTokens(src)
	case StrategyRLE:
		tokens = rleTokens(src)
	case StrategyFixed:
		tokens = c.s.matcher.Tokens(src, lz77.LevelParams(level), nil)
		c.writeFixedBlock(tokens, true)
		return w.Bytes()
	default:
		return Compress(src, level)
	}
	// Entropy-coded strategies still pick the cheapest block encoding.
	c.writeBlocksOf(tokens, src)
	return w.Bytes()
}

// writeBlocksOf splits a token stream into blocks and emits them,
// sharing the per-block encoding decision with the default path.
func (c *compressor) writeBlocksOf(tokens []lz77.Token, src []byte) {
	if len(tokens) == 0 {
		c.writeFixedBlock(nil, true)
		return
	}
	off := 0
	for start := 0; start < len(tokens); start += blockTokens {
		end := start + blockTokens
		if end > len(tokens) {
			end = len(tokens)
		}
		blk := tokens[start:end]
		span := 0
		for _, t := range blk {
			if t.IsLiteral() {
				span++
			} else {
				span += int(t.Len)
			}
		}
		c.writeBlock(blk, src[off:off+span], end == len(tokens))
		off += span
	}
}

// literalTokens emits every byte as a literal (Huffman-only).
func literalTokens(src []byte) []lz77.Token {
	tokens := make([]lz77.Token, len(src))
	for i, b := range src {
		tokens[i] = lz77.Token{Lit: b}
	}
	return tokens
}

// rleTokens finds distance-1 runs only.
func rleTokens(src []byte) []lz77.Token {
	var tokens []lz77.Token
	i := 0
	for i < len(src) {
		// A run of src[i] starting at i+1.
		runEnd := i + 1
		for runEnd < len(src) && src[runEnd] == src[i] {
			runEnd++
		}
		runLen := runEnd - (i + 1)
		tokens = append(tokens, lz77.Token{Lit: src[i]})
		i++
		for runLen >= lz77.MinMatch {
			l := runLen
			if l > lz77.MaxMatch {
				l = lz77.MaxMatch
			}
			tokens = append(tokens, lz77.Token{Len: uint16(l), Dist: 1})
			runLen -= l
			i += l
		}
		for ; runLen > 0; runLen-- {
			tokens = append(tokens, lz77.Token{Lit: src[i]})
			i++
		}
	}
	return tokens
}
