package flate

import (
	"errors"
	"fmt"
	"sync"

	"pedal/internal/bits"
	"pedal/internal/huffman"
)

// Decompression errors.
var (
	ErrCorrupt   = errors.New("flate: corrupt stream")
	ErrTooLarge  = errors.New("flate: output exceeds limit")
	errBadHeader = errors.New("flate: invalid block header")
)

// DefaultMaxOutput caps decompressed output to defend against decompression
// bombs; callers that know the expected size should pass it explicitly.
const DefaultMaxOutput = 1 << 31

// Decompress inflates a complete RFC 1951 stream.
func Decompress(src []byte) ([]byte, error) {
	return DecompressLimit(src, DefaultMaxOutput)
}

// DecompressLimit inflates src, failing with ErrTooLarge if the output
// would exceed limit bytes.
func DecompressLimit(src []byte, limit int) ([]byte, error) {
	return AppendDecompress(nil, src, limit)
}

// AppendDecompress inflates src, appending the output to dst and
// returning the extended slice. limit caps the total length of the
// returned slice (existing dst content included). When dst is a
// zero-length slice with capacity for the expected output the call
// avoids growth reallocations entirely, which is how the chunked
// pipeline decodes each chunk straight into its slot of the
// preallocated reassembly buffer. Existing dst bytes are visible to
// back-references, i.e. they act as a preset dictionary.
func AppendDecompress(dst, src []byte, limit int) ([]byte, error) {
	s := infPool.Get().(*infScratch)
	defer infPool.Put(s)
	s.r.Reset(src)
	r := &s.r
	out := dst
	for {
		final, err := r.ReadBool()
		if err != nil {
			return nil, fmt.Errorf("%w: missing block header", ErrCorrupt)
		}
		btype, err := r.ReadBits(2)
		if err != nil {
			return nil, fmt.Errorf("%w: missing block type", ErrCorrupt)
		}
		switch btype {
		case 0:
			out, err = inflateStored(r, out, limit)
		case 1:
			out, err = inflateHuffman(r, out, fixedLitDecoder(), fixedDistDecoder(), limit)
		case 2:
			var lit, dist *huffman.Decoder
			lit, dist, err = s.readDynamicHeader(r)
			if err == nil {
				out, err = inflateHuffman(r, out, lit, dist, limit)
			}
		default:
			return nil, errBadHeader
		}
		if err != nil {
			return nil, err
		}
		if final {
			return out, nil
		}
	}
}

// infScratch bundles the per-call decompression state — bit reader,
// dynamic-table decoders and their length arrays — so the steady-state
// inflate path allocates nothing. Pooled because chunks decode
// concurrently on the pipeline workers.
type infScratch struct {
	r          bits.Reader
	lit        huffman.Decoder
	dist       huffman.Decoder
	clc        huffman.Decoder
	lengths    [numLitLenSyms + numDistSyms]uint8
	clcLengths [numCLCSyms]uint8
}

var infPool = sync.Pool{New: func() any { return new(infScratch) }}

// The fixed decoders are shared across goroutines (the pipeline decodes
// chunks concurrently), so they are built under a sync.Once rather than
// the racy lazy-nil pattern.
var (
	fixedDecOnce sync.Once
	fixedLit     *huffman.Decoder
	fixedDist    *huffman.Decoder
)

func buildFixedDecoders() {
	var err error
	// Literal decoders are paired: symbols below 256 (plain literals, no
	// extra bits) may fuse two-per-lookup. Length and distance symbols
	// trail extra bits, so they never fuse.
	if fixedLit, err = huffman.NewPairedDecoder(fixedLitLenLengths, endOfBlock); err != nil {
		panic(err)
	}
	if fixedDist, err = huffman.NewDecoder(fixedDistLengths); err != nil {
		panic(err)
	}
}

func fixedLitDecoder() *huffman.Decoder {
	fixedDecOnce.Do(buildFixedDecoders)
	return fixedLit
}

func fixedDistDecoder() *huffman.Decoder {
	fixedDecOnce.Do(buildFixedDecoders)
	return fixedDist
}

func inflateStored(r *bits.Reader, out []byte, limit int) ([]byte, error) {
	r.AlignByte()
	var hdr [4]byte
	if err := r.ReadBytes(hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated stored header", ErrCorrupt)
	}
	n := int(hdr[0]) | int(hdr[1])<<8
	nlen := int(hdr[2]) | int(hdr[3])<<8
	if n != ^nlen&0xFFFF {
		return nil, fmt.Errorf("%w: stored LEN/NLEN mismatch", ErrCorrupt)
	}
	if len(out)+n > limit {
		return nil, ErrTooLarge
	}
	start := len(out)
	if cap(out)-start >= n {
		out = out[:start+n]
	} else {
		out = append(out, make([]byte, n)...)
	}
	if err := r.ReadBytes(out[start:]); err != nil {
		return nil, fmt.Errorf("%w: truncated stored data", ErrCorrupt)
	}
	return out, nil
}

func (s *infScratch) readDynamicHeader(r *bits.Reader) (lit, dist *huffman.Decoder, err error) {
	hlit, err := r.ReadBits(5)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: HLIT", ErrCorrupt)
	}
	hdist, err := r.ReadBits(5)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: HDIST", ErrCorrupt)
	}
	hclen, err := r.ReadBits(4)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: HCLEN", ErrCorrupt)
	}
	nlit, ndist, nclc := int(hlit)+257, int(hdist)+1, int(hclen)+4
	if nlit > numLitLenSyms || ndist > numDistSyms {
		return nil, nil, fmt.Errorf("%w: alphabet sizes %d/%d", ErrCorrupt, nlit, ndist)
	}
	clcLengths := s.clcLengths[:]
	for i := range clcLengths {
		clcLengths[i] = 0
	}
	for i := 0; i < nclc; i++ {
		v, err := r.ReadBits(3)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: CLC lengths", ErrCorrupt)
		}
		clcLengths[clcOrder[i]] = uint8(v)
	}
	if err := s.clc.Reset(clcLengths); err != nil {
		return nil, nil, fmt.Errorf("%w: CLC code: %v", ErrCorrupt, err)
	}
	clcDec := &s.clc

	lengths := s.lengths[:nlit+ndist]
	for i := range lengths {
		lengths[i] = 0
	}
	for i := 0; i < len(lengths); {
		sym, err := clcDec.Decode(r)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: CLC symbol: %v", ErrCorrupt, err)
		}
		switch {
		case sym <= 15:
			lengths[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				return nil, nil, fmt.Errorf("%w: repeat with no previous length", ErrCorrupt)
			}
			n, err := r.ReadBits(2)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: repeat bits", ErrCorrupt)
			}
			rep := int(n) + 3
			if i+rep > len(lengths) {
				return nil, nil, fmt.Errorf("%w: repeat overruns alphabet", ErrCorrupt)
			}
			v := lengths[i-1]
			for k := 0; k < rep; k++ {
				lengths[i] = v
				i++
			}
		case sym == 17 || sym == 18:
			var bitsN uint = 3
			base := 3
			if sym == 18 {
				bitsN, base = 7, 11
			}
			n, err := r.ReadBits(bitsN)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: zero-run bits", ErrCorrupt)
			}
			rep := int(n) + base
			if i+rep > len(lengths) {
				return nil, nil, fmt.Errorf("%w: zero run overruns alphabet", ErrCorrupt)
			}
			i += rep
		default:
			return nil, nil, fmt.Errorf("%w: CLC symbol %d", ErrCorrupt, sym)
		}
	}
	if lengths[endOfBlock] == 0 {
		return nil, nil, fmt.Errorf("%w: end-of-block symbol has no code", ErrCorrupt)
	}
	if err := s.lit.ResetPaired(lengths[:nlit], endOfBlock); err != nil {
		return nil, nil, fmt.Errorf("%w: literal code: %v", ErrCorrupt, err)
	}
	distLens := lengths[nlit:]
	allZero := true
	for _, l := range distLens {
		if l != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		// Block has no distance codes (literal-only). Any distance decode
		// attempt must fail; use a nil decoder.
		return &s.lit, nil, nil
	}
	if err := s.dist.Reset(distLens); err != nil {
		return nil, nil, fmt.Errorf("%w: distance code: %v", ErrCorrupt, err)
	}
	return &s.lit, &s.dist, nil
}

func inflateHuffman(r *bits.Reader, out []byte, lit, dist *huffman.Decoder, limit int) ([]byte, error) {
	for {
		sym, sym2, ok2, err := lit.DecodePair(r)
		if err != nil {
			return nil, fmt.Errorf("%w: literal decode: %v", ErrCorrupt, err)
		}
		if ok2 {
			// Fused path: the decoder only pairs symbols below endOfBlock,
			// so both are plain literals.
			if len(out)+2 > limit {
				return nil, ErrTooLarge
			}
			out = append(out, byte(sym), byte(sym2))
			continue
		}
		switch {
		case sym < endOfBlock:
			if len(out)+1 > limit {
				return nil, ErrTooLarge
			}
			out = append(out, byte(sym))
		case sym == endOfBlock:
			return out, nil
		default:
			lc := sym - 257
			if lc >= len(lengthBase) {
				return nil, fmt.Errorf("%w: length symbol %d", ErrCorrupt, sym)
			}
			length := lengthBase[lc]
			if lengthExtra[lc] > 0 {
				e, err := r.ReadBits(lengthExtra[lc])
				if err != nil {
					return nil, fmt.Errorf("%w: length extra bits", ErrCorrupt)
				}
				length += int(e)
			}
			if dist == nil {
				return nil, fmt.Errorf("%w: match in block with no distance codes", ErrCorrupt)
			}
			dc, err := dist.Decode(r)
			if err != nil {
				return nil, fmt.Errorf("%w: distance decode: %v", ErrCorrupt, err)
			}
			if dc >= len(distBase) {
				return nil, fmt.Errorf("%w: distance symbol %d", ErrCorrupt, dc)
			}
			d := distBase[dc]
			if distExtra[dc] > 0 {
				e, err := r.ReadBits(distExtra[dc])
				if err != nil {
					return nil, fmt.Errorf("%w: distance extra bits", ErrCorrupt)
				}
				d += int(e)
			}
			if d > len(out) {
				return nil, fmt.Errorf("%w: distance %d beyond output (%d bytes)", ErrCorrupt, d, len(out))
			}
			if len(out)+length > limit {
				return nil, ErrTooLarge
			}
			// Word-wide match copy. Non-overlapping spans go through one
			// memmove; overlapping spans (d < length) repeat the available
			// prefix with doubling copies — each pass uses only bytes
			// written by earlier passes, so distance-1 runs still expand
			// correctly while long RLE matches run at memmove speed.
			n0 := len(out)
			start := n0 - d
			out = append(out, make([]byte, length)...)
			if d >= length {
				copy(out[n0:], out[start:start+length])
			} else {
				for pos := n0; pos < len(out); {
					pos += copy(out[pos:], out[start:pos])
				}
			}
		}
	}
}
