package flate

import (
	"errors"
	"fmt"

	"pedal/internal/bits"
	"pedal/internal/huffman"
)

// Decompression errors.
var (
	ErrCorrupt   = errors.New("flate: corrupt stream")
	ErrTooLarge  = errors.New("flate: output exceeds limit")
	errBadHeader = errors.New("flate: invalid block header")
)

// DefaultMaxOutput caps decompressed output to defend against decompression
// bombs; callers that know the expected size should pass it explicitly.
const DefaultMaxOutput = 1 << 31

// Decompress inflates a complete RFC 1951 stream.
func Decompress(src []byte) ([]byte, error) {
	return DecompressLimit(src, DefaultMaxOutput)
}

// DecompressLimit inflates src, failing with ErrTooLarge if the output
// would exceed limit bytes.
func DecompressLimit(src []byte, limit int) ([]byte, error) {
	r := bits.NewReader(src)
	var out []byte
	for {
		final, err := r.ReadBool()
		if err != nil {
			return nil, fmt.Errorf("%w: missing block header", ErrCorrupt)
		}
		btype, err := r.ReadBits(2)
		if err != nil {
			return nil, fmt.Errorf("%w: missing block type", ErrCorrupt)
		}
		switch btype {
		case 0:
			out, err = inflateStored(r, out, limit)
		case 1:
			out, err = inflateHuffman(r, out, fixedLitDecoder(), fixedDistDecoder(), limit)
		case 2:
			var lit, dist *huffman.Decoder
			lit, dist, err = readDynamicHeader(r)
			if err == nil {
				out, err = inflateHuffman(r, out, lit, dist, limit)
			}
		default:
			return nil, errBadHeader
		}
		if err != nil {
			return nil, err
		}
		if final {
			return out, nil
		}
	}
}

var (
	fixedLit  *huffman.Decoder
	fixedDist *huffman.Decoder
)

func fixedLitDecoder() *huffman.Decoder {
	if fixedLit == nil {
		d, err := huffman.NewDecoder(fixedLitLenLengths)
		if err != nil {
			panic(err)
		}
		fixedLit = d
	}
	return fixedLit
}

func fixedDistDecoder() *huffman.Decoder {
	if fixedDist == nil {
		d, err := huffman.NewDecoder(fixedDistLengths)
		if err != nil {
			panic(err)
		}
		fixedDist = d
	}
	return fixedDist
}

func inflateStored(r *bits.Reader, out []byte, limit int) ([]byte, error) {
	r.AlignByte()
	var hdr [4]byte
	if err := r.ReadBytes(hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated stored header", ErrCorrupt)
	}
	n := int(hdr[0]) | int(hdr[1])<<8
	nlen := int(hdr[2]) | int(hdr[3])<<8
	if n != ^nlen&0xFFFF {
		return nil, fmt.Errorf("%w: stored LEN/NLEN mismatch", ErrCorrupt)
	}
	if len(out)+n > limit {
		return nil, ErrTooLarge
	}
	buf := make([]byte, n)
	if err := r.ReadBytes(buf); err != nil {
		return nil, fmt.Errorf("%w: truncated stored data", ErrCorrupt)
	}
	return append(out, buf...), nil
}

func readDynamicHeader(r *bits.Reader) (lit, dist *huffman.Decoder, err error) {
	hlit, err := r.ReadBits(5)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: HLIT", ErrCorrupt)
	}
	hdist, err := r.ReadBits(5)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: HDIST", ErrCorrupt)
	}
	hclen, err := r.ReadBits(4)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: HCLEN", ErrCorrupt)
	}
	nlit, ndist, nclc := int(hlit)+257, int(hdist)+1, int(hclen)+4
	if nlit > numLitLenSyms || ndist > numDistSyms {
		return nil, nil, fmt.Errorf("%w: alphabet sizes %d/%d", ErrCorrupt, nlit, ndist)
	}
	clcLengths := make([]uint8, numCLCSyms)
	for i := 0; i < nclc; i++ {
		v, err := r.ReadBits(3)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: CLC lengths", ErrCorrupt)
		}
		clcLengths[clcOrder[i]] = uint8(v)
	}
	clcDec, err := huffman.NewDecoder(clcLengths)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: CLC code: %v", ErrCorrupt, err)
	}

	lengths := make([]uint8, nlit+ndist)
	for i := 0; i < len(lengths); {
		sym, err := clcDec.Decode(r)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: CLC symbol: %v", ErrCorrupt, err)
		}
		switch {
		case sym <= 15:
			lengths[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				return nil, nil, fmt.Errorf("%w: repeat with no previous length", ErrCorrupt)
			}
			n, err := r.ReadBits(2)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: repeat bits", ErrCorrupt)
			}
			rep := int(n) + 3
			if i+rep > len(lengths) {
				return nil, nil, fmt.Errorf("%w: repeat overruns alphabet", ErrCorrupt)
			}
			v := lengths[i-1]
			for k := 0; k < rep; k++ {
				lengths[i] = v
				i++
			}
		case sym == 17 || sym == 18:
			var bitsN uint = 3
			base := 3
			if sym == 18 {
				bitsN, base = 7, 11
			}
			n, err := r.ReadBits(bitsN)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: zero-run bits", ErrCorrupt)
			}
			rep := int(n) + base
			if i+rep > len(lengths) {
				return nil, nil, fmt.Errorf("%w: zero run overruns alphabet", ErrCorrupt)
			}
			i += rep
		default:
			return nil, nil, fmt.Errorf("%w: CLC symbol %d", ErrCorrupt, sym)
		}
	}
	if lengths[endOfBlock] == 0 {
		return nil, nil, fmt.Errorf("%w: end-of-block symbol has no code", ErrCorrupt)
	}
	lit, err = huffman.NewDecoder(lengths[:nlit])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: literal code: %v", ErrCorrupt, err)
	}
	distLens := lengths[nlit:]
	allZero := true
	for _, l := range distLens {
		if l != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		// Block has no distance codes (literal-only). Any distance decode
		// attempt must fail; use a nil decoder.
		return lit, nil, nil
	}
	dist, err = huffman.NewDecoder(distLens)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: distance code: %v", ErrCorrupt, err)
	}
	return lit, dist, nil
}

func inflateHuffman(r *bits.Reader, out []byte, lit, dist *huffman.Decoder, limit int) ([]byte, error) {
	for {
		sym, err := lit.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("%w: literal decode: %v", ErrCorrupt, err)
		}
		switch {
		case sym < endOfBlock:
			if len(out)+1 > limit {
				return nil, ErrTooLarge
			}
			out = append(out, byte(sym))
		case sym == endOfBlock:
			return out, nil
		default:
			lc := sym - 257
			if lc >= len(lengthBase) {
				return nil, fmt.Errorf("%w: length symbol %d", ErrCorrupt, sym)
			}
			length := lengthBase[lc]
			if lengthExtra[lc] > 0 {
				e, err := r.ReadBits(lengthExtra[lc])
				if err != nil {
					return nil, fmt.Errorf("%w: length extra bits", ErrCorrupt)
				}
				length += int(e)
			}
			if dist == nil {
				return nil, fmt.Errorf("%w: match in block with no distance codes", ErrCorrupt)
			}
			dc, err := dist.Decode(r)
			if err != nil {
				return nil, fmt.Errorf("%w: distance decode: %v", ErrCorrupt, err)
			}
			if dc >= len(distBase) {
				return nil, fmt.Errorf("%w: distance symbol %d", ErrCorrupt, dc)
			}
			d := distBase[dc]
			if distExtra[dc] > 0 {
				e, err := r.ReadBits(distExtra[dc])
				if err != nil {
					return nil, fmt.Errorf("%w: distance extra bits", ErrCorrupt)
				}
				d += int(e)
			}
			if d > len(out) {
				return nil, fmt.Errorf("%w: distance %d beyond output (%d bytes)", ErrCorrupt, d, len(out))
			}
			if len(out)+length > limit {
				return nil, ErrTooLarge
			}
			start := len(out) - d
			for k := 0; k < length; k++ {
				out = append(out, out[start+k])
			}
		}
	}
}
