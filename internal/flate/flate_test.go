package flate

import (
	"bytes"
	stdflate "compress/flate"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var testInputs = map[string][]byte{
	"empty":      {},
	"single":     {42},
	"zeros":      make([]byte, 100000),
	"short-text": []byte("hello, hello, hello world"),
	"alphabet":   []byte("abcdefghijklmnopqrstuvwxyz"),
	"repetitive": bytes.Repeat([]byte("abcdefgh"), 20000),
	"xml-ish":    []byte(strings.Repeat("<item id=\"3\"><name>widget</name><price>9.99</price></item>\n", 3000)),
	"binary-ish": nil, // filled in init
	"random-64k": nil,
	"mixed":      nil,
	"all-bytes":  nil,
	"two-phase":  nil,
}

func init() {
	rng := rand.New(rand.NewSource(1234))
	bin := make([]byte, 80000)
	for i := range bin {
		if i%16 < 10 {
			bin[i] = byte(i % 251)
		} else {
			bin[i] = byte(rng.Intn(256))
		}
	}
	testInputs["binary-ish"] = bin

	rnd := make([]byte, 65536)
	rng.Read(rnd)
	testInputs["random-64k"] = rnd

	mixed := append(append([]byte{}, bytes.Repeat([]byte("lorem ipsum "), 4000)...), rnd[:20000]...)
	testInputs["mixed"] = mixed

	all := make([]byte, 256*40)
	for i := range all {
		all[i] = byte(i)
	}
	testInputs["all-bytes"] = all

	// Compressible prefix then incompressible suffix spanning blocks.
	tp := append(bytes.Repeat([]byte{7}, 150000), rnd...)
	testInputs["two-phase"] = tp
}

func TestRoundTrip(t *testing.T) {
	for name, src := range testInputs {
		for _, level := range []int{1, 6, 9} {
			comp := Compress(src, level)
			got, err := Decompress(comp)
			if err != nil {
				t.Fatalf("%s level %d: decompress: %v", name, level, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s level %d: round trip mismatch (%d vs %d bytes)", name, level, len(got), len(src))
			}
		}
	}
}

// Our compressed output must be decodable by Go's standard inflate.
func TestStdlibDecodesOurOutput(t *testing.T) {
	for name, src := range testInputs {
		for _, level := range []int{1, 6, 9} {
			comp := Compress(src, level)
			r := stdflate.NewReader(bytes.NewReader(comp))
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("%s level %d: stdlib inflate: %v", name, level, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s level %d: stdlib decoded wrong bytes", name, level)
			}
		}
	}
}

// We must decode what the standard deflate produces.
func TestWeDecodeStdlibOutput(t *testing.T) {
	for name, src := range testInputs {
		for _, level := range []int{1, 5, 9, stdflate.HuffmanOnly} {
			var buf bytes.Buffer
			w, err := stdflate.NewWriter(&buf, level)
			if err != nil {
				t.Fatal(err)
			}
			w.Write(src)
			w.Close()
			got, err := Decompress(buf.Bytes())
			if err != nil {
				t.Fatalf("%s stdlib level %d: our inflate: %v", name, level, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s stdlib level %d: wrong bytes", name, level)
			}
		}
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	src := testInputs["xml-ish"]
	comp := Compress(src, 6)
	if len(comp) > len(src)/4 {
		t.Fatalf("xml-ish compressed to %d of %d bytes; expected < 25%%", len(comp), len(src))
	}
}

func TestRandomDataNearStored(t *testing.T) {
	src := testInputs["random-64k"]
	comp := Compress(src, 6)
	// Random data must fall back to stored blocks: tiny overhead only.
	if len(comp) > len(src)+len(src)/100+64 {
		t.Fatalf("random data expanded too much: %d vs %d", len(comp), len(src))
	}
}

func TestHigherLevelsSmallerOrEqual(t *testing.T) {
	src := testInputs["xml-ish"]
	l1 := len(Compress(src, 1))
	l9 := len(Compress(src, 9))
	if l9 > l1 {
		t.Fatalf("level 9 (%d bytes) larger than level 1 (%d bytes)", l9, l1)
	}
}

func TestCorruptStreams(t *testing.T) {
	comp := Compress([]byte("some reasonable test data, compressed"), 6)
	// Truncations must error, not panic or return wrong data silently.
	for cut := 1; cut < len(comp); cut++ {
		if _, err := Decompress(comp[:cut]); err == nil {
			// Some truncations can coincidentally decode if the final
			// block's EOB landed before the cut; verify content instead.
			got, _ := Decompress(comp[:cut])
			if bytes.Equal(got, []byte("some reasonable test data, compressed")) {
				continue
			}
			t.Fatalf("truncation at %d decoded without error to wrong data", cut)
		}
	}
	if _, err := Decompress(nil); err == nil {
		t.Fatal("empty input decoded without error")
	}
	if _, err := Decompress([]byte{0x07}); err == nil { // BTYPE=11
		t.Fatal("reserved block type accepted")
	}
}

func TestBitFlipsDetectedOrRoundTripFails(t *testing.T) {
	src := []byte(strings.Repeat("payload ", 512))
	comp := Compress(src, 6)
	rng := rand.New(rand.NewSource(77))
	flips := 0
	for trial := 0; trial < 200; trial++ {
		c := append([]byte{}, comp...)
		c[rng.Intn(len(c))] ^= 1 << uint(rng.Intn(8))
		got, err := Decompress(c)
		if err == nil && bytes.Equal(got, src) {
			continue // flip in padding bits, harmless
		}
		flips++
	}
	if flips == 0 {
		t.Fatal("no bit flip had any effect; decoder suspect")
	}
}

func TestDecompressionBombLimit(t *testing.T) {
	src := make([]byte, 10<<20) // 10 MB of zeros compresses tiny
	comp := Compress(src, 6)
	if _, err := DecompressLimit(comp, 1<<20); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestStoredBlockExactBoundary(t *testing.T) {
	// Exactly maxStoredBlock and one more byte of random data.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{maxStoredBlock - 1, maxStoredBlock, maxStoredBlock + 1} {
		src := make([]byte, n)
		rng.Read(src)
		comp := Compress(src, 1)
		got, err := Decompress(comp)
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("n=%d: round trip failed: %v", n, err)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, size uint16, alpha uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alpha)%64 + 1
		src := make([]byte, int(size))
		for i := range src {
			src[i] = byte(rng.Intn(a))
		}
		comp := Compress(src, 6)
		got, err := Decompress(comp)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStdlibInterop(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		src := make([]byte, int(size))
		for i := range src {
			src[i] = byte(rng.Intn(20))
		}
		comp := Compress(src, 6)
		r := stdflate.NewReader(bytes.NewReader(comp))
		got, err := io.ReadAll(r)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressLevel6(b *testing.B) {
	src := testInputs["xml-ish"]
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Compress(src, 6)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := testInputs["xml-ish"]
	comp := Compress(src, 6)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}
