package flate

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecompress feeds arbitrary bytes to the inflater: it must never
// panic and never loop; errors are the expected outcome for garbage.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00})
	f.Add(Compress([]byte("seed data for the fuzzer, compressible compressible"), 6))
	f.Add(Compress(bytes.Repeat([]byte{0}, 1000), 1))
	f.Add([]byte{0x01, 0x05, 0x00, 0xFA, 0xFF, 'h', 'e', 'l', 'l', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecompressLimit(data, 1<<24)
		if err == nil && len(out) > 1<<24 {
			t.Fatalf("limit exceeded: %d", len(out))
		}
	})
}

// FuzzRoundTrip compresses arbitrary input at every level and requires a
// byte-exact round trip.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""), 6)
	f.Add([]byte("abcabcabcabc"), 1)
	f.Add(bytes.Repeat([]byte("xyz"), 500), 9)
	f.Fuzz(func(t *testing.T, data []byte, level int) {
		comp := Compress(data, level%10)
		got, err := DecompressLimit(comp, len(data)+64)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
		}
	})
}

// FuzzInflateCorrupt is the silent-data-corruption fuzzer: it takes a
// well-formed compressed stream, flips one bit (or truncates), and
// requires the inflater to either succeed or fail with a *typed* error
// — ErrCorrupt or ErrTooLarge — never panic, loop, or leak an untyped
// failure. A typed error is what lets every hop above (verified
// compression, the pipeline, the service) classify the failure as
// corruption rather than a bug.
func FuzzInflateCorrupt(f *testing.F) {
	f.Add([]byte("seed payload for corruption, compressible compressible"), uint32(17), uint8(0))
	f.Add(bytes.Repeat([]byte("abc123"), 400), uint32(300), uint8(5))
	f.Add([]byte{}, uint32(0), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, bitPos uint32, cut uint8) {
		comp := Compress(data, 6)
		if len(comp) == 0 {
			return
		}
		// One deterministic mutation: flip a bit, then optionally truncate.
		mut := append([]byte(nil), comp...)
		pos := int(bitPos) % (len(mut) * 8)
		mut[pos/8] ^= 1 << (pos % 8)
		if n := int(cut); n > 0 && n < len(mut) {
			mut = mut[:len(mut)-n]
		}
		out, err := DecompressLimit(mut, len(data)+64)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("untyped inflate error on corrupt stream: %v", err)
			}
			return
		}
		if len(out) > len(data)+64 {
			t.Fatalf("limit exceeded on corrupt stream: %d bytes", len(out))
		}
	})
}
