package flate

import (
	"bytes"
	"testing"
)

// FuzzDecompress feeds arbitrary bytes to the inflater: it must never
// panic and never loop; errors are the expected outcome for garbage.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00})
	f.Add(Compress([]byte("seed data for the fuzzer, compressible compressible"), 6))
	f.Add(Compress(bytes.Repeat([]byte{0}, 1000), 1))
	f.Add([]byte{0x01, 0x05, 0x00, 0xFA, 0xFF, 'h', 'e', 'l', 'l', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecompressLimit(data, 1<<24)
		if err == nil && len(out) > 1<<24 {
			t.Fatalf("limit exceeded: %d", len(out))
		}
	})
}

// FuzzRoundTrip compresses arbitrary input at every level and requires a
// byte-exact round trip.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""), 6)
	f.Add([]byte("abcabcabcabc"), 1)
	f.Add(bytes.Repeat([]byte("xyz"), 500), 9)
	f.Fuzz(func(t *testing.T, data []byte, level int) {
		comp := Compress(data, level%10)
		got, err := DecompressLimit(comp, len(data)+64)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
		}
	})
}
