package flate

import (
	"bytes"
	stdflate "compress/flate"
	"io"
	"testing"
)

// stdInflate decodes a raw DEFLATE stream with the standard library — the
// independent reference implementation our encoder is checked against.
func stdInflate(comp []byte) ([]byte, error) {
	r := stdflate.NewReader(bytes.NewReader(comp))
	defer r.Close()
	return io.ReadAll(r)
}

// FuzzDifferentialStdlib is the cross-implementation check for the SWAR
// encoder and the pair-decoding inflater:
//
//  1. our Compress output must be valid DEFLATE as judged by the stdlib
//     inflater, and decode to the input;
//  2. stdlib-compressed data must decode identically through our
//     DecodePair-based inflater.
//
// Any bit-packing bug in WriteBits64 batching or table bug in the paired
// Huffman decoder shows up as a divergence here.
func FuzzDifferentialStdlib(f *testing.F) {
	f.Add([]byte(""), 6)
	f.Add([]byte("abcabcabcabc"), 1)
	f.Add(bytes.Repeat([]byte{0}, 2048), 9)
	f.Add([]byte("differential seed: the quick brown fox, the quick brown fox"), 5)
	f.Add(bytes.Repeat([]byte("0123456789abcdef"), 200), 7)
	f.Fuzz(func(t *testing.T, data []byte, level int) {
		// Go's % keeps the dividend's sign, and stdlib's writer rejects
		// levels below HuffmanOnly — fold negative fuzzed levels into the
		// valid range instead of handing stdlib a bogus one.
		if level%10 < 0 {
			level = -level
		}
		// Direction 1: our encoder, stdlib decoder.
		comp := Compress(data, level%10)
		got, err := stdInflate(comp)
		if err != nil {
			t.Fatalf("stdlib rejects our stream: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("stdlib decode mismatch: %d vs %d bytes", len(got), len(data))
		}

		// Direction 2: stdlib encoder, our decoder.
		lvl := level % 10
		if lvl == 0 {
			lvl = stdflate.HuffmanOnly // exercise the literal-only path too
		}
		var buf bytes.Buffer
		w, err := stdflate.NewWriter(&buf, lvl)
		if err != nil {
			t.Fatalf("stdlib writer: %v", err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatalf("stdlib compress: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("stdlib close: %v", err)
		}
		got, err = DecompressLimit(buf.Bytes(), len(data)+64)
		if err != nil {
			t.Fatalf("our decoder rejects stdlib stream: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("our decode of stdlib stream mismatch: %d vs %d bytes", len(got), len(data))
		}
	})
}

// TestDifferentialStdlibCorpus runs the differential check over a fixed
// corpus so `go test` exercises both directions without the fuzzer.
func TestDifferentialStdlibCorpus(t *testing.T) {
	corpus := [][]byte{
		nil,
		[]byte("a"),
		[]byte("hello, world"),
		bytes.Repeat([]byte{'x'}, 10000),
		bytes.Repeat([]byte("abcdefgh"), 5000),
		func() []byte { // pseudo-random, incompressible
			b := make([]byte, 8192)
			s := uint64(42)
			for i := range b {
				s = s*6364136223846793005 + 1442695040888963407
				b[i] = byte(s >> 56)
			}
			return b
		}(),
	}
	for i, data := range corpus {
		for level := 1; level <= 9; level += 2 {
			comp := Compress(data, level)
			got, err := stdInflate(comp)
			if err != nil {
				t.Fatalf("corpus %d level %d: stdlib rejects our stream: %v", i, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("corpus %d level %d: stdlib decode mismatch", i, level)
			}
		}
	}
}
