package flate

import (
	"fmt"

	"pedal/internal/bits"
	"pedal/internal/huffman"
	"pedal/internal/lz77"
)

// DefaultLevel mirrors zlib's default compression level.
const DefaultLevel = 6

// Compress deflates src at the given level (1–9; 0 or out-of-range values
// clamp). The result is a complete RFC 1951 stream.
func Compress(src []byte, level int) []byte {
	w := bits.NewWriter(len(src)/2 + 64)
	c := &compressor{w: w, level: level}
	c.compress(src)
	return w.Bytes()
}

// blockTokens is the number of LZ77 tokens gathered per DEFLATE block.
// zlib flushes blocks on similar granularity; one Huffman table per ~64K
// tokens balances table overhead against adaptivity.
const blockTokens = 1 << 16

type compressor struct {
	w     *bits.Writer
	level int
}

func (c *compressor) compress(src []byte) {
	if len(src) == 0 {
		// A single empty final block (fixed Huffman, just end-of-block).
		c.writeFixedBlock(nil, true)
		return
	}
	var pending []lz77.Token
	var blocks [][]lz77.Token
	lz77.Tokenize(src, lz77.LevelParams(c.level), func(t lz77.Token) {
		pending = append(pending, t)
		if len(pending) == blockTokens {
			blocks = append(blocks, pending)
			pending = nil
		}
	})
	if len(pending) > 0 || len(blocks) == 0 {
		blocks = append(blocks, pending)
	}
	// Track the source span each block covers, for stored-block fallback.
	off := 0
	for bi, blk := range blocks {
		final := bi == len(blocks)-1
		span := 0
		for _, t := range blk {
			if t.IsLiteral() {
				span++
			} else {
				span += int(t.Len)
			}
		}
		c.writeBlock(blk, src[off:off+span], final)
		off += span
	}
}

// writeBlock picks the cheapest encoding (stored / fixed / dynamic) for the
// token block, mirroring zlib's block-type decision.
func (c *compressor) writeBlock(tokens []lz77.Token, raw []byte, final bool) {
	litFreq := make([]uint64, numLitLenSyms)
	distFreq := make([]uint64, numDistSyms)
	for _, t := range tokens {
		if t.IsLiteral() {
			litFreq[t.Lit]++
		} else {
			litFreq[257+int(lengthCodeOf[t.Len])]++
			distFreq[distCodeOf(int(t.Dist))]++
		}
	}
	litFreq[endOfBlock]++

	dynCost, dyn := c.planDynamic(litFreq, distFreq)
	fixCost := fixedCost(litFreq, distFreq)
	storedCost := storedBlockCost(len(raw))

	switch {
	case storedCost <= dynCost && storedCost <= fixCost:
		c.writeStored(raw, final)
	case fixCost <= dynCost:
		c.writeFixedBlock(tokens, final)
	default:
		c.writeDynamicBlock(tokens, dyn, final)
	}
}

// storedBlockCost estimates stored encoding cost in bits (including block
// headers for the required 65535-byte segmentation, assuming byte
// alignment costs ~4 bits on average).
func storedBlockCost(n int) int {
	blocks := (n + maxStoredBlock - 1) / maxStoredBlock
	if blocks == 0 {
		blocks = 1
	}
	return blocks*(3+4+32) + n*8
}

func fixedCost(litFreq, distFreq []uint64) int {
	cost := 3
	for s, f := range litFreq {
		cost += int(f) * int(fixedLitLenLengths[s])
		if s >= 257 {
			cost += int(f) * int(lengthExtra[s-257])
		}
	}
	for s, f := range distFreq {
		cost += int(f) * (5 + int(distExtra[s]))
	}
	return cost
}

// dynamicPlan holds everything needed to emit a dynamic block.
type dynamicPlan struct {
	litLen   []uint8
	dist     []uint8
	litCode  *huffman.Code
	distCode *huffman.Code
	// Header encoding.
	clcLengths []uint8
	clcCode    *huffman.Code
	clSymbols  []clSym // RLE-encoded code-length sequence
	hlit       int
	hdist      int
	hclen      int
}

// clSym is one symbol of the code-length-code stream: a code-length symbol
// 0..18 plus its extra-bits payload for symbols 16/17/18.
type clSym struct {
	sym   uint8
	extra uint8
	ebits uint8
}

// planDynamic builds the dynamic-Huffman plan and returns its exact bit
// cost.
func (c *compressor) planDynamic(litFreq, distFreq []uint64) (int, *dynamicPlan) {
	litLen, err := huffman.BuildLengths(litFreq, maxCodeBits)
	if err != nil {
		// litFreq always contains end-of-block, so this cannot happen.
		panic(fmt.Sprintf("flate: literal code build: %v", err))
	}
	distLen, err := huffman.BuildLengths(distFreq, maxCodeBits)
	if err == huffman.ErrEmptyAlphabet {
		// No distances used. RFC 1951 still requires at least one distance
		// code length; declare one code of length 1 (allowed: "one distance
		// code of zero bits" is encoded as a single code).
		distLen = make([]uint8, numDistSyms)
		distLen[0] = 1
	} else if err != nil {
		panic(fmt.Sprintf("flate: distance code build: %v", err))
	}

	p := &dynamicPlan{litLen: litLen, dist: distLen}
	p.hlit = numLitLenSyms
	for p.hlit > 257 && litLen[p.hlit-1] == 0 {
		p.hlit--
	}
	p.hdist = numDistSyms
	for p.hdist > 1 && distLen[p.hdist-1] == 0 {
		p.hdist--
	}

	// RLE-encode the concatenated length sequence with symbols 16/17/18.
	seq := make([]uint8, 0, p.hlit+p.hdist)
	seq = append(seq, litLen[:p.hlit]...)
	seq = append(seq, distLen[:p.hdist]...)
	p.clSymbols = rleCodeLengths(seq)

	clcFreq := make([]uint64, numCLCSyms)
	for _, cs := range p.clSymbols {
		clcFreq[cs.sym]++
	}
	clcLengths, err := huffman.BuildLengths(clcFreq, maxCLCBits)
	if err != nil {
		panic(fmt.Sprintf("flate: clc build: %v", err))
	}
	p.clcLengths = clcLengths
	p.hclen = numCLCSyms
	for p.hclen > 4 && clcLengths[clcOrder[p.hclen-1]] == 0 {
		p.hclen--
	}

	p.litCode, err = huffman.CanonicalCode(litLen)
	if err != nil {
		panic(err)
	}
	p.distCode, err = huffman.CanonicalCode(distLen)
	if err != nil {
		panic(err)
	}
	p.clcCode, err = huffman.CanonicalCode(clcLengths)
	if err != nil {
		panic(err)
	}

	// Exact bit cost: 3 (block header) + 14 (HLIT/HDIST/HCLEN) +
	// 3*hclen + clc-coded lengths + payload.
	cost := 3 + 14 + 3*p.hclen
	for _, cs := range p.clSymbols {
		cost += int(clcLengths[cs.sym]) + int(cs.ebits)
	}
	for s, f := range litFreq {
		cost += int(f) * int(litLen[s])
		if s >= 257 {
			cost += int(f) * int(lengthExtra[s-257])
		}
	}
	for s, f := range distFreq {
		cost += int(f) * (int(distLen[s]) + int(distExtra[s]))
	}
	return cost, p
}

// rleCodeLengths encodes a code-length sequence using repeat symbols:
// 16 = repeat previous 3–6 times, 17 = repeat zero 3–10, 18 = repeat zero
// 11–138 (RFC 1951 §3.2.7).
func rleCodeLengths(seq []uint8) []clSym {
	var out []clSym
	i := 0
	for i < len(seq) {
		v := seq[i]
		run := 1
		for i+run < len(seq) && seq[i+run] == v {
			run++
		}
		if v == 0 {
			for run >= 11 {
				n := run
				if n > 138 {
					n = 138
				}
				out = append(out, clSym{sym: 18, extra: uint8(n - 11), ebits: 7})
				run -= n
				i += n
			}
			if run >= 3 {
				out = append(out, clSym{sym: 17, extra: uint8(run - 3), ebits: 3})
				i += run
				run = 0
			}
			for ; run > 0; run-- {
				out = append(out, clSym{sym: 0})
				i++
			}
			continue
		}
		// Nonzero: emit the first occurrence, then repeats of 3–6.
		out = append(out, clSym{sym: v})
		i++
		run--
		for run >= 3 {
			n := run
			if n > 6 {
				n = 6
			}
			out = append(out, clSym{sym: 16, extra: uint8(n - 3), ebits: 2})
			run -= n
			i += n
		}
		for ; run > 0; run-- {
			out = append(out, clSym{sym: v})
			i++
		}
	}
	return out
}

func (c *compressor) writeStored(raw []byte, final bool) {
	for first := true; first || len(raw) > 0; first = false {
		n := len(raw)
		if n > maxStoredBlock {
			n = maxStoredBlock
		}
		last := final && n == len(raw)
		c.w.WriteBool(last)
		c.w.WriteBits(0, 2) // BTYPE=00
		c.w.AlignByte()
		c.w.WriteBits(uint32(n), 16)
		c.w.WriteBits(uint32(^uint16(n)), 16)
		c.w.WriteBytes(raw[:n])
		raw = raw[n:]
		if n == 0 {
			break
		}
	}
}

func (c *compressor) writeFixedBlock(tokens []lz77.Token, final bool) {
	c.w.WriteBool(final)
	c.w.WriteBits(1, 2) // BTYPE=01
	litCode, _ := huffman.CanonicalCode(fixedLitLenLengths)
	distCode, _ := huffman.CanonicalCode(fixedDistLengths)
	c.writeTokens(tokens, litCode, distCode)
}

func (c *compressor) writeDynamicBlock(tokens []lz77.Token, p *dynamicPlan, final bool) {
	w := c.w
	w.WriteBool(final)
	w.WriteBits(2, 2) // BTYPE=10
	w.WriteBits(uint32(p.hlit-257), 5)
	w.WriteBits(uint32(p.hdist-1), 5)
	w.WriteBits(uint32(p.hclen-4), 4)
	for i := 0; i < p.hclen; i++ {
		w.WriteBits(uint32(p.clcLengths[clcOrder[i]]), 3)
	}
	for _, cs := range p.clSymbols {
		c.emitCode(p.clcCode, int(cs.sym))
		if cs.ebits > 0 {
			w.WriteBits(uint32(cs.extra), uint(cs.ebits))
		}
	}
	c.writeTokens(tokens, p.litCode, p.distCode)
}

func (c *compressor) emitCode(code *huffman.Code, sym int) {
	l := uint(code.Len[sym])
	c.w.WriteBits(bits.Reverse(code.Bits[sym], l), l)
}

func (c *compressor) writeTokens(tokens []lz77.Token, lit, dist *huffman.Code) {
	for _, t := range tokens {
		if t.IsLiteral() {
			c.emitCode(lit, int(t.Lit))
			continue
		}
		lc := int(lengthCodeOf[t.Len])
		c.emitCode(lit, 257+lc)
		if lengthExtra[lc] > 0 {
			c.w.WriteBits(uint32(int(t.Len)-lengthBase[lc]), lengthExtra[lc])
		}
		dc := distCodeOf(int(t.Dist))
		c.emitCode(dist, dc)
		if distExtra[dc] > 0 {
			c.w.WriteBits(uint32(int(t.Dist)-distBase[dc]), distExtra[dc])
		}
	}
	c.emitCode(lit, endOfBlock)
}
