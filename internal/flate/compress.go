package flate

import (
	"fmt"
	"sync"

	"pedal/internal/bits"
	"pedal/internal/huffman"
	"pedal/internal/lz77"
)

// DefaultLevel mirrors zlib's default compression level.
const DefaultLevel = 6

// Compress deflates src at the given level (1–9; 0 or out-of-range values
// clamp). The result is a complete RFC 1951 stream.
func Compress(src []byte, level int) []byte {
	return AppendCompress(make([]byte, 0, len(src)/2+64), src, level)
}

// AppendCompress deflates src at the given level and appends the RFC
// 1951 stream to dst, returning the extended slice. All working state
// (match-finder tables, token buffers, Huffman scratch) comes from a
// sync.Pool, so when dst has capacity CompressBound(len(src)) the call
// is allocation-free at steady state — the property the chunked
// pipeline's per-chunk hot path relies on.
func AppendCompress(dst, src []byte, level int) []byte {
	s := getScratch()
	s.w.ResetBuf(dst)
	c := &compressor{w: &s.w, level: level, s: s}
	c.compress(src)
	out := s.w.Bytes()
	s.w.ResetBuf(nil) // do not retain the caller's buffer in the pool
	putScratch(s)
	return out
}

// CompressBound returns a dst capacity that guarantees AppendCompress
// will not grow it: the stored-block worst case (5 bytes of header per
// 65535-byte block) plus block headers and flush slack.
func CompressBound(n int) int {
	return n + n>>12 + 64
}

// AppendCompressVerified deflates src like AppendCompress, but runs the
// SWAR tokenizer's output through the scalar lz77 referee before
// encoding. A token stream that fails to reproduce src byte-for-byte is
// discarded and src is emitted as stored blocks instead — the scalar
// reference encoding, trivially correct and decodable by any inflater.
// The returned bool reports whether the referee had to intervene.
// Allocation-free under the same conditions as AppendCompress.
func AppendCompressVerified(dst, src []byte, level int) ([]byte, bool) {
	s := getScratch()
	s.w.ResetBuf(dst)
	c := &compressor{w: &s.w, level: level, s: s}
	refereed := c.compressVerified(src)
	out := s.w.Bytes()
	s.w.ResetBuf(nil) // do not retain the caller's buffer in the pool
	putScratch(s)
	return out, refereed
}

// compressVerified is compress with the scalar token referee between
// tokenization and encoding.
func (c *compressor) compressVerified(src []byte) bool {
	if len(src) == 0 {
		c.writeFixedBlock(nil, true)
		return false
	}
	s := c.s
	s.tokens = s.matcher.Tokens(src, lz77.LevelParams(c.level), s.tokens[:0])
	if !lz77.VerifyTokens(s.tokens, src) {
		// The match finder misbehaved: fall back to the stored-block
		// reference path, which touches none of the SWAR machinery.
		c.writeStored(src, true)
		return true
	}
	c.emitTokenBlocks(s.tokens, src)
	return false
}

// blockTokens is the number of LZ77 tokens gathered per DEFLATE block.
// zlib flushes blocks on similar granularity; one Huffman table per ~64K
// tokens balances table overhead against adaptivity.
const blockTokens = 1 << 16

// scratch is the reusable per-compression state. Every slice and table
// that the per-block path needs lives here so that steady-state
// compression performs zero heap allocations.
type scratch struct {
	w       bits.Writer
	matcher lz77.Matcher
	tokens  []lz77.Token

	litFreq  [numLitLenSyms]uint64
	distFreq [numDistSyms]uint64
	clcFreq  [numCLCSyms]uint64
	seq      [numLitLenSyms + numDistSyms]uint8
	clSyms   []clSym

	hscratch huffman.Scratch
	plan     dynamicPlan
	litLens  [numLitLenSyms]uint8
	distLens [numDistSyms]uint8
	clcLens  [numCLCSyms]uint8
	litCode  huffman.Code
	distCode huffman.Code
	clcCode  huffman.Code
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{clSyms: make([]clSym, 0, numLitLenSyms+numDistSyms)}
}}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

type compressor struct {
	w     *bits.Writer
	level int
	s     *scratch
}

// newCompressor builds a compressor writing to w, with pooled scratch.
// The release function returns the scratch to the pool.
func newCompressor(w *bits.Writer, level int) (*compressor, func()) {
	s := getScratch()
	c := &compressor{w: w, level: level, s: s}
	return c, func() { putScratch(s) }
}

func (c *compressor) compress(src []byte) {
	if len(src) == 0 {
		// A single empty final block (fixed Huffman, just end-of-block).
		c.writeFixedBlock(nil, true)
		return
	}
	s := c.s
	s.tokens = s.matcher.Tokens(src, lz77.LevelParams(c.level), s.tokens[:0])
	c.emitTokenBlocks(s.tokens, src)
}

// emitTokenBlocks writes the token stream as DEFLATE blocks of
// blockTokens tokens each, tracking the source span each covers for the
// stored-block fallback.
func (c *compressor) emitTokenBlocks(tokens []lz77.Token, src []byte) {
	off := 0
	for start := 0; start < len(tokens) || start == 0; start += blockTokens {
		end := start + blockTokens
		if end > len(tokens) {
			end = len(tokens)
		}
		blk := tokens[start:end]
		final := end == len(tokens)
		span := 0
		for _, t := range blk {
			if t.IsLiteral() {
				span++
			} else {
				span += int(t.Len)
			}
		}
		c.writeBlock(blk, src[off:off+span], final)
		off += span
		if final {
			break
		}
	}
}

// writeBlock picks the cheapest encoding (stored / fixed / dynamic) for the
// token block, mirroring zlib's block-type decision.
func (c *compressor) writeBlock(tokens []lz77.Token, raw []byte, final bool) {
	s := c.s
	litFreq := s.litFreq[:]
	distFreq := s.distFreq[:]
	for i := range litFreq {
		litFreq[i] = 0
	}
	for i := range distFreq {
		distFreq[i] = 0
	}
	for _, t := range tokens {
		if t.IsLiteral() {
			litFreq[t.Lit]++
		} else {
			litFreq[257+int(lengthCodeOf[t.Len])]++
			distFreq[distCodeOf(int(t.Dist))]++
		}
	}
	litFreq[endOfBlock]++

	dynCost, dyn := c.planDynamic(litFreq, distFreq)
	fixCost := fixedCost(litFreq, distFreq)
	storedCost := storedBlockCost(len(raw))

	switch {
	case storedCost <= dynCost && storedCost <= fixCost:
		c.writeStored(raw, final)
	case fixCost <= dynCost:
		c.writeFixedBlock(tokens, final)
	default:
		c.writeDynamicBlock(tokens, dyn, final)
	}
}

// storedBlockCost estimates stored encoding cost in bits (including block
// headers for the required 65535-byte segmentation, assuming byte
// alignment costs ~4 bits on average).
func storedBlockCost(n int) int {
	blocks := (n + maxStoredBlock - 1) / maxStoredBlock
	if blocks == 0 {
		blocks = 1
	}
	return blocks*(3+4+32) + n*8
}

func fixedCost(litFreq, distFreq []uint64) int {
	cost := 3
	for s, f := range litFreq {
		cost += int(f) * int(fixedLitLenLengths[s])
		if s >= 257 {
			cost += int(f) * int(lengthExtra[s-257])
		}
	}
	for s, f := range distFreq {
		cost += int(f) * (5 + int(distExtra[s]))
	}
	return cost
}

// dynamicPlan holds everything needed to emit a dynamic block. Its
// slices and code tables point into the owning scratch and are reused
// block after block.
type dynamicPlan struct {
	litLen   []uint8
	dist     []uint8
	litCode  *huffman.Code
	distCode *huffman.Code
	// Header encoding.
	clcLengths []uint8
	clcCode    *huffman.Code
	clSymbols  []clSym // RLE-encoded code-length sequence
	hlit       int
	hdist      int
	hclen      int
}

// clSym is one symbol of the code-length-code stream: a code-length symbol
// 0..18 plus its extra-bits payload for symbols 16/17/18.
type clSym struct {
	sym   uint8
	extra uint8
	ebits uint8
}

// planDynamic builds the dynamic-Huffman plan in the compressor's
// scratch and returns its exact bit cost.
func (c *compressor) planDynamic(litFreq, distFreq []uint64) (int, *dynamicPlan) {
	s := c.s
	litLen := s.litLens[:]
	if err := s.hscratch.BuildLengthsInto(litFreq, maxCodeBits, litLen); err != nil {
		// litFreq always contains end-of-block, so this cannot happen.
		panic(fmt.Sprintf("flate: literal code build: %v", err))
	}
	distLen := s.distLens[:]
	err := s.hscratch.BuildLengthsInto(distFreq, maxCodeBits, distLen)
	if err == huffman.ErrEmptyAlphabet {
		// No distances used. RFC 1951 still requires at least one distance
		// code length; declare one code of length 1 (allowed: "one distance
		// code of zero bits" is encoded as a single code).
		for i := range distLen {
			distLen[i] = 0
		}
		distLen[0] = 1
	} else if err != nil {
		panic(fmt.Sprintf("flate: distance code build: %v", err))
	}

	p := &s.plan
	*p = dynamicPlan{litLen: litLen, dist: distLen}
	p.hlit = numLitLenSyms
	for p.hlit > 257 && litLen[p.hlit-1] == 0 {
		p.hlit--
	}
	p.hdist = numDistSyms
	for p.hdist > 1 && distLen[p.hdist-1] == 0 {
		p.hdist--
	}

	// RLE-encode the concatenated length sequence with symbols 16/17/18.
	seq := s.seq[:0]
	seq = append(seq, litLen[:p.hlit]...)
	seq = append(seq, distLen[:p.hdist]...)
	p.clSymbols = rleCodeLengths(seq, s.clSyms[:0])
	s.clSyms = p.clSymbols[:0]

	clcFreq := s.clcFreq[:]
	for i := range clcFreq {
		clcFreq[i] = 0
	}
	for _, cs := range p.clSymbols {
		clcFreq[cs.sym]++
	}
	clcLengths := s.clcLens[:]
	if err := s.hscratch.BuildLengthsInto(clcFreq, maxCLCBits, clcLengths); err != nil {
		panic(fmt.Sprintf("flate: clc build: %v", err))
	}
	p.clcLengths = clcLengths
	p.hclen = numCLCSyms
	for p.hclen > 4 && clcLengths[clcOrder[p.hclen-1]] == 0 {
		p.hclen--
	}

	if err := huffman.CanonicalInto(litLen, &s.litCode); err != nil {
		panic(err)
	}
	if err := huffman.CanonicalInto(distLen, &s.distCode); err != nil {
		panic(err)
	}
	if err := huffman.CanonicalInto(clcLengths, &s.clcCode); err != nil {
		panic(err)
	}
	p.litCode, p.distCode, p.clcCode = &s.litCode, &s.distCode, &s.clcCode

	// Exact bit cost: 3 (block header) + 14 (HLIT/HDIST/HCLEN) +
	// 3*hclen + clc-coded lengths + payload.
	cost := 3 + 14 + 3*p.hclen
	for _, cs := range p.clSymbols {
		cost += int(clcLengths[cs.sym]) + int(cs.ebits)
	}
	for s, f := range litFreq {
		cost += int(f) * int(litLen[s])
		if s >= 257 {
			cost += int(f) * int(lengthExtra[s-257])
		}
	}
	for s, f := range distFreq {
		cost += int(f) * (int(distLen[s]) + int(distExtra[s]))
	}
	return cost, p
}

// rleCodeLengths encodes a code-length sequence using repeat symbols:
// 16 = repeat previous 3–6 times, 17 = repeat zero 3–10, 18 = repeat zero
// 11–138 (RFC 1951 §3.2.7), appending to out.
func rleCodeLengths(seq []uint8, out []clSym) []clSym {
	i := 0
	for i < len(seq) {
		v := seq[i]
		run := 1
		for i+run < len(seq) && seq[i+run] == v {
			run++
		}
		if v == 0 {
			for run >= 11 {
				n := run
				if n > 138 {
					n = 138
				}
				out = append(out, clSym{sym: 18, extra: uint8(n - 11), ebits: 7})
				run -= n
				i += n
			}
			if run >= 3 {
				out = append(out, clSym{sym: 17, extra: uint8(run - 3), ebits: 3})
				i += run
				run = 0
			}
			for ; run > 0; run-- {
				out = append(out, clSym{sym: 0})
				i++
			}
			continue
		}
		// Nonzero: emit the first occurrence, then repeats of 3–6.
		out = append(out, clSym{sym: v})
		i++
		run--
		for run >= 3 {
			n := run
			if n > 6 {
				n = 6
			}
			out = append(out, clSym{sym: 16, extra: uint8(n - 3), ebits: 2})
			run -= n
			i += n
		}
		for ; run > 0; run-- {
			out = append(out, clSym{sym: v})
			i++
		}
	}
	return out
}

func (c *compressor) writeStored(raw []byte, final bool) {
	for first := true; first || len(raw) > 0; first = false {
		n := len(raw)
		if n > maxStoredBlock {
			n = maxStoredBlock
		}
		last := final && n == len(raw)
		c.w.WriteBool(last)
		c.w.WriteBits(0, 2) // BTYPE=00
		c.w.AlignByte()
		c.w.WriteBits(uint32(n), 16)
		c.w.WriteBits(uint32(^uint16(n)), 16)
		c.w.WriteBytes(raw[:n])
		raw = raw[n:]
		if n == 0 {
			break
		}
	}
}

func (c *compressor) writeFixedBlock(tokens []lz77.Token, final bool) {
	c.w.WriteBool(final)
	c.w.WriteBits(1, 2) // BTYPE=01
	// The fixed code tables are process-wide constants, cached in
	// internal/huffman instead of being rebuilt per block.
	c.writeTokens(tokens, huffman.FixedLitLenCode(), huffman.FixedDistCode())
}

func (c *compressor) writeDynamicBlock(tokens []lz77.Token, p *dynamicPlan, final bool) {
	w := c.w
	w.WriteBool(final)
	w.WriteBits(2, 2) // BTYPE=10
	w.WriteBits(uint32(p.hlit-257), 5)
	w.WriteBits(uint32(p.hdist-1), 5)
	w.WriteBits(uint32(p.hclen-4), 4)
	for i := 0; i < p.hclen; i++ {
		w.WriteBits(uint32(p.clcLengths[clcOrder[i]]), 3)
	}
	for _, cs := range p.clSymbols {
		c.emitCode(p.clcCode, int(cs.sym))
		if cs.ebits > 0 {
			w.WriteBits(uint32(cs.extra), uint(cs.ebits))
		}
	}
	c.writeTokens(tokens, p.litCode, p.distCode)
}

func (c *compressor) emitCode(code *huffman.Code, sym int) {
	l := uint(code.Len[sym])
	c.w.WriteBits(bits.Reverse(code.Bits[sym], l), l)
}

func (c *compressor) writeTokens(tokens []lz77.Token, lit, dist *huffman.Code) {
	w := c.w
	litBits, litLens := lit.Bits, lit.Len
	distBits, distLens := dist.Bits, dist.Len
	// Codes are batched into a 64-bit staging word: literal runs
	// accumulate until another code might not fit (codes are at most
	// maxCodeBits wide), and a whole match — length code, length extra,
	// distance code, distance extra, at most 15+5+15+13 = 48 bits —
	// lands with a single WriteBits64.
	var acc uint64
	var n uint
	for _, t := range tokens {
		if t.IsLiteral() {
			l := uint(litLens[t.Lit])
			acc |= uint64(bits.Reverse(litBits[t.Lit], l)) << n
			n += l
			if n > 56-maxCodeBits {
				w.WriteBits64(acc, n)
				acc, n = 0, 0
			}
			continue
		}
		if n > 0 {
			w.WriteBits64(acc, n)
		}
		lc := int(lengthCodeOf[t.Len])
		sym := 257 + lc
		l := uint(litLens[sym])
		acc = uint64(bits.Reverse(litBits[sym], l))
		n = l
		if e := lengthExtra[lc]; e > 0 {
			acc |= uint64(int(t.Len)-lengthBase[lc]) << n
			n += e
		}
		dc := distCodeOf(int(t.Dist))
		ld := uint(distLens[dc])
		acc |= uint64(bits.Reverse(distBits[dc], ld)) << n
		n += ld
		if e := distExtra[dc]; e > 0 {
			acc |= uint64(int(t.Dist)-distBase[dc]) << n
			n += e
		}
		w.WriteBits64(acc, n)
		acc, n = 0, 0
	}
	if n > 0 {
		w.WriteBits64(acc, n)
	}
	c.emitCode(lit, endOfBlock)
}
