package flate

import (
	"bytes"
	stdflate "compress/flate"
	"io"
	"math/rand"
	"testing"
)

func strategyInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(61))
	skewed := make([]byte, 60000)
	for i := range skewed {
		// Heavily skewed histogram, no repeats beyond chance.
		if rng.Intn(4) == 0 {
			skewed[i] = byte(rng.Intn(256))
		} else {
			skewed[i] = byte(rng.Intn(4))
		}
	}
	runs := bytes.Repeat(append(bytes.Repeat([]byte{7}, 500), 1, 2, 3), 100)
	return map[string][]byte{
		"empty":  {},
		"text":   bytes.Repeat([]byte("strategy test payload "), 2000),
		"skewed": skewed,
		"runs":   runs,
	}
}

func TestStrategiesRoundTrip(t *testing.T) {
	for name, src := range strategyInputs() {
		for _, s := range []Strategy{StrategyDefault, StrategyHuffmanOnly, StrategyRLE, StrategyFixed} {
			comp := CompressStrategy(src, 6, s)
			got, err := Decompress(comp)
			if err != nil {
				t.Fatalf("%s strategy %d: %v", name, s, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s strategy %d: mismatch", name, s)
			}
		}
	}
}

func TestStrategiesStdlibInterop(t *testing.T) {
	src := strategyInputs()["runs"]
	for _, s := range []Strategy{StrategyHuffmanOnly, StrategyRLE, StrategyFixed} {
		comp := CompressStrategy(src, 6, s)
		r := stdflate.NewReader(bytes.NewReader(comp))
		got, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("strategy %d: stdlib inflate: %v", s, err)
		}
	}
}

func TestHuffmanOnlyCompressesSkewedData(t *testing.T) {
	src := strategyInputs()["skewed"]
	comp := CompressStrategy(src, 6, StrategyHuffmanOnly)
	if len(comp) >= len(src) {
		t.Fatalf("huffman-only did not compress skewed data: %d vs %d", len(comp), len(src))
	}
}

func TestRLECompressesRuns(t *testing.T) {
	src := strategyInputs()["runs"]
	rle := CompressStrategy(src, 6, StrategyRLE)
	huf := CompressStrategy(src, 6, StrategyHuffmanOnly)
	if len(rle) >= len(huf) {
		t.Fatalf("RLE (%d) not better than huffman-only (%d) on run data", len(rle), len(huf))
	}
	if len(rle) > len(src)/10 {
		t.Fatalf("RLE ratio too low: %d of %d", len(rle), len(src))
	}
}

func TestDefaultBeatsRestrictedStrategies(t *testing.T) {
	src := strategyInputs()["text"]
	def := CompressStrategy(src, 6, StrategyDefault)
	for _, s := range []Strategy{StrategyHuffmanOnly, StrategyRLE} {
		restricted := CompressStrategy(src, 6, s)
		if len(def) > len(restricted) {
			t.Fatalf("default (%d) worse than strategy %d (%d) on text", len(def), s, len(restricted))
		}
	}
}

func TestFixedStrategyHasNoDynamicBlocks(t *testing.T) {
	src := strategyInputs()["text"]
	comp := CompressStrategy(src, 6, StrategyFixed)
	// First block header: read the first 3 bits — BTYPE must be 01.
	if len(comp) == 0 {
		t.Fatal("empty output")
	}
	btype := (comp[0] >> 1) & 0x3
	if btype != 1 {
		t.Fatalf("first block BTYPE = %d, want 1 (fixed)", btype)
	}
}
