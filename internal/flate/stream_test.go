package flate

import (
	"bytes"
	stdflate "compress/flate"
	"io"
	"math/rand"
	"testing"
)

func TestStreamWriterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Spans multiple windows, with a partial tail.
	src := make([]byte, 3*streamChunk+12345)
	for i := range src {
		src[i] = byte(rng.Intn(12))
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, 6)
	// Write in odd-sized pieces to exercise buffering.
	for off := 0; off < len(src); {
		n := rng.Intn(100000) + 1
		if off+n > len(src) {
			n = len(src) - off
		}
		wrote, err := w.Write(src[off : off+n])
		if err != nil || wrote != n {
			t.Fatalf("write: %d %v", wrote, err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatalf("our inflate: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("round trip mismatch")
	}
}

func TestStreamWriterStdlibInterop(t *testing.T) {
	src := bytes.Repeat([]byte("streaming deflate window boundary test "), 100000)
	var buf bytes.Buffer
	w := NewWriter(&buf, 6)
	w.Write(src)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := stdflate.NewReader(bytes.NewReader(buf.Bytes()))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("stdlib inflate of streamed output: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("stdlib decoded wrong bytes")
	}
}

func TestStreamWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 6)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf.Bytes())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v (%d bytes)", err, len(got))
	}
}

func TestStreamWriterWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 6)
	w.Close()
	if _, err := w.Write([]byte("late")); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestStreamWriterExactWindowBoundary(t *testing.T) {
	src := bytes.Repeat([]byte{0xAB}, streamChunk) // exactly one window
	var buf bytes.Buffer
	w := NewWriter(&buf, 6)
	w.Write(src)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf.Bytes())
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("window boundary: %v", err)
	}
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.after--
	return len(p), nil
}

func TestStreamWriterPropagatesSinkError(t *testing.T) {
	w := NewWriter(&failingWriter{after: 0}, 6)
	w.Write(bytes.Repeat([]byte{1}, 2*streamChunk))
	if err := w.Close(); err == nil {
		t.Fatal("sink error not propagated")
	}
}
