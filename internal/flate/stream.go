package flate

import (
	"errors"
	"io"

	"pedal/internal/bits"
	"pedal/internal/lz77"
)

// Writer is a streaming DEFLATE compressor with bounded memory: input is
// compressed in windows of streamChunk bytes, each emitted as one or
// more non-final blocks, so arbitrarily large streams compress without
// buffering them whole. Matches do not cross window boundaries (a small
// ratio cost, the standard trade-off for streaming).
//
// Close finalises the stream with an empty final block. The output is a
// complete RFC 1951 stream readable by any inflater.
type Writer struct {
	dst    io.Writer
	level  int
	buf    []byte
	closed bool
	err    error
}

// streamChunk is the streaming window size.
const streamChunk = 1 << 20

// NewWriter returns a streaming compressor writing to dst at the given
// level.
func NewWriter(dst io.Writer, level int) *Writer {
	return &Writer{dst: dst, level: level, buf: make([]byte, 0, streamChunk)}
}

// Write buffers p, flushing full windows as compressed blocks.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, errors.New("flate: write after Close")
	}
	total := len(p)
	for len(p) > 0 {
		space := streamChunk - len(w.buf)
		n := len(p)
		if n > space {
			n = space
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		if len(w.buf) == streamChunk {
			if err := w.flushWindow(false); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// flushWindow compresses and emits the buffered window. Non-final
// windows are terminated with an empty stored block (zlib's "sync
// flush"): a stored block ends on a byte boundary, so successive
// windows' byte buffers concatenate into one valid bit-contiguous
// stream.
func (w *Writer) flushWindow(final bool) error {
	bw := bits.NewWriter(len(w.buf)/2 + 64)
	c, release := newCompressor(bw, w.level)
	defer release()
	if len(w.buf) == 0 {
		if final {
			c.writeFixedBlock(nil, true)
		}
	} else {
		c.s.tokens = c.s.matcher.Tokens(w.buf, lz77.LevelParams(w.level), c.s.tokens[:0])
		c.writeBlock(c.s.tokens, w.buf, final)
	}
	if !final {
		// Sync flush: empty non-final stored block re-aligns to a byte.
		c.writeStored(nil, false)
	}
	if _, err := w.dst.Write(bw.Bytes()); err != nil {
		w.err = err
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the remaining window and terminates the stream with a
// final block.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	return w.flushWindow(true)
}
