package flate

import (
	"bytes"
	"testing"
)

// TestAppendCompressZeroAlloc is the hot-path regression test: once the
// scratch pool and destination buffer are warm, compressing a chunk into
// a caller-provided buffer must not allocate.
func TestAppendCompressZeroAlloc(t *testing.T) {
	data := bytes.Repeat([]byte("<entry kind=\"7\">steady state chunk payload</entry>\n"), 1300)
	dst := make([]byte, 0, CompressBound(len(data)))
	// Warm: first call sizes the pooled scratch (matcher chain, tokens).
	out := AppendCompress(dst, data, DefaultLevel)
	got, err := Decompress(out)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("warmup round trip failed: %v", err)
	}
	if n := testing.AllocsPerRun(30, func() {
		out = AppendCompress(dst, data, DefaultLevel)
	}); n != 0 {
		t.Errorf("steady-state AppendCompress allocates %.1f per run, want 0", n)
	}
	got, err = Decompress(out)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("steady-state round trip failed: %v", err)
	}
}

// TestAppendDecompressReuse: AppendDecompress into a preallocated
// full-capacity slot must not grow the slice or allocate for the output.
func TestAppendDecompressZeroAllocOutput(t *testing.T) {
	data := bytes.Repeat([]byte("decompress into fixed slot "), 2000)
	comp := Compress(data, DefaultLevel)
	slot := make([]byte, 0, len(data))
	out, err := AppendDecompress(slot, comp, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("round trip mismatch")
	}
	if &out[0] != &slot[:1][0] {
		t.Error("AppendDecompress abandoned the provided slot")
	}
	if n := testing.AllocsPerRun(30, func() {
		if _, err := AppendDecompress(slot, comp, len(data)); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state AppendDecompress allocates %.1f per run, want 0", n)
	}
}
