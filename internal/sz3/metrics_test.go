package sz3

import (
	"math"
	"testing"
)

func TestEvaluateExactReconstruction(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m := Evaluate(data, data, 8, 16)
	if m.MaxAbsError != 0 || m.RMSE != 0 {
		t.Fatalf("errors nonzero: %+v", m)
	}
	if !math.IsInf(m.PSNR, 1) {
		t.Fatalf("PSNR = %v, want +Inf", m.PSNR)
	}
	if m.Ratio != 2 {
		t.Fatalf("ratio = %v", m.Ratio)
	}
}

func TestEvaluateKnownError(t *testing.T) {
	orig := []float64{0, 10}
	recon := []float64{1, 10}
	m := Evaluate(orig, recon, 8, 0)
	if m.MaxAbsError != 1 {
		t.Fatalf("max = %v", m.MaxAbsError)
	}
	wantRMSE := math.Sqrt(0.5)
	if math.Abs(m.RMSE-wantRMSE) > 1e-12 {
		t.Fatalf("rmse = %v, want %v", m.RMSE, wantRMSE)
	}
	wantPSNR := 20 * math.Log10(10/wantRMSE)
	if math.Abs(m.PSNR-wantPSNR) > 1e-9 {
		t.Fatalf("psnr = %v, want %v", m.PSNR, wantPSNR)
	}
	if m.Ratio != 0 {
		t.Fatal("ratio should be zero without compressedLen")
	}
}

func TestEvaluateSkipsNaN(t *testing.T) {
	orig := []float64{1, math.NaN(), 3}
	recon := []float64{1, math.NaN(), 3.0001}
	m := Evaluate(orig, recon, 8, 0)
	if m.MaxAbsError < 0.00009 || m.MaxAbsError > 0.00011 {
		t.Fatalf("max = %v", m.MaxAbsError)
	}
}

func TestEvaluateEmptyAndMismatched(t *testing.T) {
	if m := Evaluate(nil, nil, 8, 0); m.MaxAbsError != 0 {
		t.Fatal("empty not zero")
	}
	if m := Evaluate([]float64{1}, []float64{1, 2}, 8, 0); m.RMSE != 0 {
		t.Fatal("mismatched lengths not rejected")
	}
}

// End-to-end: PSNR rises as the bound tightens, and MaxAbsError always
// respects the bound.
func TestEvaluatePipelinePSNRMonotonic(t *testing.T) {
	data := field1D(40000, 5)
	var prevPSNR float64
	for i, eb := range []float64{1e-2, 1e-4, 1e-6} {
		comp, err := CompressFloat64(data, Config{ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatal(err)
		}
		m := Evaluate(data, recon, 8, len(comp))
		t.Logf("eb=%g: maxErr=%.3g rmse=%.3g psnr=%.1fdB ratio=%.1f", eb, m.MaxAbsError, m.RMSE, m.PSNR, m.Ratio)
		if m.MaxAbsError > eb*(1+1e-12) {
			t.Fatalf("eb=%g: max error %g exceeds bound", eb, m.MaxAbsError)
		}
		if i > 0 && m.PSNR <= prevPSNR {
			t.Fatalf("PSNR not increasing with tighter bound: %v then %v", prevPSNR, m.PSNR)
		}
		prevPSNR = m.PSNR
	}
}
