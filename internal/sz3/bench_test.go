package sz3

import (
	"math"
	"testing"
)

// benchField2D builds a smooth 2-D field (sum of sinusoids plus a gentle
// gradient) of the kind the quantizer sees from the paper's scientific
// datasets: almost every element quantizes, code 0 is rare.
func benchField2D(nx, ny int) ([]float64, Config) {
	vals := make([]float64, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			x, y := float64(i)/float64(nx), float64(j)/float64(ny)
			vals[i*ny+j] = math.Sin(8*x)*math.Cos(6*y) + 0.3*x + 0.1*y
		}
	}
	return vals, Config{
		ErrorBound: 1e-4,
		Dims:       []int{nx, ny},
		Backend:    BackendNone, // isolate predict+quantize+entropy from the lossless backend
	}
}

func benchField3D(nx, ny, nz int) ([]float64, Config) {
	vals := make([]float64, nx*ny*nz)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				x, y, z := float64(i)/float64(nx), float64(j)/float64(ny), float64(k)/float64(nz)
				vals[(i*ny+j)*nz+k] = math.Sin(5*x+3*y) * math.Cos(4*z)
			}
		}
	}
	return vals, Config{
		ErrorBound: 1e-4,
		Dims:       []int{nx, ny, nz},
		Backend:    BackendNone,
	}
}

func benchCompress(b *testing.B, vals []float64, cfg Config) {
	b.Helper()
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressFloat64(vals, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantizeLorenzo2D is the headline SZ3 quantize benchmark: the
// Lorenzo predict→quantize slab over a 512×512 field.
func BenchmarkQuantizeLorenzo2D(b *testing.B) {
	vals, cfg := benchField2D(512, 512)
	cfg.Predictor = PredictorLorenzo
	benchCompress(b, vals, cfg)
}

// BenchmarkQuantizeLorenzo3D exercises the 7-point 3-D Lorenzo stencil.
func BenchmarkQuantizeLorenzo3D(b *testing.B) {
	vals, cfg := benchField3D(64, 64, 64)
	cfg.Predictor = PredictorLorenzo
	benchCompress(b, vals, cfg)
}

// BenchmarkQuantizeRegression2D drives the per-block linear-model path.
func BenchmarkQuantizeRegression2D(b *testing.B) {
	vals, cfg := benchField2D(512, 512)
	cfg.Predictor = PredictorRegression
	benchCompress(b, vals, cfg)
}

// BenchmarkQuantizeInterp2D drives the dyadic interpolation predictor.
func BenchmarkQuantizeInterp2D(b *testing.B) {
	vals, cfg := benchField2D(512, 512)
	cfg.Predictor = PredictorInterpolation
	benchCompress(b, vals, cfg)
}

// BenchmarkDequantizeLorenzo2D is the decode-side counterpart.
func BenchmarkDequantizeLorenzo2D(b *testing.B) {
	vals, cfg := benchField2D(512, 512)
	cfg.Predictor = PredictorLorenzo
	comp, err := CompressFloat64(vals, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressFloat64(comp); err != nil {
			b.Fatal(err)
		}
	}
}
