package sz3

import (
	"math"
	"testing"
)

// The scalar reference walk lives in production code now (reference.go,
// promoted in the verified-compression PR so it can serve as the
// differential referee and the trusted re-execution path); these tests
// keep pinning the slab kernels to it byte for byte.

func slabEquivCases(t *testing.T) []struct {
	name string
	vals []float64
	cfg  Config
} {
	t.Helper()
	field2, cfg2 := benchField2D(67, 53) // ragged edge blocks
	field3, cfg3 := benchField3D(17, 13, 11)
	line := make([]float64, 501)
	for i := range line {
		line[i] = math.Sin(float64(i)/40) * 100
	}
	// A hostile field: NaN, infinities, huge magnitudes that force the
	// exact-value fallback, plus zeros.
	hostile := make([]float64, len(field2))
	copy(hostile, field2)
	hostile[3] = math.NaN()
	hostile[70] = math.Inf(1)
	hostile[71] = math.Inf(-1)
	hostile[200] = 1e300
	hostile[201] = -1e300
	hostile[500] = 0

	cases := []struct {
		name string
		vals []float64
		cfg  Config
	}{}
	for _, p := range []PredictorKind{PredictorLorenzo, PredictorRegression, PredictorAuto} {
		c2 := cfg2
		c2.Predictor = p
		cases = append(cases, struct {
			name string
			vals []float64
			cfg  Config
		}{name: "2d-" + p.String(), vals: field2, cfg: c2})
		c3 := cfg3
		c3.Predictor = p
		cases = append(cases, struct {
			name string
			vals []float64
			cfg  Config
		}{name: "3d-" + p.String(), vals: field3, cfg: c3})
		c1 := Config{ErrorBound: 1e-3, Dims: []int{len(line)}, Backend: BackendNone, Predictor: p}
		cases = append(cases, struct {
			name string
			vals []float64
			cfg  Config
		}{name: "1d-" + p.String(), vals: line, cfg: c1})
		ch := cfg2
		ch.Predictor = p
		cases = append(cases, struct {
			name string
			vals []float64
			cfg  Config
		}{name: "hostile-" + p.String(), vals: hostile, cfg: ch})
	}
	return cases
}

// TestSlabMatchesScalarCompress pins the slab kernels to the scalar
// reference implementation: identical compressed bytes for every
// predictor and dimensionality, including edge blocks and values that
// take the exact-storage fallback.
func TestSlabMatchesScalarCompress(t *testing.T) {
	for _, tc := range slabEquivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := tc.cfg.withDefaults(len(tc.vals))
			if err != nil {
				t.Fatal(err)
			}
			want, err := compressReference(tc.vals, Float64, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CompressFloat64(tc.vals, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("stream length %d, scalar reference %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("streams diverge at byte %d", i)
				}
			}
		})
	}
}

// TestSlabDequantMatchesQuantizer pins the decompression slab to the
// scalar dequantizer: decompressing must reproduce the compressor's
// reconstruction bit-for-bit (that identity is what the error-bound
// guarantee rests on).
func TestSlabDequantMatchesQuantizer(t *testing.T) {
	for _, tc := range slabEquivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			comp, err := CompressFloat64(tc.vals, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := DecompressFloat64(comp)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := tc.cfg.withDefaults(len(tc.vals))
			if err != nil {
				t.Fatal(err)
			}
			eb := effectiveBound(tc.vals, cfg)
			for i, v := range got {
				orig := tc.vals[i]
				if math.IsNaN(orig) || math.IsInf(orig, 0) {
					if math.Float64bits(v) != math.Float64bits(orig) {
						t.Fatalf("element %d: special value not stored exactly", i)
					}
					continue
				}
				if math.Abs(v-orig) > eb {
					t.Fatalf("element %d: |%g - %g| exceeds bound %g", i, v, orig, eb)
				}
			}
		})
	}
}
