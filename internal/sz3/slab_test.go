package sz3

import (
	"math"
	"testing"
)

// compressScalar reproduces the pre-slab block-wise compression path:
// generic elemIter walk, per-element coords, scalar lorenzo.predict /
// regressionModel.eval / quantizer.quantize. The slab kernels must
// produce byte-identical streams — they are a re-scheduling of the same
// floating-point operations, not a reformulation.
func compressScalar(vals []float64, dt DataType, cfg Config) ([]byte, error) {
	n := len(vals)
	eb := effectiveBound(vals, cfg)
	q := newQuantizer(eb)
	round32 := dt == Float32
	lz := newLorenzo(cfg.Dims)
	edge := blockEdge(len(cfg.Dims))

	recon := make([]float64, n)
	codes := make([]uint16, 0, n)
	var exact []float64
	var flags []bool
	var models []regressionModel
	coordBuf := make([]int, len(cfg.Dims))

	blockIter(cfg.Dims, edge, func(lo, hi []int) {
		blockN := 1
		for d := range lo {
			blockN *= hi[d] - lo[d]
		}
		useReg := false
		var model regressionModel
		switch cfg.Predictor {
		case PredictorRegression:
			useReg = true
		case PredictorAuto:
			useReg, model = chooseRegression(vals, lz, lo, hi, blockN)
		}
		if useReg && cfg.Predictor == PredictorRegression {
			model = fitRegression(len(lo), blockN, func(yield func([]int, float64)) {
				elemIter(lz.strides, lo, hi, func(idx int, local []int) {
					yield(local, vals[idx])
				})
			})
		}
		flags = append(flags, useReg)
		if useReg {
			models = append(models, model)
		}
		elemIter(lz.strides, lo, hi, func(idx int, local []int) {
			var pred float64
			if useReg {
				pred = model.eval(local)
			} else {
				lz.coords(idx, coordBuf)
				pred = lz.predict(recon, idx, coordBuf)
			}
			code, r, ok := q.quantize(vals[idx], pred, round32)
			if !ok {
				codes = append(codes, 0)
				v := vals[idx]
				if round32 {
					v = float64(float32(v))
				}
				exact = append(exact, v)
				recon[idx] = v
				return
			}
			codes = append(codes, code)
			recon[idx] = r
		})
	})

	return assemblePayload(cfg, dt, eb, flags, models, codes, exact)
}

func slabEquivCases(t *testing.T) []struct {
	name string
	vals []float64
	cfg  Config
} {
	t.Helper()
	field2, cfg2 := benchField2D(67, 53) // ragged edge blocks
	field3, cfg3 := benchField3D(17, 13, 11)
	line := make([]float64, 501)
	for i := range line {
		line[i] = math.Sin(float64(i)/40) * 100
	}
	// A hostile field: NaN, infinities, huge magnitudes that force the
	// exact-value fallback, plus zeros.
	hostile := make([]float64, len(field2))
	copy(hostile, field2)
	hostile[3] = math.NaN()
	hostile[70] = math.Inf(1)
	hostile[71] = math.Inf(-1)
	hostile[200] = 1e300
	hostile[201] = -1e300
	hostile[500] = 0

	cases := []struct {
		name string
		vals []float64
		cfg  Config
	}{}
	for _, p := range []PredictorKind{PredictorLorenzo, PredictorRegression, PredictorAuto} {
		c2 := cfg2
		c2.Predictor = p
		cases = append(cases, struct {
			name string
			vals []float64
			cfg  Config
		}{name: "2d-" + p.String(), vals: field2, cfg: c2})
		c3 := cfg3
		c3.Predictor = p
		cases = append(cases, struct {
			name string
			vals []float64
			cfg  Config
		}{name: "3d-" + p.String(), vals: field3, cfg: c3})
		c1 := Config{ErrorBound: 1e-3, Dims: []int{len(line)}, Backend: BackendNone, Predictor: p}
		cases = append(cases, struct {
			name string
			vals []float64
			cfg  Config
		}{name: "1d-" + p.String(), vals: line, cfg: c1})
		ch := cfg2
		ch.Predictor = p
		cases = append(cases, struct {
			name string
			vals []float64
			cfg  Config
		}{name: "hostile-" + p.String(), vals: hostile, cfg: ch})
	}
	return cases
}

// TestSlabMatchesScalarCompress pins the slab kernels to the scalar
// reference implementation: identical compressed bytes for every
// predictor and dimensionality, including edge blocks and values that
// take the exact-storage fallback.
func TestSlabMatchesScalarCompress(t *testing.T) {
	for _, tc := range slabEquivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := tc.cfg.withDefaults(len(tc.vals))
			if err != nil {
				t.Fatal(err)
			}
			want, err := compressScalar(tc.vals, Float64, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CompressFloat64(tc.vals, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("stream length %d, scalar reference %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("streams diverge at byte %d", i)
				}
			}
		})
	}
}

// TestSlabDequantMatchesQuantizer pins the decompression slab to the
// scalar dequantizer: decompressing must reproduce the compressor's
// reconstruction bit-for-bit (that identity is what the error-bound
// guarantee rests on).
func TestSlabDequantMatchesQuantizer(t *testing.T) {
	for _, tc := range slabEquivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			comp, err := CompressFloat64(tc.vals, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := DecompressFloat64(comp)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := tc.cfg.withDefaults(len(tc.vals))
			if err != nil {
				t.Fatal(err)
			}
			eb := effectiveBound(tc.vals, cfg)
			for i, v := range got {
				orig := tc.vals[i]
				if math.IsNaN(orig) || math.IsInf(orig, 0) {
					if math.Float64bits(v) != math.Float64bits(orig) {
						t.Fatalf("element %d: special value not stored exactly", i)
					}
					continue
				}
				if math.Abs(v-orig) > eb {
					t.Fatalf("element %d: |%g - %g| exceeds bound %g", i, v, orig, eb)
				}
			}
		})
	}
}
