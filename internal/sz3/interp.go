package sz3

// The interpolation predictor implements the strategy SZ3 adopted for
// its later versions: values are reconstructed level by level on a
// dyadic grid, each midpoint predicted by cubic (falling back to linear)
// interpolation of already-reconstructed neighbours. On smooth 1-D
// signals it outperforms Lorenzo because the prediction stencil spans a
// wider neighbourhood.
//
// Traversal: index 0 is the anchor (predicted as 0). For stride
// s = S, S/2, ..., 2 (S = smallest power of two ≥ n), the indices
// i ≡ s/2 (mod s), i < n are processed; every index in [1, n) is visited
// exactly once, and all stencil neighbours (multiples of s) were
// reconstructed at coarser levels.

// interpTraversal calls fn for every index in prediction order together
// with the stride at which it is processed.
func interpTraversal(n int, fn func(idx, stride int)) {
	if n == 0 {
		return
	}
	fn(0, 0)
	s := 1
	for s < n {
		s <<= 1
	}
	for ; s >= 2; s >>= 1 {
		half := s / 2
		for i := half; i < n; i += s {
			fn(i, s)
		}
	}
}

// interpPredict predicts recon[idx] from neighbours at distance
// stride/2 and 3·stride/2, using cubic interpolation when the full
// stencil exists.
func interpPredict(recon []float64, idx, stride, n int) float64 {
	if stride == 0 {
		return 0 // anchor
	}
	half := stride / 2
	l1 := idx - half
	r1 := idx + half
	l2 := idx - 3*half
	r2 := idx + 3*half
	hasR1 := r1 < n
	if hasR1 && l2 >= 0 && r2 < n {
		// Cubic midpoint interpolation on an equally spaced stencil.
		return (-recon[l2] + 9*recon[l1] + 9*recon[r1] - recon[r2]) / 16
	}
	if hasR1 {
		return (recon[l1] + recon[r1]) / 2
	}
	// Right edge: extrapolate from the left neighbours.
	if l2 >= 0 {
		return 2*recon[l1] - recon[l2]
	}
	return recon[l1]
}

// compressInterp runs the interpolation pipeline over a 1-D array,
// returning quantization codes (in traversal order) and exact values for
// unpredictable elements.
func compressInterp(vals []float64, q quantizer, round32 bool) (codes []uint16, exact []float64, recon []float64) {
	n := len(vals)
	recon = make([]float64, n)
	codes = make([]uint16, 0, n)
	interpTraversal(n, func(idx, stride int) {
		pred := interpPredict(recon, idx, stride, n)
		code, r, ok := q.quantize(vals[idx], pred, round32)
		if !ok {
			codes = append(codes, 0)
			v := vals[idx]
			if round32 {
				v = float64(float32(v))
			}
			exact = append(exact, v)
			recon[idx] = v
			return
		}
		codes = append(codes, code)
		recon[idx] = r
	})
	return codes, exact, recon
}

// decompressInterp reverses compressInterp.
func decompressInterp(n int, codes []uint16, exact []float64, q quantizer, round32 bool) ([]float64, error) {
	recon := make([]float64, n)
	codeIdx, exactIdx := 0, 0
	var fail error
	interpTraversal(n, func(idx, stride int) {
		if fail != nil {
			return
		}
		if codeIdx >= len(codes) {
			fail = errTruncatedCodes
			return
		}
		code := codes[codeIdx]
		codeIdx++
		if code == 0 {
			if exactIdx >= len(exact) {
				fail = errTruncatedExact
				return
			}
			recon[idx] = exact[exactIdx]
			exactIdx++
			return
		}
		pred := interpPredict(recon, idx, stride, n)
		recon[idx] = q.dequantize(pred, code, round32)
	})
	if fail != nil {
		return nil, fail
	}
	return recon, nil
}
