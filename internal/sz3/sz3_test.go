package sz3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// field1D produces a smooth 1-D signal with noise, similar in character to
// the exaalt molecular-dynamics traces.
func field1D(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += math.Sin(float64(i)*0.01) * 0.1
		out[i] = v + rng.NormFloat64()*0.001
	}
	return out
}

// field2D produces a smooth 2-D field.
func field2D(nx, ny int) ([]float64, []int) {
	out := make([]float64, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			x, y := float64(i)/float64(nx), float64(j)/float64(ny)
			out[i*ny+j] = math.Sin(6*x)*math.Cos(4*y) + 0.3*x*y
		}
	}
	return out, []int{nx, ny}
}

// field3D produces a smooth 3-D field.
func field3D(nx, ny, nz int) ([]float64, []int) {
	out := make([]float64, nx*ny*nz)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				x, y, z := float64(i)/float64(nx), float64(j)/float64(ny), float64(k)/float64(nz)
				out[(i*ny+j)*nz+k] = math.Exp(-x) * math.Sin(5*y) * math.Cos(3*z)
			}
		}
	}
	return out, []int{nx, ny, nz}
}

func checkBound(t *testing.T, orig, recon []float64, eb float64, label string) {
	t.Helper()
	if len(orig) != len(recon) {
		t.Fatalf("%s: length %d != %d", label, len(recon), len(orig))
	}
	worst := 0.0
	for i := range orig {
		d := math.Abs(orig[i] - recon[i])
		if d > worst {
			worst = d
		}
		if d > eb*(1+1e-12) {
			t.Fatalf("%s: element %d error %g exceeds bound %g (orig %g recon %g)",
				label, i, d, eb, orig[i], recon[i])
		}
	}
	t.Logf("%s: worst error %g (bound %g)", label, worst, eb)
}

func TestErrorBound1D(t *testing.T) {
	data := field1D(100000, 1)
	for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
		for _, pred := range []PredictorKind{PredictorLorenzo, PredictorRegression, PredictorAuto} {
			cfg := Config{ErrorBound: eb, Predictor: pred}
			comp, err := CompressFloat64(data, cfg)
			if err != nil {
				t.Fatalf("eb=%g pred=%v: %v", eb, pred, err)
			}
			got, _, err := DecompressFloat64(comp)
			if err != nil {
				t.Fatalf("eb=%g pred=%v: %v", eb, pred, err)
			}
			checkBound(t, data, got, eb, pred.String())
		}
	}
}

func TestErrorBound2D(t *testing.T) {
	data, dims := field2D(300, 200)
	cfg := Config{ErrorBound: 1e-4, Dims: dims, Predictor: PredictorAuto}
	comp, err := CompressFloat64(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, gotCfg, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, data, got, 1e-4, "2D auto")
	if len(gotCfg.Dims) != 2 || gotCfg.Dims[0] != 300 || gotCfg.Dims[1] != 200 {
		t.Fatalf("dims not preserved: %v", gotCfg.Dims)
	}
}

func TestErrorBound3D(t *testing.T) {
	data, dims := field3D(40, 50, 30)
	for _, pred := range []PredictorKind{PredictorLorenzo, PredictorRegression, PredictorAuto} {
		cfg := Config{ErrorBound: 1e-4, Dims: dims, Predictor: pred}
		comp, err := CompressFloat64(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatal(err)
		}
		checkBound(t, data, got, 1e-4, "3D "+pred.String())
	}
}

func TestFloat32Pipeline(t *testing.T) {
	data64 := field1D(50000, 3)
	data := make([]float32, len(data64))
	for i, v := range data64 {
		data[i] = float32(v)
	}
	cfg := Config{ErrorBound: 1e-3}
	comp, err := CompressFloat32(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat32(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(got[i])); d > 1e-3*(1+1e-6) {
			t.Fatalf("element %d error %g exceeds bound", i, d)
		}
	}
}

func TestCompressionRatioSmoothData(t *testing.T) {
	data, dims := field3D(64, 64, 32)
	cfg := Config{ErrorBound: 1e-4, Dims: dims}
	comp, err := CompressFloat64(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(data)*8) / float64(len(comp))
	t.Logf("3D smooth field ratio: %.2f", ratio)
	if ratio < 3 {
		t.Fatalf("ratio %.2f too low for smooth data; pipeline is not predicting", ratio)
	}
}

func TestRandomDataStillBounded(t *testing.T) {
	// Pure noise defeats prediction but the bound must still hold.
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = rng.Float64() * 1000
	}
	cfg := Config{ErrorBound: 1e-4}
	comp, err := CompressFloat64(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, data, got, 1e-4, "noise")
}

func TestExtremeValuesFallBack(t *testing.T) {
	// Huge magnitudes, infinities are not representable by quantized
	// deltas; they must be stored exactly, not corrupt the stream.
	data := []float64{0, 1e300, -1e300, 1e-300, math.MaxFloat64, 5, 5 + 1e-5}
	cfg := Config{ErrorBound: 1e-4, Predictor: PredictorLorenzo}
	comp, err := CompressFloat64(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, data, got, 1e-4, "extremes")
}

func TestNaNHandled(t *testing.T) {
	data := []float64{1, 2, math.NaN(), 4, 5}
	comp, err := CompressFloat64(data, Config{ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[2]) {
		t.Fatalf("NaN not preserved: %v", got[2])
	}
	for _, i := range []int{0, 1, 3, 4} {
		if math.Abs(got[i]-data[i]) > 1e-4 {
			t.Fatalf("element %d out of bound after NaN", i)
		}
	}
}

func TestBackends(t *testing.T) {
	data := field1D(30000, 4)
	for _, b := range []BackendKind{BackendFastLZ, BackendDeflate, BackendLZ4, BackendNone} {
		cfg := Config{ErrorBound: 1e-4, Backend: b}
		comp, err := CompressFloat64(data, cfg)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		got, gotCfg, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if gotCfg.Backend != b {
			t.Fatalf("backend not recorded: %v != %v", gotCfg.Backend, b)
		}
		checkBound(t, data, got, 1e-4, b.String())
	}
}

func TestConfigValidation(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	if _, err := CompressFloat64(data, Config{ErrorBound: -1}); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := CompressFloat64(data, Config{Dims: []int{3}}); err == nil {
		t.Error("wrong dims product accepted")
	}
	if _, err := CompressFloat64(data, Config{Dims: []int{1, 1, 2, 2}}); err == nil {
		t.Error("4 dims accepted")
	}
	if _, err := CompressFloat64(data, Config{Dims: []int{-2, -2}}); err == nil {
		t.Error("negative dims accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	if _, err := CompressFloat64(nil, Config{}); err == nil {
		t.Skip("empty input compresses; acceptable")
	}
}

func TestCorruptStreamRejected(t *testing.T) {
	data := field1D(1000, 5)
	comp, err := CompressFloat64(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressFloat64(comp[:4]); err == nil {
		t.Error("truncated container accepted")
	}
	bad := append([]byte{}, comp...)
	bad[0] = 'X'
	if _, _, err := DecompressFloat64(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte{}, comp...)
	bad[5] = 200
	if _, _, err := DecompressFloat64(bad); err == nil {
		t.Error("bad backend accepted")
	}
}

func TestWrongTypeRejected(t *testing.T) {
	comp, err := CompressFloat32([]float32{1, 2, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressFloat64(comp); err == nil {
		t.Error("float32 stream decoded as float64")
	}
}

func TestQuickErrorBound(t *testing.T) {
	f := func(seed int64, size uint16, ebExp uint8) bool {
		n := int(size)%5000 + 1
		eb := math.Pow(10, -float64(ebExp%6+1))
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, n)
		v := 0.0
		for i := range data {
			v += rng.NormFloat64()
			data[i] = v
		}
		comp, err := CompressFloat64(data, Config{ErrorBound: eb})
		if err != nil {
			return false
		}
		got, _, err := DecompressFloat64(comp)
		if err != nil || len(got) != n {
			return false
		}
		for i := range data {
			if math.Abs(got[i]-data[i]) > eb*(1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerProperties(t *testing.T) {
	q := newQuantizer(1e-4)
	f := func(orig, pred float64) bool {
		if math.IsNaN(orig) || math.IsInf(orig, 0) || math.IsNaN(pred) || math.IsInf(pred, 0) {
			return true
		}
		code, recon, ok := q.quantize(orig, pred, false)
		if !ok {
			return true // fallback path is always allowed
		}
		if code == 0 {
			return false // code 0 is reserved
		}
		if math.Abs(recon-orig) > 1e-4 {
			return false
		}
		// Decompressor must reproduce the same reconstruction.
		return q.dequantize(pred, code, false) == recon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress3D(b *testing.B) {
	data, dims := field3D(64, 64, 64)
	cfg := Config{ErrorBound: 1e-4, Dims: dims}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressFloat64(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress3D(b *testing.B) {
	data, dims := field3D(64, 64, 64)
	comp, err := CompressFloat64(data, Config{ErrorBound: 1e-4, Dims: dims})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressFloat64(comp); err != nil {
			b.Fatal(err)
		}
	}
}
