package sz3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterpTraversalCoversAllOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 100, 1023, 1024, 1025} {
		seen := make([]int, n)
		order := 0
		interpTraversal(n, func(idx, stride int) {
			if idx < 0 || idx >= n {
				t.Fatalf("n=%d: index %d out of range", n, idx)
			}
			seen[idx]++
			order++
		})
		if order != n {
			t.Fatalf("n=%d: %d visits", n, order)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestInterpNeighboursReady(t *testing.T) {
	// Every stencil neighbour must be processed before the index that
	// uses it.
	n := 1000
	done := make([]bool, n)
	interpTraversal(n, func(idx, stride int) {
		if stride > 0 {
			half := stride / 2
			if l := idx - half; l >= 0 && !done[l] {
				t.Fatalf("index %d used unprocessed left neighbour %d", idx, l)
			}
			if r := idx + half; r < n && !done[r] {
				t.Fatalf("index %d used unprocessed right neighbour %d", idx, r)
			}
		}
		done[idx] = true
	})
}

func TestInterpErrorBound(t *testing.T) {
	data := field1D(50000, 21)
	for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
		cfg := Config{ErrorBound: eb, Predictor: PredictorInterpolation}
		comp, err := CompressFloat64(data, cfg)
		if err != nil {
			t.Fatalf("eb=%g: %v", eb, err)
		}
		got, gotCfg, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatalf("eb=%g: %v", eb, err)
		}
		if gotCfg.Predictor != PredictorInterpolation {
			t.Fatalf("predictor not preserved: %v", gotCfg.Predictor)
		}
		checkBound(t, data, got, eb, "interp")
	}
}

func TestInterpBeatsLorenzoOnSmoothData(t *testing.T) {
	// On a very smooth signal the wide cubic stencil should out-predict
	// the order-1 Lorenzo predictor, giving a better ratio.
	n := 100000
	data := make([]float64, n)
	for i := range data {
		x := float64(i) / float64(n)
		data[i] = math.Sin(12*x) + 0.5*math.Cos(31*x)
	}
	cfg := Config{ErrorBound: 1e-6}
	cfg.Predictor = PredictorLorenzo
	lor, err := CompressFloat64(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Predictor = PredictorInterpolation
	itp, err := CompressFloat64(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("lorenzo %d bytes, interpolation %d bytes", len(lor), len(itp))
	if len(itp) >= len(lor) {
		t.Fatalf("interpolation (%d) not better than lorenzo (%d) on smooth data", len(itp), len(lor))
	}
}

func TestInterpFloat32(t *testing.T) {
	data := make([]float32, 20000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.001))
	}
	comp, err := CompressFloat32(data, Config{ErrorBound: 1e-3, Predictor: PredictorInterpolation})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat32(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(got[i])); d > 1e-3*(1+1e-6) {
			t.Fatalf("element %d error %g", i, d)
		}
	}
}

func TestRelativeBoundMode(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Data spanning a range of ~2000: REL 1e-4 → abs bound ≈ 0.2.
	data := make([]float64, 30000)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 2
		data[i] = v
	}
	lo, hi := data[0], data[0]
	for _, x := range data {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	rel := 1e-4
	absEquiv := rel * (hi - lo)
	comp, err := CompressFloat64(data, Config{ErrorBound: rel, Mode: BoundRelative})
	if err != nil {
		t.Fatal(err)
	}
	got, gotCfg, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, data, got, absEquiv, "relative mode")
	// The stream records the resolved absolute bound.
	if gotCfg.ErrorBound < absEquiv*0.99 || gotCfg.ErrorBound > absEquiv*1.01 {
		t.Fatalf("stored bound %g, want ≈%g", gotCfg.ErrorBound, absEquiv)
	}
	// A REL bound on wide-range data must compress better than the same
	// numeric ABS bound.
	compAbs, err := CompressFloat64(data, Config{ErrorBound: rel})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(compAbs) {
		t.Fatalf("REL stream (%d) not smaller than ABS stream (%d)", len(comp), len(compAbs))
	}
}

func TestRelativeBoundConstantData(t *testing.T) {
	// Zero range: the bound falls back to the numeric value; must not
	// divide by zero or violate anything.
	data := make([]float64, 1000)
	for i := range data {
		data[i] = 42
	}
	comp, err := CompressFloat64(data, Config{ErrorBound: 1e-4, Mode: BoundRelative})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, data, got, 1e-4, "constant REL")
}

func TestQuickInterpBound(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		n := int(size)%4000 + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, n)
		v := 0.0
		for i := range data {
			v += rng.NormFloat64()
			data[i] = v
		}
		comp, err := CompressFloat64(data, Config{ErrorBound: 1e-4, Predictor: PredictorInterpolation})
		if err != nil {
			return false
		}
		got, _, err := DecompressFloat64(comp)
		if err != nil || len(got) != n {
			return false
		}
		for i := range data {
			if math.Abs(got[i]-data[i]) > 1e-4*(1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
