package sz3

import "math"

// Metrics quantifies lossy reconstruction quality the way the SZ /
// SDRBench literature reports it: maximum absolute error, RMSE, PSNR
// (computed against the data's value range, the SZ convention), and the
// compression ratio.
type Metrics struct {
	// MaxAbsError is max_i |orig_i − recon_i| (must be ≤ the bound).
	MaxAbsError float64
	// RMSE is the root-mean-square error.
	RMSE float64
	// PSNR is 20·log10(range/RMSE) in dB; +Inf for exact reconstruction,
	// 0 when undefined (empty or constant data with nonzero error).
	PSNR float64
	// ValueRange is max − min of the original data.
	ValueRange float64
	// Ratio is originalBytes / compressedBytes; zero when compressedLen
	// was not supplied.
	Ratio float64
}

// Evaluate computes reconstruction metrics for a decompressed array.
// compressedLen may be 0 when only error metrics are wanted. NaN and
// infinite elements are excluded from the error statistics (they travel
// through the exact-value path and reconstruct bit-identically).
func Evaluate(orig, recon []float64, elemBytes, compressedLen int) Metrics {
	var m Metrics
	n := len(orig)
	if n == 0 || len(recon) != n {
		return m
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var sumSq float64
	counted := 0
	for i := 0; i < n; i++ {
		a, b := orig[i], recon[i]
		if math.IsNaN(a) || math.IsInf(a, 0) {
			continue
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
		d := math.Abs(a - b)
		if d > m.MaxAbsError {
			m.MaxAbsError = d
		}
		sumSq += d * d
		counted++
	}
	if counted == 0 {
		return m
	}
	m.RMSE = math.Sqrt(sumSq / float64(counted))
	m.ValueRange = hi - lo
	switch {
	case m.RMSE == 0:
		m.PSNR = math.Inf(1)
	case m.ValueRange > 0:
		m.PSNR = 20 * math.Log10(m.ValueRange/m.RMSE)
	}
	if compressedLen > 0 {
		m.Ratio = float64(n*elemBytes) / float64(compressedLen)
	}
	return m
}
