package sz3

import (
	"encoding/binary"
	"fmt"

	"pedal/internal/bits"
	"pedal/internal/huffman"
)

// szMaxCodeBits limits Huffman code lengths over the quantization-code
// alphabet. 20 bits keeps decoder tables small while leaving ample room
// for the 65536-symbol alphabet.
const szMaxCodeBits = 20

// encodeCodes Huffman-encodes the quantization code sequence. Layout:
//
//	[varint numSymbolsUsed]
//	numSymbolsUsed × [varint symbolDelta][len byte]   (sparse length table)
//	[varint codeCount]
//	[varint bitstreamLen] [bitstream bytes]
func encodeCodes(codes []uint16) ([]byte, error) {
	freq := make([]uint64, numQuantCodes)
	for _, c := range codes {
		freq[c]++
	}
	var out []byte
	if len(codes) == 0 {
		return binary.AppendUvarint(out, 0), nil
	}
	lengths, err := huffman.BuildLengths(freq, szMaxCodeBits)
	if err != nil {
		return nil, err
	}
	code, err := huffman.CanonicalCode(lengths)
	if err != nil {
		return nil, err
	}
	// Sparse table: (delta, length) pairs over used symbols.
	used := 0
	for _, l := range lengths {
		if l > 0 {
			used++
		}
	}
	out = binary.AppendUvarint(out, uint64(used))
	prev := 0
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		out = binary.AppendUvarint(out, uint64(s-prev))
		out = append(out, l)
		prev = s
	}
	// Two codes fold into each 64-bit write: szMaxCodeBits caps a pair at
	// 40 bits, comfortably inside WriteBits64's 56-bit budget.
	w := bits.NewWriter(len(codes) / 2)
	cbits, clens := code.Bits, code.Len
	i := 0
	for ; i+1 < len(codes); i += 2 {
		c1, c2 := codes[i], codes[i+1]
		l1, l2 := uint(clens[c1]), uint(clens[c2])
		acc := uint64(bits.Reverse(cbits[c1], l1)) |
			uint64(bits.Reverse(cbits[c2], l2))<<l1
		w.WriteBits64(acc, l1+l2)
	}
	if i < len(codes) {
		c := codes[i]
		l := uint(clens[c])
		w.WriteBits(bits.Reverse(cbits[c], l), l)
	}
	stream := w.Bytes()
	out = binary.AppendUvarint(out, uint64(len(codes)))
	out = binary.AppendUvarint(out, uint64(len(stream)))
	return append(out, stream...), nil
}

// decodeCodes reverses encodeCodes, returning the codes and the number of
// bytes consumed from src.
func decodeCodes(src []byte) ([]uint16, int, error) {
	pos := 0
	used, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: symbol count", ErrCorrupt)
	}
	pos += n
	if used == 0 {
		return nil, pos, nil
	}
	if used > numQuantCodes {
		return nil, 0, fmt.Errorf("%w: %d symbols", ErrCorrupt, used)
	}
	lengths := make([]uint8, numQuantCodes)
	sym := 0
	for i := uint64(0); i < used; i++ {
		delta, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: symbol delta", ErrCorrupt)
		}
		pos += n
		if pos >= len(src) {
			return nil, 0, fmt.Errorf("%w: truncated length table", ErrCorrupt)
		}
		sym += int(delta)
		if sym >= numQuantCodes {
			return nil, 0, fmt.Errorf("%w: symbol %d out of range", ErrCorrupt, sym)
		}
		lengths[sym] = src[pos]
		pos++
	}
	count, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: code count", ErrCorrupt)
	}
	pos += n
	streamLen, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: stream length", ErrCorrupt)
	}
	pos += n
	if pos+int(streamLen) > len(src) {
		return nil, 0, fmt.Errorf("%w: truncated bitstream", ErrCorrupt)
	}
	// Quantization codes carry no extra bits, so every symbol may fuse:
	// DecodePair retires two short codes per table lookup. The loop stops
	// pairing one symbol early so a fused read can never consume padding
	// past the declared count.
	dec, err := huffman.NewPairedDecoder(lengths, numQuantCodes)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: code table: %v", ErrCorrupt, err)
	}
	r := bits.NewReader(src[pos : pos+int(streamLen)])
	codes := make([]uint16, count)
	i := 0
	for i+1 < len(codes) {
		s1, s2, ok2, err := dec.DecodePair(r)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: code %d: %v", ErrCorrupt, i, err)
		}
		codes[i] = uint16(s1)
		i++
		if ok2 {
			codes[i] = uint16(s2)
			i++
		}
	}
	for ; i < len(codes); i++ {
		s, err := dec.Decode(r)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: code %d: %v", ErrCorrupt, i, err)
		}
		codes[i] = uint16(s)
	}
	return codes, pos + int(streamLen), nil
}
