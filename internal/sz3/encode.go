package sz3

import (
	"encoding/binary"
	"fmt"

	"pedal/internal/bits"
	"pedal/internal/huffman"
)

// szMaxCodeBits limits Huffman code lengths over the quantization-code
// alphabet. 20 bits keeps decoder tables small while leaving ample room
// for the 65536-symbol alphabet.
const szMaxCodeBits = 20

// encodeCodes Huffman-encodes the quantization code sequence. Layout:
//
//	[varint numSymbolsUsed]
//	numSymbolsUsed × [varint symbolDelta][len byte]   (sparse length table)
//	[varint codeCount]
//	[varint bitstreamLen] [bitstream bytes]
func encodeCodes(codes []uint16) ([]byte, error) {
	freq := make([]uint64, numQuantCodes)
	for _, c := range codes {
		freq[c]++
	}
	var out []byte
	if len(codes) == 0 {
		return binary.AppendUvarint(out, 0), nil
	}
	lengths, err := huffman.BuildLengths(freq, szMaxCodeBits)
	if err != nil {
		return nil, err
	}
	code, err := huffman.CanonicalCode(lengths)
	if err != nil {
		return nil, err
	}
	// Sparse table: (delta, length) pairs over used symbols.
	used := 0
	for _, l := range lengths {
		if l > 0 {
			used++
		}
	}
	out = binary.AppendUvarint(out, uint64(used))
	prev := 0
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		out = binary.AppendUvarint(out, uint64(s-prev))
		out = append(out, l)
		prev = s
	}
	w := bits.NewWriter(len(codes) / 2)
	for _, c := range codes {
		l := uint(code.Len[c])
		w.WriteBits(bits.Reverse(code.Bits[c], l), l)
	}
	stream := w.Bytes()
	out = binary.AppendUvarint(out, uint64(len(codes)))
	out = binary.AppendUvarint(out, uint64(len(stream)))
	return append(out, stream...), nil
}

// decodeCodes reverses encodeCodes, returning the codes and the number of
// bytes consumed from src.
func decodeCodes(src []byte) ([]uint16, int, error) {
	pos := 0
	used, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: symbol count", ErrCorrupt)
	}
	pos += n
	if used == 0 {
		return nil, pos, nil
	}
	if used > numQuantCodes {
		return nil, 0, fmt.Errorf("%w: %d symbols", ErrCorrupt, used)
	}
	lengths := make([]uint8, numQuantCodes)
	sym := 0
	for i := uint64(0); i < used; i++ {
		delta, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: symbol delta", ErrCorrupt)
		}
		pos += n
		if pos >= len(src) {
			return nil, 0, fmt.Errorf("%w: truncated length table", ErrCorrupt)
		}
		sym += int(delta)
		if sym >= numQuantCodes {
			return nil, 0, fmt.Errorf("%w: symbol %d out of range", ErrCorrupt, sym)
		}
		lengths[sym] = src[pos]
		pos++
	}
	count, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: code count", ErrCorrupt)
	}
	pos += n
	streamLen, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: stream length", ErrCorrupt)
	}
	pos += n
	if pos+int(streamLen) > len(src) {
		return nil, 0, fmt.Errorf("%w: truncated bitstream", ErrCorrupt)
	}
	dec, err := huffman.NewDecoder(lengths)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: code table: %v", ErrCorrupt, err)
	}
	r := bits.NewReader(src[pos : pos+int(streamLen)])
	codes := make([]uint16, count)
	for i := range codes {
		s, err := dec.Decode(r)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: code %d: %v", ErrCorrupt, i, err)
		}
		codes[i] = uint16(s)
	}
	return codes, pos + int(streamLen), nil
}
