// Package sz3 implements an SZ3-style modular error-bounded lossy
// compressor for scientific floating-point data, following the pipeline
// the paper describes in §II-B: preprocessor → predictor (Lorenzo /
// block-wise linear regression) → linear-scaling quantizer → Huffman
// entropy encoder → pluggable lossless backend.
//
// The central guarantee is the absolute error bound: for every element,
// |decompressed - original| <= ErrorBound. The compressor predicts each
// value from already-reconstructed neighbours (the same values the
// decompressor will see), quantizes the prediction error to an integer
// code, and falls back to storing the exact value whenever quantization
// cannot honour the bound.
package sz3

import (
	"errors"
	"fmt"
)

// DataType identifies the element type of the input array, mirroring the
// datatype parameter of the PEDAL_compress API (paper Listing 1).
type DataType uint8

// Supported element types.
const (
	Float32 DataType = iota + 1
	Float64
)

// Size returns the element size in bytes.
func (t DataType) Size() int {
	switch t {
	case Float32:
		return 4
	case Float64:
		return 8
	default:
		return 0
	}
}

func (t DataType) String() string {
	switch t {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("DataType(%d)", uint8(t))
	}
}

// PredictorKind selects the prediction stage.
type PredictorKind uint8

// Predictor choices. Auto picks Lorenzo or regression per block using an
// error estimate, which is SZ3's hybrid strategy. Interpolation is the
// dyadic-grid cubic-interpolation predictor SZ3 adopted for its later
// versions (1-D arrays only).
const (
	PredictorLorenzo PredictorKind = iota + 1
	PredictorRegression
	PredictorAuto
	PredictorInterpolation
)

func (p PredictorKind) String() string {
	switch p {
	case PredictorLorenzo:
		return "lorenzo"
	case PredictorRegression:
		return "regression"
	case PredictorAuto:
		return "auto"
	case PredictorInterpolation:
		return "interpolation"
	default:
		return fmt.Sprintf("PredictorKind(%d)", uint8(p))
	}
}

// BoundMode selects how Config.ErrorBound is interpreted.
type BoundMode uint8

// Bound modes. Absolute uses ErrorBound directly; Relative scales it by
// the data's value range (SZ's "REL" mode), so ErrorBound=1e-3 means
// 0.1% of (max-min).
const (
	BoundAbsolute BoundMode = iota + 1
	BoundRelative
)

func (m BoundMode) String() string {
	switch m {
	case BoundAbsolute:
		return "abs"
	case BoundRelative:
		return "rel"
	default:
		return fmt.Sprintf("BoundMode(%d)", uint8(m))
	}
}

// BackendKind selects the final lossless stage. The paper's PEDAL design
// swaps this stage between the SoC software implementation and the DPU
// C-Engine (§III-C.2, Fig. 4).
type BackendKind uint8

// Backend choices. BackendFastLZ plays the role of SZ3's built-in zstd.
const (
	BackendFastLZ BackendKind = iota + 1
	BackendDeflate
	BackendLZ4
	// BackendNone stores the entropy-coded stream unwrapped; useful for
	// isolating pipeline stage costs in benchmarks.
	BackendNone
)

func (b BackendKind) String() string {
	switch b {
	case BackendFastLZ:
		return "fastlz"
	case BackendDeflate:
		return "deflate"
	case BackendLZ4:
		return "lz4"
	case BackendNone:
		return "none"
	default:
		return fmt.Sprintf("BackendKind(%d)", uint8(b))
	}
}

// DefaultErrorBound is the paper's evaluation setting (§III-A): "an error
// bound of 1e-4 was employed".
const DefaultErrorBound = 1e-4

// Config parameterises compression.
type Config struct {
	// ErrorBound is the absolute error bound. Must be > 0.
	ErrorBound float64
	// Dims are the array dimensions, slowest-varying first. The product
	// must equal the element count. 1-3 dimensions are supported.
	Dims []int
	// Predictor selects the prediction stage; zero value means Auto.
	Predictor PredictorKind
	// Backend selects the lossless stage; zero value means FastLZ.
	Backend BackendKind
	// Mode selects absolute or relative error bounds; zero means
	// Absolute. In Relative mode the effective absolute bound is
	// ErrorBound × (max − min) of the input.
	Mode BoundMode
}

// Errors returned by config validation and the codec.
var (
	ErrBadConfig = errors.New("sz3: invalid config")
	ErrCorrupt   = errors.New("sz3: corrupt stream")
)

// withDefaults returns cfg with zero values replaced by defaults.
func (c Config) withDefaults(n int) (Config, error) {
	if c.ErrorBound == 0 {
		c.ErrorBound = DefaultErrorBound
	}
	if c.ErrorBound <= 0 {
		return c, fmt.Errorf("%w: error bound %g", ErrBadConfig, c.ErrorBound)
	}
	if c.Predictor == 0 {
		c.Predictor = PredictorAuto
	}
	if c.Backend == 0 {
		c.Backend = BackendFastLZ
	}
	if len(c.Dims) == 0 {
		c.Dims = []int{n}
	}
	if len(c.Dims) > 3 {
		return c, fmt.Errorf("%w: %d dims (max 3)", ErrBadConfig, len(c.Dims))
	}
	prod := 1
	for _, d := range c.Dims {
		if d <= 0 {
			return c, fmt.Errorf("%w: dimension %d", ErrBadConfig, d)
		}
		prod *= d
	}
	if prod != n {
		return c, fmt.Errorf("%w: dims %v product %d != element count %d", ErrBadConfig, c.Dims, prod, n)
	}
	switch c.Predictor {
	case PredictorLorenzo, PredictorRegression, PredictorAuto, PredictorInterpolation:
	default:
		return c, fmt.Errorf("%w: predictor %d", ErrBadConfig, c.Predictor)
	}
	if c.Mode == 0 {
		c.Mode = BoundAbsolute
	}
	switch c.Mode {
	case BoundAbsolute, BoundRelative:
	default:
		return c, fmt.Errorf("%w: bound mode %d", ErrBadConfig, c.Mode)
	}
	switch c.Backend {
	case BackendFastLZ, BackendDeflate, BackendLZ4, BackendNone:
	default:
		return c, fmt.Errorf("%w: backend %d", ErrBadConfig, c.Backend)
	}
	return c, nil
}

// blockEdge is the per-dimension block size used by block-wise processing.
// SZ3 uses 6 for 3-D data; we keep that and use larger edges for lower
// dimensionality so blocks hold a comparable element count.
func blockEdge(ndims int) int {
	switch ndims {
	case 1:
		return 256
	case 2:
		return 16
	default:
		return 6
	}
}
