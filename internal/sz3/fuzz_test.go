package sz3

import (
	"errors"
	"math"
	"testing"
)

// FuzzDecompressContainer must never panic on arbitrary container bytes.
func FuzzDecompressContainer(f *testing.F) {
	seed, _ := CompressFloat64([]float64{1, 2, 3, 4, 5}, Config{ErrorBound: 1e-4})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'S', 'Z', '3', 'G', 1, 1})
	f.Add([]byte{'S', 'Z', '3', 'G', 1, 4, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, dt, _, err := decompress(data)
		if err == nil {
			if dt != Float32 && dt != Float64 {
				t.Fatalf("invalid dtype %v accepted", dt)
			}
			_ = vals
		}
	})
}

// FuzzRoundTripBound compresses arbitrary float series and requires the
// error bound to hold on every element.
func FuzzRoundTripBound(f *testing.F) {
	f.Add(int64(1), uint16(100))
	f.Add(int64(42), uint16(3000))
	f.Fuzz(func(t *testing.T, seed int64, n uint16) {
		count := int(n)%4000 + 1
		vals := make([]float64, count)
		s := seed
		for i := range vals {
			// Cheap deterministic pseudo-noise without math/rand.
			s = s*6364136223846793005 + 1442695040888963407
			vals[i] = float64(s%100000) / 1000
		}
		comp, err := CompressFloat64(vals, Config{ErrorBound: 1e-4})
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		got, _, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		for i := range vals {
			if math.Abs(got[i]-vals[i]) > 1e-4*(1+1e-12) {
				t.Fatalf("element %d error %g", i, math.Abs(got[i]-vals[i]))
			}
		}
	})
}

// FuzzSZ3DecodeCorrupt is the silent-data-corruption fuzzer for the SZ3
// container: a well-formed stream with one flipped bit (and optional
// truncation) must decode, or fail with the typed ErrCorrupt — never
// panic and never surface an untyped error. Typed failures are what the
// verification layers above rely on to classify corruption.
func FuzzSZ3DecodeCorrupt(f *testing.F) {
	f.Add(int64(7), uint16(64), uint32(40), uint8(0))
	f.Add(int64(1), uint16(500), uint32(3000), uint8(3))
	f.Add(int64(99), uint16(9), uint32(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, bitPos uint32, cut uint8) {
		if n == 0 {
			n = 1
		}
		vals := make([]float64, n)
		x := uint64(seed)
		for i := range vals {
			x = x*6364136223846793005 + 1442695040888963407
			vals[i] = math.Sin(float64(i)*0.01) + float64(x%1000)/1e6
		}
		comp, err := CompressFloat64(vals, Config{ErrorBound: 1e-3})
		if err != nil || len(comp) == 0 {
			return
		}
		mut := append([]byte(nil), comp...)
		pos := int(bitPos) % (len(mut) * 8)
		mut[pos/8] ^= 1 << (pos % 8)
		if c := int(cut); c > 0 && c < len(mut) {
			mut = mut[:len(mut)-c]
		}
		out, _, err := DecompressFloat64(mut)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadConfig) {
				t.Fatalf("untyped sz3 decode error on corrupt stream: %v", err)
			}
			return
		}
		_ = out
	})
}
