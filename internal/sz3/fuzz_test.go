package sz3

import (
	"math"
	"testing"
)

// FuzzDecompressContainer must never panic on arbitrary container bytes.
func FuzzDecompressContainer(f *testing.F) {
	seed, _ := CompressFloat64([]float64{1, 2, 3, 4, 5}, Config{ErrorBound: 1e-4})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'S', 'Z', '3', 'G', 1, 1})
	f.Add([]byte{'S', 'Z', '3', 'G', 1, 4, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, dt, _, err := decompress(data)
		if err == nil {
			if dt != Float32 && dt != Float64 {
				t.Fatalf("invalid dtype %v accepted", dt)
			}
			_ = vals
		}
	})
}

// FuzzRoundTripBound compresses arbitrary float series and requires the
// error bound to hold on every element.
func FuzzRoundTripBound(f *testing.F) {
	f.Add(int64(1), uint16(100))
	f.Add(int64(42), uint16(3000))
	f.Fuzz(func(t *testing.T, seed int64, n uint16) {
		count := int(n)%4000 + 1
		vals := make([]float64, count)
		s := seed
		for i := range vals {
			// Cheap deterministic pseudo-noise without math/rand.
			s = s*6364136223846793005 + 1442695040888963407
			vals[i] = float64(s%100000) / 1000
		}
		comp, err := CompressFloat64(vals, Config{ErrorBound: 1e-4})
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		got, _, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		for i := range vals {
			if math.Abs(got[i]-vals[i]) > 1e-4*(1+1e-12) {
				t.Fatalf("element %d error %g", i, math.Abs(got[i]-vals[i]))
			}
		}
	})
}
