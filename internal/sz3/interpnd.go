package sz3

// Multi-dimensional interpolation: SZ3's level-by-level strategy applied
// dimension by dimension. At each dyadic level s (from the top down),
// dimension d refines the points whose d-coordinate is an odd multiple
// of s/2, with earlier dimensions already refined to the s/2 grid and
// later dimensions still on the s grid. Each point is predicted by cubic
// (or linear) interpolation along dimension d only — the 1-D stencil of
// interpPredict applied with a stride in that dimension.
//
// The traversal visits every element exactly once and every stencil
// neighbour strictly before its dependants (verified exhaustively in the
// tests).

// ndTraversal calls fn(idx, strideElems, n1d) for every element in
// prediction order: idx is the row-major index, strideElems the element
// distance of the 1-D stencil step (s/2 along the active dimension), and
// n1d the extent of the active dimension line so edge handling matches
// the 1-D predictor. The anchor (origin) is visited first with stride 0.
func ndTraversal(dims []int, fn func(idx, strideElems, lineLen, linePos, coordStep int)) {
	nd := len(dims)
	total := 1
	maxDim := 0
	for _, d := range dims {
		total *= d
		if d > maxDim {
			maxDim = d
		}
	}
	if total == 0 {
		return
	}
	rowStrides := make([]int, nd)
	rs := 1
	for d := nd - 1; d >= 0; d-- {
		rowStrides[d] = rs
		rs *= dims[d]
	}
	fn(0, 0, 0, 0, 0)

	S := 1
	for S < maxDim {
		S <<= 1
	}
	coord := make([]int, nd)
	for s := S; s >= 2; s >>= 1 {
		half := s / 2
		for d := 0; d < nd; d++ {
			// Enumerate points: coord[d] ∈ odd multiples of half;
			// coord[d'] for d'<d ∈ multiples of half; for d'>d ∈
			// multiples of s.
			var walk func(dd int)
			walk = func(dd int) {
				if dd == nd {
					idx := 0
					for k := 0; k < nd; k++ {
						idx += coord[k] * rowStrides[k]
					}
					fn(idx, half*rowStrides[d], dims[d], coord[d], half)
					return
				}
				var step, start int
				switch {
				case dd == d:
					start, step = half, s
				case dd < d:
					start, step = 0, half
				default:
					start, step = 0, s
				}
				for c := start; c < dims[dd]; c += step {
					coord[dd] = c
					walk(dd + 1)
				}
			}
			walk(0)
		}
	}
}

// ndPredict predicts the value at idx from neighbours spaced strideElems
// apart along the active dimension line. linePos and lineLen describe
// the position within that dimension so bounds are respected.
func ndPredict(recon []float64, idx, strideElems, lineLen, linePos, lineStepCoord int) float64 {
	if strideElems == 0 {
		return 0 // anchor
	}
	// linePos is the coordinate along the active dimension;
	// lineStepCoord is the coordinate distance of one stencil step. The
	// left neighbour at linePos-lineStepCoord always exists (the
	// traversal starts at coordinate lineStepCoord).
	r1 := linePos + lineStepCoord
	l2 := linePos - 3*lineStepCoord
	r2 := linePos + 3*lineStepCoord
	il1 := idx - strideElems
	ir1 := idx + strideElems
	il2 := idx - 3*strideElems
	ir2 := idx + 3*strideElems
	hasR1 := r1 < lineLen
	if hasR1 && l2 >= 0 && r2 < lineLen {
		return (-recon[il2] + 9*recon[il1] + 9*recon[ir1] - recon[ir2]) / 16
	}
	if hasR1 {
		return (recon[il1] + recon[ir1]) / 2
	}
	if l2 >= 0 {
		return 2*recon[il1] - recon[il2]
	}
	return recon[il1]
}

// compressInterpND runs the interpolation pipeline over an N-D array.
func compressInterpND(vals []float64, dims []int, q quantizer, round32 bool) (codes []uint16, exact []float64) {
	n := len(vals)
	recon := make([]float64, n)
	codes = make([]uint16, 0, n)
	// Recover the coordinate step from element stride: the active
	// dimension's row stride divides strideElems; we pass the coordinate
	// distance directly instead by re-deriving it in the callback.
	ndTraversal(dims, func(idx, strideElems, lineLen, linePos, step int) {
		pred := ndPredict(recon, idx, strideElems, lineLen, linePos, step)
		code, r, ok := q.quantize(vals[idx], pred, round32)
		if !ok {
			codes = append(codes, 0)
			v := vals[idx]
			if round32 {
				v = float64(float32(v))
			}
			exact = append(exact, v)
			recon[idx] = v
			return
		}
		codes = append(codes, code)
		recon[idx] = r
	})
	return codes, exact
}

// decompressInterpND reverses compressInterpND.
func decompressInterpND(total int, dims []int, codes []uint16, exact []float64, q quantizer, round32 bool) ([]float64, error) {
	recon := make([]float64, total)
	codeIdx, exactIdx := 0, 0
	var fail error
	ndTraversal(dims, func(idx, strideElems, lineLen, linePos, step int) {
		if fail != nil {
			return
		}
		if codeIdx >= len(codes) {
			fail = errTruncatedCodes
			return
		}
		code := codes[codeIdx]
		codeIdx++
		if code == 0 {
			if exactIdx >= len(exact) {
				fail = errTruncatedExact
				return
			}
			recon[idx] = exact[exactIdx]
			exactIdx++
			return
		}
		pred := ndPredict(recon, idx, strideElems, lineLen, linePos, step)
		recon[idx] = q.dequantize(pred, code, round32)
	})
	if fail != nil {
		return nil, fail
	}
	return recon, nil
}
