package sz3

import (
	"encoding/binary"
	"fmt"
	"math"

	"pedal/internal/fastlz"
	"pedal/internal/flate"
	"pedal/internal/lz4"
)

// Container layout:
//
//	"SZ3G" | version byte | backend byte | backend-compressed payload
//
// Payload layout (all integers varint unless noted):
//
//	dtype byte | errorBound float64 LE | ndims | dims...
//	blockFlagCount | packed flag bits
//	modelCount | models (4 × float32 LE each)
//	codes section (see encodeCodes)
//	exactCount | exact values (dtype-sized LE each)
const (
	containerVersion = 1
)

var magic = [4]byte{'S', 'Z', '3', 'G'}

// CompressFloat64 compresses a float64 array under cfg.
func CompressFloat64(data []float64, cfg Config) ([]byte, error) {
	cfg, err := cfg.withDefaults(len(data))
	if err != nil {
		return nil, err
	}
	return compress(data, Float64, cfg)
}

// CompressFloat32 compresses a float32 array under cfg.
func CompressFloat32(data []float32, cfg Config) ([]byte, error) {
	cfg, err := cfg.withDefaults(len(data))
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(data))
	for i, v := range data {
		vals[i] = float64(v)
	}
	return compress(vals, Float32, cfg)
}

// DecompressFloat64 decompresses a stream produced by CompressFloat64.
func DecompressFloat64(comp []byte) ([]float64, Config, error) {
	vals, dt, cfg, err := decompress(comp)
	if err != nil {
		return nil, cfg, err
	}
	if dt != Float64 {
		return nil, cfg, fmt.Errorf("%w: stream holds %v, not float64", ErrCorrupt, dt)
	}
	return vals, cfg, nil
}

// DecompressFloat32 decompresses a stream produced by CompressFloat32.
func DecompressFloat32(comp []byte) ([]float32, Config, error) {
	vals, dt, cfg, err := decompress(comp)
	if err != nil {
		return nil, cfg, err
	}
	if dt != Float32 {
		return nil, cfg, fmt.Errorf("%w: stream holds %v, not float32", ErrCorrupt, dt)
	}
	out := make([]float32, len(vals))
	for i, v := range vals {
		out[i] = float32(v)
	}
	return out, cfg, nil
}

// blockIter walks the array block by block in raster order, invoking fn
// with the block's bounds (inclusive start, exclusive end per dimension).
func blockIter(dims []int, edge int, fn func(lo, hi []int)) {
	nd := len(dims)
	lo := make([]int, nd)
	hi := make([]int, nd)
	var walk func(d int)
	walk = func(d int) {
		if d == nd {
			fn(lo, hi)
			return
		}
		for s := 0; s < dims[d]; s += edge {
			e := s + edge
			if e > dims[d] {
				e = dims[d]
			}
			lo[d], hi[d] = s, e
			walk(d + 1)
		}
	}
	walk(0)
}

// elemIter walks the elements of one block in raster order, yielding the
// global row-major index and block-local coordinates.
func elemIter(strides []int, lo, hi []int, fn func(idx int, local []int)) {
	nd := len(lo)
	local := make([]int, nd)
	cur := make([]int, nd)
	copy(cur, lo)
	for {
		idx := 0
		for d := 0; d < nd; d++ {
			idx += cur[d] * strides[d]
			local[d] = cur[d] - lo[d]
		}
		fn(idx, local)
		// Increment odometer.
		d := nd - 1
		for ; d >= 0; d-- {
			cur[d]++
			if cur[d] < hi[d] {
				break
			}
			cur[d] = lo[d]
		}
		if d < 0 {
			return
		}
	}
}

var (
	errTruncatedCodes = fmt.Errorf("%w: fewer codes than elements", ErrCorrupt)
	errTruncatedExact = fmt.Errorf("%w: missing exact value", ErrCorrupt)
)

// effectiveBound resolves the absolute error bound, scaling by the data
// range in Relative mode.
func effectiveBound(vals []float64, cfg Config) float64 {
	if cfg.Mode != BoundRelative {
		return cfg.ErrorBound
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	r := hi - lo
	if !(r > 0) || math.IsInf(r, 0) {
		return cfg.ErrorBound
	}
	return cfg.ErrorBound * r
}

func compress(vals []float64, dt DataType, cfg Config) ([]byte, error) {
	n := len(vals)
	eb := effectiveBound(vals, cfg)
	q := newQuantizer(eb)
	round32 := dt == Float32
	lz := newLorenzo(cfg.Dims)
	edge := blockEdge(len(cfg.Dims))

	var flags []bool
	var models []regressionModel

	if cfg.Predictor == PredictorInterpolation {
		codes, exact := compressInterpND(vals, cfg.Dims, q, round32)
		return assemblePayload(cfg, dt, eb, flags, models, codes, exact)
	}

	// The per-block quantization runs through the slab kernels
	// (slab.go): nested raster loops with the global-edge stencil
	// guards hoisted out of the interior and the quantizer inlined.
	qs := &quantSlab{
		eb:      eb,
		twoEB:   q.twoEB,
		round32: round32,
		vals:    vals,
		recon:   make([]float64, n),
		codes:   make([]uint16, 0, n),
		strides: lz.strides,
		dims:    cfg.Dims,
	}
	blockIter(cfg.Dims, edge, func(lo, hi []int) {
		useReg := false
		var model regressionModel
		switch cfg.Predictor {
		case PredictorRegression:
			useReg = true
			model = fitBlock(vals, lz.strides, lo, hi)
		case PredictorAuto:
			useReg, model = chooseBlock(vals, lz.strides, cfg.Dims, lo, hi)
		}
		flags = append(flags, useReg)
		if useReg {
			models = append(models, model)
			qs.regressionBlock(lo, hi, model)
		} else {
			qs.lorenzoBlock(lo, hi)
		}
	})

	return assemblePayload(cfg, dt, eb, flags, models, qs.codes, qs.exact)
}

// assemblePayload serialises the pipeline outputs and applies the
// lossless backend. eb is the resolved absolute bound (equal to
// cfg.ErrorBound except in Relative mode).
func assemblePayload(cfg Config, dt DataType, eb float64, flags []bool, models []regressionModel, codes []uint16, exact []float64) ([]byte, error) {
	payload := make([]byte, 0, len(codes)/2+64)
	payload = append(payload, byte(dt))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(eb))
	payload = binary.AppendUvarint(payload, uint64(len(cfg.Dims)))
	for _, d := range cfg.Dims {
		payload = binary.AppendUvarint(payload, uint64(d))
	}
	payload = append(payload, byte(cfg.Predictor))
	// Block flags.
	payload = binary.AppendUvarint(payload, uint64(len(flags)))
	payload = appendPackedBits(payload, flags)
	// Models.
	payload = binary.AppendUvarint(payload, uint64(len(models)))
	for _, m := range models {
		for _, c := range m.coef {
			payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(c))
		}
	}
	// Codes.
	enc, err := encodeCodes(codes)
	if err != nil {
		return nil, err
	}
	payload = append(payload, enc...)
	// Exact values.
	payload = binary.AppendUvarint(payload, uint64(len(exact)))
	for _, v := range exact {
		if dt == Float32 {
			payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(float32(v)))
		} else {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
		}
	}

	// Backend-compress the payload.
	var wrapped []byte
	switch cfg.Backend {
	case BackendFastLZ:
		wrapped = fastlz.Compress(payload)
	case BackendDeflate:
		wrapped = flate.Compress(payload, flate.DefaultLevel)
	case BackendLZ4:
		wrapped = lz4.Compress(payload)
	case BackendNone:
		wrapped = payload
	}
	out := make([]byte, 0, len(wrapped)+6)
	out = append(out, magic[:]...)
	out = append(out, containerVersion, byte(cfg.Backend))
	return append(out, wrapped...), nil
}

// chooseRegression implements the Auto predictor's per-block decision: fit
// a regression model, estimate both predictors' absolute error on the
// original values, and pick the smaller (SZ3's hybrid heuristic).
func chooseRegression(vals []float64, lz *lorenzo, lo, hi []int, blockN int) (bool, regressionModel) {
	model := fitRegression(len(lo), blockN, func(yield func([]int, float64)) {
		elemIter(lz.strides, lo, hi, func(idx int, local []int) {
			yield(local, vals[idx])
		})
	})
	var regErr, lorErr float64
	coordBuf := make([]int, len(lo))
	elemIter(lz.strides, lo, hi, func(idx int, local []int) {
		regErr += math.Abs(vals[idx] - model.eval(local))
		lz.coords(idx, coordBuf)
		// Lorenzo estimate uses original values as a stand-in for the
		// reconstruction (cheap and close under a tight bound).
		lorErr += math.Abs(vals[idx] - lz.predict(vals, idx, coordBuf))
	})
	return regErr < lorErr, model
}

func appendPackedBits(dst []byte, bits []bool) []byte {
	var cur byte
	for i, b := range bits {
		if b {
			cur |= 1 << uint(i%8)
		}
		if i%8 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(bits)%8 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

func decompress(comp []byte) ([]float64, DataType, Config, error) {
	var cfg Config
	if len(comp) < 6 || comp[0] != magic[0] || comp[1] != magic[1] || comp[2] != magic[2] || comp[3] != magic[3] {
		return nil, 0, cfg, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if comp[4] != containerVersion {
		return nil, 0, cfg, fmt.Errorf("%w: version %d", ErrCorrupt, comp[4])
	}
	backend := BackendKind(comp[5])
	body := comp[6:]
	var payload []byte
	var err error
	const maxPayload = 1 << 31
	switch backend {
	case BackendFastLZ:
		payload, err = fastlz.Decompress(body, maxPayload)
	case BackendDeflate:
		payload, err = flate.DecompressLimit(body, maxPayload)
	case BackendLZ4:
		payload, err = lz4.DecompressLimit(body, maxPayload)
	case BackendNone:
		payload = body
	default:
		return nil, 0, cfg, fmt.Errorf("%w: backend %d", ErrCorrupt, backend)
	}
	if err != nil {
		return nil, 0, cfg, fmt.Errorf("%w: backend: %v", ErrCorrupt, err)
	}
	cfg.Backend = backend

	pos := 0
	need := func(k int) error {
		if pos+k > len(payload) {
			return fmt.Errorf("%w: truncated payload", ErrCorrupt)
		}
		return nil
	}
	if err := need(9); err != nil {
		return nil, 0, cfg, err
	}
	dt := DataType(payload[pos])
	pos++
	if dt != Float32 && dt != Float64 {
		return nil, 0, cfg, fmt.Errorf("%w: dtype %d", ErrCorrupt, dt)
	}
	cfg.ErrorBound = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
	pos += 8
	if !(cfg.ErrorBound > 0) || math.IsInf(cfg.ErrorBound, 0) {
		return nil, 0, cfg, fmt.Errorf("%w: error bound %g", ErrCorrupt, cfg.ErrorBound)
	}
	ndims, n := binary.Uvarint(payload[pos:])
	if n <= 0 || ndims == 0 || ndims > 3 {
		return nil, 0, cfg, fmt.Errorf("%w: ndims", ErrCorrupt)
	}
	pos += n
	total := 1
	cfg.Dims = make([]int, ndims)
	for d := range cfg.Dims {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 || v == 0 || v > 1<<31 {
			return nil, 0, cfg, fmt.Errorf("%w: dim %d", ErrCorrupt, d)
		}
		pos += n
		cfg.Dims[d] = int(v)
		total *= int(v)
		if total > 1<<31 {
			return nil, 0, cfg, fmt.Errorf("%w: element count overflow", ErrCorrupt)
		}
	}
	if err := need(1); err != nil {
		return nil, 0, cfg, err
	}
	cfg.Predictor = PredictorKind(payload[pos])
	pos++

	// Block flags.
	flagCount, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return nil, 0, cfg, fmt.Errorf("%w: flag count", ErrCorrupt)
	}
	pos += n
	flagBytes := (int(flagCount) + 7) / 8
	if err := need(flagBytes); err != nil {
		return nil, 0, cfg, err
	}
	flags := make([]bool, flagCount)
	for i := range flags {
		flags[i] = payload[pos+i/8]&(1<<uint(i%8)) != 0
	}
	pos += flagBytes
	// Models.
	modelCount, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return nil, 0, cfg, fmt.Errorf("%w: model count", ErrCorrupt)
	}
	pos += n
	if err := need(int(modelCount) * 16); err != nil {
		return nil, 0, cfg, err
	}
	models := make([]regressionModel, modelCount)
	for i := range models {
		for c := 0; c < 4; c++ {
			models[i].coef[c] = math.Float32frombits(binary.LittleEndian.Uint32(payload[pos:]))
			pos += 4
		}
	}
	// Codes.
	codes, used, err := decodeCodes(payload[pos:])
	if err != nil {
		return nil, 0, cfg, err
	}
	pos += used
	if len(codes) != total {
		return nil, 0, cfg, fmt.Errorf("%w: %d codes for %d elements", ErrCorrupt, len(codes), total)
	}
	// Exact values.
	exactCount, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return nil, 0, cfg, fmt.Errorf("%w: exact count", ErrCorrupt)
	}
	pos += n
	elemSize := dt.Size()
	if err := need(int(exactCount) * elemSize); err != nil {
		return nil, 0, cfg, err
	}
	exact := make([]float64, exactCount)
	for i := range exact {
		if dt == Float32 {
			exact[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[pos:])))
		} else {
			exact[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
		}
		pos += elemSize
	}

	// Reconstruct.
	q := newQuantizer(cfg.ErrorBound)
	round32 := dt == Float32
	if cfg.Predictor == PredictorInterpolation {
		recon, err := decompressInterpND(total, cfg.Dims, codes, exact, q, round32)
		if err != nil {
			return nil, 0, cfg, err
		}
		return recon, dt, cfg, nil
	}
	lz := newLorenzo(cfg.Dims)
	edge := blockEdge(len(cfg.Dims))
	// Pre-validate that the exact-value stream covers every zero code so
	// the slab kernels run without per-element error checks.
	zeros := 0
	for _, c := range codes {
		if c == 0 {
			zeros++
		}
	}
	if zeros > len(exact) {
		return nil, 0, cfg, fmt.Errorf("%w: missing exact value", ErrCorrupt)
	}
	ds := &dequantSlab{
		twoEB:   q.twoEB,
		round32: round32,
		recon:   make([]float64, total),
		codes:   codes,
		exact:   exact,
		strides: lz.strides,
		dims:    cfg.Dims,
	}
	blockIdx, modelIdx := 0, 0
	var walkErr error
	blockIter(cfg.Dims, edge, func(lo, hi []int) {
		if walkErr != nil {
			return
		}
		if blockIdx >= len(flags) {
			walkErr = fmt.Errorf("%w: missing block flag", ErrCorrupt)
			return
		}
		useReg := flags[blockIdx]
		blockIdx++
		if useReg {
			if modelIdx >= len(models) {
				walkErr = fmt.Errorf("%w: missing regression model", ErrCorrupt)
				return
			}
			ds.regressionBlock(lo, hi, models[modelIdx])
			modelIdx++
			return
		}
		ds.lorenzoBlock(lo, hi)
	})
	if walkErr != nil {
		return nil, 0, cfg, walkErr
	}
	return ds.recon, dt, cfg, nil
}
