package sz3

// This file is the scalar reference compressor — the differential
// referee for PR 8's slab kernels. compressReference reproduces the
// pre-slab block-wise path: generic elemIter walk, per-element coords,
// scalar lorenzo.predict / regressionModel.eval / quantizer.quantize.
// The slab kernels are a re-scheduling of the same floating-point
// operations, not a reformulation, so the two paths must produce
// byte-identical streams (pinned by TestSlabMatchesScalarCompress).
// Verified compression exploits that identity: recompress through this
// path and compare bytes — any divergence means the vectorized kernel
// (or the memory under it) misbehaved, and the reference output is the
// trusted replacement.

// CompressFloat64Reference compresses like CompressFloat64 but through
// the scalar reference walk. Byte-identical to the slab path on a
// correct machine; used as the differential referee and as the
// trusted re-execution path after a verification mismatch.
func CompressFloat64Reference(data []float64, cfg Config) ([]byte, error) {
	cfg, err := cfg.withDefaults(len(data))
	if err != nil {
		return nil, err
	}
	return compressReference(data, Float64, cfg)
}

// CompressFloat32Reference is the float32 counterpart of
// CompressFloat64Reference.
func CompressFloat32Reference(data []float32, cfg Config) ([]byte, error) {
	cfg, err := cfg.withDefaults(len(data))
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(data))
	for i, v := range data {
		vals[i] = float64(v)
	}
	return compressReference(vals, Float32, cfg)
}

// compressReference is the scalar block-predictor walk. The
// interpolation predictor has no slab variant (it is already scalar),
// so it routes to the shared implementation — recompression still
// referees output corruption there.
func compressReference(vals []float64, dt DataType, cfg Config) ([]byte, error) {
	if cfg.Predictor == PredictorInterpolation {
		return compress(vals, dt, cfg)
	}
	n := len(vals)
	eb := effectiveBound(vals, cfg)
	q := newQuantizer(eb)
	round32 := dt == Float32
	lz := newLorenzo(cfg.Dims)
	edge := blockEdge(len(cfg.Dims))

	recon := make([]float64, n)
	codes := make([]uint16, 0, n)
	var exact []float64
	var flags []bool
	var models []regressionModel
	coordBuf := make([]int, len(cfg.Dims))

	blockIter(cfg.Dims, edge, func(lo, hi []int) {
		blockN := 1
		for d := range lo {
			blockN *= hi[d] - lo[d]
		}
		useReg := false
		var model regressionModel
		switch cfg.Predictor {
		case PredictorRegression:
			useReg = true
		case PredictorAuto:
			useReg, model = chooseRegression(vals, lz, lo, hi, blockN)
		}
		if useReg && cfg.Predictor == PredictorRegression {
			model = fitRegression(len(lo), blockN, func(yield func([]int, float64)) {
				elemIter(lz.strides, lo, hi, func(idx int, local []int) {
					yield(local, vals[idx])
				})
			})
		}
		flags = append(flags, useReg)
		if useReg {
			models = append(models, model)
		}
		elemIter(lz.strides, lo, hi, func(idx int, local []int) {
			var pred float64
			if useReg {
				pred = model.eval(local)
			} else {
				lz.coords(idx, coordBuf)
				pred = lz.predict(recon, idx, coordBuf)
			}
			code, r, ok := q.quantize(vals[idx], pred, round32)
			if !ok {
				codes = append(codes, 0)
				v := vals[idx]
				if round32 {
					v = float64(float32(v))
				}
				exact = append(exact, v)
				recon[idx] = v
				return
			}
			codes = append(codes, code)
			recon[idx] = r
		})
	})

	return assemblePayload(cfg, dt, eb, flags, models, codes, exact)
}
