package sz3

import (
	"math"
	"testing"
)

func TestNDTraversalCoversAllOnce(t *testing.T) {
	cases := [][]int{
		{1}, {7}, {64}, {65},
		{4, 4}, {5, 9}, {16, 16}, {17, 3},
		{3, 4, 5}, {8, 8, 8}, {6, 1, 9},
	}
	for _, dims := range cases {
		total := 1
		for _, d := range dims {
			total *= d
		}
		seen := make([]int, total)
		count := 0
		ndTraversal(dims, func(idx, strideElems, lineLen, linePos, step int) {
			if idx < 0 || idx >= total {
				t.Fatalf("dims %v: index %d out of range", dims, idx)
			}
			seen[idx]++
			count++
		})
		if count != total {
			t.Fatalf("dims %v: %d visits, want %d", dims, count, total)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("dims %v: index %d visited %d times", dims, i, c)
			}
		}
	}
}

func TestNDTraversalNeighboursReady(t *testing.T) {
	for _, dims := range [][]int{{31, 17}, {9, 9, 9}} {
		total := 1
		for _, d := range dims {
			total *= d
		}
		done := make([]bool, total)
		ndTraversal(dims, func(idx, strideElems, lineLen, linePos, step int) {
			if strideElems > 0 {
				if l := linePos - step; l >= 0 && !done[idx-strideElems] {
					t.Fatalf("dims %v: idx %d used unprocessed left neighbour", dims, idx)
				}
				if r := linePos + step; r < lineLen && !done[idx+strideElems] {
					t.Fatalf("dims %v: idx %d used unprocessed right neighbour", dims, idx)
				}
			}
			done[idx] = true
		})
	}
}

func TestNDMatches1DPath(t *testing.T) {
	// For 1-D arrays the ND machinery must produce exactly the 1-D
	// pipeline's codes (same traversal, same stencils).
	data := field1D(5000, 77)
	q := newQuantizer(1e-4)
	c1, e1, _ := compressInterp(data, q, false)
	cN, eN := compressInterpND(data, []int{len(data)}, q, false)
	if len(c1) != len(cN) || len(e1) != len(eN) {
		t.Fatalf("lengths differ: codes %d/%d exact %d/%d", len(c1), len(cN), len(e1), len(eN))
	}
	for i := range c1 {
		if c1[i] != cN[i] {
			t.Fatalf("code %d differs: %d vs %d", i, c1[i], cN[i])
		}
	}
}

func TestInterp2DErrorBound(t *testing.T) {
	data, dims := field2D(150, 90)
	cfg := Config{ErrorBound: 1e-4, Dims: dims, Predictor: PredictorInterpolation}
	comp, err := CompressFloat64(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, gotCfg, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg.Predictor != PredictorInterpolation || len(gotCfg.Dims) != 2 {
		t.Fatalf("config not preserved: %+v", gotCfg)
	}
	checkBound(t, data, got, 1e-4, "interp 2D")
}

func TestInterp3DErrorBound(t *testing.T) {
	data, dims := field3D(24, 30, 18)
	cfg := Config{ErrorBound: 1e-5, Dims: dims, Predictor: PredictorInterpolation}
	comp, err := CompressFloat64(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, data, got, 1e-5, "interp 3D")
}

func TestInterp2DCompetitiveWithLorenzo(t *testing.T) {
	// On smooth 2-D fields the interpolation predictor should be at
	// least competitive with (typically better than) Lorenzo.
	data, dims := field2D(256, 256)
	lor, err := CompressFloat64(data, Config{ErrorBound: 1e-6, Dims: dims, Predictor: PredictorLorenzo})
	if err != nil {
		t.Fatal(err)
	}
	itp, err := CompressFloat64(data, Config{ErrorBound: 1e-6, Dims: dims, Predictor: PredictorInterpolation})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("2D smooth: lorenzo %d B, interpolation %d B", len(lor), len(itp))
	if float64(len(itp)) > 1.25*float64(len(lor)) {
		t.Fatalf("interpolation (%d) much worse than lorenzo (%d)", len(itp), len(lor))
	}
}

func TestInterpNDNaN(t *testing.T) {
	data, dims := field2D(32, 32)
	data[100] = math.NaN()
	comp, err := CompressFloat64(data, Config{ErrorBound: 1e-4, Dims: dims, Predictor: PredictorInterpolation})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[100]) {
		t.Fatal("NaN not preserved")
	}
}
