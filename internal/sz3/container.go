package sz3

import "fmt"

// The container helpers below expose the outer framing of an SZ3 stream
// so PEDAL can route the lossless backend stage to the DPU's C-Engine
// (paper §III-C.2, Fig. 4): PEDAL extracts the backend body, runs the
// backend on different hardware, and reassembles a stream that the
// ordinary Decompress* entry points accept.

// SplitContainer parses the outer container and returns the backend kind
// and the backend-compressed body.
func SplitContainer(comp []byte) (BackendKind, []byte, error) {
	if len(comp) < 6 || comp[0] != magic[0] || comp[1] != magic[1] || comp[2] != magic[2] || comp[3] != magic[3] {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if comp[4] != containerVersion {
		return 0, nil, fmt.Errorf("%w: version %d", ErrCorrupt, comp[4])
	}
	b := BackendKind(comp[5])
	switch b {
	case BackendFastLZ, BackendDeflate, BackendLZ4, BackendNone:
	default:
		return 0, nil, fmt.Errorf("%w: backend %d", ErrCorrupt, b)
	}
	return b, comp[6:], nil
}

// BuildContainer assembles a container around an already
// backend-compressed body.
func BuildContainer(backend BackendKind, body []byte) []byte {
	out := make([]byte, 0, len(body)+6)
	out = append(out, magic[:]...)
	out = append(out, containerVersion, byte(backend))
	return append(out, body...)
}
