package sz3

import "math"

// This file holds the batched predict→quantize kernels the block-wise
// compress/decompress paths run instead of the generic
// elemIter/quantizer combination. The generic path pays, per element, an
// odometer step, a coords div/mod per dimension, a closure call, and a
// branchy quantize; the slabs below walk each block with plain nested
// loops, hoist the global-edge guards out of the interior, and inline a
// branch-reduced quantizer.
//
// Invariant: every floating-point operation happens in exactly the same
// order as the scalar helpers (lorenzo.predict, regressionModel.eval,
// quantizer.quantize/dequantize). The compressor verifies its bound
// against its own reconstruction, and the decompressor reproduces that
// reconstruction from the code stream — if either side re-associates an
// addition the reconstructions drift and the error-bound guarantee
// silently breaks. Change the stencil expressions only in lockstep with
// predictor.go.

// quantSlab is the compression-side state threaded through the block
// kernels: original values in, reconstruction + quantization codes +
// exact fallbacks out. Codes and exact values are appended in block
// traversal order, matching the decoder's consumption order.
type quantSlab struct {
	eb      float64
	twoEB   float64
	round32 bool
	vals    []float64
	recon   []float64
	codes   []uint16
	exact   []float64
	strides []int
	dims    []int
}

// q1 quantizes one element against its prediction: the inlined,
// branch-reduced body of quantizer.quantize plus the exact-storage
// fallback. NaN/Inf originals and out-of-range codes fail the single
// range comparison (NaN compares false) and fall through.
func (s *quantSlab) q1(idx int, pred float64) {
	orig := s.vals[idx]
	qi := roundNearest((orig - pred) / s.twoEB)
	if qi > -quantRadius && qi < quantRadius {
		r := pred + qi*s.twoEB
		if s.round32 {
			r = float64(float32(r))
		}
		if d := r - orig; d <= s.eb && d >= -s.eb {
			s.codes = append(s.codes, uint16(int32(qi)+quantRadius))
			s.recon[idx] = r
			return
		}
	}
	v := orig
	if s.round32 {
		v = float64(float32(v))
	}
	s.codes = append(s.codes, 0)
	s.exact = append(s.exact, v)
	s.recon[idx] = v
}

// lorenzoBlock dispatches on dimensionality. lo/hi are global bounds
// (inclusive/exclusive); predictions read the global recon array, so
// stencils reach across block boundaries exactly as the scalar walk did.
func (s *quantSlab) lorenzoBlock(lo, hi []int) {
	switch len(s.dims) {
	case 1:
		s.lorenzo1D(lo[0], hi[0])
	case 2:
		s.lorenzo2D(lo, hi)
	default:
		s.lorenzo3D(lo, hi)
	}
}

func (s *quantSlab) lorenzo1D(lo0, hi0 int) {
	recon := s.recon
	i := lo0
	if i == 0 {
		s.q1(0, 0)
		i++
	}
	for ; i < hi0; i++ {
		s.q1(i, recon[i-1])
	}
}

func (s *quantSlab) lorenzo2D(lo, hi []int) {
	recon := s.recon
	s0 := s.strides[0]
	for i := lo[0]; i < hi[0]; i++ {
		row := i * s0
		j := lo[1]
		if i == 0 {
			// Global top edge: the i-neighbours are zero.
			if j == 0 {
				s.q1(0, 0)
				j = 1
			}
			for ; j < hi[1]; j++ {
				idx := row + j
				var b float64 = recon[idx-1]
				s.q1(idx, 0+b-0)
			}
			continue
		}
		if j == 0 {
			// Global left edge of an interior row.
			a := recon[row-s0]
			s.q1(row, a+0-0)
			j = 1
		}
		for ; j < hi[1]; j++ {
			idx := row + j
			s.q1(idx, recon[idx-s0]+recon[idx-1]-recon[idx-s0-1])
		}
	}
}

func (s *quantSlab) lorenzo3D(lo, hi []int) {
	recon := s.recon
	si, sj := s.strides[0], s.strides[1]
	for i := lo[0]; i < hi[0]; i++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := i*si + j*sj
			k := lo[2]
			if i == 0 || j == 0 || k == 0 {
				// Global faces: fall back to the guarded stencil for the
				// edge elements of this pencil, then rejoin the interior.
				for ; k < hi[2]; k++ {
					if i != 0 && j != 0 && k != 0 {
						break
					}
					idx := row + k
					var fi, fj, fk, fij, fik, fjk, fijk float64
					if i > 0 {
						fi = recon[idx-si]
					}
					if j > 0 {
						fj = recon[idx-sj]
					}
					if k > 0 {
						fk = recon[idx-1]
					}
					if i > 0 && j > 0 {
						fij = recon[idx-si-sj]
					}
					if i > 0 && k > 0 {
						fik = recon[idx-si-1]
					}
					if j > 0 && k > 0 {
						fjk = recon[idx-sj-1]
					}
					if i > 0 && j > 0 && k > 0 {
						fijk = recon[idx-si-sj-1]
					}
					s.q1(idx, fi+fj+fk-fij-fik-fjk+fijk)
				}
			}
			for ; k < hi[2]; k++ {
				idx := row + k
				s.q1(idx, recon[idx-si]+recon[idx-sj]+recon[idx-1]-
					recon[idx-si-sj]-recon[idx-si-1]-recon[idx-sj-1]+
					recon[idx-si-sj-1])
			}
		}
	}
}

// regressionBlock quantizes a block against its fitted linear model.
// The hoisted per-row partial sums reproduce eval's sequential adds:
// ((c0 + c1·i) + c2·j) + c3·k.
func (s *quantSlab) regressionBlock(lo, hi []int, m regressionModel) {
	c0 := float64(m.coef[0])
	c1 := float64(m.coef[1])
	switch len(s.dims) {
	case 1:
		for i := lo[0]; i < hi[0]; i++ {
			s.q1(i, c0+c1*float64(i-lo[0]))
		}
	case 2:
		c2 := float64(m.coef[2])
		s0 := s.strides[0]
		for i := lo[0]; i < hi[0]; i++ {
			row := i * s0
			ri := c0 + c1*float64(i-lo[0])
			for j := lo[1]; j < hi[1]; j++ {
				s.q1(row+j, ri+c2*float64(j-lo[1]))
			}
		}
	default:
		c2, c3 := float64(m.coef[2]), float64(m.coef[3])
		si, sj := s.strides[0], s.strides[1]
		for i := lo[0]; i < hi[0]; i++ {
			ri := c0 + c1*float64(i-lo[0])
			for j := lo[1]; j < hi[1]; j++ {
				row := i*si + j*sj
				rij := ri + c2*float64(j-lo[1])
				for k := lo[2]; k < hi[2]; k++ {
					s.q1(row+k, rij+c3*float64(k-lo[2]))
				}
			}
		}
	}
}

// fitBlock least-squares-fits the per-block linear model with direct
// loops — the closure-free counterpart of fitRegression, accumulating in
// the same raster order so it produces identical coefficients.
func fitBlock(vals []float64, strides, lo, hi []int) regressionModel {
	nd := len(lo)
	n := 1
	for d := 0; d < nd; d++ {
		n *= hi[d] - lo[d]
	}
	if n == 0 {
		return regressionModel{}
	}
	var meanX [3]float64
	var meanV float64
	forEachBlock(vals, strides, lo, hi, func(idx int, l0, l1, l2 int) {
		meanX[0] += float64(l0)
		if nd > 1 {
			meanX[1] += float64(l1)
		}
		if nd > 2 {
			meanX[2] += float64(l2)
		}
		meanV += vals[idx]
	})
	fn := float64(n)
	for d := 0; d < nd; d++ {
		meanX[d] /= fn
	}
	meanV /= fn
	var num, den [3]float64
	forEachBlock(vals, strides, lo, hi, func(idx int, l0, l1, l2 int) {
		dv := vals[idx] - meanV
		locals := [3]int{l0, l1, l2}
		for d := 0; d < nd; d++ {
			dx := float64(locals[d]) - meanX[d]
			num[d] += dx * dv
			den[d] += dx * dx
		}
	})
	var m regressionModel
	for d := 0; d < nd; d++ {
		if den[d] > 0 {
			m.coef[d+1] = float32(num[d] / den[d])
		}
	}
	c0 := meanV
	for d := 0; d < nd; d++ {
		c0 -= float64(m.coef[d+1]) * meanX[d]
	}
	m.coef[0] = float32(c0)
	return m
}

// forEachBlock rasters a block, yielding the global index and block-local
// coordinates of every element without per-element division.
func forEachBlock(vals []float64, strides, lo, hi []int, fn func(idx, l0, l1, l2 int)) {
	switch len(lo) {
	case 1:
		for i := lo[0]; i < hi[0]; i++ {
			fn(i, i-lo[0], 0, 0)
		}
	case 2:
		s0 := strides[0]
		for i := lo[0]; i < hi[0]; i++ {
			row := i * s0
			for j := lo[1]; j < hi[1]; j++ {
				fn(row+j, i-lo[0], j-lo[1], 0)
			}
		}
	default:
		si, sj := strides[0], strides[1]
		for i := lo[0]; i < hi[0]; i++ {
			for j := lo[1]; j < hi[1]; j++ {
				row := i*si + j*sj
				for k := lo[2]; k < hi[2]; k++ {
					fn(row+k, i-lo[0], j-lo[1], k-lo[2])
				}
			}
		}
	}
}

// chooseBlock is the Auto predictor's per-block decision with direct
// loops: fit the model, compare both predictors' absolute error on the
// original values, pick the smaller — semantics identical to the scalar
// chooseRegression (the Lorenzo estimate reads original values as a
// stand-in for the reconstruction).
func chooseBlock(vals []float64, strides, dims, lo, hi []int) (bool, regressionModel) {
	model := fitBlock(vals, strides, lo, hi)
	c0 := float64(model.coef[0])
	c1 := float64(model.coef[1])
	var regErr, lorErr float64
	switch len(dims) {
	case 1:
		for i := lo[0]; i < hi[0]; i++ {
			regErr += math.Abs(vals[i] - (c0 + c1*float64(i-lo[0])))
			var p float64
			if i > 0 {
				p = vals[i-1]
			}
			lorErr += math.Abs(vals[i] - p)
		}
	case 2:
		c2 := float64(model.coef[2])
		s0 := strides[0]
		for i := lo[0]; i < hi[0]; i++ {
			row := i * s0
			ri := c0 + c1*float64(i-lo[0])
			for j := lo[1]; j < hi[1]; j++ {
				idx := row + j
				regErr += math.Abs(vals[idx] - (ri + c2*float64(j-lo[1])))
				var a, b, d float64
				if i > 0 {
					a = vals[idx-s0]
				}
				if j > 0 {
					b = vals[idx-1]
				}
				if i > 0 && j > 0 {
					d = vals[idx-s0-1]
				}
				lorErr += math.Abs(vals[idx] - (a + b - d))
			}
		}
	default:
		c2, c3 := float64(model.coef[2]), float64(model.coef[3])
		si, sj := strides[0], strides[1]
		for i := lo[0]; i < hi[0]; i++ {
			ri := c0 + c1*float64(i-lo[0])
			for j := lo[1]; j < hi[1]; j++ {
				row := i*si + j*sj
				rij := ri + c2*float64(j-lo[1])
				for k := lo[2]; k < hi[2]; k++ {
					idx := row + k
					regErr += math.Abs(vals[idx] - (rij + c3*float64(k-lo[2])))
					var fi, fj, fk, fij, fik, fjk, fijk float64
					if i > 0 {
						fi = vals[idx-si]
					}
					if j > 0 {
						fj = vals[idx-sj]
					}
					if k > 0 {
						fk = vals[idx-1]
					}
					if i > 0 && j > 0 {
						fij = vals[idx-si-sj]
					}
					if i > 0 && k > 0 {
						fik = vals[idx-si-1]
					}
					if j > 0 && k > 0 {
						fjk = vals[idx-sj-1]
					}
					if i > 0 && j > 0 && k > 0 {
						fijk = vals[idx-si-sj-1]
					}
					lorErr += math.Abs(vals[idx] - (fi + fj + fk - fij - fik - fjk + fijk))
				}
			}
		}
	}
	return regErr < lorErr, model
}

// dequantSlab is the decompression-side counterpart: codes + exact
// fallbacks in, reconstruction out. The caller pre-validates that the
// exact-value stream covers every zero code, so the kernels below cannot
// fail mid-block.
type dequantSlab struct {
	twoEB   float64
	round32 bool
	recon   []float64
	codes   []uint16
	exact   []float64
	strides []int
	dims    []int
	k       int // next code
	ei      int // next exact value
}

// d1 reconstructs one element: the inlined quantizer.dequantize plus the
// exact-value path for code 0.
func (s *dequantSlab) d1(idx int, pred float64) {
	code := s.codes[s.k]
	s.k++
	if code == 0 {
		s.recon[idx] = s.exact[s.ei]
		s.ei++
		return
	}
	qi := float64(int(code) - quantRadius)
	r := pred + qi*s.twoEB
	if s.round32 {
		r = float64(float32(r))
	}
	s.recon[idx] = r
}

func (s *dequantSlab) lorenzoBlock(lo, hi []int) {
	switch len(s.dims) {
	case 1:
		recon := s.recon
		i := lo[0]
		if i == 0 {
			s.d1(0, 0)
			i++
		}
		for ; i < hi[0]; i++ {
			s.d1(i, recon[i-1])
		}
	case 2:
		s.lorenzo2D(lo, hi)
	default:
		s.lorenzo3D(lo, hi)
	}
}

func (s *dequantSlab) lorenzo2D(lo, hi []int) {
	recon := s.recon
	s0 := s.strides[0]
	for i := lo[0]; i < hi[0]; i++ {
		row := i * s0
		j := lo[1]
		if i == 0 {
			if j == 0 {
				s.d1(0, 0)
				j = 1
			}
			for ; j < hi[1]; j++ {
				idx := row + j
				var b float64 = recon[idx-1]
				s.d1(idx, 0+b-0)
			}
			continue
		}
		if j == 0 {
			a := recon[row-s0]
			s.d1(row, a+0-0)
			j = 1
		}
		for ; j < hi[1]; j++ {
			idx := row + j
			s.d1(idx, recon[idx-s0]+recon[idx-1]-recon[idx-s0-1])
		}
	}
}

func (s *dequantSlab) lorenzo3D(lo, hi []int) {
	recon := s.recon
	si, sj := s.strides[0], s.strides[1]
	for i := lo[0]; i < hi[0]; i++ {
		for j := lo[1]; j < hi[1]; j++ {
			row := i*si + j*sj
			k := lo[2]
			if i == 0 || j == 0 || k == 0 {
				for ; k < hi[2]; k++ {
					if i != 0 && j != 0 && k != 0 {
						break
					}
					idx := row + k
					var fi, fj, fk, fij, fik, fjk, fijk float64
					if i > 0 {
						fi = recon[idx-si]
					}
					if j > 0 {
						fj = recon[idx-sj]
					}
					if k > 0 {
						fk = recon[idx-1]
					}
					if i > 0 && j > 0 {
						fij = recon[idx-si-sj]
					}
					if i > 0 && k > 0 {
						fik = recon[idx-si-1]
					}
					if j > 0 && k > 0 {
						fjk = recon[idx-sj-1]
					}
					if i > 0 && j > 0 && k > 0 {
						fijk = recon[idx-si-sj-1]
					}
					s.d1(idx, fi+fj+fk-fij-fik-fjk+fijk)
				}
			}
			for ; k < hi[2]; k++ {
				idx := row + k
				s.d1(idx, recon[idx-si]+recon[idx-sj]+recon[idx-1]-
					recon[idx-si-sj]-recon[idx-si-1]-recon[idx-sj-1]+
					recon[idx-si-sj-1])
			}
		}
	}
}

func (s *dequantSlab) regressionBlock(lo, hi []int, m regressionModel) {
	c0 := float64(m.coef[0])
	c1 := float64(m.coef[1])
	switch len(s.dims) {
	case 1:
		for i := lo[0]; i < hi[0]; i++ {
			s.d1(i, c0+c1*float64(i-lo[0]))
		}
	case 2:
		c2 := float64(m.coef[2])
		s0 := s.strides[0]
		for i := lo[0]; i < hi[0]; i++ {
			row := i * s0
			ri := c0 + c1*float64(i-lo[0])
			for j := lo[1]; j < hi[1]; j++ {
				s.d1(row+j, ri+c2*float64(j-lo[1]))
			}
		}
	default:
		c2, c3 := float64(m.coef[2]), float64(m.coef[3])
		si, sj := s.strides[0], s.strides[1]
		for i := lo[0]; i < hi[0]; i++ {
			ri := c0 + c1*float64(i-lo[0])
			for j := lo[1]; j < hi[1]; j++ {
				row := i*si + j*sj
				rij := ri + c2*float64(j-lo[1])
				for k := lo[2]; k < hi[2]; k++ {
					s.d1(row+k, rij+c3*float64(k-lo[2]))
				}
			}
		}
	}
}
