package sz3

import (
	"math"
	"testing"
)

// TestQuantizeRadiusBoundary pins behaviour at the ±quantRadius edges of
// the code range. Regression test for the int conversion in quantize: the
// sum qi+quantRadius must be computed in a signed 32-bit type so the
// uint16 narrowing is well-defined on every platform, and codes at the
// extremes must round-trip through dequantize within the bound.
func TestQuantizeRadiusBoundary(t *testing.T) {
	const eb = 0.5 // twoEB = 1.0, so qi == diff exactly
	q := newQuantizer(eb)

	cases := []struct {
		name     string
		diff     float64
		wantOK   bool
		wantCode uint16
	}{
		{"zero", 0, true, quantRadius},
		{"max-positive", quantRadius - 1, true, 2*quantRadius - 1},
		{"min-negative", -(quantRadius - 1), true, 1},
		{"positive-overflow", quantRadius, false, 0},
		{"negative-overflow", -quantRadius, false, 0},
		{"far-positive-overflow", 1e18, false, 0},
		{"far-negative-overflow", -1e18, false, 0},
		{"nan", math.NaN(), false, 0},
		{"pos-inf", math.Inf(1), false, 0},
		{"neg-inf", math.Inf(-1), false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pred := 1000.0
			orig := pred + tc.diff
			if tc.name == "nan" || math.IsInf(tc.diff, 0) {
				orig = tc.diff
			}
			code, recon, ok := q.quantize(orig, pred, false)
			if ok != tc.wantOK {
				t.Fatalf("quantize(diff=%g): ok = %v, want %v", tc.diff, ok, tc.wantOK)
			}
			if !ok {
				return
			}
			if code != tc.wantCode {
				t.Fatalf("quantize(diff=%g): code = %d, want %d", tc.diff, code, tc.wantCode)
			}
			if code == 0 {
				t.Fatal("ok quantization produced reserved code 0")
			}
			if math.Abs(recon-orig) > eb {
				t.Fatalf("reconstruction %g violates bound: orig %g, eb %g", recon, orig, eb)
			}
			if got := q.dequantize(pred, code, false); got != recon {
				t.Fatalf("dequantize(%d) = %g, want compressor reconstruction %g", code, got, recon)
			}
		})
	}
}

// TestQuantizeBoundaryEndToEnd drives values that quantize to the extreme
// codes through the full pipeline: the largest representable jumps must
// compress losslessly within the bound, one bin further must take the
// exact-storage fallback, and both must decompress correctly.
func TestQuantizeBoundaryEndToEnd(t *testing.T) {
	const eb = 0.5
	vals := []float64{
		0,
		quantRadius - 1, // exactly the max positive code from pred≈0
		0,
		-(quantRadius - 1), // max negative code
		0,
		quantRadius + 10, // out of range: exact fallback
		0,
	}
	cfg := Config{ErrorBound: eb, Dims: []int{len(vals)}, Backend: BackendNone, Predictor: PredictorLorenzo}
	comp, err := CompressFloat64(vals, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Abs(v-vals[i]) > eb {
			t.Fatalf("element %d: |%g - %g| exceeds bound %g", i, v, vals[i], eb)
		}
	}
}

// TestRoundNearestAgreesWithRound documents the one place roundNearest may
// differ from math.Round — exact .5 ties — and checks it matches
// everywhere else in the quantizer's operating range.
func TestRoundNearestAgreesWithRound(t *testing.T) {
	for _, x := range []float64{0, 0.25, 0.75, 1.25, -0.25, -0.75, 3.3, -3.3,
		32766.4, -32766.4, 1e6 + 0.4, -1e6 - 0.4} {
		if got, want := roundNearest(x), math.Round(x); got != want {
			t.Fatalf("roundNearest(%g) = %g, math.Round = %g", x, got, want)
		}
	}
	// Ties round to even, not away from zero: a known, accepted difference.
	if got := roundNearest(0.5); got != 0 {
		t.Fatalf("roundNearest(0.5) = %g, want 0 (ties-to-even)", got)
	}
	if got := roundNearest(1.5); got != 2 {
		t.Fatalf("roundNearest(1.5) = %g, want 2 (ties-to-even)", got)
	}
	if got := roundNearest(-0.5); got != 0 {
		t.Fatalf("roundNearest(-0.5) = %g, want 0 (ties-to-even)", got)
	}
}
